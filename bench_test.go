package cfd

import (
	"bytes"
	"testing"
)

// benchScale keeps every experiment bench at laptop scale; use
// cmd/cfdbench -scale 1.0 for full-size runs.
const benchScale = 0.04

// benchExperiment regenerates one paper table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := RunExperiment(id, &buf, benchScale); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			b.Fatalf("%s: empty output", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkFig1_PerfectPrediction(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2a_MispredictLevels(b *testing.B)   { benchExperiment(b, "fig2a") }
func BenchmarkFig2b_WindowScalingBase(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig6_Classification(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkTable1_MPKI(b *testing.B)              { benchExperiment(b, "table1") }
func BenchmarkTable2_PipelineDepths(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFig17_BaselineConfig(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkTable3_CFDOverheads(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4_TQOverheads(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkTable5_CodeDetailsBQ(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6_CodeDetailsTQ(b *testing.B)     { benchExperiment(b, "table6") }
func BenchmarkFig18_CFDSpeedup(b *testing.B)         { benchExperiment(b, "fig18") }
func BenchmarkFig19_EffectiveIPC(b *testing.B)       { benchExperiment(b, "fig19") }
func BenchmarkFig20_FetchAccounting(b *testing.B)    { benchExperiment(b, "fig20") }
func BenchmarkFig21a_DepthSensitivity(b *testing.B)  { benchExperiment(b, "fig21a") }
func BenchmarkFig21b_WindowScalingCFD(b *testing.B)  { benchExperiment(b, "fig21b") }
func BenchmarkFig21c_SpecVsStall(b *testing.B)       { benchExperiment(b, "fig21c") }
func BenchmarkFig22_AstarCaseStudy(b *testing.B)     { benchExperiment(b, "fig22") }
func BenchmarkFig23_AstarWindowScaling(b *testing.B) { benchExperiment(b, "fig23") }
func BenchmarkFig24_DFDvsCFD(b *testing.B)           { benchExperiment(b, "fig24") }
func BenchmarkFig25a_MSHRHistogram(b *testing.B)     { benchExperiment(b, "fig25a") }
func BenchmarkFig25b_DFDLevels(b *testing.B)         { benchExperiment(b, "fig25b") }
func BenchmarkFig26_CFDPlusDFD(b *testing.B)         { benchExperiment(b, "fig26") }
func BenchmarkFig27_TQ(b *testing.B)                 { benchExperiment(b, "fig27") }
func BenchmarkFig28_BQTQ(b *testing.B)               { benchExperiment(b, "fig28") }

// Ablations beyond the paper's figures: the §VI baseline-selection studies
// and the compiler-pass analog.

func BenchmarkAblationCheckpoints(b *testing.B)     { benchExperiment(b, "ablation-ckpt") }
func BenchmarkAblationIfConvCrossover(b *testing.B) { benchExperiment(b, "ablation-ifconv") }
func BenchmarkAblationPredictors(b *testing.B)      { benchExperiment(b, "ablation-pred") }
func BenchmarkAblationAutoCFD(b *testing.B)         { benchExperiment(b, "ablation-xform") }

// Parallel-harness benchmarks: one experiment under explicit -jobs
// settings. On a multi-core host BenchmarkFig18Parallel should approach
// a GOMAXPROCS-fold speedup over BenchmarkFig18Serial; the outputs are
// byte-identical (TestSweepDeterminism pins that).

func benchExperimentJobs(b *testing.B, id string, jobs int, verify bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := RunExperimentWith(id, &buf, benchScale, jobs, verify); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			b.Fatalf("%s: empty output", id)
		}
	}
}

func BenchmarkFig18Serial(b *testing.B)   { benchExperimentJobs(b, "fig18", 1, false) }
func BenchmarkFig18Parallel(b *testing.B) { benchExperimentJobs(b, "fig18", 0, false) }
func BenchmarkFig18Verified(b *testing.B) { benchExperimentJobs(b, "fig18", 0, true) }

// Infrastructure microbenchmarks: simulator and emulator throughput.

func BenchmarkPipelineThroughput(b *testing.B) {
	w, _ := WorkloadByName("soplexlike")
	p, m, err := w.Build(Base, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		core, err := NewCore(Baseline(), p, m.Clone())
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			b.Fatal(err)
		}
		cycles = core.Stats.Cycles
	}
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

func BenchmarkEmulatorThroughput(b *testing.B) {
	w, _ := WorkloadByName("soplexlike")
	p, m, err := w.Build(Base, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		mc, err := Emulate(p, m.Clone(), 0)
		if err != nil {
			b.Fatal(err)
		}
		retired = mc.Retired
	}
	b.ReportMetric(float64(retired)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkAblationHWPrefetcher(b *testing.B) { benchExperiment(b, "ablation-hwpf") }
