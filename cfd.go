// Package cfd is a cycle-level reproduction of "Control-Flow Decoupling:
// An Approach for Timely, Non-speculative Branching" (Sheikh, Tuck,
// Rotenberg; MICRO 2012 / IEEE TC 2014).
//
// The package exposes four layers:
//
//   - A 64-bit RISC ISA with the CFD co-processor extension (branch queue,
//     value queue, trip-count queue) plus an assembler-style program
//     builder ([NewProgram]).
//   - A functional emulator ([Emulate]) — the golden architectural model.
//   - A cycle-level out-of-order core with the CFD hardware in its fetch
//     and rename stages ([Simulate]), configured like the paper's Sandy
//     Bridge-like baseline ([Baseline]) or scaled windows ([ScaledWindow]).
//   - The paper's workloads and experiments: [Workloads] lists synthetic
//     analogs of the evaluated benchmarks in baseline/CFD/CFD+/DFD/TQ
//     variants, and [RunExperiment] regenerates any table or figure from
//     the paper's evaluation.
//
// Quick start:
//
//	res, err := cfd.Simulate("soplexlike", cfd.CFD, cfd.Baseline(), 50_000)
//	fmt.Println(res.Stats.IPC(), res.Stats.MPKI())
package cfd

import (
	"fmt"
	"io"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/harness"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
	"cfd/internal/workload"
	"cfd/internal/xform"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Program is an assembled CFD-RISC program.
	Program = prog.Program
	// Builder assembles Programs instruction by instruction.
	Builder = prog.Builder
	// Inst is a single CFD-RISC instruction.
	Inst = isa.Inst
	// Memory is the sparse data memory image.
	Memory = mem.Memory
	// Machine is the functional (architectural) emulator.
	Machine = emu.Machine
	// Core is the cycle-level out-of-order core.
	Core = pipeline.Core
	// CoreConfig parameterizes the cycle-level core.
	CoreConfig = config.Core
	// Stats are the simulation counters of one run.
	Stats = pipeline.Stats
	// Workload describes one benchmark analog and its variants.
	Workload = workload.Spec
	// Variant names a program transformation (Base, CFD, CFDPlus, ...).
	Variant = workload.Variant
	// Experiment regenerates one paper table or figure.
	Experiment = harness.Experiment
	// Runner executes and memoizes experiment simulation runs.
	Runner = harness.Runner
	// RunSpec identifies one harness simulation run.
	RunSpec = harness.RunSpec
	// Result is the outcome of one harness run.
	Result = harness.Result
	// Kernel is a structured loop the automatic CFD pass can transform
	// (the paper's compiler-pass analog, §III-B).
	Kernel = xform.Kernel
	// KernelParams carries the queue capacities the pass strip-mines
	// against; derive them from a core config with KernelParamsFor.
	KernelParams = xform.Params
)

// KernelParamsFor extracts the transformation parameters (BQ/VQ/TQ
// capacities) from a core configuration.
func KernelParamsFor(cfg CoreConfig) KernelParams { return xform.ParamsFrom(cfg) }

// Workload variants.
const (
	Base    = workload.Base
	CFD     = workload.CFD
	CFDPlus = workload.CFDPlus
	DFD     = workload.DFD
	CFDDFD  = workload.CFDDFD
	CFDTQ   = workload.CFDTQ
	CFDBQ   = workload.CFDBQ
	CFDBQTQ = workload.CFDBQTQ
)

// NewProgram returns an empty program builder.
func NewProgram() *Builder { return prog.NewBuilder() }

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return mem.New() }

// Baseline returns the paper's Sandy Bridge-like core configuration
// (Fig 17a).
func Baseline() CoreConfig { return config.SandyBridge() }

// ScaledWindow returns the baseline scaled to a larger instruction window
// (ROB sizes 168..640; Figs 2b, 21b, 23).
func ScaledWindow(robSize int) CoreConfig { return config.Scaled(robSize) }

// Emulate runs a program on the functional emulator until HALT or limit
// retired instructions (0 = unlimited) and returns the machine.
func Emulate(p *Program, m *Memory, limit uint64) (*Machine, error) {
	mc := emu.New(p, m)
	if err := mc.Run(limit); err != nil {
		return mc, err
	}
	return mc, nil
}

// CrossCheck runs p from the initial memory m twice — once on the
// cycle-level core under cfg and once on the functional emulator, the
// golden architectural model — and returns an error describing the first
// divergence in retired-instruction count, architectural registers, or
// final memory (nil if the two agree). m may be nil; it is cloned for both
// runs. This is the differential-verification primitive behind the
// harness's Verify mode and cfdbench/cfdsim -verify.
func CrossCheck(cfg CoreConfig, p *Program, m *Memory) error {
	if m == nil {
		m = mem.New()
	}
	core, err := pipeline.New(cfg, p, m.Clone())
	if err != nil {
		return err
	}
	if err := core.Run(0); err != nil {
		return fmt.Errorf("cfd: pipeline run: %w", err)
	}
	return emu.VerifyArch(p, m.Clone(), core.ArchRegs(), core.Mem(), core.Stats.Retired,
		emu.WithQueueSizes(cfg.BQSize, cfg.VQSize, cfg.TQSize))
}

// NewCore builds a cycle-level core for a custom program.
func NewCore(cfg CoreConfig, p *Program, m *Memory) (*Core, error) {
	return pipeline.New(cfg, p, m)
}

// Workloads lists the registered benchmark analogs.
func Workloads() []*Workload { return workload.All() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (*Workload, bool) { return workload.ByName(name) }

// Simulate builds the named workload variant at size n (0 = the workload's
// default size) and runs it to completion on the cycle-level core.
func Simulate(name string, v Variant, cfg CoreConfig, n int64) (*Core, error) {
	s, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("cfd: unknown workload %q", name)
	}
	if n == 0 {
		n = s.DefaultN
	}
	p, m, err := s.Build(v, n)
	if err != nil {
		return nil, err
	}
	core, err := pipeline.New(cfg, p, m)
	if err != nil {
		return nil, err
	}
	if err := core.Run(0); err != nil {
		return nil, err
	}
	return core, nil
}

// NewRunner returns an experiment runner; scale multiplies every
// workload's default size (1.0 = the full evaluation). The Runner is safe
// for concurrent use and fans each experiment's simulations across
// GOMAXPROCS workers by default; set Runner.Jobs = 1 for strictly serial
// runs (the output is byte-identical either way) and Runner.Verify = true
// to cross-check every run against the functional emulator.
func NewRunner(scale float64) *Runner { return harness.NewRunner(scale) }

// Experiments lists every reproducible table and figure.
func Experiments() []*Experiment { return harness.AllExperiments() }

// RunExperiment regenerates one paper table/figure (by ID such as "fig18"
// or "table1"), writing its rows to w. Simulations fan out across
// GOMAXPROCS workers; use RunExperimentWith to control parallelism or
// enable differential verification.
func RunExperiment(id string, w io.Writer, scale float64) error {
	return RunExperimentWith(id, w, scale, 0, false)
}

// RunExperimentWith is RunExperiment with explicit parallelism (jobs = 0
// means GOMAXPROCS, 1 means serial) and optional differential verification
// of every simulation against the emulator.
func RunExperimentWith(id string, w io.Writer, scale float64, jobs int, verify bool) error {
	e, ok := harness.ByID(id)
	if !ok {
		return fmt.Errorf("cfd: unknown experiment %q", id)
	}
	r := harness.NewRunner(scale)
	r.Jobs = jobs
	r.Verify = verify
	return r.RunExperiment(e, w)
}
