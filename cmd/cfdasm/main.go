// Command cfdasm assembles CFD-RISC source and runs it — on the functional
// emulator by default, or on the cycle-level core with -cycle. With
// -pipeview it prints a textual pipeline diagram of the first instructions.
//
// Usage:
//
//	cfdasm prog.s                 # assemble + emulate, print register state
//	cfdasm -cycle prog.s          # run on the OOO core, print stats
//	cfdasm -cycle -pipeview 40 prog.s
//	cfdasm -dump prog.s           # print the assembled program and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"cfd/internal/asm"
	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/pipeline"
)

func main() {
	var (
		cycle    = flag.Bool("cycle", false, "run on the cycle-level core instead of the emulator")
		pipeview = flag.Int("pipeview", 0, "with -cycle: trace N instructions and print a pipeline diagram")
		dump     = flag.Bool("dump", false, "print the assembled program and exit")
		limit    = flag.Uint64("limit", 50_000_000, "retired-instruction limit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfdasm [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	p, image, err := asm.AssembleWithData(string(src))
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(p.Disassemble())
		return
	}

	if *cycle {
		var opts []pipeline.Option
		if *pipeview > 0 {
			opts = append(opts, pipeline.WithTrace(*pipeview))
		}
		core, err := pipeline.New(config.SandyBridge(), p, image, opts...)
		if err != nil {
			fatal(err)
		}
		if err := core.Run(*limit); err != nil {
			fatal(err)
		}
		st := core.Stats
		fmt.Printf("cycles %d  retired %d  IPC %.3f  MPKI %.2f  BQ pops %d  TQ pops %d\n",
			st.Cycles, st.Retired, st.IPC(), st.MPKI(), st.BQPops, st.TQPops)
		if *pipeview > 0 {
			fmt.Print(core.Pipeview())
		}
		return
	}

	mc := emu.New(p, image)
	if err := mc.Run(*limit); err != nil {
		fatal(err)
	}
	fmt.Printf("retired %d instructions\n", mc.Retired)
	for r := 1; r < 32; r++ {
		if mc.Regs[r] != 0 {
			fmt.Printf("  r%-2d = %d (%#x)\n", r, mc.Regs[r], mc.Regs[r])
		}
	}
	fmt.Printf("  BQ len %d, VQ len %d, TQ len %d, TCR %d\n",
		mc.BQ.Len(), mc.VQ.Len(), mc.TQ.Len(), mc.TCR)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfdasm:", err)
	os.Exit(1)
}
