// Command cfdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cfdbench -exp all            # every experiment
//	cfdbench -exp fig18          # one experiment
//	cfdbench -exp fig18,fig24    # several
//	cfdbench -list               # list experiment IDs (with manifest spec counts)
//	cfdbench -manifest m.json    # sweep a declarative experiment manifest
//	cfdbench -manifest m.json -manifest-expand   # dry-run: print the spec keys
//	cfdbench -scale 0.2          # reduce workload sizes (1.0 = full)
//	cfdbench -jobs 8             # simulation parallelism (default GOMAXPROCS)
//	cfdbench -verify             # cross-check every run against the emulator
//	cfdbench -json out.json      # export every run as schema-versioned JSON
//	cfdbench -store dir          # persist results on disk; resume sweeps
//	cfdbench -speed out.json     # wall-clock throughput (MIPS) benchmark
//	cfdbench -keep-going         # run every simulation even when some fault
//	cfdbench -max-cycles N       # per-run watchdog cycle budget
//	cfdbench -deadline 5m        # per-run watchdog wall-clock deadline
//	cfdbench -metrics            # stream per-simulation progress to stderr
//	cfdbench -trace-out t.json   # Perfetto trace of the sweeps (virtual time)
//	cfdbench -journal s.journal  # structured JSONL event journal of the sweeps
//	cfdbench -journal-sorted     # canonicalize the journal on exit (jobs-independent)
//	cfdbench -listen 127.0.0.1:9190  # live /metrics, /status, /debug/pprof server
//	cfdbench -host-sample 1s     # sample host RSS/GC/goroutines on this interval
//	cfdbench -cpuprofile cpu.pb  # write a pprof CPU profile
//	cfdbench -memprofile mem.pb  # write a pprof heap profile
//
// -store attaches a crash-safe on-disk result store: every completed
// simulation (and every deterministic typed fault) is persisted as it
// lands, and a rerun with the same directory re-simulates only the
// missing or invalidated cells — so a 10,000-point sweep survives
// crashes, SIGKILL, and reboots, across processes and CI runs. Corrupt
// entries (torn writes, bit flips, stale schemas) are detected by
// checksum, quarantined to <dir>/quarantine, and transparently
// re-simulated.
//
// On SIGINT or SIGTERM a -store run drains cleanly: no new simulations
// start, in-flight simulations run to completion and flush to the store,
// and the process exits with code 3 (distinct from 1 = error and 2 = bad
// usage). Kill-and-rerun therefore converges: the resumed run's tables
// and JSON export are byte-identical to an uninterrupted run's (the one
// exception is the diagnostic `store` section of the JSON document, which
// reports this process's hit/miss split). A second signal kills the
// process immediately, and even that is safe: the store's atomic write
// protocol never exposes a torn entry.
//
// -metrics prints one stderr line per completed simulation — status, the
// Runner's cumulative cache hit rate, and an ETA for the current sweep —
// without touching stdout, which stays a deterministic artifact. The
// end-of-run cache totals print on stderr regardless.
//
// -json - streams the document to stdout; the experiment tables then move
// to stderr so stdout carries exactly one machine-parseable JSON document,
// whatever other flags (-metrics, -keep-going) are set.
//
// -trace-out lays every memoized run end to end on a virtual timeline (one
// span per sweep cell, as wide as its simulated cycles, annotated with
// cache hits and fault outcome) in Chrome trace-event JSON for
// ui.perfetto.dev; like the stdout tables, the trace is byte-identical for
// any -jobs value.
//
// -journal records a crash-safe, schema-versioned JSONL event journal of
// the campaign: sweep lifecycle, per-spec submit/start/done with result
// counters and how each result materialized (simulated, cache hit, store
// hit, persisted), store quarantines and retries, watchdog expiries, and
// host-resource samples. Events flow through a buffered bus to a
// dedicated writer, so the sweep never stalls on journal I/O, and every
// durable event is flushed as written — a SIGKILLed run's journal replays
// exactly the completions that reached the store (validate it with
// `go run ./internal/obs/journal/validate -store <dir> <journal>`).
// -journal-sorted rewrites the file on exit into its canonical sorted
// replay, which is byte-identical across -jobs settings.
//
// -listen serves live observability on a loopback address while the run
// is in flight: GET /metrics is the Prometheus text exposition of the
// runner-cache, store, and host-sampler series; GET /status is a JSON
// snapshot of sweep progress (with a simulated-only ETA), in-flight
// specs, and the last journal events; /debug/pprof is the standard Go
// profiler. -host-sample enables the host-resource sampler (RSS, GC
// pause totals, goroutine count, allocation rate) on the given interval,
// feeding both /metrics and the journal.
//
// Each experiment submits all of its simulations up front and fans them
// across -jobs workers, then assembles its rows serially — so the output
// is byte-identical for any -jobs value (-jobs 1 reproduces the historical
// strictly serial behavior).
//
// -manifest sweeps a declarative experiment manifest (schema cfd-manifest,
// see DESIGN.md): a JSON file declaring workload selectors, variant
// expressions, and config-mutation sets whose cross-product expands
// deterministically into run specs. The sweep composes with every other
// flag — -store resume, -jobs, -journal (the sweep_start event carries the
// manifest's content digest), -json (the document gains a `manifest`
// provenance section). -manifest-expand is the dry run: it prints the
// expanded spec count and the sorted spec keys without simulating, and its
// output is byte-identical for any -jobs value.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"cfd/internal/export"
	"cfd/internal/harness"
	"cfd/internal/manifest"
	"cfd/internal/obs"
	"cfd/internal/obs/journal"
	"cfd/internal/serve"
)

// Exit codes. Interruption is distinct from failure so scripts and CI can
// tell "drained cleanly, rerun -store to resume" from "something broke".
const (
	exitOK          = 0
	exitError       = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	// SIGINT/SIGTERM cancel the context; the sweeps drain (in-flight
	// simulations complete and, with -store, persist) and the process
	// exits with exitInterrupted. A second signal restores the default
	// handler's immediate kill — safe even mid-write, because the store
	// only ever publishes entries by atomic rename.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its context, streams, and exit code lifted out so tests
// can drive the binary end to end and decode what lands on stdout.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cfdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp          = fs.String("exp", "all", "experiment IDs (comma separated) or 'all'")
		manifestPath = fs.String("manifest", "", "sweep a declarative experiment manifest (JSON file) instead of -exp")
		manifestDry  = fs.Bool("manifest-expand", false, "with -manifest: print the expanded spec count and sorted keys, then exit")
		scale        = fs.Float64("scale", 0.25, "workload size scale factor (1.0 = full evaluation)")
		jobs         = fs.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
		verify       = fs.Bool("verify", false, "differentially verify every run against the functional emulator")
		list         = fs.Bool("list", false, "list experiments")
		jsonPath     = fs.String("json", "", "write every run's counters, CPI stack, and energy as JSON to this path ('-' = stdout)")
		storeDir     = fs.String("store", "", "persist results to this on-disk store; reruns resume, re-simulating only missing or corrupt cells")
		speedPath    = fs.String("speed", "", "run the wall-clock throughput benchmark and write its JSON to this path ('-' = stdout)")
		speedRuns    = fs.Int("speed-runs", 0, "median-of-K width for -speed (0 = default)")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile   = fs.String("memprofile", "", "write a heap profile to this path on exit")

		keepGoing = fs.Bool("keep-going", false, "complete every simulation even when some fail; failures land in the JSON faults section")
		maxCycles = fs.Uint64("max-cycles", 0, "per-run watchdog cycle budget (0 = unlimited)")
		deadline  = fs.Duration("deadline", 0, "per-run watchdog wall-clock deadline (0 = none)")

		metrics  = fs.Bool("metrics", false, "stream per-simulation progress (status, cache hit rate, ETA) to stderr")
		traceOut = fs.String("trace-out", "", "write a Chrome/Perfetto trace of the sweeps to this path ('-' = stdout)")

		journalPath   = fs.String("journal", "", "write a structured JSONL event journal of the sweeps to this path")
		journalSorted = fs.Bool("journal-sorted", false, "rewrite the journal on exit into its canonical sorted replay (byte-identical across -jobs)")
		listenAddr    = fs.String("listen", "", "serve live /metrics, /status, and /debug/pprof on this address (e.g. 127.0.0.1:9190)")
		hostSample    = fs.Duration("host-sample", 0, "sample host resources (RSS, GC, goroutines) on this interval (0 = off)")
	)
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	errorf := func(format string, args ...interface{}) int {
		fmt.Fprintf(stderr, "cfdbench: "+format+"\n", args...)
		return exitError
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return errorf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return errorf("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		// The specs column is each experiment's embedded-manifest expansion
		// size; "-" marks experiments with no spec sweep (static tables,
		// classification studies, custom-program ablations).
		for _, e := range harness.AllExperiments() {
			count := "-"
			if e.Manifest != nil {
				specs, err := e.Specs()
				if err != nil {
					return errorf("%s: manifest: %v", e.ID, err)
				}
				count = fmt.Sprint(len(specs))
			}
			fmt.Fprintf(stdout, "%-16s %5s  %s\n", e.ID, count, e.Title)
		}
		return 0
	}

	// -manifest replaces -exp: load, validate, and expand the declarative
	// sweep up front so a bad manifest fails before any simulation starts.
	var mf *manifest.Manifest
	var mfSpecs []harness.RunSpec
	if *manifestPath != "" {
		m, err := manifest.Load(*manifestPath)
		if err != nil {
			return errorf("%v", err)
		}
		specs, err := harness.SpecsFromManifest(m)
		if err != nil {
			return errorf("%s: %v", *manifestPath, err)
		}
		if *manifestDry {
			fmt.Fprintf(stdout, "manifest %s (%s): %d specs\n", manifestName(m, *manifestPath), m.Digest(), len(specs))
			for _, sp := range specs {
				fmt.Fprintln(stdout, sp.Key())
			}
			return 0
		}
		mf, mfSpecs = m, specs
	} else if *manifestDry {
		return errorf("-manifest-expand requires -manifest")
	}

	if *speedPath != "" {
		return runSpeed(*speedPath, *speedRuns, stdout, stderr)
	}

	var exps []*harness.Experiment
	if mf == nil {
		if *exp == "all" {
			exps = harness.AllExperiments()
		} else {
			for _, id := range strings.Split(*exp, ",") {
				e, ok := harness.ByID(strings.TrimSpace(id))
				if !ok {
					return errorf("unknown experiment %q (use -list)", id)
				}
				exps = append(exps, e)
			}
		}
	}

	// With -json - the document owns stdout: everything human-readable —
	// the experiment tables included — moves to stderr, so stdout can be
	// piped straight into a decoder.
	tableOut := stdout
	if *jsonPath == "-" {
		tableOut = stderr
	}

	r := harness.NewRunner(*scale)
	r.Jobs = *jobs
	r.Verify = *verify
	r.KeepGoing = *keepGoing
	r.MaxCycles = *maxCycles
	r.RunTimeout = *deadline
	r.BaseCtx = ctx
	if *storeDir != "" {
		st, err := harness.OpenStore(*storeDir)
		if err != nil {
			return errorf("%v", err)
		}
		r.Store = st
	}
	if *metrics {
		pp := &progressPrinter{r: r, w: stderr}
		r.OnProgress = pp.report
	}

	// Observability wiring: the journal bus exists whenever anything wants
	// the event stream — a -journal file sink, a -listen /status tracker,
	// or a -host-sample feed. Everything hangs off the same bus so the
	// file, the live server, and the samples all see one event order.
	var jr *journal.Journal
	if *journalPath != "" {
		j, err := journal.Open(*journalPath, "cfdbench")
		if err != nil {
			return errorf("%v", err)
		}
		jr = j
	} else if *listenAddr != "" || *hostSample > 0 {
		jr = journal.New("cfdbench")
	}
	if jr != nil {
		r.Journal = jr
		defer jr.Close()
		if r.Store != nil {
			r.Store.OnQuarantine = func(entry, reason string) {
				jr.Emit(journal.Event{Type: journal.StoreQuarantine, Entry: entry, Reason: reason})
			}
			r.Store.OnRetry = func() {
				jr.TryEmit(journal.Event{Type: journal.StoreRetry})
			}
		}
	}
	var sampler *obs.HostSampler
	var srv *serve.Server
	if *listenAddr != "" || *hostSample > 0 {
		reg := obs.NewRegistry()
		r.RegisterMetrics(reg)
		if r.Store != nil {
			r.Store.RegisterMetrics(reg)
		}
		if *hostSample > 0 {
			sampler = obs.StartHostSampler(reg, *hostSample, func(hs obs.HostStats) {
				jr.TryEmit(journal.Event{Type: journal.HostSample, Host: &hs})
			})
			defer sampler.Stop()
		}
		if *listenAddr != "" {
			tr := serve.NewTracker()
			jr.Subscribe(tr.Observe)
			srv = serve.New("cfdbench", reg, tr)
			srv.Runner = r
			srv.Journal = jr
			addr, err := srv.Start(*listenAddr)
			if err != nil {
				return errorf("%v", err)
			}
			fmt.Fprintf(stderr, "cfdbench: serving /metrics, /status, /debug/pprof on http://%s\n", addr)
			defer func() {
				sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				srv.Shutdown(sctx) //nolint:errcheck // best-effort teardown
			}()
		}
	}
	var records []export.Experiment
	failedExps := 0
	interrupted := false
	if mf != nil {
		name := manifestName(mf, *manifestPath)
		r.ManifestDigest = mf.Digest()
		start := time.Now()
		fmt.Fprintf(tableOut, "### manifest %s — %d specs\n\n", name, len(mfSpecs))
		if err := r.Prefetch(mfSpecs...); err != nil {
			switch {
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				interrupted = true
				fmt.Fprintf(stderr, "cfdbench: manifest %s: interrupted, drained in-flight runs\n", name)
			case !*keepGoing:
				return errorf("manifest %s: %v", name, err)
			default:
				failedExps++
				fmt.Fprintf(stderr, "cfdbench: manifest %s: %v (continuing)\n", name, err)
			}
		}
		m := r.Metrics()
		if !interrupted {
			fmt.Fprintf(tableOut, "manifest %s: swept %d specs (%d failed)\n\n",
				name, len(mfSpecs), len(r.Failures()))
		}
		records = append(records, export.Experiment{
			ID: "manifest:" + name, Title: "manifest sweep " + name, Metrics: m})
		fmt.Fprintf(stderr, "(manifest %s in %.1fs: %d lookups, %d simulated, %d cache hits)\n",
			name, time.Since(start).Seconds(), m.Lookups, m.Simulations, m.CacheHits)
	}
	for _, e := range exps {
		if ctx.Err() != nil {
			// Signal received between experiments: skip the rest. The
			// completed (and, in-store, persisted) work is kept; a rerun
			// with the same -store resumes from here.
			interrupted = true
			break
		}
		start := time.Now()
		before := r.Metrics()
		fmt.Fprintf(tableOut, "### %s — %s\n\n", e.ID, e.Title)
		if err := r.RunExperiment(e, tableOut); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// The drain already happened inside Sweep: every
				// in-flight simulation completed and flushed before the
				// cancellation error surfaced here.
				interrupted = true
				fmt.Fprintf(stderr, "cfdbench: %s: interrupted, drained in-flight runs\n", e.ID)
				break
			}
			if !*keepGoing {
				return errorf("%s: %v", e.ID, err)
			}
			// Keep-going mode: the failed run is memoized as a fault and
			// exported; the remaining experiments still execute.
			failedExps++
			fmt.Fprintf(stderr, "cfdbench: %s: %v (continuing)\n", e.ID, err)
		}
		m := r.Metrics().Sub(before)
		records = append(records, export.Experiment{ID: e.ID, Title: e.Title, Metrics: m})
		// Timing and cache metrics go to stderr so stdout is a
		// deterministic artifact: byte-identical for any -jobs value,
		// diffable across runs.
		fmt.Fprintf(stderr, "(%s in %.1fs: %d lookups, %d simulated, %d cache hits)\n",
			e.ID, time.Since(start).Seconds(), m.Lookups, m.Simulations, m.CacheHits)
		fmt.Fprintln(tableOut)
	}

	// End-of-run cache totals: how much work the memoizing Runner saved.
	tot := r.Metrics()
	hitRate := 0.0
	if tot.Lookups > 0 {
		hitRate = float64(tot.CacheHits) / float64(tot.Lookups)
	}
	fmt.Fprintf(stderr, "cfdbench: runner cache: %d lookups, %d simulated, %d hits (%.0f%% hit rate)\n",
		tot.Lookups, tot.Simulations, tot.CacheHits, 100*hitRate)
	if r.Store != nil {
		sm := r.Store.Metrics()
		entries := "?"
		if n, err := r.Store.Len(); err == nil {
			entries = fmt.Sprint(n)
		}
		fmt.Fprintf(stderr, "cfdbench: store %s: %d hits, %d misses, %d puts, %d quarantined, %d retries (%s entries on disk)\n",
			r.Store.Dir(), sm.Hits, sm.Misses, sm.Puts, sm.Quarantines, sm.Retries, entries)
	}

	// Finalize the journal before the export document is built, so the
	// document's journal section reports the final event count and the
	// file on disk is complete (Close is idempotent; the defer is the
	// early-error backstop). The sampler stops first — no samples after
	// the trailer.
	if jr != nil {
		sampler.Stop()
		if err := jr.Close(); err != nil {
			fmt.Fprintf(stderr, "cfdbench: journal: %v\n", err)
		}
		if n := jr.Dropped(); n > 0 {
			fmt.Fprintf(stderr, "cfdbench: journal: %d informational events dropped (bus full)\n", n)
		}
		fmt.Fprintf(stderr, "cfdbench: journal: %d events\n", jr.Events())
	}

	if *jsonPath != "" {
		doc := export.Build("cfdbench", r, records)
		if mf != nil {
			doc.Manifest = &export.ManifestSection{
				Path:    *manifestPath,
				Name:    mf.Name,
				Schema:  mf.Schema,
				Version: mf.Version,
				Digest:  mf.Digest(),
				Specs:   len(mfSpecs),
			}
		}
		var err error
		if *jsonPath == "-" {
			err = export.Encode(stdout, doc)
		} else {
			err = export.WriteFile(*jsonPath, doc)
		}
		if err != nil {
			return errorf("%v", err)
		}
	}
	if *traceOut != "" {
		if err := r.Trace().WriteFile(*traceOut); err != nil {
			return errorf("%v", err)
		}
	}
	if *journalSorted && *journalPath != "" {
		if err := journal.RewriteSorted(*journalPath); err != nil {
			return errorf("%v", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return errorf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return errorf("heap profile: %v", err)
		}
		f.Close()
	}
	if interrupted {
		fmt.Fprintln(stderr, "cfdbench: interrupted; completed work persisted, rerun with the same -store to resume")
		return exitInterrupted
	}
	if failedExps > 0 {
		return errorf("%d experiment(s) had failing runs (recorded in the JSON faults section)", failedExps)
	}
	return 0
}

// manifestName labels a manifest run: the declared name, or the file path
// for anonymous manifests.
func manifestName(m *manifest.Manifest, path string) string {
	if m.Name != "" {
		return m.Name
	}
	return path
}

// progressPrinter streams one stderr line per completed simulation. The
// Runner serializes calls, so the fields need no extra locking; a sweep
// restart is detected by the counter resetting to 1.
type progressPrinter struct {
	r     *harness.Runner
	w     io.Writer
	start time.Time
	// simDone counts this sweep's fresh simulations — the ETA estimator's
	// denominator. Cache and store hits complete near-instantly, so
	// averaging over them would collapse the estimate on a resumed sweep
	// and make the ETA jump when the resumed prefix ends.
	simDone int
}

func (p *progressPrinter) report(ev harness.ProgressEvent) {
	if ev.Completed == 1 {
		p.start = time.Now()
		p.simDone = 0
	}
	if !ev.CacheHit && !ev.StoreHit {
		p.simDone++
	}
	eta := etaString(time.Since(p.start), p.simDone, ev.Completed, ev.Total)
	m := p.r.Metrics()
	hitRate := 0.0
	if m.Lookups > 0 {
		hitRate = float64(m.CacheHits) / float64(m.Lookups)
	}
	status := "ok"
	if ev.Err != nil {
		status = "FAIL"
	}
	// With a store attached, say how many cache misses were restored from
	// disk instead of simulated — the live view of a resumed sweep.
	stored := ""
	if p.r.Store != nil {
		stored = fmt.Sprintf("  store hits %d", p.r.Store.Metrics().Hits)
	}
	fmt.Fprintf(p.w, "  [%d/%d] %-48s %-4s  hit rate %3.0f%%%s  eta %s\n",
		ev.Completed, ev.Total,
		fmt.Sprintf("%s/%s @ %s", ev.Spec.Workload, ev.Spec.Variant, ev.Spec.Config.Name),
		status, 100*hitRate, stored, eta)
}

// etaString estimates time to sweep completion from fresh simulations
// only: elapsed / simDone gives the per-simulation cost, times the specs
// still outstanding. Monotone-safe on resumed sweeps — a run that opens
// with thousands of near-instant store hits reports "-" until the first
// real simulation lands, instead of a wildly optimistic figure that
// balloons once fresh work starts.
func etaString(elapsed time.Duration, simDone, completed, total int) string {
	if simDone <= 0 || completed >= total {
		return "-"
	}
	per := elapsed / time.Duration(simDone)
	return (per * time.Duration(total-completed)).Round(100 * time.Millisecond).String()
}
