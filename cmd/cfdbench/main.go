// Command cfdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cfdbench -exp all            # every experiment
//	cfdbench -exp fig18          # one experiment
//	cfdbench -exp fig18,fig24    # several
//	cfdbench -list               # list experiment IDs
//	cfdbench -scale 0.2          # reduce workload sizes (1.0 = full)
//	cfdbench -jobs 8             # simulation parallelism (default GOMAXPROCS)
//	cfdbench -verify             # cross-check every run against the emulator
//	cfdbench -json out.json      # export every run as schema-versioned JSON
//	cfdbench -keep-going         # run every simulation even when some fault
//	cfdbench -max-cycles N       # per-run watchdog cycle budget
//	cfdbench -deadline 5m        # per-run watchdog wall-clock deadline
//	cfdbench -metrics            # stream per-simulation progress to stderr
//	cfdbench -trace-out t.json   # Perfetto trace of the sweeps (virtual time)
//	cfdbench -cpuprofile cpu.pb  # write a pprof CPU profile
//	cfdbench -memprofile mem.pb  # write a pprof heap profile
//
// -metrics prints one stderr line per completed simulation — status, the
// Runner's cumulative cache hit rate, and an ETA for the current sweep —
// without touching stdout, which stays a deterministic artifact. The
// end-of-run cache totals print on stderr regardless.
//
// -trace-out lays every memoized run end to end on a virtual timeline (one
// span per sweep cell, as wide as its simulated cycles, annotated with
// cache hits and fault outcome) in Chrome trace-event JSON for
// ui.perfetto.dev; like the stdout tables, the trace is byte-identical for
// any -jobs value.
//
// Each experiment submits all of its simulations up front and fans them
// across -jobs workers, then assembles its rows serially — so the output
// is byte-identical for any -jobs value (-jobs 1 reproduces the historical
// strictly serial behavior).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cfd/internal/export"
	"cfd/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment IDs (comma separated) or 'all'")
		scale      = flag.Float64("scale", 0.25, "workload size scale factor (1.0 = full evaluation)")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
		verify     = flag.Bool("verify", false, "differentially verify every run against the functional emulator")
		list       = flag.Bool("list", false, "list experiments")
		jsonPath   = flag.String("json", "", "write every run's counters, CPI stack, and energy as JSON to this path ('-' = stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path on exit")

		keepGoing = flag.Bool("keep-going", false, "complete every simulation even when some fail; failures land in the JSON faults section")
		maxCycles = flag.Uint64("max-cycles", 0, "per-run watchdog cycle budget (0 = unlimited)")
		deadline  = flag.Duration("deadline", 0, "per-run watchdog wall-clock deadline (0 = none)")

		metrics  = flag.Bool("metrics", false, "stream per-simulation progress (status, cache hit rate, ETA) to stderr")
		traceOut = flag.String("trace-out", "", "write a Chrome/Perfetto trace of the sweeps to this path ('-' = stdout)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpu profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []*harness.Experiment
	if *exp == "all" {
		exps = harness.AllExperiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cfdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	r := harness.NewRunner(*scale)
	r.Jobs = *jobs
	r.Verify = *verify
	r.KeepGoing = *keepGoing
	r.MaxCycles = *maxCycles
	r.RunTimeout = *deadline
	if *metrics {
		pp := &progressPrinter{r: r}
		r.OnProgress = pp.report
	}
	var records []export.Experiment
	failedExps := 0
	for _, e := range exps {
		start := time.Now()
		before := r.Metrics()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, os.Stdout); err != nil {
			if !*keepGoing {
				fatalf("%s: %v", e.ID, err)
			}
			// Keep-going mode: the failed run is memoized as a fault and
			// exported; the remaining experiments still execute.
			failedExps++
			fmt.Fprintf(os.Stderr, "cfdbench: %s: %v (continuing)\n", e.ID, err)
		}
		m := r.Metrics().Sub(before)
		records = append(records, export.Experiment{ID: e.ID, Title: e.Title, Metrics: m})
		// Timing and cache metrics go to stderr so stdout is a
		// deterministic artifact: byte-identical for any -jobs value,
		// diffable across runs.
		fmt.Fprintf(os.Stderr, "(%s in %.1fs: %d lookups, %d simulated, %d cache hits)\n",
			e.ID, time.Since(start).Seconds(), m.Lookups, m.Simulations, m.CacheHits)
		fmt.Println()
	}

	// End-of-run cache totals: how much work the memoizing Runner saved.
	tot := r.Metrics()
	hitRate := 0.0
	if tot.Lookups > 0 {
		hitRate = float64(tot.CacheHits) / float64(tot.Lookups)
	}
	fmt.Fprintf(os.Stderr, "cfdbench: runner cache: %d lookups, %d simulated, %d hits (%.0f%% hit rate)\n",
		tot.Lookups, tot.Simulations, tot.CacheHits, 100*hitRate)

	if *jsonPath != "" {
		if err := export.WriteFile(*jsonPath, export.Build("cfdbench", r, records)); err != nil {
			fatalf("%v", err)
		}
	}
	if *traceOut != "" {
		if err := r.Trace().WriteFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("heap profile: %v", err)
		}
		f.Close()
	}
	if failedExps > 0 {
		fatalf("%d experiment(s) had failing runs (recorded in the JSON faults section)", failedExps)
	}
}

// progressPrinter streams one stderr line per completed simulation. The
// Runner serializes calls, so the fields need no extra locking; a sweep
// restart is detected by the counter resetting to 1.
type progressPrinter struct {
	r     *harness.Runner
	start time.Time
}

func (p *progressPrinter) report(ev harness.ProgressEvent) {
	if ev.Completed == 1 {
		p.start = time.Now()
	}
	eta := "-"
	if ev.Completed > 0 && ev.Completed < ev.Total {
		per := time.Since(p.start) / time.Duration(ev.Completed)
		eta = (per * time.Duration(ev.Total-ev.Completed)).Round(100 * time.Millisecond).String()
	}
	m := p.r.Metrics()
	hitRate := 0.0
	if m.Lookups > 0 {
		hitRate = float64(m.CacheHits) / float64(m.Lookups)
	}
	status := "ok"
	if ev.Err != nil {
		status = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "  [%d/%d] %-48s %-4s  hit rate %3.0f%%  eta %s\n",
		ev.Completed, ev.Total,
		fmt.Sprintf("%s/%s @ %s", ev.Spec.Workload, ev.Spec.Variant, ev.Spec.Config.Name),
		status, 100*hitRate, eta)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cfdbench: "+format+"\n", args...)
	os.Exit(1)
}
