// Command cfdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cfdbench -exp all            # every experiment
//	cfdbench -exp fig18          # one experiment
//	cfdbench -exp fig18,fig24    # several
//	cfdbench -list               # list experiment IDs
//	cfdbench -scale 0.2          # reduce workload sizes (1.0 = full)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cfd/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment IDs (comma separated) or 'all'")
		scale = flag.Float64("scale", 0.25, "workload size scale factor (1.0 = full evaluation)")
		list  = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []*harness.Experiment
	if *exp == "all" {
		exps = harness.AllExperiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cfdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	r := harness.NewRunner(*scale)
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cfdbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
}
