// Command cfdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	cfdbench -exp all            # every experiment
//	cfdbench -exp fig18          # one experiment
//	cfdbench -exp fig18,fig24    # several
//	cfdbench -list               # list experiment IDs
//	cfdbench -scale 0.2          # reduce workload sizes (1.0 = full)
//	cfdbench -jobs 8             # simulation parallelism (default GOMAXPROCS)
//	cfdbench -verify             # cross-check every run against the emulator
//
// Each experiment submits all of its simulations up front and fans them
// across -jobs workers, then assembles its rows serially — so the output
// is byte-identical for any -jobs value (-jobs 1 reproduces the historical
// strictly serial behavior).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"cfd/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment IDs (comma separated) or 'all'")
		scale  = flag.Float64("scale", 0.25, "workload size scale factor (1.0 = full evaluation)")
		jobs   = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial)")
		verify = flag.Bool("verify", false, "differentially verify every run against the functional emulator")
		list   = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var exps []*harness.Experiment
	if *exp == "all" {
		exps = harness.AllExperiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cfdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			exps = append(exps, e)
		}
	}

	r := harness.NewRunner(*scale)
	r.Jobs = *jobs
	r.Verify = *verify
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(r, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cfdbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		// Timing goes to stderr so stdout is a deterministic artifact:
		// byte-identical for any -jobs value, diffable across runs.
		fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", e.ID, time.Since(start).Seconds())
		fmt.Println()
	}
}
