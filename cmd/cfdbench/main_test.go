package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"cfd/internal/export"
	"cfd/internal/harness"
	"cfd/internal/obs/journal"
)

// TestJSONStdoutPurity pins the `-json -` contract: whatever other flags
// are set (-metrics progress lines, -keep-going), stdout carries exactly
// one decodable JSON document and every human-readable line lands on
// stderr.
func TestJSONStdoutPurity(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
		"-metrics", "-keep-going", "-json", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}

	doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not one clean JSON document: %v\nstdout:\n%.2000s", err, stdout.String())
	}
	if len(doc.Runs) == 0 {
		t.Error("decoded document has no runs")
	}

	// The tables and the per-simulation progress moved to stderr.
	if strings.Contains(stdout.String(), "### fig18") {
		t.Error("experiment table header leaked onto stdout")
	}
	if !strings.Contains(stderr.String(), "### fig18") {
		t.Error("experiment table header missing from stderr")
	}
	if !strings.Contains(stderr.String(), "hit rate") {
		t.Error("-metrics progress lines missing from stderr")
	}
}

// TestSpeedWorkDeterminism pins the -speed work/host split: two separate
// invocations must agree byte-for-byte on the simulated-work section and
// may differ only in the wall-clock host section.
func TestSpeedWorkDeterminism(t *testing.T) {
	speed := func() *harness.SpeedDoc {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-speed", "-", "-speed-runs", "1"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		var doc harness.SpeedDoc
		if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
			t.Fatalf("stdout is not a speed document: %v", err)
		}
		return &doc
	}

	a, b := speed(), speed()
	if a.Schema != harness.SpeedSchema || a.Version != harness.SpeedVersion {
		t.Fatalf("schema %q v%d, want %q v%d", a.Schema, a.Version, harness.SpeedSchema, harness.SpeedVersion)
	}
	if len(a.Work) == 0 {
		t.Fatal("speed document has no work rows")
	}
	if !reflect.DeepEqual(a.Work, b.Work) {
		t.Errorf("simulated-work sections differ between runs\nfirst:  %+v\nsecond: %+v", a.Work, b.Work)
	}
	if len(a.Host.Rows) != len(a.Work) {
		t.Fatalf("%d host rows for %d work rows", len(a.Host.Rows), len(a.Work))
	}
	for _, r := range a.Host.Rows {
		if r.EmuSeconds <= 0 || r.PipeSeconds <= 0 {
			t.Errorf("%s/%s: non-positive wall-clock (emu %g, pipe %g)",
				r.Workload, r.Variant, r.EmuSeconds, r.PipeSeconds)
		}
	}
	if a.Host.AggregateMIPS <= 0 {
		t.Error("aggregate MIPS is non-positive")
	}
}

// TestStoreResumeConverges pins the -store resume contract end to end: a
// rerun over a store with missing and corrupted entries re-simulates only
// those cells and produces byte-identical stdout tables and JSON (after
// stripping the process-history-dependent store section, exactly as the CI
// resume gate does with jq 'del(.store)').
func TestStoreResumeConverges(t *testing.T) {
	dir := t.TempDir()
	storeDir := dir + "/store"
	args := func() []string {
		return []string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
			"-store", storeDir, "-json", "-"}
	}
	invoke := func() (stdoutTables string, stripped []byte, doc *export.Document) {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), args(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
		if err != nil {
			t.Fatalf("decoding stdout: %v", err)
		}
		if doc.Store == nil {
			t.Fatal("document from a -store run has no store section")
		}
		doc.Store = nil
		stripped, err = json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return stderr.String(), stripped, doc
	}

	_, first, firstDoc := invoke()
	if firstDoc.Experiments[0].Metrics.Simulations == 0 {
		t.Fatal("first run simulated nothing")
	}

	// Sabotage the store: delete one entry, bit-flip another.
	entries, err := filepath.Glob(storeDir + "/entries/*.json")
	if err != nil || len(entries) < 3 {
		t.Fatalf("store has %d entries (err %v); need at least 3", len(entries), err)
	}
	sort.Strings(entries)
	if err := os.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, second, _ := invoke()
	if !bytes.Equal(first, second) {
		t.Errorf("resumed run's document (store section stripped) differs from the original\nfirst:  %.2000s\nsecond: %.2000s", first, second)
	}

	// The corrupt entry must have been quarantined, not trusted.
	q, err := filepath.Glob(storeDir + "/quarantine/*.json")
	if err != nil || len(q) == 0 {
		t.Errorf("corrupt entry was not quarantined (err %v)", err)
	}

	// Third run: the store is healed, so nothing re-simulates.
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), args(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), " 0 misses,") {
		t.Errorf("healed store still missed:\n%s", stderr.String())
	}
}

// TestEtaString pins the monotone-safe ETA estimator: a sweep with no
// fresh simulations yet (the store-hit prefix of a resumed run) and a
// finished sweep both report "-"; otherwise the estimate is the
// per-simulation cost times the outstanding specs.
func TestEtaString(t *testing.T) {
	cases := []struct {
		elapsed                   time.Duration
		simDone, completed, total int
		want                      string
	}{
		{10 * time.Second, 0, 5, 10, "-"},   // store hits only: no basis yet
		{10 * time.Second, 5, 10, 10, "-"},  // sweep complete
		{10 * time.Second, 10, 12, 10, "-"}, // restarted-counter edge: never negative
		{10 * time.Second, 5, 5, 10, "10s"}, // 2s/sim, 5 outstanding
		// Resumed sweep: 8 store hits + 2 fresh sims in 4s. The simulated-only
		// denominator gives 2s/sim × 90 left, not the 0.4s/cell blended rate.
		{4 * time.Second, 2, 10, 100, "3m0s"},
	}
	for i, tc := range cases {
		if got := etaString(tc.elapsed, tc.simDone, tc.completed, tc.total); got != tc.want {
			t.Errorf("case %d: etaString = %q, want %q", i, got, tc.want)
		}
	}
}

// TestJournalEndToEnd drives -journal, -listen, -host-sample, and -json
// together through run(): the journal on disk validates, every completion
// it records as stored is actually in the store (the invariant the CI
// resume gate checks after a SIGKILL), the live server announces itself,
// and the exported document carries the journal section.
func TestJournalEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.journal")
	storeDir := filepath.Join(dir, "store")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
		"-store", storeDir, "-journal", jpath,
		"-listen", "127.0.0.1:0", "-host-sample", "20ms",
		"-json", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "serving /metrics") {
		t.Errorf("-listen did not announce its address:\n%s", stderr.String())
	}

	events, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := journal.Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Truncated {
		t.Error("cleanly closed journal reads as truncated")
	}
	if sum.Sweeps == 0 || sum.Done == 0 || sum.OK != sum.Done {
		t.Fatalf("journal summary = %+v", sum)
	}
	if sum.HostSamples == 0 {
		t.Error("-host-sample journaled no host samples")
	}

	st, err := harness.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	keys := journal.CompletedKeys(events, true)
	if len(keys) == 0 {
		t.Fatal("journal records no stored completions")
	}
	for _, k := range keys {
		if _, ok, err := st.Get(k); err != nil || !ok {
			t.Fatalf("journaled stored key %q not in store (ok=%v err=%v)", k, ok, err)
		}
	}

	doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Journal == nil {
		t.Fatal("exported document has no journal section")
	}
	if doc.Journal.Path != jpath || doc.Journal.Schema != journal.Schema ||
		doc.Journal.Version != journal.Version || doc.Journal.Events == 0 {
		t.Fatalf("document journal section = %+v", doc.Journal)
	}
}

// TestJournalSortedCanonical pins the -journal-sorted CLI contract: the
// file is rewritten on exit into the canonical replay — no per-process
// seq/ts fields — and is byte-identical across -jobs settings.
func TestJournalSortedCanonical(t *testing.T) {
	sorted := func(jobs string) []byte {
		jpath := filepath.Join(t.TempDir(), "sweep.journal")
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-exp", "fig18", "-scale", "0.05",
			"-jobs", jobs, "-journal", jpath, "-journal-sorted"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		data, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := sorted("1"), sorted("4")
	if !bytes.Equal(a, b) {
		t.Errorf("sorted journal differs between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
	if bytes.Contains(a, []byte(`"seq"`)) || bytes.Contains(a, []byte(`"ts"`)) {
		t.Error("sorted journal retains per-process seq/ts fields")
	}
}

// TestInterruptExitCode pins the drain contract's exit code: a cancelled
// context (what SIGINT/SIGTERM produce via signal.NotifyContext) makes run
// skip the sweeps and exit with the distinct resumable code 3.
func TestInterruptExitCode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-exp", "fig18", "-scale", "0.05",
		"-store", t.TempDir()}, &stdout, &stderr)
	if code != exitInterrupted {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitInterrupted, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume") {
		t.Errorf("interrupted exit did not mention resuming:\n%s", stderr.String())
	}
}

// TestListShowsSpecCounts: -list prints each experiment's embedded-
// manifest expansion size, with "-" for experiments that sweep no specs.
func TestListShowsSpecCounts(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	lines := map[string]string{}
	for _, ln := range strings.Split(stdout.String(), "\n") {
		f := strings.Fields(ln)
		if len(f) >= 2 {
			lines[f[0]] = f[1]
		}
	}
	e, _ := harness.ByID("fig18")
	specs, err := e.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(len(specs)); lines["fig18"] != want {
		t.Errorf("fig18 spec count column = %q, want %q", lines["fig18"], want)
	}
	if lines["table5"] != "-" {
		t.Errorf("table5 spec count column = %q, want \"-\"", lines["table5"])
	}
}

// TestManifestExpandDeterministicAcrossJobs: the -manifest-expand dry run
// is byte-identical whatever -jobs is set to — the sorted spec-key list is
// a pure function of the manifest.
func TestManifestExpandDeterministicAcrossJobs(t *testing.T) {
	expand := func(jobs string) string {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-manifest", "../../examples/manifest/sweep.json",
			"-manifest-expand", "-jobs", jobs}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		return stdout.String()
	}
	a, b := expand("1"), expand("8")
	if a != b {
		t.Fatal("-manifest-expand output differs across -jobs settings")
	}
	if !strings.Contains(a, "96 specs") {
		t.Errorf("expand header: %q", strings.SplitN(a, "\n", 2)[0])
	}
	if got := strings.Count(a, "\n"); got != 97 { // header + 96 keys
		t.Errorf("expand printed %d lines, want 97", got)
	}
}

// TestManifestEndToEnd: a -manifest sweep persists to the store, exports a
// deterministic manifest provenance section, stamps the journal's
// sweep_start with the manifest digest, and a rerun with the same store
// converges without re-simulating.
func TestManifestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mfPath := filepath.Join(dir, "m.json")
	doc := `{
	  "schema": "cfd-manifest", "version": 1, "name": "e2e",
	  "sweeps": [{
	    "workloads": {"names": ["mcflike", "soplexlike"]},
	    "variants": [{"variant": "base"}, {"variant": "cfd"}],
	    "configs": [{"set": {"FrontEndDepth": 12}}]
	  }]
	}`
	if err := os.WriteFile(mfPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(dir, "store")
	jPath := filepath.Join(dir, "run.journal")

	sweep := func(journalPath string) *export.Document {
		var stdout, stderr bytes.Buffer
		args := []string{"-manifest", mfPath, "-scale", "0.05", "-store", storeDir, "-json", "-"}
		if journalPath != "" {
			args = append(args, "-journal", journalPath)
		}
		if code := run(context.Background(), args, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		d, err := export.Decode(bytes.NewReader(stdout.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return d
	}

	first := sweep(jPath)
	if first.Manifest == nil {
		t.Fatal("document has no manifest section")
	}
	if first.Manifest.Name != "e2e" || first.Manifest.Specs != 4 ||
		first.Manifest.Schema != "cfd-manifest" || first.Manifest.Digest == "" {
		t.Fatalf("manifest section: %+v", first.Manifest)
	}
	if len(first.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(first.Runs))
	}

	// The journal's sweep_start carries the manifest digest.
	jdata, err := os.ReadFile(jPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jdata), `"manifest":"`+first.Manifest.Digest+`"`) {
		t.Error("journal sweep_start does not carry the manifest digest")
	}

	// Rerun: everything restores from the store; the deterministic sections
	// (runs + manifest) are identical.
	second := sweep("")
	if !reflect.DeepEqual(first.Runs, second.Runs) {
		t.Error("resumed run's runs section diverges")
	}
	if !reflect.DeepEqual(first.Manifest, second.Manifest) {
		t.Error("manifest sections diverge across runs")
	}
	if second.Store == nil || second.Store.Metrics.Hits != 4 || second.Store.Metrics.Misses != 0 {
		t.Errorf("rerun store metrics: %+v", second.Store)
	}
}

// TestManifestExpandRequiresManifest: -manifest-expand without -manifest
// is a usage error, and a bad manifest file fails before simulating.
func TestManifestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-manifest-expand"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-manifest-expand alone: exit %d, want 1", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-manifest", bad}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad manifest: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "schema") {
		t.Errorf("bad-manifest error not reported: %s", stderr.String())
	}
}
