package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"cfd/internal/export"
	"cfd/internal/harness"
)

// TestJSONStdoutPurity pins the `-json -` contract: whatever other flags
// are set (-metrics progress lines, -keep-going), stdout carries exactly
// one decodable JSON document and every human-readable line lands on
// stderr.
func TestJSONStdoutPurity(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
		"-metrics", "-keep-going", "-json", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}

	doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not one clean JSON document: %v\nstdout:\n%.2000s", err, stdout.String())
	}
	if len(doc.Runs) == 0 {
		t.Error("decoded document has no runs")
	}

	// The tables and the per-simulation progress moved to stderr.
	if strings.Contains(stdout.String(), "### fig18") {
		t.Error("experiment table header leaked onto stdout")
	}
	if !strings.Contains(stderr.String(), "### fig18") {
		t.Error("experiment table header missing from stderr")
	}
	if !strings.Contains(stderr.String(), "hit rate") {
		t.Error("-metrics progress lines missing from stderr")
	}
}

// TestSpeedWorkDeterminism pins the -speed work/host split: two separate
// invocations must agree byte-for-byte on the simulated-work section and
// may differ only in the wall-clock host section.
func TestSpeedWorkDeterminism(t *testing.T) {
	speed := func() *harness.SpeedDoc {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-speed", "-", "-speed-runs", "1"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		var doc harness.SpeedDoc
		if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
			t.Fatalf("stdout is not a speed document: %v", err)
		}
		return &doc
	}

	a, b := speed(), speed()
	if a.Schema != harness.SpeedSchema || a.Version != harness.SpeedVersion {
		t.Fatalf("schema %q v%d, want %q v%d", a.Schema, a.Version, harness.SpeedSchema, harness.SpeedVersion)
	}
	if len(a.Work) == 0 {
		t.Fatal("speed document has no work rows")
	}
	if !reflect.DeepEqual(a.Work, b.Work) {
		t.Errorf("simulated-work sections differ between runs\nfirst:  %+v\nsecond: %+v", a.Work, b.Work)
	}
	if len(a.Host.Rows) != len(a.Work) {
		t.Fatalf("%d host rows for %d work rows", len(a.Host.Rows), len(a.Work))
	}
	for _, r := range a.Host.Rows {
		if r.EmuSeconds <= 0 || r.PipeSeconds <= 0 {
			t.Errorf("%s/%s: non-positive wall-clock (emu %g, pipe %g)",
				r.Workload, r.Variant, r.EmuSeconds, r.PipeSeconds)
		}
	}
	if a.Host.AggregateMIPS <= 0 {
		t.Error("aggregate MIPS is non-positive")
	}
}
