package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cfd/internal/export"
	"cfd/internal/harness"
)

// TestJSONStdoutPurity pins the `-json -` contract: whatever other flags
// are set (-metrics progress lines, -keep-going), stdout carries exactly
// one decodable JSON document and every human-readable line lands on
// stderr.
func TestJSONStdoutPurity(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
		"-metrics", "-keep-going", "-json", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}

	doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("stdout is not one clean JSON document: %v\nstdout:\n%.2000s", err, stdout.String())
	}
	if len(doc.Runs) == 0 {
		t.Error("decoded document has no runs")
	}

	// The tables and the per-simulation progress moved to stderr.
	if strings.Contains(stdout.String(), "### fig18") {
		t.Error("experiment table header leaked onto stdout")
	}
	if !strings.Contains(stderr.String(), "### fig18") {
		t.Error("experiment table header missing from stderr")
	}
	if !strings.Contains(stderr.String(), "hit rate") {
		t.Error("-metrics progress lines missing from stderr")
	}
}

// TestSpeedWorkDeterminism pins the -speed work/host split: two separate
// invocations must agree byte-for-byte on the simulated-work section and
// may differ only in the wall-clock host section.
func TestSpeedWorkDeterminism(t *testing.T) {
	speed := func() *harness.SpeedDoc {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), []string{"-speed", "-", "-speed-runs", "1"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		var doc harness.SpeedDoc
		if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
			t.Fatalf("stdout is not a speed document: %v", err)
		}
		return &doc
	}

	a, b := speed(), speed()
	if a.Schema != harness.SpeedSchema || a.Version != harness.SpeedVersion {
		t.Fatalf("schema %q v%d, want %q v%d", a.Schema, a.Version, harness.SpeedSchema, harness.SpeedVersion)
	}
	if len(a.Work) == 0 {
		t.Fatal("speed document has no work rows")
	}
	if !reflect.DeepEqual(a.Work, b.Work) {
		t.Errorf("simulated-work sections differ between runs\nfirst:  %+v\nsecond: %+v", a.Work, b.Work)
	}
	if len(a.Host.Rows) != len(a.Work) {
		t.Fatalf("%d host rows for %d work rows", len(a.Host.Rows), len(a.Work))
	}
	for _, r := range a.Host.Rows {
		if r.EmuSeconds <= 0 || r.PipeSeconds <= 0 {
			t.Errorf("%s/%s: non-positive wall-clock (emu %g, pipe %g)",
				r.Workload, r.Variant, r.EmuSeconds, r.PipeSeconds)
		}
	}
	if a.Host.AggregateMIPS <= 0 {
		t.Error("aggregate MIPS is non-positive")
	}
}

// TestStoreResumeConverges pins the -store resume contract end to end: a
// rerun over a store with missing and corrupted entries re-simulates only
// those cells and produces byte-identical stdout tables and JSON (after
// stripping the process-history-dependent store section, exactly as the CI
// resume gate does with jq 'del(.store)').
func TestStoreResumeConverges(t *testing.T) {
	dir := t.TempDir()
	storeDir := dir + "/store"
	args := func() []string {
		return []string{"-exp", "fig18", "-scale", "0.05", "-jobs", "2",
			"-store", storeDir, "-json", "-"}
	}
	invoke := func() (stdoutTables string, stripped []byte, doc *export.Document) {
		var stdout, stderr bytes.Buffer
		code := run(context.Background(), args(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
		}
		doc, err := export.Decode(bytes.NewReader(stdout.Bytes()))
		if err != nil {
			t.Fatalf("decoding stdout: %v", err)
		}
		if doc.Store == nil {
			t.Fatal("document from a -store run has no store section")
		}
		doc.Store = nil
		stripped, err = json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return stderr.String(), stripped, doc
	}

	_, first, firstDoc := invoke()
	if firstDoc.Experiments[0].Metrics.Simulations == 0 {
		t.Fatal("first run simulated nothing")
	}

	// Sabotage the store: delete one entry, bit-flip another.
	entries, err := filepath.Glob(storeDir + "/entries/*.json")
	if err != nil || len(entries) < 3 {
		t.Fatalf("store has %d entries (err %v); need at least 3", len(entries), err)
	}
	sort.Strings(entries)
	if err := os.Remove(entries[0]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, second, _ := invoke()
	if !bytes.Equal(first, second) {
		t.Errorf("resumed run's document (store section stripped) differs from the original\nfirst:  %.2000s\nsecond: %.2000s", first, second)
	}

	// The corrupt entry must have been quarantined, not trusted.
	q, err := filepath.Glob(storeDir + "/quarantine/*.json")
	if err != nil || len(q) == 0 {
		t.Errorf("corrupt entry was not quarantined (err %v)", err)
	}

	// Third run: the store is healed, so nothing re-simulates.
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), args(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), " 0 misses,") {
		t.Errorf("healed store still missed:\n%s", stderr.String())
	}
}

// TestInterruptExitCode pins the drain contract's exit code: a cancelled
// context (what SIGINT/SIGTERM produce via signal.NotifyContext) makes run
// skip the sweeps and exit with the distinct resumable code 3.
func TestInterruptExitCode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-exp", "fig18", "-scale", "0.05",
		"-store", t.TempDir()}, &stdout, &stderr)
	if code != exitInterrupted {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitInterrupted, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resume") {
		t.Errorf("interrupted exit did not mention resuming:\n%s", stderr.String())
	}
}
