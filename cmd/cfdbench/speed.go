package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cfd/internal/harness"
)

// runSpeed implements -speed: the wall-clock throughput benchmark. The
// JSON document goes to path ('-' = stdout); the human-readable summary
// always goes to stderr so `-speed -` stdout stays machine-parseable,
// matching the `-json -` contract.
//
// The benchmark ignores -jobs: specs are timed serially on purpose, since
// wall-clock under parallel contention measures the host scheduler, not
// the simulator. runs is the -speed-runs median-of-K override (0 = the
// harness default).
func runSpeed(path string, runs int, stdout, stderr io.Writer) int {
	doc, err := harness.SpeedBenchmark(runs)
	if err != nil {
		fmt.Fprintf(stderr, "cfdbench: %v\n", err)
		return 1
	}

	fmt.Fprintf(stderr, "%-16s %-8s %12s %10s %12s %10s\n",
		"workload", "variant", "emu instr", "emu MIPS", "pipe cycles", "pipe MIPS")
	for i, w := range doc.Work {
		h := doc.Host.Rows[i]
		fmt.Fprintf(stderr, "%-16s %-8s %12d %10.1f %12d %10.1f\n",
			w.Workload, w.Variant, w.EmuRetired, h.EmuMIPS, w.PipeCycles, h.PipeMIPS)
	}
	fmt.Fprintf(stderr, "aggregate: emu %.1f MIPS, pipeline %.1f MIPS, combined %.1f MIPS (%s/%s, %d cpus, median of %d)\n",
		doc.Host.EmuMIPS, doc.Host.PipeMIPS, doc.Host.AggregateMIPS,
		doc.Host.GoOS, doc.Host.GoArch, doc.Host.CPUs, doc.Host.Runs)

	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stderr, "cfdbench: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "cfdbench: %v\n", err)
		return 1
	}
	return 0
}
