// Command cfdclassify runs the control-flow classification study (paper
// §II): it profiles every workload under the ISL-TAGE predictor and prints
// the MPKI table and the class breakdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cfd/internal/classify"
	"cfd/internal/stats"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.25, "workload size scale factor")
		top   = flag.Int("top", 3, "hard branches to show per workload")
	)
	flag.Parse()

	st, err := classify.Run(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfdclassify: %v\n", err)
		os.Exit(1)
	}

	t := stats.NewTable("Per-workload branch profile (ISL-TAGE)",
		"workload", "suite", "retired", "MPKI", "miss rate", "targeted")
	for _, r := range st.Reports {
		t.Addf(r.Workload, r.Suite, r.Retired, r.MPKI(), stats.Share(r.MissRate()), fmt.Sprint(r.Targeted()))
	}
	fmt.Println(t)

	for _, r := range st.Reports {
		if !r.Targeted() {
			continue
		}
		fmt.Printf("-- %s: top mispredicting branches --\n", r.Workload)
		for i, b := range r.Branches {
			if i >= *top {
				break
			}
			fmt.Printf("   pc %-6d %-40s class=%-22s execs=%-8d missrate=%s\n",
				b.PC, b.Name, b.Class, b.Execs, stats.Share(b.MissRate()))
		}
	}
	fmt.Println()

	fmt.Printf("targeted share of cumulative MPKI: %s (paper: ~78%%)\n", stats.Share(st.TargetedShare()))
	shares := st.ClassShares()
	type kv struct {
		name  string
		share float64
	}
	var rows []kv
	for c, s := range shares {
		rows = append(rows, kv{c.String(), s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	fmt.Println("targeted MPKI by class (Fig 6c):")
	for _, r := range rows {
		fmt.Printf("   %-24s %s\n", r.name, stats.Share(r.share))
	}
	fmt.Printf("separable (CFD-applicable): %s (paper: 41.4%%)\n", stats.Share(st.SeparableShare()))
}
