// Command cfdsim runs one workload variant on the cycle-level CFD core and
// prints its statistics.
//
// Usage:
//
//	cfdsim -workload soplexlike -variant cfd [-n 50000] [-window 168]
//	       [-depth 10] [-bqmiss spec|stall] [-dump-asm] [-branches]
//	       [-pipeview N] [-verify] [-json out.json] [-journal run.journal]
//	       [-sample-every N] [-trace-out trace.json] [-trace-start N] [-trace-limit N]
//	       [-max-cycles N] [-deadline 30s]
//	cfdsim -classify [-workload soplexlike]
//	cfdsim -inject 200 [-seed 1] [-json report.json]
//	cfdsim -inject-store 30 [-seed 1] [-json report.json]
//
// -classify prints the §II-B separability taxonomy for each kernel-shaped
// workload: the hard branch's class and, per pass-pipeline transform, the
// accept/reject verdict with the rejection reason. Workloads without a
// kernel form (the classification-study set) are listed as hand-built.
//
// -sample-every N attaches an interval sampler: IPC, MPKI, stall fractions,
// and BQ/VQ/TQ occupancy are recorded every N cycles, full-run occupancy
// histograms are printed, and the -json document carries the series under
// its timeseries/occupancy sections.
//
// -trace-out writes a Chrome trace-event JSON (load it in ui.perfetto.dev
// or chrome://tracing): one span per pipeline stage per traced instruction,
// plus counter tracks from the sampler when -sample-every is on. The window
// flags bound the capture: -trace-start skips that many instructions, then
// -trace-limit instructions are recorded.
//
// -max-cycles and -deadline arm a watchdog on the simulation: when the
// cycle budget or wall-clock deadline expires, the run stops with a typed
// watchdog fault and a machine-state dump instead of hanging. A run that
// ends in a fault still writes the -json document, with the fault recorded
// in its faults section.
//
// -inject runs a seeded fault-injection campaign instead of a simulation:
// N corruptions of live architectural queue state and save/restore images,
// each of which must be caught by a typed fault, a watchdog, or the
// golden-model differential check. The exit status is nonzero if any
// injection goes undetected.
//
// -inject-store is the same contract for the persistent result store: N
// corruptions of on-disk entries (torn writes, bit flips, truncation, stale
// schema versions, stripped checksums), each of which must be quarantined —
// never served — with the damaged sweep transparently re-simulating and
// converging back to the golden results.
//
// Besides the headline counters it prints the CPI stack: every simulated
// cycle attributed to exactly one bucket (retiring, CFD instruction
// overhead, fetch/BQ/TQ stalls, misprediction recovery split by the memory
// level that fed the branch, memory stalls by service level, backend), so
// the buckets sum exactly to the cycle count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/energy"
	"cfd/internal/export"
	"cfd/internal/fault"
	"cfd/internal/faultinject"
	"cfd/internal/harness"
	"cfd/internal/obs"
	"cfd/internal/obs/journal"
	"cfd/internal/pipeline"
	"cfd/internal/stats"
	"cfd/internal/workload"
	"cfd/internal/xform"
)

// occupancyChart renders one queue's full-run occupancy histogram as an
// ASCII bar chart, coarsened to at most nine depth bins so a 128-entry
// queue stays readable.
func occupancyChart(title string, q obs.QueueOccupancy) string {
	const bins = 8
	labels := []string{"0"}
	var v0 uint64
	if len(q.Counts) > 0 {
		v0 = q.Counts[0]
	}
	values := []uint64{v0}
	step := (q.Size + bins - 1) / bins
	if step < 1 {
		step = 1
	}
	for lo := 1; lo <= q.Size; lo += step {
		hi := lo + step - 1
		if hi > q.Size {
			hi = q.Size
		}
		var sum uint64
		for i := lo; i <= hi && i < len(q.Counts); i++ {
			sum += q.Counts[i]
		}
		if lo == hi {
			labels = append(labels, fmt.Sprintf("%d", lo))
		} else {
			labels = append(labels, fmt.Sprintf("%d-%d", lo, hi))
		}
		values = append(values, sum)
	}
	return stats.Histogram(fmt.Sprintf("%s (mean %.1f, max %d)", title, q.Mean, q.Max),
		labels, values)
}

func main() {
	var (
		name     = flag.String("workload", "soplexlike", "workload name (see -list)")
		variant  = flag.String("variant", "base", "variant: base, cfd, cfd+, dfd, cfd+dfd, cfdtq, cfdbq, cfdbqtq")
		n        = flag.Int64("n", 0, "input size in work items (0 = workload default)")
		window   = flag.Int("window", 168, "ROB size (168 = paper baseline; larger windows scale IQ/LQ/SQ)")
		depth    = flag.Int("depth", 10, "minimum fetch-to-execute latency in cycles")
		bqmiss   = flag.String("bqmiss", "spec", "BQ miss policy: spec (speculative pop) or stall")
		list     = flag.Bool("list", false, "list workloads and variants")
		classify = flag.Bool("classify", false, "print each kernel's separability class and per-transform accept/reject reasons")
		dumpAsm  = flag.Bool("dump-asm", false, "print the program disassembly and exit")
		branches = flag.Bool("branches", false, "print per-static-branch statistics")
		pipeview = flag.Int("pipeview", 0, "trace N instructions and print a pipeline diagram")
		verify      = flag.Bool("verify", false, "cross-check the retired state against the functional emulator")
		jsonPath    = flag.String("json", "", "write the run's counters, CPI stack, and energy as JSON to this path ('-' = stdout)")
		journalPath = flag.String("journal", "", "write a structured JSONL event journal of the run to this path")

		maxCycles   = flag.Uint64("max-cycles", 0, "watchdog cycle budget for the run (0 = unlimited)")
		deadline    = flag.Duration("deadline", 0, "watchdog wall-clock deadline for the run (0 = none)")
		inject      = flag.Int("inject", 0, "run a fault-injection campaign of N corruptions instead of a simulation")
		injectStore = flag.Int("inject-store", 0, "run a result-store corruption campaign of N corruptions instead of a simulation")
		seed        = flag.Int64("seed", 1, "fault-injection campaign seed")

		sampleEvery = flag.Uint64("sample-every", 0, "sample IPC/stall/queue-occupancy telemetry every N cycles (0 = off)")
		traceOut    = flag.String("trace-out", "", "write a Chrome/Perfetto trace of the run to this path ('-' = stdout)")
		traceStart  = flag.Int("trace-start", 0, "skip N instructions before the trace window opens")
		traceLimit  = flag.Int("trace-limit", 512, "trace window length in instructions (with -trace-out)")
	)
	flag.Parse()

	if *inject > 0 {
		runCampaign(*inject, *seed, *jsonPath)
		return
	}
	if *injectStore > 0 {
		runStoreCampaign(*injectStore, *seed, *jsonPath)
		return
	}

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-16s %-40s variants=%v defaultN=%d\n", s.Name, s.Analog, s.Variants, s.DefaultN)
		}
		return
	}

	if *classify {
		only := ""
		if isFlagSet("workload") {
			only = *name
		}
		runClassify(only)
		return
	}

	s, ok := workload.ByName(*name)
	if !ok {
		fatalf("unknown workload %q (use -list)", *name)
	}
	size := *n
	if size == 0 {
		size = s.DefaultN
	}
	p, m, err := s.Build(workload.Variant(*variant), size)
	if err != nil {
		fatalf("%v", err)
	}
	if *dumpAsm {
		fmt.Print(p.Disassemble())
		return
	}

	cfg := config.Scaled(*window).WithDepth(*depth)
	if *bqmiss == "stall" {
		cfg.BQMissPolicy = config.StallFetch
	}
	var popts []pipeline.Option
	switch {
	case *traceOut != "":
		// A Perfetto trace wants steady state, so it gets the windowed
		// capture; Pipeview renders from the same window when both are on.
		popts = append(popts, pipeline.WithTraceWindow(*traceStart, *traceLimit))
	case *pipeview > 0:
		popts = append(popts, pipeline.WithTrace(*pipeview))
	}
	if *sampleEvery > 0 {
		popts = append(popts, pipeline.WithObserver(
			obs.NewObserver(*sampleEvery, cfg.BQSize, cfg.VQSize, cfg.TQSize)))
	}
	if *maxCycles > 0 || *deadline > 0 {
		popts = append(popts, pipeline.WithWatchdog(fault.WithTimeout(*maxCycles, *deadline)))
	}
	var init = m
	if *verify {
		init = m.Clone()
	}
	core, err := pipeline.New(cfg, p, m, popts...)
	if err != nil {
		fatalf("%v", err)
	}
	if err := core.Run(0); err != nil {
		// A faulting run still produces the JSON document, with the
		// failure recorded as a structured fault.
		if *jsonPath != "" {
			spec := harness.RunSpec{Workload: s.Name, Variant: workload.Variant(*variant), Config: cfg}
			doc := &export.Document{
				Schema: export.Schema, Version: export.Version, Tool: "cfdsim",
				Scale: 1, Verify: *verify,
				Faults: []export.FaultRecord{export.FromFailure(harness.Failure{Spec: spec, Err: err})},
			}
			if werr := export.WriteFile(*jsonPath, doc); werr != nil {
				fmt.Fprintf(os.Stderr, "cfdsim: %v\n", werr)
			}
		}
		// A faulted run's partial trace is still written: the last traced
		// instructions usually show what wedged.
		if *traceOut != "" {
			core.FinishObservation()
			if werr := core.PerfettoTrace().WriteFile(*traceOut); werr != nil {
				fmt.Fprintf(os.Stderr, "cfdsim: %v\n", werr)
			}
		}
		if *journalPath != "" {
			spec := harness.RunSpec{Workload: s.Name, Variant: workload.Variant(*variant), Config: cfg}
			if werr := writeRunJournal(*journalPath, spec, 0, 0, err); werr != nil {
				fmt.Fprintf(os.Stderr, "cfdsim: %v\n", werr)
			}
		}
		if f, ok := fault.As(err); ok {
			fmt.Fprint(os.Stderr, f.Dump())
			os.Exit(1)
		}
		fatalf("%v", err)
	}
	core.FinishObservation()
	if *verify {
		if err := emu.VerifyArch(p, init, core.ArchRegs(), core.Mem(), core.Stats.Retired,
			emu.WithQueueSizes(cfg.BQSize, cfg.VQSize, cfg.TQSize)); err != nil {
			fatalf("differential verification failed: %v", err)
		}
		fmt.Println("verify          OK (retired state matches the functional emulator)")
	}

	st := core.Stats
	fmt.Printf("workload        %s/%s (n=%d) on %s\n", s.Name, *variant, size, cfg.Name)
	fmt.Printf("cycles          %d\n", st.Cycles)
	fmt.Printf("retired         %d (IPC %.3f)\n", st.Retired, st.IPC())
	fmt.Printf("fetched         %d (wrong-path %d)\n", st.Fetched, st.Fetched-st.Retired)
	fmt.Printf("cond branches   %d, mispredicts %d (MPKI %.2f)\n", st.CondBranches, st.Mispredicts, st.MPKI())
	fmt.Printf("recoveries      %d resolve-time, %d retire-time\n", st.Recoveries, st.RetireRecoveries)
	fmt.Printf("BQ              pops %d (fetch-resolved %d, spec %d, late mispredict %d)\n",
		st.BQPops, st.BQResolvedAtFetch, st.BQMisses, st.BQLateMispredict)
	fmt.Printf("BQ stalls       full %d cycles, miss %d cycles\n", st.BQFullStalls, st.BQMissStalls)
	fmt.Printf("TQ              pops %d, TCR branches %d, miss stalls %d cycles\n",
		st.TQPops, st.TCRBranches, st.TQMissStalls)
	fmt.Printf("mispred levels  NoData %d, L1 %d, L2 %d, L3 %d, MEM %d\n",
		st.MispredByLevel[0], st.MispredByLevel[1], st.MispredByLevel[2],
		st.MispredByLevel[3], st.MispredByLevel[4])
	fmt.Printf("energy          %.0f pJ total (%.0f dynamic, %.0f queue structures)\n",
		core.Meter.Total(), core.Meter.Dynamic(), core.Meter.QueueEnergy())

	fmt.Println()
	if err := st.CPI.Check(st.Cycles); err != nil {
		fatalf("%v", err)
	}
	fmt.Println(st.CPI.Render("CPI stack (cycle attribution)", st.Retired))

	if o := core.Observer(); o != nil {
		fmt.Printf("telemetry       %d samples every %d cycles\n\n", len(o.Samples), o.Every)
		if occ := o.Occupancy(); occ != nil {
			fmt.Print(occupancyChart("BQ occupancy", occ.BQ))
			fmt.Print(occupancyChart("VQ occupancy", occ.VQ))
			fmt.Print(occupancyChart("TQ occupancy", occ.TQ))
		}
	}

	if *jsonPath != "" {
		events := make(map[string]uint64)
		for e := 0; e < energy.NumEvents; e++ {
			if n := core.Meter.Counts[e]; n != 0 {
				events[energy.Event(e).String()] = n
			}
		}
		res := &harness.Result{
			Spec: harness.RunSpec{Workload: s.Name, Variant: workload.Variant(*variant),
				Config: cfg, SampleEvery: *sampleEvery},
			Stats:         st,
			EnergyTotal:   core.Meter.Total(),
			EnergyDynamic: core.Meter.Dynamic(),
			EnergyLeakage: core.Meter.Leakage(),
			EnergyQueue:   core.Meter.QueueEnergy(),
			EnergyEvents:  events,
			MSHRHist:      core.Hierarchy().Hist,
			Timeseries:    core.Observer().Timeseries(),
			Occupancy:     core.Observer().Occupancy(),
		}
		doc := &export.Document{
			Schema: export.Schema, Version: export.Version, Tool: "cfdsim",
			Scale: 1, Verify: *verify,
			Runs: []export.Run{export.FromResult(res)},
		}
		if err := export.WriteFile(*jsonPath, doc); err != nil {
			fatalf("%v", err)
		}
	}
	if *traceOut != "" {
		if err := core.PerfettoTrace().WriteFile(*traceOut); err != nil {
			fatalf("%v", err)
		}
	}
	if *journalPath != "" {
		spec := harness.RunSpec{Workload: s.Name, Variant: workload.Variant(*variant),
			Config: cfg, SampleEvery: *sampleEvery}
		if err := writeRunJournal(*journalPath, spec, st.Cycles, st.Retired, nil); err != nil {
			fatalf("%v", err)
		}
	}

	if *branches {
		fmt.Println("\nper-branch statistics (retired):")
		pcs := make([]uint64, 0, len(st.PerBranch))
		for pc := range st.PerBranch {
			pcs = append(pcs, pc)
		}
		sort.Slice(pcs, func(i, j int) bool {
			return st.PerBranch[pcs[i]].Mispredicts > st.PerBranch[pcs[j]].Mispredicts
		})
		for _, pc := range pcs {
			bs := st.PerBranch[pc]
			name := p.At(pc).String()
			if note, ok := p.Notes[pc]; ok {
				name = note.Name
			}
			fmt.Printf("  pc %-6d %-40s execs %-9d taken %5.1f%%  missrate %5.2f%%\n",
				pc, name, bs.Execs,
				100*float64(bs.Taken)/float64(bs.Execs),
				100*float64(bs.Mispredicts)/float64(bs.Execs))
		}
	}
	if *pipeview > 0 {
		fmt.Println()
		fmt.Print(core.Pipeview())
	}
}

// runCampaign executes the seeded fault-injection campaign, prints the
// summary, optionally writes the cfd-faultinject JSON report, and exits
// nonzero when any injection went undetected.
func runCampaign(n int, seed int64, jsonPath string) {
	rep, err := faultinject.Run(faultinject.Config{Seed: seed, Injections: n})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("fault injection  seed %d: %d injected, %d detected, %d missed (%d draws skipped)\n",
		rep.Seed, rep.Injected, rep.Detected, rep.Missed, rep.Skipped)
	for _, site := range faultinject.AllSites {
		if st := rep.BySite[site]; st != nil {
			fmt.Printf("  %-12s injected %4d  detected %4d  missed %4d\n",
				site, st.Injected, st.Detected, st.Missed)
		}
	}
	finishCampaign(rep, n, jsonPath)
}

// runStoreCampaign executes the result-store corruption campaign: seeded
// on-disk damage (torn writes, bit flips, truncation, stale schemas,
// stripped checksums) to a populated store, each of which must be caught by
// quarantine with the damaged sweep converging back to the golden results.
// Exit status is nonzero when any corruption goes undetected.
func runStoreCampaign(n int, seed int64, jsonPath string) {
	rep, err := faultinject.RunStore(faultinject.StoreConfig{Seed: seed, Injections: n})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("store corruption  seed %d: %d injected, %d detected, %d missed\n",
		rep.Seed, rep.Injected, rep.Detected, rep.Missed)
	for _, site := range faultinject.AllStoreSites {
		if st := rep.BySite[site]; st != nil {
			fmt.Printf("  %-22s injected %4d  detected %4d  missed %4d\n",
				site, st.Injected, st.Detected, st.Missed)
		}
	}
	finishCampaign(rep, n, jsonPath)
}

// finishCampaign writes the optional cfd-faultinject JSON report and exits
// nonzero when any injection was missed or the campaign under-ran.
func finishCampaign(rep *faultinject.Report, n int, jsonPath string) {
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if rep.Missed > 0 {
		for _, tr := range rep.Trials {
			if tr.Outcome == faultinject.OutcomeMissed {
				fmt.Fprintf(os.Stderr, "cfdsim: MISSED %s on %s at step %d: %s\n",
					tr.Site, tr.Victim, tr.Step, tr.Detail)
			}
		}
		os.Exit(1)
	}
	if rep.Injected < n {
		fatalf("only %d of %d requested injections applied", rep.Injected, n)
	}
}

// writeRunJournal records a single-run journal: the header, one
// spec_done carrying the run's outcome, and the trailer — the
// cfdsim-sized slice of the cfd-journal schema, validatable with the
// same `go run ./internal/obs/journal/validate` tool as a sweep journal.
func writeRunJournal(path string, spec harness.RunSpec, cycles, retired uint64, runErr error) error {
	j, err := journal.Open(path, "cfdsim")
	if err != nil {
		return err
	}
	ev := journal.Event{
		Type: journal.SpecDone, Key: spec.Key(),
		Workload: spec.Workload, Variant: string(spec.Variant), Config: spec.Config.Name,
	}
	if runErr == nil {
		ev.Status = "ok"
		ev.Cycles = cycles
		ev.Retired = retired
		if cycles > 0 {
			ev.IPC = float64(retired) / float64(cycles)
		}
	} else {
		ev.Status = "fault"
		ev.Error = runErr.Error()
		if f, ok := fault.As(runErr); ok {
			ev.Fault = f.Kind.String()
		}
	}
	j.Emit(ev)
	return j.Close()
}

// isFlagSet reports whether the named flag was given on the command line.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runClassify prints the §II-B taxonomy: for every kernel-shaped workload
// (or just the named one), the hard branch's separability class and, for
// each pass-pipeline transform, whether the kernel is accepted or why it
// is rejected. Workloads that still hand-build their programs (the
// classification-study set) have no kernel form to analyze.
func runClassify(only string) {
	found := false
	for _, s := range workload.All() {
		if only != "" && s.Name != only {
			continue
		}
		found = true
		if s.Kernel == nil {
			fmt.Printf("%-16s hand-built (no kernel form; class %v)\n\n", s.Name, s.Class)
			continue
		}
		f, _, err := s.Kernel(s.TestN)
		if err != nil {
			fatalf("%s: kernel: %v", s.Name, err)
		}
		cls, clsErr := f.Classify()
		fmt.Printf("%-16s class %v", s.Name, cls)
		if clsErr != nil {
			fmt.Printf(" (%v)", clsErr)
		}
		fmt.Println()
		for _, st := range xform.Acceptance(f, xform.DefaultParams()) {
			if st.Err == nil {
				fmt.Printf("  %-9s accept\n", st.Transform)
			} else {
				fmt.Printf("  %-9s reject — %v\n", st.Transform, st.Err)
			}
		}
		fmt.Println()
	}
	if !found {
		fatalf("unknown workload %q (use -list)", only)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "cfdsim: "+format+"\n", args...)
	os.Exit(1)
}
