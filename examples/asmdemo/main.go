// Assembler demo: a CFD program written as text source (soplex.cfdasm, embedded
// below), assembled with the asm package and executed on both engines —
// plus a pipeline diagram of its first instructions.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"cfd"
	"cfd/internal/asm"
	"cfd/internal/pipeline"
)

//go:embed soplex.cfdasm
var source string

func main() {
	p, err := asm.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions\n\n", p.Len())

	// Golden run on the emulator.
	em, err := cfd.Emulate(p, cfd.NewMemory(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulator: retired %d, count(r5) = %d\n", em.Retired, em.Regs[5])

	// Cycle-level run with tracing.
	core, err := pipeline.New(cfd.Baseline(), p, cfd.NewMemory(), pipeline.WithTrace(16))
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		log.Fatal(err)
	}
	st := core.Stats
	fmt.Printf("pipeline: %d cycles, IPC %.2f, MPKI %.2f, BQ pops %d (all fetch-resolved: %v)\n\n",
		st.Cycles, st.IPC(), st.MPKI(), st.BQPops, st.BQResolvedAtFetch == st.BQPops)
	fmt.Println(core.Pipeview())
}
