// The astar case study (paper §VII-B, Figs 14, 22, 27, 28):
//
//   - Region #1: a partially separable branch with nested conditions, a
//     short loop-carried dependence handled by if-conversion, and an early
//     exit handled with Mark/Forward — decoupled into three loops.
//   - Region #2: a separable loop-branch whose data-dependent trip count
//     flows through the trip-count queue (TQ); the leftover inner if is
//     then removed with the BQ, and the combination beats the sum.
package main

import (
	"fmt"
	"log"

	"cfd"
)

func row(name string, v cfd.Variant, base *cfd.Core, core *cfd.Core) {
	speedup := 1.0
	if base != nil {
		speedup = float64(base.Stats.Cycles) / float64(core.Stats.Cycles)
	}
	fmt.Printf("%-10s %10d cycles  IPC %5.3f  MPKI %6.2f  speedup %.2fx\n",
		v, core.Stats.Cycles, core.Stats.IPC(), core.Stats.MPKI(), speedup)
}

func main() {
	fmt.Println("== astar region #1: nested hard branches + early exit (Fig 22) ==")
	w, _ := cfd.WorkloadByName("astar1like")
	p, _, err := w.Build(cfd.CFD, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three-loop decoupling (excerpt of the generated code):")
	dis := p.Disassemble()
	fmt.Println(dis[:1200] + "...\n")

	var base *cfd.Core
	for _, v := range []cfd.Variant{cfd.Base, cfd.CFD, cfd.DFD, cfd.CFDDFD} {
		core, err := cfd.Simulate("astar1like", v, cfd.Baseline(), 40_000)
		if err != nil {
			log.Fatal(err)
		}
		if v == cfd.Base {
			base = core
		}
		row("astar1", v, base, core)
	}

	fmt.Println()
	fmt.Println("== astar region #2: separable loop-branch (Figs 14, 28) ==")
	base = nil
	for _, v := range []cfd.Variant{cfd.Base, cfd.CFDTQ, cfd.CFDBQ, cfd.CFDBQTQ} {
		core, err := cfd.Simulate("astar2like", v, cfd.Baseline(), 15_000)
		if err != nil {
			log.Fatal(err)
		}
		if v == cfd.Base {
			base = core
		}
		row("astar2", v, base, core)
		if v == cfd.CFDBQTQ {
			fmt.Printf("           TQ pops %d, TCR branches %d, BQ pops %d\n",
				core.Stats.TQPops, core.Stats.TCRBranches, core.Stats.BQPops)
		}
	}
	fmt.Println("\nexpected: BQ+TQ speedup exceeds the sum of the individual gains (Fig 28)")
}
