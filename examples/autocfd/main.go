// Automatic control-flow decoupling: the compiler-pass analog (paper
// §III-B). A loop is described as a structured kernel — predicate slice,
// control-dependent region, induction step — and the pass verifies
// separability by dataflow analysis, then emits the baseline, CFD, CFD+
// (value queue), and DFD (prefetch) variants automatically.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cfd"
	"cfd/internal/isa"
)

const n = 30_000

func kernel() *cfd.Kernel {
	return &cfd.Kernel{
		Name: "auto-demo",
		Init: []cfd.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000}, // a[] cursor
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 0x800000}, // out cursor
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},      // threshold
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},        // trip count
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},       // accumulator
		},
		Slice: []cfd.Inst{
			{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0},
			{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7},
		},
		CD: []cfd.Inst{
			{Op: isa.SHLI, Rd: 9, Rs1: 7, Imm: 1},
			{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 17},
			{Op: isa.SD, Rs1: 2, Rs2: 9, Imm: 0},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
			{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 7},
			{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11},
		},
		Step: []cfd.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 8},
		},
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23},
		NoAlias: true,
		Note:    "a[i] > threshold",
	}
}

func data() *cfd.Memory {
	rng := rand.New(rand.NewSource(7))
	m := cfd.NewMemory()
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(0x100000, vals)
	return m
}

func main() {
	k := kernel()
	cls, err := k.Classify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separability analysis: %s\n", cls)
	fmt.Printf("values the CD region consumes from the slice: %d (routed via VQ or recomputed)\n\n",
		1 /* r7 = a[i] */)

	var baseCycles uint64
	params := cfd.KernelParamsFor(cfd.Baseline())
	schemes := []struct {
		name  string
		build func() (*cfd.Program, error)
	}{
		{"base", k.Base},
		{"auto-cfd", func() (*cfd.Program, error) { return k.CFD(params, false) }},
		{"auto-cfd+", func() (*cfd.Program, error) { return k.CFD(params, true) }},
		{"auto-dfd", func() (*cfd.Program, error) { return k.DFD(params) }},
	}
	var goldenMem *cfd.Memory
	for _, s := range schemes {
		p, err := s.build()
		if err != nil {
			log.Fatal(err)
		}
		core, err := cfd.NewCore(cfd.Baseline(), p, data())
		if err != nil {
			log.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = core.Stats.Cycles
			goldenMem = core.Mem()
		} else if !goldenMem.Equal(core.Mem()) {
			log.Fatalf("%s computed different results!", s.name)
		}
		fmt.Printf("%-10s cycles %8d  IPC %5.3f  MPKI %6.2f  speedup %.2fx\n",
			s.name, core.Stats.Cycles, core.Stats.IPC(), core.Stats.MPKI(),
			float64(baseCycles)/float64(core.Stats.Cycles))
	}
	fmt.Println("\nall transformed variants verified against the baseline ✓")

	// The pass refuses inseparable loops: make the CD write the threshold
	// the slice reads.
	bad := kernel()
	bad.CD = append(bad.CD, cfd.Inst{Op: isa.ADDI, Rd: 3, Rs1: 3, Imm: 1})
	if _, err := bad.CFD(params, false); err != nil {
		fmt.Printf("inseparable loop correctly rejected: %v\n", err)
	}
}
