// Data-flow decoupling (paper §V, Figs 24-26): instead of eliminating the
// mispredictions, a first loop prefetches the loads feeding the hard
// branch, so the mispredictions resolve from nearby cache levels. This
// example runs the memory-bound mcf analog and shows DFD shifting the
// misprediction memory-level breakdown (Fig 25b) while CFD removes the
// mispredictions outright — and why CFD scales better with window size.
package main

import (
	"fmt"
	"log"

	"cfd"
)

var levels = []string{"NoData", "L1", "L2", "L3", "MEM"}

func breakdown(core *cfd.Core) string {
	var total uint64
	for _, v := range core.Stats.MispredByLevel {
		total += v
	}
	if total == 0 {
		return "(no mispredictions)"
	}
	out := ""
	for i, v := range core.Stats.MispredByLevel {
		if v > 0 {
			out += fmt.Sprintf("%s %.0f%%  ", levels[i], 100*float64(v)/float64(total))
		}
	}
	return out
}

func main() {
	const n = 40_000
	var base *cfd.Core
	fmt.Println("mcflike: streaming 64B arc records (4MB working set, beyond the L3)")
	fmt.Println()
	for _, v := range []cfd.Variant{cfd.Base, cfd.DFD, cfd.CFD, cfd.CFDDFD} {
		core, err := cfd.Simulate("mcflike", v, cfd.Baseline(), n)
		if err != nil {
			log.Fatal(err)
		}
		if v == cfd.Base {
			base = core
		}
		speedup := float64(base.Stats.Cycles) / float64(core.Stats.Cycles)
		fmt.Printf("%-8s IPC %5.3f  MPKI %6.2f  speedup %.2fx\n", v, core.Stats.IPC(), core.Stats.MPKI(), speedup)
		fmt.Printf("         mispredict levels: %s\n", breakdown(core))
	}

	fmt.Println()
	fmt.Println("window scaling (Fig 23 shape): CFD gains grow, DFD gains saturate")
	fmt.Printf("%-8s %12s %12s %12s\n", "window", "base IPC", "dfd IPC", "cfd IPC")
	for _, rob := range []int{168, 384, 640} {
		cfg := cfd.ScaledWindow(rob)
		var ipc [3]float64
		for i, v := range []cfd.Variant{cfd.Base, cfd.DFD, cfd.CFD} {
			core, err := cfd.Simulate("mcflike", v, cfg, n)
			if err != nil {
				log.Fatal(err)
			}
			// Effective IPC: baseline instructions over scheme cycles.
			ipc[i] = float64(base.Stats.Retired) / float64(core.Stats.Cycles)
		}
		fmt.Printf("%-8d %12.3f %12.3f %12.3f\n", rob, ipc[0], ipc[1], ipc[2])
	}
}
