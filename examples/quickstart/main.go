// Quickstart: build a CFD-RISC program with the builder API, decouple its
// hard branch by hand with the branch queue, and compare baseline vs CFD on
// the cycle-level core.
//
// The program is the paper's Fig 3 idiom:
//
//	for i in 0..n-1 { if a[i] > k { b[i] = a[i] + 7 } }
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cfd"
	"cfd/internal/isa"
)

const (
	aBase = 0x10000
	bBase = 0x80000
	n     = 100 // within the BQ size: no strip mining needed
	k     = 50
)

// baseline builds the plain loop with a data-dependent branch.
func baseline() *cfd.Program {
	b := cfd.NewProgram()
	b.Li(1, aBase)
	b.Li(2, bBase)
	b.Li(3, n)
	b.Li(4, k)
	b.Label("loop")
	b.Load(isa.LD, 5, 1, 0) // x = a[i]
	b.R(isa.SLT, 6, 4, 5)   // p = k < x
	b.Branch(isa.BEQ, 6, 0, "skip")
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0) // b[i] = x + 7
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "loop")
	b.Halt()
	return b.MustBuild()
}

// decoupled builds the CFD transformation (paper Fig 3b): loop 1 pushes
// predicates onto the branch queue, loop 2 pops them with BranchBQ — the
// branch resolves in the fetch stage, timely and non-speculative.
func decoupled() *cfd.Program {
	b := cfd.NewProgram()
	// Loop 1: the branch slice.
	b.Li(1, aBase)
	b.Li(3, n)
	b.Li(4, k)
	b.Label("gen")
	b.Load(isa.LD, 5, 1, 0)
	b.R(isa.SLT, 6, 4, 5)
	b.PushBQ(6)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "gen")
	// Loop 2: the branch and its control-dependent region.
	b.Li(1, aBase)
	b.Li(2, bBase)
	b.Li(3, n)
	b.Label("use")
	b.BranchBQ("work")
	b.Jump("skip")
	b.Label("work")
	b.Load(isa.LD, 5, 1, 0)
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "use")
	b.Halt()
	return b.MustBuild()
}

func data() *cfd.Memory {
	rng := rand.New(rand.NewSource(42))
	m := cfd.NewMemory()
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100)) // ~50% exceed k: hard to predict
	}
	m.WriteUint64s(aBase, vals)
	return m
}

func run(name string, p *cfd.Program) *cfd.Memory {
	m := data()
	core, err := cfd.NewCore(cfd.Baseline(), p, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		log.Fatal(err)
	}
	st := core.Stats
	fmt.Printf("%-9s cycles=%5d IPC=%.2f mispredicts=%d BQ pops=%d (fetch-resolved %d)\n",
		name, st.Cycles, st.IPC(), st.Mispredicts, st.BQPops, st.BQResolvedAtFetch)
	return core.Mem()
}

func main() {
	fmt.Println("Control-flow decoupling quickstart (paper Fig 3)")
	m1 := run("baseline", baseline())
	m2 := run("cfd", decoupled())
	if !m1.Equal(m2) {
		log.Fatal("CFD variant computed different results!")
	}
	fmt.Println("both variants computed identical memory ✓")

	// The emulator is the golden model: verify against it too.
	em, err := cfd.Emulate(baseline(), data(), 0)
	if err != nil {
		log.Fatal(err)
	}
	if !em.Mem.Equal(m1) {
		log.Fatal("pipeline diverged from the functional emulator!")
	}
	fmt.Println("pipeline matches the functional emulator ✓")
}
