// The soplex scenario (paper Figs 8 and 11): a totally separable branch
// guarding a large control-dependent region. Compares baseline, CFD, CFD+
// (value queue), and perfect branch prediction on the Sandy Bridge-like
// core — the headline result of the paper.
package main

import (
	"fmt"
	"log"
	"os"

	"cfd"
)

func main() {
	const n = 50_000
	fmt.Println("soplexlike: if (test[i] > theeps) { ...13-instruction CD region... }")
	fmt.Println()

	var base *cfd.Core
	fmt.Printf("%-8s %10s %8s %8s %14s %12s\n", "variant", "cycles", "IPC", "MPKI", "speedup", "energy")
	for _, v := range []cfd.Variant{cfd.Base, cfd.CFD, cfd.CFDPlus, cfd.DFD, cfd.CFDDFD} {
		core, err := cfd.Simulate("soplexlike", v, cfd.Baseline(), n)
		if err != nil {
			log.Fatal(err)
		}
		if v == cfd.Base {
			base = core
		}
		speedup := float64(base.Stats.Cycles) / float64(core.Stats.Cycles)
		energy := core.Meter.Total() / base.Meter.Total()
		fmt.Printf("%-8s %10d %8.3f %8.2f %13.2fx %11.1f%%\n",
			v, core.Stats.Cycles, core.Stats.IPC(), core.Stats.MPKI(),
			speedup, 100*(1-energy))
	}
	fmt.Println()
	fmt.Println("shape to expect (paper Fig 18/24): CFD eliminates the branch's mispredictions")
	fmt.Println("outright; DFD only accelerates their resolution; CFD+DFD compounds.")
	fmt.Println()

	// The same comparison as one row of the paper's Fig 18, via the
	// experiment harness at reduced scale.
	if err := cfd.RunExperiment("fig18", os.Stdout, 0.1); err != nil {
		log.Fatal(err)
	}
}
