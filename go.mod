module cfd

go 1.22
