// Package asm implements a two-pass assembler for CFD-RISC and the inverse
// of the disassembler in package prog. The syntax matches the
// disassembler's output, so programs round-trip:
//
//	loop:                      ; labels end with ':'
//	    ld   r5, 0(r1)         ; loads/stores use displacement syntax
//	    slt  r6, r4, r5
//	    push_bq r6
//	    addi r1, r1, 8
//	    bne  r3, r0, loop      ; branch targets are labels or ±offsets
//	    branch_bq work
//	    halt
//
// Comments start with ';' or '#'. Directives:
//
//	.note <class> <text...>   annotate the next instruction's branch class
//	.data <addr>              set the data cursor
//	.quad v1, v2, ...         emit 64-bit values at the cursor
//	.byte v1, v2, ...         emit bytes at the cursor
//	.fill <count> <value>     emit count 64-bit copies of value
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// Error describes an assembly failure with its line number.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses source text into a program, discarding any data
// directives' memory image.
func Assemble(src string) (*prog.Program, error) {
	p, _, err := AssembleWithData(src)
	return p, err
}

// AssembleWithData parses source text into a program plus the initial
// memory image built by its data directives.
func AssembleWithData(src string) (*prog.Program, *mem.Memory, error) {
	a := &assembler{
		b:       prog.NewBuilder(),
		classes: classNames(),
		mem:     mem.New(),
	}
	lines := strings.Split(src, "\n")

	// Forward label references are handled by the Builder's fixup
	// machinery, so one walk suffices.
	for i, raw := range lines {
		if err := a.line(i+1, raw); err != nil {
			return nil, nil, err
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("asm: %w", err)
	}
	return p, a.mem, nil
}

type assembler struct {
	b       *prog.Builder
	classes map[string]prog.BranchClass
	mem     *mem.Memory
	cursor  uint64
}

func classNames() map[string]prog.BranchClass {
	m := make(map[string]prog.BranchClass)
	for c := prog.NotAnalyzed; c <= prog.EasyToPredict; c++ {
		m[c.String()] = c
	}
	return m
}

// line assembles one source line.
func (a *assembler) line(n int, raw string) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Labels (possibly several, possibly followed by an instruction).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t,") {
			return errf(n, "malformed label %q", s[:i])
		}
		a.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	// Directives.
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}

	fields := strings.Fields(s)
	mnemonic := fields[0]
	rest := strings.TrimSpace(s[len(mnemonic):])
	var ops []string
	if rest != "" {
		for _, o := range strings.Split(rest, ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return errf(n, "unknown mnemonic %q", mnemonic)
	}
	return a.inst(n, op, ops)
}

func (a *assembler) directive(n int, s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".note":
		if len(fields) < 3 {
			return errf(n, ".note needs a class and a description")
		}
		cls, ok := a.classes[fields[1]]
		if !ok {
			return errf(n, "unknown branch class %q", fields[1])
		}
		a.b.Note(strings.Join(fields[2:], " "), cls)
		return nil
	case ".data":
		if len(fields) != 2 {
			return errf(n, ".data needs an address")
		}
		v, err := imm(n, fields[1])
		if err != nil {
			return err
		}
		a.cursor = uint64(v)
		return nil
	case ".quad", ".byte":
		rest := strings.TrimSpace(s[len(fields[0]):])
		for _, tok := range strings.Split(rest, ",") {
			v, err := imm(n, strings.TrimSpace(tok))
			if err != nil {
				return err
			}
			if fields[0] == ".quad" {
				a.mem.Write(a.cursor, 8, uint64(v))
				a.cursor += 8
			} else {
				a.mem.Write(a.cursor, 1, uint64(v))
				a.cursor++
			}
		}
		return nil
	case ".fill":
		if len(fields) != 3 {
			return errf(n, ".fill needs a count and a value")
		}
		count, err := imm(n, fields[1])
		if err != nil {
			return err
		}
		v, err := imm(n, fields[2])
		if err != nil {
			return err
		}
		for i := int64(0); i < count; i++ {
			a.mem.Write(a.cursor, 8, uint64(v))
			a.cursor += 8
		}
		return nil
	default:
		return errf(n, "unknown directive %q", fields[0])
	}
}

// reg parses "r12".
func reg(n int, s string) (isa.Reg, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, errf(n, "expected register, got %q", s)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 || v >= isa.NumRegs {
		return 0, errf(n, "bad register %q", s)
	}
	return isa.Reg(v), nil
}

// imm parses a signed integer (decimal or 0x-hex, optional +).
func imm(n int, s string) (int64, error) {
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, errf(n, "bad immediate %q", s)
	}
	return v, nil
}

// memOperand parses "disp(rN)".
func memOperand(n int, s string) (isa.Reg, int64, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, errf(n, "expected disp(reg), got %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := imm(n, s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	r, err := reg(n, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return r, off, nil
}

// target emits a control transfer either to a label or a numeric
// PC-relative offset.
func (a *assembler) target(n int, in isa.Inst, s string) error {
	if v, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 0, 64); err == nil {
		in.Imm = v
		a.b.Raw(in)
		return nil
	}
	if strings.ContainsAny(s, " \t,()") || s == "" {
		return errf(n, "bad branch target %q", s)
	}
	switch in.Op {
	case isa.J:
		a.b.Jump(s)
	case isa.JAL:
		a.b.Jal(in.Rd, s)
	case isa.BranchBQ:
		a.b.BranchBQ(s)
	case isa.BranchTCR:
		a.b.BranchTCR(s)
	case isa.PopTQOV:
		a.b.PopTQOV(s)
	default:
		a.b.Branch(in.Op, in.Rs1, in.Rs2, s)
	}
	return nil
}

func (a *assembler) inst(n int, op isa.Op, ops []string) error {
	need := func(k int) error {
		if len(ops) != k {
			return errf(n, "%s expects %d operands, got %d", op, k, len(ops))
		}
		return nil
	}
	switch op {
	case isa.NOP, isa.HALT, isa.MarkBQ, isa.ForwardBQ, isa.PopTQ:
		if err := need(0); err != nil {
			return err
		}
		a.b.Raw(isa.Inst{Op: op})
		return nil

	case isa.PushBQ, isa.PushVQ, isa.PushTQ, isa.JR:
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		a.b.Raw(isa.Inst{Op: op, Rs1: r})
		return nil

	case isa.PopVQ:
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		a.b.Raw(isa.Inst{Op: op, Rd: r})
		return nil

	case isa.BranchBQ, isa.BranchTCR, isa.PopTQOV, isa.J:
		if err := need(1); err != nil {
			return err
		}
		return a.target(n, isa.Inst{Op: op}, ops[0])

	case isa.JAL:
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		return a.target(n, isa.Inst{Op: op, Rd: rd}, ops[1])

	case isa.PREF, isa.SaveBQ, isa.RestoreBQ, isa.SaveVQ, isa.RestoreVQ, isa.SaveTQ, isa.RestoreTQ:
		if err := need(1); err != nil {
			return err
		}
		base, off, err := memOperand(n, ops[0])
		if err != nil {
			return err
		}
		a.b.Raw(isa.Inst{Op: op, Rs1: base, Imm: off})
		return nil
	}

	switch {
	case op.IsLoad():
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		base, off, err := memOperand(n, ops[1])
		if err != nil {
			return err
		}
		a.b.Load(op, rd, base, off)
		return nil

	case op.IsStore():
		if err := need(2); err != nil {
			return err
		}
		src, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		base, off, err := memOperand(n, ops[1])
		if err != nil {
			return err
		}
		a.b.Store(op, src, base, off)
		return nil

	case op.IsCondBranch(): // BEQ..BGEU
		if err := need(3); err != nil {
			return err
		}
		r1, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		r2, err := reg(n, ops[1])
		if err != nil {
			return err
		}
		return a.target(n, isa.Inst{Op: op, Rs1: r1, Rs2: r2}, ops[2])

	case op.HasImm(): // register-immediate ALU
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		r1, err := reg(n, ops[1])
		if err != nil {
			return err
		}
		v, err := imm(n, ops[2])
		if err != nil {
			return err
		}
		a.b.I(op, rd, r1, v)
		return nil

	default: // register-register ALU
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		r1, err := reg(n, ops[1])
		if err != nil {
			return err
		}
		r2, err := reg(n, ops[2])
		if err != nil {
			return err
		}
		a.b.R(op, rd, r1, r2)
		return nil
	}
}
