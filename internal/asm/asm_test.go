package asm

import (
	"strings"
	"testing"

	"cfd/internal/emu"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

const sumSrc = `
; sum the first 8 values at 0x1000 into 0x2000
        addi r1, r0, 0x1000
        addi r2, r0, 8
        addi r3, r0, 0
loop:   ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, r0, loop
        addi r5, r0, 0x2000
        sd   r3, 0(r5)
        halt
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteUint64s(0x1000, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	mc := emu.New(p, m)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Read(0x2000, 8); got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
}

const cfdSrc = `
# decoupled conditional (Fig 3b) with every CFD instruction class
        addi r1, r0, 0x1000
        addi r2, r0, 4
gen:    ld   r3, 0(r1)
        andi r4, r3, 1
        push_bq r4
        push_vq r3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, r0, gen
        mark_bq
        addi r2, r0, 4
use:    pop_vq r5
.note separable(total) odd element
        branch_bq work
        j next
work:   addi r6, r6, 1
next:   addi r2, r2, -1
        bne  r2, r0, use
        forward_bq
        addi r7, r0, 3
        push_tq r7
        pop_tq
tq:     branch_tcr tq
        halt
`

func TestAssembleCFDInstructions(t *testing.T) {
	p, err := Assemble(cfdSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.WriteUint64s(0x1000, []uint64{1, 2, 3, 4})
	mc := emu.New(p, m)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[6] != 2 {
		t.Errorf("odd count = %d, want 2", mc.Regs[6])
	}
	// The .note directive annotated the branch_bq.
	found := false
	for _, note := range p.Notes {
		if note.Class == prog.SeparableTotal && strings.Contains(note.Name, "odd element") {
			found = true
		}
	}
	if !found {
		t.Error(".note annotation missing")
	}
}

func TestRoundTripWithDisassembler(t *testing.T) {
	p1, err := Assemble(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Disassemble and re-assemble; instruction streams must match.
	p2, err := Assemble(p1.Disassemble())
	if err != nil {
		t.Fatalf("reassembly: %v", err)
	}
	if len(p1.Insts) != len(p2.Insts) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Insts), len(p2.Insts))
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestRoundTripAllOpcodes(t *testing.T) {
	// Build one instance of every assemblable opcode via the builder,
	// disassemble, re-assemble, compare.
	b := prog.NewBuilder()
	b.Label("l")
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		// Only populate the fields the op actually encodes in assembly;
		// unused fields do not survive a disassemble/assemble cycle.
		in := isa.Inst{Op: op}
		if op.WritesRd() {
			in.Rd = 1
		}
		if op.ReadsRs1() {
			in.Rs1 = 2
		}
		if op.ReadsRs2() {
			in.Rs2 = 3
		}
		if op.HasImm() && !op.IsControl() {
			in.Imm = 42
		}
		b.Raw(in)
	}
	p1 := b.MustBuild()
	p2, err := Assemble(p1.Disassemble())
	if err != nil {
		t.Fatalf("reassembly: %v", err)
	}
	for i := range p1.Insts {
		if p1.Insts[i] != p2.Insts[i] {
			t.Errorf("op %v: %+v vs %+v", p1.Insts[i].Op, p1.Insts[i], p2.Insts[i])
		}
	}
}

func TestNumericBranchTargets(t *testing.T) {
	p, err := Assemble("nop\nbeq r1, r2, -1\nj +2\nhalt\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Imm != -1 || p.Insts[2].Imm != 2 {
		t.Errorf("offsets = %d, %d", p.Insts[1].Imm, p.Insts[2].Imm)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"add r1, r2", "expects 3 operands"},
		{"add r1, r2, r99", "bad register"},
		{"ld r1, r2", "expected disp(reg)"},
		{"addi r1, r0, xyz", "bad immediate"},
		{"beq r1, r2, no such", "bad branch target"},
		{".note bogus text", "unknown branch class"},
		{".unknown", "unknown directive"},
		{"bad label: nop", "malformed label"},
		{"j nowhere", "undefined label"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n")
	ae, ok := err.(*Error)
	if !ok || ae.Line != 3 {
		t.Errorf("err = %v, want *Error at line 3", err)
	}
}

func TestLabelsAndCommentsOnOneLine(t *testing.T) {
	p, err := Assemble("a: b: nop ; trailing\n# full comment line\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if pcA, _ := p.LabelAt("a"); pcA != 0 {
		t.Error("label a misplaced")
	}
	if pcB, _ := p.LabelAt("b"); pcB != 0 {
		t.Error("label b misplaced")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestSaveRestoreSyntax(t *testing.T) {
	p, err := Assemble("save_bq 16(r2)\nrestore_tq 0(r3)\npref -8(r4)\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != isa.SaveBQ || p.Insts[0].Imm != 16 || p.Insts[0].Rs1 != 2 {
		t.Errorf("save_bq parsed as %+v", p.Insts[0])
	}
	if p.Insts[2].Imm != -8 {
		t.Errorf("pref offset = %d", p.Insts[2].Imm)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
.data 0x1000
.quad 10, 20, 30
.byte 0xff, 1
.data 0x2000
.fill 4 7
        addi r1, r0, 0x1000
        ld   r2, 8(r1)
        halt
`
	p, m, err := AssembleWithData(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Read(0x1000, 8); got != 10 {
		t.Errorf("quad[0] = %d", got)
	}
	if got := m.Read(0x1008, 8); got != 20 {
		t.Errorf("quad[1] = %d", got)
	}
	if got := m.Read(0x1018, 1); got != 0xff {
		t.Errorf("byte[0] = %#x", got)
	}
	if got := m.Read(0x2018, 8); got != 7 {
		t.Errorf("fill[3] = %d", got)
	}
	mc := emu.New(p, m)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[2] != 20 {
		t.Errorf("loaded %d, want 20", mc.Regs[2])
	}
}

func TestDataDirectiveErrors(t *testing.T) {
	for _, src := range []string{".data", ".quad xyz", ".fill 3", ".fill a b"} {
		if _, _, err := AssembleWithData(src); err == nil {
			t.Errorf("AssembleWithData(%q) accepted", src)
		}
	}
}
