// Package cache models the data-side memory hierarchy: L1/L2/L3
// set-associative write-back caches with LRU replacement, L1 miss status
// holding registers (MSHRs) with miss merging, a fixed-latency DRAM, and
// software prefetch — the timing substrate behind the paper's
// memory-dependent branch analysis (Figs 2a, 25) and DFD (§V).
//
// The hierarchy is timing-only: data always comes from the functional
// memory; Access returns when the data would be available and which level
// supplied it.
package cache

import "fmt"

// ServiceLevel identifies the furthest memory hierarchy level that serviced
// an access (paper Fig 2a's L1/L2/L3/MEM breakdown).
type ServiceLevel uint8

// Service levels.
const (
	NoData ServiceLevel = iota // not memory-dependent
	L1
	L2
	L3
	MEM
)

// String returns the paper's label for the level.
func (l ServiceLevel) String() string {
	switch l {
	case NoData:
		return "NoData"
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case MEM:
		return "MEM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Max returns the deeper of two service levels.
func Max(a, b ServiceLevel) ServiceLevel {
	if a > b {
		return a
	}
	return b
}

// LevelConfig sizes one cache level.
type LevelConfig struct {
	Name    string
	SizeKB  int
	Ways    int
	Latency uint64 // load-to-use latency in cycles when this level hits
}

// Config describes the whole hierarchy.
type Config struct {
	LineBytes  int
	L1, L2, L3 LevelConfig
	MemLatency uint64
	NumMSHRs   int
	// SampleMSHRs enables the per-cycle L1 MSHR occupancy histogram
	// (Fig 25a); leave off for speed when unused.
	SampleMSHRs bool
	// NextLinePrefetch enables a simple hardware next-line prefetcher:
	// every demand L1 miss also fetches the following line. The paper's
	// Sandy Bridge baseline has hardware prefetchers; the default model
	// omits them (software DFD then shoulders all prefetching), and this
	// switch quantifies the difference.
	NextLinePrefetch bool
}

// DefaultConfig mirrors the paper's Sandy Bridge-like baseline (Fig 17a).
func DefaultConfig() Config {
	return Config{
		LineBytes:  64,
		L1:         LevelConfig{Name: "L1", SizeKB: 32, Ways: 8, Latency: 4},
		L2:         LevelConfig{Name: "L2", SizeKB: 256, Ways: 8, Latency: 12},
		L3:         LevelConfig{Name: "L3", SizeKB: 2048, Ways: 16, Latency: 30},
		MemLatency: 200,
		NumMSHRs:   32,
	}
}

type line struct {
	valid bool
	tag   uint64
	lru   uint64
}

type level struct {
	cfg      LevelConfig
	sets     [][]line
	setShift uint
	setMask  uint64
	accesses uint64
	misses   uint64
}

func newLevel(cfg LevelConfig, lineBytes int) *level {
	numLines := cfg.SizeKB * 1024 / lineBytes
	numSets := numLines / cfg.Ways
	if numSets == 0 {
		numSets = 1
	}
	l := &level{cfg: cfg, setMask: uint64(numSets - 1)}
	l.sets = make([][]line, numSets)
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Ways)
	}
	return l
}

// lookup probes for lineAddr; on hit it refreshes LRU.
func (l *level) lookup(lineAddr, clock uint64) bool {
	l.accesses++
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr >> 1 // full tag (setMask bits are redundant but harmless)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = clock
			return true
		}
	}
	l.misses++
	return false
}

// install fills lineAddr, evicting the LRU way.
func (l *level) install(lineAddr, clock uint64) {
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr >> 1
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{valid: true, tag: tag, lru: clock}
}

type mshr struct {
	valid    bool
	lineAddr uint64
	fillAt   uint64
	level    ServiceLevel
}

// Hierarchy is the full data memory hierarchy.
type Hierarchy struct {
	cfg        Config
	lineShift  uint
	l1, l2, l3 *level
	mshrs      []mshr

	// Stats.
	mshrMergeHits uint64
	mshrStalls    uint64   // accesses delayed because every MSHR was busy
	Hist          []uint64 // MSHR occupancy histogram, index = busy count
	prefetches    uint64
	hwPrefetches  uint64

	inPrefetch bool // reentrancy guard for the hardware prefetcher
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	h := &Hierarchy{
		cfg:       cfg,
		lineShift: shift,
		l1:        newLevel(cfg.L1, cfg.LineBytes),
		l2:        newLevel(cfg.L2, cfg.LineBytes),
		l3:        newLevel(cfg.L3, cfg.LineBytes),
		mshrs:     make([]mshr, cfg.NumMSHRs),
		Hist:      make([]uint64, cfg.NumMSHRs+1),
	}
	return h
}

// LineAddr returns the cache line number of addr.
func (h *Hierarchy) LineAddr(addr uint64) uint64 { return addr >> h.lineShift }

// Access performs a demand load or store at cycle now. It returns the cycle
// at which the data is available and the furthest level that serviced it.
func (h *Hierarchy) Access(addr uint64, now uint64) (uint64, ServiceLevel) {
	done, lvl := h.access(addr, now)
	if h.cfg.NextLinePrefetch && lvl > L1 && !h.inPrefetch {
		// Hardware next-line prefetch on a demand miss.
		h.inPrefetch = true
		h.hwPrefetches++
		h.access(addr+uint64(h.cfg.LineBytes), now)
		h.inPrefetch = false
	}
	return done, lvl
}

func (h *Hierarchy) access(addr uint64, now uint64) (uint64, ServiceLevel) {
	la := h.LineAddr(addr)
	// A line with an in-flight fill is not yet usable even though it has
	// been installed: merge into the outstanding MSHR first.
	for i := range h.mshrs {
		m := &h.mshrs[i]
		if m.valid && m.fillAt > now && m.lineAddr == la {
			h.mshrMergeHits++
			return m.fillAt, m.level
		}
	}
	if h.l1.lookup(la, now) {
		return now + h.cfg.L1.Latency, L1
	}
	// Allocate an MSHR: reuse a retired one, else wait for the earliest.
	alloc := now
	slot := -1
	var earliest uint64 = ^uint64(0)
	ei := 0
	for i := range h.mshrs {
		m := &h.mshrs[i]
		if !m.valid || m.fillAt <= now {
			slot = i
			break
		}
		if m.fillAt < earliest {
			earliest, ei = m.fillAt, i
		}
	}
	if slot < 0 {
		h.mshrStalls++
		slot = ei
		alloc = earliest
	}
	// Resolve from the next levels.
	var lat uint64
	var lvl ServiceLevel
	switch {
	case h.l2.lookup(la, now):
		lat, lvl = h.cfg.L2.Latency, L2
	case h.l3.lookup(la, now):
		lat, lvl = h.cfg.L3.Latency, L3
	default:
		lat, lvl = h.cfg.MemLatency, MEM
		h.l3.install(la, now)
	}
	h.l2.install(la, now)
	h.l1.install(la, now)
	fill := alloc + lat
	h.mshrs[slot] = mshr{valid: true, lineAddr: la, fillAt: fill, level: lvl}
	return fill, lvl
}

// Prefetch issues a software prefetch (PREF / DFD): same path as a load,
// but callers ignore the completion time.
func (h *Hierarchy) Prefetch(addr uint64, now uint64) {
	h.prefetches++
	h.Access(addr, now)
}

// Tick samples MSHR occupancy for the utilization histogram when enabled.
func (h *Hierarchy) Tick(now uint64) {
	if !h.cfg.SampleMSHRs {
		return
	}
	busy := 0
	for i := range h.mshrs {
		if h.mshrs[i].valid && h.mshrs[i].fillAt > now {
			busy++
		}
	}
	h.Hist[busy]++
}

// LevelStats reports accesses and misses for one level (1, 2, or 3).
func (h *Hierarchy) LevelStats(lvl ServiceLevel) (accesses, misses uint64) {
	switch lvl {
	case L1:
		return h.l1.accesses, h.l1.misses
	case L2:
		return h.l2.accesses, h.l2.misses
	case L3:
		return h.l3.accesses, h.l3.misses
	}
	return 0, 0
}

// MSHRStats reports merged misses and full-MSHR delays.
func (h *Hierarchy) MSHRStats() (merges, stalls uint64) {
	return h.mshrMergeHits, h.mshrStalls
}

// Prefetches reports the number of software prefetches issued.
func (h *Hierarchy) Prefetches() uint64 { return h.prefetches }

// HWPrefetches reports the number of hardware next-line prefetches issued.
func (h *Hierarchy) HWPrefetches() uint64 { return h.hwPrefetches }
