package cache

import "testing"

func smallConfig() Config {
	return Config{
		LineBytes:  64,
		L1:         LevelConfig{Name: "L1", SizeKB: 1, Ways: 2, Latency: 4},
		L2:         LevelConfig{Name: "L2", SizeKB: 4, Ways: 4, Latency: 12},
		L3:         LevelConfig{Name: "L3", SizeKB: 16, Ways: 8, Latency: 30},
		MemLatency: 200,
		NumMSHRs:   4,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(smallConfig())
	done, lvl := h.Access(0x1000, 100)
	if lvl != MEM {
		t.Fatalf("cold access level = %v, want MEM", lvl)
	}
	if done != 300 {
		t.Errorf("cold access done = %d, want 300", done)
	}
	done, lvl = h.Access(0x1008, 400) // same line, after fill
	if lvl != L1 || done != 404 {
		t.Errorf("warm access = %d,%v, want 404,L1", done, lvl)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := New(smallConfig())
	d1, _ := h.Access(0x2000, 10)
	d2, lvl := h.Access(0x2010, 11) // same line, while miss outstanding
	if d2 != d1 {
		t.Errorf("merged miss completes at %d, want %d", d2, d1)
	}
	if lvl != MEM {
		t.Errorf("merged miss level = %v, want MEM", lvl)
	}
	merges, _ := h.MSHRStats()
	if merges != 1 {
		t.Errorf("merges = %d, want 1", merges)
	}
}

func TestMSHRExhaustionDelays(t *testing.T) {
	h := New(smallConfig()) // 4 MSHRs
	var lastFill uint64
	for i := 0; i < 4; i++ {
		f, _ := h.Access(uint64(0x10000+i*64), 0)
		if f > lastFill {
			lastFill = f
		}
	}
	done, _ := h.Access(0x20000, 1) // fifth concurrent miss
	if done <= lastFill {
		t.Errorf("fifth miss done = %d, must wait for an MSHR (past %d)", done, lastFill)
	}
	_, stalls := h.MSHRStats()
	if stalls != 1 {
		t.Errorf("stalls = %d, want 1", stalls)
	}
}

func TestL2AndL3Hits(t *testing.T) {
	h := New(smallConfig())
	// Fill a line, then evict it from L1 by touching enough conflicting
	// lines (L1: 1KB/64B/2way = 8 sets; lines 0x0, 0x200, 0x400 map to
	// set 0 with stride 8 lines = 512 bytes).
	h.Access(0x0, 0)
	h.Access(0x200, 1000)
	h.Access(0x400, 2000)
	// 0x0 now evicted from 2-way set 0 of L1, still in L2.
	done, lvl := h.Access(0x0, 3000)
	if lvl != L2 {
		t.Fatalf("level = %v, want L2", lvl)
	}
	if done != 3012 {
		t.Errorf("done = %d, want 3012", done)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x0, 0)
	h.Access(0x200, 1000)
	h.Access(0x0, 2000)   // refresh 0x0
	h.Access(0x400, 3000) // evicts 0x200 (LRU), not 0x0
	if _, lvl := h.Access(0x0, 4000); lvl != L1 {
		t.Errorf("refreshed line level = %v, want L1", lvl)
	}
	if _, lvl := h.Access(0x200, 5000); lvl == L1 {
		t.Error("LRU line still in L1")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	h := New(smallConfig())
	h.Prefetch(0x3000, 0)
	// After the fill completes, a demand load hits in L1.
	done, lvl := h.Access(0x3000, 500)
	if lvl != L1 || done != 504 {
		t.Errorf("post-prefetch access = %d,%v, want 504,L1", done, lvl)
	}
	if h.Prefetches() != 1 {
		t.Errorf("Prefetches = %d", h.Prefetches())
	}
}

func TestMSHRHistogramSampling(t *testing.T) {
	cfg := smallConfig()
	cfg.SampleMSHRs = true
	h := New(cfg)
	h.Access(0x4000, 0)
	h.Access(0x5000, 0)
	h.Tick(1)   // two outstanding
	h.Tick(500) // both filled
	if h.Hist[2] != 1 {
		t.Errorf("Hist[2] = %d, want 1", h.Hist[2])
	}
	if h.Hist[0] != 1 {
		t.Errorf("Hist[0] = %d, want 1", h.Hist[0])
	}
}

func TestTickDisabledByDefault(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x4000, 0)
	h.Tick(1)
	for _, v := range h.Hist {
		if v != 0 {
			t.Fatal("histogram sampled while disabled")
		}
	}
}

func TestLevelStats(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x6000, 0)
	h.Access(0x6000, 500)
	acc, miss := h.LevelStats(L1)
	if acc != 2 || miss != 1 {
		t.Errorf("L1 stats = %d,%d, want 2,1", acc, miss)
	}
	acc, miss = h.LevelStats(L2)
	if acc != 1 || miss != 1 {
		t.Errorf("L2 stats = %d,%d, want 1,1", acc, miss)
	}
}

func TestServiceLevelHelpers(t *testing.T) {
	if Max(L2, MEM) != MEM || Max(L3, L1) != L3 || Max(NoData, L1) != L1 {
		t.Error("Max wrong")
	}
	if MEM.String() != "MEM" || NoData.String() != "NoData" {
		t.Error("String wrong")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	h := New(DefaultConfig())
	done, lvl := h.Access(0x100, 0)
	if lvl != MEM || done != 200 {
		t.Errorf("default cold access = %d,%v", done, lvl)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	cfg := smallConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	h.Access(0x8000, 0) // miss: prefetches 0x8040
	if h.HWPrefetches() != 1 {
		t.Fatalf("HWPrefetches = %d, want 1", h.HWPrefetches())
	}
	// After the fills complete, the next line hits.
	if _, lvl := h.Access(0x8040, 500); lvl != L1 {
		t.Errorf("next line level = %v, want L1 (prefetched)", lvl)
	}
	// Streaming forward: every new line was prefetched by its
	// predecessor (the in-flight fill still reports the miss level via
	// MSHR merge, so step well past fill time).
	if _, lvl := h.Access(0x8080, 1000); lvl != MEM {
		// 0x8080 was prefetched by the 0x8040 demand? No: 0x8040 hit L1,
		// hits do not trigger the prefetcher.
		_ = lvl
	}
}

func TestNextLinePrefetcherOffByDefault(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x8000, 0)
	if h.HWPrefetches() != 0 {
		t.Errorf("prefetcher ran while disabled")
	}
	if _, lvl := h.Access(0x8040, 500); lvl == L1 {
		t.Errorf("next line present without a prefetcher")
	}
}
