// Package classify reproduces the paper's control-flow classification
// methodology (§II): every workload is run to completion on the functional
// emulator with an ISL-TAGE profiler attached (the paper's PIN tool with
// the CBP3 predictor), collecting per-static-branch misprediction counts.
// Branch classes come from the workloads' annotations — the analog of the
// paper's manual inspection — and the aggregation weighs each workload by
// its MPKI, i.e. by its average 1000-instruction interval (Fig 6).
package classify

import (
	"fmt"
	"sort"
	"strings"

	"cfd/internal/emu"
	"cfd/internal/predictor"
	"cfd/internal/prog"
	"cfd/internal/workload"
)

// BranchProfile is one static branch's profile.
type BranchProfile struct {
	PC          uint64
	Name        string
	Class       prog.BranchClass
	Execs       uint64
	Taken       uint64
	Mispredicts uint64
}

// MissRate returns the branch's misprediction rate.
func (b *BranchProfile) MissRate() float64 {
	if b.Execs == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Execs)
}

// Report is one workload's profile.
type Report struct {
	Workload    string
	Suite       string
	Retired     uint64
	Branches    []BranchProfile // sorted by mispredictions, descending
	Mispredicts uint64
	CondExecs   uint64
}

// MPKI returns mispredictions per 1000 retired instructions.
func (r *Report) MPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return 1000 * float64(r.Mispredicts) / float64(r.Retired)
}

// MissRate returns the overall conditional-branch misprediction rate.
func (r *Report) MissRate() float64 {
	if r.CondExecs == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.CondExecs)
}

// Targeted reports whether the workload enters the targeted slice of the
// study (the paper excludes benchmarks with misprediction rates below 2%).
func (r *Report) Targeted() bool { return r.MissRate() >= 0.02 }

// ClassMPKI returns this workload's MPKI contribution per branch class.
func (r *Report) ClassMPKI() map[prog.BranchClass]float64 {
	out := make(map[prog.BranchClass]float64)
	if r.Retired == 0 {
		return out
	}
	for _, b := range r.Branches {
		out[b.Class] += 1000 * float64(b.Mispredicts) / float64(r.Retired)
	}
	return out
}

// Profile runs one workload's baseline on the emulator under the profiling
// predictor for n work items.
func Profile(s *workload.Spec, n int64) (*Report, error) {
	p, m, err := s.Build(workload.Base, n)
	if err != nil {
		return nil, err
	}
	pred := predictor.NewISLTAGE()
	perPC := make(map[uint64]*BranchProfile)
	tracer := emu.TracerFunc(func(ev emu.Event) {
		if !ev.Inst.Op.IsCondBranch() {
			return
		}
		l := pred.Lookup(ev.PC)
		pred.OnFetchOutcome(ev.PC, ev.Taken)
		pred.Train(ev.PC, l, ev.Taken)
		bp := perPC[ev.PC]
		if bp == nil {
			bp = &BranchProfile{PC: ev.PC, Class: prog.NotAnalyzed}
			if note, ok := p.Notes[ev.PC]; ok {
				bp.Name, bp.Class = note.Name, note.Class
			}
			perPC[ev.PC] = bp
		}
		bp.Execs++
		if ev.Taken {
			bp.Taken++
		}
		if l.Pred != ev.Taken {
			bp.Mispredicts++
		}
	})
	mc := emu.New(p, m, emu.WithTracer(tracer))
	if err := mc.Run(500_000_000); err != nil {
		return nil, fmt.Errorf("classify %s: %w", s.Name, err)
	}
	r := &Report{
		Workload: s.Name,
		Suite:    suiteOf(s.Analog),
		Retired:  mc.Retired,
	}
	for _, bp := range perPC {
		r.Branches = append(r.Branches, *bp)
		r.Mispredicts += bp.Mispredicts
		r.CondExecs += bp.Execs
	}
	sort.Slice(r.Branches, func(i, j int) bool {
		return r.Branches[i].Mispredicts > r.Branches[j].Mispredicts
	})
	return r, nil
}

func suiteOf(analog string) string {
	switch {
	case strings.Contains(analog, "SPEC2006"):
		return "SPEC2006"
	case strings.Contains(analog, "NU-MineBench"):
		return "NU-MineBench"
	case strings.Contains(analog, "BioBench"):
		return "BioBench"
	case strings.Contains(analog, "cBench"):
		return "cBench"
	default:
		return "other"
	}
}

// Study aggregates reports MPKI-weighted, like the paper's pie charts.
type Study struct {
	Reports []*Report
}

// Run profiles every registered workload at the given scale factor
// (fraction of each workload's DefaultN; 0 < scale <= 1).
func Run(scale float64) (*Study, error) {
	st := &Study{}
	for _, s := range workload.All() {
		n := int64(float64(s.DefaultN) * scale)
		if n < 64 {
			n = 64
		}
		r, err := Profile(s, n)
		if err != nil {
			return nil, err
		}
		st.Reports = append(st.Reports, r)
	}
	return st, nil
}

// SuiteShares returns each suite's share of cumulative MPKI (Fig 6a).
func (st *Study) SuiteShares() map[string]float64 {
	total := 0.0
	per := make(map[string]float64)
	for _, r := range st.Reports {
		per[r.Suite] += r.MPKI()
		total += r.MPKI()
	}
	for k := range per {
		per[k] /= total
	}
	return per
}

// TargetedShare returns the fraction of cumulative MPKI in the targeted
// slice (Fig 6b; the paper reports ~78%).
func (st *Study) TargetedShare() float64 {
	var targeted, total float64
	for _, r := range st.Reports {
		total += r.MPKI()
		if r.Targeted() {
			targeted += r.MPKI()
		}
	}
	if total == 0 {
		return 0
	}
	return targeted / total
}

// ClassShares breaks targeted MPKI down by branch class (Fig 6c). The
// paper reports ~41% separable (CFD), ~27% hammock (if-conversion), plus
// inseparable and not-analyzed slices.
func (st *Study) ClassShares() map[prog.BranchClass]float64 {
	per := make(map[prog.BranchClass]float64)
	total := 0.0
	for _, r := range st.Reports {
		if !r.Targeted() {
			continue
		}
		for cls, mpki := range r.ClassMPKI() {
			per[cls] += mpki
			total += mpki
		}
	}
	for k := range per {
		per[k] /= total
	}
	return per
}

// SeparableShare returns the share of targeted MPKI CFD can remove
// (separable classes combined).
func (st *Study) SeparableShare() float64 {
	var sep float64
	for cls, share := range st.ClassShares() {
		if cls.Separable() {
			sep += share
		}
	}
	return sep
}

// TopBranch returns the workload's heaviest mispredicting static branch.
func (r *Report) TopBranch() *BranchProfile {
	if len(r.Branches) == 0 {
		return nil
	}
	return &r.Branches[0]
}
