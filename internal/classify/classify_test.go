package classify

import (
	"testing"

	"cfd/internal/prog"
	"cfd/internal/workload"
)

func TestProfileSoplex(t *testing.T) {
	s, _ := workload.ByName("soplexlike")
	r, err := Profile(s, s.TestN)
	if err != nil {
		t.Fatal(err)
	}
	if r.Suite != "SPEC2006" {
		t.Errorf("suite = %s", r.Suite)
	}
	if r.MPKI() < 10 {
		t.Errorf("soplexlike MPKI = %.1f, expected a hard-branch workload", r.MPKI())
	}
	if !r.Targeted() {
		t.Error("soplexlike must be in the targeted slice")
	}
	top := r.TopBranch()
	if top == nil || top.Class != prog.SeparableTotal {
		t.Errorf("top branch = %+v, want the separable branch", top)
	}
	if top.MissRate() < 0.2 {
		t.Errorf("top branch miss rate = %.2f, want hard", top.MissRate())
	}
}

func TestStreamlikeExcluded(t *testing.T) {
	s, _ := workload.ByName("streamlike")
	r, err := Profile(s, s.TestN)
	if err != nil {
		t.Fatal(err)
	}
	if r.Targeted() {
		t.Errorf("streamlike (miss rate %.3f) must be excluded", r.MissRate())
	}
}

func TestStudyShares(t *testing.T) {
	st, err := Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Reports) == 0 {
		t.Fatal("no reports")
	}
	// Suite shares sum to 1.
	var sum float64
	for _, v := range st.SuiteShares() {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("suite shares sum to %.3f", sum)
	}
	// Most MPKI is targeted (paper: ~78%).
	if ts := st.TargetedShare(); ts < 0.5 {
		t.Errorf("targeted share = %.2f, want the majority", ts)
	}
	// The separable classes dominate the class breakdown by
	// construction of the workload mix (paper: ~41%).
	if sep := st.SeparableShare(); sep < 0.25 {
		t.Errorf("separable share = %.2f, want >= 0.25", sep)
	}
	// Class shares sum to 1 over targeted workloads.
	sum = 0
	for _, v := range st.ClassShares() {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("class shares sum to %.3f", sum)
	}
}

func TestClassMPKIMatchesTotal(t *testing.T) {
	s, _ := workload.ByName("astar2like")
	r, err := Profile(s, s.TestN)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range r.ClassMPKI() {
		sum += v
	}
	if diff := sum - r.MPKI(); diff > 0.001 || diff < -0.001 {
		t.Errorf("class MPKI sum %.3f != total %.3f", sum, r.MPKI())
	}
}
