// Package config defines core configurations: the Sandy Bridge-like
// baseline of the paper's evaluation (Fig 17a), the window-scaling
// configurations used for the large-window studies (Figs 2b, 21b, 23), and
// the pipeline-depth sweep (Fig 21a, Table II).
package config

import (
	"fmt"

	"cfd/internal/cache"
	"cfd/internal/core"
)

// BQMissPolicy selects the fetch unit's behavior when a BranchBQ pop finds
// its predicate not yet pushed (§III-C2, Fig 21c).
type BQMissPolicy uint8

// BQ miss policies.
const (
	// SpecPop predicts the predicate with the branch predictor and takes
	// a checkpoint; the late push confirms or recovers (the paper's
	// default).
	SpecPop BQMissPolicy = iota
	// StallFetch stalls the fetch unit until the push executes.
	StallFetch
)

func (p BQMissPolicy) String() string {
	if p == StallFetch {
		return "stall"
	}
	return "spec"
}

// PredictorKind selects the direction predictor.
type PredictorKind uint8

// Predictor kinds.
const (
	PredISLTAGE PredictorKind = iota
	PredGshare
	PredBimodal
)

func (k PredictorKind) String() string {
	switch k {
	case PredGshare:
		return "gshare"
	case PredBimodal:
		return "bimodal"
	default:
		return "isl-tage"
	}
}

// Core configures the cycle-level processor model.
type Core struct {
	Name string

	// Widths (instructions per cycle).
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	RetireWidth int

	// Per-class issue limits within IssueWidth.
	ALUPorts int
	MemPorts int
	BrPorts  int

	// FrontEndDepth is the minimum fetch-to-execute latency in cycles —
	// the dominant component of the misprediction penalty (Table II;
	// the paper conservatively uses 10).
	FrontEndDepth int

	// Window resources.
	ROBSize     int
	IQSize      int
	LQSize      int
	SQSize      int
	NumPhysRegs int

	// Misprediction recovery.
	NumCheckpoints   int
	CkptOoOReclaim   bool // free a checkpoint at branch resolve, not retire
	CkptConfGuided   bool // only low-confidence branches take checkpoints
	ConfidenceThresh uint8

	// Execution latencies.
	MulLatency int
	DivLatency int

	// CFD hardware.
	BQSize       int
	VQSize       int
	TQSize       int
	BQMissPolicy BQMissPolicy

	// Front-end structures.
	Predictor  PredictorKind
	BTBLogSets int
	BTBWays    int
	RASDepth   int

	// Memory hierarchy.
	Cache cache.Config
}

// SandyBridge returns the paper's baseline core configuration (Fig 17a):
// a 4-wide, 168-entry-window OOO core with an ISL-TAGE predictor, 8
// confidence-guided checkpoints with out-of-order reclamation, and a
// 10-cycle minimum fetch-to-execute depth.
func SandyBridge() Core {
	return Core{
		Name:        "sandybridge-like",
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  6,
		RetireWidth: 4,
		ALUPorts:    3,
		MemPorts:    2,
		BrPorts:     1,

		FrontEndDepth: 10,

		ROBSize:     168,
		IQSize:      54,
		LQSize:      64,
		SQSize:      36,
		NumPhysRegs: 168 + 64,

		NumCheckpoints:   8,
		CkptOoOReclaim:   true,
		CkptConfGuided:   true,
		ConfidenceThresh: 7,

		MulLatency: 3,
		DivLatency: 20,

		BQSize:       core.DefaultBQSize,
		VQSize:       core.DefaultVQSize,
		TQSize:       core.DefaultTQSize,
		BQMissPolicy: SpecPop,

		Predictor:  PredISLTAGE,
		BTBLogSets: 10,
		BTBWays:    4,
		RASDepth:   16,

		Cache: cache.DefaultConfig(),
	}
}

// Scaled returns the baseline scaled to a larger instruction window, as in
// the paper's future-processor projections: ROB sizes 168 through 640 with
// IQ/LQ/SQ/PRF scaled proportionally. The checkpoint policy and count stay
// fixed (§VI).
func Scaled(robSize int) Core {
	c := SandyBridge()
	if robSize <= c.ROBSize {
		c.Name = fmt.Sprintf("window-%d", c.ROBSize)
		return c
	}
	f := float64(robSize) / float64(c.ROBSize)
	c.Name = fmt.Sprintf("window-%d", robSize)
	c.ROBSize = robSize
	c.IQSize = int(float64(c.IQSize) * f)
	c.LQSize = int(float64(c.LQSize) * f)
	c.SQSize = int(float64(c.SQSize) * f)
	c.NumPhysRegs = robSize + 64
	return c
}

// WindowSweep returns the window-scaling study configurations (Figs 2b,
// 21b, 23).
func WindowSweep() []Core {
	sizes := []int{168, 256, 384, 512, 640}
	cs := make([]Core, len(sizes))
	for i, s := range sizes {
		cs[i] = Scaled(s)
	}
	return cs
}

// WithDepth returns c with a different fetch-to-execute depth (Fig 21a).
func (c Core) WithDepth(depth int) Core {
	c.FrontEndDepth = depth
	c.Name = fmt.Sprintf("%s-depth%d", c.Name, depth)
	return c
}

// Validate reports configuration mistakes early.
func (c Core) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.RenameWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("config %s: widths must be positive", c.Name)
	case c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0:
		return fmt.Errorf("config %s: window resources must be positive", c.Name)
	case c.NumPhysRegs < c.ROBSize:
		return fmt.Errorf("config %s: %d physical registers cannot back a %d-entry ROB",
			c.Name, c.NumPhysRegs, c.ROBSize)
	case c.NumPhysRegs < c.VQSize+40:
		// Every VQ push pins a physical register until its pop retires
		// (§IV-B2), so a full VQ plus the logical state must fit in the
		// PRF or the rename stage can deadlock.
		return fmt.Errorf("config %s: %d physical registers cannot hold a full %d-entry VQ plus logical state",
			c.Name, c.NumPhysRegs, c.VQSize)
	case c.FrontEndDepth < 3:
		return fmt.Errorf("config %s: fetch-to-execute depth %d below model minimum 3",
			c.Name, c.FrontEndDepth)
	case c.BQSize <= 0 || c.VQSize <= 0 || c.TQSize <= 0:
		return fmt.Errorf("config %s: queue sizes must be positive", c.Name)
	case c.NumCheckpoints < 0:
		return fmt.Errorf("config %s: negative checkpoint count", c.Name)
	}
	return nil
}

// TableII reports the minimum fetch-to-execute latencies of contemporary
// cores cited by the paper (Table II), for documentation output.
func TableII() map[string]int {
	return map[string]int{
		"AMD Bobcat":      13,
		"ARM Cortex A15":  14,
		"IBM Power7":      19,
		"Intel Pentium 4": 20,
		"Intel Sandy Bridge (paper baseline, conservative)": 10,
	}
}
