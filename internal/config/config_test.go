package config

import "testing"

func TestSandyBridgeValid(t *testing.T) {
	c := SandyBridge()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.ROBSize != 168 || c.FrontEndDepth != 10 || c.NumCheckpoints != 8 {
		t.Errorf("baseline parameters drifted: %+v", c)
	}
	if c.BQSize != 128 || c.TQSize != 256 {
		t.Errorf("queue sizes: BQ=%d TQ=%d, want 128,256", c.BQSize, c.TQSize)
	}
}

func TestScaledWindows(t *testing.T) {
	for _, rob := range []int{256, 384, 512, 640} {
		c := Scaled(rob)
		if err := c.Validate(); err != nil {
			t.Fatalf("Scaled(%d): %v", rob, err)
		}
		if c.ROBSize != rob {
			t.Errorf("ROB = %d, want %d", c.ROBSize, rob)
		}
		base := SandyBridge()
		if c.IQSize <= base.IQSize || c.LQSize <= base.LQSize {
			t.Errorf("Scaled(%d) did not scale IQ/LQ: %d,%d", rob, c.IQSize, c.LQSize)
		}
		if c.NumCheckpoints != base.NumCheckpoints {
			t.Errorf("checkpoint count must stay fixed across windows")
		}
	}
}

func TestScaledNoShrink(t *testing.T) {
	c := Scaled(64)
	if c.ROBSize != SandyBridge().ROBSize {
		t.Errorf("Scaled below baseline must clamp, got ROB %d", c.ROBSize)
	}
}

func TestWindowSweep(t *testing.T) {
	sweep := WindowSweep()
	if len(sweep) != 5 || sweep[0].ROBSize != 168 || sweep[4].ROBSize != 640 {
		t.Errorf("sweep = %v", sweep)
	}
}

func TestWithDepth(t *testing.T) {
	c := SandyBridge().WithDepth(20)
	if c.FrontEndDepth != 20 {
		t.Errorf("depth = %d", c.FrontEndDepth)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Core){
		func(c *Core) { c.FetchWidth = 0 },
		func(c *Core) { c.ROBSize = 0 },
		func(c *Core) { c.NumPhysRegs = 10 },
		func(c *Core) { c.FrontEndDepth = 1 },
		func(c *Core) { c.BQSize = 0 },
		func(c *Core) { c.NumCheckpoints = -1 },
	}
	for i, mutate := range cases {
		c := SandyBridge()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTableII(t *testing.T) {
	tab := TableII()
	if tab["IBM Power7"] != 19 || tab["Intel Pentium 4"] != 20 {
		t.Errorf("Table II values drifted: %v", tab)
	}
}

func TestPolicyStrings(t *testing.T) {
	if SpecPop.String() != "spec" || StallFetch.String() != "stall" {
		t.Error("policy strings")
	}
	if PredISLTAGE.String() != "isl-tage" || PredGshare.String() != "gshare" || PredBimodal.String() != "bimodal" {
		t.Error("predictor strings")
	}
}
