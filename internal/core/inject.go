package core

// This file holds the state-corruption hooks used by the fault-injection
// campaign (package faultinject). The Inject* methods model soft errors in
// the architectural queue storage: they flip live state underneath the ISA
// interface, bypassing the push/pop ordering rules, so the campaign can
// assert that the runtime's typed faults, watchdogs, and differential
// checks catch every corruption. Entry index 0 is the head (oldest); every
// method reports whether it actually mutated state, and refuses indices
// that are not live so an injection is never silently a no-op.

// Marked reports whether the queue has an active Mark (the Forward target).
func (q *fifo[T]) Marked() bool { return q.marked }

// Counters returns the cumulative architectural push and pop counts. They
// are monotonic between Resets; Restore resets them with the rest of the
// state.
func (q *fifo[T]) Counters() (pushes, pops uint64) { return q.pushes, q.pops }

// InjectClearMark clears the mark state, modeling a corrupted mark
// register. It reports false when no mark was set.
func (q *fifo[T]) InjectClearMark() bool {
	if !q.marked {
		return false
	}
	q.marked = false
	return true
}

// atPtr returns a pointer to live entry i (0 = head) for in-place
// corruption; callers must bounds-check against Len first.
func (q *fifo[T]) atPtr(i int) *T { return &q.buf[(q.head+i)%q.size] }

// InjectFlipPred flips the predicate of live entry i.
func (q *BQ) InjectFlipPred(i int) bool {
	if i < 0 || i >= q.n {
		return false
	}
	p := q.atPtr(i)
	*p = !*p
	return true
}

// InjectFlipBit flips one bit of the value in live entry i.
func (q *VQ) InjectFlipBit(i int, bit uint) bool {
	if i < 0 || i >= q.n {
		return false
	}
	*q.atPtr(i) ^= 1 << (bit & 63)
	return true
}

// InjectFlipCountBit flips one trip-count bit of live entry i. Overflow
// entries store no count, so they are refused.
func (q *TQ) InjectFlipCountBit(i int, bit uint) bool {
	if i < 0 || i >= q.n || q.atPtr(i).Overflow {
		return false
	}
	q.atPtr(i).Count ^= 1 << (bit % TQWidth)
	return true
}

// InjectFlipOverflow flips the overflow bit of live entry i.
func (q *TQ) InjectFlipOverflow(i int) bool {
	if i < 0 || i >= q.n {
		return false
	}
	e := q.atPtr(i)
	e.Overflow = !e.Overflow
	return true
}

// EntryAt returns live entry i of the TQ without popping it.
func (q *TQ) EntryAt(i int) (TQEntry, bool) {
	if i < 0 || i >= q.n {
		return TQEntry{}, false
	}
	return q.at(i), true
}
