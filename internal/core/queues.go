// Package core specifies the architectural state of the control-flow
// decoupling (CFD) extension: the branch queue (BQ), value queue (VQ), and
// trip-count queue (TQ), together with the ISA push/pop ordering rules and
// the save/restore memory image formats used on context switches.
//
// Per the paper (§III-A), only the queue contents and a length register are
// architectural. Head/tail indices are microarchitectural: a pop always
// yields the oldest predicate and a push always appends behind the newest,
// however the implementation arranges its storage. This package therefore
// models each queue as a FIFO with a length register, plus the mark state
// needed by the bulk-pop (Mark/Forward) enhancement.
//
// The ordering rules the ISA imposes on software (§III-A):
//
//  1. A push must precede its corresponding pop.
//  2. N consecutive pushes must be followed by exactly N consecutive pops in
//     the same order as their corresponding pushes.
//  3. N cannot exceed the queue size.
//
// Violations are reported as *ViolationError. Architectural executions (the
// functional emulator) treat them as program bugs.
package core

import (
	"encoding/binary"
	"fmt"
)

// Default architectural queue sizes used throughout the paper's evaluation
// (§III-B: BQ size 128; §IV-C2: TQ size 256).
const (
	DefaultBQSize = 128
	DefaultVQSize = 128
	DefaultTQSize = 256
)

// TQWidth is N, the bit width of a trip count held in one TQ entry. A push
// of a trip count >= 2^TQWidth sets the entry's overflow bit instead of
// storing the count (§IV-C4).
const TQWidth = 16

// MaxTripCount is the largest trip count one TQ entry can represent.
const MaxTripCount = 1<<TQWidth - 1

// ViolationError reports a violation of the ISA push/pop ordering rules.
type ViolationError struct {
	Queue string // "BQ", "VQ", or "TQ"
	Op    string // offending operation
	Why   string
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("cfd: %s %s: %s", e.Queue, e.Op, e.Why)
}

// fifo is the common architectural FIFO shared by the three queues. The
// storage is a fixed ring of exactly size entries: pushes and pops move
// indices, never the backing array, so queue traffic allocates nothing no
// matter how long the machine runs.
type fifo[T any] struct {
	name string
	size int
	buf  []T // ring storage, len == size
	head int // index of the oldest entry
	n    int // occupancy (the architectural length register)

	// Monotonic push/pop counters implement Mark/Forward: Mark records
	// the current push count; Forward pops until the pop count reaches
	// the most recent mark.
	pushes uint64
	pops   uint64
	mark   uint64
	marked bool
}

func newFIFO[T any](name string, size int) fifo[T] {
	if size <= 0 {
		panic(fmt.Sprintf("core: %s size must be positive, got %d", name, size))
	}
	return fifo[T]{name: name, size: size, buf: make([]T, size)}
}

// Len returns the value of the architectural length register.
func (q *fifo[T]) Len() int { return q.n }

// Size returns the architectural queue size.
func (q *fifo[T]) Size() int { return q.size }

// at returns entry i in queue order (0 = head, the oldest).
func (q *fifo[T]) at(i int) T { return q.buf[(q.head+i)%q.size] }

func (q *fifo[T]) push(v T) error {
	if q.n >= q.size {
		return &ViolationError{q.name, "push", fmt.Sprintf("queue full (size %d)", q.size)}
	}
	q.buf[(q.head+q.n)%q.size] = v
	q.n++
	q.pushes++
	return nil
}

func (q *fifo[T]) pop() (T, error) {
	var zero T
	if q.n == 0 {
		return zero, &ViolationError{q.name, "pop", "queue empty"}
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) % q.size
	q.n--
	q.pops++
	return v, nil
}

// peek returns the head entry without popping it.
func (q *fifo[T]) peek() (T, bool) {
	var zero T
	if q.n == 0 {
		return zero, false
	}
	return q.buf[q.head], true
}

// setMark records the current tail position (the entry following the newest
// push). Multiple consecutive marks are allowed; Forward uses the last one.
func (q *fifo[T]) setMark() {
	q.mark = q.pushes
	q.marked = true
}

// forward bulk-pops entries from the head through the most recently marked
// position and returns how many entries were popped. The length register is
// decremented by that count. Entries already popped past the mark leave
// nothing to do.
func (q *fifo[T]) forward() (int, error) {
	if !q.marked {
		return 0, &ViolationError{q.name, "forward", "no preceding mark"}
	}
	n := 0
	for q.pops < q.mark {
		if _, err := q.pop(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// reset clears all architectural state (power-on state).
func (q *fifo[T]) reset() {
	q.head, q.n = 0, 0
	q.pushes, q.pops, q.mark, q.marked = 0, 0, 0, false
}

// snapshot returns a deep copy of the queue contents (for checkpoint and
// verification use).
func (q *fifo[T]) snapshot() []T {
	s := make([]T, q.n)
	for i := range s {
		s[i] = q.at(i)
	}
	return s
}

// BQ is the architectural branch queue. Each entry is a single predicate:
// true means the consuming BranchBQ is taken.
type BQ struct {
	fifo[bool]
}

// NewBQ returns a BQ with the given architectural size.
func NewBQ(size int) *BQ { return &BQ{newFIFO[bool]("BQ", size)} }

// Push appends a predicate at the tail. Per the ISA, PushBQ pushes 1 when
// its source register is non-zero.
func (q *BQ) Push(pred bool) error { return q.push(pred) }

// Pop removes and returns the head predicate.
func (q *BQ) Pop() (bool, error) { return q.pop() }

// Peek returns the head predicate without popping.
func (q *BQ) Peek() (bool, bool) { return q.peek() }

// Mark marks the current tail (the MarkBQ instruction).
func (q *BQ) Mark() { q.setMark() }

// Forward bulk-pops through the most recent mark (the ForwardBQ
// instruction) and returns the number of entries discarded.
func (q *BQ) Forward() (int, error) { return q.forward() }

// Reset restores power-on state.
func (q *BQ) Reset() { q.reset() }

// Contents returns a copy of the queued predicates, head first.
func (q *BQ) Contents() []bool { return q.snapshot() }

// At returns the i'th queued predicate (0 = head) without copying.
func (q *BQ) At(i int) bool { return q.at(i) }

// ImageSize returns the number of bytes of the SaveBQ/RestoreBQ memory
// image: one length byte plus one bit per queue entry, rounded up. For the
// default 128-entry BQ this is the paper's 17 bytes (§III-A).
func (q *BQ) ImageSize() int { return 1 + (q.size+7)/8 }

// Save serializes the architectural state (length register first, then the
// predicates between head and tail) into a fresh memory image.
func (q *BQ) Save() []byte {
	img := make([]byte, q.ImageSize())
	_ = q.SaveTo(img)
	return img
}

// SaveTo is the allocation-free form of Save: it serializes into the first
// ImageSize bytes of img, overwriting them entirely (so reused scratch
// buffers produce the same image bytes a fresh Save would).
func (q *BQ) SaveTo(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: SaveBQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	img = img[:q.ImageSize()]
	for i := range img {
		img[i] = 0
	}
	img[0] = byte(q.n)
	for i := 0; i < q.n; i++ {
		if q.at(i) {
			img[1+i/8] |= 1 << (i % 8)
		}
	}
	return nil
}

// Restore replaces the architectural state from a memory image produced by
// Save. The mark is cleared: it is not architectural across context
// switches.
func (q *BQ) Restore(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: RestoreBQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	n := int(img[0])
	if n > q.size {
		return fmt.Errorf("cfd: RestoreBQ: saved length %d exceeds BQ size %d", n, q.size)
	}
	q.reset()
	for i := 0; i < n; i++ {
		if err := q.push(img[1+i/8]&(1<<(i%8)) != 0); err != nil {
			return err
		}
	}
	return nil
}

// VQ is the architectural value queue. Each entry is a 64-bit value.
//
// The paper specifies 32-bit VQ entries for its 32-bit-register Alpha
// binaries; CFD-RISC has 64-bit registers, so entries are 64-bit.
type VQ struct {
	fifo[uint64]
}

// NewVQ returns a VQ with the given architectural size.
func NewVQ(size int) *VQ { return &VQ{newFIFO[uint64]("VQ", size)} }

// Push appends a value at the tail (the PushVQ instruction).
func (q *VQ) Push(v uint64) error { return q.push(v) }

// Pop removes and returns the head value (the PopVQ instruction).
func (q *VQ) Pop() (uint64, error) { return q.pop() }

// Reset restores power-on state.
func (q *VQ) Reset() { q.reset() }

// Contents returns a copy of the queued values, head first.
func (q *VQ) Contents() []uint64 { return q.snapshot() }

// At returns the i'th queued value (0 = head) without copying.
func (q *VQ) At(i int) uint64 { return q.at(i) }

// ImageSize returns the SaveVQ/RestoreVQ image size: one length byte plus
// eight bytes per entry of capacity.
func (q *VQ) ImageSize() int { return 1 + 8*q.size }

// Save serializes the architectural state.
func (q *VQ) Save() []byte {
	img := make([]byte, q.ImageSize())
	_ = q.SaveTo(img)
	return img
}

// SaveTo is the allocation-free form of Save; see BQ.SaveTo.
func (q *VQ) SaveTo(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: SaveVQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	img = img[:q.ImageSize()]
	for i := range img {
		img[i] = 0
	}
	img[0] = byte(q.n)
	for i := 0; i < q.n; i++ {
		binary.LittleEndian.PutUint64(img[1+8*i:], q.at(i))
	}
	return nil
}

// Restore replaces the architectural state from a Save image.
func (q *VQ) Restore(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: RestoreVQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	n := int(img[0])
	if n > q.size {
		return fmt.Errorf("cfd: RestoreVQ: saved length %d exceeds VQ size %d", n, q.size)
	}
	q.reset()
	for i := 0; i < n; i++ {
		if err := q.push(binary.LittleEndian.Uint64(img[1+8*i:])); err != nil {
			return err
		}
	}
	return nil
}

// TQEntry is one architectural trip-count queue entry: an N-bit trip count
// plus the software-visible overflow bit (§IV-C4).
type TQEntry struct {
	Count    uint32 // meaningful only when !Overflow; < 2^TQWidth
	Overflow bool   // set when the pushed trip count exceeded MaxTripCount
}

// TQ is the architectural trip-count queue.
type TQ struct {
	fifo[TQEntry]
}

// NewTQ returns a TQ with the given architectural size.
func NewTQ(size int) *TQ { return &TQ{newFIFO[TQEntry]("TQ", size)} }

// Push appends a trip count at the tail (the PushTQ instruction). Counts
// that do not fit in TQWidth bits set the overflow bit and store no count.
func (q *TQ) Push(count uint64) error {
	if count > MaxTripCount {
		return q.push(TQEntry{Overflow: true})
	}
	return q.push(TQEntry{Count: uint32(count)})
}

// Pop removes and returns the head entry (PopTQ / PopTQOV).
func (q *TQ) Pop() (TQEntry, error) { return q.pop() }

// Peek returns the head entry without popping.
func (q *TQ) Peek() (TQEntry, bool) { return q.peek() }

// Reset restores power-on state.
func (q *TQ) Reset() { q.reset() }

// Contents returns a copy of the queued entries, head first.
func (q *TQ) Contents() []TQEntry { return q.snapshot() }

// At returns the i'th queued entry (0 = head) without copying.
func (q *TQ) At(i int) TQEntry { return q.at(i) }

// ImageSize returns the SaveTQ/RestoreTQ image size: a two-byte length
// (the default TQ holds 256 entries) plus four bytes per entry of capacity
// (trip count in the low bits, overflow in bit 31).
func (q *TQ) ImageSize() int { return 2 + 4*q.size }

// Save serializes the architectural state.
func (q *TQ) Save() []byte {
	img := make([]byte, q.ImageSize())
	_ = q.SaveTo(img)
	return img
}

// SaveTo is the allocation-free form of Save; see BQ.SaveTo.
func (q *TQ) SaveTo(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: SaveTQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	img = img[:q.ImageSize()]
	for i := range img {
		img[i] = 0
	}
	binary.LittleEndian.PutUint16(img, uint16(q.n))
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		w := e.Count
		if e.Overflow {
			w |= 1 << 31
		}
		binary.LittleEndian.PutUint32(img[2+4*i:], w)
	}
	return nil
}

// Restore replaces the architectural state from a Save image.
func (q *TQ) Restore(img []byte) error {
	if len(img) < q.ImageSize() {
		return fmt.Errorf("cfd: RestoreTQ: image too short: %d < %d", len(img), q.ImageSize())
	}
	n := int(binary.LittleEndian.Uint16(img))
	if n > q.size {
		return fmt.Errorf("cfd: RestoreTQ: saved length %d exceeds TQ size %d", n, q.size)
	}
	q.reset()
	for i := 0; i < n; i++ {
		w := binary.LittleEndian.Uint32(img[2+4*i:])
		if err := q.push(TQEntry{Count: w &^ (1 << 31), Overflow: w&(1<<31) != 0}); err != nil {
			return err
		}
	}
	return nil
}
