package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBQFIFOOrder(t *testing.T) {
	q := NewBQ(8)
	in := []bool{true, false, false, true, true}
	for _, p := range in {
		if err := q.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(in))
	}
	for i, want := range in {
		got, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("pop %d = %v, want %v", i, got, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len after draining = %d", q.Len())
	}
}

func TestBQOrderingViolations(t *testing.T) {
	q := NewBQ(2)
	if _, err := q.Pop(); err == nil {
		t.Error("pop of empty queue must fail")
	}
	var verr *ViolationError
	_, err := q.Pop()
	if !errors.As(err, &verr) || verr.Queue != "BQ" {
		t.Errorf("want *ViolationError for BQ, got %v", err)
	}
	q.Push(true)
	q.Push(false)
	if err := q.Push(true); err == nil {
		t.Error("push beyond size must fail (rule 3)")
	}
}

func TestBQMarkForward(t *testing.T) {
	q := NewBQ(16)
	for i := 0; i < 6; i++ {
		q.Push(i%2 == 0)
	}
	q.Mark() // mark after 6 pushes
	// Consume only 2 of the 6; an early loop exit leaves 4 excess.
	q.Pop()
	q.Pop()
	n, err := q.Forward()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Forward discarded %d, want 4", n)
	}
	if q.Len() != 0 {
		t.Errorf("Len after Forward = %d, want 0", q.Len())
	}
	// Pushes after the mark are not touched by a second Forward.
	q.Push(true)
	if n, err := q.Forward(); err != nil || n != 0 {
		t.Errorf("Forward past mark: n=%d err=%v, want 0,nil", n, err)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestBQMultipleMarksUseLast(t *testing.T) {
	q := NewBQ(16)
	q.Push(true)
	q.Mark()
	q.Push(false)
	q.Push(false)
	q.Mark() // later mark wins
	q.Push(true)
	n, err := q.Forward()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Forward discarded %d, want 3 (through second mark)", n)
	}
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1", q.Len())
	}
}

func TestForwardWithoutMark(t *testing.T) {
	q := NewBQ(4)
	if _, err := q.Forward(); err == nil {
		t.Error("Forward without a mark must fail")
	}
}

func TestBQSaveRestore(t *testing.T) {
	q := NewBQ(DefaultBQSize)
	if q.ImageSize() != 17 {
		t.Fatalf("ImageSize = %d, want 17 (paper §III-A)", q.ImageSize())
	}
	rng := rand.New(rand.NewSource(7))
	var want []bool
	for i := 0; i < 100; i++ {
		p := rng.Intn(2) == 0
		want = append(want, p)
		q.Push(p)
	}
	img := q.Save()
	r := NewBQ(DefaultBQSize)
	if err := r.Restore(img); err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(want) {
		t.Fatalf("restored Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		got, err := r.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("restored pop %d = %v, want %v", i, got, w)
		}
	}
}

func TestBQRestoreRejectsBadImages(t *testing.T) {
	q := NewBQ(8)
	if err := q.Restore([]byte{1}); err == nil {
		t.Error("short image accepted")
	}
	img := make([]byte, q.ImageSize())
	img[0] = 9 // length > size
	if err := q.Restore(img); err == nil {
		t.Error("over-length image accepted")
	}
}

func TestVQSaveRestoreRoundTripProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 32 {
			vals = vals[:32]
		}
		q := NewVQ(32)
		for _, v := range vals {
			if err := q.Push(v); err != nil {
				return false
			}
		}
		r := NewVQ(32)
		if err := r.Restore(q.Save()); err != nil {
			return false
		}
		got := r.Contents()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVQFIFO(t *testing.T) {
	q := NewVQ(4)
	for _, v := range []uint64{10, 20, 30} {
		q.Push(v)
	}
	for _, want := range []uint64{10, 20, 30} {
		got, err := q.Pop()
		if err != nil || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, err, want)
		}
	}
}

func TestTQOverflow(t *testing.T) {
	q := NewTQ(4)
	if err := q.Push(MaxTripCount); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(MaxTripCount + 1); err != nil {
		t.Fatal(err)
	}
	e, err := q.Pop()
	if err != nil || e.Overflow || e.Count != MaxTripCount {
		t.Errorf("in-range entry = %+v err=%v", e, err)
	}
	e, err = q.Pop()
	if err != nil || !e.Overflow {
		t.Errorf("overflow entry = %+v err=%v, want Overflow", e, err)
	}
}

func TestTQSaveRestore(t *testing.T) {
	q := NewTQ(DefaultTQSize)
	counts := []uint64{0, 5, 9, 70000, 3} // 70000 overflows a 16-bit count
	for _, c := range counts {
		q.Push(c)
	}
	r := NewTQ(DefaultTQSize)
	if err := r.Restore(q.Save()); err != nil {
		t.Fatal(err)
	}
	want := q.Contents()
	got := r.Contents()
	if len(got) != len(want) {
		t.Fatalf("restored Len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTQFullCapacitySaveRestore(t *testing.T) {
	// The 2-byte length field must represent a completely full default TQ
	// (length 256 does not fit in one byte).
	q := NewTQ(DefaultTQSize)
	for i := 0; i < DefaultTQSize; i++ {
		if err := q.Push(uint64(i % 10)); err != nil {
			t.Fatal(err)
		}
	}
	r := NewTQ(DefaultTQSize)
	if err := r.Restore(q.Save()); err != nil {
		t.Fatal(err)
	}
	if r.Len() != DefaultTQSize {
		t.Fatalf("restored Len = %d, want %d", r.Len(), DefaultTQSize)
	}
}

func TestResetClearsMark(t *testing.T) {
	q := NewBQ(4)
	q.Push(true)
	q.Mark()
	q.Reset()
	if q.Len() != 0 {
		t.Errorf("Len after Reset = %d", q.Len())
	}
	if _, err := q.Forward(); err == nil {
		t.Error("mark must not survive Reset")
	}
}

func TestRestoreClearsMark(t *testing.T) {
	q := NewBQ(8)
	q.Push(true)
	q.Mark()
	img := q.Save()
	if err := q.Restore(img); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Forward(); err == nil {
		t.Error("mark must not survive Restore (not architectural)")
	}
}

func TestQueuePushPopInterleavingProperty(t *testing.T) {
	// Property (ordering rules 1-3): any legal interleaving of pushes and
	// pops behaves as a FIFO of the pushed values.
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewVQ(16)
		var model []uint64
		for _, isPush := range ops {
			if isPush && q.Len() < 16 {
				v := rng.Uint64()
				if err := q.Push(v); err != nil {
					return false
				}
				model = append(model, v)
			} else if !isPush && len(model) > 0 {
				got, err := q.Pop()
				if err != nil || got != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
