package emu

import (
	"errors"
	"testing"

	"cfd/internal/workload"
)

// TestEmuSteadyStateZeroAllocs is the emulator's allocation ceiling: once
// the memory pages and architectural queues are warm, stepping must not
// allocate. The BQ/VQ/TQ ring buffers (fixed arrays, index-only push/pop)
// are what this pins — the old slice-shifting form re-allocated roughly
// once per queue-size pops.
func TestEmuSteadyStateZeroAllocs(t *testing.T) {
	s, ok := workload.ByName("astar1like")
	if !ok {
		t.Fatal("astar1like workload missing")
	}
	p, m, err := s.Build(workload.CFD, 100000)
	if err != nil {
		t.Fatal(err)
	}
	mc := New(p, m)
	if err := mc.Run(20000); !errors.Is(err, ErrLimit) {
		t.Fatalf("warm-up: %v", err)
	}
	limit := mc.Retired
	got := testing.AllocsPerRun(100, func() {
		limit += 500
		if err := mc.Run(limit); !errors.Is(err, ErrLimit) {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("steady-state Run allocates: %g allocs per 500 instructions, want 0", got)
	}
}
