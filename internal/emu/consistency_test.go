package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// aluOps are the operations implemented twice: once in Machine.Step (the
// emulator's switch) and once in ALUOp (shared with the pipeline's
// execution lanes). The property tests pin the two implementations
// together.
var aluRR = []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND,
	isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SRA, isa.SLT, isa.SLTU, isa.SEQ,
	isa.CMOVZ, isa.CMOVNZ}

var aluRI = []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI,
	isa.SHRI, isa.SRAI, isa.SLTI, isa.SLTUI, isa.SEQI}

func TestALUOpMatchesEmulatorRR(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	f := func(a, b, old uint64) bool {
		op := aluRR[rng.Intn(len(aluRR))]
		// Emulator path: set up registers and run one instruction.
		bld := prog.NewBuilder()
		bld.Raw(isa.Inst{Op: op, Rd: 3, Rs1: 1, Rs2: 2})
		bld.Halt()
		mc := New(bld.MustBuild(), nil)
		mc.Regs[1], mc.Regs[2], mc.Regs[3] = a, b, old
		if err := mc.Run(0); err != nil {
			return false
		}
		want := mc.Regs[3]
		got := ALUOp(op, a, b, 0, old)
		if got != want {
			t.Logf("%v(a=%#x b=%#x old=%#x): ALUOp=%#x emu=%#x", op, a, b, old, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestALUOpMatchesEmulatorRI(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	f := func(a uint64, rawImm int64) bool {
		op := aluRI[rng.Intn(len(aluRI))]
		imm := rawImm % (1 << 40) // within the encodable range
		bld := prog.NewBuilder()
		bld.Raw(isa.Inst{Op: op, Rd: 3, Rs1: 1, Imm: imm})
		bld.Halt()
		mc := New(bld.MustBuild(), nil)
		mc.Regs[1] = a
		if err := mc.Run(0); err != nil {
			return false
		}
		want := mc.Regs[3]
		got := ALUOp(op, a, 0, uint64(imm), 0)
		if got != want {
			t.Logf("%v(a=%#x imm=%d): ALUOp=%#x emu=%#x", op, a, imm, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEvalBranchMatchesEmulator(t *testing.T) {
	branches := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
	rng := rand.New(rand.NewSource(57))
	f := func(a, b uint64) bool {
		op := branches[rng.Intn(len(branches))]
		bld := prog.NewBuilder()
		bld.Raw(isa.Inst{Op: op, Rs1: 1, Rs2: 2, Imm: 2}) // taken → skip the marker
		bld.Li(9, 1)                                      // marker: executed only when not taken
		bld.Halt()
		mc := New(bld.MustBuild(), nil)
		mc.Regs[1], mc.Regs[2] = a, b
		if err := mc.Run(0); err != nil {
			return false
		}
		takenEmu := mc.Regs[9] == 0
		return takenEmu == EvalBranch(op, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestNarrowValuesRoundTripThroughQueues(t *testing.T) {
	// Property: any 64-bit value survives PushVQ/PopVQ, and any value
	// below 2^16 survives PushTQ/PopTQ via the loop-trip count.
	f := func(v uint64) bool {
		bld := prog.NewBuilder()
		bld.Li(1, 0) // placeholder
		bld.Raw(isa.Inst{Op: isa.PushVQ, Rs1: 2})
		bld.Raw(isa.Inst{Op: isa.PopVQ, Rd: 3})
		bld.Halt()
		mc := New(bld.MustBuild(), nil)
		mc.Regs[2] = v
		if err := mc.Run(0); err != nil {
			return false
		}
		return mc.Regs[3] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
