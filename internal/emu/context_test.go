package emu

import (
	"testing"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// TestContextSwitchAllQueues emulates what an operating system does on a
// context switch (paper §III-A): save the BQ, VQ, and TQ to memory with
// the Save* instructions, clobber them by running other work, then restore
// and continue consuming — the decoupled state must survive.
func TestContextSwitchAllQueues(t *testing.T) {
	const saveArea = 0x20000
	b := prog.NewBuilder()
	// Produce queue state: 3 BQ predicates, 2 VQ values, 1 TQ count.
	b.Li(1, 1)
	b.PushBQ(1)
	b.PushBQ(0)
	b.PushBQ(1)
	b.Li(2, 111)
	b.PushVQ(2)
	b.Li(2, 222)
	b.PushVQ(2)
	b.Li(2, 5)
	b.PushTQ(2)
	// "Context switch out": save all three queues.
	b.Li(3, saveArea)
	b.SaveQueue(isa.SaveBQ, 3, 0)
	b.SaveQueue(isa.SaveVQ, 3, 64)
	b.SaveQueue(isa.SaveTQ, 3, 2048)
	// The "other process" fills the queues with garbage and drains them.
	b.Li(4, 0)
	b.PushBQ(4)
	b.BranchBQ("g1")
	b.Label("g1")
	b.Li(4, 999)
	b.PushVQ(4)
	b.PopVQ(5)
	b.PushTQ(4)
	b.PopTQ()
	b.Label("drain")
	b.BranchTCR("drain")
	// "Context switch in": restore.
	b.SaveQueue(isa.RestoreBQ, 3, 0)
	b.SaveQueue(isa.RestoreVQ, 3, 64)
	b.SaveQueue(isa.RestoreTQ, 3, 2048)
	// Consume the restored state.
	b.Li(10, 0)
	b.BranchBQ("p1") // predicate 1: taken
	b.Jump("bad1")
	b.Label("p1")
	b.I(isa.ADDI, 10, 10, 1)
	b.BranchBQ("bad2") // predicate 0: not taken
	b.I(isa.ADDI, 10, 10, 2)
	b.BranchBQ("p3") // predicate 1: taken
	b.Jump("bad3")
	b.Label("p3")
	b.I(isa.ADDI, 10, 10, 4)
	b.PopVQ(11)
	b.PopVQ(12)
	b.PopTQ()
	b.Li(13, 0)
	b.Jump("tq")
	b.Label("body")
	b.I(isa.ADDI, 13, 13, 1)
	b.Label("tq")
	b.BranchTCR("body")
	b.Halt()
	b.Label("bad1")
	b.Label("bad2")
	b.Label("bad3")
	b.Halt()

	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[10] != 7 {
		t.Errorf("restored BQ predicates wrong: r10 = %d, want 7", mc.Regs[10])
	}
	if mc.Regs[11] != 111 || mc.Regs[12] != 222 {
		t.Errorf("restored VQ values = %d, %d", mc.Regs[11], mc.Regs[12])
	}
	if mc.Regs[13] != 5 {
		t.Errorf("restored TQ trip = %d, want 5", mc.Regs[13])
	}
	if mc.BQ.Len() != 0 || mc.VQ.Len() != 0 || mc.TQ.Len() != 0 {
		t.Error("queues not drained after restore+consume")
	}
}

// TestSaveImagesInMemoryAreWellFormed checks the memory image layout the
// ISA specifies (§III-A): length first, then payload.
func TestSaveImagesInMemoryAreWellFormed(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 1)
	b.PushBQ(1)
	b.PushBQ(1)
	b.Li(3, 0x30000)
	b.SaveQueue(isa.SaveBQ, 3, 0)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := mc.Mem.Read(0x30000, 1); got != 2 {
		t.Errorf("BQ image length byte = %d, want 2", got)
	}
	if got := mc.Mem.Read(0x30001, 1); got&3 != 3 {
		t.Errorf("BQ image predicate bits = %#x, want low two bits set", got)
	}
}
