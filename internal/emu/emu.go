// Package emu implements the architectural (functional) emulator for
// CFD-RISC. It is the golden model: the cycle-level pipeline must produce
// exactly the same architectural side effects for the same program and
// initial memory. It is also the engine behind the branch-profiling and
// classification study (paper §II), which needs architecturally correct
// branch outcomes to feed a branch predictor model.
package emu

import (
	"context"
	"errors"
	"fmt"

	"cfd/internal/core"
	"cfd/internal/fault"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/obs"
	"cfd/internal/prog"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = errors.New("emu: instruction limit reached")

// Event describes one retired instruction, for tracers.
type Event struct {
	PC     uint64
	Inst   isa.Inst
	Taken  bool   // control transfers: whether it redirected the PC
	Target uint64 // control transfers: taken-target
	Addr   uint64 // loads/stores/prefetch: effective address
	NextPC uint64
}

// Tracer observes retired instructions.
type Tracer interface {
	Retire(ev Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(ev Event)

// Retire implements Tracer.
func (f TracerFunc) Retire(ev Event) { f(ev) }

// Machine is the architectural state of one CFD-RISC hart.
type Machine struct {
	Prog *prog.Program
	Mem  *mem.Memory
	Regs [isa.NumRegs]uint64
	PC   uint64

	// CFD co-processor state.
	BQ  *core.BQ
	VQ  *core.VQ
	TQ  *core.TQ
	TCR uint64

	Halted  bool
	Retired uint64

	tracer Tracer
	wd     *fault.Watchdog
	obsv   *obs.Observer
	diag   retRing

	// ctxImg is the reusable queue save/restore image buffer; switches
	// happen in loops and a fresh image per switch is measurable churn.
	ctxImg []byte
}

// ctxImage returns the reusable image buffer, grown to at least n bytes.
func (m *Machine) ctxImage(n int) []byte {
	if cap(m.ctxImg) < n {
		m.ctxImg = make([]byte, n)
	}
	return m.ctxImg[:n]
}

// Option configures a Machine.
type Option func(*Machine)

// WithQueueSizes overrides the default architectural queue sizes.
func WithQueueSizes(bq, vq, tq int) Option {
	return func(m *Machine) {
		m.BQ = core.NewBQ(bq)
		m.VQ = core.NewVQ(vq)
		m.TQ = core.NewTQ(tq)
	}
}

// WithTracer registers a retirement observer.
func WithTracer(t Tracer) Option {
	return func(m *Machine) { m.tracer = t }
}

// WithWatchdog bounds Run with an instruction budget and/or wall-clock
// deadline; expiry surfaces as a fault.WatchdogExpiry fault carrying a
// machine-state snapshot.
func WithWatchdog(w *fault.Watchdog) Option {
	return func(m *Machine) { m.wd = w }
}

// New returns a Machine ready to execute p against memory mm (which the
// caller has initialized with the workload's data). mm may be nil, in which
// case a fresh memory is used.
func New(p *prog.Program, mm *mem.Memory, opts ...Option) *Machine {
	if mm == nil {
		mm = mem.New()
	}
	m := &Machine{
		Prog: p,
		Mem:  mm,
		BQ:   core.NewBQ(core.DefaultBQSize),
		VQ:   core.NewVQ(core.DefaultVQSize),
		TQ:   core.NewTQ(core.DefaultTQSize),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

func (m *Machine) reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return m.Regs[r]
}

func (m *Machine) setReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		m.Regs[r] = v
	}
}

// Step executes one instruction. ISA violations — queue ordering rule
// breaks, undefined opcodes, malformed save/restore images — return a typed
// *fault.Fault carrying a machine-state snapshot; the machine is left
// halted in that case.
func (m *Machine) Step() error {
	if m.Halted {
		return nil
	}
	pc := m.PC
	in := m.Prog.At(pc)
	next := pc + 1
	ev := Event{PC: pc, Inst: in}

	failKind := func(kind fault.Kind, err error) error {
		m.Halted = true
		return fault.Wrap(kind, fmt.Errorf("emu: pc %d (%s): %w", pc, in, err), m.snapshot(pc))
	}
	// fail classifies the common case: ordering-rule violations are queue
	// faults, anything else at an executing instruction is illegal use.
	fail := func(err error) error {
		var v *core.ViolationError
		if errors.As(err, &v) {
			return failKind(fault.QueueViolation, err)
		}
		return failKind(fault.IllegalInstruction, err)
	}

	a := m.reg(in.Rs1)
	b := m.reg(in.Rs2)

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.Halted = true

	case isa.ADD:
		m.setReg(in.Rd, a+b)
	case isa.SUB:
		m.setReg(in.Rd, a-b)
	case isa.MUL:
		m.setReg(in.Rd, a*b)
	case isa.DIV:
		m.setReg(in.Rd, divSigned(a, b))
	case isa.REM:
		m.setReg(in.Rd, remSigned(a, b))
	case isa.AND:
		m.setReg(in.Rd, a&b)
	case isa.OR:
		m.setReg(in.Rd, a|b)
	case isa.XOR:
		m.setReg(in.Rd, a^b)
	case isa.SHL:
		m.setReg(in.Rd, a<<(b&63))
	case isa.SHR:
		m.setReg(in.Rd, a>>(b&63))
	case isa.SRA:
		m.setReg(in.Rd, uint64(int64(a)>>(b&63)))
	case isa.SLT:
		m.setReg(in.Rd, boolToU64(int64(a) < int64(b)))
	case isa.SLTU:
		m.setReg(in.Rd, boolToU64(a < b))
	case isa.SEQ:
		m.setReg(in.Rd, boolToU64(a == b))

	case isa.ADDI:
		m.setReg(in.Rd, a+uint64(in.Imm))
	case isa.ANDI:
		m.setReg(in.Rd, a&uint64(in.Imm))
	case isa.ORI:
		m.setReg(in.Rd, a|uint64(in.Imm))
	case isa.XORI:
		m.setReg(in.Rd, a^uint64(in.Imm))
	case isa.SHLI:
		m.setReg(in.Rd, a<<(uint64(in.Imm)&63))
	case isa.SHRI:
		m.setReg(in.Rd, a>>(uint64(in.Imm)&63))
	case isa.SRAI:
		m.setReg(in.Rd, uint64(int64(a)>>(uint64(in.Imm)&63)))
	case isa.SLTI:
		m.setReg(in.Rd, boolToU64(int64(a) < in.Imm))
	case isa.SLTUI:
		m.setReg(in.Rd, boolToU64(a < uint64(in.Imm)))
	case isa.SEQI:
		m.setReg(in.Rd, boolToU64(a == uint64(in.Imm)))

	case isa.CMOVZ:
		if b == 0 {
			m.setReg(in.Rd, a)
		}
	case isa.CMOVNZ:
		if b != 0 {
			m.setReg(in.Rd, a)
		}

	case isa.LD, isa.LW, isa.LWU, isa.LH, isa.LHU, isa.LB, isa.LBU:
		addr := a + uint64(in.Imm)
		ev.Addr = addr
		m.setReg(in.Rd, loadValue(m.Mem, in.Op, addr))
	case isa.SD:
		addr := a + uint64(in.Imm)
		ev.Addr = addr
		m.Mem.Write(addr, 8, b)
	case isa.SW:
		addr := a + uint64(in.Imm)
		ev.Addr = addr
		m.Mem.Write(addr, 4, b)
	case isa.SH:
		addr := a + uint64(in.Imm)
		ev.Addr = addr
		m.Mem.Write(addr, 2, b)
	case isa.SB:
		addr := a + uint64(in.Imm)
		ev.Addr = addr
		m.Mem.Write(addr, 1, b)
	case isa.PREF:
		ev.Addr = a + uint64(in.Imm) // architecturally a no-op

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		taken := EvalBranch(in.Op, a, b)
		ev.Taken, ev.Target = taken, in.Target(pc)
		if taken {
			next = in.Target(pc)
		}

	case isa.J:
		ev.Taken, ev.Target = true, in.Target(pc)
		next = in.Target(pc)
	case isa.JAL:
		m.setReg(in.Rd, pc+1)
		ev.Taken, ev.Target = true, in.Target(pc)
		next = in.Target(pc)
	case isa.JR:
		ev.Taken, ev.Target = true, a
		next = a

	case isa.PushBQ:
		if err := m.BQ.Push(a != 0); err != nil {
			return fail(err)
		}
	case isa.BranchBQ:
		pred, err := m.BQ.Pop()
		if err != nil {
			return fail(err)
		}
		ev.Taken, ev.Target = pred, in.Target(pc)
		if pred {
			next = in.Target(pc)
		}
	case isa.MarkBQ:
		m.BQ.Mark()
	case isa.ForwardBQ:
		if _, err := m.BQ.Forward(); err != nil {
			return fail(err)
		}

	case isa.PushVQ:
		if err := m.VQ.Push(a); err != nil {
			return fail(err)
		}
	case isa.PopVQ:
		v, err := m.VQ.Pop()
		if err != nil {
			return fail(err)
		}
		m.setReg(in.Rd, v)

	case isa.PushTQ:
		if err := m.TQ.Push(a); err != nil {
			return fail(err)
		}
	case isa.PopTQ:
		e, err := m.TQ.Pop()
		if err != nil {
			return fail(err)
		}
		if e.Overflow {
			return fail(&core.ViolationError{
				Queue: "TQ", Op: "pop_tq",
				Why: "entry overflow bit set (program must use pop_tq_ov)",
			})
		}
		m.TCR = uint64(e.Count)
	case isa.PopTQOV:
		e, err := m.TQ.Pop()
		if err != nil {
			return fail(err)
		}
		if e.Overflow {
			m.TCR = 0
			ev.Taken, ev.Target = true, in.Target(pc)
			next = in.Target(pc)
		} else {
			m.TCR = uint64(e.Count)
			ev.Target = in.Target(pc)
		}
	case isa.BranchTCR:
		ev.Target = in.Target(pc)
		if m.TCR != 0 {
			m.TCR--
			ev.Taken = true
			next = in.Target(pc)
		}

	case isa.SaveBQ:
		img := m.ctxImage(m.BQ.ImageSize())
		if err := m.BQ.SaveTo(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}
		m.Mem.StoreBytes(a+uint64(in.Imm), img)
	case isa.RestoreBQ:
		img := m.ctxImage(m.BQ.ImageSize())
		m.Mem.LoadBytes(a+uint64(in.Imm), img)
		if err := m.BQ.Restore(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}
	case isa.SaveVQ:
		img := m.ctxImage(m.VQ.ImageSize())
		if err := m.VQ.SaveTo(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}
		m.Mem.StoreBytes(a+uint64(in.Imm), img)
	case isa.RestoreVQ:
		img := m.ctxImage(m.VQ.ImageSize())
		m.Mem.LoadBytes(a+uint64(in.Imm), img)
		if err := m.VQ.Restore(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}
	case isa.SaveTQ:
		img := m.ctxImage(m.TQ.ImageSize())
		if err := m.TQ.SaveTo(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}
		m.Mem.StoreBytes(a+uint64(in.Imm), img)
	case isa.RestoreTQ:
		img := m.ctxImage(m.TQ.ImageSize())
		m.Mem.LoadBytes(a+uint64(in.Imm), img)
		if err := m.TQ.Restore(img); err != nil {
			return failKind(fault.BadMemoryAccess, err)
		}

	default:
		return fail(fmt.Errorf("undefined opcode %d", uint8(in.Op)))
	}

	m.PC = next
	m.Retired++
	m.diag.record(pc, in)
	if m.obsv != nil {
		m.obsTick()
	}
	if m.tracer != nil {
		ev.NextPC = next
		m.tracer.Retire(ev)
	}
	return nil
}

// Run executes until HALT, an error, or limit instructions (0 means no
// limit). It returns ErrLimit when the budget runs out first.
func (m *Machine) Run(limit uint64) error {
	return m.RunCtx(context.Background(), limit)
}

// RunCtx is Run with cancellation and watchdog supervision: the machine's
// watchdog (WithWatchdog) and the caller's context both bound the run, and
// expiry returns a fault.WatchdogExpiry fault with a state snapshot. The
// watchdog's MaxCycles counts retired instructions — the emulator's clock.
//
// A faulting run flushes the observer's partial tail interval before
// returning, so a faulted time series is exactly the clean series
// truncated at the fault point — the final sample is not lost with the
// run. (FinishObservation stays idempotent: no clock advances after the
// fault, so a later caller-side flush records nothing.)
func (m *Machine) RunCtx(ctx context.Context, limit uint64) error {
	err := m.runCtx(ctx, limit)
	if err != nil && !errors.Is(err, ErrLimit) {
		m.FinishObservation()
	}
	return err
}

func (m *Machine) runCtx(ctx context.Context, limit uint64) error {
	wd := m.wd
	if ctx != nil && ctx.Done() != nil {
		w := fault.Watchdog{}
		if wd != nil {
			w = *wd
		}
		w.Ctx = ctx
		wd = &w
	}
	for !m.Halted {
		if limit != 0 && m.Retired >= limit {
			return ErrLimit
		}
		if reason, expired := wd.Check(m.Retired); expired {
			return fault.Wrap(fault.WatchdogExpiry,
				fmt.Errorf("emu: watchdog: %s after %d instructions (pc %d)", reason, m.Retired, m.PC),
				m.snapshot(m.PC))
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// EvalBranch evaluates a base-ISA conditional branch condition.
func EvalBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}

// loadValue performs a load with the op's width and extension semantics.
func loadValue(m *mem.Memory, op isa.Op, addr uint64) uint64 {
	switch op {
	case isa.LD:
		return m.Read(addr, 8)
	case isa.LW:
		return uint64(int64(int32(m.Read(addr, 4))))
	case isa.LWU:
		return m.Read(addr, 4)
	case isa.LH:
		return uint64(int64(int16(m.Read(addr, 2))))
	case isa.LHU:
		return m.Read(addr, 2)
	case isa.LB:
		return uint64(int64(int8(m.Read(addr, 1))))
	case isa.LBU:
		return m.Read(addr, 1)
	}
	return 0
}

// ALUOp computes the result of a register-register or register-immediate
// ALU/MUL/DIV operation outside a Machine (the pipeline's execution lanes
// share these semantics). old is the prior value of the destination
// register, needed by conditional moves.
func ALUOp(op isa.Op, a, b, imm uint64, old uint64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		return divSigned(a, b)
	case isa.REM:
		return remSigned(a, b)
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << (b & 63)
	case isa.SHR:
		return a >> (b & 63)
	case isa.SRA:
		return uint64(int64(a) >> (b & 63))
	case isa.SLT:
		return boolToU64(int64(a) < int64(b))
	case isa.SLTU:
		return boolToU64(a < b)
	case isa.SEQ:
		return boolToU64(a == b)
	case isa.ADDI:
		return a + imm
	case isa.ANDI:
		return a & imm
	case isa.ORI:
		return a | imm
	case isa.XORI:
		return a ^ imm
	case isa.SHLI:
		return a << (imm & 63)
	case isa.SHRI:
		return a >> (imm & 63)
	case isa.SRAI:
		return uint64(int64(a) >> (imm & 63))
	case isa.SLTI:
		return boolToU64(int64(a) < int64(imm))
	case isa.SLTUI:
		return boolToU64(a < imm)
	case isa.SEQI:
		return boolToU64(a == imm)
	case isa.CMOVZ:
		if b == 0 {
			return a
		}
		return old
	case isa.CMOVNZ:
		if b != 0 {
			return a
		}
		return old
	}
	return 0
}

// LoadValue exposes load extension semantics for the pipeline.
func LoadValue(m *mem.Memory, op isa.Op, addr uint64) uint64 { return loadValue(m, op, addr) }

// LoadSize returns the access width in bytes of a load op.
func LoadSize(op isa.Op) int {
	switch op {
	case isa.LD:
		return 8
	case isa.LW, isa.LWU:
		return 4
	case isa.LH, isa.LHU:
		return 2
	case isa.LB, isa.LBU:
		return 1
	}
	return 8
}

// StoreSize returns the access width in bytes of a store op.
func StoreSize(op isa.Op) int {
	switch op {
	case isa.SD:
		return 8
	case isa.SW:
		return 4
	case isa.SH:
		return 2
	case isa.SB:
		return 1
	}
	return 8
}

// ExtendLoad applies a load op's sign/zero extension to a raw little-endian
// value already fetched from memory or a store-queue forward.
func ExtendLoad(op isa.Op, raw uint64) uint64 {
	switch op {
	case isa.LD, isa.LWU, isa.LHU, isa.LBU:
		return raw
	case isa.LW:
		return uint64(int64(int32(raw)))
	case isa.LH:
		return uint64(int64(int16(raw)))
	case isa.LB:
		return uint64(int64(int8(raw)))
	}
	return raw
}

func divSigned(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	sa, sb := int64(a), int64(b)
	if sa == -1<<63 && sb == -1 {
		return a // overflow case: quotient defined as the dividend
	}
	return uint64(sa / sb)
}

func remSigned(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	sa, sb := int64(a), int64(b)
	if sa == -1<<63 && sb == -1 {
		return 0
	}
	return uint64(sa % sb)
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
