package emu

import (
	"math/rand"
	"testing"

	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// sumLoop builds: for i in 0..n-1 { sum += a[i] }; store sum at out.
func sumLoop(base, out uint64, n int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(base)) // r1 = &a[0]
	b.Li(2, n)           // r2 = n
	b.Li(3, 0)           // r3 = sum
	b.Label("loop")
	b.Load(isa.LD, 4, 1, 0)
	b.R(isa.ADD, 3, 3, 4)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "loop")
	b.Li(5, int64(out))
	b.Store(isa.SD, 3, 5, 0)
	b.Halt()
	return b.MustBuild()
}

func TestSumLoop(t *testing.T) {
	m := mem.New()
	vals := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	m.WriteUint64s(0x1000, vals)
	mc := New(sumLoop(0x1000, 0x2000, int64(len(vals))), m)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, v := range vals {
		want += v
	}
	if got := m.Read(0x2000, 8); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if mc.Retired == 0 || !mc.Halted {
		t.Errorf("Retired=%d Halted=%v", mc.Retired, mc.Halted)
	}
}

// cfdConditionalSum builds the paper's canonical transformation (Fig 3b):
//
//	baseline:   for i { if (a[i] > k) b[i] = a[i] + 7 }
//	decoupled:  loop1 pushes (a[i] > k); loop2 pops and does the work.
//
// Both versions must leave identical memory.
func baselineConditional(aBase, bBase uint64, n, k int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(aBase))
	b.Li(2, int64(bBase))
	b.Li(3, n)
	b.Li(4, k)
	b.Label("loop")
	b.Load(isa.LD, 5, 1, 0)
	b.R(isa.SLT, 6, 4, 5) // r6 = k < a[i]
	b.Note("a[i] > k", prog.SeparableTotal)
	b.Branch(isa.BEQ, 6, 0, "skip") // skip CD region when predicate false
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "loop")
	b.Halt()
	return b.MustBuild()
}

func cfdConditional(aBase, bBase uint64, n, k int64) *prog.Program {
	b := prog.NewBuilder()
	// Loop 1: generate predicates.
	b.Li(1, int64(aBase))
	b.Li(3, n)
	b.Li(4, k)
	b.Label("gen")
	b.Load(isa.LD, 5, 1, 0)
	b.R(isa.SLT, 6, 4, 5)
	b.PushBQ(6)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "gen")
	// Loop 2: consume predicates.
	b.Li(1, int64(aBase))
	b.Li(2, int64(bBase))
	b.Li(3, n)
	b.Label("use")
	b.BranchBQ("work") // taken → execute CD region
	b.Jump("skip")
	b.Label("work")
	b.Load(isa.LD, 5, 1, 0)
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "use")
	b.Halt()
	return b.MustBuild()
}

func TestCFDMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100))
	}
	const aBase, bBase, k = 0x1000, 0x8000, 50

	m1 := mem.New()
	m1.WriteUint64s(aBase, vals)
	if err := New(baselineConditional(aBase, bBase, int64(len(vals)), k), m1).Run(0); err != nil {
		t.Fatal(err)
	}
	m2 := mem.New()
	m2.WriteUint64s(aBase, vals)
	mc := New(cfdConditional(aBase, bBase, int64(len(vals)), k), m2)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2) {
		t.Error("CFD-transformed program diverges from baseline")
	}
	if mc.BQ.Len() != 0 {
		t.Errorf("BQ not drained: %d", mc.BQ.Len())
	}
}

func TestBQOverflowIsProgramError(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 1)
	b.Li(2, 200) // exceeds BQ size 128
	b.Label("l")
	b.PushBQ(1)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "l")
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err == nil {
		t.Error("BQ overflow must be reported")
	}
	if !mc.Halted {
		t.Error("machine must halt on violation")
	}
}

func TestPopEmptyBQFails(t *testing.T) {
	b := prog.NewBuilder()
	b.BranchBQ("x")
	b.Label("x").Halt()
	if err := New(b.MustBuild(), nil).Run(0); err == nil {
		t.Error("pop before push must be reported (ordering rule 1)")
	}
}

// tqNestedLoop builds the TQ transformation of Fig 13d:
//
//	for i { for j in 0..a[i]-1 { sum++ } }
func tqNestedLoop(base uint64, n int64, useTQ bool) *prog.Program {
	b := prog.NewBuilder()
	if useTQ {
		b.Li(1, int64(base))
		b.Li(2, n)
		b.Label("gen")
		b.Load(isa.LD, 3, 1, 0)
		b.PushTQ(3)
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, "gen")
		b.Li(2, n)
		b.Li(4, 0) // sum
		b.Label("outer")
		b.PopTQ()
		b.Jump("test")
		b.Label("body")
		b.I(isa.ADDI, 4, 4, 1)
		b.Label("test")
		b.BranchTCR("body")
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, "outer")
	} else {
		b.Li(1, int64(base))
		b.Li(2, n)
		b.Li(4, 0)
		b.Label("outer")
		b.Load(isa.LD, 3, 1, 0)
		b.Li(5, 0)
		b.Label("inner")
		b.Branch(isa.BGE, 5, 3, "innerdone")
		b.I(isa.ADDI, 4, 4, 1)
		b.I(isa.ADDI, 5, 5, 1)
		b.Jump("inner")
		b.Label("innerdone")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, "outer")
	}
	b.Li(6, 0x4000)
	b.Store(isa.SD, 4, 6, 0)
	b.Halt()
	return b.MustBuild()
}

func TestTQLoopMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trips := make([]uint64, 40)
	for i := range trips {
		trips[i] = uint64(rng.Intn(10)) // 0..9, like astar
	}
	run := func(useTQ bool) uint64 {
		m := mem.New()
		m.WriteUint64s(0x1000, trips)
		if err := New(tqNestedLoop(0x1000, int64(len(trips)), useTQ), m).Run(0); err != nil {
			t.Fatal(err)
		}
		return m.Read(0x4000, 8)
	}
	base, tq := run(false), run(true)
	if base != tq {
		t.Errorf("TQ sum = %d, baseline = %d", tq, base)
	}
	var want uint64
	for _, v := range trips {
		want += v
	}
	if base != want {
		t.Errorf("baseline sum = %d, want %d", base, want)
	}
}

func TestMarkForwardEarlyExit(t *testing.T) {
	// Loop 1 pushes 8 predicates, marks. Loop 2 pops 3 and exits early;
	// ForwardBQ discards the excess so a second decoupled region works.
	b := prog.NewBuilder()
	b.Li(1, 8)
	b.Li(2, 1)
	b.Label("gen")
	b.PushBQ(2)
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "gen")
	b.MarkBQ()
	b.Li(1, 3)
	b.Label("use")
	b.BranchBQ("body")
	b.Label("body")
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "use")
	b.ForwardBQ()
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.BQ.Len() != 0 {
		t.Errorf("BQ length after Forward = %d, want 0", mc.BQ.Len())
	}
}

func TestVQRoundTrip(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 111)
	b.PushVQ(1)
	b.Li(1, 222)
	b.PushVQ(1)
	b.PopVQ(2)
	b.PopVQ(3)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[2] != 111 || mc.Regs[3] != 222 {
		t.Errorf("VQ pops = %d,%d want 111,222", mc.Regs[2], mc.Regs[3])
	}
}

func TestSaveRestoreBQInstruction(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 1)
	b.PushBQ(1)
	b.PushBQ(0) // r0 → predicate 0
	b.Li(2, 0x3000)
	b.SaveQueue(isa.SaveBQ, 2, 0)
	// Drain, then restore: contents must come back.
	b.BranchBQ("n1")
	b.Label("n1")
	b.BranchBQ("n2")
	b.Label("n2")
	b.SaveQueue(isa.RestoreBQ, 2, 0)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.BQ.Len() != 2 {
		t.Fatalf("restored BQ length = %d, want 2", mc.BQ.Len())
	}
	got := mc.BQ.Contents()
	if !got[0] || got[1] {
		t.Errorf("restored contents = %v, want [true false]", got)
	}
}

func TestPopTQOVBranchesOnOverflow(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 1<<20) // exceeds 16-bit trip count
	b.PushTQ(1)
	b.PopTQOV("fallback")
	b.Li(9, 1) // skipped when overflow branch taken
	b.Halt()
	b.Label("fallback")
	b.Li(9, 2)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[9] != 2 {
		t.Errorf("r9 = %d, want 2 (overflow path)", mc.Regs[9])
	}
	if mc.TCR != 0 {
		t.Errorf("TCR = %d, want 0 after overflow pop", mc.TCR)
	}
}

func TestPopTQOVInRange(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 5)
	b.PushTQ(1)
	b.PopTQOV("fallback")
	b.Halt()
	b.Label("fallback")
	b.Li(9, 2)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[9] != 0 || mc.TCR != 5 {
		t.Errorf("r9=%d TCR=%d, want 0,5", mc.Regs[9], mc.TCR)
	}
}

func TestCMOV(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 10)
	b.Li(2, 20)
	b.Li(3, 0)
	b.Li(4, 99)
	b.R(isa.CMOVZ, 1, 2, 3)  // r3==0 → r1 = 20
	b.R(isa.CMOVNZ, 4, 2, 3) // r3==0 → r4 unchanged
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[1] != 20 {
		t.Errorf("cmovz: r1 = %d, want 20", mc.Regs[1])
	}
	if mc.Regs[4] != 99 {
		t.Errorf("cmovnz: r4 = %d, want 99", mc.Regs[4])
	}
}

func TestZeroRegisterIgnoresWrites(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(0, 42)
	b.Mov(1, 0)
	b.Halt()
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if mc.Regs[1] != 0 {
		t.Errorf("r0 must stay 0, got moved value %d", mc.Regs[1])
	}
}

func TestRunLimit(t *testing.T) {
	b := prog.NewBuilder()
	b.Label("spin").Jump("spin")
	mc := New(b.MustBuild(), nil)
	if err := mc.Run(100); err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	if mc.Retired != 100 {
		t.Errorf("Retired = %d, want 100", mc.Retired)
	}
}

func TestTracerSeesBranches(t *testing.T) {
	var branches, taken int
	tr := TracerFunc(func(ev Event) {
		if ev.Inst.Op.IsCondBranch() {
			branches++
			if ev.Taken {
				taken++
			}
		}
	})
	m := mem.New()
	m.WriteUint64s(0x1000, []uint64{1, 2, 3, 4})
	mc := New(sumLoop(0x1000, 0x2000, 4), m, WithTracer(tr))
	if err := mc.Run(0); err != nil {
		t.Fatal(err)
	}
	if branches != 4 || taken != 3 {
		t.Errorf("branches=%d taken=%d, want 4,3", branches, taken)
	}
}

func TestLoadExtensions(t *testing.T) {
	m := mem.New()
	m.Write(0x100, 8, 0xfffefdfcfbfaf9f8)
	cases := []struct {
		op   isa.Op
		want uint64
	}{
		{isa.LD, 0xfffefdfcfbfaf9f8},
		{isa.LW, 0xfffffffffbfaf9f8},
		{isa.LWU, 0xfbfaf9f8},
		{isa.LH, 0xfffffffffffff9f8},
		{isa.LHU, 0xf9f8},
		{isa.LB, 0xfffffffffffffff8},
		{isa.LBU, 0xf8},
	}
	for _, c := range cases {
		b := prog.NewBuilder()
		b.Li(1, 0x100)
		b.Load(c.op, 2, 1, 0)
		b.Halt()
		mc := New(b.MustBuild(), m.Clone())
		if err := mc.Run(0); err != nil {
			t.Fatal(err)
		}
		if mc.Regs[2] != c.want {
			t.Errorf("%v = %#x, want %#x", c.op, mc.Regs[2], c.want)
		}
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.DIV, 7, 2, 3},
		{isa.DIV, -7, 2, -3},
		{isa.DIV, 7, 0, 0},
		{isa.REM, 7, 0, 7},
		{isa.REM, -7, 2, -1},
		{isa.DIV, -9223372036854775808, -1, -9223372036854775808},
		{isa.REM, -9223372036854775808, -1, 0},
	}
	for _, c := range cases {
		b := prog.NewBuilder()
		b.Li(1, c.a)
		b.Li(2, c.b)
		b.R(c.op, 3, 1, 2)
		b.Halt()
		mc := New(b.MustBuild(), nil)
		if err := mc.Run(0); err != nil {
			t.Fatal(err)
		}
		if int64(mc.Regs[3]) != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, int64(mc.Regs[3]), c.want)
		}
	}
}

func TestExtendLoadMatchesLoadValue(t *testing.T) {
	m := mem.New()
	m.Write(0x40, 8, 0x8899aabbccddeeff)
	for _, op := range []isa.Op{isa.LD, isa.LW, isa.LWU, isa.LH, isa.LHU, isa.LB, isa.LBU} {
		raw := m.Read(0x40, LoadSize(op))
		if got, want := ExtendLoad(op, raw), LoadValue(m, op, 0x40); got != want {
			t.Errorf("%v: ExtendLoad = %#x, LoadValue = %#x", op, got, want)
		}
	}
}
