package emu

import (
	"cfd/internal/fault"
	"cfd/internal/isa"
)

// retRing keeps the last few retired instructions for fault snapshots,
// storing raw (pc, inst) pairs so Step never allocates for diagnostics.
type retRing struct {
	buf  [fault.RingDepth]struct {
		pc uint64
		in isa.Inst
	}
	next int
	full bool
}

func (r *retRing) record(pc uint64, in isa.Inst) {
	r.buf[r.next] = struct {
		pc uint64
		in isa.Inst
	}{pc, in}
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *retRing) snapshot() []fault.RetiredInst {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]fault.RetiredInst, 0, n)
	emit := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, fault.RetiredInst{PC: r.buf[i].pc, Text: r.buf[i].in.String()})
		}
	}
	if r.full {
		emit(r.next, len(r.buf))
	}
	emit(0, r.next)
	return out
}

// snapshot captures the machine's architectural state for fault
// diagnostics. The emulator has no cycles; Retired is its clock.
func (m *Machine) snapshot(pc uint64) fault.Snapshot {
	return fault.Snapshot{
		Engine:      "emu",
		PC:          pc,
		Retired:     m.Retired,
		BQLen:       m.BQ.Len(),
		VQLen:       m.VQ.Len(),
		TQLen:       m.TQ.Len(),
		TCR:         m.TCR,
		LastRetired: m.diag.snapshot(),
	}
}
