package emu

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"cfd/internal/core"
	"cfd/internal/fault"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// wantFault runs p to completion and asserts the run ends in a typed fault
// of the given kind, returning it for further inspection.
func wantFault(t *testing.T, p *prog.Program, kind fault.Kind, opts ...Option) *fault.Fault {
	t.Helper()
	m := New(p, mem.New(), opts...)
	err := m.Run(0)
	if err == nil {
		t.Fatalf("run completed cleanly, want %v fault", kind)
	}
	f, ok := fault.As(err)
	if !ok {
		t.Fatalf("error %v is not a *fault.Fault", err)
	}
	if f.Kind != kind {
		t.Fatalf("fault kind = %v, want %v (err: %v)", f.Kind, kind, err)
	}
	if f.Snap.Engine != "emu" {
		t.Fatalf("snapshot engine = %q, want emu", f.Snap.Engine)
	}
	// ISA violations halt the machine; a watchdog expiry leaves it
	// resumable (the program itself did nothing wrong).
	if kind != fault.WatchdogExpiry && !m.Halted {
		t.Fatal("machine not halted after fault")
	}
	return f
}

// wantViolation additionally unwraps the core.ViolationError and checks the
// queue and operation it blames.
func wantViolation(t *testing.T, p *prog.Program, queue, op string, opts ...Option) *fault.Fault {
	t.Helper()
	f := wantFault(t, p, fault.QueueViolation, opts...)
	var v *core.ViolationError
	if !errors.As(f, &v) {
		t.Fatalf("fault %v does not wrap a *core.ViolationError", f)
	}
	if v.Queue != queue || v.Op != op {
		t.Fatalf("violation blames %s/%s, want %s/%s (%v)", v.Queue, v.Op, queue, op, v)
	}
	return f
}

func TestFaultBQUnderflow(t *testing.T) {
	p := prog.NewBuilder().
		BranchBQ("done").Label("done").Halt().MustBuild()
	f := wantViolation(t, p, "BQ", "pop")
	if f.Snap.PC != 0 {
		t.Errorf("fault pc = %d, want 0", f.Snap.PC)
	}
	if f.Snap.BQLen != 0 {
		t.Errorf("snapshot BQ length = %d, want 0", f.Snap.BQLen)
	}
}

func TestFaultBQOverflow(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 1).
		PushBQ(1).PushBQ(1).PushBQ(1).
		Halt().MustBuild()
	f := wantViolation(t, p, "BQ", "push", WithQueueSizes(2, 2, 2))
	if f.Snap.PC != 3 {
		t.Errorf("fault pc = %d, want 3 (third push)", f.Snap.PC)
	}
	if f.Snap.BQLen != 2 {
		t.Errorf("snapshot BQ length = %d, want 2 (full)", f.Snap.BQLen)
	}
	if f.Snap.Retired != 3 {
		t.Errorf("snapshot retired = %d, want 3", f.Snap.Retired)
	}
}

func TestFaultVQUnderflow(t *testing.T) {
	p := prog.NewBuilder().PopVQ(5).Halt().MustBuild()
	wantViolation(t, p, "VQ", "pop")
}

func TestFaultVQOverflow(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 7).
		PushVQ(1).PushVQ(1).PushVQ(1).
		Halt().MustBuild()
	wantViolation(t, p, "VQ", "push", WithQueueSizes(2, 2, 2))
}

func TestFaultTQUnderflow(t *testing.T) {
	p := prog.NewBuilder().PopTQ().Halt().MustBuild()
	wantViolation(t, p, "TQ", "pop")
}

func TestFaultTQOverflow(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 3).
		PushTQ(1).PushTQ(1).PushTQ(1).
		Halt().MustBuild()
	wantViolation(t, p, "TQ", "push", WithQueueSizes(2, 2, 2))
}

func TestFaultForwardWithoutMark(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 1).PushBQ(1).
		ForwardBQ(). // no preceding MarkBQ
		Halt().MustBuild()
	f := wantViolation(t, p, "BQ", "forward")
	if !strings.Contains(f.Error(), "mark") {
		t.Errorf("forward fault does not mention the missing mark: %v", f)
	}
}

// TestFaultPopTQOverflowBit: a trip count wider than TQWidth sets the
// entry's overflow bit; consuming it with the non-OV pop form is an ISA
// violation (the program must use pop_tq_ov).
func TestFaultPopTQOverflowBit(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, core.MaxTripCount+1).
		PushTQ(1).
		PopTQ().
		Halt().MustBuild()
	f := wantViolation(t, p, "TQ", "pop_tq")
	if !strings.Contains(f.Error(), "overflow") {
		t.Errorf("fault does not mention the overflow bit: %v", f)
	}
	if f.Snap.PC != 2 {
		t.Errorf("fault pc = %d, want 2 (the pop_tq)", f.Snap.PC)
	}
}

// TestFaultRestoreBadImage: restoring a BQ image whose length byte exceeds
// the queue size is a malformed-image fault, not a panic.
func TestFaultRestoreBadImage(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 4096).
		Raw(isa.Inst{Op: isa.RestoreBQ, Rs1: 1}).
		Halt().MustBuild()
	m := New(p, mem.New(), WithQueueSizes(4, 4, 4))
	m.Mem.Write(4096, 1, 200) // length byte 200 > size 4
	err := m.Run(0)
	f, ok := fault.As(err)
	if !ok || f.Kind != fault.BadMemoryAccess {
		t.Fatalf("err = %v, want bad-memory-access fault", err)
	}
}

func TestFaultUndefinedOpcode(t *testing.T) {
	p := prog.NewBuilder().Raw(isa.Inst{Op: isa.Op(250)}).Halt().MustBuild()
	wantFault(t, p, fault.IllegalInstruction)
}

// TestFaultSnapshotRing checks the snapshot carries the most recent retired
// instructions in order.
func TestFaultSnapshotRing(t *testing.T) {
	b := prog.NewBuilder()
	for i := 0; i < 12; i++ {
		b.Nop()
	}
	p := b.PopVQ(3).Halt().MustBuild()
	f := wantViolation(t, p, "VQ", "pop")
	last := f.Snap.LastRetired
	if len(last) != fault.RingDepth {
		t.Fatalf("ring holds %d entries, want %d", len(last), fault.RingDepth)
	}
	for i, r := range last {
		if want := uint64(12 - fault.RingDepth + i); r.PC != want {
			t.Errorf("ring[%d].PC = %d, want %d", i, r.PC, want)
		}
	}
}

func TestWatchdogMaxCycles(t *testing.T) {
	p := prog.NewBuilder().Label("spin").Jump("spin").Halt().MustBuild()
	f := wantFault(t, p, fault.WatchdogExpiry,
		WithWatchdog(&fault.Watchdog{MaxCycles: 1000}))
	if f.Snap.Retired != 1000 {
		t.Errorf("watchdog fired at retired = %d, want exactly 1000", f.Snap.Retired)
	}
}

func TestWatchdogContextCancel(t *testing.T) {
	p := prog.NewBuilder().Label("spin").Jump("spin").Halt().MustBuild()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(p, mem.New())
	err := m.RunCtx(ctx, 0)
	f, ok := fault.As(err)
	if !ok || f.Kind != fault.WatchdogExpiry {
		t.Fatalf("err = %v, want watchdog-expiry fault", err)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	p := prog.NewBuilder().Label("spin").Jump("spin").Halt().MustBuild()
	m := New(p, mem.New(),
		WithWatchdog(&fault.Watchdog{Deadline: time.Now().Add(5 * time.Millisecond)}))
	err := m.Run(0)
	f, ok := fault.As(err)
	if !ok || f.Kind != fault.WatchdogExpiry {
		t.Fatalf("err = %v, want watchdog-expiry fault", err)
	}
}
