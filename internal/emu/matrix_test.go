package emu_test

// The emulator is the golden architectural model: every workload variant
// must retire exactly the same architectural state on the cycle-level
// pipeline as on the emulator. consistency_test.go pins the shared ALU and
// branch helpers instruction by instruction; this file extends the oracle
// to the full workload matrix — every registered workload × every variant
// it implements — which is the same cross-check the parallel harness's
// Verify mode applies to experiment runs.

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/pipeline"
	"cfd/internal/workload"
)

// matrixN caps the per-workload input size so the full matrix stays fast.
const matrixN = 1500

func TestPipelineMatchesEmulatorMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, s := range workload.All() {
		for _, v := range s.Variants {
			s, v := s, v
			t.Run(s.Name+"/"+string(v), func(t *testing.T) {
				t.Parallel()
				n := s.TestN
				if n > matrixN {
					n = matrixN
				}
				p, m, err := s.Build(v, n)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				init := m.Clone()
				cfg := config.SandyBridge()
				core, err := pipeline.New(cfg, p, m)
				if err != nil {
					t.Fatal(err)
				}
				if err := core.Run(0); err != nil {
					t.Fatalf("pipeline: %v", err)
				}
				if err := emu.VerifyArch(p, init, core.ArchRegs(), core.Mem(), core.Stats.Retired,
					emu.WithQueueSizes(cfg.BQSize, cfg.VQSize, cfg.TQSize)); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestVerifyArchCatchesDivergence makes sure the oracle is not vacuous: a
// corrupted register file, a short retire count, and a corrupted memory
// image must each be rejected.
func TestVerifyArchCatchesDivergence(t *testing.T) {
	s, ok := workload.ByName("bzip2like")
	if !ok {
		t.Fatal("bzip2like not registered")
	}
	p, m, err := s.Build(workload.Base, 512)
	if err != nil {
		t.Fatal(err)
	}
	init := m.Clone()
	cfg := config.SandyBridge()
	core, err := pipeline.New(cfg, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	opts := emu.WithQueueSizes(cfg.BQSize, cfg.VQSize, cfg.TQSize)

	regs := core.ArchRegs()
	if err := emu.VerifyArch(p, init.Clone(), regs, core.Mem(), core.Stats.Retired, opts); err != nil {
		t.Fatalf("clean run rejected: %v", err)
	}
	bad := regs
	bad[5] ^= 0xdeadbeef
	if err := emu.VerifyArch(p, init.Clone(), bad, core.Mem(), core.Stats.Retired, opts); err == nil {
		t.Error("corrupted register file accepted")
	}
	if err := emu.VerifyArch(p, init.Clone(), regs, core.Mem(), core.Stats.Retired-1, opts); err == nil {
		t.Error("short retire count accepted")
	}
	corrupt := core.Mem().Clone()
	corrupt.Write(0x33333, 8, 0x1234)
	if err := emu.VerifyArch(p, init.Clone(), regs, corrupt, core.Stats.Retired, opts); err == nil {
		t.Error("corrupted memory accepted")
	}
}
