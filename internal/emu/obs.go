package emu

import "cfd/internal/obs"

// The emulator has no pipeline, so its observer runs on the instruction
// clock: one tick per retired instruction, architectural queue occupancy
// observed after each retirement. Cycle-flavoured sample fields (IPC, stall
// fractions) degenerate to their architectural values — IPC is identically
// one — but the occupancy series and histograms are real and directly
// comparable to the pipeline's, which is the point: they show how much of
// the BQ/VQ/TQ pressure is architectural (program shape) versus
// microarchitectural (timing).

// WithObserver attaches an interval sampler driven by the instruction
// clock. Nil disables observation with zero per-step cost beyond one nil
// check.
func WithObserver(o *obs.Observer) Option {
	return func(m *Machine) { m.obsv = o }
}

// Observer returns the attached observer (nil when observation is off).
func (m *Machine) Observer() *obs.Observer { return m.obsv }

func (m *Machine) obsTick() {
	o := m.obsv
	o.TickQueues(m.BQ.Len(), m.VQ.Len(), m.TQ.Len())
	if o.Due(m.Retired) {
		o.Record(m.intervalCounters())
	}
}

func (m *Machine) intervalCounters() obs.IntervalCounters {
	return obs.IntervalCounters{Cycle: m.Retired, Retired: m.Retired}
}

// FinishObservation flushes the partial tail interval. Call once after the
// run; safe to call with observation disabled.
func (m *Machine) FinishObservation() {
	if m.obsv != nil {
		m.obsv.Finish(m.intervalCounters())
	}
}

// RegisterProbes registers the machine's live architectural state as named
// probes: retirement count, PC, TCR, and the architectural queue
// occupancies. Probes are pull-based, so registration adds no per-step
// cost. No-op on a nil registry.
func (m *Machine) RegisterProbes(reg *obs.Registry) {
	reg.RegisterProbe("emu.retired", obs.ProbeFunc(func() float64 { return float64(m.Retired) }))
	reg.RegisterProbe("emu.pc", obs.ProbeFunc(func() float64 { return float64(m.PC) }))
	reg.RegisterProbe("emu.tcr", obs.ProbeFunc(func() float64 { return float64(m.TCR) }))
	reg.RegisterProbe("emu.bq_occ", obs.ProbeFunc(func() float64 { return float64(m.BQ.Len()) }))
	reg.RegisterProbe("emu.vq_occ", obs.ProbeFunc(func() float64 { return float64(m.VQ.Len()) }))
	reg.RegisterProbe("emu.tq_occ", obs.ProbeFunc(func() float64 { return float64(m.TQ.Len()) }))
}
