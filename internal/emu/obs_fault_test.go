package emu

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"cfd/internal/core"
	"cfd/internal/fault"
	"cfd/internal/mem"
	"cfd/internal/obs"
)

// TestMachineObserverTailFlushOnFault pins the emulator's fault-path tail
// flush: a watchdog-killed run must leave exactly the series a clean run
// truncated at the same retirement count produces, final partial sample
// included.
func TestMachineObserverTailFlushOnFault(t *testing.T) {
	const every, cut = 32, 500 // cut lands mid-interval, off a boundary

	build := func(opts ...Option) (*Machine, *obs.Observer) {
		rng := rand.New(rand.NewSource(23))
		vals := make([]uint64, 64)
		for i := range vals {
			vals[i] = uint64(rng.Intn(100))
		}
		const aBase, bBase, k = 0x1000, 0x8000, 50
		mm := mem.New()
		mm.WriteUint64s(aBase, vals)
		o := obs.NewObserver(every, core.DefaultBQSize, core.DefaultVQSize, core.DefaultTQSize)
		m := New(cfdConditional(aBase, bBase, int64(len(vals)), k), mm,
			append([]Option{WithObserver(o)}, opts...)...)
		return m, o
	}

	// Clean reference, truncated at the cut via the instruction limit.
	clean, cleanObs := build()
	if err := clean.Run(cut); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit at %d instructions, got %v", cut, err)
	}
	clean.FinishObservation()

	// The same machine killed by the watchdog at the same point.
	faulted, faultedObs := build(WithWatchdog(&fault.Watchdog{MaxCycles: cut}))
	err := faulted.Run(0)
	if _, ok := fault.As(err); !ok {
		t.Fatalf("want a watchdog fault after %d instructions, got %v", cut, err)
	}
	// No manual FinishObservation: the fault path must have flushed.

	if len(faultedObs.Samples) == 0 {
		t.Fatal("faulted run produced no samples")
	}
	if last := faultedObs.Samples[len(faultedObs.Samples)-1].Cycle; last != cut {
		t.Errorf("faulted series ends at tick %d, want the fault point %d", last, cut)
	}
	if !reflect.DeepEqual(cleanObs.Samples, faultedObs.Samples) {
		t.Errorf("faulted series differs from truncated-clean series\nclean:   %+v\nfaulted: %+v",
			cleanObs.Samples, faultedObs.Samples)
	}
}
