package emu

import (
	"math/rand"
	"reflect"
	"testing"

	"cfd/internal/core"
	"cfd/internal/mem"
	"cfd/internal/obs"
)

func obsEmuRun(t testing.TB, every uint64) *Machine {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	vals := make([]uint64, 64)
	for i := range vals {
		vals[i] = uint64(rng.Intn(100))
	}
	const aBase, bBase, k = 0x1000, 0x8000, 50
	mm := mem.New()
	mm.WriteUint64s(aBase, vals)
	o := obs.NewObserver(every, core.DefaultBQSize, core.DefaultVQSize, core.DefaultTQSize)
	m := New(cfdConditional(aBase, bBase, int64(len(vals)), k), mm, WithObserver(o))
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	m.FinishObservation()
	return m
}

func TestMachineObserver(t *testing.T) {
	const every = 32
	m := obsEmuRun(t, every)
	o := m.Observer()

	// On the instruction clock, every retirement is one tick.
	if o.BQ.Total() != m.Retired {
		t.Errorf("BQ histogram saw %d ticks, retired %d", o.BQ.Total(), m.Retired)
	}
	// The generator loop fills the BQ well before the consumer drains it.
	if o.BQ.Max() == 0 {
		t.Error("BQ never observed non-empty in a CFD program")
	}
	want := int(m.Retired / every)
	if m.Retired%every != 0 {
		want++
	}
	if len(o.Samples) != want {
		t.Fatalf("%d samples over %d retires at every=%d, want %d", len(o.Samples), m.Retired, every, want)
	}
	for i, s := range o.Samples {
		// IPC degenerates to 1 on the instruction clock.
		if s.IPC != 1 {
			t.Errorf("sample %d: emulator IPC %v, want exactly 1", i, s.IPC)
		}
		if s.BQOcc < 0 || s.BQOcc > float64(core.DefaultBQSize) {
			t.Errorf("sample %d: BQ occupancy %v out of bounds", i, s.BQOcc)
		}
	}
	if last := o.Samples[len(o.Samples)-1].Cycle; last != m.Retired {
		t.Errorf("last sample at tick %d, run retired %d", last, m.Retired)
	}
}

func TestMachineObserverDeterministic(t *testing.T) {
	a := obsEmuRun(t, 16).Observer()
	b := obsEmuRun(t, 16).Observer()
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("samples differ between identical runs")
	}
	if !reflect.DeepEqual(a.Occupancy(), b.Occupancy()) {
		t.Error("occupancy differs between identical runs")
	}
}

func TestMachineRegisterProbes(t *testing.T) {
	m := obsEmuRun(t, 0)
	reg := obs.NewRegistry()
	m.RegisterProbes(reg)
	snap := reg.Snapshot()
	if snap["emu.retired"] != float64(m.Retired) {
		t.Errorf("emu.retired probe = %v, want %d", snap["emu.retired"], m.Retired)
	}
	if snap["emu.bq_occ"] != float64(m.BQ.Len()) {
		t.Errorf("emu.bq_occ probe = %v, want %d", snap["emu.bq_occ"], m.BQ.Len())
	}
	m.RegisterProbes(nil) // no-op, not a panic
}
