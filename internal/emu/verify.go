package emu

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// VerifyArch replays p from the initial memory init on a fresh Machine —
// the golden architectural model — and compares the outcome against the
// retired state another execution engine (in practice the cycle-level
// pipeline) produced for the same program: retired-instruction count,
// architectural register file, and final memory. It returns nil when they
// agree and a descriptive error on the first divergence.
//
// init must be the memory image the other engine started from (pass a
// clone taken before that run: both engines mutate their memory). opts are
// forwarded to the Machine so callers can match non-default architectural
// queue sizes.
func VerifyArch(p *prog.Program, init *mem.Memory, regs [isa.NumRegs]uint64, final *mem.Memory, retired uint64, opts ...Option) error {
	if init == nil {
		init = mem.New()
	}
	golden := New(p, init, opts...)
	if err := golden.Run(0); err != nil {
		return fmt.Errorf("emu: golden replay failed: %w", err)
	}
	if golden.Retired != retired {
		return fmt.Errorf("emu: retired-instruction divergence: golden retired %d, core retired %d",
			golden.Retired, retired)
	}
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if regs[r] != golden.Regs[r] {
			return fmt.Errorf("emu: architectural register divergence: r%d = %#x, golden %#x",
				r, regs[r], golden.Regs[r])
		}
	}
	if !golden.Mem.Equal(final) {
		return fmt.Errorf("emu: final-memory divergence (golden checksum %#x, core checksum %#x)",
			golden.Mem.Checksum(), final.Checksum())
	}
	return nil
}
