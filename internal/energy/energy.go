// Package energy provides event-driven energy accounting in the spirit of
// the paper's McPAT+CACTI methodology (§VI): every microarchitectural event
// is charged a per-access energy, structures leak per cycle, and the CFD
// queues (BQ, VQ renamer, TQ) are accounted explicitly. Values are relative
// (picojoule-scale constants); the paper reports relative energy, and the
// shapes — wrong-path waste, instruction overhead, queue costs — are what
// event counting preserves.
package energy

// Event enumerates charged microarchitectural events.
type Event uint8

// Events.
const (
	Fetch Event = iota // per fetched instruction
	Decode
	Rename
	IQWrite
	IQIssue // wakeup/select per issued instruction
	PRFRead // per operand
	PRFWrite
	ALUOp
	MulDivOp
	AGU
	L1Access
	L2Access
	L3Access
	MemAccess
	ROBWrite
	Retire
	LSQOp
	PredictorAccess
	BTBAccess
	CkptCreate
	CkptRestore
	BQAccess    // push/pop/bulk-pop of the fetch unit's BQ
	VQRenAccess // VQ renamer read/write
	TQAccess    // push/pop of the fetch unit's TQ

	numEvents
)

// NumEvents is the number of defined event kinds.
const NumEvents = int(numEvents)

var eventNames = [numEvents]string{
	"fetch", "decode", "rename", "iq-write", "iq-issue", "prf-read",
	"prf-write", "alu", "muldiv", "agu", "l1", "l2", "l3", "mem",
	"rob-write", "retire", "lsq", "predictor", "btb", "ckpt-create",
	"ckpt-restore", "bq", "vq-renamer", "tq",
}

// String returns the event name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "event(?)"
}

// Model holds per-event energies (pJ) and leakage (pJ/cycle).
type Model struct {
	PerEvent     [numEvents]float64
	LeakPerCycle float64
}

// DefaultModel returns per-access energies loosely calibrated to
// McPAT/CACTI relative magnitudes for a Sandy Bridge-class core, with
// leakage scaled to the instruction window size. The BQ/TQ are tagless
// single-bit/16-bit RAMs and the VQ renamer is a small mapping table, so
// their per-access energies are tiny (paper Fig 17b).
func DefaultModel(robSize int) Model {
	m := Model{LeakPerCycle: 30 + 0.06*float64(robSize)}
	m.PerEvent = [numEvents]float64{
		Fetch:           8,
		Decode:          4,
		Rename:          6,
		IQWrite:         6,
		IQIssue:         8,
		PRFRead:         4,
		PRFWrite:        6,
		ALUOp:           10,
		MulDivOp:        30,
		AGU:             8,
		L1Access:        20,
		L2Access:        60,
		L3Access:        150,
		MemAccess:       600,
		ROBWrite:        4,
		Retire:          4,
		LSQOp:           6,
		PredictorAccess: 12,
		BTBAccess:       6,
		CkptCreate:      25,
		CkptRestore:     25,
		BQAccess:        0.8,
		VQRenAccess:     2,
		TQAccess:        1,
	}
	return m
}

// Meter accumulates event counts against a model.
type Meter struct {
	Model  Model
	Counts [numEvents]uint64
	Cycles uint64
}

// NewMeter returns a Meter over the given model.
func NewMeter(m Model) *Meter { return &Meter{Model: m} }

// Add charges n events of kind e.
func (mt *Meter) Add(e Event, n uint64) { mt.Counts[e] += n }

// AddCycles accounts leakage time.
func (mt *Meter) AddCycles(n uint64) { mt.Cycles += n }

// Dynamic returns accumulated dynamic energy (pJ).
func (mt *Meter) Dynamic() float64 {
	var t float64
	for e := 0; e < NumEvents; e++ {
		t += float64(mt.Counts[e]) * mt.Model.PerEvent[e]
	}
	return t
}

// Leakage returns accumulated leakage energy (pJ).
func (mt *Meter) Leakage() float64 { return float64(mt.Cycles) * mt.Model.LeakPerCycle }

// Total returns total energy (pJ).
func (mt *Meter) Total() float64 { return mt.Dynamic() + mt.Leakage() }

// Breakdown returns per-event dynamic energy, keyed by event name.
func (mt *Meter) Breakdown() map[string]float64 {
	b := make(map[string]float64, NumEvents)
	for e := 0; e < NumEvents; e++ {
		if mt.Counts[e] != 0 {
			b[Event(e).String()] = float64(mt.Counts[e]) * mt.Model.PerEvent[e]
		}
	}
	return b
}

// QueueEnergy returns the dynamic energy charged to the CFD structures
// (BQ + VQ renamer + TQ) — the hardware overhead CFD adds.
func (mt *Meter) QueueEnergy() float64 {
	return float64(mt.Counts[BQAccess])*mt.Model.PerEvent[BQAccess] +
		float64(mt.Counts[VQRenAccess])*mt.Model.PerEvent[VQRenAccess] +
		float64(mt.Counts[TQAccess])*mt.Model.PerEvent[TQAccess]
}
