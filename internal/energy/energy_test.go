package energy

import "testing"

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(DefaultModel(168))
	m.Add(Fetch, 100)
	m.Add(ALUOp, 50)
	m.AddCycles(10)
	wantDyn := 100*m.Model.PerEvent[Fetch] + 50*m.Model.PerEvent[ALUOp]
	if got := m.Dynamic(); got != wantDyn {
		t.Errorf("Dynamic = %v, want %v", got, wantDyn)
	}
	wantLeak := 10 * m.Model.LeakPerCycle
	if got := m.Leakage(); got != wantLeak {
		t.Errorf("Leakage = %v, want %v", got, wantLeak)
	}
	if m.Total() != wantDyn+wantLeak {
		t.Error("Total != Dynamic + Leakage")
	}
}

func TestBreakdownSkipsZeroEvents(t *testing.T) {
	m := NewMeter(DefaultModel(168))
	m.Add(L2Access, 3)
	b := m.Breakdown()
	if len(b) != 1 || b["l2"] != 3*m.Model.PerEvent[L2Access] {
		t.Errorf("Breakdown = %v", b)
	}
}

func TestQueueEnergy(t *testing.T) {
	m := NewMeter(DefaultModel(168))
	m.Add(BQAccess, 10)
	m.Add(VQRenAccess, 5)
	m.Add(TQAccess, 2)
	m.Add(Fetch, 1000) // not a queue event
	want := 10*m.Model.PerEvent[BQAccess] + 5*m.Model.PerEvent[VQRenAccess] + 2*m.Model.PerEvent[TQAccess]
	if got := m.QueueEnergy(); got != want {
		t.Errorf("QueueEnergy = %v, want %v", got, want)
	}
}

func TestQueueEnergiesAreTiny(t *testing.T) {
	// Paper Fig 17b: the CFD structures are small tagless RAMs; their
	// per-access energy must be far below a cache or predictor access.
	m := DefaultModel(168)
	for _, q := range []Event{BQAccess, VQRenAccess, TQAccess} {
		if m.PerEvent[q] >= m.PerEvent[L1Access]/4 {
			t.Errorf("%v energy %v too close to L1 %v", q, m.PerEvent[q], m.PerEvent[L1Access])
		}
	}
}

func TestLeakageScalesWithWindow(t *testing.T) {
	if DefaultModel(640).LeakPerCycle <= DefaultModel(168).LeakPerCycle {
		t.Error("leakage must grow with window size")
	}
}

func TestEventNamesComplete(t *testing.T) {
	for e := Event(0); e < numEvents; e++ {
		if e.String() == "" || e.String() == "event(?)" {
			t.Errorf("event %d has no name", e)
		}
	}
}
