// Package export serializes benchmark results to a stable, schema-versioned
// JSON document. The encoding is deterministic by construction — runs are
// sorted by spec key, CPI buckets serialize in bucket order, maps rely on
// encoding/json's sorted keys, and nothing time- or concurrency-dependent
// (wall time, job counts) is included — so a document is byte-identical for
// any -jobs setting and diffable across runs.
//
// Schema compatibility: Version bumps only on incompatible changes (field
// removal or meaning change). Adding fields is compatible and does not bump
// the version; consumers must ignore unknown fields.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cfd/internal/config"
	"cfd/internal/fault"
	"cfd/internal/harness"
	"cfd/internal/obs"
	"cfd/internal/obs/journal"
	"cfd/internal/stats"
	"cfd/internal/store"
)

// Schema identifies the document family; Version its revision.
//
// Version history:
//
//	1 — initial schema: runs, experiments, faults.
//	2 — telemetry: runs gain optional `timeseries` (interval-sampled
//	    IPC/MPKI/stall/occupancy series) and `occupancy` (full-run
//	    BQ/VQ/TQ histograms) sections, present when the producing spec
//	    enabled sampling. Version-1 documents decode unchanged.
//	2 (additive, no bump) — persistent-store diagnostics: documents from
//	    a `-store` run gain a top-level `store` section (hit/miss/
//	    quarantine/retry counters and the end-of-run entry count). With a
//	    store attached, an experiment's `simulations` metric counts cache
//	    misses materialized — simulated or restored — so the experiments
//	    section stays byte-identical across interrupted-and-resumed
//	    sweeps; the fresh-vs-restored split lives in `store` only.
//	2 (additive, no bump) — event-journal pointer: documents from a
//	    `-journal` run gain a top-level `journal` section naming the
//	    journal file, its schema/version, and the event count. Like
//	    `store`, it is process-history-dependent (an interrupted run
//	    journals fewer events than a clean one) and stripped by
//	    byte-identity comparisons.
//	2 (additive, no bump) — manifest provenance: documents from a
//	    `-manifest` run gain a top-level `manifest` section naming the
//	    manifest file, its declared name and schema/version, its content
//	    digest, and the expanded spec count. Unlike `store` and
//	    `journal` it is fully deterministic (a pure function of the
//	    manifest file), so byte-identity comparisons keep it.
const (
	Schema  = "cfd-results"
	Version = 2
)

// Document is the top-level export: one tool invocation's results.
type Document struct {
	Schema  string  `json:"schema"`
	Version int     `json:"version"`
	Tool    string  `json:"tool"`  // "cfdbench" or "cfdsim"
	Scale   float64 `json:"scale"` // workload size scale factor
	Verify  bool    `json:"verify"`

	// Experiments lists the harness experiments that produced the runs,
	// with per-experiment Runner cache metrics (wall time is deliberately
	// excluded: it is not deterministic; the CLIs report it on stderr).
	Experiments []Experiment `json:"experiments,omitempty"`

	// Runs holds every memoized simulation, sorted by spec key.
	Runs []Run `json:"runs"`

	// Faults holds every failed run as a structured fault record, sorted
	// by spec key — present when the Runner swept in keep-going mode (or
	// the tool chose to export after a failure). Adding this section is a
	// compatible schema change; consumers ignoring unknown fields see the
	// same document as before.
	Faults []FaultRecord `json:"faults,omitempty"`

	// Store is the persistent result store's diagnostic section, present
	// when the Runner ran with a -store directory attached. Unlike every
	// other section it is deliberately process-history-dependent: the
	// hit/miss split says how much of this invocation was restored versus
	// simulated, which is exactly what differs between an uninterrupted
	// sweep and a killed-and-resumed one. Consumers comparing documents
	// for byte-identity across such runs strip this one section (the CI
	// resume gate does `jq 'del(.store)'`); everything else converges.
	Store *StoreSection `json:"store,omitempty"`

	// Journal points at the structured event journal recorded alongside
	// this invocation, present when the tool ran with -journal. Process-
	// history-dependent like Store: byte-identity comparisons strip it.
	Journal *JournalSection `json:"journal,omitempty"`

	// Manifest records the provenance of a -manifest run: which declared
	// sweep produced the document's runs. Deterministic, unlike Store and
	// Journal — two runs of the same manifest carry identical sections.
	Manifest *ManifestSection `json:"manifest,omitempty"`
}

// ManifestSection identifies the experiment manifest a -manifest run
// expanded, pinning the document to the exact declaration (by content
// digest) that enumerated its specs.
type ManifestSection struct {
	Path    string `json:"path"`
	Name    string `json:"name,omitempty"`
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Digest  string `json:"digest"`
	Specs   int    `json:"specs"`
}

// JournalSection identifies the event journal a -journal run produced.
type JournalSection struct {
	Path    string `json:"path"`
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Events  uint64 `json:"events"`
}

// StoreSection reports the persistent store's counters for this
// invocation plus the store's end-of-run entry count (which, unlike the
// hit/miss split, is deterministic for a converged sweep).
type StoreSection struct {
	Dir     string        `json:"dir"`
	Entries int           `json:"entries"`
	Metrics store.Metrics `json:"metrics"`
}

// FaultRecord is one failed run: the identifying spec fields, the typed
// fault classification, and the machine-state snapshot captured at fault
// time. Error strings and snapshots are deterministic (panic stacks are
// deliberately excluded from fault messages), so documents with faults stay
// byte-identical across -jobs settings.
type FaultRecord struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Config   string `json:"config"`

	Kind     string          `json:"kind,omitempty"` // fault.Kind; empty for untyped errors
	Error    string          `json:"error"`
	Snapshot *fault.Snapshot `json:"snapshot,omitempty"`
}

// FromFailure converts one harness failure to its export record.
func FromFailure(fl harness.Failure) FaultRecord {
	rec := FaultRecord{
		Workload: fl.Spec.Workload,
		Variant:  string(fl.Spec.Variant),
		Config:   fl.Spec.Config.Name,
		Error:    fl.Err.Error(),
	}
	if f, ok := fault.As(fl.Err); ok {
		rec.Kind = f.Kind.String()
		snap := f.Snap
		rec.Snapshot = &snap
	}
	return rec
}

// Experiment records one harness experiment execution.
type Experiment struct {
	ID      string          `json:"id"`
	Title   string          `json:"title"`
	Metrics harness.Metrics `json:"metrics"` // deltas for this experiment
}

// Run is one simulation: the identifying spec, the architected/microarch
// counters, the CPI stack, and the energy accounting.
type Run struct {
	Workload   string      `json:"workload"`
	Variant    string      `json:"variant"`
	Config     config.Core `json:"config"`
	PerfectAll bool        `json:"perfectAll,omitempty"`
	PerfectCFD bool        `json:"perfectCFD,omitempty"`

	Counters Counters       `json:"counters"`
	CPIStack stats.CPIStack `json:"cpiStack"`
	Energy   Energy         `json:"energy"`
	MSHRHist []uint64       `json:"mshrHist,omitempty"`

	// Timeseries and Occupancy are present when the run's spec enabled
	// interval sampling (SampleEvery > 0): the per-interval telemetry
	// series and the full-run architectural queue-occupancy histograms.
	// Both derive from simulated time only, so they are byte-identical
	// across -jobs settings like the rest of the document.
	Timeseries *obs.TimeseriesSection `json:"timeseries,omitempty"`
	Occupancy  *obs.OccupancySection  `json:"occupancy,omitempty"`
}

// Counters is the exported subset of pipeline.Stats: every scalar counter,
// with derived rates precomputed for convenience. Per-static-branch detail
// stays internal (it is unbounded and workload-addressed).
type Counters struct {
	Cycles  uint64  `json:"cycles"`
	Retired uint64  `json:"retired"`
	Fetched uint64  `json:"fetched"`
	IPC     float64 `json:"ipc"`

	CondBranches   uint64    `json:"condBranches"`
	Mispredicts    uint64    `json:"mispredicts"`
	MPKI           float64   `json:"mpki"`
	MispredByLevel [5]uint64 `json:"mispredByLevel"` // NoData, L1, L2, L3, MEM
	BTBMisfetches  uint64    `json:"btbMisfetches"`

	BQPops            uint64 `json:"bqPops"`
	BQResolvedAtFetch uint64 `json:"bqResolvedAtFetch"`
	BQMisses          uint64 `json:"bqMisses"`
	BQLateMispredict  uint64 `json:"bqLateMispredict"`
	BQFullStalls      uint64 `json:"bqFullStalls"`
	BQMissStalls      uint64 `json:"bqMissStalls"`
	TQPops            uint64 `json:"tqPops"`
	TQMissStalls      uint64 `json:"tqMissStalls"`
	TCRBranches       uint64 `json:"tcrBranches"`

	SquashedUops     uint64 `json:"squashedUops"`
	Recoveries       uint64 `json:"recoveries"`
	RetireRecoveries uint64 `json:"retireRecoveries"`
}

// Energy is the exported energy accounting: totals plus per-event access
// counts (the McPAT-style inputs, so consumers can re-derive totals under
// their own per-access model).
type Energy struct {
	Total   float64           `json:"total"`
	Dynamic float64           `json:"dynamic"`
	Leakage float64           `json:"leakage"`
	Queue   float64           `json:"queue"` // BQ + VQ renamer + TQ dynamic
	Events  map[string]uint64 `json:"events,omitempty"`
}

// FromResult converts one harness result to its export form. The MSHR
// histogram is exported only when the spec sampled it — otherwise the
// hierarchy's slot-indexed slice is an all-zero placeholder.
func FromResult(res *harness.Result) Run {
	st := &res.Stats
	var hist []uint64
	if res.Spec.SampleMSHR {
		hist = res.MSHRHist
	}
	return Run{
		Workload:   res.Spec.Workload,
		Variant:    string(res.Spec.Variant),
		Config:     res.Spec.Config,
		PerfectAll: res.Spec.PerfectAll,
		PerfectCFD: res.Spec.PerfectCFD,
		Counters: Counters{
			Cycles:  st.Cycles,
			Retired: st.Retired,
			Fetched: st.Fetched,
			IPC:     st.IPC(),

			CondBranches:   st.CondBranches,
			Mispredicts:    st.Mispredicts,
			MPKI:           st.MPKI(),
			MispredByLevel: st.MispredByLevel,
			BTBMisfetches:  st.BTBMisfetches,

			BQPops:            st.BQPops,
			BQResolvedAtFetch: st.BQResolvedAtFetch,
			BQMisses:          st.BQMisses,
			BQLateMispredict:  st.BQLateMispredict,
			BQFullStalls:      st.BQFullStalls,
			BQMissStalls:      st.BQMissStalls,
			TQPops:            st.TQPops,
			TQMissStalls:      st.TQMissStalls,
			TCRBranches:       st.TCRBranches,

			SquashedUops:     st.SquashedUops,
			Recoveries:       st.Recoveries,
			RetireRecoveries: st.RetireRecoveries,
		},
		CPIStack: st.CPI,
		Energy: Energy{
			Total:   res.EnergyTotal,
			Dynamic: res.EnergyDynamic,
			Leakage: res.EnergyLeakage,
			Queue:   res.EnergyQueue,
			Events:  res.EnergyEvents,
		},
		MSHRHist:   hist,
		Timeseries: res.Timeseries,
		Occupancy:  res.Occupancy,
	}
}

// Build assembles a Document from the runner's memoized results (already
// sorted by spec key) and the per-experiment records.
func Build(tool string, r *harness.Runner, exps []Experiment) *Document {
	doc := &Document{
		Schema:      Schema,
		Version:     Version,
		Tool:        tool,
		Scale:       r.Scale,
		Verify:      r.Verify,
		Experiments: exps,
	}
	for _, res := range r.Results() {
		doc.Runs = append(doc.Runs, FromResult(res))
	}
	for _, fl := range r.Failures() {
		doc.Faults = append(doc.Faults, FromFailure(fl))
	}
	if r.Store != nil {
		sec := &StoreSection{Dir: r.Store.Dir(), Metrics: r.Store.Metrics()}
		if n, err := r.Store.Len(); err == nil {
			sec.Entries = n
		}
		doc.Store = sec
	}
	if r.Journal != nil && r.Journal.Path() != "" {
		doc.Journal = &JournalSection{
			Path:    r.Journal.Path(),
			Schema:  journal.Schema,
			Version: journal.Version,
			Events:  r.Journal.Events(),
		}
	}
	return doc
}

// Encode writes the document as indented JSON with a trailing newline.
func Encode(w io.Writer, doc *Document) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the document to path ("-" = stdout).
func WriteFile(path string, doc *Document) error {
	if path == "-" {
		return Encode(os.Stdout, doc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, doc); err != nil {
		f.Close()
		return fmt.Errorf("export: writing %s: %w", path, err)
	}
	return f.Close()
}

// Decode reads a document back, rejecting schema mismatches so consumers
// fail loudly on drift.
func Decode(r io.Reader) (*Document, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	if doc.Schema != Schema {
		return nil, fmt.Errorf("export: schema %q, want %q", doc.Schema, Schema)
	}
	if doc.Version > Version {
		return nil, fmt.Errorf("export: document version %d is newer than supported %d", doc.Version, Version)
	}
	return &doc, nil
}
