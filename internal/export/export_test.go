package export

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/harness"
	"cfd/internal/obs/journal"
	"cfd/internal/workload"
)

// -update regenerates the golden file:
//
//	go test ./internal/export/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// exportScale is tiny on purpose: the golden pins the exact serialized
// shape (field names, ordering, formatting), not paper-scale numbers.
const exportScale = 0.02

func buildDoc(t *testing.T, jobs int) *Document {
	t.Helper()
	r := harness.NewRunner(exportScale)
	r.Jobs = jobs
	e, ok := harness.ByID("fig18")
	if !ok {
		t.Fatal("experiment fig18 not registered")
	}
	before := r.Metrics()
	if err := r.RunExperiment(e, io.Discard); err != nil {
		t.Fatal(err)
	}
	return Build("cfdbench", r, []Experiment{
		{ID: e.ID, Title: e.Title, Metrics: r.Metrics().Sub(before)},
	})
}

func encode(t *testing.T, doc *Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenExport pins the serialized document byte for byte: any schema
// drift (field rename, reordering, changed formatting) shows up as a diff
// against the committed golden.
func TestGoldenExport(t *testing.T) {
	got := encode(t, buildDoc(t, 1))
	path := filepath.Join("testdata", "fig18.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("export differs from %s (rerun with -update if the change is intended)", path)
	}
}

// TestExportDeterminism is the acceptance gate for the -json flag: the
// document must be byte-identical whether the simulations ran serially or
// fanned out across 8 workers.
func TestExportDeterminism(t *testing.T) {
	serial := encode(t, buildDoc(t, 1))
	parallel := encode(t, buildDoc(t, 8))
	if !bytes.Equal(serial, parallel) {
		t.Error("export differs between Jobs=1 and Jobs=8")
	}
}

// TestRoundTrip encodes a document and decodes it back: every field must
// survive, including the CPI stack's custom bucket-name object encoding.
func TestRoundTrip(t *testing.T) {
	doc := buildDoc(t, 0)
	got, err := Decode(bytes.NewReader(encode(t, doc)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, doc) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, doc)
	}
	if len(doc.Runs) == 0 {
		t.Fatal("document has no runs")
	}
	for _, run := range doc.Runs {
		if err := run.CPIStack.Check(run.Counters.Cycles); err != nil {
			t.Errorf("%s/%s: %v", run.Workload, run.Variant, err)
		}
	}
}

// TestDecodeRejectsDrift: wrong schema name or a newer version must fail
// loudly instead of being silently misread.
func TestDecodeRejectsDrift(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"schema":"other","version":1}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, err := Decode(strings.NewReader(`{"schema":"cfd-results","version":99}`)); err == nil {
		t.Error("future version accepted")
	}
}

// TestFromResultShape spot-checks the conversion on a single run.
func TestFromResultShape(t *testing.T) {
	r := harness.NewRunner(exportScale)
	res, err := r.Run(harness.RunSpec{
		Workload: "bzip2like", Variant: workload.CFD, Config: config.SandyBridge(),
	})
	if err != nil {
		t.Fatal(err)
	}
	run := FromResult(res)
	if run.Workload != "bzip2like" || run.Variant != "cfd" {
		t.Errorf("identity fields: %q/%q", run.Workload, run.Variant)
	}
	if run.Counters.Cycles != res.Stats.Cycles || run.Counters.Retired != res.Stats.Retired {
		t.Error("counters do not match the result's stats")
	}
	if run.Energy.Total <= 0 || run.Energy.Total != res.EnergyTotal {
		t.Errorf("energy total %v != %v", run.Energy.Total, res.EnergyTotal)
	}
	if len(run.Energy.Events) == 0 {
		t.Error("no energy events exported")
	}
	if run.MSHRHist != nil {
		t.Error("MSHR histogram exported for a non-sampling spec")
	}
	data, err := json.Marshal(run)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cpiStack":{"retiring":`) {
		t.Errorf("CPI stack not serialized in bucket order: %s", data)
	}
}

// TestJournalSection pins the -journal pointer section: present with the
// journal's identity when a file-backed journal is attached, absent for
// bus-only journals and journal-less runners.
func TestJournalSection(t *testing.T) {
	r := harness.NewRunner(exportScale)
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := journal.Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	r.Journal = j
	spec := harness.RunSpec{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()}
	if _, err := r.Sweep(context.Background(), []harness.RunSpec{spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	doc := Build("cfdbench", r, nil)
	if doc.Journal == nil {
		t.Fatal("document has no journal section")
	}
	if doc.Journal.Path != path || doc.Journal.Schema != journal.Schema || doc.Journal.Version != journal.Version {
		t.Fatalf("journal section = %+v", doc.Journal)
	}
	if doc.Journal.Events != j.Events() || doc.Journal.Events == 0 {
		t.Fatalf("journal section events = %d, journal wrote %d", doc.Journal.Events, j.Events())
	}

	// Round trip: the section survives encode/decode.
	got, err := Decode(bytes.NewReader(encode(t, doc)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Journal, doc.Journal) {
		t.Fatalf("journal section round trip: %+v vs %+v", got.Journal, doc.Journal)
	}

	// Bus-only journal: no file, no section.
	r2 := harness.NewRunner(exportScale)
	j2 := journal.New("test")
	r2.Journal = j2
	if doc2 := Build("cfdbench", r2, nil); doc2.Journal != nil {
		t.Fatalf("bus-only journal produced a section: %+v", doc2.Journal)
	}
	j2.Close()

	// No journal at all.
	if doc3 := Build("cfdbench", harness.NewRunner(exportScale), nil); doc3.Journal != nil {
		t.Fatal("journal-less runner produced a journal section")
	}
}
