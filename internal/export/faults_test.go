package export

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cfd/internal/config"
	"cfd/internal/harness"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/workload"
)

// faultDoc runs a keep-going sweep with a deliberately violating workload
// mixed in and returns the export document.
func faultDoc(t *testing.T, jobs int) *Document {
	t.Helper()
	const bad = "export-violator-test"
	if _, ok := workload.ByName(bad); !ok {
		if err := workload.Register(&workload.Spec{
			Name:     bad,
			Variants: []workload.Variant{workload.Base},
			DefaultN: 1024, TestN: 256,
			Build: func(v workload.Variant, n int64) (*prog.Program, *mem.Memory, error) {
				p := prog.NewBuilder().
					Nop().
					BranchBQ("out").Label("out").Halt().MustBuild()
				return p, mem.New(), nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { workload.Deregister(bad) })
	}
	r := harness.NewRunner(exportScale)
	r.Jobs = jobs
	r.KeepGoing = true
	cfg := config.SandyBridge()
	specs := []harness.RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: cfg},
		{Workload: bad, Variant: workload.Base, Config: cfg},
		{Workload: "bzip2like", Variant: workload.CFD, Config: cfg},
	}
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	return Build("cfdbench", r, nil)
}

// TestFaultsSection: a contained failure appears in the document's faults
// section with its kind, deterministic error text, and snapshot.
func TestFaultsSection(t *testing.T) {
	doc := faultDoc(t, 1)
	if len(doc.Runs) != 2 {
		t.Fatalf("document has %d runs, want 2 healthy", len(doc.Runs))
	}
	if len(doc.Faults) != 1 {
		t.Fatalf("document has %d faults, want 1", len(doc.Faults))
	}
	f := doc.Faults[0]
	if f.Workload != "export-violator-test" || f.Variant != "base" {
		t.Errorf("fault attributed to %s/%s", f.Workload, f.Variant)
	}
	if f.Kind != "queue-violation" {
		t.Errorf("fault kind = %q, want queue-violation", f.Kind)
	}
	if f.Snapshot == nil || f.Snapshot.Engine != "pipeline" {
		t.Errorf("fault snapshot missing or wrong engine: %+v", f.Snapshot)
	}
	if f.Error == "" {
		t.Error("fault has empty error text")
	}

	// The faults section must survive a JSON round trip.
	var buf bytes.Buffer
	if err := Encode(&buf, doc); err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Faults) != 1 || back.Faults[0].Kind != "queue-violation" {
		t.Fatalf("faults section lost in round trip: %+v", back.Faults)
	}
}

// TestFaultsDeterministic: fault records (including their error strings)
// must be byte-identical across serial and parallel sweeps — the reason
// panic stacks live outside Fault.Error().
func TestFaultsDeterministic(t *testing.T) {
	serial := encode(t, faultDoc(t, 1))
	parallel := encode(t, faultDoc(t, 8))
	if !bytes.Equal(serial, parallel) {
		t.Error("faulted export differs between Jobs=1 and Jobs=8")
	}
}
