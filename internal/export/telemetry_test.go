package export

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/harness"
	"cfd/internal/workload"
)

func buildSampledDoc(t *testing.T, jobs int) *Document {
	t.Helper()
	r := harness.NewRunner(exportScale)
	r.Jobs = jobs
	specs := []harness.RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge(), SampleEvery: 2048},
		{Workload: "bzip2like", Variant: workload.CFD, Config: config.SandyBridge(), SampleEvery: 2048},
	}
	if err := r.Prefetch(specs...); err != nil {
		t.Fatal(err)
	}
	return Build("cfdsim", r, nil)
}

// TestGoldenTelemetryExport pins the serialized shape of the version-2
// sections — timeseries sample fields and occupancy histograms — byte for
// byte against a committed golden.
func TestGoldenTelemetryExport(t *testing.T) {
	got := encode(t, buildSampledDoc(t, 1))
	path := filepath.Join("testdata", "telemetry.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("telemetry export differs from %s (rerun with -update if the change is intended)", path)
	}
}

// TestTelemetryExportShape checks the version-2 schema invariants without
// relying on exact simulated numbers.
func TestTelemetryExportShape(t *testing.T) {
	doc := buildSampledDoc(t, 0)
	if doc.Version != 2 {
		t.Fatalf("document version %d, want 2", doc.Version)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(doc.Runs))
	}
	for _, run := range doc.Runs {
		if run.Timeseries == nil || len(run.Timeseries.Samples) == 0 {
			t.Fatalf("%s/%s: no timeseries section", run.Workload, run.Variant)
		}
		if run.Timeseries.Every != 2048 {
			t.Errorf("%s/%s: sampling interval %d, want 2048", run.Workload, run.Variant, run.Timeseries.Every)
		}
		last := run.Timeseries.Samples[len(run.Timeseries.Samples)-1]
		if last.Cycle != run.Counters.Cycles {
			t.Errorf("%s/%s: series ends at cycle %d, run took %d",
				run.Workload, run.Variant, last.Cycle, run.Counters.Cycles)
		}
		if run.Occupancy == nil {
			t.Fatalf("%s/%s: no occupancy section", run.Workload, run.Variant)
		}
		var sum uint64
		for _, c := range run.Occupancy.BQ.Counts {
			sum += c
		}
		if sum != run.Counters.Cycles {
			t.Errorf("%s/%s: BQ occupancy counts sum to %d cycles of %d",
				run.Workload, run.Variant, sum, run.Counters.Cycles)
		}
	}
	// Serialized field names are the documented schema.
	out := string(encode(t, doc))
	for _, want := range []string{
		`"timeseries"`, `"occupancy"`, `"every"`, `"samples"`,
		`"fetchStallFrac"`, `"bqOcc"`, `"counts"`, `"version": 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized document missing %s", want)
		}
	}
}

// TestTelemetryExportDeterminism: sampled sections must not break the
// byte-identical-across-jobs contract.
func TestTelemetryExportDeterminism(t *testing.T) {
	serial := encode(t, buildSampledDoc(t, 1))
	parallel := encode(t, buildSampledDoc(t, 8))
	if !bytes.Equal(serial, parallel) {
		t.Error("telemetry export differs between Jobs=1 and Jobs=8")
	}
}

// TestDecodeAcceptsVersion1: bumping to version 2 must not orphan old
// documents.
func TestDecodeAcceptsVersion1(t *testing.T) {
	doc, err := Decode(strings.NewReader(`{"schema":"cfd-results","version":1,"tool":"cfdbench","scale":1,"verify":false,"runs":[]}`))
	if err != nil {
		t.Fatalf("version-1 document rejected: %v", err)
	}
	if doc.Version != 1 {
		t.Errorf("decoded version %d", doc.Version)
	}
}
