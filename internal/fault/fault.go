// Package fault defines the typed fault taxonomy of the simulation runtime.
//
// The paper makes BQ/VQ/TQ contents architectural state (§III-A): ordering
// violations, malformed save/restore images, and corrupted queue contents
// are program- or model-level faults that the runtime must *detect and
// report*, never conditions that may abort the process. Both execution
// engines — the functional emulator (the golden model) and the cycle-level
// pipeline — therefore return a *Fault instead of panicking: a typed fault
// kind, the underlying cause (e.g. a *core.ViolationError), and a machine-
// state Snapshot (PC, cycle, queue occupancies, the last retired
// instructions) for diagnostics.
//
// The package also provides the Watchdog used by both Run loops: a cycle
// budget plus a wall-clock deadline plus caller cancellation, so a corrupted
// trip count or a model bug that stops retirement surfaces as a
// WatchdogExpiry fault with a diagnostic dump rather than a hung sweep.
package fault

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a fault.
type Kind uint8

// Fault kinds.
const (
	// QueueViolation is a break of the ISA push/pop ordering rules on the
	// BQ, VQ, or TQ (§III-A): pop on empty, push on full, forward without
	// mark, or popping an overflowed TQ entry with the wrong instruction.
	QueueViolation Kind = iota
	// IllegalInstruction is an undefined opcode or an instruction fetch
	// from outside the program image.
	IllegalInstruction
	// BadMemoryAccess is a malformed memory operand — in practice a
	// corrupt save/restore queue image whose length register exceeds the
	// architectural queue size.
	BadMemoryAccess
	// WatchdogExpiry reports a Run loop stopped by its watchdog: cycle
	// budget exhausted, wall-clock deadline passed, caller cancellation,
	// or no retirement progress (deadlock).
	WatchdogExpiry
	// InvariantBreach is an internal model invariant failure — always a
	// simulator bug, reported with state for diagnosis.
	InvariantBreach
	// RuntimePanic is a Go panic that escaped an engine and was contained
	// by the harness.
	RuntimePanic
)

var kindNames = [...]string{
	QueueViolation:     "queue-violation",
	IllegalInstruction: "illegal-instruction",
	BadMemoryAccess:    "bad-memory-access",
	WatchdogExpiry:     "watchdog-expiry",
	InvariantBreach:    "invariant-breach",
	RuntimePanic:       "runtime-panic",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// RetiredInst is one entry of the last-N retired instruction ring captured
// in a Snapshot.
type RetiredInst struct {
	PC   uint64 `json:"pc"`
	Text string `json:"text"`
}

// Snapshot is the machine state captured when a fault is raised. Queue
// occupancies are the engine's architectural lengths at fault time (for the
// pipeline: committed head through speculative tail, the fetch stall rule's
// length of §III-C3).
type Snapshot struct {
	Engine      string        `json:"engine"` // "pipeline" or "emu"
	PC          uint64        `json:"pc"`
	Cycle       uint64        `json:"cycle,omitempty"` // 0 for the emulator
	Retired     uint64        `json:"retired"`
	BQLen       int           `json:"bqLen"`
	VQLen       int           `json:"vqLen"`
	TQLen       int           `json:"tqLen"`
	TCR         uint64        `json:"tcr"`
	LastRetired []RetiredInst `json:"lastRetired,omitempty"` // oldest first
}

// Fault is a typed, diagnosable abnormal condition raised by an execution
// engine. It implements error; Unwrap exposes the underlying cause so
// errors.Is/As keep working (e.g. errors.As to *core.ViolationError).
type Fault struct {
	Kind Kind
	Msg  string // human summary; derived from Err when empty
	Err  error  // underlying cause, may be nil
	Snap Snapshot
	// Stack is the goroutine stack for RuntimePanic faults. It is kept out
	// of Error() — stacks carry addresses and goroutine IDs, which would
	// make otherwise-deterministic fault reports nondeterministic — and
	// rendered only by Dump().
	Stack string
}

// New builds a fault from a message.
func New(kind Kind, snap Snapshot, format string, args ...any) *Fault {
	return &Fault{Kind: kind, Msg: fmt.Sprintf(format, args...), Snap: snap}
}

// Wrap builds a fault around an underlying cause.
func Wrap(kind Kind, err error, snap Snapshot) *Fault {
	return &Fault{Kind: kind, Err: err, Snap: snap}
}

func (f *Fault) Error() string {
	msg := f.Msg
	if msg == "" && f.Err != nil {
		msg = f.Err.Error()
	}
	return fmt.Sprintf("fault[%s] %s: %s (pc %d, cycle %d, retired %d)",
		f.Kind, f.Snap.Engine, msg, f.Snap.PC, f.Snap.Cycle, f.Snap.Retired)
}

// Unwrap exposes the underlying cause for errors.Is / errors.As.
func (f *Fault) Unwrap() error { return f.Err }

// As extracts a *Fault from an error chain.
func As(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// Dump renders a multi-line diagnostic of the fault: the summary line, the
// queue occupancies, and the last retired instructions. This is the
// "graceful dump" both Run loops emit on watchdog expiry.
func (f *Fault) Dump() string {
	var b strings.Builder
	b.WriteString(f.Error())
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  queues: BQ %d, VQ %d, TQ %d entries; TCR %d\n",
		f.Snap.BQLen, f.Snap.VQLen, f.Snap.TQLen, f.Snap.TCR)
	if len(f.Snap.LastRetired) > 0 {
		b.WriteString("  last retired (oldest first):\n")
		for _, ri := range f.Snap.LastRetired {
			fmt.Fprintf(&b, "    pc %-6d %s\n", ri.PC, ri.Text)
		}
	}
	if f.Stack != "" {
		b.WriteString("  stack:\n")
		for _, line := range strings.Split(strings.TrimRight(f.Stack, "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return b.String()
}

// FromPanic converts a recovered panic value into a RuntimePanic fault.
// stack is the goroutine stack at recovery time (trimmed to a bounded
// length); it is preserved on the fault for Dump but excluded from Error so
// fault messages stay deterministic.
func FromPanic(v any, stack []byte, snap Snapshot) *Fault {
	f := &Fault{Kind: RuntimePanic, Msg: fmt.Sprintf("panic: %v", v), Snap: snap}
	if len(stack) > 0 {
		const maxStack = 4096
		s := string(stack)
		if len(s) > maxStack {
			s = s[:maxStack] + "..."
		}
		f.Stack = s
	}
	if err, ok := v.(error); ok {
		f.Err = err
	}
	return f
}

// RingDepth is the number of retired instructions engines keep in their
// diagnostic rings for Snapshot.LastRetired.
const RingDepth = 8
