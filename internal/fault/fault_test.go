package fault

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestErrorFormatDeterministic(t *testing.T) {
	snap := Snapshot{Engine: "emu", PC: 42, Cycle: 0, Retired: 7, BQLen: 2}
	f := New(QueueViolation, snap, "BQ pop on empty queue")
	want := "fault[queue-violation] emu: BQ pop on empty queue (pc 42, cycle 0, retired 7)"
	if f.Error() != want {
		t.Fatalf("Error() = %q, want %q", f.Error(), want)
	}
}

func TestWrapUnwrap(t *testing.T) {
	base := errors.New("base cause")
	f := Wrap(BadMemoryAccess, fmt.Errorf("context: %w", base), Snapshot{Engine: "emu"})
	if !errors.Is(f, base) {
		t.Fatal("wrapped fault does not unwrap to the base cause")
	}
	got, ok := As(fmt.Errorf("outer: %w", f))
	if !ok || got != f {
		t.Fatal("As failed to recover the fault through wrapping")
	}
}

func TestAsNonFault(t *testing.T) {
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("As matched a non-fault error")
	}
	if _, ok := As(nil); ok {
		t.Fatal("As matched nil")
	}
}

// TestFromPanicKeepsStackOutOfError: panic stacks carry goroutine IDs and
// addresses; they must appear in Dump() but never in Error(), which feeds
// the deterministic JSON export.
func TestFromPanicKeepsStackOutOfError(t *testing.T) {
	stack := []byte("goroutine 17 [running]:\nmain.crash(0xc000012345)\n")
	f := FromPanic("index out of range", stack, Snapshot{Engine: "harness"})
	if f.Kind != RuntimePanic {
		t.Fatalf("kind = %v, want runtime-panic", f.Kind)
	}
	if strings.Contains(f.Error(), "goroutine") {
		t.Errorf("Error() leaks the stack: %q", f.Error())
	}
	if !strings.Contains(f.Dump(), "goroutine 17") {
		t.Errorf("Dump() lost the stack:\n%s", f.Dump())
	}
}

func TestFromPanicWrapsErrorValue(t *testing.T) {
	cause := errors.New("original")
	f := FromPanic(cause, nil, Snapshot{})
	if !errors.Is(f, cause) {
		t.Fatal("panicking with an error value should be unwrappable")
	}
}

func TestFromPanicTruncatesStack(t *testing.T) {
	f := FromPanic("x", []byte(strings.Repeat("a", 100_000)), Snapshot{})
	if len(f.Stack) > 5000 {
		t.Fatalf("stack kept %d bytes, want truncation", len(f.Stack))
	}
	if !strings.HasSuffix(f.Stack, "...") {
		t.Fatal("truncated stack missing ellipsis")
	}
}

func TestDumpRendersState(t *testing.T) {
	f := New(WatchdogExpiry, Snapshot{
		Engine: "pipeline", PC: 9, Cycle: 100, Retired: 50,
		BQLen: 1, VQLen: 2, TQLen: 3, TCR: 4,
		LastRetired: []RetiredInst{{PC: 8, Text: "nop"}},
	}, "budget gone")
	d := f.Dump()
	for _, want := range []string{"BQ 1", "VQ 2", "TQ 3", "TCR 4", "pc 8", "nop"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump() missing %q:\n%s", want, d)
		}
	}
}

func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	if _, expired := w.Check(1 << 40); expired {
		t.Fatal("nil watchdog fired")
	}
	if w.Enabled() {
		t.Fatal("nil watchdog claims enabled")
	}
}

func TestWatchdogZeroValueNeverFires(t *testing.T) {
	w := &Watchdog{}
	if w.Enabled() {
		t.Fatal("zero watchdog claims enabled")
	}
	for _, n := range []uint64{0, 1, DefaultPollEvery, 1 << 32} {
		if _, expired := w.Check(n); expired {
			t.Fatalf("zero watchdog fired at %d", n)
		}
	}
}

func TestWatchdogMaxCyclesExact(t *testing.T) {
	w := &Watchdog{MaxCycles: 100}
	if _, expired := w.Check(99); expired {
		t.Fatal("fired one cycle early")
	}
	reason, expired := w.Check(100)
	if !expired || !strings.Contains(reason, "cycle budget") {
		t.Fatalf("Check(100) = (%q, %v), want cycle-budget expiry", reason, expired)
	}
}

func TestWatchdogContextPolledAtInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := &Watchdog{Ctx: ctx, PollEvery: 8}
	if _, expired := w.Check(9); expired {
		t.Fatal("context checked off the poll interval")
	}
	reason, expired := w.Check(16)
	if !expired || !strings.Contains(reason, "canceled") {
		t.Fatalf("Check(16) = (%q, %v), want cancellation", reason, expired)
	}
}

func TestWatchdogDeadline(t *testing.T) {
	base := time.Now()
	w := &Watchdog{Deadline: base.Add(time.Minute), PollEvery: 1}
	w.now = func() time.Time { return base }
	if _, expired := w.Check(1); expired {
		t.Fatal("fired before the deadline")
	}
	w.now = func() time.Time { return base.Add(2 * time.Minute) }
	reason, expired := w.Check(2)
	if !expired || !strings.Contains(reason, "deadline") {
		t.Fatalf("Check past deadline = (%q, %v), want deadline expiry", reason, expired)
	}
}

func TestWithTimeout(t *testing.T) {
	w := WithTimeout(500, 0)
	if w.MaxCycles != 500 || !w.Deadline.IsZero() {
		t.Fatalf("WithTimeout(500, 0) = %+v", w)
	}
	w = WithTimeout(0, time.Hour)
	if w.Deadline.IsZero() || !w.Enabled() {
		t.Fatalf("WithTimeout(0, 1h) = %+v", w)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{QueueViolation, IllegalInstruction, BadMemoryAccess,
		WatchdogExpiry, InvariantBreach, RuntimePanic} {
		s := k.String()
		if s == "" || strings.Contains(s, "Kind(") {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
}
