package fault

import (
	"context"
	"time"
)

// DefaultPollEvery is how many cycles (or retired instructions, for the
// emulator) pass between wall-clock and context polls. Cycle-budget checks
// are exact; time checks are amortized so the hot loop stays free of
// syscalls.
const DefaultPollEvery = 4096

// Watchdog bounds an engine's Run loop. The zero value never fires. A
// Watchdog is not safe for concurrent use; give each engine its own.
type Watchdog struct {
	// MaxCycles stops the run once the engine has executed this many
	// cycles (pipeline) or instructions (emulator). 0 = unbounded.
	MaxCycles uint64
	// Deadline stops the run once the wall clock passes it. Zero = none.
	Deadline time.Time
	// Ctx, when non-nil, stops the run when the context is done
	// (cancellation or its own deadline).
	Ctx context.Context
	// PollEvery overrides DefaultPollEvery (useful in tests).
	PollEvery uint64

	// now stubs time.Now in tests.
	now func() time.Time
}

// WithTimeout returns a watchdog with a wall-clock deadline d from now and
// a cycle budget (either may be zero to disable that bound).
func WithTimeout(maxCycles uint64, d time.Duration) *Watchdog {
	w := &Watchdog{MaxCycles: maxCycles}
	if d > 0 {
		w.Deadline = time.Now().Add(d)
	}
	return w
}

// Enabled reports whether any bound is set.
func (w *Watchdog) Enabled() bool {
	return w != nil && (w.MaxCycles != 0 || !w.Deadline.IsZero() || w.Ctx != nil)
}

// Check reports whether the watchdog has expired at cycle n. The returned
// string names the bound that fired. Wall-clock and context checks run only
// every PollEvery cycles.
func (w *Watchdog) Check(n uint64) (string, bool) {
	if w == nil {
		return "", false
	}
	if w.MaxCycles != 0 && n >= w.MaxCycles {
		return "cycle budget exhausted", true
	}
	poll := w.PollEvery
	if poll == 0 {
		poll = DefaultPollEvery
	}
	if n%poll != 0 {
		return "", false
	}
	if w.Ctx != nil {
		if err := w.Ctx.Err(); err != nil {
			return "canceled: " + err.Error(), true
		}
	}
	if !w.Deadline.IsZero() {
		now := time.Now
		if w.now != nil {
			now = w.now
		}
		if now().After(w.Deadline) {
			return "wall-clock deadline passed", true
		}
	}
	return "", false
}
