// Package faultinject runs deterministic, seeded fault-injection campaigns
// against the architectural state of the CFD extension: it corrupts live
// BQ/VQ/TQ entries, mark state, the trip-count register, and save/restore
// memory images mid-run, then asserts that the runtime's detection
// machinery — typed faults, watchdogs, and golden-model differential
// checking — catches every injection.
//
// Each trial runs a victim program twice on the functional emulator. The
// first (golden) run records the retired-instruction stream, per-step queue
// occupancy counters, and the fate of every queue entry (consumed,
// bulk-discarded by Forward, or resident at halt). The trial then picks an
// injection point from the entries whose corruption is guaranteed to have
// an architectural consequence — e.g. a predicate flip is only injected
// into an entry a BranchBQ will consume, never one a ForwardBQ discards —
// and re-runs the program with the corruption applied at that step. The
// victim is checked four ways, in order:
//
//  1. typed fault: the corruption trips an ISA ordering rule (pop on
//     empty, overflow-bit misuse) or a malformed restore image;
//  2. watchdog: the corruption stops forward progress (e.g. a huge trip
//     count) and the instruction-budget watchdog expires;
//  3. lockstep divergence: the retired stream deviates from the golden
//     run — PC, opcode, branch outcome, effective address, or retired
//     result value (the DIVA-style checker the differential verifier
//     models);
//  4. end-state divergence: final registers, PC, TCR, or queue contents
//     differ from the golden run.
//
// A trial caught by none of these is reported as missed; the campaign's
// contract (enforced in CI) is zero missed injections.
package faultinject

import (
	"fmt"
	"math/rand"
)

// Site names one class of injected corruption.
type Site string

// Injection sites.
const (
	SiteBQPred     Site = "bq-pred"     // flip a live BQ predicate
	SiteBQMark     Site = "bq-mark"     // clear the BQ mark before its Forward
	SiteVQValue    Site = "vq-value"    // flip one bit of a live VQ value
	SiteTQCount    Site = "tq-count"    // flip one trip-count bit of a live TQ entry
	SiteTQOverflow Site = "tq-overflow" // flip a live TQ entry's overflow bit
	SiteTCR        Site = "tcr"         // flip one bit of the trip-count register
	SiteImgBQ      Site = "img-bq"      // flip a live bit of a saved BQ memory image
	SiteImgVQ      Site = "img-vq"      // flip a live bit of a saved VQ memory image
	SiteImgTQ      Site = "img-tq"      // flip a live bit of a saved TQ memory image
)

// AllSites lists every implemented site in campaign round-robin order.
var AllSites = []Site{
	SiteBQPred, SiteBQMark, SiteVQValue, SiteTQCount,
	SiteTQOverflow, SiteTCR, SiteImgBQ, SiteImgVQ, SiteImgTQ,
}

// Report schema identification (the campaign's own document family,
// distinct from the cfd-results schema).
const (
	ReportSchema  = "cfd-faultinject"
	ReportVersion = 1
)

// Outcome classifies one trial.
const (
	OutcomeDetected = "detected"
	OutcomeMissed   = "missed"
	OutcomeSkipped  = "skipped" // no eligible injection point for this draw
)

// Detectors (how a detected trial was caught).
const (
	DetectFault    = "fault"
	DetectWatchdog = "watchdog"
	DetectLockstep = "lockstep-divergence"
	DetectEndState = "end-state-divergence"
)

// Config parameterizes a campaign.
type Config struct {
	// Seed drives every random choice; identical seeds reproduce the
	// campaign trial for trial.
	Seed int64
	// Injections is the number of applied corruptions to accumulate
	// (skipped draws do not count). Defaults to 200.
	Injections int
	// Sites restricts the campaign; empty means AllSites.
	Sites []Site
}

// Trial records one injection attempt.
type Trial struct {
	Site     Site   `json:"site"`
	Victim   string `json:"victim"` // workload/variant or the ctx program
	Step     int    `json:"step"`   // retired-instruction index of the injection
	Detail   string `json:"detail"` // what was corrupted
	Outcome  string `json:"outcome"`
	Detector string `json:"detector,omitempty"` // set when detected
	Fault    string `json:"fault,omitempty"`    // fault kind for DetectFault/DetectWatchdog
}

// SiteStats aggregates one site's trials.
type SiteStats struct {
	Injected int `json:"injected"`
	Detected int `json:"detected"`
	Missed   int `json:"missed"`
}

// Report is the campaign summary, serialized as the cfd-faultinject JSON
// document. Everything in it is deterministic for a given Config.
type Report struct {
	Schema    string `json:"schema"`
	Version   int    `json:"version"`
	Seed      int64  `json:"seed"`
	Requested int    `json:"requested"`

	Injected int `json:"injected"`
	Detected int `json:"detected"`
	Missed   int `json:"missed"`
	Skipped  int `json:"skipped"`

	BySite map[Site]*SiteStats `json:"bySite"`
	Trials []Trial             `json:"trials"`
}

// Run executes a campaign and returns its report. Errors are
// infrastructure failures (a victim program failed to build or the golden
// run itself faulted); injection outcomes, including missed detections,
// are reported in the Report, not as errors.
func Run(cfg Config) (*Report, error) {
	n := cfg.Injections
	if n <= 0 {
		n = 200
	}
	sites := cfg.Sites
	if len(sites) == 0 {
		sites = AllSites
	}
	rep := &Report{
		Schema:    ReportSchema,
		Version:   ReportVersion,
		Seed:      cfg.Seed,
		Requested: n,
		BySite:    make(map[Site]*SiteStats),
	}
	goldens := make(map[string]*golden)
	// Skips are rare (a draw with no eligible entry); the attempt bound
	// only guards against a site that can never apply.
	maxAttempts := 4*n + 64
	for attempt := 0; rep.Injected < n && attempt < maxAttempts; attempt++ {
		site := sites[attempt%len(sites)]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*0x9E3779B9))
		tr, err := runTrial(site, rng, goldens)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s trial %d: %w", site, attempt, err)
		}
		rep.Trials = append(rep.Trials, tr)
		st := rep.BySite[site]
		if st == nil {
			st = &SiteStats{}
			rep.BySite[site] = st
		}
		switch tr.Outcome {
		case OutcomeSkipped:
			rep.Skipped++
		case OutcomeDetected:
			rep.Injected++
			rep.Detected++
			st.Injected++
			st.Detected++
		case OutcomeMissed:
			rep.Injected++
			rep.Missed++
			st.Injected++
			st.Missed++
		}
	}
	return rep, nil
}
