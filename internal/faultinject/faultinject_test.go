package faultinject

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCampaignDetectsAll runs the acceptance-criterion campaign: at least
// 200 applied corruptions across every site, all detected.
func TestCampaignDetectsAll(t *testing.T) {
	rep, err := Run(Config{Seed: 20120612, Injections: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected < 200 {
		t.Fatalf("injected %d corruptions, want >= 200 (skipped %d)", rep.Injected, rep.Skipped)
	}
	if rep.Missed != 0 {
		for _, tr := range rep.Trials {
			if tr.Outcome == OutcomeMissed {
				t.Errorf("missed: site %s victim %s step %d: %s", tr.Site, tr.Victim, tr.Step, tr.Detail)
			}
		}
		t.Fatalf("campaign missed %d of %d injections", rep.Missed, rep.Injected)
	}
	if rep.Detected != rep.Injected {
		t.Fatalf("detected %d != injected %d", rep.Detected, rep.Injected)
	}
	// Every site must actually have been exercised.
	for _, site := range AllSites {
		st := rep.BySite[site]
		if st == nil || st.Injected == 0 {
			t.Errorf("site %s: no applied injections", site)
		}
	}
	t.Logf("injected %d, detected %d, skipped %d", rep.Injected, rep.Detected, rep.Skipped)
	for _, site := range AllSites {
		if st := rep.BySite[site]; st != nil {
			t.Logf("  %-12s injected %3d detected %3d", site, st.Injected, st.Detected)
		}
	}
}

// TestCampaignDeterministic asserts the same seed reproduces the identical
// report, trial for trial.
func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 7, Injections: 27})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 7, Injections: 27})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Fatalf("same seed, different reports:\n%s\n%s", aj, bj)
	}
}

// TestCampaignSingleSite checks a restricted-site campaign stays inside
// the requested sites.
func TestCampaignSingleSite(t *testing.T) {
	rep, err := Run(Config{Seed: 3, Injections: 9, Sites: []Site{SiteImgTQ}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 9 || rep.Missed != 0 {
		t.Fatalf("injected %d missed %d, want 9/0", rep.Injected, rep.Missed)
	}
	for site := range rep.BySite {
		if site != SiteImgTQ {
			t.Errorf("unexpected site %s", site)
		}
	}
}
