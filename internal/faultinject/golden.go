package faultinject

import (
	"fmt"

	"cfd/internal/core"
	"cfd/internal/emu"
	"cfd/internal/fault"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// goldenBudget bounds the golden run; victim programs are known-good, so
// hitting it is an infrastructure failure, reported as an error.
const goldenBudget = 50_000_000

// stepRec is one retired instruction of the golden stream, with everything
// the lockstep checker compares and the cumulative queue pop counts needed
// to map an architectural entry index to its in-queue position at any step.
type stepRec struct {
	pc    uint64
	addr  uint64
	val   uint64 // retired result: Rd writeback, store data, pushed value, or TCR
	op    isa.Op
	taken bool

	bqPops, vqPops, tqPops uint32
}

// Entry fates.
const (
	fateResident  = uint8(iota) // still queued at halt
	fateConsumed                // popped by a consuming instruction
	fateDiscarded               // bulk-popped by ForwardBQ
)

// entryInfo is the life of one architectural queue entry in the golden run,
// indexed by its cumulative push number.
type entryInfo struct {
	pushStep int
	endStep  int // consume/discard step; -1 while resident
	fate     uint8
	consumer isa.Op
	val      uint64 // pushed value (BQ: raw source register, TQ: trip count)
}

// golden is one victim's reference run.
type golden struct {
	name string
	prog *prog.Program
	mem  *mem.Memory // initial memory; nil for programs that build their own

	steps                []stepRec
	bqEnt, vqEnt, tqEnt  []entryInfo
	saveStep             map[isa.Op]int // step index of each Save instruction
	endRegs              [isa.NumRegs]uint64
	endPC, endTCR        uint64
	endBQ                []bool
	endVQ                []uint64
	endTQ                []core.TQEntry
}

func cloneMem(m *mem.Memory) *mem.Memory {
	if m == nil {
		return nil
	}
	return m.Clone()
}

// stepVal extracts the retired result value the lockstep checker compares:
// the destination-register writeback, the store data, the pushed queue
// value, or the TCR for instructions that write it. Reading registers after
// the step is safe — stores and pushes do not modify their sources.
func stepVal(m *emu.Machine, in isa.Inst) uint64 {
	switch op := in.Op; {
	case op == isa.PopTQ || op == isa.PopTQOV || op == isa.BranchTCR:
		return m.TCR
	case op == isa.PushBQ || op == isa.PushVQ || op == isa.PushTQ:
		return m.Regs[in.Rs1]
	case op == isa.SD || op == isa.SW || op == isa.SH || op == isa.SB:
		return m.Regs[in.Rs2]
	case op.WritesRd():
		return m.Regs[in.Rd]
	}
	return 0
}

// runGolden executes the victim once, recording the retired stream, entry
// fates, and final architectural state.
func runGolden(name string, p *prog.Program, m *mem.Memory) (*golden, error) {
	g := &golden{name: name, prog: p, mem: m, saveStep: make(map[isa.Op]int)}
	var machine *emu.Machine

	var prevBQPush, prevBQPop, prevVQPush, prevVQPop, prevTQPush, prevTQPop uint64
	// A Restore resets the queue counters, invalidating the cumulative
	// entry indexing; fate tracking stops for that queue (the image sites,
	// the only users of restore programs, do not use fates).
	var bqReset, vqReset, tqReset bool

	fates := func(ents *[]entryInfo, reset *bool, pushes, pops, prevPushes, prevPops uint64,
		t int, op isa.Op, val uint64) {
		if *reset {
			return
		}
		if pushes < prevPushes || pops < prevPops ||
			op == isa.RestoreBQ || op == isa.RestoreVQ || op == isa.RestoreTQ {
			*reset = true
			return
		}
		for j := prevPushes; j < pushes; j++ {
			*ents = append(*ents, entryInfo{pushStep: t, endStep: -1, fate: fateResident, val: val})
		}
		for j := prevPops; j < pops; j++ {
			if int(j) >= len(*ents) {
				continue
			}
			e := &(*ents)[j]
			e.endStep = t
			e.consumer = op
			if op == isa.ForwardBQ {
				e.fate = fateDiscarded
			} else {
				e.fate = fateConsumed
			}
		}
	}

	machine = emu.New(p, cloneMem(m),
		emu.WithWatchdog(&fault.Watchdog{MaxCycles: goldenBudget}),
		emu.WithTracer(emu.TracerFunc(func(ev emu.Event) {
			t := len(g.steps)
			op := ev.Inst.Op
			bqPush, bqPop := machine.BQ.Counters()
			vqPush, vqPop := machine.VQ.Counters()
			tqPush, tqPop := machine.TQ.Counters()
			fates(&g.bqEnt, &bqReset, bqPush, bqPop, prevBQPush, prevBQPop, t, op, stepVal(machine, ev.Inst))
			fates(&g.vqEnt, &vqReset, vqPush, vqPop, prevVQPush, prevVQPop, t, op, stepVal(machine, ev.Inst))
			fates(&g.tqEnt, &tqReset, tqPush, tqPop, prevTQPush, prevTQPop, t, op, stepVal(machine, ev.Inst))
			prevBQPush, prevBQPop = bqPush, bqPop
			prevVQPush, prevVQPop = vqPush, vqPop
			prevTQPush, prevTQPop = tqPush, tqPop
			if op == isa.SaveBQ || op == isa.SaveVQ || op == isa.SaveTQ {
				g.saveStep[op] = t
			}
			g.steps = append(g.steps, stepRec{
				pc: ev.PC, addr: ev.Addr, val: stepVal(machine, ev.Inst),
				op: op, taken: ev.Taken,
				bqPops: uint32(bqPop), vqPops: uint32(vqPop), tqPops: uint32(tqPop),
			})
		})))
	if err := machine.Run(0); err != nil {
		return nil, fmt.Errorf("golden run of %s: %w", name, err)
	}
	g.endRegs = machine.Regs
	g.endPC = machine.PC
	g.endTCR = machine.TCR
	g.endBQ = machine.BQ.Contents()
	g.endVQ = machine.VQ.Contents()
	g.endTQ = machine.TQ.Contents()
	return g, nil
}

// lastStep returns the index of the final retired instruction.
func (g *golden) lastStep() int { return len(g.steps) - 1 }

// victimOutcome is the raw result of one corrupted re-run.
type victimOutcome struct {
	applied   bool  // the injector actually mutated state
	err       error // fault returned by the run, nil on clean halt
	divergeAt int   // first lockstep mismatch, -1 if none
	retired   int   // victim stream length
	endDiff   bool  // final architectural state differs from golden
}

// runVictim re-executes the golden program with inject applied right after
// retired-instruction injectStep, lockstep-comparing every retired
// instruction against the golden stream. The watchdog budget is twice the
// golden instruction count, so corruption-induced livelock is caught.
func runVictim(g *golden, injectStep int, inject func(m *emu.Machine) bool) victimOutcome {
	out := victimOutcome{divergeAt: -1}
	idx := 0
	var machine *emu.Machine
	machine = emu.New(g.prog, cloneMem(g.mem),
		emu.WithWatchdog(&fault.Watchdog{MaxCycles: 2*uint64(len(g.steps)) + 1024}),
		emu.WithTracer(emu.TracerFunc(func(ev emu.Event) {
			if idx < len(g.steps) {
				rec := g.steps[idx]
				if out.divergeAt < 0 &&
					(rec.pc != ev.PC || rec.op != ev.Inst.Op || rec.taken != ev.Taken ||
						rec.addr != ev.Addr || rec.val != stepVal(machine, ev.Inst)) {
					out.divergeAt = idx
				}
			} else if out.divergeAt < 0 {
				out.divergeAt = idx // ran past the golden stream
			}
			if idx == injectStep {
				out.applied = inject(machine)
			}
			idx++
		})))
	out.err = machine.Run(0)
	out.retired = idx
	if out.err == nil {
		out.endDiff = machine.Regs != g.endRegs ||
			machine.PC != g.endPC || machine.TCR != g.endTCR ||
			!boolsEqual(machine.BQ.Contents(), g.endBQ) ||
			!u64sEqual(machine.VQ.Contents(), g.endVQ) ||
			!tqEqual(machine.TQ.Contents(), g.endTQ)
	}
	return out
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func u64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func tqEqual(a, b []core.TQEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
