package faultinject

import (
	"fmt"
	"math/rand"

	"cfd/internal/core"
	"cfd/internal/emu"
	"cfd/internal/fault"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/workload"
)

// Victim programs. The live-state sites corrupt real workload variants
// (each chosen to exercise the targeted queue); the image sites use a
// dedicated context-switch program, since no workload context-switches.
var siteVictims = map[Site]string{
	SiteBQPred:     "soplexlike/cfd",
	SiteBQMark:     "astar1like/cfd",
	SiteVQValue:    "soplexlike/cfd+",
	SiteTQCount:    "astar2like/cfdtq",
	SiteTQOverflow: "astar2like/cfdtq",
	SiteTCR:        "astar2like/cfdtq",
	SiteImgBQ:      ctxVictimName,
	SiteImgVQ:      ctxVictimName,
	SiteImgTQ:      ctxVictimName,
}

const ctxVictimName = "ctxswitch"

// Context-switch victim layout: queue contents pushed before the save, and
// the image base addresses. The consumption phase pops everything back out
// (predicates steer an accumulator, VQ values are summed, trip counts drive
// BranchTCR loops), so every live image bit is architecturally meaningful.
const (
	imgBQAddr = 4096
	imgVQAddr = 8192
	imgTQAddr = 16384
)

var (
	ctxBQPreds   = []int64{1, 0, 1, 1, 0, 0, 1, 0, 1}
	ctxVQValues  = []int64{0x1234, 0xfffe, 77, 31415, 0x55aa, 9}
	ctxTQCounts  = []int64{3, 1, 5, 2}
)

func ctxProgram() (*prog.Program, error) {
	b := prog.NewBuilder()
	b.Li(1, imgBQAddr)
	b.Li(2, imgVQAddr)
	b.Li(3, imgTQAddr)
	for _, p := range ctxBQPreds {
		b.Li(6, p)
		b.PushBQ(6)
	}
	for _, v := range ctxVQValues {
		b.Li(6, v)
		b.PushVQ(6)
	}
	for _, c := range ctxTQCounts {
		b.Li(6, c)
		b.PushTQ(6)
	}
	b.SaveQueue(isa.SaveBQ, 1, 0)
	b.SaveQueue(isa.SaveVQ, 2, 0)
	b.SaveQueue(isa.SaveTQ, 3, 0)
	b.Nop() // the injection lands between a save and its restore
	b.SaveQueue(isa.RestoreBQ, 1, 0)
	b.SaveQueue(isa.RestoreVQ, 2, 0)
	b.SaveQueue(isa.RestoreTQ, 3, 0)
	for i := range ctxBQPreds {
		yes, done := fmt.Sprintf("yes%d", i), fmt.Sprintf("bq%d", i)
		b.BranchBQ(yes)
		b.Jump(done)
		b.Label(yes)
		b.I(isa.ADDI, 10, 10, int64(1)<<i)
		b.Label(done)
	}
	for range ctxVQValues {
		b.PopVQ(7)
		b.R(isa.ADD, 11, 11, 7)
	}
	for i := range ctxTQCounts {
		lbl := fmt.Sprintf("tq%d", i)
		b.PopTQ()
		b.Label(lbl)
		b.I(isa.ADDI, 12, 12, 1)
		b.BranchTCR(lbl)
	}
	b.Halt()
	return b.Build()
}

// goldenFor builds (or recalls) the golden run for a site's victim.
func goldenFor(site Site, goldens map[string]*golden) (*golden, error) {
	name := siteVictims[site]
	if g, ok := goldens[name]; ok {
		return g, nil
	}
	var (
		p   *prog.Program
		m   *mem.Memory
		err error
	)
	if name == ctxVictimName {
		p, err = ctxProgram()
	} else {
		wl, v := splitVictim(name)
		s, ok := workload.ByName(wl)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", wl)
		}
		p, m, err = s.Build(v, s.TestN)
	}
	if err != nil {
		return nil, err
	}
	g, err := runGolden(name, p, m)
	if err != nil {
		return nil, err
	}
	goldens[name] = g
	return g, nil
}

func splitVictim(name string) (string, workload.Variant) {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i], workload.Variant(name[i+1:])
		}
	}
	return name, workload.Base
}

// pickEntry chooses an eligible entry uniformly and an injection step
// uniformly inside its live window [pushStep, end). end is the entry's
// consume step, or one past the final step for resident entries.
func pickEntry(rng *rand.Rand, ents []entryInfo, last int, eligible func(entryInfo) bool) (j, t int, ok bool) {
	var cands []int
	for i, e := range ents {
		end := e.endStep
		if e.fate == fateResident {
			end = last + 1
		}
		if end > e.pushStep && eligible(e) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return 0, 0, false
	}
	j = cands[rng.Intn(len(cands))]
	e := ents[j]
	end := e.endStep
	if e.fate == fateResident {
		end = last + 1
	}
	t = e.pushStep + rng.Intn(end-e.pushStep)
	return j, t, true
}

// runTrial executes one injection attempt for site.
func runTrial(site Site, rng *rand.Rand, goldens map[string]*golden) (Trial, error) {
	g, err := goldenFor(site, goldens)
	if err != nil {
		return Trial{}, err
	}
	tr := Trial{Site: site, Victim: g.name}
	step, detail, inject, ok := planInjection(site, rng, g)
	if !ok {
		tr.Outcome = OutcomeSkipped
		return tr, nil
	}
	tr.Step, tr.Detail = step, detail
	out := runVictim(g, step, inject)
	if !out.applied {
		tr.Outcome = OutcomeSkipped
		return tr, nil
	}
	switch {
	case out.err != nil:
		tr.Outcome = OutcomeDetected
		if f, isFault := fault.As(out.err); isFault {
			tr.Fault = f.Kind.String()
			if f.Kind == fault.WatchdogExpiry {
				tr.Detector = DetectWatchdog
			} else {
				tr.Detector = DetectFault
			}
		} else {
			tr.Detector = DetectFault
		}
	case out.divergeAt >= 0 || out.retired != len(g.steps):
		tr.Outcome = OutcomeDetected
		tr.Detector = DetectLockstep
	case out.endDiff:
		tr.Outcome = OutcomeDetected
		tr.Detector = DetectEndState
	default:
		tr.Outcome = OutcomeMissed
	}
	return tr, nil
}

// planInjection picks the injection step and builds the injector for one
// trial. ok is false when this draw found no eligible injection point.
func planInjection(site Site, rng *rand.Rand, g *golden) (step int, detail string, inject func(*emu.Machine) bool, ok bool) {
	last := g.lastStep()
	switch site {
	case SiteBQPred:
		j, t, found := pickEntry(rng, g.bqEnt, last, func(e entryInfo) bool {
			return e.fate != fateDiscarded
		})
		if !found {
			return 0, "", nil, false
		}
		pos := j - int(g.steps[t].bqPops)
		return t, fmt.Sprintf("flip BQ predicate, entry %d (position %d)", j, pos),
			func(m *emu.Machine) bool { return m.BQ.InjectFlipPred(pos) }, true

	case SiteVQValue:
		j, t, found := pickEntry(rng, g.vqEnt, last, func(e entryInfo) bool {
			return e.fate != fateDiscarded
		})
		if !found {
			return 0, "", nil, false
		}
		pos := j - int(g.steps[t].vqPops)
		bit := uint(rng.Intn(64))
		return t, fmt.Sprintf("flip VQ value bit %d, entry %d (position %d)", bit, j, pos),
			func(m *emu.Machine) bool { return m.VQ.InjectFlipBit(pos, bit) }, true

	case SiteTQCount:
		j, t, found := pickEntry(rng, g.tqEnt, last, func(e entryInfo) bool {
			return e.fate != fateDiscarded && e.val <= core.MaxTripCount
		})
		if !found {
			return 0, "", nil, false
		}
		pos := j - int(g.steps[t].tqPops)
		bit := uint(rng.Intn(core.TQWidth))
		return t, fmt.Sprintf("flip TQ count bit %d, entry %d (position %d)", bit, j, pos),
			func(m *emu.Machine) bool { return m.TQ.InjectFlipCountBit(pos, bit) }, true

	case SiteTQOverflow:
		// Setting the overflow bit on a zero-count entry consumed by
		// PopTQOV is architecturally invisible (both paths leave TCR 0
		// and take the overflow arm only in one of them — but with no
		// iterations either way a masked outcome is possible), so such
		// entries are excluded.
		j, t, found := pickEntry(rng, g.tqEnt, last, func(e entryInfo) bool {
			if e.fate == fateDiscarded {
				return false
			}
			overflowed := e.val > core.MaxTripCount
			return overflowed || e.fate == fateResident ||
				e.consumer == isa.PopTQ || e.val&core.MaxTripCount != 0
		})
		if !found {
			return 0, "", nil, false
		}
		pos := j - int(g.steps[t].tqPops)
		return t, fmt.Sprintf("flip TQ overflow bit, entry %d (position %d)", j, pos),
			func(m *emu.Machine) bool { return m.TQ.InjectFlipOverflow(pos) }, true

	case SiteBQMark:
		t, found := pickMarkStep(rng, g)
		if !found {
			return 0, "", nil, false
		}
		return t, "clear BQ mark state",
			func(m *emu.Machine) bool { return m.BQ.InjectClearMark() }, true

	case SiteTCR:
		t, found := pickTCRStep(rng, g)
		if !found {
			return 0, "", nil, false
		}
		bit := uint(rng.Intn(core.TQWidth))
		return t, fmt.Sprintf("flip TCR bit %d", bit),
			func(m *emu.Machine) bool { m.TCR ^= 1 << bit; return true }, true

	case SiteImgBQ, SiteImgVQ, SiteImgTQ:
		return planImageInjection(site, rng, g)
	}
	return 0, "", nil, false
}

// pickMarkStep chooses a step where the mark is set and the next ForwardBQ
// comes before the next MarkBQ — so clearing the mark guarantees the
// victim's Forward faults instead of being silently re-armed.
func pickMarkStep(rng *rand.Rand, g *golden) (int, bool) {
	firstMark := -1
	var cands []int
	nextFwd, nextMark := len(g.steps), len(g.steps)
	// Backward scan; a candidate step t needs mark-set-by-t (forward
	// condition checked against the suffix).
	eligible := make([]bool, len(g.steps))
	for t := len(g.steps) - 1; t >= 0; t-- {
		eligible[t] = nextFwd < nextMark
		switch g.steps[t].op {
		case isa.ForwardBQ:
			nextFwd = t
		case isa.MarkBQ:
			nextMark = t
		}
	}
	for t, rec := range g.steps {
		if rec.op == isa.MarkBQ && firstMark < 0 {
			firstMark = t
		}
		if firstMark >= 0 && t >= firstMark && eligible[t] {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[rng.Intn(len(cands))], true
}

// pickTCRStep chooses a step after which the next TCR-touching instruction
// is a BranchTCR (which consumes the corrupted value) or nothing at all
// (the final-state TCR comparison catches it). Steps whose corruption the
// next PopTQ/PopTQOV would silently overwrite are excluded.
func pickTCRStep(rng *rand.Rand, g *golden) (int, bool) {
	var cands []int
	next := isa.NOP // TCR-touching op following step t; NOP = none
	okAfter := make([]bool, len(g.steps))
	for t := len(g.steps) - 1; t >= 0; t-- {
		okAfter[t] = next == isa.NOP || next == isa.BranchTCR
		switch g.steps[t].op {
		case isa.PopTQ, isa.PopTQOV, isa.BranchTCR:
			next = g.steps[t].op
		}
	}
	for t := range g.steps {
		if okAfter[t] {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[rng.Intn(len(cands))], true
}

// planImageInjection flips one live bit of a saved queue image in memory,
// right after the corresponding Save executes and before its Restore.
// "Live" bits are the length field and the payload bits covering the saved
// entries; bits beyond the saved length are architecturally dead.
func planImageInjection(site Site, rng *rand.Rand, g *golden) (int, string, func(*emu.Machine) bool, bool) {
	type bitRef struct {
		byteOff int
		bit     uint
	}
	var (
		saveOp isa.Op
		base   uint64
		bits   []bitRef
	)
	switch site {
	case SiteImgBQ:
		saveOp, base = isa.SaveBQ, imgBQAddr
		for b := uint(0); b < 8; b++ {
			bits = append(bits, bitRef{0, b}) // length byte
		}
		for i := range ctxBQPreds {
			bits = append(bits, bitRef{1 + i/8, uint(i % 8)})
		}
	case SiteImgVQ:
		saveOp, base = isa.SaveVQ, imgVQAddr
		for b := uint(0); b < 8; b++ {
			bits = append(bits, bitRef{0, b})
		}
		for i := range ctxVQValues {
			for b := uint(0); b < 64; b++ {
				bits = append(bits, bitRef{1 + 8*i + int(b/8), b % 8})
			}
		}
	case SiteImgTQ:
		saveOp, base = isa.SaveTQ, imgTQAddr
		for b := uint(0); b < 16; b++ {
			bits = append(bits, bitRef{int(b / 8), b % 8}) // 2-byte length
		}
		for i := range ctxTQCounts {
			for b := uint(0); b < 32; b++ {
				bits = append(bits, bitRef{2 + 4*i + int(b/8), b % 8})
			}
		}
	default:
		return 0, "", nil, false
	}
	t, haveSave := g.saveStep[saveOp]
	if !haveSave {
		return 0, "", nil, false
	}
	ref := bits[rng.Intn(len(bits))]
	addr := base + uint64(ref.byteOff)
	detail := fmt.Sprintf("flip %s image bit %d of byte +%d", saveOp, ref.bit, ref.byteOff)
	return t, detail, func(m *emu.Machine) bool {
		v := m.Mem.Read(addr, 1)
		m.Mem.Write(addr, 1, v^(1<<ref.bit))
		return true
	}, true
}
