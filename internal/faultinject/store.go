package faultinject

// This file is the store-corruption campaign: the persistent result
// store's analog of the architectural campaign. Instead of corrupting live
// queue state, each trial corrupts one on-disk store entry — the way real
// storage fails: torn writes, bit rot, truncation, stale schemas, stripped
// checksums — then replays a full sweep over the damaged store and asserts
// the store's integrity machinery catches it: the entry is quarantined
// (never served), the cell transparently re-simulates, and every result
// matches the golden sweep byte for byte. A trial where corrupt data is
// served, or where the converged results drift, is reported as missed; the
// campaign contract, like the architectural one, is zero misses.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"cfd/internal/config"
	"cfd/internal/harness"
	"cfd/internal/workload"
)

// Store-corruption injection sites.
const (
	SiteStoreTorn       Site = "store-torn"           // keep only a prefix of the entry (interrupted write)
	SiteStoreTruncate   Site = "store-truncate"       // truncate the entry to zero bytes
	SiteStoreBitFlip    Site = "store-bitflip"        // flip one random bit anywhere in the entry
	SiteStoreStaleEnv   Site = "store-stale-envelope" // rewrite the envelope schema version
	SiteStoreStalePay   Site = "store-stale-payload"  // rewrite the payload schema version
	SiteStoreNoChecksum Site = "store-checksum-strip" // delete the sha256 field entirely
)

// AllStoreSites lists every store site in campaign round-robin order.
var AllStoreSites = []Site{
	SiteStoreTorn, SiteStoreTruncate, SiteStoreBitFlip,
	SiteStoreStaleEnv, SiteStoreStalePay, SiteStoreNoChecksum,
}

// DetectQuarantine is the store campaign's detector: the corrupt entry was
// quarantined, the cell re-simulated, and the sweep converged to the golden
// results.
const DetectQuarantine = "store-quarantine"

// StoreConfig parameterizes a store-corruption campaign.
type StoreConfig struct {
	// Seed drives every random choice; identical seeds reproduce the
	// campaign trial for trial.
	Seed int64
	// Injections is the number of corruptions to apply. Defaults to 30.
	Injections int
	// Dir is the campaign's working directory ("" = a private temp dir,
	// removed afterwards). The store lives in Dir/store.
	Dir string
	// Scale is the victim Runner's workload scale (0 = 0.02, tiny).
	Scale float64
}

// storeVictimSpecs is the sweep the campaign protects: a small matrix
// covering every result shape the store round-trips (plain counters,
// per-branch maps, the MSHR histogram, sampled telemetry sections).
func storeVictimSpecs() []harness.RunSpec {
	cfg := config.SandyBridge()
	return []harness.RunSpec{
		{Workload: "soplexlike", Variant: workload.Base, Config: cfg},
		{Workload: "soplexlike", Variant: "cfd", Config: cfg},
		{Workload: "astar1like", Variant: "cfd", Config: cfg, SampleMSHR: true},
		{Workload: "mcflike", Variant: "cfd", Config: cfg, SampleEvery: 500},
	}
}

func openStoreRunner(storeDir string, scale float64) (*harness.Runner, error) {
	st, err := harness.OpenStore(storeDir)
	if err != nil {
		return nil, err
	}
	r := harness.NewRunner(scale)
	r.Jobs = 1
	r.Store = st
	return r, nil
}

// RunStore executes a store-corruption campaign and returns its report
// (same document family as the architectural campaign). Errors are
// infrastructure failures — the golden sweep itself failing, or the
// campaign directory being unusable; detection outcomes, including misses,
// are reported in the Report.
func RunStore(cfg StoreConfig) (*Report, error) {
	n := cfg.Injections
	if n <= 0 {
		n = 30
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 0.02
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cfd-store-inject-*")
		if err != nil {
			return nil, fmt.Errorf("faultinject: store campaign dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	storeDir := filepath.Join(dir, "store")

	// Golden population: one clean sweep fills the store and fixes the
	// expected results every trial must converge back to.
	specs := storeVictimSpecs()
	pop, err := openStoreRunner(storeDir, scale)
	if err != nil {
		return nil, err
	}
	golden, err := pop.Sweep(context.Background(), specs)
	if err != nil {
		return nil, fmt.Errorf("faultinject: golden store sweep: %w", err)
	}
	entries, err := filepath.Glob(filepath.Join(storeDir, "entries", "*.json"))
	if err != nil || len(entries) != len(specs) {
		return nil, fmt.Errorf("faultinject: store has %d entries for %d specs (%v)", len(entries), len(specs), err)
	}
	sort.Strings(entries)

	rep := &Report{
		Schema:    ReportSchema,
		Version:   ReportVersion,
		Seed:      cfg.Seed,
		Requested: n,
		BySite:    make(map[Site]*SiteStats),
	}
	for attempt := 0; rep.Injected < n; attempt++ {
		site := AllStoreSites[attempt%len(AllStoreSites)]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*0x9E3779B9))
		tr, err := runStoreTrial(site, rng, storeDir, entries, specs, golden, scale)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s trial %d: %w", site, attempt, err)
		}
		rep.Trials = append(rep.Trials, tr)
		st := rep.BySite[site]
		if st == nil {
			st = &SiteStats{}
			rep.BySite[site] = st
		}
		rep.Injected++
		st.Injected++
		if tr.Outcome == OutcomeDetected {
			rep.Detected++
			st.Detected++
		} else {
			rep.Missed++
			st.Missed++
		}
	}
	return rep, nil
}

// runStoreTrial corrupts one entry, replays the full sweep over the
// damaged store with a fresh Runner (cold memo cache, new store handle —
// the resumed-process model), and classifies the outcome. The sweep heals
// the store (the quarantined cell re-persists on re-simulation), and the
// trial restores the entry bytes besides, so trials are independent.
func runStoreTrial(site Site, rng *rand.Rand, storeDir string, entries []string,
	specs []harness.RunSpec, golden []*harness.Result, scale float64) (Trial, error) {
	entry := entries[rng.Intn(len(entries))]
	orig, err := os.ReadFile(entry)
	if err != nil {
		return Trial{}, err
	}
	corrupted, detail, offset, err := corruptStoreEntry(site, orig, rng)
	if err != nil {
		return Trial{}, err
	}
	if err := os.WriteFile(entry, corrupted, 0o644); err != nil {
		return Trial{}, err
	}
	defer os.WriteFile(entry, orig, 0o644)

	r, err := openStoreRunner(storeDir, scale)
	if err != nil {
		return Trial{}, err
	}
	res, err := r.Sweep(context.Background(), specs)
	if err != nil {
		// The sweep must never fail because of store damage — that would
		// be an availability loss, a miss of its own kind.
		return Trial{Site: site, Victim: filepath.Base(entry), Step: offset,
			Detail:  fmt.Sprintf("%s; sweep failed: %v", detail, err),
			Outcome: OutcomeMissed}, nil
	}
	converged := len(res) == len(golden)
	for i := range golden {
		if !converged || !reflect.DeepEqual(res[i], golden[i]) {
			converged = false
			break
		}
	}
	m := r.Store.Metrics()
	tr := Trial{Site: site, Victim: filepath.Base(entry), Step: offset, Detail: detail}
	switch {
	case m.Quarantines >= 1 && converged:
		tr.Outcome = OutcomeDetected
		tr.Detector = DetectQuarantine
	case !converged:
		tr.Outcome = OutcomeMissed
		tr.Detail += " (results diverged from golden)"
	default:
		tr.Outcome = OutcomeMissed
		tr.Detail += " (corrupt entry served without quarantine)"
	}
	return tr, nil
}

// corruptStoreEntry applies one site's damage to an entry's bytes and
// returns the corrupted bytes, a human-readable description, and the byte
// offset of the corruption (0 when the damage is structural).
func corruptStoreEntry(site Site, orig []byte, rng *rand.Rand) (data []byte, detail string, offset int, err error) {
	switch site {
	case SiteStoreTorn:
		cut := 1 + rng.Intn(len(orig)-1)
		return orig[:cut], fmt.Sprintf("torn write: first %d of %d bytes", cut, len(orig)), cut, nil
	case SiteStoreTruncate:
		return nil, "truncated to zero bytes", 0, nil
	case SiteStoreBitFlip:
		i, bit := rng.Intn(len(orig)), rng.Intn(8)
		data = append([]byte(nil), orig...)
		data[i] ^= 1 << bit
		return data, fmt.Sprintf("flipped bit %d of byte %d", bit, i), i, nil
	case SiteStoreStaleEnv, SiteStoreStalePay, SiteStoreNoChecksum:
		// Structural damage keeps the JSON well-formed: decode the
		// envelope, rewrite one field, re-encode.
		var env map[string]json.RawMessage
		if err := json.Unmarshal(orig, &env); err != nil {
			return nil, "", 0, fmt.Errorf("entry is not JSON: %w", err)
		}
		switch site {
		case SiteStoreStaleEnv:
			env["version"] = json.RawMessage("99")
			detail = "envelope schema version rewritten to 99"
		case SiteStoreStalePay:
			env["payloadVersion"] = json.RawMessage("0")
			detail = "payload schema version rewritten to 0"
		case SiteStoreNoChecksum:
			delete(env, "sha256")
			detail = "sha256 checksum field stripped"
		}
		data, err = json.Marshal(env)
		if err != nil {
			return nil, "", 0, err
		}
		return data, detail, 0, nil
	}
	return nil, "", 0, fmt.Errorf("unknown store site %q", site)
}
