package faultinject

import "testing"

// TestStoreCampaignDetectsEverything pins the store campaign contract:
// every class of on-disk corruption — torn writes, truncation, bit flips,
// stale envelope/payload schemas, stripped checksums — is detected by
// quarantine, and every damaged sweep converges back to the golden
// results. Two round-robin passes cover each site twice.
func TestStoreCampaignDetectsEverything(t *testing.T) {
	rep, err := RunStore(StoreConfig{Seed: 1, Injections: 2 * len(AllStoreSites), Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("RunStore: %v", err)
	}
	if rep.Injected != 2*len(AllStoreSites) {
		t.Fatalf("injected %d, want %d", rep.Injected, 2*len(AllStoreSites))
	}
	if rep.Missed != 0 {
		for _, tr := range rep.Trials {
			if tr.Outcome == OutcomeMissed {
				t.Errorf("missed: %s %s: %s", tr.Site, tr.Victim, tr.Detail)
			}
		}
		t.Fatalf("%d of %d corruptions went undetected", rep.Missed, rep.Injected)
	}
	for _, site := range AllStoreSites {
		st := rep.BySite[site]
		if st == nil || st.Injected == 0 {
			t.Errorf("site %s never injected", site)
		}
	}
	for _, tr := range rep.Trials {
		if tr.Outcome == OutcomeDetected && tr.Detector != DetectQuarantine {
			t.Errorf("%s detected by %q, want %q", tr.Site, tr.Detector, DetectQuarantine)
		}
	}
}

// TestStoreCampaignDeterministic: identical seeds reproduce the campaign
// trial for trial — the same entries picked, the same damage applied, the
// same outcomes — which is what makes CI failures replayable locally.
func TestStoreCampaignDeterministic(t *testing.T) {
	runOnce := func() *Report {
		rep, err := RunStore(StoreConfig{Seed: 7, Injections: len(AllStoreSites), Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("RunStore: %v", err)
		}
		return rep
	}
	a, b := runOnce(), runOnce()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Errorf("trial %d differs:\n a: %+v\n b: %+v", i, a.Trials[i], b.Trials[i])
		}
	}
}
