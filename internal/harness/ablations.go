package harness

import (
	"fmt"
	"io"

	"cfd/internal/config"
	"cfd/internal/manifest"
	"cfd/internal/stats"
	"cfd/internal/workload"
)

// hmean returns the harmonic mean (the paper's IPC aggregation in §VI).
func hmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// ablationSet is the workload set used for the baseline-selection studies.
var ablationSet = []string{"soplexlike", "mcflike", "bzip2like", "astar1like", "tifflike"}

// ckptSweepConfigs enumerates the checkpoint-count sweep configurations.
func ckptSweepConfigs() []config.Core {
	var out []config.Core
	for _, n := range []int{0, 1, 2, 4, 8, 16, 32} {
		cfg := config.SandyBridge()
		cfg.NumCheckpoints = n
		cfg.Name = fmt.Sprintf("ckpt-%d", n)
		out = append(out, cfg)
	}
	return out
}

// ckptPolicies enumerates the recovery-policy study configurations.
func ckptPolicies() []struct {
	name string
	cfg  config.Core
} {
	var out []struct {
		name string
		cfg  config.Core
	}
	for _, pol := range []struct {
		name      string
		ooo, conf bool
	}{
		{"OoO reclaim + confidence-guided (paper's best)", true, true},
		{"OoO reclaim, every branch", true, false},
		{"in-order reclaim + confidence-guided", false, true},
		{"in-order reclaim, every branch", false, false},
	} {
		cfg := config.SandyBridge()
		cfg.CkptOoOReclaim = pol.ooo
		cfg.CkptConfGuided = pol.conf
		cfg.Name = "policy-" + pol.name
		out = append(out, struct {
			name string
			cfg  config.Core
		}{pol.name, cfg})
	}
	return out
}

// predCfg derives the predictor-study configuration for one kind.
func predCfg(k config.PredictorKind) config.Core {
	cfg := config.SandyBridge()
	cfg.Predictor = k
	cfg.Name = "pred-" + k.String()
	return cfg
}

// ablationConfigs flattens the checkpoint sweep and policy study into one
// manifest config list.
func ablationConfigs() []config.Core {
	out := ckptSweepConfigs()
	for _, pol := range ckptPolicies() {
		out = append(out, pol.cfg)
	}
	return out
}

func init() {
	registerExp(&Experiment{
		ID:    "ablation-ckpt",
		Title: "§VI baseline selection: checkpoint count and recovery policy",
		Manifest: expManifest("ablation-ckpt", manifest.Sweep{
			Workloads: byNames(ablationSet...),
			Variants:  variants("base"),
			Configs:   mutationsFor(ablationConfigs()...),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Checkpoint count sweep (OoO reclaim, confidence-guided): harmonic-mean baseline IPC",
				"checkpoints", "hmean IPC")
			for _, cfg := range ckptSweepConfigs() {
				var ipcs []float64
				for _, name := range ablationSet {
					res, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: cfg})
					if err != nil {
						return err
					}
					ipcs = append(ipcs, res.Stats.IPC())
				}
				t.Addf(cfg.NumCheckpoints, hmean(ipcs))
			}
			fmt.Fprintln(w, t)

			t2 := stats.NewTable("Recovery policy at 8 checkpoints: harmonic-mean baseline IPC",
				"policy", "hmean IPC")
			for _, pol := range ckptPolicies() {
				var ipcs []float64
				for _, name := range ablationSet {
					res, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: pol.cfg})
					if err != nil {
						return err
					}
					ipcs = append(ipcs, res.Stats.IPC())
				}
				t2.Addf(pol.name, hmean(ipcs))
			}
			fmt.Fprintln(w, t2)
			_, err := fmt.Fprintln(w, "expected shape: IPC levels off by 8 checkpoints; the aggressive policy wins (§VI)")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "ablation-pred",
		Title: "§VI baseline selection: branch predictor class",
		Manifest: expManifest("ablation-pred", manifest.Sweep{
			Workloads: byNames(ablationSet...),
			Variants:  variants("base"),
			Configs: mutationsFor(
				predCfg(config.PredBimodal),
				predCfg(config.PredGshare),
				predCfg(config.PredISLTAGE)),
		}),
		Run: func(r *Runner, w io.Writer) error {
			kinds := []config.PredictorKind{config.PredBimodal, config.PredGshare, config.PredISLTAGE}
			t := stats.NewTable("Baseline MPKI and IPC per predictor",
				"workload", "bimodal MPKI", "gshare MPKI", "isl-tage MPKI", "isl-tage IPC")
			for _, name := range ablationSet {
				row := []string{name}
				var lastIPC float64
				for _, k := range kinds {
					res, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: predCfg(k)})
					if err != nil {
						return err
					}
					row = append(row, fmt.Sprintf("%.2f", res.Stats.MPKI()))
					lastIPC = res.Stats.IPC()
				}
				row = append(row, fmt.Sprintf("%.3f", lastIPC))
				t.Add(row...)
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: ISL-TAGE <= gshare <= bimodal MPKI; the remaining MPKI is what CFD removes")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "ablation-xform",
		Title: "Compiler-pass analog: automatic vs manual CFD (paper §III-B)",
		Run:   runXformAblation,
	})
}
