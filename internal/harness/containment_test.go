package harness

import (
	"context"
	"errors"
	"testing"

	"cfd/internal/config"
	"cfd/internal/fault"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/workload"
)

// registerCorruptWorkloads installs two transient deliberately broken
// workloads: one whose builder panics outright, and one whose program
// commits a BQ ordering violation mid-run. Cleanup deregisters both.
func registerCorruptWorkloads(t *testing.T) (crash, violator string) {
	t.Helper()
	crash, violator = "crashlike-test", "violatorlike-test"
	if err := workload.Register(&workload.Spec{
		Name:     crash,
		Variants: []workload.Variant{workload.Base},
		DefaultN: 1024, TestN: 256,
		Build: func(v workload.Variant, n int64) (*prog.Program, *mem.Memory, error) {
			panic("deliberately corrupt builder")
		},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workload.Deregister(crash) })
	if err := workload.Register(&workload.Spec{
		Name:     violator,
		Variants: []workload.Variant{workload.Base},
		DefaultN: 1024, TestN: 256,
		Build: func(v workload.Variant, n int64) (*prog.Program, *mem.Memory, error) {
			// Pops a predicate that was never pushed: a queue-violation
			// fault once the branch_bq retires.
			p := prog.NewBuilder().
				Nop().
				BranchBQ("out").Label("out").Halt().MustBuild()
			return p, mem.New(), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { workload.Deregister(violator) })
	return crash, violator
}

// TestSweepContainment is the acceptance scenario: a sweep over the full
// workload x variant matrix with deliberately corrupted workloads mixed in
// completes every healthy run, reports each failure as a structured typed
// fault, and never dies on the in-simulation panic.
func TestSweepContainment(t *testing.T) {
	crash, violator := registerCorruptWorkloads(t)

	cfg := config.SandyBridge()
	var specs []RunSpec
	corrupt := map[int]bool{}
	for _, s := range workload.All() {
		for _, v := range s.Variants {
			if s.Name == crash || s.Name == violator {
				corrupt[len(specs)] = true
			}
			specs = append(specs, RunSpec{Workload: s.Name, Variant: v, Config: cfg})
		}
	}
	if len(corrupt) != 2 {
		t.Fatalf("expected 2 corrupt specs in the matrix, got %d", len(corrupt))
	}

	r := NewRunner(0.02)
	r.Jobs = 4
	r.KeepGoing = true
	out, err := r.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("keep-going sweep failed outright: %v", err)
	}
	if len(out) != len(specs) {
		t.Fatalf("sweep returned %d results for %d specs", len(out), len(specs))
	}
	for i, res := range out {
		if corrupt[i] && res != nil {
			t.Errorf("corrupt spec %s/%s produced a result", specs[i].Workload, specs[i].Variant)
		}
		if !corrupt[i] && res == nil {
			t.Errorf("healthy spec %s/%s lost its result to containment", specs[i].Workload, specs[i].Variant)
		}
	}

	fails := r.Failures()
	if len(fails) != 2 {
		t.Fatalf("Failures() returned %d entries, want 2: %v", len(fails), fails)
	}
	kinds := map[string]fault.Kind{}
	for _, fl := range fails {
		f, ok := fault.As(fl.Err)
		if !ok {
			t.Fatalf("failure %v is not a typed fault", fl.Err)
		}
		kinds[fl.Spec.Workload] = f.Kind
	}
	if kinds[crash] != fault.RuntimePanic {
		t.Errorf("builder panic recorded as %v, want runtime-panic", kinds[crash])
	}
	if kinds[violator] != fault.QueueViolation {
		t.Errorf("BQ violation recorded as %v, want queue-violation", kinds[violator])
	}
}

// TestRunWatchdogFault: the Runner's MaxCycles budget converts a
// too-long simulation into a typed watchdog fault rather than a hang.
func TestRunWatchdogFault(t *testing.T) {
	r := NewRunner(0.02)
	r.MaxCycles = 500
	_, err := r.Run(RunSpec{Workload: "soplexlike", Variant: workload.Base, Config: config.SandyBridge()})
	f, ok := fault.As(err)
	if !ok || f.Kind != fault.WatchdogExpiry {
		t.Fatalf("err = %v, want watchdog-expiry fault", err)
	}
}

// TestSweepKeepGoingCallerCancel: caller cancellation still aborts a
// keep-going sweep — keep-going tolerates failing specs, not a dead caller.
func TestSweepKeepGoingCallerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(0.02)
	r.KeepGoing = true
	specs := []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
	}
	if _, err := r.Sweep(ctx, specs); !errors.Is(err, context.Canceled) {
		t.Fatalf("keep-going sweep under canceled ctx = %v, want context.Canceled", err)
	}
}
