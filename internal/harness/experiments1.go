package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"cfd/internal/classify"
	"cfd/internal/config"
	"cfd/internal/manifest"
	"cfd/internal/prog"
	"cfd/internal/stats"
	"cfd/internal/workload"
)

// withVariant lists the workloads implementing v.
func withVariant(v workload.Variant) []*workload.Spec {
	var out []*workload.Spec
	for _, s := range workload.All() {
		if s.HasVariant(v) {
			out = append(out, s)
		}
	}
	return out
}

func gmean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

var levelLabels = []string{"NoData", "L1", "L2", "L3", "MEM"}

func levelShares(byLevel [5]uint64) [5]float64 {
	var total uint64
	for _, v := range byLevel {
		total += v
	}
	var out [5]float64
	if total == 0 {
		return out
	}
	for i, v := range byLevel {
		out[i] = float64(v) / float64(total)
	}
	return out
}

func init() {
	registerExp(&Experiment{
		ID:    "fig1",
		Title: "Fig 1: IPC and energy, real vs perfect branch prediction",
		Manifest: expManifest("fig1", manifest.Sweep{
			Workloads: implementing("cfd"),
			Variants: []manifest.VariantExpr{
				{Variant: "base"},
				{Variant: "base", PerfectAll: true},
			},
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 1a/1b: baseline vs perfect prediction",
				"workload", "base IPC", "perfect IPC", "IPC gain", "energy saved")
			for _, s := range withVariant(workload.CFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				perf, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge(), PerfectAll: true})
				if err != nil {
					return err
				}
				t.Addf(s.Name, base.Stats.IPC(), perf.Stats.IPC(),
					stats.Pct(Speedup(base, perf)), stats.Share(EnergyReduction(base, perf)))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig2a",
		Title: "Fig 2a: misprediction breakdown by furthest memory level",
		Manifest: expManifest("fig2a", manifest.Sweep{
			Workloads: manifest.Selector{All: true},
			Variants:  variants("base"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 2a: mispredicted branches by feeding memory level",
				"workload", "NoData", "L1", "L2", "L3", "MEM", "MPKI")
			for _, s := range workload.All() {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				sh := levelShares(base.Stats.MispredByLevel)
				t.Addf(s.Name, stats.Share(sh[0]), stats.Share(sh[1]), stats.Share(sh[2]),
					stats.Share(sh[3]), stats.Share(sh[4]), base.Stats.MPKI())
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig2b",
		Title: "Fig 2b: IPC vs window size, real vs perfect prediction (memory-fed workload)",
		Manifest: expManifest("fig2b", manifest.Sweep{
			Workloads: byNames("mcflike"),
			Variants: []manifest.VariantExpr{
				{Variant: "base"},
				{Variant: "base", PerfectAll: true},
			},
			Configs: mutationsFor(config.WindowSweep()...),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 2b: mcflike IPC scaling with window size",
				"window", "real BP", "perfect BP")
			for _, cfg := range config.WindowSweep() {
				base, err := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: cfg})
				if err != nil {
					return err
				}
				perf, err := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: cfg, PerfectAll: true})
				if err != nil {
					return err
				}
				t.Addf(cfg.ROBSize, base.Stats.IPC(), perf.Stats.IPC())
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig6",
		Title: "Fig 6: control-flow classification study (MPKI-weighted)",
		Run: func(r *Runner, w io.Writer) error {
			st, err := classify.Run(r.Scale)
			if err != nil {
				return err
			}
			t := stats.NewTable("Fig 6a: misprediction share per suite", "suite", "share")
			suites := st.SuiteShares()
			var names []string
			for s := range suites {
				names = append(names, s)
			}
			sort.Strings(names)
			for _, s := range names {
				t.Addf(s, stats.Share(suites[s]))
			}
			fmt.Fprintln(w, t)
			fmt.Fprintf(w, "Fig 6b: targeted share of cumulative MPKI = %s (paper: ~78%%)\n\n",
				stats.Share(st.TargetedShare()))
			t2 := stats.NewTable("Fig 6c: targeted mispredictions by class", "class", "share")
			shares := st.ClassShares()
			var classes []prog.BranchClass
			for c := range shares {
				classes = append(classes, c)
			}
			sort.Slice(classes, func(i, j int) bool { return shares[classes[i]] > shares[classes[j]] })
			for _, c := range classes {
				t2.Addf(c.String(), stats.Share(shares[c]))
			}
			fmt.Fprintln(w, t2)
			_, err = fmt.Fprintf(w, "separable (CFD-applicable) share = %s (paper: 41.4%%)\n",
				stats.Share(st.SeparableShare()))
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "table1",
		Title: "Table I: targeted workloads and their MPKI",
		Run: func(r *Runner, w io.Writer) error {
			st, err := classify.Run(r.Scale)
			if err != nil {
				return err
			}
			t := stats.NewTable("Table I: workloads, MPKI (ISL-TAGE), targeted?",
				"workload", "suite", "MPKI", "miss rate", "targeted")
			for _, rep := range st.Reports {
				t.Addf(rep.Workload, rep.Suite, rep.MPKI(),
					stats.Share(rep.MissRate()), fmt.Sprint(rep.Targeted()))
			}
			_, err = fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "table2",
		Title: "Table II: minimum fetch-to-execute latency of contemporary cores",
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Table II: minimum fetch-to-execute latency (cycles)", "core", "cycles")
			tab := config.TableII()
			var names []string
			for n := range tab {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				t.Addf(n, tab[n])
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig17",
		Title: "Fig 17: baseline core configuration and CFD storage overhead",
		Run: func(r *Runner, w io.Writer) error {
			c := config.SandyBridge()
			t := stats.NewTable("Fig 17a: baseline core (Sandy Bridge-like)", "parameter", "value")
			t.Addf("fetch/rename/retire width", c.FetchWidth)
			t.Addf("issue width (ALU/mem/br ports)", fmt.Sprintf("%d (%d/%d/%d)", c.IssueWidth, c.ALUPorts, c.MemPorts, c.BrPorts))
			t.Addf("min fetch-to-execute", c.FrontEndDepth)
			t.Addf("ROB / IQ / LQ / SQ", fmt.Sprintf("%d / %d / %d / %d", c.ROBSize, c.IQSize, c.LQSize, c.SQSize))
			t.Addf("physical registers", c.NumPhysRegs)
			t.Addf("checkpoints", fmt.Sprintf("%d (conf-guided, OoO reclaim)", c.NumCheckpoints))
			t.Addf("predictor", c.Predictor.String())
			t.Addf("BTB", fmt.Sprintf("%d sets x %d ways", 1<<c.BTBLogSets, c.BTBWays))
			t.Addf("L1D", fmt.Sprintf("%dKB %d-way, %d cycles", c.Cache.L1.SizeKB, c.Cache.L1.Ways, c.Cache.L1.Latency))
			t.Addf("L2", fmt.Sprintf("%dKB %d-way, %d cycles", c.Cache.L2.SizeKB, c.Cache.L2.Ways, c.Cache.L2.Latency))
			t.Addf("L3", fmt.Sprintf("%dKB %d-way, %d cycles", c.Cache.L3.SizeKB, c.Cache.L3.Ways, c.Cache.L3.Latency))
			t.Addf("memory latency / L1 MSHRs", fmt.Sprintf("%d cycles / %d", c.Cache.MemLatency, c.Cache.NumMSHRs))
			fmt.Fprintln(w, t)
			t2 := stats.NewTable("Fig 17b: CFD storage overhead", "structure", "bits")
			t2.Addf("BQ (128 x {pred,pushed,popped,ckpt-id})", c.BQSize*(1+1+1+4))
			t2.Addf("VQ renamer (128 x preg-id)", c.VQSize*8)
			t2.Addf("TQ (256 x {16-bit trip, pushed, overflow}) + TCR", c.TQSize*(16+1+1)+16)
			_, err := fmt.Fprintln(w, t2)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "table3",
		Title: "Table III: CFD(BQ) and DFD instruction overheads",
		Manifest: expManifest("table3", manifest.Sweep{
			Workloads: manifest.Selector{Class: "separable", HasVariant: "cfd"},
			Variants:  variants("base", "cfd", "cfd+", "dfd", "cfd+dfd"),
		}),
		// Tolerant: a failing variant renders as an "err" cell below, so a
		// sweep error must not abort the table.
		Tolerant: true,
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Table III: retired-instruction overhead factor vs base",
				"workload", "cfd", "cfd+", "dfd", "cfd+dfd")
			for _, s := range workload.CFDClass() {
				if !s.HasVariant(workload.CFD) {
					continue
				}
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cell := func(v workload.Variant) string {
					if !s.HasVariant(v) {
						return "-"
					}
					res, err2 := r.Run(RunSpec{Workload: s.Name, Variant: v, Config: config.SandyBridge()})
					if err2 != nil {
						return "err"
					}
					return fmt.Sprintf("%.2f", float64(res.Stats.Retired)/float64(base.Stats.Retired))
				}
				t.Add(s.Name, cell(workload.CFD), cell(workload.CFDPlus), cell(workload.DFD), cell(workload.CFDDFD))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "table4",
		Title: "Table IV: CFD(TQ) instruction overheads",
		Manifest: expManifest("table4", manifest.Sweep{
			Workloads: implementing("cfdtq"),
			Variants:  variants("base", "cfdtq", "cfdbq", "cfdbqtq"),
		}),
		Tolerant: true,
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Table IV: TQ-variant overhead factor vs base",
				"workload", "cfdtq", "cfdbq", "cfdbqtq")
			for _, s := range withVariant(workload.CFDTQ) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cell := func(v workload.Variant) string {
					if !s.HasVariant(v) {
						return "-"
					}
					res, err2 := r.Run(RunSpec{Workload: s.Name, Variant: v, Config: config.SandyBridge()})
					if err2 != nil {
						return "err"
					}
					return fmt.Sprintf("%.2f", float64(res.Stats.Retired)/float64(base.Stats.Retired))
				}
				t.Add(s.Name, cell(workload.CFDTQ), cell(workload.CFDBQ), cell(workload.CFDBQTQ))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "table5",
		Title: "Table V: modified-code details (CFD(BQ) workloads)",
		Run:   tableCodeDetails(workload.CFD),
	})
	registerExp(&Experiment{
		ID:    "table6",
		Title: "Table VI: modified-code details (CFD(TQ) workloads)",
		Run:   tableCodeDetails(workload.CFDTQ),
	})
}

func tableCodeDetails(v workload.Variant) func(r *Runner, w io.Writer) error {
	return func(r *Runner, w io.Writer) error {
		t := stats.NewTable("Modified-code details",
			"workload", "analog", "function", "time%", "class", "variants")
		for _, s := range withVariant(v) {
			t.Addf(s.Name, s.Analog, s.Function, s.TimePct, s.Class.String(),
				fmt.Sprint(s.Variants))
		}
		_, err := fmt.Fprintln(w, t)
		return err
	}
}
