package harness

import (
	"fmt"
	"io"

	"cfd/internal/config"
	"cfd/internal/manifest"
	"cfd/internal/stats"
	"cfd/internal/workload"
)

// bestCFD picks the workload's most complete CFD(BQ) variant.
func bestCFD(s *workload.Spec) workload.Variant {
	if s.HasVariant(workload.CFDPlus) {
		return workload.CFDPlus
	}
	return workload.CFD
}

func init() {
	registerExp(&Experiment{
		ID:    "fig18",
		Title: "Fig 18: performance and energy impact of CFD and CFD+",
		Manifest: expManifest("fig18", manifest.Sweep{
			Workloads: implementing("cfd"),
			Variants:  variants("base", "cfd", "cfd+"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 18: CFD/CFD+ speedup and energy reduction vs base",
				"workload", "cfd speedup", "cfd energy", "cfd+ speedup", "cfd+ energy")
			var sp []float64
			for _, s := range withVariant(workload.CFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFD, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				sp = append(sp, Speedup(base, cfd))
				row := []string{s.Name, stats.Ratio(Speedup(base, cfd)), stats.Share(EnergyReduction(base, cfd))}
				if s.HasVariant(workload.CFDPlus) {
					plus, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFDPlus, Config: config.SandyBridge()})
					if err != nil {
						return err
					}
					row = append(row, stats.Ratio(Speedup(base, plus)), stats.Share(EnergyReduction(base, plus)))
				} else {
					row = append(row, "-", "-")
				}
				t.Add(row...)
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintf(w, "geometric-mean CFD speedup = %s (paper: up to 1.5x, 16%% avg)\n", stats.Ratio(gmean(sp)))
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig19",
		Title: "Fig 19: effective IPC — Base, CFD+, Base+PerfectCFD, PerfectPrediction",
		Manifest: expManifest("fig19", manifest.Sweep{
			Workloads: implementing("cfd"),
			Variants: []manifest.VariantExpr{
				{Variant: "base"},
				{AnyOf: []string{"cfd+", "cfd"}},
				{Variant: "base", PerfectCFD: true},
				{Variant: "base", PerfectAll: true},
			},
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 19: effective IPC comparison",
				"workload", "base", "cfd", "base+perfectCFD", "perfect", "group")
			for _, s := range withVariant(workload.CFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cfd, err := r.Run(RunSpec{Workload: s.Name, Variant: bestCFD(s), Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				pcfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge(), PerfectCFD: true})
				if err != nil {
					return err
				}
				perf, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge(), PerfectAll: true})
				if err != nil {
					return err
				}
				cfdIPC, pcfdIPC := EffIPC(base, cfd), EffIPC(base, pcfd)
				group := "2 (matches PerfectCFD)"
				switch {
				case cfdIPC < 0.97*pcfdIPC:
					group = "1 (under PerfectCFD)"
				case cfdIPC > 1.03*pcfdIPC:
					group = "3 (over PerfectCFD)"
				}
				t.Addf(s.Name, base.Stats.IPC(), cfdIPC, pcfdIPC, EffIPC(base, perf), group)
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig20",
		Title: "Fig 20: fetched-instruction accounting (wrong-path reduction vs retired overhead)",
		Manifest: expManifest("fig20", manifest.Sweep{
			Workloads: implementing("cfd"),
			Variants:  variants("base", "cfd"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 20: fetched instructions normalized to base fetched",
				"workload", "base retired", "base wrong-path", "cfd retired", "cfd wrong-path")
			for _, s := range withVariant(workload.CFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFD, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				norm := float64(base.Stats.Fetched)
				t.Addf(s.Name,
					stats.Share(float64(base.Stats.Retired)/norm),
					stats.Share(float64(base.Stats.Fetched-base.Stats.Retired)/norm),
					stats.Share(float64(cfd.Stats.Retired)/norm),
					stats.Share(float64(cfd.Stats.Fetched-cfd.Stats.Retired)/norm))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig21a",
		Title: "Fig 21a: sensitivity to pipeline depth (fetch-to-execute)",
		Manifest: expManifest("fig21a", manifest.Sweep{
			Workloads: byNames("soplexlike", "mcflike", "bzip2like"),
			Variants:  variants("base", "cfd"),
			Configs: mutationsFor(
				config.SandyBridge().WithDepth(5),
				config.SandyBridge().WithDepth(10),
				config.SandyBridge().WithDepth(15),
				config.SandyBridge().WithDepth(20)),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 21a: CFD speedup vs fetch-to-execute depth",
				"workload", "depth 5", "depth 10", "depth 15", "depth 20")
			for _, name := range []string{"soplexlike", "mcflike", "bzip2like"} {
				row := []string{name}
				for _, d := range []int{5, 10, 15, 20} {
					cfg := config.SandyBridge().WithDepth(d)
					base, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: cfg})
					if err != nil {
						return err
					}
					cfd, err := r.Run(RunSpec{Workload: name, Variant: workload.CFD, Config: cfg})
					if err != nil {
						return err
					}
					row = append(row, stats.Ratio(Speedup(base, cfd)))
				}
				t.Add(row...)
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: CFD gains grow with pipeline depth (deeper pipe, costlier mispredicts)")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig21b",
		Title: "Fig 21b: CFD gains under larger instruction windows",
		Manifest: expManifest("fig21b", manifest.Sweep{
			Workloads: implementing("cfd"),
			Variants:  variants("base", "cfd"),
			Configs:   mutationsFor(config.Scaled(168), config.Scaled(256), config.Scaled(512)),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 21b: geometric-mean CFD speedup per window",
				"window", "gmean speedup")
			for _, rob := range []int{168, 256, 512} {
				cfg := config.Scaled(rob)
				var sp []float64
				for _, s := range withVariant(workload.CFD) {
					base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: cfg})
					if err != nil {
						return err
					}
					cfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFD, Config: cfg})
					if err != nil {
						return err
					}
					sp = append(sp, Speedup(base, cfd))
				}
				t.Addf(rob, stats.Ratio(gmean(sp)))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig21c",
		Title: "Fig 21c: speculative pop vs stall on a BQ miss",
		Manifest: expManifest("fig21c",
			manifest.Sweep{
				Workloads: byNames("tifflike", "soplexlike", "mcflike", "bzip2like"),
				Variants:  variants("base", "cfd"),
			},
			manifest.Sweep{
				Workloads: byNames("tifflike", "soplexlike", "mcflike", "bzip2like"),
				Variants:  variants("cfd"),
				Configs:   []manifest.ConfigSet{{Set: map[string]any{"BQMissPolicy": "stall"}}},
			}),
		Run: func(r *Runner, w io.Writer) error {
			stallCfg := config.SandyBridge()
			stallCfg.BQMissPolicy = config.StallFetch
			names := []string{"tifflike", "soplexlike", "mcflike", "bzip2like"}
			t := stats.NewTable("Fig 21c: effective IPC, spec vs stall BQ-miss policy",
				"workload", "base", "cfd (spec)", "cfd (stall)", "BQ miss rate")
			for _, name := range names {
				base, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				spec, err := r.Run(RunSpec{Workload: name, Variant: workload.CFD, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				stall, err := r.Run(RunSpec{Workload: name, Variant: workload.CFD, Config: stallCfg})
				if err != nil {
					return err
				}
				missRate := 0.0
				if pops := spec.Stats.BQPops; pops > 0 {
					missRate = float64(spec.Stats.BQMisses) / float64(pops)
				}
				t.Addf(name, base.Stats.IPC(), EffIPC(base, spec), EffIPC(base, stall), stats.Share(missRate))
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: spec == stall except the high-BQ-miss hoisting-only workload (tifflike)")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig22",
		Title: "Fig 22: astar region #1 case study (source and behavior)",
		Manifest: expManifest("fig22", manifest.Sweep{
			Workloads: byNames("astar1like"),
			Variants:  variants("base", "cfd"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			s, _ := workload.ByName("astar1like")
			for _, v := range []workload.Variant{workload.Base, workload.CFD} {
				p, _, err := s.Build(v, 256)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "--- astar1like/%s ---\n%s\n", v, p.Disassemble())
			}
			base, err := r.Run(RunSpec{Workload: "astar1like", Variant: workload.Base, Config: config.SandyBridge()})
			if err != nil {
				return err
			}
			cfd, err := r.Run(RunSpec{Workload: "astar1like", Variant: workload.CFD, Config: config.SandyBridge()})
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "base MPKI %.2f -> cfd MPKI %.2f, speedup %s\n",
				base.Stats.MPKI(), cfd.Stats.MPKI(), stats.Ratio(Speedup(base, cfd)))
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig23",
		Title: "Fig 23: effective IPC vs window size, base vs CFD (astar analogs)",
		Manifest: expManifest("fig23", manifest.Sweep{
			Workloads: byNames("astar1like", "mcflike"),
			Variants:  variants("base", "cfd"),
			Configs:   mutationsFor(config.WindowSweep()...),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 23: effective IPC across windows",
				"workload", "window", "base", "cfd", "cfd speedup")
			for _, name := range []string{"astar1like", "mcflike"} {
				for _, cfg := range config.WindowSweep() {
					base, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: cfg})
					if err != nil {
						return err
					}
					cfd, err := r.Run(RunSpec{Workload: name, Variant: workload.CFD, Config: cfg})
					if err != nil {
						return err
					}
					t.Addf(name, cfg.ROBSize, base.Stats.IPC(), EffIPC(base, cfd), stats.Ratio(Speedup(base, cfd)))
				}
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: CFD speedup grows with window size (misprediction eradication enables latency tolerance)")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig24",
		Title: "Fig 24: DFD vs CFD performance and energy",
		Manifest: expManifest("fig24", manifest.Sweep{
			Workloads: implementing("dfd"),
			Variants:  variants("base", "cfd", "dfd"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 24: CFD vs DFD speedup and energy reduction",
				"workload", "cfd speedup", "dfd speedup", "cfd energy", "dfd energy")
			for _, s := range withVariant(workload.DFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				cfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFD, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				dfd, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.DFD, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				t.Add(s.Name, stats.Ratio(Speedup(base, cfd)), stats.Ratio(Speedup(base, dfd)),
					stats.Share(EnergyReduction(base, cfd)), stats.Share(EnergyReduction(base, dfd)))
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig25a",
		Title: "Fig 25a: L1 MSHR utilization histogram, CFD vs DFD",
		Manifest: expManifest("fig25a", manifest.Sweep{
			Workloads: byNames("mcflike"),
			Variants: []manifest.VariantExpr{
				{Variant: "cfd", SampleMSHR: true},
				{Variant: "dfd", SampleMSHR: true},
			},
		}),
		Run: func(r *Runner, w io.Writer) error {
			for _, v := range []workload.Variant{workload.CFD, workload.DFD} {
				res, err := r.Run(RunSpec{Workload: "mcflike", Variant: v, Config: config.SandyBridge(), SampleMSHR: true})
				if err != nil {
					return err
				}
				labels := make([]string, len(res.MSHRHist))
				for i := range labels {
					labels[i] = fmt.Sprint(i)
				}
				fmt.Fprintln(w, stats.Histogram(fmt.Sprintf("Fig 25a: mcflike/%s MSHR occupancy (%% of cycles)", v), labels, res.MSHRHist))
			}
			_, err := fmt.Fprintln(w, "expected shape: DFD shows a more pronounced bimodal distribution (denser miss clusters)")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig25b",
		Title: "Fig 25b: misprediction memory-level breakdown, base vs DFD",
		Manifest: expManifest("fig25b", manifest.Sweep{
			Workloads: byNames("mcflike", "astar1like", "soplexlike"),
			Variants:  variants("base", "dfd"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 25b: mispredicts by feeding level",
				"workload", "scheme", "NoData", "L1", "L2", "L3", "MEM")
			for _, name := range []string{"mcflike", "astar1like", "soplexlike"} {
				for _, v := range []workload.Variant{workload.Base, workload.DFD} {
					res, err := r.Run(RunSpec{Workload: name, Variant: v, Config: config.SandyBridge()})
					if err != nil {
						return err
					}
					sh := levelShares(res.Stats.MispredByLevel)
					t.Addf(name, string(v), stats.Share(sh[0]), stats.Share(sh[1]),
						stats.Share(sh[2]), stats.Share(sh[3]), stats.Share(sh[4]))
				}
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: DFD moves the branches' data closer to the core")
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig26",
		Title: "Fig 26: applying CFD and DFD simultaneously",
		Manifest: expManifest("fig26", manifest.Sweep{
			Workloads: implementing("cfd+dfd"),
			Variants:  variants("base", "dfd", "cfd", "cfd+dfd"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 26: speedup of DFD-only, CFD-only, and DFD+CFD",
				"workload", "dfd", "cfd", "dfd+cfd")
			for _, s := range withVariant(workload.CFDDFD) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				row := []string{s.Name}
				for _, v := range []workload.Variant{workload.DFD, workload.CFD, workload.CFDDFD} {
					res, err := r.Run(RunSpec{Workload: s.Name, Variant: v, Config: config.SandyBridge()})
					if err != nil {
						return err
					}
					row = append(row, stats.Ratio(Speedup(base, res)))
				}
				t.Add(row...)
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig27",
		Title: "Fig 27: performance and energy impact of CFD(TQ)",
		Manifest: expManifest("fig27", manifest.Sweep{
			Workloads: implementing("cfdtq"),
			Variants:  variants("base", "cfdtq"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 27: CFD(TQ) vs base",
				"workload", "speedup", "energy saved", "TQ pops", "base MPKI", "tq MPKI")
			for _, s := range withVariant(workload.CFDTQ) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				tq, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.CFDTQ, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				t.Addf(s.Name, stats.Ratio(Speedup(base, tq)), stats.Share(EnergyReduction(base, tq)),
					tq.Stats.TQPops, base.Stats.MPKI(), tq.Stats.MPKI())
			}
			_, err := fmt.Fprintln(w, t)
			return err
		},
	})

	registerExp(&Experiment{
		ID:    "fig28",
		Title: "Fig 28: CFD(BQ), CFD(TQ), and CFD(BQ+TQ) combined",
		Manifest: expManifest("fig28", manifest.Sweep{
			Workloads: implementing("cfdbqtq"),
			Variants:  variants("base", "cfdbq", "cfdtq", "cfdbqtq"),
		}),
		Run: func(r *Runner, w io.Writer) error {
			t := stats.NewTable("Fig 28: speedup and energy reduction per mechanism",
				"workload", "cfdbq", "cfdtq", "cfdbqtq", "bqtq energy")
			for _, s := range withVariant(workload.CFDBQTQ) {
				base, err := r.Run(RunSpec{Workload: s.Name, Variant: workload.Base, Config: config.SandyBridge()})
				if err != nil {
					return err
				}
				row := []string{s.Name}
				var bqtq *Result
				for _, v := range []workload.Variant{workload.CFDBQ, workload.CFDTQ, workload.CFDBQTQ} {
					res, err := r.Run(RunSpec{Workload: s.Name, Variant: v, Config: config.SandyBridge()})
					if err != nil {
						return err
					}
					row = append(row, stats.Ratio(Speedup(base, res)))
					bqtq = res
				}
				row = append(row, stats.Share(EnergyReduction(base, bqtq)))
				t.Add(row...)
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: BQ+TQ gains exceed the sum of individual gains")
			return err
		},
	})
}
