package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files:
//
//	go test ./internal/harness/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenScale is tiny on purpose: golden tests pin the exact rendered
// output (formatting, row order, derived ratios), not paper-scale
// numbers — the shape tests cover trends.
const goldenScale = 0.02

// TestGoldenExperiments renders a few experiments at a fixed scale and
// compares them byte for byte against committed golden files. Because
// the harness guarantees byte-identical output for any Jobs value, the
// goldens are valid regardless of the parallelism they were recorded or
// replayed under.
func TestGoldenExperiments(t *testing.T) {
	for _, id := range []string{"fig17", "fig18", "table5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			r := NewRunner(goldenScale)
			var buf bytes.Buffer
			if err := e.Run(r, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to record)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output differs from %s (rerun with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
					id, path, buf.Bytes(), want)
			}
		})
	}
}
