// Package harness runs the paper's experiments: for every table and figure
// in the evaluation (§VII), an experiment function builds the workload
// variants, runs them on the cycle-level pipeline (and the classifier where
// appropriate), and prints the same rows or series the paper reports.
//
// The Runner is safe for concurrent use: every experiment submits its
// RunSpecs up front through Sweep/Prefetch, which fan the simulations
// across a worker pool, and then assembles its rows serially from the
// memoized results — so output is byte-identical whatever Jobs is set to.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfd/internal/energy"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/fault"
	"cfd/internal/manifest"
	"cfd/internal/mem"
	"cfd/internal/obs"
	"cfd/internal/obs/journal"
	"cfd/internal/pipeline"
	"cfd/internal/store"
	"cfd/internal/workload"
)

// Runner executes and memoizes simulation runs. The zero value is not
// usable; construct with NewRunner. A Runner is safe for concurrent use:
// the cache is mutex-guarded and per-key singleflight, so a spec submitted
// from any number of goroutines (or repeated across experiments) simulates
// exactly once.
type Runner struct {
	// Scale multiplies every workload's DefaultN (1.0 = full runs; tests
	// and quick sweeps use smaller fractions).
	Scale float64
	// Jobs bounds how many simulations Sweep runs concurrently
	// (0 = runtime.GOMAXPROCS(0)). Jobs == 1 preserves the strictly
	// serial execution order.
	Jobs int
	// Verify cross-checks every pipeline run against a fresh run of the
	// functional emulator — the golden architectural model — and fails
	// the run on any divergence in retired-instruction count,
	// architectural registers, or final memory.
	Verify bool
	// KeepGoing makes Sweep run every spec to completion instead of
	// cancelling on the first failure. Failed specs yield nil results;
	// their structured faults are collected by Failures and exported in
	// the document's faults section.
	KeepGoing bool
	// MaxCycles, when nonzero, arms a per-run watchdog cycle budget on
	// every simulation (and the same budget, counted in retired
	// instructions, on oracle pre-runs of the emulator).
	MaxCycles uint64
	// RunTimeout, when nonzero, arms a per-run wall-clock deadline on
	// every simulation. Expiry surfaces as a WatchdogExpiry fault with a
	// machine-state snapshot, not a hung sweep.
	RunTimeout time.Duration
	// OnProgress, when non-nil, is called after each spec a Sweep
	// completes — cache hits and (with KeepGoing) failures included.
	// Calls are serialized across workers; keep the callback fast, it
	// runs on the sweep's critical path.
	OnProgress func(ProgressEvent)
	// Store, when non-nil, persists every completed result (and every
	// memoized deterministic typed fault) across processes: a cache miss
	// consults the store before simulating, so an interrupted sweep
	// resumed with the same store re-runs only the missing cells. Open
	// one with OpenStore; see persist.go for the key and quarantine
	// rules. Set before the Runner is shared between goroutines.
	Store *store.Store
	// BaseCtx, when non-nil, is the context Prefetch sweeps under
	// (experiments call Prefetch, which has no ctx parameter of its
	// own). Cancelling it makes an in-progress sweep drain: no new
	// simulations start, in-flight ones run to completion — and, with a
	// Store attached, flush to disk — before Sweep returns the
	// cancellation error. This is how cfdbench turns SIGINT/SIGTERM
	// into a clean resumable exit. Set before the Runner is shared
	// between goroutines.
	BaseCtx context.Context
	// Journal, when non-nil, receives the structured sweep event stream
	// (cfd-journal JSONL): sweep start/finish, per-spec
	// submit/start/done with result counters, and watchdog expiries.
	// Events go through the journal's buffered bus, so the sweep never
	// waits on journal I/O; a nil Journal costs one nil test and zero
	// allocations on the per-spec path. Set before the Runner is shared
	// between goroutines.
	Journal *journal.Journal
	// ManifestDigest, when non-empty, is the content digest of the
	// manifest whose expansion drives this Runner's sweeps; the journal's
	// sweep_start events carry it, tying the event stream back to the
	// exact declaration that produced the campaign. Set before the Runner
	// is shared between goroutines.
	ManifestDigest string

	mu    sync.Mutex
	cache map[string]*cacheEntry

	sweepSeq atomic.Uint64

	lookups     atomic.Uint64
	simulations atomic.Uint64
	cacheHits   atomic.Uint64
}

// Metrics is a snapshot of the Runner's cache counters. All three are
// deterministic for a given experiment sequence — a duplicate spec counts
// as a cache hit whether it joined an in-flight simulation or found a
// finished one, and a cache miss counts as a simulation whether it was
// computed fresh or restored from the persistent store — so metric deltas
// are safe to include in exported output that must be byte-identical
// across -jobs settings and across interrupted-then-resumed sweeps. The
// fresh-vs-restored split (which is a property of the process's history,
// not of the experiment) is reported separately by Store.Metrics.
type Metrics struct {
	Lookups     uint64 `json:"lookups"`     // Run/RunCtx calls
	Simulations uint64 `json:"simulations"` // cache misses materialized (simulated or store-restored)
	CacheHits   uint64 `json:"cacheHits"`   // lookups served by the cache
}

// Metrics returns the Runner's cumulative cache counters.
func (r *Runner) Metrics() Metrics {
	return Metrics{
		Lookups:     r.lookups.Load(),
		Simulations: r.simulations.Load(),
		CacheHits:   r.cacheHits.Load(),
	}
}

// Sub returns the counter deltas m - prev (e.g. per-experiment metrics from
// before/after snapshots).
func (m Metrics) Sub(prev Metrics) Metrics {
	return Metrics{
		Lookups:     m.Lookups - prev.Lookups,
		Simulations: m.Simulations - prev.Simulations,
		CacheHits:   m.CacheHits - prev.CacheHits,
	}
}

// cacheEntry is the singleflight slot for one RunSpec key: the first
// caller simulates and closes done; everyone else waits on done and reads
// the memoized outcome (errors are memoized too — simulation is
// deterministic, so retrying cannot help).
type cacheEntry struct {
	done chan struct{}
	spec RunSpec
	res  *Result
	err  error
	// hits counts lookups served by this entry (guarded by Runner.mu); the
	// harness trace annotates each run's span with it.
	hits uint64
}

// NewRunner returns a Runner at the given scale.
func NewRunner(scale float64) *Runner {
	return &Runner{Scale: scale, cache: make(map[string]*cacheEntry)}
}

// jobs resolves the effective worker count.
func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// RunSpec identifies one simulation run.
type RunSpec struct {
	Workload   string
	Variant    workload.Variant
	Config     config.Core
	PerfectAll bool // perfect prediction for all conditional branches
	PerfectCFD bool // perfect prediction for the separable branches only
	SampleMSHR bool // record the L1 MSHR occupancy histogram (Fig 25a)
	// SampleEvery, when nonzero, attaches an interval sampler to the run:
	// the result carries an IPC/stall/occupancy time series sampled every
	// SampleEvery cycles plus full-run queue-occupancy histograms. It is
	// part of the cache key: a sampled and an unsampled run of the same
	// configuration are distinct simulations.
	SampleEvery uint64
}

// Result is the outcome of one run.
type Result struct {
	Spec          RunSpec
	Stats         pipeline.Stats
	EnergyTotal   float64
	EnergyDynamic float64
	EnergyLeakage float64
	EnergyQueue   float64
	// EnergyEvents is the per-event access count, keyed by event name
	// (zero-count events omitted).
	EnergyEvents map[string]uint64
	MSHRHist     []uint64
	// Timeseries and Occupancy are populated when the spec set SampleEvery:
	// the interval-sampled telemetry series and the full-run architectural
	// queue-occupancy histograms. Nil otherwise.
	Timeseries *obs.TimeseriesSection
	Occupancy  *obs.OccupancySection
}

// Speedup returns base cycles over r's cycles; both runs must perform the
// same architectural work (the workload contract guarantees it).
func Speedup(base, r *Result) float64 {
	return float64(base.Stats.Cycles) / float64(r.Stats.Cycles)
}

// EnergyReduction returns the fractional energy saved versus base.
func EnergyReduction(base, r *Result) float64 {
	return 1 - r.EnergyTotal/base.EnergyTotal
}

// EffIPC returns the paper's effective IPC: baseline retired instructions
// over this scheme's cycles, so instruction overheads do not flatter a
// transformation (§VII).
func EffIPC(base, r *Result) float64 {
	return float64(base.Stats.Retired) / float64(r.Stats.Cycles)
}

// key returns the spec's deterministic cache/store identity. Every RunSpec
// field participates (pinned by TestRunSpecKeyCoversEveryField): the
// human-readable prefix names the run, and the trailing digest covers the
// complete Config struct — so two specs differing in any configuration
// detail, even one the Name does not encode, can never alias to one
// cache or store entry. The format is defined by manifest.Spec.Key —
// manifests are the single source of spec enumeration, so the identity
// lives with the declarative layer — and the struct conversion is the
// compile-time pin that RunSpec and manifest.Spec never drift apart.
func (rs RunSpec) key() string {
	return manifest.Spec(rs).Key()
}

// Key is the exported form of the spec's deterministic identity, for
// tools that journal runs outside a Runner (e.g. cfdsim -journal).
func (rs RunSpec) Key() string { return rs.key() }

// Run executes (or recalls) one simulation.
func (r *Runner) Run(rs RunSpec) (*Result, error) {
	return r.RunCtx(context.Background(), rs)
}

// RunCtx is Run with cancellation: a caller blocked on another
// goroutine's in-flight simulation of the same spec returns early when ctx
// is done (the simulation itself runs to completion and stays memoized).
func (r *Runner) RunCtx(ctx context.Context, rs RunSpec) (*Result, error) {
	res, err, _ := r.runCtx(ctx, rs, 0)
	return res, err
}

// runCtx is the memoizing core shared by RunCtx and Sweep. sweep is the
// journal scope's sequence number (0 outside a journaled sweep); the
// returned runInfo says how the result materialized, feeding the journal
// and ProgressEvent.
func (r *Runner) runCtx(ctx context.Context, rs RunSpec, sweep uint64) (*Result, error, runInfo) {
	key := rs.key()
	r.lookups.Add(1)
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*cacheEntry)
	}
	if e, ok := r.cache[key]; ok {
		e.hits++
		r.mu.Unlock()
		r.cacheHits.Add(1)
		select {
		case <-e.done:
			return e.res, e.err, runInfo{cacheHit: true}
		case <-ctx.Done():
			return nil, ctx.Err(), runInfo{cacheHit: true}
		}
	}
	e := &cacheEntry{done: make(chan struct{}), spec: rs}
	r.cache[key] = e
	r.mu.Unlock()
	r.simulations.Add(1)
	if r.Store != nil {
		if res, lerr, ok := r.storeLoad(rs, key); ok {
			e.res, e.err = res, lerr
			close(e.done)
			return e.res, e.err, runInfo{storeHit: true}
		}
	}
	if j := r.Journal; j != nil && sweep != 0 {
		j.Emit(journal.Event{
			Type: journal.SpecStart, Sweep: sweep, Key: key,
			Workload: rs.Workload, Variant: string(rs.Variant), Config: rs.Config.Name,
		})
	}
	var info runInfo
	e.res, e.err = r.simulate(rs)
	if r.Store != nil {
		info.stored = r.storePersist(rs, key, e.res, e.err)
	}
	close(e.done)
	return e.res, e.err, info
}

// Results returns every successfully completed memoized result, sorted by
// spec key. In-flight and failed entries are skipped, so the snapshot is a
// pure function of which specs have finished — the stable iteration order
// is what makes the JSON export byte-identical for any Jobs setting.
func (r *Runner) Results() []*Result {
	r.mu.Lock()
	entries := make(map[string]*cacheEntry, len(r.cache))
	for k, e := range r.cache {
		entries[k] = e
	}
	r.mu.Unlock()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Result, 0, len(keys))
	for _, k := range keys {
		e := entries[k]
		select {
		case <-e.done:
			if e.err == nil && e.res != nil {
				out = append(out, e.res)
			}
		default: // still simulating
		}
	}
	return out
}

// Failure pairs a failed run's spec with its (memoized) error. The error is
// usually a *fault.Fault — a typed fault with a machine-state snapshot —
// but build and lookup errors pass through untyped.
type Failure struct {
	Spec RunSpec
	Err  error
}

// Failures returns every completed memoized failure, sorted by spec key —
// the same stable order as Results, so the export document's faults section
// is byte-identical for any Jobs setting.
func (r *Runner) Failures() []Failure {
	r.mu.Lock()
	entries := make(map[string]*cacheEntry, len(r.cache))
	for k, e := range r.cache {
		entries[k] = e
	}
	r.mu.Unlock()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Failure, 0)
	for _, k := range keys {
		e := entries[k]
		select {
		case <-e.done:
			if e.err != nil {
				out = append(out, Failure{Spec: e.spec, Err: e.err})
			}
		default: // still simulating
		}
	}
	return out
}

// watchdog builds the per-run watchdog from the Runner's budget fields, or
// nil when no budget is set. Each simulation gets its own instance so the
// wall-clock deadline is measured from that run's start.
func (r *Runner) watchdog() *fault.Watchdog {
	if r.MaxCycles == 0 && r.RunTimeout == 0 {
		return nil
	}
	w := &fault.Watchdog{MaxCycles: r.MaxCycles}
	if r.RunTimeout > 0 {
		w.Deadline = time.Now().Add(r.RunTimeout)
	}
	return w
}

// Test hooks: set before any goroutines start and restored after they
// finish, so tests can force specific interleavings (e.g. the sweep
// cancellation race) deterministically. Nil in production.
var (
	testOnSimulate    func(RunSpec)   // called at the top of simulate
	testOnSweepCancel func()          // called after a failing spec cancels a sweep
	testOnSweepSpecs  func([]RunSpec) // called with every Sweep's spec list before work starts
)

// simulate performs the actual cycle-level run for rs (no caching). A panic
// escaping either engine (or a workload builder) is contained here and
// memoized as a RuntimePanic fault, so one dying run cannot take down a
// sweep's worker pool.
func (r *Runner) simulate(rs RunSpec) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			f := fault.FromPanic(v, debug.Stack(), fault.Snapshot{Engine: "harness"})
			res, err = nil, fmt.Errorf("harness: %s/%s on %s: %w",
				rs.Workload, rs.Variant, rs.Config.Name, f)
		}
	}()
	if h := testOnSimulate; h != nil {
		h(rs)
	}
	s, ok := workload.ByName(rs.Workload)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", rs.Workload)
	}
	p, m, err := s.Build(rs.Variant, r.workloadN(s))
	if err != nil {
		return nil, err
	}
	wd := r.watchdog()

	var opts []pipeline.Option
	if wd != nil {
		opts = append(opts, pipeline.WithWatchdog(wd))
	}
	if rs.PerfectAll || rs.PerfectCFD {
		perfect := map[uint64]bool{}
		if rs.PerfectCFD {
			for _, pc := range workload.SeparablePCs(p) {
				perfect[pc] = true
			}
		}
		oracle := pipeline.NewOracle()
		emuOpts := []emu.Option{emu.WithTracer(emu.TracerFunc(func(ev emu.Event) {
			if ev.Inst.Op.IsCondBranch() && (rs.PerfectAll || perfect[ev.PC]) {
				oracle.Record(ev.PC, ev.Taken)
			}
		}))}
		if wd != nil {
			emuOpts = append(emuOpts, emu.WithWatchdog(wd))
		}
		em := emu.New(p, m.Clone(), emuOpts...)
		if err := em.Run(500_000_000); err != nil {
			return nil, fmt.Errorf("harness: oracle pre-run %s/%s: %w", rs.Workload, rs.Variant, err)
		}
		opts = append(opts, pipeline.WithOracle(oracle))
		if rs.PerfectAll {
			opts = append(opts, pipeline.WithPerfectBP())
		}
	}
	var init *mem.Memory
	if r.Verify {
		init = m.Clone()
	}
	cfg := rs.Config
	cfg.Cache.SampleMSHRs = rs.SampleMSHR
	var obsv *obs.Observer
	if rs.SampleEvery > 0 {
		obsv = obs.NewObserver(rs.SampleEvery, cfg.BQSize, cfg.VQSize, cfg.TQSize)
		opts = append(opts, pipeline.WithObserver(obsv))
	}
	core, err := pipeline.New(cfg, p, m, opts...)
	if err != nil {
		return nil, err
	}
	if err := core.Run(0); err != nil {
		return nil, fmt.Errorf("harness: %s/%s on %s: %w", rs.Workload, rs.Variant, cfg.Name, err)
	}
	core.FinishObservation()
	if r.Verify {
		if err := emu.VerifyArch(p, init, core.ArchRegs(), core.Mem(), core.Stats.Retired,
			emu.WithQueueSizes(cfg.BQSize, cfg.VQSize, cfg.TQSize)); err != nil {
			return nil, fmt.Errorf("harness: differential verification of %s/%s on %s: %w",
				rs.Workload, rs.Variant, cfg.Name, err)
		}
	}
	events := make(map[string]uint64)
	for e := 0; e < energy.NumEvents; e++ {
		if n := core.Meter.Counts[e]; n != 0 {
			events[energy.Event(e).String()] = n
		}
	}
	return &Result{
		Spec:          rs,
		Stats:         core.Stats,
		EnergyTotal:   core.Meter.Total(),
		EnergyDynamic: core.Meter.Dynamic(),
		EnergyLeakage: core.Meter.Leakage(),
		EnergyQueue:   core.Meter.QueueEnergy(),
		EnergyEvents:  events,
		MSHRHist:      core.Hierarchy().Hist,
		Timeseries:    obsv.Timeseries(),
		Occupancy:     obsv.Occupancy(),
	}, nil
}

// Experiment regenerates one paper table or figure. Its simulation needs
// are declared, not coded: Manifest (when non-nil) is the single source
// of the experiment's spec set, expanded and prefetched by RunExperiment
// before Run assembles the rows; Run itself only replays memoized
// lookups. Experiments with no registered-workload simulations (custom
// programs, classification studies, static tables) have a nil Manifest.
type Experiment struct {
	ID    string // "fig18", "table1", ...
	Title string
	// Manifest declares the experiment's workload×variant×config spec
	// set. The expansions are pinned against the legacy hand-written
	// enumerations by testdata/specsets.
	Manifest *manifest.Manifest
	// Tolerant makes RunExperiment ignore prefetch failures (other than
	// cancellation): the experiment's table renders failed cells as "err"
	// or "-" instead of aborting (Tables III/IV sweep variants that may
	// legitimately fault).
	Tolerant bool
	Run      func(r *Runner, w io.Writer) error
}

// Specs expands the experiment's embedded manifest into its RunSpec set,
// sorted by spec key and duplicate-free. Experiments without a manifest
// return nil.
func (e *Experiment) Specs() ([]RunSpec, error) {
	if e.Manifest == nil {
		return nil, nil
	}
	return SpecsFromManifest(e.Manifest)
}

// SpecsFromManifest expands any manifest into harness RunSpecs. The
// element-wise struct conversion is the compile-time pin that the two
// spec types stay field-identical.
func SpecsFromManifest(m *manifest.Manifest) ([]RunSpec, error) {
	specs, err := m.Expand()
	if err != nil {
		return nil, err
	}
	out := make([]RunSpec, len(specs))
	for i, sp := range specs {
		out[i] = RunSpec(sp)
	}
	return out, nil
}

// RunExperiment expands the experiment's manifest, prefetches the spec
// set across the worker pool, and then runs the experiment's assembly
// phase. Tolerant experiments proceed to assembly even when some specs
// faulted; cancellation always propagates so an interrupted sweep drains
// instead of assembling partial tables.
func (r *Runner) RunExperiment(e *Experiment, w io.Writer) error {
	specs, err := e.Specs()
	if err != nil {
		return err
	}
	if len(specs) > 0 {
		if err := r.Prefetch(specs...); err != nil {
			if !e.Tolerant || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return err
			}
		}
	}
	return e.Run(r, w)
}

var experiments = map[string]*Experiment{}

func registerExp(e *Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	experiments[e.ID] = e
}

// ByID returns one experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// AllExperiments returns every experiment sorted by ID.
func AllExperiments() []*Experiment {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Experiment, len(ids))
	for i, id := range ids {
		out[i] = experiments[id]
	}
	return out
}
