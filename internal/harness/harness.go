// Package harness runs the paper's experiments: for every table and figure
// in the evaluation (§VII), an experiment function builds the workload
// variants, runs them on the cycle-level pipeline (and the classifier where
// appropriate), and prints the same rows or series the paper reports.
package harness

import (
	"fmt"
	"io"
	"sort"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/pipeline"
	"cfd/internal/workload"
)

// Runner executes and memoizes simulation runs.
type Runner struct {
	// Scale multiplies every workload's DefaultN (1.0 = full runs; tests
	// and quick sweeps use smaller fractions).
	Scale float64
	cache map[string]*Result
}

// NewRunner returns a Runner at the given scale.
func NewRunner(scale float64) *Runner {
	return &Runner{Scale: scale, cache: make(map[string]*Result)}
}

// RunSpec identifies one simulation run.
type RunSpec struct {
	Workload   string
	Variant    workload.Variant
	Config     config.Core
	PerfectAll bool // perfect prediction for all conditional branches
	PerfectCFD bool // perfect prediction for the separable branches only
	SampleMSHR bool // record the L1 MSHR occupancy histogram (Fig 25a)
}

// Result is the outcome of one run.
type Result struct {
	Spec        RunSpec
	Stats       pipeline.Stats
	EnergyTotal float64
	EnergyQueue float64
	MSHRHist    []uint64
}

// Speedup returns base cycles over r's cycles; both runs must perform the
// same architectural work (the workload contract guarantees it).
func Speedup(base, r *Result) float64 {
	return float64(base.Stats.Cycles) / float64(r.Stats.Cycles)
}

// EnergyReduction returns the fractional energy saved versus base.
func EnergyReduction(base, r *Result) float64 {
	return 1 - r.EnergyTotal/base.EnergyTotal
}

// EffIPC returns the paper's effective IPC: baseline retired instructions
// over this scheme's cycles, so instruction overheads do not flatter a
// transformation (§VII).
func EffIPC(base, r *Result) float64 {
	return float64(base.Stats.Retired) / float64(r.Stats.Cycles)
}

func (rs RunSpec) key() string {
	return fmt.Sprintf("%s|%s|%s|%v|%v|%v|%v", rs.Workload, rs.Variant,
		rs.Config.Name, rs.Config.BQMissPolicy, rs.PerfectAll, rs.PerfectCFD, rs.SampleMSHR)
}

// Run executes (or recalls) one simulation.
func (r *Runner) Run(rs RunSpec) (*Result, error) {
	if got, ok := r.cache[rs.key()]; ok {
		return got, nil
	}
	s, ok := workload.ByName(rs.Workload)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", rs.Workload)
	}
	n := int64(float64(s.DefaultN) * r.Scale)
	if n < 256 {
		n = 256
	}
	p, m, err := s.Build(rs.Variant, n)
	if err != nil {
		return nil, err
	}

	var opts []pipeline.Option
	if rs.PerfectAll || rs.PerfectCFD {
		perfect := map[uint64]bool{}
		if rs.PerfectCFD {
			for _, pc := range workload.SeparablePCs(p) {
				perfect[pc] = true
			}
		}
		oracle := pipeline.NewOracle()
		em := emu.New(p, m.Clone(), emu.WithTracer(emu.TracerFunc(func(ev emu.Event) {
			if ev.Inst.Op.IsCondBranch() && (rs.PerfectAll || perfect[ev.PC]) {
				oracle.Record(ev.PC, ev.Taken)
			}
		})))
		if err := em.Run(500_000_000); err != nil {
			return nil, fmt.Errorf("harness: oracle pre-run %s/%s: %w", rs.Workload, rs.Variant, err)
		}
		opts = append(opts, pipeline.WithOracle(oracle))
		if rs.PerfectAll {
			opts = append(opts, pipeline.WithPerfectBP())
		}
	}
	cfg := rs.Config
	cfg.Cache.SampleMSHRs = rs.SampleMSHR
	core, err := pipeline.New(cfg, p, m, opts...)
	if err != nil {
		return nil, err
	}
	if err := core.Run(0); err != nil {
		return nil, fmt.Errorf("harness: %s/%s on %s: %w", rs.Workload, rs.Variant, cfg.Name, err)
	}
	res := &Result{
		Spec:        rs,
		Stats:       core.Stats,
		EnergyTotal: core.Meter.Total(),
		EnergyQueue: core.Meter.QueueEnergy(),
		MSHRHist:    core.Hierarchy().Hist,
	}
	r.cache[rs.key()] = res
	return res, nil
}

// Experiment regenerates one paper table or figure.
type Experiment struct {
	ID    string // "fig18", "table1", ...
	Title string
	Run   func(r *Runner, w io.Writer) error
}

var experiments = map[string]*Experiment{}

func registerExp(e *Experiment) {
	if _, dup := experiments[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	experiments[e.ID] = e
}

// ByID returns one experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := experiments[id]
	return e, ok
}

// AllExperiments returns every experiment sorted by ID.
func AllExperiments() []*Experiment {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Experiment, len(ids))
	for i, id := range ids {
		out[i] = experiments[id]
	}
	return out
}
