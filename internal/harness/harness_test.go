package harness

import (
	"bytes"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/pipeline"
	"cfd/internal/workload"
)

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(0.02)
	rs := RunSpec{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()}
	a, err := r.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical specs must return the memoized result")
	}
}

func TestRunnerRejectsUnknownWorkload(t *testing.T) {
	r := NewRunner(0.02)
	if _, err := r.Run(RunSpec{Workload: "nope", Variant: workload.Base, Config: config.SandyBridge()}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	base := &Result{Stats: statsWith(1000, 500), EnergyTotal: 100}
	v := &Result{Stats: statsWith(500, 600), EnergyTotal: 80}
	if got := Speedup(base, v); got != 2.0 {
		t.Errorf("Speedup = %v", got)
	}
	if got := EnergyReduction(base, v); got < 0.199 || got > 0.201 {
		t.Errorf("EnergyReduction = %v", got)
	}
	if got := EffIPC(base, v); got != 1.0 {
		t.Errorf("EffIPC = %v (base retired / v cycles)", got)
	}
}

func statsWith(cycles, retired uint64) (s pipeline.Stats) {
	s.Cycles = cycles
	s.Retired = retired
	return s
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-ckpt", "ablation-hwpf", "ablation-ifconv", "ablation-pred", "ablation-xform",
		"fig1", "fig17", "fig18", "fig19", "fig2a", "fig2b", "fig20",
		"fig21a", "fig21b", "fig21c", "fig22", "fig23", "fig24",
		"fig25a", "fig25b", "fig26", "fig27", "fig28", "fig6",
		"table1", "table2", "table3", "table4", "table5", "table6",
	}
	all := AllExperiments()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %d experiments: %v", len(all), ids)
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
}

// TestExperimentsRunAtTinyScale smoke-tests every experiment end to end.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(0.01)
	for _, e := range AllExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(r, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestFig18ShapeAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(0.05)
	var buf bytes.Buffer
	e, _ := ByID("fig18")
	if err := e.Run(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "soplexlike") || !strings.Contains(out, "geometric-mean") {
		t.Errorf("fig18 output incomplete:\n%s", out)
	}
	// The headline claim: CFD speeds up the CFD-class workloads.
	base, err := r.Run(RunSpec{Workload: "soplexlike", Variant: workload.Base, Config: config.SandyBridge()})
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := r.Run(RunSpec{Workload: "soplexlike", Variant: workload.CFD, Config: config.SandyBridge()})
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(base, cfd); sp < 1.2 {
		t.Errorf("soplexlike CFD speedup = %.2f, want > 1.2", sp)
	}
	if cfd.Stats.MPKI() > base.Stats.MPKI()/4 {
		t.Errorf("CFD MPKI %.2f not far below base %.2f", cfd.Stats.MPKI(), base.Stats.MPKI())
	}
}

// pipelineStats aliases the pipeline stats type for test construction.
