package harness

import (
	"fmt"
	"io"

	"cfd/internal/config"
	"cfd/internal/manifest"
	"cfd/internal/stats"
	"cfd/internal/workload"
)

// hwpfConfig returns the baseline config with or without the hardware
// next-line prefetcher.
func hwpfConfig(hwpf bool) config.Core {
	cfg := config.SandyBridge()
	cfg.Cache.NextLinePrefetch = hwpf
	if hwpf {
		cfg.Name = cfg.Name + "-hwpf"
	}
	return cfg
}

func init() {
	registerExp(&Experiment{
		ID:    "ablation-hwpf",
		Title: "Hardware next-line prefetcher vs DFD and CFD",
		Manifest: expManifest("ablation-hwpf", manifest.Sweep{
			Workloads: byNames("mcflike", "soplexlike", "astar1like"),
			Variants:  variants("base", "dfd", "cfd"),
			Configs:   mutationsFor(hwpfConfig(false), hwpfConfig(true)),
		}),
		Run: func(r *Runner, w io.Writer) error {
			names := []string{"mcflike", "soplexlike", "astar1like"}
			t := stats.NewTable("speedup vs the matching baseline, with and without a HW next-line prefetcher",
				"workload", "dfd (no hwpf)", "dfd (hwpf)", "cfd (no hwpf)", "cfd (hwpf)")
			for _, name := range names {
				row := []string{name}
				for _, v := range []workload.Variant{workload.DFD, workload.CFD} {
					for _, hwpf := range []bool{false, true} {
						cfg := hwpfConfig(hwpf)
						base, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: cfg})
						if err != nil {
							return err
						}
						res, err := r.Run(RunSpec{Workload: name, Variant: v, Config: cfg})
						if err != nil {
							return err
						}
						row = append(row, stats.Ratio(Speedup(base, res)))
					}
				}
				t.Add(row...)
			}
			fmt.Fprintln(w, t)
			_, err := fmt.Fprintln(w, "expected shape: a HW prefetcher erodes DFD's advantage on streaming workloads (it duplicates DFD's work) while CFD's misprediction elimination survives")
			return err
		},
	})
}
