package harness

import (
	"fmt"
	"io"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
	"cfd/internal/stats"
	"cfd/internal/xform"
)

func init() {
	registerExp(&Experiment{
		ID:    "ablation-ifconv",
		Title: "If-conversion vs CFD across control-dependent region sizes (the Fig 6c class boundary)",
		Run:   runIfConvCrossover,
	})
}

// runIfConvCrossover reproduces the paper's classification argument
// quantitatively: small CD regions (hammocks) belong to if-conversion,
// large ones to CFD (§II-B). A compute-only kernel with an unpredictable
// LCG-derived predicate is swept across CD sizes and transformed both
// ways by the automatic pass. All (CD size × scheme) simulations are
// submitted up front and fan out across the worker pool; the rows are
// assembled in sweep order from the completed results.
func runIfConvCrossover(r *Runner, w io.Writer) error {
	n := int64(40000 * r.Scale)
	if n < 2000 {
		n = 2000
	}
	cdSizes := []int{1, 4, 10, 18, 26}
	// Build the 3 program variants per CD size serially (cheap), then run
	// all 15 simulations concurrently.
	var progs []*prog.Program
	for _, cd := range cdSizes {
		k := crossoverKernel(n, cd)
		base, err := k.Base()
		if err != nil {
			return err
		}
		ic, err := k.IfConvert()
		if err != nil {
			return err
		}
		cfdP, err := k.CFD(xform.ParamsFrom(config.SandyBridge()), true)
		if err != nil {
			return err
		}
		progs = append(progs, base, ic, cfdP)
	}
	cycles, err := mapConcurrently(r.jobs(), progs, func(p *prog.Program) (uint64, error) {
		core, err := pipeline.New(config.SandyBridge(), p, nil)
		if err != nil {
			return 0, err
		}
		if err := core.Run(0); err != nil {
			return 0, err
		}
		return core.Stats.Cycles, nil
	})
	if err != nil {
		return err
	}

	t := stats.NewTable("speedup vs base per CD size (compute-only kernel, ~50% taken)",
		"CD insts", "if-conversion", "cfd (VQ)", "winner")
	for i, cd := range cdSizes {
		bc, icc, cc := cycles[3*i], cycles[3*i+1], cycles[3*i+2]
		icSp := float64(bc) / float64(icc)
		cfdSp := float64(bc) / float64(cc)
		winner := "if-conversion"
		if cfdSp > icSp {
			winner = "cfd"
		}
		t.Add(fmt.Sprint(2+cd), stats.Ratio(icSp), stats.Ratio(cfdSp), winner)
	}
	fmt.Fprintln(w, t)
	_, err = fmt.Fprintln(w, "expected shape: if-conversion wins small CD regions (hammock class), CFD wins large ones (separable class) — the §II-B classification boundary")
	return err
}

// crossoverKernel mirrors the lcg kernel of the xform tests: predicate
// from a linear-congruential register, CD of parameterized size.
func crossoverKernel(n int64, cdFiller int) *xform.Kernel {
	cd := []isa.Inst{
		{Op: isa.SHRI, Rd: 9, Rs1: 7, Imm: 3},
		{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
	}
	for i := 0; i < cdFiller; i++ {
		switch i % 3 {
		case 0:
			cd = append(cd, isa.Inst{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 9})
		case 1:
			cd = append(cd, isa.Inst{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2})
		case 2:
			cd = append(cd, isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11})
		}
	}
	return &xform.Kernel{
		Name: "crossover",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 7, Rs1: 0, Imm: 88172645463325252},
			{Op: isa.ADDI, Rd: 15, Rs1: 0, Imm: 6364136223846793},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
		},
		Slice: []isa.Inst{
			{Op: isa.MUL, Rd: 7, Rs1: 7, Rs2: 15},
			{Op: isa.ADDI, Rd: 7, Rs1: 7, Imm: 1442695040888963},
			{Op: isa.SHRI, Rd: 8, Rs1: 7, Imm: 63},
		},
		CD:      cd,
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23, 24, 25, 26},
		NoAlias: true,
		Note:    "crossover predicate",
	}
}
