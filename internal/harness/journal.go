// Journal glue: how a Runner narrates its sweeps into the structured
// event journal (internal/obs/journal).
//
// Every event is emitted through the journal's buffered bus, so the
// sweep workers never wait on disk I/O; with a nil Journal the whole
// layer costs one nil test per call and allocates nothing (pinned by
// TestNilJournalAllocFree). Spec-level events are sweep-scoped: bare
// Run/RunCtx calls outside a Sweep — the serial assembly phase of an
// experiment, replaying thousands of memoized lookups — are deliberately
// not journaled, so the journal records the campaign's work, not its
// bookkeeping.
package harness

import (
	"context"
	"errors"
	"sync/atomic"

	"cfd/internal/fault"
	"cfd/internal/obs/journal"
)

// runInfo says how one runCtx call materialized its result: served by
// the in-memory cache, restored from the persistent store, or simulated
// fresh (and, fresh only, whether the completion persisted to the
// store). It feeds both the journal and ProgressEvent.
type runInfo struct {
	cacheHit bool
	storeHit bool
	stored   bool
}

// sweepScope journals one Sweep's lifecycle. A nil scope (journal
// disabled) is a no-op on every method.
type sweepScope struct {
	r     *Runner
	seq   uint64
	total int

	ok        atomic.Int64
	failed    atomic.Int64
	storeHits atomic.Int64
}

// beginSweep opens a journal scope for a sweep of total specs, or nil
// when no journal is attached.
func (r *Runner) beginSweep(total, jobs int) *sweepScope {
	if r.Journal == nil {
		return nil
	}
	s := &sweepScope{r: r, seq: r.sweepSeq.Add(1), total: total}
	r.Journal.Emit(journal.Event{Type: journal.SweepStart, Sweep: s.seq, Total: total, Jobs: jobs,
		Manifest: r.ManifestDigest})
	return s
}

// id returns the sweep's journal sequence number (0 when not journaled).
func (s *sweepScope) id() uint64 {
	if s == nil {
		return 0
	}
	return s.seq
}

// submit records a worker picking up one spec.
func (s *sweepScope) submit(rs RunSpec) {
	if s == nil {
		return
	}
	s.r.Journal.Emit(journal.Event{
		Type: journal.SpecSubmit, Sweep: s.seq, Key: rs.key(),
		Workload: rs.Workload, Variant: string(rs.Variant), Config: rs.Config.Name,
	})
}

// done records one spec's terminal outcome. Context-cancellation errors
// are not terminal — the spec never completed — so they are skipped; the
// sweep_finish counts then show the shortfall against total.
func (s *sweepScope) done(rs RunSpec, res *Result, err error, info runInfo) {
	if s == nil {
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	key := rs.key()
	ev := journal.Event{
		Type: journal.SpecDone, Sweep: s.seq, Key: key,
		Workload: rs.Workload, Variant: string(rs.Variant), Config: rs.Config.Name,
		CacheHit: info.cacheHit, StoreHit: info.storeHit, Stored: info.stored,
	}
	if info.storeHit {
		s.storeHits.Add(1)
	}
	if s.r.Store != nil {
		if skey, ok := s.r.storeKey(rs, key); ok {
			ev.StoreKey = skey
		}
	}
	if err == nil {
		s.ok.Add(1)
		ev.Status = "ok"
		if res != nil {
			ev.Cycles = res.Stats.Cycles
			ev.Retired = res.Stats.Retired
			if res.Stats.Cycles > 0 {
				ev.IPC = float64(res.Stats.Retired) / float64(res.Stats.Cycles)
			}
		}
	} else {
		s.failed.Add(1)
		ev.Status = "fault"
		ev.Error = err.Error()
		if f, ok := fault.As(err); ok {
			ev.Fault = f.Kind.String()
			if f.Kind == fault.WatchdogExpiry {
				s.r.Journal.Emit(journal.Event{
					Type: journal.WatchdogExpiry, Sweep: s.seq, Key: key,
					Workload: rs.Workload, Variant: string(rs.Variant), Config: rs.Config.Name,
				})
			}
		}
	}
	s.r.Journal.Emit(ev)
}

// finish closes the scope with the sweep's terminal counts, including
// how many completions were resume skips restored from the store.
func (s *sweepScope) finish() {
	if s == nil {
		return
	}
	s.r.Journal.Emit(journal.Event{
		Type: journal.SweepFinish, Sweep: s.seq, Total: s.total,
		Completed: int(s.ok.Load()), Failed: int(s.failed.Load()),
		ResumeSkips: int(s.storeHits.Load()),
	})
}
