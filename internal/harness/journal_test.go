package harness

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"cfd/internal/config"
	"cfd/internal/obs/journal"
	"cfd/internal/workload"
)

func journalSpecs() []RunSpec {
	return []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "bzip2like", Variant: workload.CFD, Config: config.SandyBridge()},
		{Workload: "soplexlike", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "soplexlike", Variant: workload.CFD, Config: config.SandyBridge()},
	}
}

// sweepJournal runs one journaled sweep and returns the parsed events.
func sweepJournal(t *testing.T, dir string, jobs int, store bool, specs []RunSpec) []journal.Event {
	t.Helper()
	path := filepath.Join(dir, "t.journal")
	j, err := journal.Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0.02)
	r.Jobs = jobs
	r.Journal = j
	if store {
		st, err := OpenStore(filepath.Join(dir, "store"))
		if err != nil {
			t.Fatal(err)
		}
		r.Store = st
	}
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Validate(events); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestJournalGoldenAcrossJobs is the golden pin: the canonical sorted
// replay of a fixed sweep's journal is byte-identical between -jobs 1
// and -jobs 8, with duplicate specs exercising the cache-hit replay
// ordering.
func TestJournalGoldenAcrossJobs(t *testing.T) {
	specs := append(journalSpecs(), journalSpecs()[0], journalSpecs()[2]) // dups → cache hits
	replay := func(jobs int) []byte {
		events := sweepJournal(t, t.TempDir(), jobs, false, specs)
		var buf bytes.Buffer
		if err := journal.Write(&buf, journal.SortedReplay(events)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	r1 := replay(1)
	r8 := replay(8)
	if !bytes.Equal(r1, r8) {
		t.Fatalf("sorted replay differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", r1, r8)
	}
}

// TestJournalSweepEvents pins the event stream's shape and its agreement
// with the Runner's own metrics.
func TestJournalSweepEvents(t *testing.T) {
	specs := journalSpecs()
	events := sweepJournal(t, t.TempDir(), 4, false, specs)

	sum, err := journal.Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sweeps != 1 || sum.Submitted != len(specs) || sum.Done != len(specs) || sum.OK != len(specs) {
		t.Fatalf("summary = %+v", sum)
	}
	var starts int
	var finish *journal.Event
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case journal.SpecStart:
			starts++
		case journal.SweepFinish:
			finish = ev
		case journal.SpecDone:
			if ev.Status != "ok" || ev.Cycles == 0 || ev.IPC <= 0 {
				t.Errorf("spec_done missing counters: %+v", ev)
			}
			if ev.Stored || ev.StoreHit {
				t.Errorf("store flags set without a store: %+v", ev)
			}
		}
	}
	if starts != len(specs) {
		t.Errorf("%d spec_start events for %d fresh simulations", starts, len(specs))
	}
	if finish == nil || finish.Completed != len(specs) || finish.Failed != 0 || finish.ResumeSkips != 0 {
		t.Fatalf("sweep_finish = %+v", finish)
	}
}

// TestJournalResume pins the resume story: a second sweep over the same
// store journals every completion as a store hit, counts them as resume
// skips, and the first run's journal records every completion as stored
// with its entry actually on disk (the invariant the CI resume gate
// validates after a SIGKILL).
func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	specs := journalSpecs()

	first := sweepJournal(t, dir, 2, true, specs)
	storeDir := filepath.Join(dir, "store")
	keys := journal.CompletedKeys(first, true)
	if len(keys) != len(specs) {
		t.Fatalf("first run stored %d completions, want %d", len(keys), len(specs))
	}
	st, err := OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if _, ok, err := st.Get(k); err != nil || !ok {
			t.Fatalf("journaled stored key %q not in store (ok=%v err=%v)", k, ok, err)
		}
	}

	// Resume: fresh runner, same store, new journal.
	path := filepath.Join(dir, "resume.journal")
	j, err := journal.Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0.02)
	r.Jobs = 2
	r.Journal = j
	r.Store = st
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := journal.Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.StoreHits != len(specs) {
		t.Fatalf("resumed sweep journaled %d store hits, want %d", sum.StoreHits, len(specs))
	}
	for _, ev := range events {
		switch ev.Type {
		case journal.SpecStart:
			t.Errorf("resumed sweep journaled a fresh simulation start: %+v", ev)
		case journal.SweepFinish:
			if ev.ResumeSkips != len(specs) {
				t.Errorf("sweep_finish resumeSkips = %d, want %d", ev.ResumeSkips, len(specs))
			}
		case journal.SpecDone:
			if !ev.StoreHit || ev.Stored {
				t.Errorf("resumed spec_done flags: %+v", ev)
			}
			if ev.StoreKey == "" {
				t.Errorf("resumed spec_done without store key: %+v", ev)
			}
		}
	}
}

// TestJournalFaultEvents pins the failure taxonomy: a watchdog-expired
// spec journals a fault spec_done plus a watchdog_expiry marker, and is
// never recorded as stored.
func TestJournalFaultEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	j, err := journal.Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0.02)
	r.Journal = j
	r.Store = st
	r.KeepGoing = true
	r.MaxCycles = 100 // every run trips the watchdog
	specs := journalSpecs()[:2]
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := journal.Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Faults != len(specs) {
		t.Fatalf("journaled %d faults, want %d", sum.Faults, len(specs))
	}
	watchdogs := 0
	for _, ev := range events {
		switch ev.Type {
		case journal.WatchdogExpiry:
			watchdogs++
		case journal.SpecDone:
			if ev.Status != "fault" || ev.Fault == "" || ev.Error == "" {
				t.Errorf("fault spec_done incomplete: %+v", ev)
			}
			if ev.Stored {
				t.Errorf("watchdog fault recorded as stored: %+v", ev)
			}
		}
	}
	if watchdogs != len(specs) {
		t.Errorf("%d watchdog_expiry events, want %d", watchdogs, len(specs))
	}
	if len(journal.CompletedKeys(events, true)) != 0 {
		t.Error("watchdog faults must not journal stored completions")
	}
}

// TestBareRunNotJournaled pins the scoping rule: Run/RunCtx outside a
// Sweep — the experiments' serial assembly phase — emit no spec events.
func TestBareRunNotJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := journal.Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0.02)
	r.Journal = j
	if _, err := r.Run(journalSpecs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 { // header + trailer only
		t.Fatalf("bare Run journaled %d events, want 2: %+v", len(events), events)
	}
}

// TestNilJournalAllocFree pins the disabled-journal overhead contract:
// with no journal attached, the memoized per-spec path allocates exactly
// what it did before journaling existed — the spec-key string — and the
// journal layer adds zero allocations to it.
func TestNilJournalAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin only holds in normal builds")
	}
	r := NewRunner(0.02)
	rs := journalSpecs()[0]
	if _, err := r.Run(rs); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base := testing.AllocsPerRun(200, func() {
		_ = rs.key()
	})
	got := testing.AllocsPerRun(200, func() {
		if _, err := r.RunCtx(ctx, rs); err != nil {
			t.Fatal(err)
		}
	})
	if got > base {
		t.Errorf("cache-hit RunCtx with nil journal allocates %.0f/op, key construction alone is %.0f/op", got, base)
	}
}
