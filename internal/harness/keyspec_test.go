package harness

import (
	"fmt"
	"reflect"
	"testing"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// TestRunSpecKeyCoversEveryField pins the cache/store identity contract:
// every field of RunSpec — recursively, down to every leaf of the embedded
// Core configuration — must change key(). A future field that is added to
// RunSpec (or to config.Core, or to any struct it embeds) but forgotten by
// key() would silently alias distinct specs to one cache/store entry and
// serve wrong results; this test makes that impossible to miss, and fails
// loudly on field kinds the mutator does not yet know how to perturb.
func TestRunSpecKeyCoversEveryField(t *testing.T) {
	base := RunSpec{
		Workload: "soplexlike",
		Variant:  workload.Base,
		Config:   config.SandyBridge(),
	}
	baseKey := base.key()

	spec := base
	v := reflect.ValueOf(&spec).Elem()
	leaves := 0
	mutateEachLeaf(t, v, "RunSpec", func(path string) {
		leaves++
		if got := spec.key(); got == baseKey {
			t.Errorf("mutating %s does not change key(): distinct specs would alias", path)
		}
	})
	if spec.key() != baseKey {
		t.Fatal("mutator failed to restore the spec; the walk is unsound")
	}
	// Sanity floor: RunSpec's own 7 fields plus the nested configuration
	// must contribute dozens of leaves; a collapsed walk means the test
	// went vacuous.
	if leaves < 30 {
		t.Fatalf("walked only %d leaf fields; expected the full nested config", leaves)
	}
}

// mutateEachLeaf walks every leaf field of v, and for each one: perturbs
// it, calls check with the field's path, and restores the original value.
// Unexported or unsupported fields fail the test — they could not
// participate in the key's config digest, so they must not exist in
// key-relevant structs without extending key() and this mutator together.
func mutateEachLeaf(t *testing.T, v reflect.Value, path string, check func(path string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		st := v.Type()
		for i := 0; i < v.NumField(); i++ {
			f := st.Field(i)
			if f.PkgPath != "" {
				t.Fatalf("%s.%s is unexported: invisible to the key's config digest; export it or move it out of the spec", path, f.Name)
				continue
			}
			mutateEachLeaf(t, v.Field(i), path+"."+f.Name, check)
		}
	case reflect.String:
		old := v.String()
		v.SetString(old + "~mutated")
		check(path)
		v.SetString(old)
	case reflect.Bool:
		old := v.Bool()
		v.SetBool(!old)
		check(path)
		v.SetBool(old)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := v.Int()
		v.SetInt(old + 1)
		check(path)
		v.SetInt(old)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := v.Uint()
		v.SetUint(old + 1)
		check(path)
		v.SetUint(old)
	case reflect.Float32, reflect.Float64:
		old := v.Float()
		v.SetFloat(old + 0.5)
		check(path)
		v.SetFloat(old)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			mutateEachLeaf(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i), check)
		}
	default:
		t.Fatalf("%s has kind %s: the key mutator cannot perturb it — extend mutateEachLeaf and make sure key() covers it", path, v.Kind())
	}
}
