package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cfd/internal/manifest"
)

// The testdata/specsets goldens were captured from the hand-written
// enumeration loops the embedded manifests replaced: each file is the
// sorted spec-key list one experiment's legacy Prefetch swept. These
// tests are the refactor's safety net — the manifests must reproduce
// those sets byte for byte, forever.

// nonManifestExps pins the experiments that legitimately carry no
// manifest: classification studies, static tables, and custom-program
// ablations that do not sweep RunSpecs.
var nonManifestExps = map[string]bool{
	"fig6":            true,
	"table1":          true,
	"table2":          true,
	"fig17":           true,
	"table5":          true,
	"table6":          true,
	"ablation-xform":  true,
	"ablation-ifconv": true,
}

// TestManifestCoverage: every experiment either embeds a manifest or is
// explicitly pinned as manifest-free — a new experiment cannot silently
// opt out of declarative enumeration.
func TestManifestCoverage(t *testing.T) {
	for _, e := range AllExperiments() {
		switch {
		case e.Manifest == nil && !nonManifestExps[e.ID]:
			t.Errorf("experiment %s has no manifest and is not in nonManifestExps", e.ID)
		case e.Manifest != nil && nonManifestExps[e.ID]:
			t.Errorf("experiment %s is pinned manifest-free but embeds a manifest", e.ID)
		}
	}
	for id := range nonManifestExps {
		if _, ok := ByID(id); !ok {
			t.Errorf("nonManifestExps pins unknown experiment %q", id)
		}
	}
}

// TestManifestSpecsMatchLegacyGoldens: each embedded manifest expands to
// exactly the spec-key set the legacy enumeration loops produced.
// Regenerate with UPDATE_SPECSETS=1 only for intentional changes to an
// experiment's sweep.
func TestManifestSpecsMatchLegacyGoldens(t *testing.T) {
	covered := map[string]bool{}
	for _, e := range AllExperiments() {
		if e.Manifest == nil {
			continue
		}
		covered[e.ID] = true
		t.Run(e.ID, func(t *testing.T) {
			specs, err := e.Specs()
			if err != nil {
				t.Fatalf("Specs: %v", err)
			}
			var b strings.Builder
			for _, sp := range specs {
				b.WriteString(sp.Key())
				b.WriteByte('\n')
			}
			got := b.String()
			path := filepath.Join("testdata", "specsets", e.ID+".keys")
			if os.Getenv("UPDATE_SPECSETS") != "" {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (run with UPDATE_SPECSETS=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("manifest expansion diverges from legacy golden %s\ngot %d specs, want %d\n%s",
					path, len(specs), strings.Count(string(want), "\n"),
					diffLines(got, string(want)))
			}
		})
	}
	// Every golden must belong to a live manifest experiment, so a renamed
	// experiment cannot leave a stale golden silently passing.
	ents, err := os.ReadDir(filepath.Join("testdata", "specsets"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		id := strings.TrimSuffix(ent.Name(), ".keys")
		if !covered[id] {
			t.Errorf("stale golden testdata/specsets/%s: no manifest experiment %q", ent.Name(), id)
		}
	}
}

// TestManifestExpansionDeterministic: double expansion of every embedded
// manifest is byte-identical — the property that makes spec-key lists
// valid goldens and store identities.
func TestManifestExpansionDeterministic(t *testing.T) {
	for _, e := range AllExperiments() {
		if e.Manifest == nil {
			continue
		}
		a, err := e.Specs()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		b, err := e.Specs()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: expansion lengths differ: %d vs %d", e.ID, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: spec %d differs between expansions", e.ID, i)
			}
		}
		if dig1, dig2 := e.Manifest.Digest(), e.Manifest.Digest(); dig1 != dig2 {
			t.Errorf("%s: manifest digest not stable: %s vs %s", e.ID, dig1, dig2)
		}
	}
}

// TestSpecMirrorsRunSpec: manifest.Spec and harness.RunSpec must stay
// field-identical (same names, same types, same order) — the struct
// conversion in SpecsFromManifest depends on it, and the key formats
// must agree.
func TestSpecMirrorsRunSpec(t *testing.T) {
	mt := reflect.TypeOf(manifest.Spec{})
	rt := reflect.TypeOf(RunSpec{})
	if mt.NumField() != rt.NumField() {
		t.Fatalf("field count: manifest.Spec has %d, RunSpec has %d", mt.NumField(), rt.NumField())
	}
	for i := 0; i < mt.NumField(); i++ {
		mf, rf := mt.Field(i), rt.Field(i)
		if mf.Name != rf.Name || mf.Type != rf.Type {
			t.Errorf("field %d: manifest.Spec has %s %s, RunSpec has %s %s",
				i, mf.Name, mf.Type, rf.Name, rf.Type)
		}
	}
}

// diffLines renders the first few line-level differences between two
// sorted key lists.
func diffLines(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	var b strings.Builder
	n := 0
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g == w {
			continue
		}
		fmt.Fprintf(&b, "  line %d:\n    got  %q\n    want %q\n", i+1, g, w)
		if n++; n >= 5 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
