// Embedded-manifest helpers: the experiments declare their spec sets as
// manifest sweeps (see Experiment.Manifest), and these constructors keep
// those declarations as terse as the enumeration loops they replaced.
// Derived configurations (window scalings, depth sweeps, policy studies)
// are declared by diffing the constructor output against the baseline —
// manifest.ConfigSetFrom — so the mutation sets match the config package
// field for field by construction.
package harness

import (
	"cfd/internal/config"
	"cfd/internal/manifest"
)

// expManifest stamps one experiment's embedded manifest.
func expManifest(name string, sweeps ...manifest.Sweep) *manifest.Manifest {
	return manifest.New(name, sweeps...)
}

// byNames selects workloads by exact name.
func byNames(names ...string) manifest.Selector {
	return manifest.Selector{Names: names}
}

// implementing selects every workload implementing variant v.
func implementing(v string) manifest.Selector {
	return manifest.Selector{HasVariant: v}
}

// variants builds plain variant expressions from names.
func variants(vs ...string) []manifest.VariantExpr {
	out := make([]manifest.VariantExpr, len(vs))
	for i, v := range vs {
		out[i] = manifest.VariantExpr{Variant: v}
	}
	return out
}

// mutationsFor declares each config as its mutation set against the
// paper's baseline.
func mutationsFor(cfgs ...config.Core) []manifest.ConfigSet {
	base := config.SandyBridge()
	out := make([]manifest.ConfigSet, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = manifest.ConfigSetFrom(base, cfg)
	}
	return out
}
