package harness

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cfd/internal/fault"
	"cfd/internal/obs"
)

// ProgressEvent reports one completed spec during a Sweep. Completed/Total
// count within that sweep; Err is non-nil for failed specs (with KeepGoing,
// the sweep continues past them). CacheHit/StoreHit say how the result
// materialized — served from the in-memory cache, restored from the
// persistent store, or (neither set) simulated fresh — so listeners can
// base rate estimates on real simulations only.
type ProgressEvent struct {
	Spec      RunSpec
	Err       error
	Completed int
	Total     int
	CacheHit  bool
	StoreHit  bool
}

// progressReporter builds the per-sweep completion callback: a serialized
// counter feeding OnProgress, or a no-op when no listener is registered.
func (r *Runner) progressReporter(total int) func(RunSpec, error, runInfo) {
	if r.OnProgress == nil {
		return func(RunSpec, error, runInfo) {}
	}
	var mu sync.Mutex
	completed := 0
	return func(rs RunSpec, err error, info runInfo) {
		mu.Lock()
		defer mu.Unlock()
		completed++
		r.OnProgress(ProgressEvent{
			Spec: rs, Err: err, Completed: completed, Total: total,
			CacheHit: info.cacheHit, StoreHit: info.storeHit,
		})
	}
}

// harness trace rows: a single "sweep" track under the harness process.
const (
	harnessTracePID = 1
	harnessTraceTID = 1
)

// Trace renders every completed run as a Chrome/Perfetto span on a virtual
// timeline: runs are laid end to end in spec-key order, each span as wide
// as the run's simulated cycles. Wall-clock plays no part, so the trace is
// byte-identical for any Jobs setting. Spans carry the run's cycles, IPC,
// and per-spec cache-hit count; failed runs render on the "fault" category
// with the fault kind.
func (r *Runner) Trace() *obs.Trace {
	type snap struct {
		e    *cacheEntry
		hits uint64
	}
	r.mu.Lock()
	entries := make(map[string]snap, len(r.cache))
	for k, e := range r.cache {
		entries[k] = snap{e: e, hits: e.hits}
	}
	r.mu.Unlock()
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tr := obs.NewTrace()
	tr.NameProcess(harnessTracePID, "cfd experiment harness")
	tr.NameThread(harnessTracePID, harnessTraceTID, "sweep (virtual time)")
	var ts uint64
	for _, k := range keys {
		s := entries[k]
		select {
		case <-s.e.done:
		default: // still simulating
			continue
		}
		spec := s.e.spec
		name := fmt.Sprintf("%s/%s @ %s", spec.Workload, spec.Variant, spec.Config.Name)
		args := map[string]interface{}{"cacheHits": s.hits}
		cat := "run"
		dur := uint64(1)
		if s.e.err != nil {
			cat = "fault"
			kind := "error"
			var f *fault.Fault
			if errors.As(s.e.err, &f) {
				kind = f.Kind.String()
			}
			args["fault"] = kind
		} else {
			st := &s.e.res.Stats
			dur = st.Cycles
			args["cycles"] = st.Cycles
			args["ipc"] = float64(st.Retired) / float64(st.Cycles)
		}
		tr.Span(harnessTracePID, harnessTraceTID, name, cat, ts, dur, args)
		ts += dur
	}
	return tr
}

// RegisterMetrics registers the Runner's cache counters as pull-based
// probes. No-op on a nil registry.
func (r *Runner) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterProbe("harness.lookups", obs.ProbeFunc(func() float64 { return float64(r.lookups.Load()) }))
	reg.RegisterProbe("harness.simulations", obs.ProbeFunc(func() float64 { return float64(r.simulations.Load()) }))
	reg.RegisterProbe("harness.cache_hits", obs.ProbeFunc(func() float64 { return float64(r.cacheHits.Load()) }))
}
