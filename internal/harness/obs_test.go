package harness

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"cfd/internal/config"
	"cfd/internal/obs"
	"cfd/internal/workload"
)

func obsSpecs() []RunSpec {
	return []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge(), SampleEvery: 256},
		{Workload: "bzip2like", Variant: workload.CFD, Config: config.SandyBridge(), SampleEvery: 256},
		{Workload: "soplexlike", Variant: workload.Base, Config: config.SandyBridge(), SampleEvery: 256},
	}
}

func TestRunnerSampledResult(t *testing.T) {
	r := NewRunner(0.02)
	rs := obsSpecs()[1] // CFD variant: all three queues in play
	res, err := r.Run(rs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeseries == nil || len(res.Timeseries.Samples) == 0 {
		t.Fatal("sampled run returned no time series")
	}
	if res.Timeseries.Every != rs.SampleEvery {
		t.Errorf("series interval %d, spec asked %d", res.Timeseries.Every, rs.SampleEvery)
	}
	if res.Occupancy == nil {
		t.Fatal("sampled run returned no occupancy histograms")
	}
	var sum uint64
	for _, c := range res.Occupancy.BQ.Counts {
		sum += c
	}
	if sum != res.Stats.Cycles {
		t.Errorf("BQ occupancy counts sum to %d, run took %d cycles", sum, res.Stats.Cycles)
	}
	if res.Occupancy.BQ.Max == 0 {
		t.Error("CFD run never occupied the BQ")
	}

	// The unsampled spec is a distinct cache key and carries no telemetry.
	plain := rs
	plain.SampleEvery = 0
	pres, err := r.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Timeseries != nil || pres.Occupancy != nil {
		t.Error("unsampled run carries telemetry sections")
	}
	if pres.Stats.Cycles != res.Stats.Cycles {
		t.Errorf("sampling changed the simulation: %d vs %d cycles", pres.Stats.Cycles, res.Stats.Cycles)
	}
	if m := r.Metrics(); m.Simulations != 2 {
		t.Errorf("expected 2 distinct simulations (sampled + unsampled), got %d", m.Simulations)
	}
}

// TestSampledSweepDeterministic: telemetry sections and the harness trace
// are byte-identical whatever Jobs is set to.
func TestSampledSweepDeterministic(t *testing.T) {
	encode := func(jobs int) ([]*Result, []byte) {
		r := NewRunner(0.02)
		r.Jobs = jobs
		if _, err := r.Sweep(context.Background(), obsSpecs()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Trace().Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return r.Results(), buf.Bytes()
	}
	res1, tr1 := encode(1)
	res8, tr8 := encode(8)
	if len(res1) != len(res8) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(res8))
	}
	for i := range res1 {
		if !reflect.DeepEqual(res1[i].Timeseries, res8[i].Timeseries) {
			t.Errorf("result %d: time series differ between -jobs=1 and -jobs=8", i)
		}
		if !reflect.DeepEqual(res1[i].Occupancy, res8[i].Occupancy) {
			t.Errorf("result %d: occupancy differs between -jobs=1 and -jobs=8", i)
		}
	}
	if !bytes.Equal(tr1, tr8) {
		t.Error("harness Perfetto trace differs between -jobs=1 and -jobs=8")
	}
}

func TestHarnessTrace(t *testing.T) {
	r := NewRunner(0.02)
	specs := obsSpecs()
	if _, err := r.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	// Re-run one spec so its span shows a cache hit.
	if _, err := r.Run(specs[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Trace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("harness trace does not validate: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"cfd experiment harness"`, `"sweep (virtual time)"`,
		`"bzip2like/base @ sandybridge-like"`, `"cacheHits": 1`, `"ipc"`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace missing %q in:\n%.2000s", want, out)
		}
	}
}

func TestSweepProgress(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		r := NewRunner(0.02)
		r.Jobs = jobs
		var mu sync.Mutex
		var events []ProgressEvent
		r.OnProgress = func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
		specs := obsSpecs()
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			t.Fatal(err)
		}
		if len(events) != len(specs) {
			t.Fatalf("jobs=%d: %d progress events for %d specs", jobs, len(events), len(specs))
		}
		for i, ev := range events {
			if ev.Completed != i+1 || ev.Total != len(specs) {
				t.Errorf("jobs=%d: event %d = %d/%d, want %d/%d",
					jobs, i, ev.Completed, ev.Total, i+1, len(specs))
			}
			if ev.Err != nil {
				t.Errorf("jobs=%d: unexpected failure for %s: %v", jobs, ev.Spec.Workload, ev.Err)
			}
		}
	}
}

// TestSweepProgressCompleteness pins OnProgress under parallelism:
// every submitted spec is observed exactly once (duplicates included),
// the serialized Completed counter covers 1..N exactly, and the
// cache-hit flags agree with the Runner's own metrics.
func TestSweepProgressCompleteness(t *testing.T) {
	base := obsSpecs()
	specs := append(append([]RunSpec{}, base...), base[0], base[1]) // dups → cache hits
	for _, jobs := range []int{1, 8} {
		r := NewRunner(0.02)
		r.Jobs = jobs
		var mu sync.Mutex
		var events []ProgressEvent
		r.OnProgress = func(ev ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			t.Fatal(err)
		}
		if len(events) != len(specs) {
			t.Fatalf("jobs=%d: %d progress events for %d specs", jobs, len(events), len(specs))
		}
		perKey := map[string]int{}
		cacheHits := 0
		seen := map[int]bool{}
		for _, ev := range events {
			perKey[ev.Spec.key()]++
			seen[ev.Completed] = true
			if ev.Total != len(specs) {
				t.Errorf("jobs=%d: event total %d, want %d", jobs, ev.Total, len(specs))
			}
			if ev.CacheHit {
				cacheHits++
			}
			if ev.StoreHit {
				t.Errorf("jobs=%d: store hit reported without a store", jobs)
			}
		}
		for i := 1; i <= len(specs); i++ {
			if !seen[i] {
				t.Errorf("jobs=%d: no event with Completed=%d", jobs, i)
			}
		}
		for _, rs := range specs {
			perKey[rs.key()]--
		}
		for k, n := range perKey {
			if n != 0 {
				t.Errorf("jobs=%d: spec %s observed %+d times vs submissions", jobs, k, n)
			}
		}
		m := r.Metrics()
		if uint64(cacheHits) != m.CacheHits {
			t.Errorf("jobs=%d: %d cache-hit progress events, runner counted %d", jobs, cacheHits, m.CacheHits)
		}
		if m.Simulations != uint64(len(base)) {
			t.Errorf("jobs=%d: %d simulations, want %d", jobs, m.Simulations, len(base))
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	r := NewRunner(0.02)
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	if _, err := r.Run(obsSpecs()[0]); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["harness.lookups"] != 1 || snap["harness.simulations"] != 1 {
		t.Errorf("probe snapshot %v, want 1 lookup / 1 simulation", snap)
	}
	r.RegisterMetrics(nil) // no-op, not a panic
}
