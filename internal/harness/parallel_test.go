package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// TestSweepDeterminism is the headline contract of the parallel harness:
// the same experiment produces byte-identical output whether the
// simulations ran serially or fanned out across 8 workers.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e, _ := ByID("fig18")
	outputs := make([]string, 2)
	for i, jobs := range []int{1, 8} {
		r := NewRunner(0.05)
		r.Jobs = jobs
		var buf bytes.Buffer
		if err := e.Run(r, &buf); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		outputs[i] = buf.String()
	}
	if outputs[0] != outputs[1] {
		t.Errorf("fig18 output differs between -jobs 1 and -jobs 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			outputs[0], outputs[1])
	}
}

// TestRunIsReproducible runs a set of specs on two independent runners and
// requires identical Stats — simulation must be a pure function of the
// spec and scale.
func TestRunIsReproducible(t *testing.T) {
	specs := []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "soplexlike", Variant: workload.CFD, Config: config.SandyBridge()},
		{Workload: "astar2like", Variant: workload.CFDBQTQ, Config: config.SandyBridge()},
		{Workload: "mcflike", Variant: workload.DFD, Config: config.SandyBridge()},
	}
	a, b := NewRunner(0.02), NewRunner(0.02)
	a.Jobs, b.Jobs = 1, 4
	for _, rs := range specs {
		ra, err := a.Run(rs)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(rs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ra.Stats, rb.Stats) {
			t.Errorf("%s/%s: stats differ between independent runners", rs.Workload, rs.Variant)
		}
	}
}

// TestRunnerSingleflight hammers one spec from many goroutines: every
// caller must get the same memoized *Result (one simulation, not eight).
func TestRunnerSingleflight(t *testing.T) {
	r := NewRunner(0.02)
	rs := RunSpec{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()}
	const callers = 8
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(rs)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer: duplicate simulation", i)
		}
	}
}

// TestSweepOrderAndDedup checks that Sweep returns results in specs order
// and that duplicate specs share one memoized result.
func TestSweepOrderAndDedup(t *testing.T) {
	r := NewRunner(0.02)
	r.Jobs = 4
	specs := []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "mummerlike", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
	}
	out, err := r.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(out), len(specs))
	}
	for i, res := range out {
		if res.Spec.Workload != specs[i].Workload {
			t.Errorf("result %d is for %s, want %s", i, res.Spec.Workload, specs[i].Workload)
		}
	}
	if out[0] != out[2] {
		t.Error("duplicate specs did not share one memoized result")
	}
}

// TestSweepFirstErrorWins: the reported error is the lowest-index failure,
// matching what the serial path would have returned.
func TestSweepFirstErrorWins(t *testing.T) {
	r := NewRunner(0.02)
	r.Jobs = 4
	specs := []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "no-such-workload", Variant: workload.Base, Config: config.SandyBridge()},
		{Workload: "also-missing", Variant: workload.Base, Config: config.SandyBridge()},
	}
	_, err := r.Sweep(context.Background(), specs)
	if err == nil {
		t.Fatal("sweep with an unknown workload succeeded")
	}
	if want := `unknown workload "no-such-workload"`; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error = %v, want the lowest-index failure (%s)", err, want)
	}
}

// TestSweepCancellation: a canceled context aborts the sweep.
func TestSweepCancellation(t *testing.T) {
	r := NewRunner(0.02)
	r.Jobs = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := make([]RunSpec, 16)
	for i := range specs {
		cfg := config.SandyBridge()
		cfg.Name = fmt.Sprintf("cancel-%d", i)
		specs[i] = RunSpec{Workload: "bzip2like", Variant: workload.Base, Config: cfg}
	}
	if _, err := r.Sweep(ctx, specs); !errors.Is(err, context.Canceled) {
		t.Errorf("sweep on a canceled context returned %v, want context.Canceled", err)
	}
}

// TestVerifyModeAcceptsWorkloads: with Verify set, runs still succeed —
// the pipeline's retired state matches the golden model.
func TestVerifyModeAcceptsWorkloads(t *testing.T) {
	r := NewRunner(0.02)
	r.Verify = true
	for _, rs := range []RunSpec{
		{Workload: "soplexlike", Variant: workload.CFDPlus, Config: config.SandyBridge()},
		{Workload: "astar2like", Variant: workload.CFDTQ, Config: config.SandyBridge()},
	} {
		if _, err := r.Run(rs); err != nil {
			t.Errorf("%s/%s: %v", rs.Workload, rs.Variant, err)
		}
	}
}

// TestErrorsAreMemoized: a failing spec stays failed without re-simulating
// (simulation is deterministic; the memoized error is the contract).
func TestErrorsAreMemoized(t *testing.T) {
	r := NewRunner(0.02)
	rs := RunSpec{Workload: "nope", Variant: workload.Base, Config: config.SandyBridge()}
	_, err1 := r.Run(rs)
	_, err2 := r.Run(rs)
	if err1 == nil || err2 == nil {
		t.Fatal("unknown workload accepted")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error changed: %v vs %v", err1, err2)
	}
}
