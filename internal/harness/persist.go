// Result persistence: the Runner's bridge to the on-disk store.
//
// The in-memory singleflight cache dies with the process; with a Store
// attached, every completed simulation — and every memoized deterministic
// typed fault — is also written through to disk as it lands, and a cache
// miss consults the store before simulating. That makes sweeps resumable:
// kill the process at any point (clean drain or SIGKILL), rerun the same
// command with the same -store directory, and only the missing or
// invalidated cells simulate again, converging to output byte-identical
// to an uninterrupted run.
//
// The store key is the RunSpec's deterministic key plus the resolved input
// size n — the one Runner-level knob (Scale) that changes a run's
// architectural work — so two sweeps at different -scale values sharing a
// store directory can never alias. Watchdog-expiry faults are never
// persisted: cycle budgets and wall-clock deadlines are Runner settings,
// not properties of the spec, so a budget-bound failure in one sweep must
// not poison an unbounded rerun. Wall-clock-dependent outcomes stay out of
// the store entirely for the same reason.
package harness

import (
	"encoding/json"
	"fmt"

	"cfd/internal/fault"
	"cfd/internal/store"
	"cfd/internal/workload"
)

// Store payload schema identification: the version of the storedRun
// payload carried inside store envelopes. Bump the version whenever the
// payload layout — or the meaning of a simulation's results — changes
// incompatibly; stale entries then quarantine and re-simulate instead of
// decoding into wrong tables.
const (
	StorePayloadSchema  = "cfd-run"
	StorePayloadVersion = 1
)

// OpenStore opens (or creates) a result store rooted at dir, bound to the
// harness's payload schema. Attach the result to Runner.Store.
func OpenStore(dir string, opts ...store.Option) (*store.Store, error) {
	return store.Open(dir, StorePayloadSchema, StorePayloadVersion, opts...)
}

// storedRun is the store payload for one run: the spec it answers, and
// exactly one of a successful result or a deterministic typed fault.
type storedRun struct {
	Spec   RunSpec      `json:"spec"`
	Result *Result      `json:"result,omitempty"`
	Fault  *storedFault `json:"fault,omitempty"`
}

// storedFault is the persistable image of a memoized failure: the typed
// fault's kind, resolved message, and machine-state snapshot, plus the
// full wrapped error text so a rehydrated failure reports exactly like
// the original. Panic stacks are deliberately dropped — they are excluded
// from Error() precisely because they are nondeterministic.
type storedFault struct {
	Kind    uint8          `json:"kind"`
	Msg     string         `json:"msg"`
	Message string         `json:"message"`
	Snap    fault.Snapshot `json:"snapshot"`
}

// storedFaultError rehydrates a persisted failure: Error() reproduces the
// original wrapped message byte for byte, and Unwrap exposes the typed
// *fault.Fault so errors.As / fault.As and the export's fault records see
// the same classification and snapshot as a fresh simulation.
type storedFaultError struct {
	msg string
	f   *fault.Fault
}

func (e *storedFaultError) Error() string { return e.msg }
func (e *storedFaultError) Unwrap() error { return e.f }

// workloadN resolves the effective input size the Runner would simulate s
// at — DefaultN scaled, floored at the minimum run length.
func (r *Runner) workloadN(s *workload.Spec) int64 {
	n := int64(float64(s.DefaultN) * r.Scale)
	if n < 256 {
		n = 256
	}
	return n
}

// storeKey derives the on-disk key for rs: the spec key extended with the
// resolved input size. ok is false when the workload is unknown — the
// spec then skips the store and lets simulate report the error.
func (r *Runner) storeKey(rs RunSpec, key string) (string, bool) {
	s, ok := workload.ByName(rs.Workload)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s|n=%d", key, r.workloadN(s)), true
}

// storeLoad consults the store for rs. ok reports whether the entry fully
// rehydrated (as a result or a memoized fault); any store miss, corrupt
// entry, decode failure, or spec mismatch degrades to ok=false and the
// caller simulates. Higher-level damage the store's envelope checks cannot
// see — a payload whose decoded spec is not rs — quarantines the entry the
// same way the store quarantines torn bytes.
func (r *Runner) storeLoad(rs RunSpec, key string) (*Result, error, bool) {
	skey, ok := r.storeKey(rs, key)
	if !ok {
		return nil, nil, false
	}
	payload, hit, err := r.Store.Get(skey)
	if err != nil || !hit {
		return nil, nil, false
	}
	var sr storedRun
	if err := json.Unmarshal(payload, &sr); err != nil {
		r.Store.Quarantine(skey, "payload decode: "+err.Error())
		return nil, nil, false
	}
	if sr.Spec != rs {
		r.Store.Quarantine(skey, fmt.Sprintf("payload spec mismatch: entry holds %s, want %s", sr.Spec.key(), rs.key()))
		return nil, nil, false
	}
	switch {
	case sr.Result != nil:
		if sr.Result.Spec != rs {
			r.Store.Quarantine(skey, fmt.Sprintf("payload result spec mismatch: result holds %s, want %s", sr.Result.Spec.key(), rs.key()))
			return nil, nil, false
		}
		return sr.Result, nil, true
	case sr.Fault != nil:
		f := &fault.Fault{Kind: fault.Kind(sr.Fault.Kind), Msg: sr.Fault.Msg, Snap: sr.Fault.Snap}
		if sr.Fault.Message == f.Error() {
			return nil, f, true
		}
		return nil, &storedFaultError{msg: sr.Fault.Message, f: f}, true
	default:
		r.Store.Quarantine(skey, "payload carries neither result nor fault")
		return nil, nil, false
	}
}

// storePersist writes a completed run through to the store and reports
// whether the entry actually landed on disk. Successful results always
// persist; failures persist only when they are deterministic typed
// faults (watchdog expiries are budget-dependent and untyped errors
// carry environment-dependent causes — both re-simulate on resume
// instead). Persistence is best-effort: a Put that still fails after
// the store's bounded retries is counted in the store metrics and the
// sweep carries on with the in-memory result. The return value feeds
// the journal's stored flag, which is why storePersist runs before the
// spec_done event is emitted: a journal line claiming stored=true is
// guaranteed to have its store entry durably renamed into place.
func (r *Runner) storePersist(rs RunSpec, key string, res *Result, runErr error) bool {
	skey, ok := r.storeKey(rs, key)
	if !ok {
		return false
	}
	sr := storedRun{Spec: rs}
	switch {
	case runErr == nil:
		sr.Result = res
	default:
		f, typed := fault.As(runErr)
		if !typed || f.Kind == fault.WatchdogExpiry {
			return false
		}
		msg := f.Msg
		if msg == "" && f.Err != nil {
			msg = f.Err.Error()
		}
		sr.Fault = &storedFault{
			Kind:    uint8(f.Kind),
			Msg:     msg,
			Message: runErr.Error(),
			Snap:    f.Snap,
		}
	}
	payload, err := json.Marshal(&sr)
	if err != nil {
		return false
	}
	return r.Store.Put(skey, payload) == nil
}
