package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cfd/internal/config"
	"cfd/internal/fault"
	"cfd/internal/workload"
)

// testStore opens a store in a temp dir bound to the harness payload.
func testStore(t *testing.T) (dir string) {
	t.Helper()
	return t.TempDir()
}

func openTestStore(t *testing.T, dir string) *Runner {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	r := NewRunner(0.02)
	r.Store = st
	return r
}

// persistSpecs is a small matrix exercising every result shape the store
// must round-trip: plain counters, per-branch maps, the MSHR histogram,
// and the sampled timeseries/occupancy sections.
func persistSpecs() []RunSpec {
	cfg := config.SandyBridge()
	return []RunSpec{
		{Workload: "soplexlike", Variant: workload.Base, Config: cfg},
		{Workload: "soplexlike", Variant: "cfd", Config: cfg},
		{Workload: "astar1like", Variant: "cfd", Config: cfg, SampleMSHR: true},
		{Workload: "mcflike", Variant: "cfd", Config: cfg, SampleEvery: 500},
	}
}

// TestStoreRoundTripFidelity: a result restored from the store must be
// deeply equal to the freshly simulated one — same counters, CPI stack,
// energy events, histograms, and telemetry sections — so every consumer
// (tables, JSON export, traces) is byte-identical whether the run was
// computed or restored.
func TestStoreRoundTripFidelity(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()

	a := openTestStore(t, dir)
	fresh, err := a.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("populate sweep: %v", err)
	}

	b := openTestStore(t, dir)
	var simulated []string
	restore := func(rs RunSpec) { simulated = append(simulated, rs.key()) }
	testOnSimulate = restore
	defer func() { testOnSimulate = nil }()
	restored, err := b.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("restore sweep: %v", err)
	}
	if len(simulated) != 0 {
		t.Fatalf("restore sweep re-simulated %v", simulated)
	}
	if m := b.Store.Metrics(); m.Hits != uint64(len(specs)) || m.Quarantines != 0 {
		t.Fatalf("restore store metrics: %+v", m)
	}
	for i := range specs {
		if !reflect.DeepEqual(fresh[i], restored[i]) {
			t.Errorf("spec %d (%s): restored result differs\nfresh:    %+v\nrestored: %+v",
				i, specs[i].key(), fresh[i], restored[i])
		}
	}
	// The runner-level metrics are identical too: a store restore counts
	// exactly like a simulation, so resumed sweeps export the same
	// per-experiment metric deltas as uninterrupted ones.
	if am, bm := a.Metrics(), b.Metrics(); am != bm {
		t.Errorf("metrics diverge: fresh %+v restored %+v", am, bm)
	}
}

// TestStoreResumesPartialSweep models the kill-and-rerun cycle: a sweep
// that completed only a prefix before dying re-runs just the missing
// cells and converges to the same results.
func TestStoreResumesPartialSweep(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()

	a := openTestStore(t, dir)
	if _, err := a.Sweep(context.Background(), specs[:2]); err != nil {
		t.Fatalf("partial sweep: %v", err)
	}

	full := openTestStore(t, t.TempDir())
	want, err := full.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("uninterrupted sweep: %v", err)
	}

	b := openTestStore(t, dir)
	var simulated int
	testOnSimulate = func(RunSpec) { simulated++ }
	defer func() { testOnSimulate = nil }()
	got, err := b.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if simulated != len(specs)-2 {
		t.Fatalf("resumed sweep simulated %d cells, want %d", simulated, len(specs)-2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed sweep results differ from uninterrupted run")
	}
}

// TestStorePersistsDeterministicFaults: a typed simulation fault lands in
// the store and a resumed run reports the identical failure without
// re-simulating — deterministic faults are never retried.
func TestStorePersistsDeterministicFaults(t *testing.T) {
	_, violator := registerCorruptWorkloads(t)
	dir := testStore(t)
	spec := RunSpec{Workload: violator, Variant: workload.Base, Config: config.SandyBridge()}

	a := openTestStore(t, dir)
	_, errA := a.Run(spec)
	if errA == nil {
		t.Fatal("violator run should fault")
	}
	if _, ok := fault.As(errA); !ok {
		t.Fatalf("expected a typed fault, got %v", errA)
	}

	b := openTestStore(t, dir)
	testOnSimulate = func(RunSpec) { t.Error("persisted fault was re-simulated") }
	defer func() { testOnSimulate = nil }()
	_, errB := b.Run(spec)
	if errB == nil {
		t.Fatal("restored run should report the memoized fault")
	}
	if errA.Error() != errB.Error() {
		t.Errorf("fault message drifted:\n fresh:    %s\n restored: %s", errA, errB)
	}
	fa, _ := fault.As(errA)
	fb, ok := fault.As(errB)
	if !ok {
		t.Fatalf("restored error lost its typed fault: %v", errB)
	}
	if fa.Kind != fb.Kind || !reflect.DeepEqual(fa.Snap, fb.Snap) {
		t.Errorf("fault kind/snapshot drifted: %+v vs %+v", fa, fb)
	}
}

// TestWatchdogFaultsAreNotPersisted: budget-bound failures are properties
// of the Runner's watchdog settings, not the spec, so they must never
// poison the store for an unbounded rerun.
func TestWatchdogFaultsAreNotPersisted(t *testing.T) {
	dir := testStore(t)
	spec := persistSpecs()[0]

	a := openTestStore(t, dir)
	a.MaxCycles = 50
	if _, err := a.Run(spec); err == nil {
		t.Fatal("50-cycle budget should expire")
	}
	if n, _ := a.Store.Len(); n != 0 {
		t.Fatalf("watchdog fault persisted: %d entries", n)
	}

	b := openTestStore(t, dir) // no budget
	if _, err := b.Run(spec); err != nil {
		t.Fatalf("unbounded rerun: %v", err)
	}
}

// TestStoreScaleDoesNotAlias: sweeps at different -scale values share a
// store directory without serving each other's results.
func TestStoreScaleDoesNotAlias(t *testing.T) {
	dir := testStore(t)
	spec := persistSpecs()[0]

	a := openTestStore(t, dir)
	resA, err := a.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	b := openTestStore(t, dir)
	b.Scale = 0.06
	resB, err := b.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := b.Store.Metrics(); m.Hits != 0 {
		t.Fatalf("different scale served from store: %+v", m)
	}
	if resA.Stats.Retired == resB.Stats.Retired {
		t.Fatal("scales 0.02 and 0.06 retired identical work; aliasing test is vacuous")
	}
	if n, _ := b.Store.Len(); n != 2 {
		t.Fatalf("store entries = %d, want 2 (one per scale)", n)
	}
}

// TestStoreCorruptEntryResimulates: a corrupted entry is quarantined and
// transparently re-simulated; the rerun result matches the original and
// heals the store.
func TestStoreCorruptEntryResimulates(t *testing.T) {
	dir := testStore(t)
	spec := persistSpecs()[0]

	a := openTestStore(t, dir)
	want, err := a.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "entries", "*.json"))
	if len(entries) != 1 {
		t.Fatalf("entries: %v", entries)
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	b := openTestStore(t, dir)
	got, err := b.Run(spec)
	if err != nil {
		t.Fatalf("run over corrupt entry: %v", err)
	}
	if m := b.Store.Metrics(); m.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", m.Quarantines)
	}
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatal("re-simulated result differs from the original")
	}
	// Healed: a third runner restores without simulating.
	c := openTestStore(t, dir)
	testOnSimulate = func(RunSpec) { t.Error("healed entry re-simulated") }
	defer func() { testOnSimulate = nil }()
	if _, err := c.Run(spec); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIOFailureDegradesGracefully: a store whose writes (or reads)
// keep failing never fails the sweep — results stay in memory and cells
// re-simulate.
func TestStoreIOFailureDegradesGracefully(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()[:2]

	r := openTestStore(t, dir)
	r.Store.InjectOpError = func(op, path string) error {
		if op == "create" || op == "read" {
			return errors.New("injected EIO")
		}
		return nil
	}
	res, err := r.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatalf("sweep must survive a dead store: %v", err)
	}
	for i, re := range res {
		if re == nil {
			t.Fatalf("spec %d lost its result", i)
		}
	}
	m := r.Store.Metrics()
	if m.PutFailures == 0 || m.GetFailures == 0 || m.Retries == 0 {
		t.Fatalf("expected counted put/get failures with retries, got %+v", m)
	}
}

// TestStoreParallelSweepShared: concurrent Runners (modeling parallel
// processes) sweeping overlapping specs against one store directory both
// complete with equal results and leave a clean, converged store. Runs
// under -race in CI.
func TestStoreParallelSweepShared(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()

	runners := [2]*Runner{openTestStore(t, dir), openTestStore(t, dir)}
	var out [2][]*Result
	var errs [2]error
	var wg sync.WaitGroup
	for i, r := range runners {
		r.Jobs = 4
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			out[i], errs[i] = r.Sweep(context.Background(), specs)
		}(i, r)
	}
	wg.Wait()
	for i := range runners {
		if errs[i] != nil {
			t.Fatalf("runner %d: %v", i, errs[i])
		}
	}
	for i := range specs {
		if !reflect.DeepEqual(out[0][i].Stats, out[1][i].Stats) {
			t.Errorf("spec %d: concurrent runners disagree", i)
		}
	}
	for i, r := range runners {
		if q := r.Store.Metrics().Quarantines; q != 0 {
			t.Errorf("runner %d quarantined %d entries under contention", i, q)
		}
	}
	if n, _ := runners[0].Store.Len(); n != len(specs) {
		t.Fatalf("store entries = %d, want %d", n, len(specs))
	}
	// The converged store restores everything for a third runner.
	c := openTestStore(t, dir)
	testOnSimulate = func(rs RunSpec) { t.Errorf("converged store re-simulated %s", rs.key()) }
	defer func() { testOnSimulate = nil }()
	if _, err := c.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDrainPersistsInFlightRuns: cancelling a sweep mid-flight (the
// SIGINT drain path) still writes every completion that was in flight to
// the store, so the resumed process picks up exactly where the drain
// stopped.
func TestStoreDrainPersistsInFlightRuns(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan RunSpec, len(specs))
	testOnSimulate = func(rs RunSpec) {
		started <- rs
		cancel() // interrupt arrives while this simulation is in flight
	}
	r := openTestStore(t, dir)
	r.Jobs = 1 // serial: exactly one spec enters simulate before the cancel lands
	_, err := r.Sweep(ctx, specs)
	testOnSimulate = nil
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v", err)
	}
	close(started)
	var inFlight []RunSpec
	for rs := range started {
		inFlight = append(inFlight, rs)
	}
	if len(inFlight) != 1 {
		t.Fatalf("expected exactly one in-flight simulation, got %d", len(inFlight))
	}
	// The in-flight completion was flushed to the store before Sweep
	// returned: that is the clean-drain guarantee.
	if n, _ := r.Store.Len(); n != 1 {
		t.Fatalf("store entries after drain = %d, want 1", n)
	}
	b := openTestStore(t, dir)
	var simulated []string
	testOnSimulate = func(rs RunSpec) { simulated = append(simulated, rs.Workload) }
	defer func() { testOnSimulate = nil }()
	if _, err := b.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(simulated) != len(specs)-1 {
		t.Fatalf("resume simulated %d cells (%v), want %d", len(simulated), simulated, len(specs)-1)
	}
}

// TestStoreKeyIncludesResolvedN pins the anti-aliasing rule directly: the
// store key must extend the spec key with the effective input size.
func TestStoreKeyIncludesResolvedN(t *testing.T) {
	spec := persistSpecs()[0]
	a, b := NewRunner(0.02), NewRunner(0.06)
	ka, okA := a.storeKey(spec, spec.key())
	kb, okB := b.storeKey(spec, spec.key())
	if !okA || !okB {
		t.Fatal("storeKey failed for a registered workload")
	}
	if ka == kb {
		t.Fatalf("store keys alias across scales: %s", ka)
	}
	if !strings.Contains(ka, "|n=") {
		t.Fatalf("store key missing resolved n: %s", ka)
	}
	if _, ok := NewRunner(1).storeKey(RunSpec{Workload: "no-such"}, "k"); ok {
		t.Fatal("storeKey accepted an unknown workload")
	}
}

// TestStoreSpecMismatchQuarantineNamesBothSpecs: when an entry's envelope
// key matches but its decoded payload holds a different spec, the
// quarantine reason names both spec keys — the one the payload holds and
// the one the lookup wanted.
func TestStoreSpecMismatchQuarantineNamesBothSpecs(t *testing.T) {
	dir := testStore(t)
	specs := persistSpecs()[:2]
	a := openTestStore(t, dir)
	if _, err := a.Sweep(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	// Cross-plant: publish spec B's payload under spec A's store key. The
	// envelope checks all pass (Put recomputes key and checksum); only the
	// payload-level spec comparison can catch it.
	skeyA, ok := a.storeKey(specs[0], specs[0].key())
	if !ok {
		t.Fatal("storeKey A")
	}
	skeyB, ok := a.storeKey(specs[1], specs[1].key())
	if !ok {
		t.Fatal("storeKey B")
	}
	payloadB, hit, err := a.Store.Get(skeyB)
	if err != nil || !hit {
		t.Fatalf("Get B: hit=%v err=%v", hit, err)
	}
	if err := a.Store.Put(skeyA, payloadB); err != nil {
		t.Fatal(err)
	}

	b := openTestStore(t, dir)
	if _, err := b.Run(specs[0]); err != nil {
		t.Fatalf("run over cross-planted entry: %v", err)
	}
	if m := b.Store.Metrics(); m.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1", m.Quarantines)
	}
	reasons, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.reason"))
	if len(reasons) != 1 {
		t.Fatalf("reason sidecars: %v", reasons)
	}
	data, err := os.ReadFile(reasons[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"holds " + specs[1].key(), "want " + specs[0].key()} {
		if !strings.Contains(string(data), want) {
			t.Errorf("reason %q missing %q", data, want)
		}
	}
}
