//go:build !race

package harness

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation pins are skipped under it (instrumentation itself
// allocates).
const raceEnabled = false
