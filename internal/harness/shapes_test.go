package harness

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// TestPaperShapes asserts the reproduction targets recorded in
// EXPERIMENTS.md as executable invariants: who wins, in which direction,
// and where the crossovers fall. Run at a reduced scale; the shapes are
// scale-stable.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(0.06)
	base := func(name string) *Result {
		res, err := r.Run(RunSpec{Workload: name, Variant: workload.Base, Config: config.SandyBridge()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	variant := func(name string, v workload.Variant) *Result {
		res, err := r.Run(RunSpec{Workload: name, Variant: v, Config: config.SandyBridge()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("fig18-cfd-wins", func(t *testing.T) {
		// CFD speeds up every CFD-class workload and removes its
		// mispredictions.
		for _, s := range withVariant(workload.CFD) {
			b, c := base(s.Name), variant(s.Name, workload.CFD)
			if sp := Speedup(b, c); sp < 1.0 {
				t.Errorf("%s: CFD speedup %.2f < 1.0", s.Name, sp)
			}
			// Full misprediction elimination holds for the decoupled
			// loops; the hoisting-only workload keeps the speculative
			// pops' mispredictions (its BQ-miss rate is the point).
			missRate := 0.0
			if c.Stats.BQPops > 0 {
				missRate = float64(c.Stats.BQMisses) / float64(c.Stats.BQPops)
			}
			if missRate < 0.1 && c.Stats.MPKI() > b.Stats.MPKI()/5 {
				t.Errorf("%s: CFD MPKI %.2f not far below base %.2f",
					s.Name, c.Stats.MPKI(), b.Stats.MPKI())
			}
			if EnergyReduction(b, c) < 0 {
				t.Errorf("%s: CFD increased energy", s.Name)
			}
		}
	})

	t.Run("fig1-perfect-prediction-helps", func(t *testing.T) {
		for _, name := range []string{"soplexlike", "mcflike", "bzip2like"} {
			b := base(name)
			p, err := r.Run(RunSpec{Workload: name, Variant: workload.Base,
				Config: config.SandyBridge(), PerfectAll: true})
			if err != nil {
				t.Fatal(err)
			}
			if Speedup(b, p) < 1.2 {
				t.Errorf("%s: perfect BP speedup %.2f < 1.2", name, Speedup(b, p))
			}
			if p.Stats.Mispredicts != 0 {
				t.Errorf("%s: perfect BP left %d mispredicts", name, p.Stats.Mispredicts)
			}
		}
	})

	t.Run("fig24-dfd-orderings", func(t *testing.T) {
		// CFD beats DFD on the streaming workloads; DFD wins the
		// heavy-overhead astar region (the paper's BigLakes finding).
		for _, name := range []string{"soplexlike", "mcflike"} {
			b := base(name)
			if Speedup(b, variant(name, workload.CFD)) <= Speedup(b, variant(name, workload.DFD)) {
				t.Errorf("%s: CFD must beat DFD", name)
			}
		}
		b := base("astar1like")
		if Speedup(b, variant("astar1like", workload.DFD)) <= Speedup(b, variant("astar1like", workload.CFD)) {
			t.Error("astar1like: DFD must beat CFD (overhead-dominated region)")
		}
	})

	t.Run("fig26-combination-wins", func(t *testing.T) {
		for _, s := range withVariant(workload.CFDDFD) {
			b := base(s.Name)
			both := Speedup(b, variant(s.Name, workload.CFDDFD))
			cfd := Speedup(b, variant(s.Name, workload.CFD))
			dfd := Speedup(b, variant(s.Name, workload.DFD))
			if both < cfd || both < dfd {
				t.Errorf("%s: combined %.2f below cfd %.2f or dfd %.2f", s.Name, both, cfd, dfd)
			}
		}
	})

	t.Run("fig28-superadditive", func(t *testing.T) {
		b := base("astar2like")
		tq := Speedup(b, variant("astar2like", workload.CFDTQ)) - 1
		bq := Speedup(b, variant("astar2like", workload.CFDBQ)) - 1
		both := Speedup(b, variant("astar2like", workload.CFDBQTQ)) - 1
		if both < tq+bq-0.03 { // small tolerance
			t.Errorf("BQ+TQ gain %.2f below sum of parts %.2f", both, tq+bq)
		}
	})

	t.Run("fig21c-stall-hurts-only-tiff", func(t *testing.T) {
		stallCfg := config.SandyBridge()
		stallCfg.BQMissPolicy = config.StallFetch
		// tifflike: spec must clearly beat stall.
		spec := variant("tifflike", workload.CFD)
		stall, err := r.Run(RunSpec{Workload: "tifflike", Variant: workload.CFD, Config: stallCfg})
		if err != nil {
			t.Fatal(err)
		}
		if float64(stall.Stats.Cycles) < 1.1*float64(spec.Stats.Cycles) {
			t.Errorf("tifflike: stall (%d) must be much slower than spec (%d)",
				stall.Stats.Cycles, spec.Stats.Cycles)
		}
		// soplexlike: policies must be near-identical (no BQ misses).
		spec2 := variant("soplexlike", workload.CFD)
		stall2, err := r.Run(RunSpec{Workload: "soplexlike", Variant: workload.CFD, Config: stallCfg})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(stall2.Stats.Cycles) / float64(spec2.Stats.Cycles)
		if ratio > 1.02 || ratio < 0.98 {
			t.Errorf("soplexlike: policies differ by %.3f, want ~1.0", ratio)
		}
	})

	t.Run("fig2b-window-scaling-needs-perfect-bp", func(t *testing.T) {
		small, big := config.Scaled(168), config.Scaled(640)
		realS, _ := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: small})
		realB, _ := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: big})
		perfS, _ := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: small, PerfectAll: true})
		perfB, _ := r.Run(RunSpec{Workload: "mcflike", Variant: workload.Base, Config: big, PerfectAll: true})
		gReal := realB.Stats.IPC() / realS.Stats.IPC()
		gPerf := perfB.Stats.IPC() / perfS.Stats.IPC()
		if gPerf <= gReal {
			t.Errorf("window scaling: perfect-BP gain %.2f must exceed real-BP gain %.2f", gPerf, gReal)
		}
	})

	t.Run("fig23-astar-cfd-scales-with-window", func(t *testing.T) {
		small, big := config.Scaled(168), config.Scaled(640)
		bs, _ := r.Run(RunSpec{Workload: "astar1like", Variant: workload.Base, Config: small})
		cs, _ := r.Run(RunSpec{Workload: "astar1like", Variant: workload.CFD, Config: small})
		bb, _ := r.Run(RunSpec{Workload: "astar1like", Variant: workload.Base, Config: big})
		cb, _ := r.Run(RunSpec{Workload: "astar1like", Variant: workload.CFDDFD, Config: big})
		if Speedup(bb, cb) <= Speedup(bs, cs) {
			t.Errorf("astar1like: large-window CFD+DFD gain %.2f must exceed small-window CFD gain %.2f",
				Speedup(bb, cb), Speedup(bs, cs))
		}
	})

	t.Run("fig20-wrong-path-eliminated", func(t *testing.T) {
		for _, name := range []string{"soplexlike", "mcflike"} {
			c := variant(name, workload.CFD)
			wrong := float64(c.Stats.Fetched-c.Stats.Retired) / float64(c.Stats.Fetched)
			if wrong > 0.05 {
				t.Errorf("%s: CFD wrong-path share %.1f%%, want ~0", name, 100*wrong)
			}
		}
	})
}
