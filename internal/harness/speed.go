package harness

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/pipeline"
	"cfd/internal/workload"
)

// Simulator throughput (MIPS) benchmark: the `cfdbench -speed` mode.
//
// The benchmark runs a pinned spec set — every workload variant at a fixed
// input size on both engines — and reports two strictly separated groups
// of fields:
//
//   - work: what was simulated (instructions retired, cycles). These are
//     pure functions of the committed code and are byte-identical on any
//     host, any -jobs value, any run. CI gates on this section
//     (BENCH_speed.json) exactly like the fig18 snapshot gate, so a
//     change that silently alters how much work the benchmark does —
//     which would masquerade as a throughput change — fails the build.
//
//   - host: how fast the wall clock says this machine simulated it
//     (seconds, MIPS). Informational only, never gated; committed
//     snapshots record the machine they came from.
//
// Each spec is timed SpeedRuns times per engine and the median wall-clock
// is reported, which discards warm-up and scheduler-noise outliers
// without averaging them in. Specs run serially — timing under
// parallelism would measure contention, not the simulator.

// SpeedSchema identifies the speed document format.
const SpeedSchema = "cfd-speed"

// SpeedVersion is bumped when the document layout changes.
const SpeedVersion = 1

// SpeedRuns is K in the median-of-K wall-clock measurement.
const SpeedRuns = 5

// speedScale multiplies each workload's TestN: large enough that a spec
// takes milliseconds (timing noise amortizes), small enough that the full
// matrix finishes in seconds.
const speedScale = 4

// SpeedWork is the deterministic simulated-work record of one spec: the
// fields the CI drift gate compares.
type SpeedWork struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	N        int64  `json:"n"`

	EmuRetired  uint64 `json:"emuRetired"`
	PipeRetired uint64 `json:"pipeRetired"`
	PipeCycles  uint64 `json:"pipeCycles"`
}

// SpeedHostRow is one spec's wall-clock measurement (median of SpeedRuns).
type SpeedHostRow struct {
	Workload    string  `json:"workload"`
	Variant     string  `json:"variant"`
	EmuSeconds  float64 `json:"emuSeconds"`
	EmuMIPS     float64 `json:"emuMips"`
	PipeSeconds float64 `json:"pipeSeconds"`
	PipeMIPS    float64 `json:"pipeMips"`
}

// SpeedHost groups everything wall-clock: per-spec timings, aggregate
// throughput, and the machine they were measured on.
type SpeedHost struct {
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Runs   int    `json:"runs"` // K of the median-of-K

	Rows []SpeedHostRow `json:"rows"`

	// Aggregates: total instructions over total median seconds, per
	// engine and combined.
	EmuMIPS       float64 `json:"emuMips"`
	PipeMIPS      float64 `json:"pipeMips"`
	AggregateMIPS float64 `json:"aggregateMips"`
}

// SpeedDoc is the `cfdbench -speed` output: the gated work section and
// the informational host section.
type SpeedDoc struct {
	Schema  string      `json:"schema"`
	Version int         `json:"version"`
	Work    []SpeedWork `json:"work"`
	Host    SpeedHost   `json:"host"`
}

// SpeedBenchmark runs the pinned spec matrix on both engines and returns
// the document. runs overrides the median-of-K width (0 = SpeedRuns).
func SpeedBenchmark(runs int) (*SpeedDoc, error) {
	if runs <= 0 {
		runs = SpeedRuns
	}
	cfg := config.SandyBridge()
	doc := &SpeedDoc{
		Schema:  SpeedSchema,
		Version: SpeedVersion,
		Host: SpeedHost{
			GoOS:   runtime.GOOS,
			GoArch: runtime.GOARCH,
			CPUs:   runtime.NumCPU(),
			Runs:   runs,
		},
	}
	var emuInstr, pipeInstr uint64
	var emuSec, pipeSec float64
	for _, s := range workload.All() {
		for _, v := range s.Variants {
			n := s.TestN * speedScale
			p, m, err := s.Build(v, n)
			if err != nil {
				return nil, fmt.Errorf("harness: speed %s/%s: %w", s.Name, v, err)
			}
			work := SpeedWork{Workload: s.Name, Variant: string(v), N: n}
			times := make([]float64, runs)

			for k := 0; k < runs; k++ {
				em := emu.New(p, m.Clone())
				t0 := time.Now()
				if err := em.Run(0); err != nil {
					return nil, fmt.Errorf("harness: speed %s/%s emulator: %w", s.Name, v, err)
				}
				times[k] = time.Since(t0).Seconds()
				if k == 0 {
					work.EmuRetired = em.Retired
				} else if em.Retired != work.EmuRetired {
					return nil, fmt.Errorf("harness: speed %s/%s: emulator retired %d then %d",
						s.Name, v, work.EmuRetired, em.Retired)
				}
			}
			row := SpeedHostRow{Workload: s.Name, Variant: string(v)}
			row.EmuSeconds = median(times)
			row.EmuMIPS = mips(work.EmuRetired, row.EmuSeconds)

			for k := 0; k < runs; k++ {
				core, err := pipeline.New(cfg, p, m.Clone())
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				if err := core.Run(0); err != nil {
					return nil, fmt.Errorf("harness: speed %s/%s pipeline: %w", s.Name, v, err)
				}
				times[k] = time.Since(t0).Seconds()
				if k == 0 {
					work.PipeRetired = core.Stats.Retired
					work.PipeCycles = core.Stats.Cycles
				} else if core.Stats.Retired != work.PipeRetired || core.Stats.Cycles != work.PipeCycles {
					return nil, fmt.Errorf("harness: speed %s/%s: pipeline work diverged between runs",
						s.Name, v)
				}
			}
			row.PipeSeconds = median(times)
			row.PipeMIPS = mips(work.PipeRetired, row.PipeSeconds)

			doc.Work = append(doc.Work, work)
			doc.Host.Rows = append(doc.Host.Rows, row)
			emuInstr += work.EmuRetired
			pipeInstr += work.PipeRetired
			emuSec += row.EmuSeconds
			pipeSec += row.PipeSeconds
		}
	}
	doc.Host.EmuMIPS = mips(emuInstr, emuSec)
	doc.Host.PipeMIPS = mips(pipeInstr, pipeSec)
	doc.Host.AggregateMIPS = mips(emuInstr+pipeInstr, emuSec+pipeSec)
	return doc, nil
}

// median returns the median of xs without reordering the caller's view of
// the measurements mattering (xs is sorted in place).
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func mips(instr uint64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(instr) / seconds / 1e6
}
