package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep fans specs across a pool of r.jobs() workers and returns the
// results in specs order. Duplicate specs (within the sweep or against
// earlier runs) simulate exactly once thanks to the Runner's singleflight
// cache. The first failing spec cancels the rest of the sweep; the error
// reported is the failure at the lowest index, so error reporting is as
// deterministic as the serial path. With one worker (Jobs == 1) the specs
// run strictly serially in submission order.
//
// With KeepGoing set, a failing spec does not cancel the sweep: every spec
// still runs (crash containment turns panics into memoized faults), failed
// specs leave nil slots in the returned slice, and Sweep reports no error
// unless the caller's own ctx was cancelled. The failures are collected by
// Failures in deterministic order for the export document.
func (r *Runner) Sweep(ctx context.Context, specs []RunSpec) ([]*Result, error) {
	if h := testOnSweepSpecs; h != nil {
		h(specs)
	}
	out := make([]*Result, len(specs))
	jobs := r.jobs()
	if jobs > len(specs) {
		jobs = len(specs)
	}
	sw := r.beginSweep(len(specs), jobs)
	defer sw.finish()
	report := r.progressReporter(len(specs))
	// runOne is the shared per-spec step: journal the submission, run,
	// journal the terminal outcome, report progress.
	runOne := func(ctx context.Context, rs RunSpec) (*Result, error) {
		sw.submit(rs)
		res, err, info := r.runCtx(ctx, rs, sw.id())
		sw.done(rs, res, err, info)
		report(rs, err, info)
		return res, err
	}
	if jobs <= 1 {
		for i, rs := range specs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := runOne(ctx, rs)
			if err != nil {
				if r.KeepGoing && ctx.Err() == nil {
					continue
				}
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				if ctx.Err() != nil {
					errs[i] = ctx.Err()
					continue
				}
				res, err := runOne(ctx, specs[i])
				if err != nil {
					errs[i] = err
					if !r.KeepGoing {
						cancel()
						if h := testOnSweepCancel; h != nil {
							h()
						}
					}
					continue
				}
				out[i] = res
			}
		}()
	}
	wg.Wait()
	if r.KeepGoing {
		// Only the caller's own cancellation is an error; run failures
		// are memoized and reported through Failures.
		for _, err := range errs {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
		}
		return out, nil
	}

	// Report the lowest-index real failure; cancellation errors only
	// matter when they came from the caller's context.
	var firstCancel error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			if firstCancel == nil {
				firstCancel = err
			}
		default:
			return nil, err
		}
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	return out, nil
}

// Prefetch simulates every spec across the worker pool so subsequent Run
// calls are cache hits. Experiments call it with their full spec list up
// front and then assemble rows serially in deterministic order. It sweeps
// under r.BaseCtx when set, so a CLI-level signal context cancels the
// experiment sweeps it drives.
func (r *Runner) Prefetch(specs ...RunSpec) error {
	ctx := r.BaseCtx
	if ctx == nil {
		ctx = context.Background()
	}
	_, err := r.Sweep(ctx, specs)
	return err
}

// mapConcurrently applies f to every item across a pool of jobs workers
// (0 = GOMAXPROCS) and returns the outputs in items order; the first error
// cancels the remaining work. It is the Sweep analog for experiment stages
// that run custom programs instead of registered workloads.
func mapConcurrently[T, U any](jobs int, items []T, f func(T) (U, error)) ([]U, error) {
	out := make([]U, len(items))
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs <= 1 {
		for i, it := range items {
			u, err := f(it)
			if err != nil {
				return nil, err
			}
			out[i] = u
		}
		return out, nil
	}
	errs := make([]error, len(items))
	var stop atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if stop.Load() {
					continue
				}
				u, err := f(items[i])
				if err != nil {
					errs[i] = err
					stop.Store(true)
					continue
				}
				out[i] = u
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
