package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// TestSweepCancellationErrorPriority forces the sweep cancellation race
// deterministically: a real workload blocks in simulate while a duplicate
// spec waits on its singleflight entry, then a bad spec at the highest
// index fails and cancels the sweep. The waiter records context.Canceled at
// a lower index than the real failure; Sweep must still report the real
// error, not the cancellation artifact. (A Sweep that returns the first
// error in index order regardless of kind fails this test.)
func TestSweepCancellationErrorPriority(t *testing.T) {
	const good = "bzip2like"
	const bad = "no-such-workload"

	xStarted := make(chan struct{}) // the good simulation has begun
	canceled := make(chan struct{}) // the bad spec has canceled the sweep
	release := make(chan struct{})  // lets the good simulation proceed

	testOnSimulate = func(rs RunSpec) {
		switch rs.Workload {
		case good:
			close(xStarted)
			<-release
		case bad:
			// Don't fail until the good run is in flight, so its
			// duplicate is guaranteed to be waiting (or about to wait)
			// when the cancel lands.
			<-xStarted
		}
	}
	testOnSweepCancel = func() {
		select {
		case <-canceled:
		default:
			close(canceled)
		}
	}
	defer func() {
		testOnSimulate = nil
		testOnSweepCancel = nil
	}()

	go func() {
		<-canceled
		close(release)
	}()

	r := NewRunner(0.02)
	r.Jobs = 3
	cfg := config.SandyBridge()
	specs := []RunSpec{
		{Workload: good, Variant: workload.Base, Config: cfg},
		{Workload: good, Variant: workload.Base, Config: cfg}, // singleflight waiter
		{Workload: bad, Variant: workload.Base, Config: cfg},  // real failure, highest index
	}
	_, err := r.Sweep(context.Background(), specs)
	if err == nil {
		t.Fatal("Sweep returned nil error despite a failing spec")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep reported the cancellation artifact instead of the real failure: %v", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("Sweep error = %v, want the unknown-workload failure", err)
	}
}

// TestSweepCallerCancellation: when the caller's own context is canceled
// and no spec genuinely failed, Sweep must report the cancellation.
func TestSweepCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(0.02)
	r.Jobs = 2
	cfg := config.SandyBridge()
	specs := []RunSpec{
		{Workload: "bzip2like", Variant: workload.Base, Config: cfg},
		{Workload: "bzip2like", Variant: workload.CFD, Config: cfg},
	}
	if _, err := r.Sweep(ctx, specs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep under canceled caller context = %v, want context.Canceled", err)
	}
}
