package harness

import (
	"fmt"
	"io"
	"math/rand"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
	"cfd/internal/stats"
	"cfd/internal/xform"
)

// runXformAblation compares the automatic CFD transformation (the paper's
// compiler-pass analog, §III-B) against doing nothing, on an
// xform-structured soplex-style kernel: the pass must deliver CFD's
// misprediction elimination automatically.
func runXformAblation(r *Runner, w io.Writer) error {
	n := int64(20000 * r.Scale * 4)
	if n < 1024 {
		n = 1024
	}
	k := &xform.Kernel{
		Name: "auto-soplex",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000},
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 0x800000},
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
		},
		Slice: []isa.Inst{
			{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0},
			{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7},
		},
		CD: []isa.Inst{
			{Op: isa.SHLI, Rd: 9, Rs1: 7, Imm: 1},
			{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 17},
			{Op: isa.SD, Rs1: 2, Rs2: 9, Imm: 0},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
			{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 7},
			{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2},
			{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11},
		},
		Step: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 8},
		},
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23},
		NoAlias: true,
		Note:    "auto: test[i] > theeps",
	}
	params := xform.ParamsFrom(config.SandyBridge())
	cls, err := k.Classify()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pass classification: %s\n", cls)
	comm := 0
	if p, err := k.CFD(params, false); err == nil {
		for _, in := range p.Insts {
			if in.Op == isa.PushBQ {
				comm++
			}
		}
	}

	data := func() *mem.Memory {
		rng := rand.New(rand.NewSource(77))
		m := mem.New()
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(rng.Int63n(1000))
		}
		m.WriteUint64s(0x100000, vals)
		return m
	}

	t := stats.NewTable("Automatic transformation on the cycle-level core",
		"scheme", "cycles", "IPC", "MPKI", "speedup")
	steps := []struct {
		name  string
		build func() (*prog.Program, error)
	}{
		{"base", k.Base},
		{"auto-cfd", func() (*prog.Program, error) { return k.CFD(params, false) }},
		{"auto-cfd+", func() (*prog.Program, error) { return k.CFD(params, true) }},
		{"auto-dfd", func() (*prog.Program, error) { return k.DFD(params) }},
	}
	// All four schemes simulate concurrently; rows are assembled in the
	// fixed step order with the base row's cycles as the speedup anchor.
	cores, err := mapConcurrently(r.jobs(), steps, func(s struct {
		name  string
		build func() (*prog.Program, error)
	}) (*pipeline.Core, error) {
		p, err := s.build()
		if err != nil {
			return nil, err
		}
		core, err := pipeline.New(config.SandyBridge(), p, data())
		if err != nil {
			return nil, err
		}
		if err := core.Run(0); err != nil {
			return nil, err
		}
		return core, nil
	})
	if err != nil {
		return err
	}
	baseCycles := cores[0].Stats.Cycles
	for i, s := range steps {
		core := cores[i]
		t.Addf(s.name, core.Stats.Cycles, core.Stats.IPC(), core.Stats.MPKI(),
			stats.Ratio(float64(baseCycles)/float64(core.Stats.Cycles)))
	}
	fmt.Fprintln(w, t)
	_, err = fmt.Fprintln(w, "expected shape: automatic CFD matches manual CFD's behavior on totally separable branches (paper §III-B)")
	return err
}
