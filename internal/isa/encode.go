package isa

import "fmt"

// Binary encoding of a CFD-RISC instruction in a 64-bit word:
//
//	bits 63..56  opcode (8 bits)
//	bits 55..51  rd     (5 bits)
//	bits 50..46  rs1    (5 bits)
//	bits 45..41  rs2    (5 bits)
//	bits 40..0   imm    (41-bit two's-complement immediate)
//
// The wide immediate lets ADDI rd, r0, imm materialize any constant the
// workloads need in a single instruction.

// ImmBits is the width of the signed immediate field.
const ImmBits = 41

// MaxImm and MinImm bound the encodable immediate.
const (
	MaxImm = int64(1)<<(ImmBits-1) - 1
	MinImm = -int64(1) << (ImmBits - 1)
)

// Encode packs the instruction into its 64-bit binary form. It returns an
// error if the immediate does not fit or a field is out of range.
func (i Inst) Encode() (uint64, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", uint8(i.Op))
	}
	if !i.Rd.Valid() || !i.Rs1.Valid() || !i.Rs2.Valid() {
		return 0, fmt.Errorf("isa: encode %s: register out of range", i.Op)
	}
	if i.Imm > MaxImm || i.Imm < MinImm {
		return 0, fmt.Errorf("isa: encode %s: immediate %d does not fit in %d bits", i.Op, i.Imm, ImmBits)
	}
	w := uint64(i.Op) << 56
	w |= uint64(i.Rd) << 51
	w |= uint64(i.Rs1) << 46
	w |= uint64(i.Rs2) << 41
	w |= uint64(i.Imm) & (1<<ImmBits - 1)
	return w, nil
}

// Decode unpacks a 64-bit word into an instruction. It returns an error for
// undefined opcodes.
func Decode(w uint64) (Inst, error) {
	op := Op(w >> 56)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", uint8(op))
	}
	imm := int64(w & (1<<ImmBits - 1))
	// Sign-extend the 41-bit immediate.
	if imm&(1<<(ImmBits-1)) != 0 {
		imm -= 1 << ImmBits
	}
	return Inst{
		Op:  op,
		Rd:  Reg(w >> 51 & 31),
		Rs1: Reg(w >> 46 & 31),
		Rs2: Reg(w >> 41 & 31),
		Imm: imm,
	}, nil
}
