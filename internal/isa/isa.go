// Package isa defines CFD-RISC, a 64-bit RISC instruction set with the
// control-flow decoupling (CFD) co-processor extension described in
// "Control-Flow Decoupling: An Approach for Timely, Non-speculative
// Branching" (Sheikh, Tuck, Rotenberg; MICRO 2012 / IEEE TC 2014).
//
// The base ISA is a conventional load/store architecture with 32 general
// purpose 64-bit registers (r0 hardwired to zero), ALU and multiply/divide
// operations, sign-/zero-extending loads, stores, conditional branches,
// jumps, conditional moves (the if-conversion primitive the paper relies
// on), and a software prefetch.
//
// The CFD extension adds three architectural queues and their instructions:
//
//   - Branch queue (BQ): PushBQ, BranchBQ, MarkBQ, ForwardBQ,
//     SaveBQ, RestoreBQ. Each entry holds a single taken/not-taken
//     predicate. BranchBQ pops its predicate instead of reading registers,
//     so the hardware can resolve it in the fetch stage.
//   - Value queue (VQ): PushVQ, PopVQ, SaveVQ, RestoreVQ. Each entry holds
//     a 64-bit value; the microarchitecture maps the VQ onto the physical
//     register file with a VQ renamer.
//   - Trip-count queue (TQ): PushTQ, PopTQ, BranchTCR, PopTQOV, SaveTQ,
//     RestoreTQ. Each entry holds an N-bit trip count; PopTQ loads the
//     trip-count register (TCR) in the fetch unit and BranchTCR
//     tests/decrements it, making loop iteration counts timely and
//     non-speculative.
package isa

import "fmt"

// Reg identifies one of the 32 general-purpose registers. R0 reads as zero
// and ignores writes.
type Reg uint8

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 32

// Zero is the hardwired zero register.
const Zero Reg = 0

// String returns the assembly name of the register ("r7").
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an operation code.
type Op uint8

// Operation codes. The order is part of the binary encoding; append only.
const (
	// Miscellaneous.
	NOP  Op = iota // no operation
	HALT           // stop the machine

	// ALU register-register.
	ADD  // Rd = Rs1 + Rs2
	SUB  // Rd = Rs1 - Rs2
	MUL  // Rd = Rs1 * Rs2
	DIV  // Rd = Rs1 / Rs2 (signed; x/0 = 0)
	REM  // Rd = Rs1 % Rs2 (signed; x%0 = x)
	AND  // Rd = Rs1 & Rs2
	OR   // Rd = Rs1 | Rs2
	XOR  // Rd = Rs1 ^ Rs2
	SHL  // Rd = Rs1 << (Rs2 & 63)
	SHR  // Rd = Rs1 >> (Rs2 & 63) (logical)
	SRA  // Rd = Rs1 >> (Rs2 & 63) (arithmetic)
	SLT  // Rd = 1 if Rs1 < Rs2 (signed) else 0
	SLTU // Rd = 1 if Rs1 < Rs2 (unsigned) else 0
	SEQ  // Rd = 1 if Rs1 == Rs2 else 0

	// ALU register-immediate (Imm is a 41-bit signed immediate).
	ADDI  // Rd = Rs1 + Imm
	ANDI  // Rd = Rs1 & Imm
	ORI   // Rd = Rs1 | Imm
	XORI  // Rd = Rs1 ^ Imm
	SHLI  // Rd = Rs1 << (Imm & 63)
	SHRI  // Rd = Rs1 >> (Imm & 63) (logical)
	SRAI  // Rd = Rs1 >> (Imm & 63) (arithmetic)
	SLTI  // Rd = 1 if Rs1 < Imm (signed) else 0
	SLTUI // Rd = 1 if Rs1 < uint64(Imm) (unsigned) else 0
	SEQI  // Rd = 1 if Rs1 == Imm else 0

	// Conditional moves: the ISA's if-conversion primitive.
	CMOVZ  // Rd = Rs1 if Rs2 == 0 (else Rd unchanged)
	CMOVNZ // Rd = Rs1 if Rs2 != 0 (else Rd unchanged)

	// Loads: Rd = mem[Rs1 + Imm], sign- or zero-extended.
	LD  // 64-bit
	LW  // 32-bit sign-extended
	LWU // 32-bit zero-extended
	LH  // 16-bit sign-extended
	LHU // 16-bit zero-extended
	LB  // 8-bit sign-extended
	LBU // 8-bit zero-extended

	// Stores: mem[Rs1 + Imm] = Rs2 (low bits for narrow stores).
	SD // 64-bit
	SW // 32-bit
	SH // 16-bit
	SB // 8-bit

	// PREF prefetches the line containing Rs1 + Imm into the L1 data
	// cache. It never faults and has no destination (DFD's workhorse).
	PREF

	// Conditional branches: compare Rs1 against Rs2 and transfer control
	// to PC + Imm when the condition holds.
	BEQ  // branch if Rs1 == Rs2
	BNE  // branch if Rs1 != Rs2
	BLT  // branch if Rs1 < Rs2 (signed)
	BGE  // branch if Rs1 >= Rs2 (signed)
	BLTU // branch if Rs1 < Rs2 (unsigned)
	BGEU // branch if Rs1 >= Rs2 (unsigned)

	// Unconditional control transfers.
	J   // PC = PC + Imm
	JAL // Rd = PC + 1; PC = PC + Imm
	JR  // PC = Rs1 (register-indirect; returns use JR with the link reg)

	// CFD extension: branch queue (BQ).
	PushBQ    // push (Rs1 != 0) onto the BQ tail
	BranchBQ  // pop a predicate from the BQ head; branch to PC+Imm if it is 1
	MarkBQ    // mark the current BQ tail
	ForwardBQ // bulk-pop BQ entries from head through the most recent mark
	SaveBQ    // store BQ architectural state to mem[Rs1 + Imm]
	RestoreBQ // load BQ architectural state from mem[Rs1 + Imm]

	// CFD extension: value queue (VQ).
	PushVQ    // push the value of Rs1 onto the VQ tail
	PopVQ     // Rd = value popped from the VQ head
	SaveVQ    // store VQ architectural state to mem[Rs1 + Imm]
	RestoreVQ // load VQ architectural state from mem[Rs1 + Imm]

	// CFD extension: trip-count queue (TQ).
	PushTQ    // push the low TQWidth bits of Rs1 onto the TQ tail (sets the overflow bit if Rs1 >= 2^TQWidth)
	PopTQ     // pop a trip count from the TQ head into the TCR
	BranchTCR // if TCR != 0: TCR--, branch to PC+Imm; else fall through
	PopTQOV   // pop from the TQ into the TCR; branch to PC+Imm if the entry's overflow bit is set
	SaveTQ    // store TQ architectural state to mem[Rs1 + Imm]
	RestoreTQ // load TQ architectural state from mem[Rs1 + Imm]

	numOps // sentinel; must be last
)

// NumOps is the number of defined operation codes.
const NumOps = int(numOps)

// Inst is a single CFD-RISC instruction. Branch and jump immediates are
// PC-relative in units of instructions: the target of a taken branch at
// address pc is pc + Imm.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Target returns the taken-target of a control transfer located at pc.
func (i Inst) Target(pc uint64) uint64 { return uint64(int64(pc) + i.Imm) }

// Class groups operations by the pipeline resources they use.
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches incl. BranchBQ, BranchTCR
	ClassJump
	ClassCFD // queue management ops that are not branches
	ClassHalt
)

// opInfo is the static metadata table, indexed by Op.
type opInfo struct {
	name     string
	class    Class
	readsRs1 bool
	readsRs2 bool
	writesRd bool
	hasImm   bool
}

var opTable = [numOps]opInfo{
	NOP:  {"nop", ClassNop, false, false, false, false},
	HALT: {"halt", ClassHalt, false, false, false, false},

	ADD:  {"add", ClassALU, true, true, true, false},
	SUB:  {"sub", ClassALU, true, true, true, false},
	MUL:  {"mul", ClassMul, true, true, true, false},
	DIV:  {"div", ClassDiv, true, true, true, false},
	REM:  {"rem", ClassDiv, true, true, true, false},
	AND:  {"and", ClassALU, true, true, true, false},
	OR:   {"or", ClassALU, true, true, true, false},
	XOR:  {"xor", ClassALU, true, true, true, false},
	SHL:  {"shl", ClassALU, true, true, true, false},
	SHR:  {"shr", ClassALU, true, true, true, false},
	SRA:  {"sra", ClassALU, true, true, true, false},
	SLT:  {"slt", ClassALU, true, true, true, false},
	SLTU: {"sltu", ClassALU, true, true, true, false},
	SEQ:  {"seq", ClassALU, true, true, true, false},

	ADDI:  {"addi", ClassALU, true, false, true, true},
	ANDI:  {"andi", ClassALU, true, false, true, true},
	ORI:   {"ori", ClassALU, true, false, true, true},
	XORI:  {"xori", ClassALU, true, false, true, true},
	SHLI:  {"shli", ClassALU, true, false, true, true},
	SHRI:  {"shri", ClassALU, true, false, true, true},
	SRAI:  {"srai", ClassALU, true, false, true, true},
	SLTI:  {"slti", ClassALU, true, false, true, true},
	SLTUI: {"sltui", ClassALU, true, false, true, true},
	SEQI:  {"seqi", ClassALU, true, false, true, true},

	CMOVZ:  {"cmovz", ClassALU, true, true, true, false},
	CMOVNZ: {"cmovnz", ClassALU, true, true, true, false},

	LD:  {"ld", ClassLoad, true, false, true, true},
	LW:  {"lw", ClassLoad, true, false, true, true},
	LWU: {"lwu", ClassLoad, true, false, true, true},
	LH:  {"lh", ClassLoad, true, false, true, true},
	LHU: {"lhu", ClassLoad, true, false, true, true},
	LB:  {"lb", ClassLoad, true, false, true, true},
	LBU: {"lbu", ClassLoad, true, false, true, true},

	SD: {"sd", ClassStore, true, true, false, true},
	SW: {"sw", ClassStore, true, true, false, true},
	SH: {"sh", ClassStore, true, true, false, true},
	SB: {"sb", ClassStore, true, true, false, true},

	PREF: {"pref", ClassLoad, true, false, false, true},

	BEQ:  {"beq", ClassBranch, true, true, false, true},
	BNE:  {"bne", ClassBranch, true, true, false, true},
	BLT:  {"blt", ClassBranch, true, true, false, true},
	BGE:  {"bge", ClassBranch, true, true, false, true},
	BLTU: {"bltu", ClassBranch, true, true, false, true},
	BGEU: {"bgeu", ClassBranch, true, true, false, true},

	J:   {"j", ClassJump, false, false, false, true},
	JAL: {"jal", ClassJump, false, false, true, true},
	JR:  {"jr", ClassJump, true, false, false, false},

	PushBQ:    {"push_bq", ClassCFD, true, false, false, false},
	BranchBQ:  {"branch_bq", ClassBranch, false, false, false, true},
	MarkBQ:    {"mark_bq", ClassCFD, false, false, false, false},
	ForwardBQ: {"forward_bq", ClassCFD, false, false, false, false},
	SaveBQ:    {"save_bq", ClassCFD, true, false, false, true},
	RestoreBQ: {"restore_bq", ClassCFD, true, false, false, true},

	PushVQ:    {"push_vq", ClassCFD, true, false, false, false},
	PopVQ:     {"pop_vq", ClassCFD, false, false, true, false},
	SaveVQ:    {"save_vq", ClassCFD, true, false, false, true},
	RestoreVQ: {"restore_vq", ClassCFD, true, false, false, true},

	PushTQ:    {"push_tq", ClassCFD, true, false, false, false},
	PopTQ:     {"pop_tq", ClassCFD, false, false, false, false},
	BranchTCR: {"branch_tcr", ClassBranch, false, false, false, true},
	PopTQOV:   {"pop_tq_ov", ClassBranch, false, false, false, true},
	SaveTQ:    {"save_tq", ClassCFD, true, false, false, true},
	RestoreTQ: {"restore_tq", ClassCFD, true, false, false, true},
}

// Valid reports whether op is a defined operation code.
func (op Op) Valid() bool { return op < numOps }

// String returns the assembly mnemonic.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Class returns the pipeline class of the operation.
func (op Op) Class() Class {
	if !op.Valid() {
		return ClassNop
	}
	return opTable[op].class
}

// ReadsRs1 reports whether the operation reads its Rs1 register.
func (op Op) ReadsRs1() bool { return op.Valid() && opTable[op].readsRs1 }

// ReadsRs2 reports whether the operation reads its Rs2 register.
func (op Op) ReadsRs2() bool { return op.Valid() && opTable[op].readsRs2 }

// WritesRd reports whether the operation writes its Rd register.
func (op Op) WritesRd() bool { return op.Valid() && opTable[op].writesRd }

// HasImm reports whether the operation uses its immediate field.
func (op Op) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// IsCondBranch reports whether op is a conditional control transfer whose
// direction must be known at fetch (predicted or, for CFD pops, supplied by
// a queue).
func (op Op) IsCondBranch() bool { return op.Class() == ClassBranch }

// IsControl reports whether op can redirect the PC.
func (op Op) IsControl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump
}

// IsLoad reports whether op reads data memory (PREF counts: it occupies a
// memory port and touches the cache, but it has no destination).
func (op Op) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op.Class() == ClassStore }

// IsCFD reports whether op belongs to the CFD co-processor extension.
func (op Op) IsCFD() bool {
	switch op {
	case PushBQ, BranchBQ, MarkBQ, ForwardBQ, SaveBQ, RestoreBQ,
		PushVQ, PopVQ, SaveVQ, RestoreVQ,
		PushTQ, PopTQ, BranchTCR, PopTQOV, SaveTQ, RestoreTQ:
		return true
	}
	return false
}

// OpByName returns the operation with the given assembly mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// String disassembles the instruction.
func (i Inst) String() string {
	info := opTable[i.Op]
	switch i.Op {
	case NOP, HALT, MarkBQ, ForwardBQ, PopTQ:
		return info.name
	case PushBQ, PushVQ, PushTQ, JR:
		return fmt.Sprintf("%s %s", info.name, i.Rs1)
	case PopVQ:
		return fmt.Sprintf("%s %s", info.name, i.Rd)
	case BranchBQ, BranchTCR, PopTQOV, J:
		return fmt.Sprintf("%s %+d", info.name, i.Imm)
	case JAL:
		return fmt.Sprintf("%s %s, %+d", info.name, i.Rd, i.Imm)
	case SaveBQ, RestoreBQ, SaveVQ, RestoreVQ, SaveTQ, RestoreTQ, PREF:
		return fmt.Sprintf("%s %d(%s)", info.name, i.Imm, i.Rs1)
	}
	switch {
	case i.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", info.name, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", info.name, i.Rs2, i.Imm, i.Rs1)
	case i.Op.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, %+d", info.name, i.Rs1, i.Rs2, i.Imm)
	case info.hasImm:
		return fmt.Sprintf("%s %s, %s, %d", info.name, i.Rd, i.Rs1, i.Imm)
	case info.writesRd && info.readsRs2:
		return fmt.Sprintf("%s %s, %s, %s", info.name, i.Rd, i.Rs1, i.Rs2)
	case info.writesRd:
		return fmt.Sprintf("%s %s, %s", info.name, i.Rd, i.Rs1)
	default:
		return info.name
	}
}
