package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpMetadataComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if opTable[op].name == "" {
			t.Errorf("op %d has no metadata entry", uint8(op))
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.String())
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted an undefined mnemonic")
	}
}

func TestClassConsistency(t *testing.T) {
	// Every conditional branch must use its immediate as a target and
	// must never write a destination register.
	for op := Op(0); op < numOps; op++ {
		if op.IsCondBranch() {
			if op.WritesRd() {
				t.Errorf("%v: conditional branch writes rd", op)
			}
			if !op.HasImm() {
				t.Errorf("%v: conditional branch without target immediate", op)
			}
		}
	}
	// Loads write rd except PREF; stores never do.
	for _, op := range []Op{LD, LW, LWU, LH, LHU, LB, LBU} {
		if !op.WritesRd() || !op.IsLoad() {
			t.Errorf("%v: bad load metadata", op)
		}
	}
	if PREF.WritesRd() {
		t.Error("PREF must not write a destination")
	}
	for _, op := range []Op{SD, SW, SH, SB} {
		if op.WritesRd() || !op.IsStore() || !op.ReadsRs2() {
			t.Errorf("%v: bad store metadata", op)
		}
	}
}

func TestCFDOpsClassified(t *testing.T) {
	cfd := []Op{PushBQ, BranchBQ, MarkBQ, ForwardBQ, SaveBQ, RestoreBQ,
		PushVQ, PopVQ, SaveVQ, RestoreVQ,
		PushTQ, PopTQ, BranchTCR, PopTQOV, SaveTQ, RestoreTQ}
	for _, op := range cfd {
		if !op.IsCFD() {
			t.Errorf("%v: IsCFD() = false", op)
		}
	}
	for _, op := range []Op{ADD, LD, SD, BEQ, J, NOP, HALT, CMOVZ} {
		if op.IsCFD() {
			t.Errorf("%v: IsCFD() = true", op)
		}
	}
	// Queue pops that branch resolve in the fetch stage: they must be
	// classified as branches so the fetch unit handles them.
	for _, op := range []Op{BranchBQ, BranchTCR, PopTQOV} {
		if !op.IsCondBranch() {
			t.Errorf("%v: must be a conditional branch", op)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Inst {
		return Inst{
			Op:  Op(rng.Intn(NumOps)),
			Rd:  Reg(rng.Intn(NumRegs)),
			Rs1: Reg(rng.Intn(NumRegs)),
			Rs2: Reg(rng.Intn(NumRegs)),
			Imm: rng.Int63n(MaxImm-MinImm+1) + MinImm,
		}
	}
	for n := 0; n < 10000; n++ {
		in := gen()
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#x): %v", w, err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	// Property: any decodable word re-encodes to itself.
	f := func(w uint64) bool {
		in, err := Decode(w)
		if err != nil {
			return true // undefined opcode; nothing to check
		}
		back, err := in.Encode()
		if err != nil {
			return false
		}
		return back == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsBadImmediates(t *testing.T) {
	for _, imm := range []int64{MaxImm + 1, MinImm - 1, 1 << 50, -(1 << 50)} {
		in := Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: imm}
		if _, err := in.Encode(); err == nil {
			t.Errorf("Encode accepted out-of-range immediate %d", imm)
		}
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	if _, err := Decode(uint64(numOps) << 56); err == nil {
		t.Error("Decode accepted an undefined opcode")
	}
}

func TestTarget(t *testing.T) {
	b := Inst{Op: BEQ, Imm: -3}
	if got := b.Target(10); got != 7 {
		t.Errorf("Target(10) = %d, want 7", got)
	}
	f := Inst{Op: J, Imm: 5}
	if got := f.Target(100); got != 105 {
		t.Errorf("Target(100) = %d, want 105", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 4, Rs1: 0, Imm: 42}, "addi r4, r0, 42"},
		{Inst{Op: LD, Rd: 5, Rs1: 6, Imm: 16}, "ld r5, 16(r6)"},
		{Inst{Op: SD, Rs1: 6, Rs2: 7, Imm: -8}, "sd r7, -8(r6)"},
		{Inst{Op: BNE, Rs1: 1, Rs2: 0, Imm: -4}, "bne r1, r0, -4"},
		{Inst{Op: PushBQ, Rs1: 9}, "push_bq r9"},
		{Inst{Op: BranchBQ, Imm: 7}, "branch_bq +7"},
		{Inst{Op: MarkBQ}, "mark_bq"},
		{Inst{Op: ForwardBQ}, "forward_bq"},
		{Inst{Op: PopVQ, Rd: 3}, "pop_vq r3"},
		{Inst{Op: PopTQ}, "pop_tq"},
		{Inst{Op: BranchTCR, Imm: -9}, "branch_tcr -9"},
		{Inst{Op: PREF, Rs1: 2, Imm: 64}, "pref 64(r2)"},
		{Inst{Op: CMOVNZ, Rd: 1, Rs1: 2, Rs2: 3}, "cmovnz r1, r2, r3"},
		{Inst{Op: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	if Zero.String() != "r0" {
		t.Errorf("Zero.String() = %q", Zero.String())
	}
	if !Reg(31).Valid() || Reg(32).Valid() {
		t.Error("Reg.Valid boundary wrong")
	}
}
