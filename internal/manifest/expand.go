// Expansion: manifests to sorted, duplicate-free spec sets. The result
// is a pure function of the manifest and the workload registry — no map
// iteration order, job count, or process state leaks in — so expansion
// is byte-identical across processes, which is what lets spec-key lists
// serve as golden files and store/journal identities.
package manifest

import (
	"fmt"
	"sort"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// Expand validates the manifest and expands every sweep's cross-product,
// returning the union sorted by spec key with duplicates removed. A sweep
// whose expansion is empty (selector matched nothing runnable) is an
// error: a silently empty axis would report a converged campaign that
// never ran.
func (m *Manifest) Expand() ([]Spec, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	base := presets[m.Base]()
	seen := map[string]Spec{}
	for i, sw := range m.Sweeps {
		n, err := sw.expand(base, seen)
		if err != nil {
			return nil, fmt.Errorf("manifest %s: sweep %d: %w", m.Name, i, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("manifest %s: sweep %d: expansion is empty (no selected workload implements any requested variant)", m.Name, i)
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	specs := make([]Spec, len(keys))
	for i, k := range keys {
		specs[i] = seen[k]
	}
	return specs, nil
}

// expand adds one sweep's cross-product to seen and reports how many
// specs it contributed (duplicates included).
func (sw *Sweep) expand(base config.Core, seen map[string]Spec) (int, error) {
	wls, err := sw.Workloads.resolve()
	if err != nil {
		return 0, err
	}
	cfgs, err := sw.configs(base)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, wl := range wls {
		for _, ve := range sw.Variants {
			v, ok := ve.resolve(wl)
			if !ok {
				continue
			}
			for _, cfg := range cfgs {
				sp := Spec{
					Workload:    wl.Name,
					Variant:     v,
					Config:      cfg,
					PerfectAll:  ve.PerfectAll,
					PerfectCFD:  ve.PerfectCFD,
					SampleMSHR:  ve.SampleMSHR,
					SampleEvery: ve.SampleEvery,
				}
				seen[sp.Key()] = sp
				count++
			}
		}
	}
	return count, nil
}

// resolve returns the selected workloads, sorted by name.
func (sel Selector) resolve() ([]*workload.Spec, error) {
	var cands []*workload.Spec
	if len(sel.Names) > 0 {
		names := append([]string(nil), sel.Names...)
		sort.Strings(names)
		prev := ""
		for _, name := range names {
			if name == prev {
				continue
			}
			prev = name
			s, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("selector: unknown workload %q", name)
			}
			cands = append(cands, s)
		}
	} else {
		cands = workload.All()
	}
	var out []*workload.Spec
	for _, s := range cands {
		if !sel.matchClass(s) {
			continue
		}
		if sel.HasVariant != "" && !s.HasVariant(workload.Variant(sel.HasVariant)) {
			continue
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("selector matched no workloads")
	}
	return out, nil
}

// matchClass applies the classification filter: "separable" keeps the
// CFD-applicable classes (§II's class boundary), anything else must name
// one class exactly.
func (sel Selector) matchClass(s *workload.Spec) bool {
	switch sel.Class {
	case "":
		return true
	case "separable":
		return s.Class.Separable()
	default:
		return s.Class.String() == sel.Class
	}
}

// resolve picks the variant expression's variant for one workload, or
// reports that the workload does not implement it.
func (ve VariantExpr) resolve(s *workload.Spec) (workload.Variant, bool) {
	if len(ve.AnyOf) > 0 {
		for _, name := range ve.AnyOf {
			if v := workload.Variant(name); s.HasVariant(v) {
				return v, true
			}
		}
		return "", false
	}
	v := workload.Variant(ve.Variant)
	if !s.HasVariant(v) {
		return "", false
	}
	return v, true
}

// configs expands the sweep's configuration list: explicit sets, an axes
// cross-product, or (with neither) the base preset alone.
func (sw *Sweep) configs(base config.Core) ([]config.Core, error) {
	sets := sw.Configs
	if len(sw.ConfigAxes) > 0 {
		var err error
		sets, err = crossAxes(sw.ConfigAxes)
		if err != nil {
			return nil, err
		}
	}
	if len(sets) == 0 {
		return []config.Core{base}, nil
	}
	out := make([]config.Core, len(sets))
	for i, cs := range sets {
		cfg, err := cs.Apply(base)
		if err != nil {
			return nil, err
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("config set %d: %w", i, err)
		}
		out[i] = cfg
	}
	return out, nil
}

// crossAxes merges one set from each axis into every combination. Two
// axes mutating the same field path is an error: the collision would make
// the merged value order-dependent.
func crossAxes(axes [][]ConfigSet) ([]ConfigSet, error) {
	out := []ConfigSet{{}}
	for ai, axis := range axes {
		if len(axis) == 0 {
			return nil, fmt.Errorf("config axis %d is empty", ai)
		}
		var next []ConfigSet
		for _, acc := range out {
			for _, cs := range axis {
				merged := ConfigSet{Set: map[string]any{}}
				for p, v := range acc.Set {
					merged.Set[p] = v
				}
				for p, v := range cs.Set {
					if _, dup := merged.Set[p]; dup {
						return nil, fmt.Errorf("config axis %d: path %q already set by an earlier axis", ai, p)
					}
					merged.Set[p] = v
				}
				next = append(next, merged)
			}
		}
		out = next
	}
	return out, nil
}
