// Package manifest defines the declarative experiment-manifest layer: a
// schema-versioned JSON format (cfd-manifest v1) declaring a base core
// configuration plus variant expressions — workload selectors, transform
// variant sets, and typed config-mutation sets — whose cross-product
// expands deterministically into the harness's run specs.
//
// A manifest is the single source of spec enumeration: the harness's
// registered experiments each embed one (their spec sets are pinned
// byte-for-byte against the legacy hand-written enumerations by
// testdata/specsets), and cfdbench -manifest runs a standalone manifest
// file as a sweep. Expansion is a pure function of the manifest and the
// workload registry: the result is sorted by spec key and duplicate-free,
// so it is byte-identical across processes and -jobs settings.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// Schema identifies the manifest document family; Version its revision.
// Version bumps only on incompatible changes; adding optional fields is
// compatible and does not bump it.
const (
	Schema  = "cfd-manifest"
	Version = 1
)

// Manifest declares one campaign: a base configuration preset and a list
// of sweeps whose expansions union into a single sorted, duplicate-free
// spec set.
type Manifest struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Name labels the campaign in tool output and the results export.
	Name string `json:"name,omitempty"`
	// Base names the configuration preset every config-mutation set is
	// applied to. Empty means "sandybridge" (the paper's baseline core).
	Base   string  `json:"base,omitempty"`
	Sweeps []Sweep `json:"sweeps"`
}

// Sweep is one cross-product: workloads × variants × configs. Configs and
// ConfigAxes are mutually exclusive; with neither, the sweep runs on the
// unmodified base preset.
type Sweep struct {
	Workloads Selector      `json:"workloads"`
	Variants  []VariantExpr `json:"variants"`
	// Configs lists explicit config-mutation sets, one expanded config per
	// entry. An empty mutation set ({}) is the base preset itself.
	Configs []ConfigSet `json:"configs,omitempty"`
	// ConfigAxes declares the configs as a cross-product of axes: one
	// mutation set is drawn from each axis and the sets are merged (axes
	// must not mutate the same field path). Three axes of 5, 3, and 2 sets
	// expand to 30 configs.
	ConfigAxes [][]ConfigSet `json:"configAxes,omitempty"`
}

// Selector picks workloads from the registry. Criteria are AND-combined;
// at least one must be set. Names are validated against the registry —
// an unknown name is an error, not an empty selection.
type Selector struct {
	// All selects every registered workload.
	All bool `json:"all,omitempty"`
	// Names selects workloads by exact name.
	Names []string `json:"names,omitempty"`
	// Class filters by branch classification: "separable" keeps the
	// CFD-applicable classes; any other value must equal a class name
	// exactly (e.g. "separable-loop").
	Class string `json:"class,omitempty"`
	// HasVariant keeps only workloads implementing the named variant.
	HasVariant string `json:"hasVariant,omitempty"`
}

// VariantExpr names the program variant (and run-mode flags) one spec
// runs. A workload that does not implement the requested variant is
// skipped — selectors describe sets, and the paper's sweeps run "every
// variant the workload implements" — but a sweep whose whole expansion is
// empty is an error.
type VariantExpr struct {
	// Variant is the transform name ("base", "cfd", "cfd+", ...).
	Variant string `json:"variant,omitempty"`
	// AnyOf, when set instead of Variant, picks the first variant in the
	// list the workload implements (e.g. ["cfd+", "cfd"] = the most
	// complete CFD(BQ) variant).
	AnyOf []string `json:"anyOf,omitempty"`

	// Run-mode flags, mirroring the harness spec fields.
	PerfectAll  bool   `json:"perfectAll,omitempty"`
	PerfectCFD  bool   `json:"perfectCFD,omitempty"`
	SampleMSHR  bool   `json:"sampleMSHR,omitempty"`
	SampleEvery uint64 `json:"sampleEvery,omitempty"`
}

// ConfigSet is one typed config-mutation set: field paths into
// config.Core (e.g. "Predictor", "BQSize", "Cache.L1.SizeKB") mapped to
// the values to set. Enum fields accept their string forms ("gshare",
// "stall"). Unknown paths and type mismatches are hard errors.
type ConfigSet struct {
	Set map[string]any `json:"set,omitempty"`
}

// knownVariants pins the accepted variant names, so a manifest typo is a
// validation error instead of a silently empty expansion.
var knownVariants = map[string]bool{
	string(workload.Base):    true,
	string(workload.CFD):     true,
	string(workload.CFDPlus): true,
	string(workload.DFD):     true,
	string(workload.CFDDFD):  true,
	string(workload.CFDTQ):   true,
	string(workload.CFDBQ):   true,
	string(workload.CFDBQTQ): true,
}

// presets maps Base names to configuration constructors.
var presets = map[string]func() config.Core{
	"":            config.SandyBridge,
	"sandybridge": config.SandyBridge,
}

// New returns an empty schema-stamped manifest with the given name.
func New(name string, sweeps ...Sweep) *Manifest {
	return &Manifest{Schema: Schema, Version: Version, Name: name, Sweeps: sweeps}
}

// Parse decodes a manifest, rejecting unknown fields (a typoed key must
// not silently drop an axis) and validating the result.
func Parse(r io.Reader) (*Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Validate checks the manifest's structure. Mutation paths and values are
// validated during Expand (they need the base config to resolve against).
func (m *Manifest) Validate() error {
	if m.Schema != Schema {
		return fmt.Errorf("manifest: schema %q, want %q", m.Schema, Schema)
	}
	if m.Version != Version {
		return fmt.Errorf("manifest: version %d, want %d", m.Version, Version)
	}
	if _, ok := presets[m.Base]; !ok {
		return fmt.Errorf("manifest %s: unknown base preset %q", m.Name, m.Base)
	}
	if len(m.Sweeps) == 0 {
		return fmt.Errorf("manifest %s: no sweeps", m.Name)
	}
	for i, sw := range m.Sweeps {
		if err := sw.validate(); err != nil {
			return fmt.Errorf("manifest %s: sweep %d: %w", m.Name, i, err)
		}
	}
	return nil
}

func (sw *Sweep) validate() error {
	sel := sw.Workloads
	if !sel.All && len(sel.Names) == 0 && sel.Class == "" && sel.HasVariant == "" {
		return fmt.Errorf("empty workload selector")
	}
	if sel.HasVariant != "" && !knownVariants[sel.HasVariant] {
		return fmt.Errorf("selector: unknown variant %q", sel.HasVariant)
	}
	if len(sw.Variants) == 0 {
		return fmt.Errorf("no variant expressions")
	}
	for j, ve := range sw.Variants {
		switch {
		case ve.Variant != "" && len(ve.AnyOf) > 0:
			return fmt.Errorf("variant %d: variant and anyOf are mutually exclusive", j)
		case ve.Variant == "" && len(ve.AnyOf) == 0:
			return fmt.Errorf("variant %d: neither variant nor anyOf set", j)
		case ve.Variant != "" && !knownVariants[ve.Variant]:
			return fmt.Errorf("variant %d: unknown variant %q", j, ve.Variant)
		}
		for _, v := range ve.AnyOf {
			if !knownVariants[v] {
				return fmt.Errorf("variant %d: unknown variant %q in anyOf", j, v)
			}
		}
	}
	if len(sw.Configs) > 0 && len(sw.ConfigAxes) > 0 {
		return fmt.Errorf("configs and configAxes are mutually exclusive")
	}
	return nil
}

// Digest is the manifest's deterministic content identity: the hex SHA-256
// of its canonical JSON encoding (encoding/json sorts map keys, so two
// equal manifests always digest identically). The journal's sweep_start
// and the results export carry it, tying artifacts back to the exact
// declaration that produced them.
func (m *Manifest) Digest() string {
	data, err := json.Marshal(m)
	if err != nil {
		// Manifests are plain data; a marshal failure is a programming bug.
		panic("manifest: digest: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Spec mirrors harness.RunSpec field for field — the harness converts
// between the two with a plain struct conversion, which the compiler
// rejects if the layouts ever drift. Key (and the harness key it defines)
// is the deterministic cache/store identity of one simulation.
type Spec struct {
	Workload    string
	Variant     workload.Variant
	Config      config.Core
	PerfectAll  bool
	PerfectCFD  bool
	SampleMSHR  bool
	SampleEvery uint64
}

// Key returns the spec's deterministic identity: a human-readable prefix
// naming the run plus a trailing digest over the complete Config struct,
// so two specs differing in any configuration detail — even one the
// config Name does not encode — can never alias to one cache or store
// entry.
func (s Spec) Key() string {
	return fmt.Sprintf("%s|%s|%s|%v|%v|%v|%v|%d|cfg:%s", s.Workload, s.Variant,
		s.Config.Name, s.Config.BQMissPolicy, s.PerfectAll, s.PerfectCFD, s.SampleMSHR,
		s.SampleEvery, ConfigDigest(s.Config))
}

// ConfigDigest hashes the full Core configuration. The struct is plain
// exported data (ints, bools, strings, nested value structs), so its JSON
// encoding is canonical and the digest is deterministic across processes.
func ConfigDigest(cfg config.Core) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		// Core is marshalable by construction; a failure here means a
		// future field broke that, which must not silently alias specs.
		panic("manifest: config digest: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
