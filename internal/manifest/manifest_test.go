package manifest

import (
	"reflect"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/workload"
)

// sweepAll is a minimal valid sweep for manifests under test.
func sweepAll() Sweep {
	return Sweep{Workloads: Selector{All: true}, Variants: []VariantExpr{{Variant: "base"}}}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad schema", `{"schema":"nope","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{"variant":"base"}]}]}`,
			`schema "nope"`},
		{"bad version", `{"schema":"cfd-manifest","version":99,"sweeps":[{"workloads":{"all":true},"variants":[{"variant":"base"}]}]}`,
			"version 99"},
		{"unknown field", `{"schema":"cfd-manifest","version":1,"sweps":[]}`,
			"unknown field"},
		{"unknown base", `{"schema":"cfd-manifest","version":1,"base":"alderlake","sweeps":[{"workloads":{"all":true},"variants":[{"variant":"base"}]}]}`,
			`unknown base preset "alderlake"`},
		{"no sweeps", `{"schema":"cfd-manifest","version":1,"sweeps":[]}`,
			"no sweeps"},
		{"empty selector", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{},"variants":[{"variant":"base"}]}]}`,
			"empty workload selector"},
		{"no variants", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true}}]}`,
			"no variant expressions"},
		{"unknown variant", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{"variant":"cdf"}]}]}`,
			`unknown variant "cdf"`},
		{"unknown anyOf variant", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{"anyOf":["cfd","cdf"]}]}]}`,
			`unknown variant "cdf" in anyOf`},
		{"variant and anyOf", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{"variant":"cfd","anyOf":["cfd"]}]}]}`,
			"mutually exclusive"},
		{"empty variant expr", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{}]}]}`,
			"neither variant nor anyOf"},
		{"unknown selector variant", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"hasVariant":"cdf"},"variants":[{"variant":"base"}]}]}`,
			`unknown variant "cdf"`},
		{"configs and axes", `{"schema":"cfd-manifest","version":1,"sweeps":[{"workloads":{"all":true},"variants":[{"variant":"base"}],"configs":[{}],"configAxes":[[{}]]}]}`,
			"mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestExpandRejections(t *testing.T) {
	cases := []struct {
		name    string
		m       *Manifest
		wantErr string
	}{
		{"unknown workload",
			New("t", Sweep{Workloads: Selector{Names: []string{"mcflik"}}, Variants: []VariantExpr{{Variant: "base"}}}),
			`unknown workload "mcflik"`},
		{"selector matches nothing",
			New("t", Sweep{Workloads: Selector{Class: "no-such-class"}, Variants: []VariantExpr{{Variant: "base"}}}),
			"matched no workloads"},
		{"empty expansion",
			// Every workload implements base but none implements cfdtq AND
			// is named eclatlike... pick a workload/variant pair that never
			// matches: eclatlike has no dfd variant.
			New("t", Sweep{Workloads: Selector{Names: []string{"eclatlike"}}, Variants: []VariantExpr{{Variant: "dfd"}}}),
			"expansion is empty"},
		{"unknown config path",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"BQSizo": 64}}}
				return sw
			}()),
			`unknown config path "BQSizo"`},
		{"struct path",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"Cache": 1}}}
				return sw
			}()),
			"names a struct"},
		{"nested unknown path",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"Cache.L1.Nope": 1}}}
				return sw
			}()),
			`no field "Nope"`},
		{"type mismatch",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"BQSize": "big"}}}
				return sw
			}()),
			"want integer"},
		{"bad enum value",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"Predictor": "perceptron"}}}
				return sw
			}()),
			`unknown config.PredictorKind value "perceptron"`},
		{"invalid config",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.Configs = []ConfigSet{{Set: map[string]any{"FetchWidth": 0}}}
				return sw
			}()),
			"config set 0"},
		{"axis collision",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.ConfigAxes = [][]ConfigSet{
					{{Set: map[string]any{"BQSize": 64}}},
					{{Set: map[string]any{"BQSize": 32}}},
				}
				return sw
			}()),
			"already set by an earlier axis"},
		{"empty axis",
			New("t", func() Sweep {
				sw := sweepAll()
				sw.ConfigAxes = [][]ConfigSet{{}}
				return sw
			}()),
			"axis 0 is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.m.Expand()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Expand error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestEveryLeafPathIsSettable is the reflective coverage pin (the manifest
// layer's analog of the harness's key-coverage pin): every leaf of
// config.Core must be reachable and mutable through a ConfigSet, and the
// mutation must round-trip through ConfigSetFrom. A new Core field passes
// automatically; a field the mutation layer cannot set fails here.
func TestEveryLeafPathIsSettable(t *testing.T) {
	base := config.SandyBridge()
	for _, path := range LeafPaths() {
		// Resolve the leaf to derive a value different from the base's.
		v := reflect.ValueOf(base)
		for _, seg := range strings.Split(path, ".") {
			v = v.FieldByName(seg)
		}
		var val any
		switch v.Kind() {
		case reflect.String:
			val = v.String() + "x"
		case reflect.Bool:
			val = !v.Bool()
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			val = v.Int() + 1
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if _, isEnum := enumValues[v.Type()]; isEnum {
				// Flip to a different registered enum value by ordinal.
				val = int64((v.Uint() + 1) % uint64(len(enumValues[v.Type()])))
			} else {
				val = v.Uint() + 1
			}
		default:
			t.Fatalf("%s: unsupported leaf kind %s — extend the mutation layer", path, v.Kind())
		}
		mutated, err := (ConfigSet{Set: map[string]any{path: val}}).Apply(base)
		if err != nil {
			t.Errorf("%s: Apply: %v", path, err)
			continue
		}
		if mutated == base {
			t.Errorf("%s: mutation did not change the config", path)
			continue
		}
		// Round-trip: diffing base→mutated must rediscover exactly this path.
		diff := ConfigSetFrom(base, mutated)
		if len(diff.Set) != 1 {
			t.Errorf("%s: ConfigSetFrom found %d paths (%v), want 1", path, len(diff.Set), diff.Set)
			continue
		}
		if _, ok := diff.Set[path]; !ok {
			t.Errorf("%s: ConfigSetFrom found %v instead", path, diff.Set)
		}
	}
}

// TestConfigSetFromReproducesConstructors: the derived-config constructors
// the experiments use must round-trip exactly through mutation sets — the
// property that lets embedded manifests replace the hand-written loops.
func TestConfigSetFromReproducesConstructors(t *testing.T) {
	base := config.SandyBridge()
	targets := map[string]config.Core{
		"scaled-512": config.Scaled(512),
		"depth-15":   base.WithDepth(15),
		"stall": func() config.Core {
			c := base
			c.BQMissPolicy = config.StallFetch
			return c
		}(),
		"gshare": func() config.Core {
			c := base
			c.Predictor = config.PredGshare
			c.Name = "pred-gshare"
			return c
		}(),
	}
	for name, target := range targets {
		cs := ConfigSetFrom(base, target)
		got, err := cs.Apply(base)
		if err != nil {
			t.Errorf("%s: Apply: %v", name, err)
			continue
		}
		if got != target {
			t.Errorf("%s: round trip diverges\nset:  %v\ngot:  %+v\nwant: %+v", name, cs.Set, got, target)
		}
		if ConfigDigest(got) != ConfigDigest(target) {
			t.Errorf("%s: config digests differ after round trip", name)
		}
	}
	// Identity: no mutations, empty set.
	if cs := ConfigSetFrom(base, base); len(cs.Set) != 0 {
		t.Errorf("ConfigSetFrom(base, base) = %v, want empty", cs.Set)
	}
}

// TestEnumStringsAccepted: enum leaves accept their registered string
// forms, and ConfigSetFrom renders them back as strings.
func TestEnumStringsAccepted(t *testing.T) {
	base := config.SandyBridge()
	got, err := (ConfigSet{Set: map[string]any{
		"Predictor":    "gshare",
		"BQMissPolicy": "stall",
	}}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predictor != config.PredGshare || got.BQMissPolicy != config.StallFetch {
		t.Fatalf("enum strings applied wrong: %+v", got)
	}
	diff := ConfigSetFrom(base, got)
	if diff.Set["Predictor"] != "gshare" || diff.Set["BQMissPolicy"] != "stall" {
		t.Fatalf("ConfigSetFrom renders enums as %v, want string forms", diff.Set)
	}
}

func TestExpandCrossProductAndDedup(t *testing.T) {
	m := New("t",
		Sweep{
			Workloads: Selector{Names: []string{"mcflike", "soplexlike"}},
			Variants:  []VariantExpr{{Variant: "base"}, {Variant: "cfd"}},
			ConfigAxes: [][]ConfigSet{
				{{Set: map[string]any{"BQSize": 128}}, {Set: map[string]any{"BQSize": 64}}},
				{{}, {Set: map[string]any{"BQMissPolicy": "stall"}}},
			},
		},
		// Second sweep entirely duplicates a slice of the first.
		Sweep{
			Workloads: Selector{Names: []string{"mcflike"}},
			Variants:  []VariantExpr{{Variant: "base"}},
			Configs:   []ConfigSet{{Set: map[string]any{"BQSize": 128}}},
		})
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 2 variants x (2x2 axes) = 16; the duplicate adds none.
	if len(specs) != 16 {
		t.Fatalf("expanded %d specs, want 16", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i-1].Key() >= specs[i].Key() {
			t.Fatalf("specs not strictly sorted at %d: %q >= %q", i, specs[i-1].Key(), specs[i].Key())
		}
	}
}

func TestAnyOfPicksFirstSupported(t *testing.T) {
	m := New("t", Sweep{
		// eclatlike implements cfd+; bzip2like does not.
		Workloads: Selector{Names: []string{"eclatlike", "bzip2like"}},
		Variants:  []VariantExpr{{AnyOf: []string{"cfd+", "cfd"}}},
	})
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]workload.Variant{}
	for _, sp := range specs {
		got[sp.Workload] = sp.Variant
	}
	if got["eclatlike"] != workload.CFDPlus || got["bzip2like"] != workload.CFD {
		t.Fatalf("anyOf resolution: %v", got)
	}
}

func TestSkipUnsupportedVariants(t *testing.T) {
	// bzip2like implements only base and cfd: the dfd expression
	// contributes nothing for it, without erroring (the sweep as a whole
	// is non-empty).
	m := New("t", Sweep{
		Workloads: Selector{Names: []string{"bzip2like", "mcflike"}},
		Variants:  []VariantExpr{{Variant: "base"}, {Variant: "dfd"}},
	})
	specs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		if sp.Workload == "bzip2like" && sp.Variant == workload.DFD {
			t.Fatalf("bzip2like expanded an unimplemented dfd variant")
		}
	}
	if len(specs) != 3 { // bzip2like/base, mcflike/base, mcflike/dfd
		t.Fatalf("expanded %d specs, want 3", len(specs))
	}
}

func TestDigestStability(t *testing.T) {
	a := New("t", sweepAll())
	b := New("t", sweepAll())
	if a.Digest() != b.Digest() {
		t.Fatal("equal manifests digest differently")
	}
	c := New("t", Sweep{Workloads: Selector{All: true}, Variants: []VariantExpr{{Variant: "cfd"}}})
	if a.Digest() == c.Digest() {
		t.Fatal("different manifests share a digest")
	}
}

// TestParseRoundTrip: a JSON manifest expands identically to the same
// manifest built in Go — file-driven and embedded sweeps share one
// semantics.
func TestParseRoundTrip(t *testing.T) {
	doc := `{
	  "schema": "cfd-manifest", "version": 1, "name": "rt",
	  "sweeps": [{
	    "workloads": {"hasVariant": "cfd"},
	    "variants": [{"variant": "base"}, {"variant": "cfd"}],
	    "configs": [{"set": {"BQSize": 64, "Predictor": "gshare"}}]
	  }]
	}`
	parsed, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	built := New("rt", Sweep{
		Workloads: Selector{HasVariant: "cfd"},
		Variants:  []VariantExpr{{Variant: "base"}, {Variant: "cfd"}},
		Configs:   []ConfigSet{{Set: map[string]any{"BQSize": 64, "Predictor": "gshare"}}},
	})
	ps, err := parsed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := built.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(bs) {
		t.Fatalf("parsed expands %d specs, built %d", len(ps), len(bs))
	}
	for i := range ps {
		if ps[i] != bs[i] {
			t.Fatalf("spec %d: parsed %q != built %q", i, ps[i].Key(), bs[i].Key())
		}
	}
}
