// Reflective config mutation: the typed field-path layer ConfigSets are
// built on. A path is a dot-joined chain of exported field names into
// config.Core ("BQSize", "Cache.L1.SizeKB"); the leaf kinds are the
// scalar kinds Core is built from (string, bool, signed and unsigned
// integers, and the two enum types, which also accept their string
// forms). Unknown paths and type mismatches are hard errors — a typo in
// a sweep declaration must never silently expand to the base config.
package manifest

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"cfd/internal/config"
)

// enumValues maps the enum leaf types to their accepted string forms.
// Registering an enum here is what lets manifests write "gshare" instead
// of a bare ordinal; plain numbers are accepted too.
var enumValues = map[reflect.Type]map[string]uint64{
	reflect.TypeOf(config.PredictorKind(0)): {
		config.PredISLTAGE.String(): uint64(config.PredISLTAGE),
		config.PredGshare.String():  uint64(config.PredGshare),
		config.PredBimodal.String(): uint64(config.PredBimodal),
	},
	reflect.TypeOf(config.BQMissPolicy(0)): {
		config.SpecPop.String():    uint64(config.SpecPop),
		config.StallFetch.String(): uint64(config.StallFetch),
	},
}

// Apply returns base with every mutation in the set applied. The paths
// are applied in sorted order, so error reporting is deterministic.
func (cs ConfigSet) Apply(base config.Core) (config.Core, error) {
	cfg := base
	paths := make([]string, 0, len(cs.Set))
	for p := range cs.Set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := setPath(&cfg, p, cs.Set[p]); err != nil {
			return config.Core{}, err
		}
	}
	return cfg, nil
}

// setPath resolves one dotted field path inside cfg and assigns val.
func setPath(cfg *config.Core, path string, val any) error {
	v := reflect.ValueOf(cfg).Elem()
	for _, seg := range strings.Split(path, ".") {
		if v.Kind() != reflect.Struct {
			return fmt.Errorf("manifest: config path %q: %q is not a struct", path, seg)
		}
		f := v.FieldByName(seg)
		if !f.IsValid() {
			return fmt.Errorf("manifest: unknown config path %q: no field %q in %s", path, seg, v.Type())
		}
		v = f
	}
	if v.Kind() == reflect.Struct {
		return fmt.Errorf("manifest: config path %q names a struct, not a leaf field", path)
	}
	return setLeaf(v, path, val)
}

// setLeaf assigns val (a Go literal or a JSON-decoded value) to the leaf
// field f, converting through the enum registry where applicable.
func setLeaf(f reflect.Value, path string, val any) error {
	if vals, ok := enumValues[f.Type()]; ok {
		if s, isStr := val.(string); isStr {
			n, known := vals[s]
			if !known {
				return fmt.Errorf("manifest: config path %q: unknown %s value %q", path, f.Type(), s)
			}
			f.SetUint(n)
			return nil
		}
	}
	switch f.Kind() {
	case reflect.String:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("manifest: config path %q: want string, got %T", path, val)
		}
		f.SetString(s)
	case reflect.Bool:
		b, ok := val.(bool)
		if !ok {
			return fmt.Errorf("manifest: config path %q: want bool, got %T", path, val)
		}
		f.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := asInt64(val)
		if err != nil {
			return fmt.Errorf("manifest: config path %q: %w", path, err)
		}
		if f.OverflowInt(n) {
			return fmt.Errorf("manifest: config path %q: %d overflows %s", path, n, f.Type())
		}
		f.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := asInt64(val)
		if err != nil {
			return fmt.Errorf("manifest: config path %q: %w", path, err)
		}
		if n < 0 || f.OverflowUint(uint64(n)) {
			return fmt.Errorf("manifest: config path %q: %d out of range for %s", path, n, f.Type())
		}
		f.SetUint(uint64(n))
	default:
		return fmt.Errorf("manifest: config path %q: unsupported leaf kind %s", path, f.Kind())
	}
	return nil
}

// asInt64 accepts the integer encodings a mutation value arrives as: Go
// int literals from embedded manifests, float64 from decoded JSON.
func asInt64(val any) (int64, error) {
	switch n := val.(type) {
	case int:
		return int64(n), nil
	case int64:
		return n, nil
	case uint64:
		return int64(n), nil
	case float64:
		if n != float64(int64(n)) {
			return 0, fmt.Errorf("want integer, got %v", n)
		}
		return int64(n), nil
	default:
		return 0, fmt.Errorf("want integer, got %T", val)
	}
}

// LeafPaths returns every mutable field path of config.Core in sorted
// order — the complete mutation surface, which the tests pin against the
// struct reflectively (like the harness key-coverage pin) so a new Core
// field is automatically reachable from manifests.
func LeafPaths() []string {
	var paths []string
	var walk func(t reflect.Type, prefix string)
	walk = func(t reflect.Type, prefix string) {
		for i := 0; i < t.NumField(); i++ {
			ft := t.Field(i)
			p := ft.Name
			if prefix != "" {
				p = prefix + "." + ft.Name
			}
			if ft.Type.Kind() == reflect.Struct {
				walk(ft.Type, p)
				continue
			}
			paths = append(paths, p)
		}
	}
	walk(reflect.TypeOf(config.Core{}), "")
	sort.Strings(paths)
	return paths
}

// ConfigSetFrom returns the mutation set that transforms base into
// target: one entry per differing leaf, enums rendered in their string
// forms. It is how the harness's embedded manifests declare derived
// configurations (window scalings, depth sweeps, policy studies) with
// exact field-level equality to the constructors that define them.
func ConfigSetFrom(base, target config.Core) ConfigSet {
	set := map[string]any{}
	bv, tv := reflect.ValueOf(base), reflect.ValueOf(target)
	var walk func(b, t reflect.Value, prefix string)
	walk = func(b, t reflect.Value, prefix string) {
		for i := 0; i < b.NumField(); i++ {
			ft := b.Type().Field(i)
			p := ft.Name
			if prefix != "" {
				p = prefix + "." + ft.Name
			}
			bf, tf := b.Field(i), t.Field(i)
			if ft.Type.Kind() == reflect.Struct {
				walk(bf, tf, p)
				continue
			}
			if bf.Interface() == tf.Interface() {
				continue
			}
			set[p] = leafValue(tf)
		}
	}
	walk(bv, tv, "")
	return ConfigSet{Set: set}
}

// leafValue renders one leaf for a mutation set: enum types as their
// registered string form, everything else as its Go value.
func leafValue(f reflect.Value) any {
	if vals, ok := enumValues[f.Type()]; ok {
		n := f.Uint()
		for s, v := range vals {
			if v == n {
				return s
			}
		}
	}
	switch f.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return f.Uint()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return f.Int()
	default:
		return f.Interface()
	}
}
