// Package mem provides the sparse, paged data memory that backs both the
// functional emulator (architectural state) and the cycle-level pipeline
// (committed state updated at retirement).
package mem

import "encoding/binary"

// PageSize is the granularity of backing allocation.
const PageSize = 4096

type page [PageSize]byte

// Memory is a sparse 64-bit byte-addressable memory. The zero value is not
// usable; call New. Unwritten bytes read as zero.
//
// A Memory is single-writer: the engines own their memories for the length
// of a run. Reads also update the internal last-page cache, so even
// read-only sharing across goroutines is not safe.
type Memory struct {
	pages map[uint64]*page

	// Last-page cache: simulated accesses are heavily page-local, so one
	// remembered (page number, page) pair turns most lookups into a
	// compare. lastPage == nil means the cache is empty (never that the
	// page is absent).
	lastPN   uint64
	lastPage *page
}

// New returns an empty memory.
func New() *Memory { return &Memory{pages: make(map[uint64]*page)} }

func (m *Memory) pageFor(addr uint64, alloc bool) *page {
	pn := addr / PageSize
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil {
		if !alloc {
			return nil
		}
		p = new(page)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// LoadByte returns the byte at addr.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%PageSize]
}

// StoreByte stores b at addr.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr, true)[addr%PageSize] = b
}

// Read returns size bytes (1, 2, 4, or 8) at addr as a little-endian,
// zero-extended value. Accesses may cross page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 1:
			return uint64(p[off])
		}
	}
	// Page-crossing (or unusual size): byte path.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes (1, 2, 4, or 8) of val at addr,
// little-endian.
func (m *Memory) Write(addr uint64, size int, val uint64) {
	off := addr % PageSize
	if off+uint64(size) <= PageSize {
		p := m.pageFor(addr, true)
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:], val)
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
			return
		case 1:
			p[off] = byte(val)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.StoreByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// LoadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) LoadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if p := m.pageFor(addr, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		addr += n
	}
}

// StoreBytes copies src into memory starting at addr.
func (m *Memory) StoreBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr % PageSize
		n := PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(m.pageFor(addr, true)[off:off+n], src[:n])
		src = src[n:]
		addr += n
	}
}

// WriteUint64s stores a slice of 64-bit values contiguously at addr and
// returns the address one past the end.
func (m *Memory) WriteUint64s(addr uint64, vals []uint64) uint64 {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		m.StoreBytes(addr, buf[:])
		addr += 8
	}
	return addr
}

// Clone returns a deep copy of the memory.
func (m *Memory) Clone() *Memory {
	c := New()
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Equal reports whether two memories hold identical contents (treating
// absent pages as zero-filled).
func (m *Memory) Equal(o *Memory) bool {
	check := func(a, b *Memory) bool {
		for pn, p := range a.pages {
			q := b.pages[pn]
			if q == nil {
				if *p != (page{}) {
					return false
				}
				continue
			}
			if *p != *q {
				return false
			}
		}
		return true
	}
	return check(m, o) && check(o, m)
}

// Checksum returns an order-independent-free (deterministic, order-defined)
// FNV-1a hash over all nonzero pages; useful for workload output
// verification.
func (m *Memory) Checksum() uint64 {
	// Hash pages in ascending page-number order for determinism.
	var pns []uint64
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	// insertion sort (page counts are small)
	for i := 1; i < len(pns); i++ {
		for j := i; j > 0 && pns[j] < pns[j-1]; j-- {
			pns[j], pns[j-1] = pns[j-1], pns[j]
		}
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, pn := range pns {
		p := m.pages[pn]
		if *p == (page{}) {
			continue
		}
		for i := 0; i < 8; i++ {
			h ^= pn >> (8 * i) & 0xff
			h *= prime
		}
		for _, b := range p {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}
