package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write(100, 8, 0x1122334455667788)
	if got := m.Read(100, 8); got != 0x1122334455667788 {
		t.Fatalf("Read8 = %#x", got)
	}
	if got := m.Read(100, 4); got != 0x55667788 {
		t.Errorf("Read4 = %#x", got)
	}
	if got := m.Read(100, 2); got != 0x7788 {
		t.Errorf("Read2 = %#x", got)
	}
	if got := m.Read(100, 1); got != 0x88 {
		t.Errorf("Read1 = %#x", got)
	}
	if got := m.Read(104, 4); got != 0x11223344 {
		t.Errorf("Read4 high = %#x", got)
	}
}

func TestPageCrossing(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.Write(addr, 8, 0xdeadbeefcafebabe)
	if got := m.Read(addr, 8); got != 0xdeadbeefcafebabe {
		t.Fatalf("page-crossing read = %#x", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if got := m.Read(1<<40, 8); got != 0 {
		t.Errorf("unwritten = %#x, want 0", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Write(8, 8, 42)
	c := m.Clone()
	c.Write(8, 8, 99)
	if m.Read(8, 8) != 42 {
		t.Error("Clone shares storage with original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not Equal to original")
	}
}

func TestEqualTreatsZeroPagesAsAbsent(t *testing.T) {
	a, b := New(), New()
	a.Write(0, 8, 0) // allocates an all-zero page
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("all-zero page must compare equal to absent page")
	}
	a.Write(0, 1, 1)
	if a.Equal(b) {
		t.Error("differing memories compare equal")
	}
}

func TestChecksumDetectsChanges(t *testing.T) {
	a := New()
	a.WriteUint64s(0x1000, []uint64{1, 2, 3})
	c1 := a.Checksum()
	a.Write(0x1000, 8, 9)
	if a.Checksum() == c1 {
		t.Error("checksum unchanged after write")
	}
}

func TestChecksumDeterministic(t *testing.T) {
	build := func(order []uint64) uint64 {
		m := New()
		for _, a := range order {
			m.Write(a*PageSize, 8, a+1)
		}
		return m.Checksum()
	}
	if build([]uint64{1, 5, 3}) != build([]uint64{3, 1, 5}) {
		t.Error("checksum depends on write order")
	}
}

func TestWriteUint64sReturnsEnd(t *testing.T) {
	m := New()
	end := m.WriteUint64s(64, []uint64{7, 8})
	if end != 80 {
		t.Errorf("end = %d, want 80", end)
	}
	if m.Read(72, 8) != 8 {
		t.Errorf("second value = %d", m.Read(72, 8))
	}
}

func TestReadWriteProperty(t *testing.T) {
	f := func(addr uint64, val uint64) bool {
		addr %= 1 << 30
		m := New()
		m.Write(addr, 8, val)
		return m.Read(addr, 8) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New()
	src := []byte{1, 2, 3, 4, 5}
	m.StoreBytes(PageSize-2, src)
	dst := make([]byte, 5)
	m.LoadBytes(PageSize-2, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}
