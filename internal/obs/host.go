package obs

import (
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// HostStats is one host-resource snapshot: where the *process* is, as
// opposed to where the *simulation* is. Everything here is wall-clock
// and scheduler dependent by nature, so host samples are informational
// only — they are journal-tagged and served on /metrics, but never enter
// deterministic artifacts.
type HostStats struct {
	// RSSBytes is the process resident set size (0 when the platform
	// offers no cheap way to read it; Linux reads /proc/self/statm).
	RSSBytes uint64 `json:"rssBytes"`
	// HeapAllocBytes is the live Go heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	// TotalAllocBytes is the cumulative allocation volume.
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// GCPauseTotalNS is the cumulative stop-the-world pause time.
	GCPauseTotalNS uint64 `json:"gcPauseTotalNs"`
	// NumGC is the completed GC cycle count.
	NumGC uint32 `json:"numGC"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// AllocRate is the allocation rate in bytes/second over the last
	// sampling interval (0 on the first sample).
	AllocRate float64 `json:"allocBytesPerSec"`
}

// ReadHostStats takes one snapshot (AllocRate left 0 — rates need two).
func ReadHostStats() HostStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HostStats{
		RSSBytes:        readRSS(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		GCPauseTotalNS:  ms.PauseTotalNs,
		NumGC:           ms.NumGC,
		Goroutines:      runtime.NumGoroutine(),
	}
}

// readRSS returns the resident set size from /proc/self/statm (field 2,
// in pages), or 0 where that interface does not exist. Best-effort by
// design: host telemetry must never fail a run.
func readRSS() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

// HostSampler periodically snapshots host-resource state into a
// Registry (as probes reading atomics, so concurrent /metrics scrapes
// are race-free) and hands each sample to an optional notify callback —
// the hook the CLIs use to journal-tag samples so a slow campaign can be
// correlated with host pressure. Off unless started; stop with Stop.
type HostSampler struct {
	every    time.Duration
	notify   func(HostStats)
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	rss, heap, total, pause atomic.Uint64
	numGC                   atomic.Uint64
	goroutines              atomic.Uint64
	rate                    atomic.Uint64 // math.Float64bits
	samples                 atomic.Uint64
}

// StartHostSampler registers the host.* probe series on reg, takes an
// immediate first sample, and starts sampling every `every` (floored at
// 10ms) until Stop. notify, when non-nil, receives every sample off the
// sampler's own goroutine.
func StartHostSampler(reg *Registry, every time.Duration, notify func(HostStats)) *HostSampler {
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	h := &HostSampler{
		every:  every,
		notify: notify,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	reg.RegisterProbe("host.rss_bytes", ProbeFunc(func() float64 { return float64(h.rss.Load()) }))
	reg.RegisterProbe("host.heap_alloc_bytes", ProbeFunc(func() float64 { return float64(h.heap.Load()) }))
	reg.RegisterProbe("host.gc_pause_total_ns", ProbeFunc(func() float64 { return float64(h.pause.Load()) }))
	reg.RegisterProbe("host.gc_cycles", ProbeFunc(func() float64 { return float64(h.numGC.Load()) }))
	reg.RegisterProbe("host.goroutines", ProbeFunc(func() float64 { return float64(h.goroutines.Load()) }))
	reg.RegisterProbe("host.alloc_bytes_per_sec", ProbeFunc(func() float64 { return math.Float64frombits(h.rate.Load()) }))
	reg.RegisterProbe("host.samples", ProbeFunc(func() float64 { return float64(h.samples.Load()) }))
	h.sample(HostStats{}, time.Time{})
	go h.run()
	return h
}

// Samples returns how many snapshots the sampler has taken.
func (h *HostSampler) Samples() uint64 {
	if h == nil {
		return 0
	}
	return h.samples.Load()
}

// Stop halts the sampler and waits for its goroutine to exit.
// Idempotent and nil-safe.
func (h *HostSampler) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

func (h *HostSampler) run() {
	defer close(h.done)
	tick := time.NewTicker(h.every)
	defer tick.Stop()
	prev := HostStats{TotalAllocBytes: h.total.Load()}
	prevT := time.Now()
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			prev = h.sample(prev, prevT)
			prevT = time.Now()
		}
	}
}

// sample takes one snapshot, publishes it to the probes, and notifies.
func (h *HostSampler) sample(prev HostStats, prevT time.Time) HostStats {
	s := ReadHostStats()
	if !prevT.IsZero() {
		if dt := time.Since(prevT).Seconds(); dt > 0 {
			s.AllocRate = float64(s.TotalAllocBytes-prev.TotalAllocBytes) / dt
		}
	}
	h.rss.Store(s.RSSBytes)
	h.heap.Store(s.HeapAllocBytes)
	h.total.Store(s.TotalAllocBytes)
	h.pause.Store(s.GCPauseTotalNS)
	h.numGC.Store(uint64(s.NumGC))
	h.goroutines.Store(uint64(s.Goroutines))
	h.rate.Store(math.Float64bits(s.AllocRate))
	h.samples.Add(1)
	if h.notify != nil {
		h.notify(s)
	}
	return s
}
