package obs

import (
	"testing"
	"time"
)

// TestHostSampler pins the sampler contract: an immediate first sample,
// the host.* probe series registered and readable, notify called off the
// sampler goroutine, and an idempotent Stop.
func TestHostSampler(t *testing.T) {
	reg := NewRegistry()
	notified := make(chan HostStats, 64)
	h := StartHostSampler(reg, 10*time.Millisecond, func(s HostStats) {
		select {
		case notified <- s:
		default:
		}
	})
	if h.Samples() == 0 {
		t.Fatal("no immediate first sample")
	}
	deadline := time.After(2 * time.Second)
	for h.Samples() < 3 {
		select {
		case <-deadline:
			t.Fatal("sampler never ticked")
		case <-time.After(5 * time.Millisecond):
		}
	}
	h.Stop()
	h.Stop() // idempotent

	snap := reg.Snapshot()
	for _, name := range []string{
		"host.rss_bytes", "host.heap_alloc_bytes", "host.gc_pause_total_ns",
		"host.gc_cycles", "host.goroutines", "host.alloc_bytes_per_sec", "host.samples",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("probe %s not registered", name)
		}
	}
	if snap["host.heap_alloc_bytes"] <= 0 {
		t.Error("heap_alloc_bytes probe reads 0")
	}
	if snap["host.goroutines"] <= 0 {
		t.Error("goroutines probe reads 0")
	}
	if snap["host.samples"] < 3 {
		t.Errorf("samples probe reads %v", snap["host.samples"])
	}
	select {
	case s := <-notified:
		if s.HeapAllocBytes == 0 || s.Goroutines == 0 {
			t.Errorf("notify got empty sample: %+v", s)
		}
	default:
		t.Error("notify never called")
	}

	// Nil sampler: every method is a safe no-op.
	var nilH *HostSampler
	nilH.Stop()
	if nilH.Samples() != 0 {
		t.Error("nil sampler has samples")
	}
}

// TestReadHostStats pins the snapshot itself (RSS is best-effort, the
// rest must be live).
func TestReadHostStats(t *testing.T) {
	s := ReadHostStats()
	if s.HeapAllocBytes == 0 || s.TotalAllocBytes == 0 || s.Goroutines == 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
}
