// Package journal is the sweep-scale structured event journal: a
// schema-versioned JSONL stream ("cfd-journal" v1) of typed events
// recording what a campaign did — sweep lifecycle, per-spec
// submit/start/done with result counters, store quarantines and retries,
// watchdog expiries, and host-resource samples.
//
// Design rules:
//
//   - Crash-safe. Events are written line-buffered through a dedicated
//     writer goroutine and flushed by event class: everything except
//     high-rate informational samples (host_sample, store_retry) is
//     flushed to the file as it is written, so a SIGKILLed sweep's
//     journal ends at a line boundary and replays to the work that
//     actually completed.
//   - Non-blocking for the hot path. Emit hands the event to a buffered
//     channel; the sweep's workers never wait on disk I/O. TryEmit (used
//     for droppable informational events) never blocks at all.
//   - Deterministic in content. Every field of every durable event
//     derives from the simulation (spec keys, cycles, IPC, fault kinds),
//     never from wall clock or scheduling. The wall-clock timestamp and
//     arrival sequence are confined to the informational `ts` and `seq`
//     fields, which SortedReplay strips — so the canonical replay of a
//     sweep is byte-identical for any -jobs setting.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cfd/internal/obs"
)

// Schema identifies the journal line family; Version its revision. The
// first line of every journal is a journal_open event carrying both.
const (
	Schema  = "cfd-journal"
	Version = 1
)

// Type enumerates the journal's event taxonomy.
type Type string

const (
	// JournalOpen is the header line: schema, version, and the producing
	// tool. Always the first event.
	JournalOpen Type = "journal_open"
	// JournalClose is the trailer line with the total event count. A
	// journal without one was truncated by a crash — still valid, still
	// replayable.
	JournalClose Type = "journal_close"

	// SweepStart opens one Sweep: total specs and the (informational)
	// worker count.
	SweepStart Type = "sweep_start"
	// SweepFinish closes one Sweep: terminal completed/failed counts and
	// how many completions were resume skips restored from the store.
	SweepFinish Type = "sweep_finish"

	// SpecSubmit records a sweep worker picking up one spec.
	SpecSubmit Type = "spec_submit"
	// SpecStart records a fresh simulation beginning (cache and store
	// misses only — hits skip straight to spec_done).
	SpecStart Type = "spec_start"
	// SpecDone is the terminal record for one spec: status, counters,
	// and how the result materialized (simulated, cache hit, store hit).
	SpecDone Type = "spec_done"

	// StoreQuarantine records the persistent store setting aside a
	// corrupt or mismatched entry.
	StoreQuarantine Type = "store_quarantine"
	// StoreRetry records one transient-I/O retry attempt inside the
	// store. Informational: wall-clock-dependent, droppable, excluded
	// from the canonical replay.
	StoreRetry Type = "store_retry"

	// WatchdogExpiry flags a spec whose run was stopped by its watchdog
	// (the paired spec_done carries the full fault record).
	WatchdogExpiry Type = "watchdog_expiry"

	// HostSample is one host-resource snapshot from the HostSampler.
	// Informational: wall-clock-driven, droppable, excluded from the
	// canonical replay.
	HostSample Type = "host_sample"
)

// Event is one journal line. It is the union of every event type's
// fields; unset fields are omitted from the JSON encoding, so each line
// carries only what its type defines (see the taxonomy table in
// DESIGN.md).
type Event struct {
	// Seq is the arrival sequence number (1-based) assigned by the
	// writer. Informational: stripped by SortedReplay.
	Seq uint64 `json:"seq,omitempty"`
	// TS is the wall-clock write time (RFC3339Nano, UTC). Informational:
	// stripped by SortedReplay.
	TS   string `json:"ts,omitempty"`
	Type Type   `json:"event"`

	// Header fields (journal_open).
	Schema  string `json:"schema,omitempty"`
	Version int    `json:"version,omitempty"`
	Tool    string `json:"tool,omitempty"`

	// Sweep scoping: the 1-based sweep sequence number within the
	// process. 0 on events outside any sweep.
	Sweep uint64 `json:"sweep,omitempty"`
	// Jobs is the sweep's worker count. Informational (an execution
	// setting, not simulation content): stripped by SortedReplay.
	Jobs  int `json:"jobs,omitempty"`
	Total int `json:"total,omitempty"`
	// Manifest is the content digest of the experiment manifest whose
	// expansion this sweep runs (sweep_start, -manifest runs only) —
	// the provenance link from journal to declaration.
	Manifest string `json:"manifest,omitempty"`

	// Sweep terminal counts (sweep_finish, journal_close).
	Completed int `json:"completed,omitempty"`
	Failed    int `json:"failed,omitempty"`
	// ResumeSkips counts completions restored from the persistent store
	// instead of simulated — the resumed fraction of the sweep.
	ResumeSkips int    `json:"resumeSkips,omitempty"`
	Events      uint64 `json:"events,omitempty"` // journal_close: lines written before it

	// Spec identity (spec_* and watchdog_expiry events).
	Key      string `json:"key,omitempty"`
	StoreKey string `json:"storeKey,omitempty"`
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Config   string `json:"config,omitempty"`

	// Spec outcome (spec_done).
	Status   string  `json:"status,omitempty"` // "ok" or "fault"
	Cycles   uint64  `json:"cycles,omitempty"`
	Retired  uint64  `json:"retired,omitempty"`
	IPC      float64 `json:"ipc,omitempty"`
	CacheHit bool    `json:"cacheHit,omitempty"` // served by the in-memory singleflight cache
	StoreHit bool    `json:"storeHit,omitempty"` // restored from the persistent store
	Stored   bool    `json:"stored,omitempty"`   // persisted to the store by this completion
	Fault    string  `json:"fault,omitempty"`    // fault.Kind for typed faults
	Error    string  `json:"error,omitempty"`

	// Store diagnostics (store_quarantine).
	Entry  string `json:"entry,omitempty"` // entry file base name
	Reason string `json:"reason,omitempty"`

	// Host telemetry (host_sample).
	Host *obs.HostStats `json:"host,omitempty"`
}

// Journal is the event bus plus its optional file sink. Emit queues
// events to a dedicated writer goroutine; subscribers (e.g. the live
// /status tracker) observe every event in write order. A nil *Journal is
// a valid disabled journal: every method is an allocation-free no-op.
type Journal struct {
	ch   chan Event
	done chan struct{}

	mu     sync.Mutex
	closed bool
	subs   []func(Event)

	path string
	f    *os.File
	w    *bufio.Writer

	seq     uint64 // writer-goroutine-owned
	events  atomic.Uint64
	dropped atomic.Uint64
	werr    atomic.Value // first write error (error)
}

// busDepth bounds the event queue. Sweeps emit a handful of events per
// spec and specs take milliseconds to simulate, so the writer goroutine
// keeps far ahead of the producers; the depth only matters when the disk
// wedges, and then Emit degrades to waiting on the queue, never on I/O
// directly.
const busDepth = 1024

// New returns a bus-only journal (no file sink): events still flow to
// subscribers, which is what a live -listen server without -journal
// needs.
func New(tool string) *Journal {
	j := &Journal{ch: make(chan Event, busDepth), done: make(chan struct{})}
	go j.run()
	j.Emit(Event{Type: JournalOpen, Schema: Schema, Version: Version, Tool: tool})
	return j
}

// Open creates (truncating) the journal file at path and returns the
// journal writing to it, with the journal_open header already queued.
func Open(path, tool string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		ch:   make(chan Event, busDepth),
		done: make(chan struct{}),
		path: path,
		f:    f,
		w:    bufio.NewWriter(f),
	}
	go j.run()
	j.Emit(Event{Type: JournalOpen, Schema: Schema, Version: Version, Tool: tool})
	return j, nil
}

// Path returns the file sink's path ("" for a bus-only or nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Events returns the number of events written so far.
func (j *Journal) Events() uint64 {
	if j == nil {
		return 0
	}
	return j.events.Load()
}

// Dropped returns the number of droppable events TryEmit discarded
// because the bus was full.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Err returns the first file-sink write error, if any. The journal keeps
// accepting events after a write error (subscribers still see them); the
// caller checks Err after Close.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	if v := j.werr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Subscribe registers fn to observe every subsequent event, called on
// the writer goroutine in write order. Keep fn fast: it shares the
// writer's throughput, though never the sweep's.
func (j *Journal) Subscribe(fn func(Event)) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.subs = append(j.subs, fn)
	j.mu.Unlock()
}

// Emit queues one event. It blocks only when the bus is full (a wedged
// or absent consumer), never on disk I/O. No-op on a nil or closed
// journal.
func (j *Journal) Emit(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return
	}
	j.ch <- ev
	j.mu.Unlock()
}

// TryEmit queues one event if the bus has room and reports whether it
// was accepted. High-rate informational events (host samples, store
// retries) use it so they can never stall anything.
func (j *Journal) TryEmit(ev Event) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false
	}
	select {
	case j.ch <- ev:
		return true
	default:
		j.dropped.Add(1)
		return false
	}
}

// Close drains the bus, writes the journal_close trailer, flushes, and
// closes the file sink. Idempotent; returns the first write error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return j.Err()
	}
	j.closed = true
	j.ch <- Event{Type: JournalClose, Events: 0} // trailer; count filled by the writer
	close(j.ch)
	j.mu.Unlock()
	<-j.done
	return j.Err()
}

// run is the writer goroutine: assign sequence and timestamp, encode,
// write, flush by class, fan out to subscribers.
func (j *Journal) run() {
	for ev := range j.ch {
		j.seq++
		ev.Seq = j.seq
		ev.TS = time.Now().UTC().Format(time.RFC3339Nano)
		if ev.Type == JournalClose {
			ev.Events = j.seq - 1
		}
		j.write(ev)
		j.events.Store(j.seq)
		j.mu.Lock()
		subs := j.subs
		j.mu.Unlock()
		for _, fn := range subs {
			fn(ev)
		}
	}
	if j.w != nil {
		if err := j.w.Flush(); err != nil {
			j.werr.CompareAndSwap(nil, err)
		}
	}
	if j.f != nil {
		if err := j.f.Close(); err != nil {
			j.werr.CompareAndSwap(nil, err)
		}
	}
	close(j.done)
}

// write encodes one line into the file sink (no-op for bus-only
// journals) and flushes it unless the event's class is droppable.
func (j *Journal) write(ev Event) {
	if j.w == nil {
		return
	}
	data, err := json.Marshal(&ev)
	if err != nil {
		j.werr.CompareAndSwap(nil, err)
		return
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		j.werr.CompareAndSwap(nil, err)
		return
	}
	if flushClass(ev.Type) {
		if err := j.w.Flush(); err != nil {
			j.werr.CompareAndSwap(nil, err)
		}
	}
}

// flushClass reports whether an event class is flushed to disk as it is
// written. Durable events (lifecycle, spec terminals, quarantines) are;
// high-rate informational samples ride along on the next durable flush.
func flushClass(t Type) bool {
	switch t {
	case HostSample, StoreRetry:
		return false
	}
	return true
}

// Read parses a journal stream into its events, validating only JSON
// well-formedness per line (structural validation is Validate's job). A
// trailing partial line — the signature of a crashed writer — is
// ignored, like a torn store write.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	var torn error // held back: only fatal if more lines follow it
	line := 0
	for sc.Scan() {
		line++
		if torn != nil {
			// The bad line was not the last — that is corruption, not a
			// crashed writer's torn tail.
			return nil, torn
		}
		data := sc.Bytes()
		if len(data) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(data, &ev); err != nil {
			torn = fmt.Errorf("journal: line %d: %w", line, err)
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return events, nil
}

// ReadFile reads and parses the journal at path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Summary is what Validate learned about a journal.
type Summary struct {
	Events      int
	Sweeps      int
	Submitted   int
	Done        int
	OK          int
	Faults      int
	StoreHits   int
	CacheHits   int
	Quarantines int
	HostSamples int
	// Truncated reports a journal without a journal_close trailer — a
	// crashed or killed writer. Valid: the flushed prefix replays.
	Truncated bool
}

// Validate checks the journal's structural invariants: the header line,
// schema and version, known event types, strictly increasing sequence
// numbers, and per-type required fields. A missing journal_close trailer
// is not an error (crash truncation is an expected state); everything
// else is.
func Validate(events []Event) (*Summary, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("journal: empty")
	}
	head := events[0]
	if head.Type != JournalOpen {
		return nil, fmt.Errorf("journal: first event is %q, want %q", head.Type, JournalOpen)
	}
	if head.Schema != Schema {
		return nil, fmt.Errorf("journal: schema %q, want %q", head.Schema, Schema)
	}
	if head.Version != Version {
		return nil, fmt.Errorf("journal: version %d, want %d", head.Version, Version)
	}
	sum := &Summary{Events: len(events), Truncated: true}
	var prevSeq uint64
	for i, ev := range events {
		if ev.Seq <= prevSeq {
			return nil, fmt.Errorf("journal: event %d: seq %d not after %d", i, ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		switch ev.Type {
		case JournalOpen:
			if i != 0 {
				return nil, fmt.Errorf("journal: event %d: duplicate %s", i, JournalOpen)
			}
		case JournalClose:
			if i != len(events)-1 {
				return nil, fmt.Errorf("journal: event %d: %s before the end", i, JournalClose)
			}
			sum.Truncated = false
		case SweepStart:
			if ev.Sweep == 0 {
				return nil, fmt.Errorf("journal: event %d: %s without sweep id", i, ev.Type)
			}
			sum.Sweeps++
		case SweepFinish:
			if ev.Sweep == 0 {
				return nil, fmt.Errorf("journal: event %d: %s without sweep id", i, ev.Type)
			}
		case SpecSubmit:
			if ev.Key == "" {
				return nil, fmt.Errorf("journal: event %d: %s without key", i, ev.Type)
			}
			sum.Submitted++
		case SpecStart, WatchdogExpiry:
			if ev.Key == "" {
				return nil, fmt.Errorf("journal: event %d: %s without key", i, ev.Type)
			}
		case SpecDone:
			if ev.Key == "" {
				return nil, fmt.Errorf("journal: event %d: %s without key", i, ev.Type)
			}
			sum.Done++
			switch ev.Status {
			case "ok":
				sum.OK++
			case "fault":
				sum.Faults++
				if ev.Fault == "" && ev.Error == "" {
					return nil, fmt.Errorf("journal: event %d: fault status without fault or error", i)
				}
			default:
				return nil, fmt.Errorf("journal: event %d: %s status %q", i, ev.Type, ev.Status)
			}
			if ev.StoreHit {
				sum.StoreHits++
			}
			if ev.CacheHit {
				sum.CacheHits++
			}
		case StoreQuarantine:
			sum.Quarantines++
		case StoreRetry:
		case HostSample:
			if ev.Host == nil {
				return nil, fmt.Errorf("journal: event %d: %s without host stats", i, ev.Type)
			}
			sum.HostSamples++
		default:
			return nil, fmt.Errorf("journal: event %d: unknown type %q", i, ev.Type)
		}
	}
	return sum, nil
}

// CompletedKeys returns the sorted store keys (falling back to spec keys
// when no store was attached) of every spec_done event — the replayed
// set of completed work. onlyStored restricts it to completions the
// journal records as persisted, which is the invariant the resume CI
// gate checks against the store directory.
func CompletedKeys(events []Event, onlyStored bool) []string {
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Type != SpecDone {
			continue
		}
		if onlyStored && !ev.Stored {
			continue
		}
		k := ev.StoreKey
		if k == "" {
			k = ev.Key
		}
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// replayRank orders event classes within one sweep for the canonical
// replay: lifecycle opens, then per-spec classes in submit/start/done
// order, then watchdog and store diagnostics, then the sweep close.
func replayRank(t Type) int {
	switch t {
	case JournalOpen:
		return 0
	case SweepStart:
		return 1
	case SpecSubmit:
		return 2
	case SpecStart:
		return 3
	case SpecDone:
		return 4
	case WatchdogExpiry:
		return 5
	case StoreQuarantine:
		return 6
	case SweepFinish:
		return 7
	case JournalClose:
		return 9
	}
	return 8
}

// replayGroup splits the journal into header / body / trailer so the
// sort never interleaves the open and close lines with sweep bodies.
func replayGroup(t Type) int {
	switch t {
	case JournalOpen:
		return 0
	case JournalClose:
		return 2
	}
	return 1
}

// SortedReplay returns the canonical deterministic replay of a journal:
// informational events (host samples, store retries) are dropped;
// informational fields (seq, wall-clock ts, jobs, the trailer's event
// count) are stripped; and the durable events are ordered on the virtual
// spec-key timeline — by sweep, then event class, then spec key — so the
// replay of a given sweep is byte-identical whatever the worker count or
// completion interleaving was.
func SortedReplay(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for _, ev := range events {
		switch ev.Type {
		case HostSample, StoreRetry:
			continue
		}
		ev.Seq = 0
		ev.TS = ""
		ev.Jobs = 0
		ev.Events = 0
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, k int) bool {
		a, b := out[i], out[k]
		if ga, gb := replayGroup(a.Type), replayGroup(b.Type); ga != gb {
			return ga < gb
		}
		if a.Sweep != b.Sweep {
			return a.Sweep < b.Sweep
		}
		if ra, rb := replayRank(a.Type), replayRank(b.Type); ra != rb {
			return ra < rb
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		// Duplicate submissions of one spec within a sweep produce one
		// simulated and one cache-hit spec_done whose arrival order is a
		// race; order the fresh completion first so replays stay
		// byte-identical.
		if a.CacheHit != b.CacheHit {
			return !a.CacheHit
		}
		return a.Entry < b.Entry
	})
	return out
}

// Write encodes events as JSONL to w (the inverse of Read).
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		data, err := json.Marshal(&ev)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RewriteSorted replaces the journal file at path with its canonical
// sorted replay (the -journal-sorted mode): read, canonicalize, and
// atomically swap via a temp file in the same directory.
func RewriteSorted(path string) error {
	events, err := ReadFile(path)
	if err != nil {
		return err
	}
	if _, err := Validate(events); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-sorted-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, SortedReplay(events)); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
