package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cfd/internal/obs"
)

// TestRoundTrip pins the basic contract: events emitted through the bus
// land in the file in order, framed by the journal_open header and the
// journal_close trailer, and read back intact.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: SweepStart, Sweep: 1, Total: 2, Jobs: 4})
	j.Emit(Event{Type: SpecSubmit, Sweep: 1, Key: "a"})
	j.Emit(Event{Type: SpecDone, Sweep: 1, Key: "a", Status: "ok", Cycles: 100, Retired: 50, IPC: 0.5})
	j.Emit(Event{Type: SweepFinish, Sweep: 1, Total: 2, Completed: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6 (open + 4 + close)", len(events))
	}
	if events[0].Type != JournalOpen || events[0].Schema != Schema || events[0].Version != Version || events[0].Tool != "test" {
		t.Fatalf("bad header: %+v", events[0])
	}
	last := events[len(events)-1]
	if last.Type != JournalClose || last.Events != 5 {
		t.Fatalf("bad trailer: %+v", last)
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: seq %d", i, ev.Seq)
		}
		if ev.TS == "" {
			t.Fatalf("event %d: no timestamp", i)
		}
	}
	sum, err := Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Truncated || sum.Sweeps != 1 || sum.Done != 1 || sum.OK != 1 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if j.Events() != 6 {
		t.Fatalf("Events() = %d, want 6", j.Events())
	}
}

// TestNilJournalSafe pins the disabled contract: every method on a nil
// *Journal is a safe no-op.
func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	j.Emit(Event{Type: SpecDone})
	if j.TryEmit(Event{Type: HostSample}) {
		t.Fatal("TryEmit on nil journal accepted")
	}
	j.Subscribe(func(Event) {})
	if j.Path() != "" || j.Events() != 0 || j.Dropped() != 0 || j.Err() != nil || j.Close() != nil {
		t.Fatal("nil journal leaked state")
	}
}

// TestCrashSafeFlush pins the crash-safety contract: durable events are
// readable from the file before Close — the state a SIGKILL leaves
// behind — while a trailing partial line never poisons the read.
func TestCrashSafeFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: SweepStart, Sweep: 1, Total: 1, Jobs: 1})
	j.Emit(Event{Type: SpecDone, Sweep: 1, Key: "k", Status: "ok"})
	// Wait for the writer to drain without closing (Events counts writes).
	waitFor(t, func() bool { return j.Events() == 3 })

	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d flushed events before Close, want 3", len(events))
	}
	sum, err := Validate(events)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Truncated {
		t.Fatal("journal without trailer not reported truncated")
	}
	j.Close()

	// A torn final line (partial write at kill time) is ignored.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"event":"spec_done","key":"torn`)
	f.Close()
	again, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 4 { // 3 + close trailer; torn line dropped
		t.Fatalf("got %d events with torn tail, want 4", len(again))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestCloseIdempotent pins that double Close is safe and Emit after
// Close is a no-op.
func TestCloseIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: SpecDone, Key: "late"}) // must not panic or write
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want header+trailer", len(events))
	}
}

// TestValidateRejects pins the structural checks.
func TestValidateRejects(t *testing.T) {
	head := Event{Seq: 1, Type: JournalOpen, Schema: Schema, Version: Version}
	cases := []struct {
		name   string
		events []Event
	}{
		{"empty", nil},
		{"no header", []Event{{Seq: 1, Type: SweepStart, Sweep: 1}}},
		{"bad schema", []Event{{Seq: 1, Type: JournalOpen, Schema: "other", Version: Version}}},
		{"bad version", []Event{{Seq: 1, Type: JournalOpen, Schema: Schema, Version: Version + 1}}},
		{"seq not increasing", []Event{head, {Seq: 1, Type: SweepStart, Sweep: 1}}},
		{"done without key", []Event{head, {Seq: 2, Type: SpecDone, Status: "ok"}}},
		{"done bad status", []Event{head, {Seq: 2, Type: SpecDone, Key: "k", Status: "meh"}}},
		{"fault without cause", []Event{head, {Seq: 2, Type: SpecDone, Key: "k", Status: "fault"}}},
		{"sweep without id", []Event{head, {Seq: 2, Type: SweepStart}}},
		{"host sample without stats", []Event{head, {Seq: 2, Type: HostSample}}},
		{"unknown type", []Event{head, {Seq: 2, Type: "mystery"}}},
		{"close mid-stream", []Event{head, {Seq: 2, Type: JournalClose}, {Seq: 3, Type: SweepStart, Sweep: 1}}},
	}
	for _, tc := range cases {
		if _, err := Validate(tc.events); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestTryEmitDrops pins that TryEmit counts drops instead of blocking
// when the bus is saturated: a subscriber wedges the writer goroutine,
// the flood fills the bus, and the excess drops.
func TestTryEmitDrops(t *testing.T) {
	j := New("test")
	block := make(chan struct{})
	j.Subscribe(func(Event) { <-block }) // wedge the writer until released
	hs := obs.ReadHostStats()
	accepted := 0
	const n = busDepth * 2
	for i := 0; i < n; i++ {
		if j.TryEmit(Event{Type: HostSample, Host: &hs}) {
			accepted++
		}
	}
	close(block)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("every TryEmit dropped")
	}
	dropped := int(j.Dropped())
	if dropped == 0 {
		t.Fatal("no TryEmit dropped with a wedged writer")
	}
	if accepted+dropped != n {
		t.Fatalf("accepted %d + dropped %d != %d", accepted, dropped, n)
	}
}

// TestSortedReplayCanonical pins the canonicalization: two journals of
// the same sweep content with different arrival orders, sequence
// numbers, timestamps, and jobs settings replay byte-identically, with
// informational events dropped.
func TestSortedReplayCanonical(t *testing.T) {
	hs := obs.ReadHostStats()
	mk := func(jobs int, order []Event) []Event {
		evs := []Event{{Type: JournalOpen, Schema: Schema, Version: Version, Tool: "test"}}
		evs = append(evs, Event{Type: SweepStart, Sweep: 1, Total: 2, Jobs: jobs})
		evs = append(evs, order...)
		evs = append(evs, Event{Type: HostSample, Host: &hs})
		evs = append(evs, Event{Type: SweepFinish, Sweep: 1, Total: 2, Completed: 2})
		evs = append(evs, Event{Type: JournalClose, Events: uint64(len(evs))})
		for i := range evs {
			evs[i].Seq = uint64(i + 1)
			evs[i].TS = "2026-01-01T00:00:00Z"
		}
		return evs
	}
	a := mk(1, []Event{
		{Type: SpecSubmit, Sweep: 1, Key: "a"},
		{Type: SpecDone, Sweep: 1, Key: "a", Status: "ok", Cycles: 10},
		{Type: SpecSubmit, Sweep: 1, Key: "b"},
		{Type: SpecDone, Sweep: 1, Key: "b", Status: "ok", Cycles: 20},
	})
	b := mk(8, []Event{
		{Type: SpecSubmit, Sweep: 1, Key: "b"},
		{Type: SpecSubmit, Sweep: 1, Key: "a"},
		{Type: SpecDone, Sweep: 1, Key: "b", Status: "ok", Cycles: 20},
		{Type: SpecDone, Sweep: 1, Key: "a", Status: "ok", Cycles: 10},
	})
	var wa, wb strings.Builder
	if err := Write(&wa, SortedReplay(a)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&wb, SortedReplay(b)); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Fatalf("replays differ:\n%s\nvs\n%s", wa.String(), wb.String())
	}
	if strings.Contains(wa.String(), "host_sample") {
		t.Fatal("replay kept an informational host_sample")
	}
	if strings.Contains(wa.String(), `"seq"`) || strings.Contains(wa.String(), `"ts"`) || strings.Contains(wa.String(), `"jobs"`) {
		t.Fatalf("replay kept informational fields:\n%s", wa.String())
	}
}

// TestRewriteSorted pins the on-disk canonicalization path.
func TestRewriteSorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	j, err := Open(path, "test")
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(Event{Type: SweepStart, Sweep: 1, Total: 2, Jobs: 2})
	j.Emit(Event{Type: SpecSubmit, Sweep: 1, Key: "b"})
	j.Emit(Event{Type: SpecSubmit, Sweep: 1, Key: "a"})
	j.Emit(Event{Type: SpecDone, Sweep: 1, Key: "b", Status: "ok"})
	j.Emit(Event{Type: SpecDone, Sweep: 1, Key: "a", Status: "ok"})
	j.Emit(Event{Type: SweepFinish, Sweep: 1, Total: 2, Completed: 2})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RewriteSorted(path); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, ev := range events {
		if ev.Type == SpecSubmit {
			keys = append(keys, ev.Key)
		}
		if ev.Seq != 0 || ev.TS != "" {
			t.Fatalf("informational field survived canonicalization: %+v", ev)
		}
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("submits not in key order: %v", keys)
	}
}

// TestCompletedKeys pins the resume-gate helper: stored completions only,
// keyed by store key when present, deduplicated and sorted.
func TestCompletedKeys(t *testing.T) {
	events := []Event{
		{Type: SpecDone, Key: "b", StoreKey: "b|n=1", Stored: true},
		{Type: SpecDone, Key: "a", StoreKey: "a|n=1", Stored: true},
		{Type: SpecDone, Key: "a", StoreKey: "a|n=1", Stored: true}, // dup
		{Type: SpecDone, Key: "c", Stored: false},                  // not persisted
		{Type: SpecDone, Key: "d"},                                 // no store attached
	}
	got := CompletedKeys(events, true)
	if len(got) != 2 || got[0] != "a|n=1" || got[1] != "b|n=1" {
		t.Fatalf("stored keys = %v", got)
	}
	all := CompletedKeys(events, false)
	if len(all) != 4 {
		t.Fatalf("all keys = %v", all)
	}
}
