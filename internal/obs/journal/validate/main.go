// Command validate checks cfd-journal files: structural validation
// (header, schema/version, sequence monotonicity, per-type required
// fields) plus, with -store, the resume invariant — every completion
// the journal records as stored must have its entry present in the
// store directory, even when the producing process was SIGKILLed
// mid-sweep. With -replay it also writes the canonical sorted replay,
// which is byte-identical across -jobs settings.
//
// Usage:
//
//	go run ./internal/obs/journal/validate [-store dir] [-replay out] journal...
//
// Exit status 0 when every journal validates, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cfd/internal/obs/journal"
)

func main() {
	storeDir := flag.String("store", "", "store directory to check stored completions against")
	replay := flag.String("replay", "", "write the canonical sorted replay to this path ('-' = stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: validate [-store dir] [-replay out] journal...")
		os.Exit(2)
	}

	ok := true
	for _, path := range flag.Args() {
		if err := validateOne(path, *storeDir, *replay); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

func validateOne(path, storeDir, replay string) error {
	events, err := journal.ReadFile(path)
	if err != nil {
		return err
	}
	sum, err := journal.Validate(events)
	if err != nil {
		return err
	}
	state := "complete"
	if sum.Truncated {
		state = "truncated (no trailer — crashed writer)"
	}
	fmt.Printf("%s: %s\n", path, state)
	fmt.Printf("  events=%d sweeps=%d submitted=%d done=%d ok=%d faults=%d\n",
		sum.Events, sum.Sweeps, sum.Submitted, sum.Done, sum.OK, sum.Faults)
	fmt.Printf("  storeHits=%d cacheHits=%d quarantines=%d hostSamples=%d\n",
		sum.StoreHits, sum.CacheHits, sum.Quarantines, sum.HostSamples)

	if storeDir != "" {
		if err := checkStore(events, storeDir); err != nil {
			return err
		}
	}
	if replay != "" {
		if err := writeReplay(events, replay); err != nil {
			return err
		}
	}
	return nil
}

// checkStore verifies the resume invariant: the set of store keys the
// journal says were persisted is a subset of the entries actually on
// disk. The harness persists synchronously before journaling spec_done,
// so this holds even for a journal truncated by SIGKILL.
func checkStore(events []journal.Event, dir string) error {
	keys := journal.CompletedKeys(events, true)
	have, err := storeKeys(dir)
	if err != nil {
		return err
	}
	missing := 0
	for _, k := range keys {
		if !have[k] {
			fmt.Fprintf(os.Stderr, "  stored completion missing from store: %s\n", k)
			missing++
		}
	}
	if missing > 0 {
		return fmt.Errorf("%d journaled completions missing from store %s", missing, dir)
	}
	fmt.Printf("  store check: %d stored completions all present in %s (%d entries)\n",
		len(keys), dir, len(have))
	return nil
}

// storeKeys reads the key preimage out of every entry envelope in the
// store's entries directory. Only the envelope's key field is decoded —
// the store's own Get path does the full verification.
func storeKeys(dir string) (map[string]bool, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "entries", "*.json"))
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var env struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(data, &env); err != nil {
			// A torn entry is the store's problem (it will quarantine on
			// read); it cannot satisfy a journaled completion.
			continue
		}
		keys[env.Key] = true
	}
	return keys, nil
}

func writeReplay(events []journal.Event, out string) error {
	sorted := journal.SortedReplay(events)
	if out == "-" {
		return journal.Write(os.Stdout, sorted)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := journal.Write(f, sorted); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
