// Package obs is the observability layer: a zero-cost-when-disabled
// instrumentation API (counters, gauges, bounded histograms, probes), an
// interval sampler producing deterministic time series and queue-occupancy
// histograms, and a Chrome/Perfetto trace-event exporter.
//
// Design rules:
//
//   - Disabled means free. Every instrument and the Observer are nil-safe:
//     methods on a nil receiver are no-ops that allocate nothing, and the
//     engines guard their per-cycle hooks with a single nil test. The
//     overhead contract is pinned by TestDisabledProbesAllocFree and the
//     BenchmarkPipelineObserved/BenchmarkPipelineThroughput pair.
//   - Deterministic output. Everything recorded derives from simulated
//     time (cycles or retired instructions), never wall clock, so the
//     exported sections and trace files are byte-identical across -jobs
//     settings.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil Counter is a no-op. Counters are not synchronized: each engine
// run owns its instruments (the simulators are single-threaded per core).
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. The zero value is ready to use; a nil
// Gauge is a no-op.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last recorded value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Hist is a bounded histogram of small non-negative integers (queue
// occupancies, widths). Bucket i counts observations of value i; the last
// bucket also absorbs overflow. A nil Hist is a no-op.
type Hist struct{ counts []uint64 }

// NewHist returns a histogram covering values 0..max (max+1 buckets).
func NewHist(max int) *Hist {
	if max < 0 {
		max = 0
	}
	return &Hist{counts: make([]uint64, max+1)}
}

// Observe records one observation of v, clamped into [0, max].
func (h *Hist) Observe(v int) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
}

// Counts returns the raw buckets (nil for a nil Hist). The slice is owned
// by the histogram; callers must not mutate it.
func (h *Hist) Counts() []uint64 {
	if h == nil {
		return nil
	}
	return h.counts
}

// Total returns the number of observations.
func (h *Hist) Total() uint64 {
	var t uint64
	if h != nil {
		for _, c := range h.counts {
			t += c
		}
	}
	return t
}

// Mean returns the average observed value (0 with no observations).
func (h *Hist) Mean() float64 {
	if h == nil {
		return 0
	}
	var sum, n uint64
	for i, c := range h.counts {
		sum += uint64(i) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Max returns the largest observed value (0 with no observations).
func (h *Hist) Max() int {
	if h == nil {
		return 0
	}
	for i := len(h.counts) - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return i
		}
	}
	return 0
}

// Probe is a named read-only metric sampled on demand — the pull-side
// complement to the push-side instruments. Engines and the harness register
// probes for state they already track (queue lengths, cache counters), so
// sampling costs nothing between reads.
type Probe interface {
	Value() float64
}

// ProbeFunc adapts a function to the Probe interface.
type ProbeFunc func() float64

// Value implements Probe.
func (f ProbeFunc) Value() float64 { return f() }

// Registry is a named collection of instruments and probes. A nil Registry
// hands out nil instruments, so instrumented code pays only nil checks when
// observability is off. Registration and snapshotting are mutex-guarded;
// the instruments themselves are not (single-writer per engine run).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	probes   map[string]Probe
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Hist),
		probes:   make(map[string]Probe),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Hist returns the named histogram covering 0..max, creating it on first
// use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Hist(name string, max int) *Hist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHist(max)
		r.hists[name] = h
	}
	return h
}

// RegisterProbe registers a named probe; re-registering a name replaces the
// previous probe. No-op on a nil registry.
func (r *Registry) RegisterProbe(name string, p Probe) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probes[name] = p
}

// Snapshot reads every counter, gauge, and probe into a name→value map.
// Histograms are summarized as <name>.mean and <name>.max.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.probes)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, p := range r.probes {
		out[name] = p.Value()
	}
	for name, h := range r.hists {
		out[name+".mean"] = h.Mean()
		out[name+".max"] = float64(h.Max())
	}
	return out
}

// SortedNames returns the snapshot's names in sorted order — the
// deterministic iteration helper every exposition path uses, so no
// output format ever depends on Go map order.
func (r *Registry) SortedNames(snap map[string]float64) []string {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Each calls fn for every snapshot entry in sorted name order.
func (r *Registry) Each(fn func(name string, value float64)) {
	snap := r.Snapshot()
	for _, name := range r.SortedNames(snap) {
		fn(name, snap[name])
	}
}

// Names returns every registered instrument and probe name, sorted.
func (r *Registry) Names() []string {
	return r.SortedNames(r.Snapshot())
}

// Render formats a snapshot as sorted "name value" lines (debug output).
func (r *Registry) Render() string {
	out := ""
	r.Each(func(name string, value float64) {
		out += fmt.Sprintf("%-32s %g\n", name, value)
	})
	return out
}
