package obs

import (
	"math"
	"reflect"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistClampAndStats(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int{0, 1, 1, 4, 9, -3} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 0, 0, 2} // -3 clamps to 0, 9 clamps to 4
	if !reflect.DeepEqual(h.Counts(), want) {
		t.Errorf("counts = %v, want %v", h.Counts(), want)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	if h.Max() != 4 {
		t.Errorf("max = %d, want 4", h.Max())
	}
	if got, want := h.Mean(), (0+0+1+1+4+4)/6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.retired").Add(10)
	if r.Counter("sim.retired").Value() != 10 {
		t.Error("counter not shared across lookups")
	}
	r.Gauge("sim.ipc").Set(2.5)
	r.Hist("sim.occ", 8).Observe(3)
	r.RegisterProbe("sim.live", ProbeFunc(func() float64 { return 7 }))
	snap := r.Snapshot()
	for name, want := range map[string]float64{
		"sim.retired": 10, "sim.ipc": 2.5, "sim.live": 7,
		"sim.occ.mean": 3, "sim.occ.max": 3,
	} {
		if snap[name] != want {
			t.Errorf("snapshot[%q] = %v, want %v", name, snap[name], want)
		}
	}
	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

// TestDisabledProbesAllocFree pins the overhead contract: with
// observability off (nil registry, nil instruments, nil observer), every
// probe call is a no-op that allocates nothing.
func TestDisabledProbesAllocFree(t *testing.T) {
	var reg *Registry
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		reg.Counter("x").Add(1)
		reg.Gauge("y").Set(2)
		reg.Hist("z", 16).Observe(3)
		reg.RegisterProbe("p", nil)
		o.TickQueues(1, 2, 3)
		if o.Due(64) {
			t.Fatal("nil observer is never due")
		}
		o.Record(IntervalCounters{Cycle: 64})
		o.Finish(IntervalCounters{Cycle: 64})
		if o.Timeseries() != nil || o.Occupancy() != nil {
			t.Fatal("nil observer has no sections")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled probe path allocates %v objects per run, want 0", allocs)
	}
}

func TestObserverSampling(t *testing.T) {
	o := NewObserver(10, 8, 8, 4)
	var c IntervalCounters
	for cycle := uint64(1); cycle <= 25; cycle++ {
		o.TickQueues(2, 1, 0)
		c.Cycle = cycle
		c.Retired += 3
		if cycle%5 == 0 {
			c.Mispredicts++
		}
		c.FetchStallCycles += 1 // every cycle "stalled" for the test
		if o.Due(cycle) {
			o.Record(c)
		}
	}
	o.Finish(c)

	if len(o.Samples) != 3 {
		t.Fatalf("%d samples, want 3 (two full intervals + partial)", len(o.Samples))
	}
	s0 := o.Samples[0]
	if s0.Cycle != 10 || s0.IPC != 3 || s0.FetchStall != 1 || s0.BQOcc != 2 || s0.VQOcc != 1 || s0.TQOcc != 0 {
		t.Errorf("first sample wrong: %+v", s0)
	}
	if want := 1000 * 2.0 / 30.0; math.Abs(s0.MPKI-want) > 1e-12 {
		t.Errorf("MPKI = %v, want %v", s0.MPKI, want)
	}
	last := o.Samples[2]
	if last.Cycle != 25 {
		t.Errorf("partial interval ends at %d, want 25", last.Cycle)
	}
	// Finish is idempotent: a second flush at the same counters adds nothing.
	o.Finish(c)
	if len(o.Samples) != 3 {
		t.Errorf("second Finish appended a sample")
	}

	if o.BQ.Total() != 25 {
		t.Errorf("BQ hist saw %d cycles, want 25", o.BQ.Total())
	}
	ts := o.Timeseries()
	if ts == nil || ts.Every != 10 || len(ts.Samples) != 3 {
		t.Errorf("timeseries section wrong: %+v", ts)
	}
	occ := o.Occupancy()
	if occ == nil || occ.BQ.Size != 8 || occ.BQ.Max != 2 || occ.BQ.Mean != 2 {
		t.Errorf("occupancy section wrong: %+v", occ)
	}
	if len(occ.BQ.Counts) != 3 {
		t.Errorf("BQ counts not trimmed after max: %v", occ.BQ.Counts)
	}
	if occ.TQ.Max != 0 || occ.TQ.Mean != 0 {
		t.Errorf("TQ occupancy wrong: %+v", occ.TQ)
	}
}

func TestObserverHistogramOnly(t *testing.T) {
	o := NewObserver(0, 4, 4, 4) // Every == 0: histograms but no series
	o.TickQueues(1, 1, 1)
	if o.Due(1) {
		t.Error("observer with Every=0 must never be due")
	}
	o.Finish(IntervalCounters{Cycle: 1})
	if o.Timeseries() != nil {
		t.Error("no timeseries expected")
	}
	if o.Occupancy() == nil {
		t.Error("occupancy section expected")
	}
}
