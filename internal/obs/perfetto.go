package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Chrome/Perfetto "Trace Event Format" export. The emitted file is the JSON
// object form ({"traceEvents": [...]}) that chrome://tracing and
// ui.perfetto.dev load directly. Timestamps are microseconds by convention;
// we map one simulated clock unit (cycle or instruction) to one
// microsecond, so trace time reads as simulated time.
//
// Determinism: events are emitted metadata-first, then stably sorted by
// timestamp (insertion order breaks ties), and args objects serialize with
// encoding/json's sorted keys — so a trace built from deterministic inputs
// is byte-identical across -jobs settings.

// TraceEvent is one trace-event record. Phases used here: "X" (complete
// span with a duration), "C" (counter), and "M" (metadata: process and
// thread names).
type TraceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   uint64                 `json:"ts"`
	Dur  uint64                 `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Trace accumulates trace events for export.
type Trace struct {
	meta   []TraceEvent
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Len returns the number of events recorded (metadata included).
func (t *Trace) Len() int { return len(t.meta) + len(t.events) }

// NameProcess records the display name for a process row.
func (t *Trace) NameProcess(pid int, name string) {
	t.meta = append(t.meta, TraceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]interface{}{"name": name},
	})
}

// NameThread records the display name for a thread row within a process.
func (t *Trace) NameThread(pid, tid int, name string) {
	t.meta = append(t.meta, TraceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]interface{}{"name": name},
	})
}

// Span records a complete ("X") event covering [ts, ts+dur). Zero-duration
// spans are widened to 1 so they stay visible and well-formed.
func (t *Trace) Span(pid, tid int, name, cat string, ts, dur uint64, args map[string]interface{}) {
	if dur == 0 {
		dur = 1
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur,
		PID: pid, TID: tid, Args: args,
	})
}

// Counter records a counter ("C") event: one or more named series values at
// ts, rendered by Perfetto as stacked counter tracks.
func (t *Trace) Counter(pid int, name string, ts uint64, values map[string]interface{}) {
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "C", TS: ts, PID: pid, Args: values,
	})
}

// document is the on-disk JSON object form.
type document struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// sorted returns metadata first, then events stably ordered by timestamp.
func (t *Trace) sorted() []TraceEvent {
	out := make([]TraceEvent, 0, t.Len())
	out = append(out, t.meta...)
	body := make([]TraceEvent, len(t.events))
	copy(body, t.events)
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	return append(out, body...)
}

// Encode writes the trace as indented JSON with a trailing newline.
func (t *Trace) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(document{TraceEvents: t.sorted()}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trace to path ("-" = stdout).
func (t *Trace) WriteFile(path string) error {
	if path == "-" {
		return t.Encode(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace %s: %w", path, err)
	}
	return f.Close()
}

// ValidateTrace checks a serialized trace: it must decode as the JSON
// object form, every event must carry a known phase, and timestamps must be
// monotonically non-decreasing in file order (the writer's sort guarantee —
// drift here means a nondeterministic or hand-mangled trace). It returns
// the number of events.
func ValidateTrace(r io.Reader) (int, error) {
	var doc document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	var last uint64
	inBody := false
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if inBody {
				return 0, fmt.Errorf("obs: event %d: metadata after body events", i)
			}
			continue
		case "X", "C", "B", "E", "i", "I":
		default:
			return 0, fmt.Errorf("obs: event %d (%q): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("obs: event %d: empty name", i)
		}
		if inBody && ev.TS < last {
			return 0, fmt.Errorf("obs: event %d (%q): timestamp %d goes backwards (previous %d)",
				i, ev.Name, ev.TS, last)
		}
		last, inBody = ev.TS, true
	}
	return len(doc.TraceEvents), nil
}

// ValidateTraceFile validates the trace at path and returns its event count.
func ValidateTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ValidateTrace(f)
}
