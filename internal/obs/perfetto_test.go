package obs

import (
	"bytes"
	"strings"
	"testing"
)

func buildTrace() *Trace {
	tr := NewTrace()
	tr.NameProcess(1, "core")
	tr.NameThread(1, 1, "fetch")
	tr.Span(1, 1, "add r1,r2,r3", "inst", 5, 3, map[string]interface{}{"seq": 7})
	tr.Span(1, 1, "beq r1,r0", "inst", 2, 4, nil)
	tr.Counter(1, "ipc", 10, map[string]interface{}{"ipc": 2.5})
	tr.Span(1, 1, "zero-dur", "inst", 10, 0, nil)
	return tr
}

func TestTraceEncodeSortedAndValid(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Metadata first, then body sorted by timestamp.
	if !strings.Contains(out, `"traceEvents"`) {
		t.Error("missing traceEvents wrapper")
	}
	if i, j := strings.Index(out, "process_name"), strings.Index(out, "beq"); i > j {
		t.Error("metadata not emitted before body events")
	}
	if i, j := strings.Index(out, "beq"), strings.Index(out, "add"); i > j {
		t.Error("events not sorted by timestamp")
	}
	n, err := ValidateTrace(strings.NewReader(out))
	if err != nil {
		t.Fatalf("emitted trace does not validate: %v", err)
	}
	if n != 6 {
		t.Errorf("validated %d events, want 6", n)
	}
}

func TestTraceEncodeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical traces encode differently")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not JSON":            `{"traceEvents": [`,
		"unknown phase":       `{"traceEvents":[{"name":"a","ph":"?","ts":1,"pid":1,"tid":1}]}`,
		"empty name":          `{"traceEvents":[{"name":"","ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		"backwards timestamp": `{"traceEvents":[{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":4,"dur":1,"pid":1,"tid":1}]}`,
		"late metadata":       `{"traceEvents":[{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},{"name":"process_name","ph":"M","pid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Equal timestamps are fine.
	ok := `{"traceEvents":[{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":1}]}`
	if _, err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("equal timestamps rejected: %v", err)
	}
}
