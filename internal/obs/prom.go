package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promName maps an instrument name to a legal Prometheus metric name:
// the "cfd_" namespace prefix, with every character outside
// [a-zA-Z0-9_:] replaced by '_' (so "harness.cache_hits" serves as
// "cfd_harness_cache_hits").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("cfd_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promValue formats a sample value the way Prometheus expects ('g'
// shortest-form floats; integral values render without an exponent).
func promValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): every counter as a counter, every gauge and
// probe as a gauge, and every histogram as a native cumulative-bucket
// histogram with _sum and _count. Families are emitted in sorted name
// order (via the same deterministic iteration Snapshot consumers use),
// so two scrapes of identical state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type family struct {
		name  string // prometheus name
		kind  string // "counter", "gauge", "histogram"
		value float64
		hist  *Hist
	}
	fams := make([]family, 0, len(r.counters)+len(r.gauges)+len(r.probes)+len(r.hists))
	for name, c := range r.counters {
		fams = append(fams, family{name: promName(name), kind: "counter", value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		fams = append(fams, family{name: promName(name), kind: "gauge", value: g.Value()})
	}
	for name, p := range r.probes {
		fams = append(fams, family{name: promName(name), kind: "gauge", value: p.Value()})
	}
	for name, h := range r.hists {
		fams = append(fams, family{name: promName(name), kind: "histogram", hist: h})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.kind != "histogram" {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, promValue(f.value)); err != nil {
				return err
			}
			continue
		}
		counts := f.hist.Counts()
		var cum, sum uint64
		for i, c := range counts {
			cum += c
			sum += uint64(i) * c
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", f.name, i, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", f.name, sum, f.name, cum); err != nil {
			return err
		}
	}
	return nil
}
