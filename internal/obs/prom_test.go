package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: sorted families, the
// cfd_ namespace with sanitized names, type annotations, and cumulative
// histogram buckets with _sum/_count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta.count").Add(3)
	r.Gauge("alpha.gauge").Set(1.5)
	r.RegisterProbe("mid.probe", ProbeFunc(func() float64 { return 7 }))
	h := r.Hist("occ", 2)
	h.Observe(0)
	h.Observe(1)
	h.Observe(1)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := strings.Join([]string{
		"# TYPE cfd_alpha_gauge gauge",
		"cfd_alpha_gauge 1.5",
		"# TYPE cfd_mid_probe gauge",
		"cfd_mid_probe 7",
		"# TYPE cfd_occ histogram",
		`cfd_occ_bucket{le="0"} 1`,
		`cfd_occ_bucket{le="1"} 3`,
		`cfd_occ_bucket{le="2"} 4`,
		`cfd_occ_bucket{le="+Inf"} 4`,
		"cfd_occ_sum 4",
		"cfd_occ_count 4",
		"# TYPE cfd_zeta_count counter",
		"cfd_zeta_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusDeterministic pins scrape-to-scrape byte identity.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"c.b", "a.z", "m.q", "z.a", "b.b"} {
		r.Counter(n).Add(1)
	}
	var a, b strings.Builder
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatal("two scrapes of identical state differ")
	}
}

// TestWritePrometheusNil pins that a nil registry serves an empty body.
func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"harness.cache_hits": "cfd_harness_cache_hits",
		"host.rss_bytes":     "cfd_host_rss_bytes",
		"weird name-1":       "cfd_weird_name_1",
		"ns:sub":             "cfd_ns:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryEachSorted pins the deterministic-iteration satellite:
// Each and Names visit snapshot entries in sorted order, histograms
// summarized as .mean/.max.
func TestRegistryEachSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Gauge("a").Set(1)
	r.Hist("c", 4).Observe(2)
	var names []string
	r.Each(func(name string, _ float64) { names = append(names, name) })
	want := []string{"a", "b", "c.max", "c.mean"}
	if len(names) != len(want) {
		t.Fatalf("Each visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", names, want)
		}
	}
	got := r.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}
