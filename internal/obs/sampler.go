package obs

// Sample is one interval snapshot of an engine's rates: what the run was
// doing between the previous boundary and Cycle. All fields derive from
// simulated-time counters, so series are deterministic and byte-identical
// across -jobs settings.
type Sample struct {
	// Cycle is the interval's end boundary (exclusive) on the engine's
	// clock — pipeline cycles, or retired instructions for the emulator.
	Cycle uint64 `json:"cycle"`

	// IPC is retired instructions per cycle over the interval.
	IPC float64 `json:"ipc"`
	// MPKI is branch mispredictions per 1000 retired over the interval.
	MPKI float64 `json:"mpki"`

	// Stall fractions: the share of interval cycles the CPI stack charged
	// to generic fetch stall, BQ stall (full or miss), and TQ-miss stall.
	FetchStall float64 `json:"fetchStallFrac"`
	BQStall    float64 `json:"bqStallFrac"`
	TQStall    float64 `json:"tqStallFrac"`

	// Mean architectural queue occupancies over the interval.
	BQOcc float64 `json:"bqOcc"`
	VQOcc float64 `json:"vqOcc"`
	TQOcc float64 `json:"tqOcc"`

	// CacheMPKI is L1 data-cache misses per 1000 retired over the interval.
	CacheMPKI float64 `json:"cacheMpki"`
}

// IntervalCounters is the cumulative-counter snapshot an engine hands the
// Observer at each sample boundary; Record turns consecutive snapshots into
// one Sample of interval rates.
type IntervalCounters struct {
	Cycle            uint64
	Retired          uint64
	Mispredicts      uint64
	FetchStallCycles uint64
	BQStallCycles    uint64
	TQStallCycles    uint64
	CacheMisses      uint64
}

// Observer collects the time series and occupancy histograms for one engine
// run. A nil Observer is a valid disabled observer: every method is a no-op,
// so engines pay one nil test per cycle and allocate nothing.
//
// Protocol (one engine, single-threaded):
//
//	o := NewObserver(every, bqSize, vqSize, tqSize)
//	each cycle:  o.TickQueues(bqLen, vqLen, tqLen)
//	             if o.Due(cycle) { o.Record(counters) }
//	at the end:  o.Finish(counters)   // flush the partial last interval
type Observer struct {
	// Every is the sampling interval in engine clock units.
	Every uint64
	// Samples is the collected time series, one row per interval.
	Samples []Sample
	// BQ, VQ, TQ are full-run per-cycle occupancy histograms of the three
	// architectural queues (bucket i = cycles spent at occupancy i).
	BQ, VQ, TQ *Hist

	prev                IntervalCounters
	occBQ, occVQ, occTQ uint64 // interval occupancy integrals
}

// NewObserver returns an Observer sampling every `every` clock units, with
// occupancy histograms sized for the given queue capacities. every == 0
// disables interval sampling but still collects occupancy histograms.
func NewObserver(every uint64, bqSize, vqSize, tqSize int) *Observer {
	return &Observer{
		Every: every,
		BQ:    NewHist(bqSize),
		VQ:    NewHist(vqSize),
		TQ:    NewHist(tqSize),
	}
}

// TickQueues records one clock unit at the given queue occupancies.
func (o *Observer) TickQueues(bq, vq, tq int) {
	if o == nil {
		return
	}
	o.BQ.Observe(bq)
	o.VQ.Observe(vq)
	o.TQ.Observe(tq)
	o.occBQ += uint64(bq)
	o.occVQ += uint64(vq)
	o.occTQ += uint64(tq)
}

// Due reports whether cycle is a sample boundary.
func (o *Observer) Due(cycle uint64) bool {
	return o != nil && o.Every != 0 && cycle%o.Every == 0
}

// Record closes the current interval at the given cumulative counters and
// appends its Sample. Counters must be monotonic between calls.
func (o *Observer) Record(now IntervalCounters) {
	if o == nil {
		return
	}
	dc := now.Cycle - o.prev.Cycle
	if dc == 0 {
		return
	}
	fdc := float64(dc)
	dr := now.Retired - o.prev.Retired
	s := Sample{
		Cycle:      now.Cycle,
		IPC:        float64(dr) / fdc,
		FetchStall: float64(now.FetchStallCycles-o.prev.FetchStallCycles) / fdc,
		BQStall:    float64(now.BQStallCycles-o.prev.BQStallCycles) / fdc,
		TQStall:    float64(now.TQStallCycles-o.prev.TQStallCycles) / fdc,
		BQOcc:      float64(o.occBQ) / fdc,
		VQOcc:      float64(o.occVQ) / fdc,
		TQOcc:      float64(o.occTQ) / fdc,
	}
	if dr > 0 {
		s.MPKI = 1000 * float64(now.Mispredicts-o.prev.Mispredicts) / float64(dr)
		s.CacheMPKI = 1000 * float64(now.CacheMisses-o.prev.CacheMisses) / float64(dr)
	}
	o.Samples = append(o.Samples, s)
	o.prev = now
	o.occBQ, o.occVQ, o.occTQ = 0, 0, 0
}

// Finish flushes the partial final interval (no-op if the run ended exactly
// on a boundary or nothing elapsed since the last sample).
func (o *Observer) Finish(now IntervalCounters) {
	if o == nil || o.Every == 0 {
		return
	}
	o.Record(now)
}

// TimeseriesSection is the export form of an interval time series: the
// `timeseries` section of a cfd-results run.
type TimeseriesSection struct {
	Every   uint64   `json:"every"` // sampling interval in engine clock units
	Samples []Sample `json:"samples"`
}

// Timeseries returns the export section, or nil when sampling was off or
// produced no samples.
func (o *Observer) Timeseries() *TimeseriesSection {
	if o == nil || o.Every == 0 || len(o.Samples) == 0 {
		return nil
	}
	return &TimeseriesSection{Every: o.Every, Samples: o.Samples}
}

// QueueOccupancy is the export form of one queue's full-run occupancy
// histogram. Counts[i] is the number of clock units spent at occupancy i,
// with trailing zero buckets trimmed.
type QueueOccupancy struct {
	Size   int      `json:"size"` // architectural capacity
	Mean   float64  `json:"mean"`
	Max    int      `json:"max"`
	Counts []uint64 `json:"counts"`
}

// OccupancySection is the `occupancy` section of a cfd-results run: the
// full-run occupancy histograms of the three architectural queues.
type OccupancySection struct {
	BQ QueueOccupancy `json:"bq"`
	VQ QueueOccupancy `json:"vq"`
	TQ QueueOccupancy `json:"tq"`
}

func queueOccupancy(h *Hist) QueueOccupancy {
	q := QueueOccupancy{
		Size: len(h.Counts()) - 1,
		Mean: h.Mean(),
		Max:  h.Max(),
	}
	counts := h.Counts()[:h.Max()+1]
	q.Counts = make([]uint64, len(counts))
	copy(q.Counts, counts)
	return q
}

// Occupancy returns the export section, or nil when no cycles were observed.
func (o *Observer) Occupancy() *OccupancySection {
	if o == nil || o.BQ.Total() == 0 {
		return nil
	}
	return &OccupancySection{
		BQ: queueOccupancy(o.BQ),
		VQ: queueOccupancy(o.VQ),
		TQ: queueOccupancy(o.TQ),
	}
}
