// Command validate checks that a Chrome/Perfetto trace-event file is
// well-formed: valid JSON in the object form, known event phases, and
// monotonically non-decreasing timestamps. CI runs it against the trace
// artifact every build.
//
// Usage: go run ./internal/obs/validate trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"cfd/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validate trace.json [more.json ...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		n, err := obs.ValidateTraceFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: OK (%d events)\n", path, n)
	}
}
