package pipeline

import (
	"testing"

	"cfd/internal/mem"
)

// TestPipelineSteadyStateZeroAllocs is the hot-loop allocation ceiling:
// once warm, Cycle() must not allocate at all. Rename holds pregs in a
// fixed free list, the event wheel reuses its per-slot slices, the ROB
// ring builds uops in place — a regression in any of them shows up here
// as a fractional allocs-per-run.
func TestPipelineSteadyStateZeroAllocs(t *testing.T) {
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(2000, 100, 17))
	c, err := New(testConfig(), cfdLoop(0x10000, 0x80000, 2000, 50), m)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: let every pool, ring, and event slot reach its steady size.
	for i := 0; i < 20000; i++ {
		if c.done {
			t.Fatal("workload finished during warm-up; enlarge it")
		}
		if err := c.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			if c.done {
				t.Fatal("workload finished during measurement; enlarge it")
			}
			if err := c.Cycle(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got != 0 {
		t.Errorf("steady-state Cycle() allocates: %g allocs per 100 cycles, want 0", got)
	}
}
