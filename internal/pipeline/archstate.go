package pipeline

import "cfd/internal/isa"

// ArchReg returns the committed (retired) architectural value of r: the
// physical register the architectural map table points at. It reflects only
// retired instructions — in-flight speculative writes are invisible — so
// after Run it is the architectural register file the functional emulator
// must agree with.
func (c *Core) ArchReg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return c.prf[c.amt[r]]
}

// ArchRegs snapshots the committed architectural register file.
func (c *Core) ArchRegs() [isa.NumRegs]uint64 {
	var out [isa.NumRegs]uint64
	for r := 1; r < isa.NumRegs; r++ {
		out[r] = c.prf[c.amt[r]]
	}
	return out
}
