package pipeline

import (
	"cfd/internal/cache"
	"cfd/internal/isa"
	"cfd/internal/stats"
)

// Cycle attribution (CPI stack). Every simulated cycle is charged to
// exactly one stats.CPIBucket, so the stack sums to Stats.Cycles by
// construction. The classification is top-down, anchored at retirement:
//
//   - a cycle that retires instructions is CPIRetiring; CFD bookkeeping
//     instructions accumulate a retire-slot debt, and every RetireWidth of
//     them converts one retiring cycle into CPICFDOverhead (the cycles the
//     added instructions consumed, amortized over retire bandwidth);
//   - a lost cycle with an empty window is a front-end problem: a
//     misprediction-recovery refill (split by the memory level that fed
//     the branch, or the speculative-pop bucket for late-push
//     disconfirmations), a BQ/TQ fetch stall, or generic I-supply;
//   - a lost cycle with a non-empty window is a back-end problem: a
//     memory stall when the oldest instruction is an issued load still
//     waiting on the hierarchy (split by service level), else CPIBackend.

// stallCause records why fetch stalled this cycle (reset every cycle).
type stallCause uint8

const (
	stallNone stallCause = iota
	stallBQFull
	stallBQMiss
	stallTQMiss
)

// recoverShadow tracks an in-progress misprediction recovery: lost
// empty-window cycles are charged to it until the first instruction of the
// corrected path (seq > anchor) retires.
type recoverShadow struct {
	active  bool
	anchor  uint64 // seq of the recovering branch
	level   cache.ServiceLevel
	specPop bool // recovery initiated by a disconfirmed speculative pop
}

// noteRecovery opens (or re-anchors) the recovery shadow; the newest
// recovery wins, since it is the one redirecting fetch.
func (c *Core) noteRecovery(anchorSeq uint64, level cache.ServiceLevel, specPop bool) {
	c.shadow = recoverShadow{active: true, anchor: anchorSeq, level: level, specPop: specPop}
}

// cfdOverheadOp reports whether op is CFD bookkeeping the transformation
// added to the program — the push/mark/VQ-move/save-restore side. The pop
// side (BranchBQ, BranchTCR, PopTQ) replaces original branches and is real
// work.
func cfdOverheadOp(op isa.Op) bool {
	switch op {
	case isa.PushBQ, isa.PushTQ, isa.PushVQ, isa.PopVQ, isa.MarkBQ, isa.ForwardBQ:
		return true
	}
	return isCtxSwitch(op)
}

// attributeCycle charges the current cycle to its bucket. It runs once per
// Cycle call, after every stage has acted, immediately before Stats.Cycles
// is incremented.
func (c *Core) attributeCycle() {
	var b stats.CPIBucket
	switch {
	case c.cycRetired > 0:
		c.ohDebt += c.cycOverhead
		if c.ohDebt >= c.cfg.RetireWidth {
			c.ohDebt -= c.cfg.RetireWidth
			b = stats.CPICFDOverhead
		} else {
			b = stats.CPIRetiring
		}

	case c.robCount() == 0:
		// Empty window: retirement is starved by the front end.
		switch {
		case c.shadow.active:
			if c.shadow.specPop {
				b = stats.CPISpecPopRecovery
			} else {
				b = stats.CPIRecoverNoData + stats.CPIBucket(c.shadow.level)
			}
		case c.cycStall == stallBQFull, c.cycStall == stallBQMiss:
			b = stats.CPIBQStall
		case c.cycStall == stallTQMiss:
			b = stats.CPITQStall
		default:
			b = stats.CPIFetchStall
		}

	default:
		// Non-empty window: retirement is blocked by the oldest
		// instruction.
		u := c.robAt(c.robHead)
		if u.isLoad && u.issued && !u.executed {
			lvl := u.memLevel
			if lvl < cache.L1 {
				lvl = cache.L1
			}
			b = stats.CPIMemL1 + stats.CPIBucket(lvl-cache.L1)
		} else {
			b = stats.CPIBackend
		}
	}
	c.Stats.CPI.Add(b)
	// Remembered so an idle-skip can charge fast-forwarded copies of this
	// cycle to the same bucket.
	c.lastBucket = b
}
