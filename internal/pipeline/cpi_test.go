package pipeline

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/stats"
	"cfd/internal/workload"
)

// cpiN caps the per-run input size so the full matrix stays fast.
const cpiN = 1200

func runForCPI(t *testing.T, s *workload.Spec, v workload.Variant, cfg config.Core) *Core {
	t.Helper()
	n := s.TestN
	if n > cpiN {
		n = cpiN
	}
	p, m, err := s.Build(v, n)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	core, err := New(cfg, p, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return core
}

// TestCPIStackInvariantMatrix pins the hard CPI-stack invariant on the same
// workload×variant matrix the emulator consistency tests use: every cycle
// is attributed to exactly one bucket, so the buckets sum to Stats.Cycles;
// and the misprediction-recovery buckets are consistent with the Fig 2a
// memory-level attribution (recovery cycles at a level imply retired
// mispredictions fed from that level).
func TestCPIStackInvariantMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, s := range workload.All() {
		for _, v := range s.Variants {
			s, v := s, v
			t.Run(s.Name+"/"+string(v), func(t *testing.T) {
				t.Parallel()
				core := runForCPI(t, s, v, config.SandyBridge())
				st := &core.Stats
				if err := st.CPI.Check(st.Cycles); err != nil {
					t.Fatal(err)
				}
				if st.CPI.Buckets[stats.CPIRetiring] == 0 {
					t.Error("no retiring cycles attributed")
				}
				// Fig 2a consistency: empty-window recovery cycles at a
				// memory level require retired mispredictions attributed
				// to that level (spec-pop recoveries have their own
				// bucket and are checked against late mispredicts).
				for lvl := 0; lvl <= 4; lvl++ {
					if st.CPI.RecoveryCycles(lvl) > 0 && st.MispredByLevel[lvl] == 0 {
						t.Errorf("recovery cycles at level %d but no mispredictions attributed there", lvl)
					}
				}
				if st.CPI.Buckets[stats.CPISpecPopRecovery] > 0 && st.BQLateMispredict == 0 {
					t.Error("spec-pop recovery cycles but no late BQ mispredictions")
				}
				if st.Mispredicts == 0 && st.BQLateMispredict == 0 {
					var rec uint64
					for lvl := 0; lvl <= 4; lvl++ {
						rec += st.CPI.RecoveryCycles(lvl)
					}
					rec += st.CPI.Buckets[stats.CPISpecPopRecovery]
					if rec != 0 {
						t.Errorf("%d recovery cycles with zero mispredictions", rec)
					}
				}
			})
		}
	}
}

// TestCPIStackStallPolicies exercises the BQ-stall bucket (stall-fetch BQ
// miss policy) and re-checks the invariant under both policies and a
// scaled window.
func TestCPIStackStallPolicies(t *testing.T) {
	s, ok := workload.ByName("soplexlike")
	if !ok {
		t.Fatal("soplexlike not registered")
	}
	stall := config.SandyBridge()
	stall.BQMissPolicy = config.StallFetch
	for _, cfg := range []config.Core{config.SandyBridge(), stall, config.Scaled(384)} {
		core := runForCPI(t, s, workload.CFD, cfg)
		if err := core.Stats.CPI.Check(core.Stats.Cycles); err != nil {
			t.Errorf("%s/%s: %v", cfg.Name, cfg.BQMissPolicy, err)
		}
	}
}

// TestCPIStackCFDOverheadAttribution checks that CFD variants, which retire
// extra bookkeeping instructions, actually show cycles in the overhead
// bucket on a workload where whole retire groups are pushes.
func TestCPIStackCFDOverheadAttribution(t *testing.T) {
	s, ok := workload.ByName("soplexlike")
	if !ok {
		t.Fatal("soplexlike not registered")
	}
	base := runForCPI(t, s, workload.Base, config.SandyBridge())
	cfd := runForCPI(t, s, workload.CFD, config.SandyBridge())
	if got := base.Stats.CPI.Buckets[stats.CPICFDOverhead]; got != 0 {
		t.Errorf("base variant charged %d CFD-overhead cycles", got)
	}
	if cfd.Stats.CPI.Buckets[stats.CPICFDOverhead] == 0 {
		t.Error("cfd variant shows no CFD-overhead cycles")
	}
}
