package pipeline

import (
	"cfd/internal/core"
	"cfd/internal/isa"
)

// Queue save/restore (context-switch) support. These instructions
// serialize the pipeline — fetch stalls until the window drains, at which
// point speculative queue state equals architectural state — then execute
// architecturally against committed memory, modeled with a fixed
// serialization latency on top of the drain (the decode-cracked loads and
// stores of §IV-B2's macro expansion).
//
// ctxSwitchLatency approximates the cracked pop/store (or load/push)
// sequence: one memory operation per occupied entry plus fixed overhead.
const ctxSwitchOverhead = 8

// isCtxSwitch reports whether op is a queue save/restore instruction.
func isCtxSwitch(op isa.Op) bool {
	switch op {
	case isa.SaveBQ, isa.RestoreBQ, isa.SaveVQ, isa.RestoreVQ, isa.SaveTQ, isa.RestoreTQ:
		return true
	}
	return false
}

// fetchCtxSwitch handles a save/restore at fetch: stall until the machine
// drains, then apply the operation architecturally and emit a pre-executed
// uop whose completion models the serialization latency.
func (c *Core) fetchCtxSwitch(u *uop) (stall bool, err error) {
	if c.robCount() > 0 || c.fqLen() > 0 {
		return true, nil // serialize: drain first
	}
	addr := c.committedReg(u.inst.Rs1) + uint64(u.inst.Imm)
	lat := uint64(ctxSwitchOverhead)
	switch u.inst.Op {
	case isa.SaveBQ:
		q, n := c.archBQ()
		c.mem.StoreBytes(addr, q.Save())
		lat += uint64(n)
	case isa.RestoreBQ:
		q := core.NewBQ(c.bq.size)
		img := make([]byte, q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		// Reset the hardware BQ: contents at the front, pushed bits set.
		c.bq.specHead, c.bq.commHead, c.bq.specTail = 0, 0, 0
		c.bq.markOK = false
		for _, pred := range q.Contents() {
			e := &c.bq.entries[c.bq.specTail%uint64(c.bq.size)]
			*e = bqEntryHW{pred: pred, pushed: true}
			c.bq.specTail++
		}
		lat += uint64(q.Len())
	case isa.SaveTQ:
		q, n := c.archTQ()
		c.mem.StoreBytes(addr, q.Save())
		lat += uint64(n)
	case isa.RestoreTQ:
		q := core.NewTQ(c.tq.size)
		img := make([]byte, q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		c.tq.specHead, c.tq.commHead, c.tq.specTail = 0, 0, 0
		for _, e := range q.Contents() {
			hw := &c.tq.entries[c.tq.specTail%uint64(c.tq.size)]
			*hw = tqEntryHW{count: e.Count, overflow: e.Overflow, pushed: true}
			c.tq.specTail++
		}
		lat += uint64(q.Len())
	case isa.SaveVQ:
		q, n := c.archVQ()
		c.mem.StoreBytes(addr, q.Save())
		lat += uint64(n)
	case isa.RestoreVQ:
		q := core.NewVQ(c.vq.size)
		img := make([]byte, q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		// Drop the old in-queue registers back to the freelist, then
		// allocate fresh ones for the restored values (the cracked
		// load+push sequence of §IV-B2).
		for c.vq.commHead < c.vq.specTail {
			c.freePreg(c.vq.mapping[c.vq.commHead%uint64(c.vq.size)])
			c.vq.commHead++
		}
		c.vq.specHead, c.vq.commHead, c.vq.specTail = 0, 0, 0
		for _, v := range q.Contents() {
			pr := c.allocPreg()
			c.prf[pr] = v
			c.prfReady[pr] = true
			c.vq.mapping[c.vq.specTail%uint64(c.vq.size)] = pr
			c.vq.specTail++
		}
		lat += uint64(q.Len())
	}
	u.resolvedFetch = true
	// The cracked sequence serializes the front end.
	c.fetchStallTill = c.now + lat
	return false, nil
}

// committedReg reads an architectural register value; with the window
// drained the RMT maps logical registers to their committed physicals.
func (c *Core) committedReg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return c.prf[c.rmt[r]]
}

// archBQ reconstructs the architectural BQ (committed head through
// speculative tail; identical when drained) and its occupancy.
func (c *Core) archBQ() (*core.BQ, int) {
	q := core.NewBQ(c.bq.size)
	n := 0
	for pos := c.bq.commHead; pos < c.bq.specTail; pos++ {
		_ = q.Push(c.bq.entries[pos%uint64(c.bq.size)].pred)
		n++
	}
	return q, n
}

func (c *Core) archTQ() (*core.TQ, int) {
	q := core.NewTQ(c.tq.size)
	n := 0
	for pos := c.tq.commHead; pos < c.tq.specTail; pos++ {
		e := c.tq.entries[pos%uint64(c.tq.size)]
		if e.overflow {
			_ = q.Push(uint64(maxTripCount) + 1)
		} else {
			_ = q.Push(uint64(e.count))
		}
		n++
	}
	return q, n
}

func (c *Core) archVQ() (*core.VQ, int) {
	q := core.NewVQ(c.vq.size)
	n := 0
	for pos := c.vq.commHead; pos < c.vq.specTail; pos++ {
		_ = q.Push(c.prf[c.vq.mapping[pos%uint64(c.vq.size)]])
		n++
	}
	return q, n
}
