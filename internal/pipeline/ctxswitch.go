package pipeline

import (
	"cfd/internal/core"
	"cfd/internal/isa"
)

// Queue save/restore (context-switch) support. These instructions
// serialize the pipeline — fetch stalls until the window drains, at which
// point speculative queue state equals architectural state — then execute
// architecturally against committed memory, modeled with a fixed
// serialization latency on top of the drain (the decode-cracked loads and
// stores of §IV-B2's macro expansion).
//
// ctxSwitchLatency approximates the cracked pop/store (or load/push)
// sequence: one memory operation per occupied entry plus fixed overhead.
const ctxSwitchOverhead = 8

// isCtxSwitch reports whether op is a queue save/restore instruction.
func isCtxSwitch(op isa.Op) bool {
	switch op {
	case isa.SaveBQ, isa.RestoreBQ, isa.SaveVQ, isa.RestoreVQ, isa.SaveTQ, isa.RestoreTQ:
		return true
	}
	return false
}

// ctxImage returns the reusable image buffer, grown to at least n bytes.
// One buffer serves all six operations: the machine is drained during a
// save/restore, so only one image is ever live.
func (c *Core) ctxImage(n int) []byte {
	if cap(c.ctxImg) < n {
		c.ctxImg = make([]byte, n)
	}
	return c.ctxImg[:n]
}

// Scratch architectural queues, created on first use and then recycled:
// workloads that context-switch do so in a loop, and allocating three
// queues plus images per switch showed up in the save/restore profile.
func (c *Core) scratchBQ() *core.BQ {
	if c.ctxBQ == nil {
		c.ctxBQ = core.NewBQ(c.bq.size)
	}
	c.ctxBQ.Reset()
	return c.ctxBQ
}

func (c *Core) scratchTQ() *core.TQ {
	if c.ctxTQ == nil {
		c.ctxTQ = core.NewTQ(c.tq.size)
	}
	c.ctxTQ.Reset()
	return c.ctxTQ
}

func (c *Core) scratchVQ() *core.VQ {
	if c.ctxVQ == nil {
		c.ctxVQ = core.NewVQ(c.vq.size)
	}
	c.ctxVQ.Reset()
	return c.ctxVQ
}

// fetchCtxSwitch handles a save/restore at fetch: stall until the machine
// drains, then apply the operation architecturally and emit a pre-executed
// uop whose completion models the serialization latency.
func (c *Core) fetchCtxSwitch(u *uop) (stall bool, err error) {
	// The uop being fetched sits in the slot at fqTail, which is not
	// counted until the fetch sticks, so a drained machine reads zero.
	if c.robCount() > 0 || c.fqLen() > 0 {
		return true, nil // serialize: drain first
	}
	addr := c.committedReg(u.inst.Rs1) + uint64(u.inst.Imm)
	lat := uint64(ctxSwitchOverhead)
	switch u.inst.Op {
	case isa.SaveBQ:
		q, n := c.archBQ()
		img := c.ctxImage(q.ImageSize())
		if err := q.SaveTo(img); err != nil {
			return false, err
		}
		c.mem.StoreBytes(addr, img)
		lat += uint64(n)
	case isa.RestoreBQ:
		q := c.scratchBQ()
		img := c.ctxImage(q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		// Reset the hardware BQ: contents at the front, pushed bits set.
		c.bq.specHead, c.bq.commHead, c.bq.specTail = 0, 0, 0
		c.bq.markOK = false
		for i := 0; i < q.Len(); i++ {
			e := c.bq.at(c.bq.specTail)
			*e = bqEntryHW{pred: q.At(i), pushed: true}
			c.bq.specTail++
		}
		lat += uint64(q.Len())
	case isa.SaveTQ:
		q, n := c.archTQ()
		img := c.ctxImage(q.ImageSize())
		if err := q.SaveTo(img); err != nil {
			return false, err
		}
		c.mem.StoreBytes(addr, img)
		lat += uint64(n)
	case isa.RestoreTQ:
		q := c.scratchTQ()
		img := c.ctxImage(q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		c.tq.specHead, c.tq.commHead, c.tq.specTail = 0, 0, 0
		for i := 0; i < q.Len(); i++ {
			e := q.At(i)
			hw := c.tq.at(c.tq.specTail)
			*hw = tqEntryHW{count: e.Count, overflow: e.Overflow, pushed: true}
			c.tq.specTail++
		}
		lat += uint64(q.Len())
	case isa.SaveVQ:
		q, n := c.archVQ()
		img := c.ctxImage(q.ImageSize())
		if err := q.SaveTo(img); err != nil {
			return false, err
		}
		c.mem.StoreBytes(addr, img)
		lat += uint64(n)
	case isa.RestoreVQ:
		q := c.scratchVQ()
		img := c.ctxImage(q.ImageSize())
		c.mem.LoadBytes(addr, img)
		if err := q.Restore(img); err != nil {
			return false, err
		}
		// Drop the old in-queue registers back to the freelist, then
		// allocate fresh ones for the restored values (the cracked
		// load+push sequence of §IV-B2).
		for c.vq.commHead < c.vq.specTail {
			c.freePreg(*c.vq.at(c.vq.commHead))
			c.vq.commHead++
		}
		c.vq.specHead, c.vq.commHead, c.vq.specTail = 0, 0, 0
		for i := 0; i < q.Len(); i++ {
			pr := c.allocPreg()
			c.prf[pr] = q.At(i)
			c.prfReady[pr] = true
			*c.vq.at(c.vq.specTail) = pr
			c.vq.specTail++
		}
		lat += uint64(q.Len())
	}
	u.resolvedFetch = true
	// The cracked sequence serializes the front end.
	c.fetchStallTill = c.now + lat
	return false, nil
}

// committedReg reads an architectural register value; with the window
// drained the RMT maps logical registers to their committed physicals.
func (c *Core) committedReg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return c.prf[c.rmt[r]]
}

// archBQ reconstructs the architectural BQ (committed head through
// speculative tail; identical when drained) and its occupancy into the
// reusable scratch queue.
func (c *Core) archBQ() (*core.BQ, int) {
	q := c.scratchBQ()
	n := 0
	for pos := c.bq.commHead; pos < c.bq.specTail; pos++ {
		_ = q.Push(c.bq.at(pos).pred)
		n++
	}
	return q, n
}

func (c *Core) archTQ() (*core.TQ, int) {
	q := c.scratchTQ()
	n := 0
	for pos := c.tq.commHead; pos < c.tq.specTail; pos++ {
		e := *c.tq.at(pos)
		if e.overflow {
			_ = q.Push(uint64(maxTripCount) + 1)
		} else {
			_ = q.Push(uint64(e.count))
		}
		n++
	}
	return q, n
}

func (c *Core) archVQ() (*core.VQ, int) {
	q := c.scratchVQ()
	n := 0
	for pos := c.vq.commHead; pos < c.vq.specTail; pos++ {
		_ = q.Push(c.prf[*c.vq.at(pos)])
		n++
	}
	return q, n
}
