package pipeline

import (
	"testing"

	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// TestCtxSwitchSaveRestoreZeroAllocs pins the context-switch fast path:
// once the scratch queues and image buffer exist, a full save/restore
// round trip of all three queues must not allocate. The first switch may
// allocate (lazily created scratch, first-touch memory pages); steady
// state may not — save/restore used to build three fresh architectural
// queues and images per switch.
func TestCtxSwitchSaveRestoreZeroAllocs(t *testing.T) {
	b := prog.NewBuilder()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(testConfig(), p, mem.New())
	if err != nil {
		t.Fatal(err)
	}

	// Populate the drained hardware queues directly, as retired pushes
	// would have.
	for i := 0; i < 8; i++ {
		e := c.bq.at(c.bq.specTail)
		*e = bqEntryHW{pred: i%3 == 0, pushed: true}
		c.bq.specTail++
	}
	for i := 0; i < 5; i++ {
		e := c.tq.at(c.tq.specTail)
		*e = tqEntryHW{count: uint32(10 + i), pushed: true}
		c.tq.specTail++
	}
	for i := 0; i < 4; i++ {
		pr := c.allocPreg()
		c.prf[pr] = uint64(0xbeef0000 + i)
		c.prfReady[pr] = true
		*c.vq.at(c.vq.specTail) = pr
		c.vq.specTail++
	}

	mk := func(op isa.Op, addr int64) *uop {
		return &uop{inst: isa.Inst{Op: op, Rs1: isa.Zero, Imm: addr}}
	}
	ops := []*uop{
		mk(isa.SaveBQ, 0x1000), mk(isa.SaveTQ, 0x2000), mk(isa.SaveVQ, 0x4000),
		mk(isa.RestoreBQ, 0x1000), mk(isa.RestoreTQ, 0x2000), mk(isa.RestoreVQ, 0x4000),
	}
	roundTrip := func() {
		for _, u := range ops {
			if stall, err := c.fetchCtxSwitch(u); err != nil || stall {
				t.Fatalf("%v: stall=%v err=%v", u.inst.Op, stall, err)
			}
		}
	}
	roundTrip() // warm up scratch buffers and memory pages

	if avg := testing.AllocsPerRun(50, roundTrip); avg != 0 {
		t.Errorf("save/restore round trip allocates %.1f times per switch, want 0", avg)
	}
}
