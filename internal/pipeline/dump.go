package pipeline

import (
	"fmt"
	"strings"
)

// Dump renders the core's internal state for debugging deadlocks and model
// bugs: window occupancy, the oldest instructions, resource counters, and
// queue pointers.
func (c *Core) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d  fetchPC %d  stallTill %d  halt %v\n",
		c.now, c.fetchPC, c.fetchStallTill, c.haltFetched)
	fmt.Fprintf(&b, "rob %d/%d  iq %d/%d  sq %d/%d  lq %d/%d  frontQ %d\n",
		c.robCount(), c.cfg.ROBSize, len(c.iq), c.cfg.IQSize,
		int(c.sqTail-c.sqHead), c.cfg.SQSize, c.lqCount, c.cfg.LQSize, c.fqLen())
	fmt.Fprintf(&b, "ckpts %d/%d  freeRegs %d\n", c.usedCkpts, c.cfg.NumCheckpoints, c.freeCount())
	fmt.Fprintf(&b, "BQ head %d tail %d comm %d mark %d(%v)  TQ head %d tail %d comm %d  TCR %d\n",
		c.bq.specHead, c.bq.specTail, c.bq.commHead, c.bq.specMark, c.bq.markOK,
		c.tq.specHead, c.tq.specTail, c.tq.commHead, c.specTCR)
	fmt.Fprintf(&b, "VQ head %d tail %d comm %d\n", c.vq.specHead, c.vq.specTail, c.vq.commHead)
	n := 0
	for pos := c.robHead; pos < c.robTail && n < 8; pos++ {
		u := c.robAt(pos)
		fmt.Fprintf(&b, "  rob[%d] seq=%d pc=%d %-24s exec=%v issued=%v inIQ=%v srcs=(%d,%d,%d) vq=%d dst=%d\n",
			pos, u.seq, u.pc, u.inst.String(), u.executed, u.issued, u.inIQ,
			u.psrc1, u.psrc2, u.psrc3, u.vqSrcPreg, u.pdst)
		n++
	}
	if c.fqLen() > 0 {
		u := c.fqFront()
		fmt.Fprintf(&b, "  frontQ[0] seq=%d pc=%d %s readyAt=%d\n", u.seq, u.pc, u.inst.String(), u.readyAt)
	}
	return b.String()
}
