package pipeline

import (
	"fmt"

	"cfd/internal/core"
	"cfd/internal/fault"
	"cfd/internal/isa"
)

// retRing keeps the last few retired instructions for fault snapshots. It
// stores raw (pc, inst) pairs so the hot retire path never allocates;
// rendering happens only when a snapshot is taken.
type retRing struct {
	buf  [fault.RingDepth]struct {
		pc uint64
		in isa.Inst
	}
	next int
	full bool
}

func (r *retRing) record(pc uint64, in isa.Inst) {
	r.buf[r.next] = struct {
		pc uint64
		in isa.Inst
	}{pc, in}
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

func (r *retRing) snapshot() []fault.RetiredInst {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]fault.RetiredInst, 0, n)
	emit := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = append(out, fault.RetiredInst{PC: r.buf[i].pc, Text: r.buf[i].in.String()})
		}
	}
	if r.full {
		emit(r.next, len(r.buf))
	}
	emit(0, r.next)
	return out
}

// snapshot captures the core's architectural vantage for fault diagnostics:
// current cycle and fetch PC, the architectural queue lengths of the fetch
// stall rule (§III-C3), the speculative TCR, and the last retirements.
func (c *Core) snapshot() fault.Snapshot {
	return fault.Snapshot{
		Engine:      "pipeline",
		PC:          c.fetchPC,
		Cycle:       c.now,
		Retired:     c.Stats.Retired,
		BQLen:       c.bq.length(),
		VQLen:       c.vq.length(),
		TQLen:       c.tq.length(),
		TCR:         c.specTCR,
		LastRetired: c.diag.snapshot(),
	}
}

// queueFault raises a QueueViolation fault wrapping the ISA ordering-rule
// violation v, with pc overriding the snapshot's fetch PC (faults detected
// at retire anchor at the retiring instruction, not the fetch frontier).
func (c *Core) queueFault(pc uint64, v *core.ViolationError) error {
	snap := c.snapshot()
	snap.PC = pc
	return fault.Wrap(fault.QueueViolation, fmt.Errorf("pipeline: pc %d: %w", pc, v), snap)
}

// checkInvariants validates the model's internal pointer discipline. A
// breach is always a simulator bug; it is reported as a typed fault with
// state instead of corrupting the run silently (or panicking on a later
// index).
func (c *Core) checkInvariants() error {
	breach := func(format string, args ...any) error {
		return fault.New(fault.InvariantBreach, c.snapshot(), format, args...)
	}
	switch {
	case c.bq.specHead > c.bq.specTail || c.bq.commHead > c.bq.specHead:
		return breach("BQ pointers out of order: comm %d, head %d, tail %d",
			c.bq.commHead, c.bq.specHead, c.bq.specTail)
	case c.bq.length() > c.bq.size:
		return breach("BQ occupancy %d exceeds size %d", c.bq.length(), c.bq.size)
	case c.tq.specHead > c.tq.specTail || c.tq.commHead > c.tq.specHead:
		return breach("TQ pointers out of order: comm %d, head %d, tail %d",
			c.tq.commHead, c.tq.specHead, c.tq.specTail)
	case c.tq.length() > c.tq.size:
		return breach("TQ occupancy %d exceeds size %d", c.tq.length(), c.tq.size)
	case c.vq.specHead > c.vq.specTail || c.vq.commHead > c.vq.specHead:
		return breach("VQ pointers out of order: comm %d, head %d, tail %d",
			c.vq.commHead, c.vq.specHead, c.vq.specTail)
	case c.vq.length() > c.vq.size:
		return breach("VQ occupancy %d exceeds size %d", c.vq.length(), c.vq.size)
	case c.flHead > c.flTail || int(c.flTail-c.flHead) > c.cfg.NumPhysRegs:
		return breach("freelist pointers out of order: head %d, tail %d, regs %d",
			c.flHead, c.flTail, c.cfg.NumPhysRegs)
	case c.robHead > c.robTail || c.robCount() > c.cfg.ROBSize:
		return breach("ROB pointers out of order: head %d, tail %d, size %d",
			c.robHead, c.robTail, c.cfg.ROBSize)
	case c.fqTail < c.robTail || uint64(len(c.rob)) < c.fqTail-c.robHead:
		return breach("front-end queue pointers out of order: robHead %d, robTail %d, fqTail %d",
			c.robHead, c.robTail, c.fqTail)
	case c.usedCkpts < 0 || c.usedCkpts > c.cfg.NumCheckpoints:
		return breach("checkpoint count %d outside [0,%d]", c.usedCkpts, c.cfg.NumCheckpoints)
	case c.lqCount < 0 || c.lqCount > c.cfg.LQSize:
		return breach("LQ occupancy %d outside [0,%d]", c.lqCount, c.cfg.LQSize)
	case c.sqHead > c.sqTail || int(c.sqTail-c.sqHead) > c.cfg.SQSize:
		return breach("SQ pointers out of order: head %d, tail %d, size %d",
			c.sqHead, c.sqTail, c.cfg.SQSize)
	}
	return nil
}
