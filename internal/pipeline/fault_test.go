package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cfd/internal/config"
	"cfd/internal/core"
	"cfd/internal/fault"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// runForFault executes p and asserts the run dies with a typed fault of the
// given kind, returning it for inspection.
func runForFault(t *testing.T, cfg config.Core, p *prog.Program, kind fault.Kind, opts ...Option) *fault.Fault {
	t.Helper()
	c, err := New(cfg, p, mem.New(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(0)
	if err == nil {
		t.Fatalf("run completed cleanly, want %v fault", kind)
	}
	f, ok := fault.As(err)
	if !ok {
		t.Fatalf("error %v is not a *fault.Fault", err)
	}
	if f.Kind != kind {
		t.Fatalf("fault kind = %v, want %v (err: %v)", f.Kind, kind, err)
	}
	if f.Snap.Engine != "pipeline" {
		t.Fatalf("snapshot engine = %q, want pipeline", f.Snap.Engine)
	}
	return f
}

// wantPipelineViolation asserts a QueueViolation fault blaming queue/op.
func wantPipelineViolation(t *testing.T, cfg config.Core, p *prog.Program, queue, op string, opts ...Option) *fault.Fault {
	t.Helper()
	f := runForFault(t, cfg, p, fault.QueueViolation, opts...)
	var v *core.ViolationError
	if !errors.As(f, &v) {
		t.Fatalf("fault %v does not wrap a *core.ViolationError", f)
	}
	if v.Queue != queue || v.Op != op {
		t.Fatalf("violation blames %s/%s, want %s/%s (%v)", v.Queue, v.Op, queue, op, v)
	}
	return f
}

// TestPipelineFaultBQUnderflow: a branch_bq that retires without a matching
// push_bq is detected at retirement (the speculative pop never claimed an
// architectural entry).
func TestPipelineFaultBQUnderflow(t *testing.T) {
	p := prog.NewBuilder().
		Nop().
		BranchBQ("done").Label("done").Halt().MustBuild()
	f := wantPipelineViolation(t, testConfig(), p, "BQ", "branch_bq")
	if f.Snap.PC != 1 {
		t.Errorf("fault pc = %d, want 1 (the branch_bq)", f.Snap.PC)
	}
}

// TestPipelineFaultForwardWithoutMark matches the emulator's rule: a
// retired forward_bq with no preceding mark_bq is an ISA violation.
func TestPipelineFaultForwardWithoutMark(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, 1).PushBQ(1).
		ForwardBQ().
		Halt().MustBuild()
	f := wantPipelineViolation(t, testConfig(), p, "BQ", "forward")
	if !strings.Contains(f.Error(), "mark") {
		t.Errorf("forward fault does not mention the missing mark: %v", f)
	}
}

// TestPipelineFaultPopTQOverflowBit: fetch consuming a TQ entry whose
// overflow bit is set via the non-OV pop form faults, mirroring the
// emulator.
func TestPipelineFaultPopTQOverflowBit(t *testing.T) {
	p := prog.NewBuilder().
		Li(1, core.MaxTripCount+1).
		PushTQ(1).
		PopTQ().
		Halt().MustBuild()
	f := wantPipelineViolation(t, testConfig(), p, "TQ", "pop_tq")
	if !strings.Contains(f.Error(), "overflow") {
		t.Errorf("fault does not mention the overflow bit: %v", f)
	}
}

// TestPipelineFaultBQOverflowDeadlock: pushing past the architectural BQ
// size stalls fetch forever; the no-retirement watchdog converts the hang
// into a typed deadlock fault instead of spinning.
func TestPipelineFaultBQOverflowDeadlock(t *testing.T) {
	cfg := testConfig()
	cfg.BQSize = 4
	b := prog.NewBuilder().Li(1, 1)
	for i := 0; i < 2*cfg.BQSize+8; i++ {
		b.PushBQ(1)
	}
	p := b.Halt().MustBuild()
	f := runForFault(t, cfg, p, fault.WatchdogExpiry, WithDeadlockLimit(2000))
	if !errors.Is(f, ErrDeadlock) {
		t.Fatalf("fault %v does not wrap ErrDeadlock", f)
	}
	if f.Snap.BQLen != cfg.BQSize {
		t.Errorf("snapshot BQ length = %d, want full (%d)", f.Snap.BQLen, cfg.BQSize)
	}
}

// TestPipelineFaultVQUnderflowDeadlock: a pop_vq with nothing ever pushed
// can never issue; the deadlock watchdog reports it with state.
func TestPipelineFaultVQUnderflowDeadlock(t *testing.T) {
	p := prog.NewBuilder().PopVQ(5).Halt().MustBuild()
	f := runForFault(t, testConfig(), p, fault.WatchdogExpiry, WithDeadlockLimit(2000))
	if !errors.Is(f, ErrDeadlock) {
		t.Fatalf("fault %v does not wrap ErrDeadlock", f)
	}
	if f.Snap.VQLen != 0 {
		t.Errorf("snapshot VQ length = %d, want 0", f.Snap.VQLen)
	}
}

// TestPipelineFaultTQUnderflowDeadlock: same for the trip-count queue.
func TestPipelineFaultTQUnderflowDeadlock(t *testing.T) {
	p := prog.NewBuilder().PopTQ().Halt().MustBuild()
	f := runForFault(t, testConfig(), p, fault.WatchdogExpiry, WithDeadlockLimit(2000))
	if !errors.Is(f, ErrDeadlock) {
		t.Fatalf("fault %v does not wrap ErrDeadlock", f)
	}
}

func TestPipelineWatchdogMaxCycles(t *testing.T) {
	p := prog.NewBuilder().Label("spin").Jump("spin").Halt().MustBuild()
	f := runForFault(t, testConfig(), p, fault.WatchdogExpiry,
		WithWatchdog(&fault.Watchdog{MaxCycles: 3000}))
	if errors.Is(f, ErrDeadlock) {
		t.Fatal("cycle-budget expiry misreported as deadlock")
	}
	if f.Snap.Cycle != 3000 {
		t.Errorf("watchdog fired at cycle %d, want exactly 3000", f.Snap.Cycle)
	}
}

func TestPipelineWatchdogContextCancel(t *testing.T) {
	p := prog.NewBuilder().Label("spin").Jump("spin").Halt().MustBuild()
	c, err := New(testConfig(), p, mem.New())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = c.RunCtx(ctx, 0)
	f, ok := fault.As(err)
	if !ok || f.Kind != fault.WatchdogExpiry {
		t.Fatalf("err = %v, want watchdog-expiry fault", err)
	}
}
