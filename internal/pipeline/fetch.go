package pipeline

import (
	"cfd/internal/config"
	"cfd/internal/core"
	"cfd/internal/energy"
	"cfd/internal/isa"
)

// fetch models the fetch unit: up to FetchWidth instructions per cycle, one
// taken control transfer per cycle, direction prediction (or queue
// resolution for CFD pops), BTB lookups with a one-cycle misfetch penalty
// for taken branches that miss, and the CFD fetch-stage machinery — BQ pop
// resolution / speculative pops, BQ-full push stalls, TQ pops into the TCR,
// and TCR-driven looping.
func (c *Core) fetch() error {
	if c.haltFetched || c.now < c.fetchStallTill {
		return nil
	}
	capFQ := c.cfg.FetchWidth * (int(c.feDelay) + 2)
	for slots := c.cfg.FetchWidth; slots > 0; slots-- {
		if c.fqLen() >= capFQ {
			break
		}
		in := c.prog.At(c.fetchPC)

		// Build the uop in place in the rob-ring slot it will occupy
		// (copying a uop is a few hundred bytes; one per stage adds up).
		// fqTail only advances if the fetch sticks, so a stall simply
		// abandons the slot.
		u := c.robAt(c.fqTail)
		*u = uop{
			seq: c.seq, pc: c.fetchPC, inst: in,
			readyAt: c.now + c.feDelay, fetchAt: c.now,
			pdst: noReg, psrc1: noReg, psrc2: noReg, psrc3: noReg,
			pold: noReg, vqSrcPreg: noReg,
			bqIdx: -1, tqIdx: -1, vqIdx: -1,
		}
		u.port, u.mulDiv = portFor(in.Op)
		next := c.fetchPC + 1
		redirect := false
		stall := false

		switch op := in.Op; {
		case isCtxSwitch(op):
			// Queue save/restore serializes: drain, apply
			// architecturally, charge the cracked-sequence latency.
			st, err := c.fetchCtxSwitch(u)
			if err != nil {
				return err
			}
			if st {
				stall = true
				break
			}

		case op == isa.HALT:
			u.isHalt = true
			c.haltFetched = true

		case op == isa.J:
			u.actTaken, u.actTarget = true, in.Target(c.fetchPC)
			u.resolvedFetch = true
			next, redirect = u.actTarget, true

		case op == isa.JAL:
			u.actTaken, u.actTarget = true, in.Target(c.fetchPC)
			u.resolvedFetch = true
			u.rasOldTop = c.ras.Top()
			c.ras.Push(c.fetchPC + 1)
			next, redirect = u.actTarget, true

		case op == isa.JR:
			u.isJR = true
			u.rasOldTop = c.ras.Top()
			if tgt, ok := c.ras.Pop(); ok {
				u.predTarget = tgt
			} else {
				u.predTarget = c.fetchPC + 1
			}
			u.usedPredictor = true
			u.hist = c.pred.Snapshot()
			c.btbProbe(u, true)
			next, redirect = u.predTarget, true

		case op == isa.BranchBQ:
			done, st := c.fetchBranchBQ(u)
			if st {
				stall = true
				break
			}
			next, redirect = done, u.predTaken

		case op == isa.BranchTCR:
			u.isCond = true
			u.resolvedFetch = true
			u.oldTCR = c.specTCR
			if c.specTCR != 0 {
				c.specTCR--
				u.predTaken = true
				u.actTaken = true
			}
			u.actTarget = in.Target(c.fetchPC)
			u.predTarget = u.actTarget
			u.hist = c.pred.Snapshot()
			c.pred.OnFetchOutcome(c.fetchPC, u.actTaken)
			if u.actTaken {
				c.btbProbe(u, true)
				next, redirect = u.actTarget, true
			} else {
				c.btbProbe(u, false)
			}

		case op == isa.PopTQ, op == isa.PopTQOV:
			if c.tq.specHead == c.tq.specTail {
				// Nothing pushed yet (TQ miss before any push, or a
				// wrong path): stall like a TQ miss.
				c.Stats.TQMissStalls++
				c.cycStall = stallTQMiss
				c.cycStallCtr = &c.Stats.TQMissStalls
				stall = true
				break
			}
			e := c.tq.at(c.tq.specHead)
			if !e.pushed {
				// TQ miss: the chosen policy is to stall fetch until
				// the push executes (§IV-C3).
				c.Stats.TQMissStalls++
				c.cycStall = stallTQMiss
				c.cycStallCtr = &c.Stats.TQMissStalls
				stall = true
				break
			}
			c.Meter.Add(energy.TQAccess, 1)
			u.tqIdx = int64(c.tq.specHead)
			c.tq.specHead++
			u.oldTCR = c.specTCR
			u.resolvedFetch = true
			if op == isa.PopTQOV {
				u.isCond = true
				u.actTarget = in.Target(c.fetchPC)
				u.predTarget = u.actTarget
				if e.overflow {
					c.specTCR = 0
					u.predTaken, u.actTaken = true, true
					u.hist = c.pred.Snapshot()
					c.pred.OnFetchOutcome(c.fetchPC, true)
					c.btbProbe(u, true)
					next, redirect = u.actTarget, true
				} else {
					c.specTCR = uint64(e.count)
					u.hist = c.pred.Snapshot()
					c.pred.OnFetchOutcome(c.fetchPC, false)
					c.btbProbe(u, false)
				}
			} else {
				if e.overflow {
					return c.queueFault(c.fetchPC, &core.ViolationError{
						Queue: "TQ", Op: "pop_tq",
						Why: "entry overflow bit set (program must use pop_tq_ov)",
					})
				}
				c.specTCR = uint64(e.count)
			}

		case op == isa.PushBQ:
			if c.bq.length() >= c.bq.size {
				// Architectural BQ full: stall fetch until a pop
				// retires (§III-C3).
				c.Stats.BQFullStalls++
				c.cycStall = stallBQFull
				c.cycStallCtr = &c.Stats.BQFullStalls
				stall = true
				break
			}
			c.Meter.Add(energy.BQAccess, 1)
			u.bqIdx = int64(c.bq.specTail)
			e := c.bq.at(c.bq.specTail)
			*e = bqEntryHW{}
			c.bq.specTail++

		case op == isa.PushTQ:
			if c.tq.length() >= c.tq.size {
				c.Stats.BQFullStalls++
				c.cycStall = stallTQMiss
				c.cycStallCtr = &c.Stats.BQFullStalls
				stall = true
				break
			}
			c.Meter.Add(energy.TQAccess, 1)
			u.tqIdx = int64(c.tq.specTail)
			e := c.tq.at(c.tq.specTail)
			*e = tqEntryHW{}
			c.tq.specTail++

		case op == isa.MarkBQ:
			u.oldMark, u.oldMarkOK = c.bq.specMark, c.bq.markOK
			c.bq.specMark, c.bq.markOK = c.bq.specTail, true

		case op == isa.ForwardBQ:
			c.Meter.Add(energy.BQAccess, 1)
			u.fwdFrom = c.bq.specHead
			u.fwdHadMark = c.bq.markOK
			if c.bq.markOK && c.bq.specMark > c.bq.specHead {
				c.bq.specHead = c.bq.specMark
			}
			u.fwdTo = c.bq.specHead

		case op.IsCondBranch(): // BEQ..BGEU
			u.isCond = true
			u.actTarget = in.Target(c.fetchPC) // filled for convenience; direction at execute
			u.predTarget = u.actTarget
			taken := c.predictCond(u)
			u.predTaken = taken
			c.btbProbe(u, taken)
			if taken {
				next, redirect = u.predTarget, true
			}
		}

		if stall {
			break
		}
		c.fqTail++
		c.seq++
		c.Stats.Fetched++
		c.Meter.Add(energy.Fetch, 1)
		c.Meter.Add(energy.Decode, 1)
		c.fetchPC = next
		if u.isHalt {
			break
		}
		if redirect {
			break // one taken control transfer per fetch cycle
		}
	}
	return nil
}

// predictCond produces the fetch-time direction for a predictor-predicted
// conditional branch, consulting the oracle when it covers this PC.
func (c *Core) predictCond(u *uop) bool {
	pc := u.pc
	if c.oracle != nil && (c.perfectBP || c.oracle.Covers(pc)) {
		if taken, ok := c.oracle.Next(pc); ok {
			u.usedOracle = true
			u.resolvedFetch = true
			u.actTaken = taken
			u.hist = c.pred.Snapshot()
			c.pred.OnFetchOutcome(pc, taken)
			return taken
		}
	}
	c.Meter.Add(energy.PredictorAccess, 1)
	u.usedPredictor = true
	u.lookup = c.pred.Lookup(pc)
	u.hist = c.pred.Snapshot()
	c.pred.OnFetchOutcome(pc, u.lookup.Pred)
	return u.lookup.Pred
}

// fetchBranchBQ handles a BranchBQ pop at fetch: non-speculative resolution
// when the predicate has been pushed, otherwise the configured BQ-miss
// policy (speculative pop with mandatory checkpoint, or fetch stall).
// It returns the next fetch PC and whether fetch must stall this cycle.
func (c *Core) fetchBranchBQ(u *uop) (next uint64, stall bool) {
	u.isCond = true
	u.actTarget = u.inst.Target(u.pc)
	u.predTarget = u.actTarget
	if c.bq.specHead == c.bq.specTail {
		// No in-flight or queued predicate. On a correct path this is
		// an ordering-rule violation; on a wrong path it is harmless.
		// Treat it as a BQ miss.
		return c.bqMiss(u)
	}
	c.Meter.Add(energy.BQAccess, 1)
	e := c.bq.at(c.bq.specHead)
	if e.pushed {
		// Timely, non-speculative branching: the predicate is here.
		u.resolvedFetch = true
		u.actTaken = e.pred
		u.predTaken = e.pred
		u.bqIdx = int64(c.bq.specHead)
		c.bq.specHead++
		u.hist = c.pred.Snapshot()
		c.pred.OnFetchOutcome(u.pc, e.pred)
		c.btbProbe(u, e.pred)
		if e.pred {
			return u.actTarget, false
		}
		return u.pc + 1, false
	}
	return c.bqMiss(u)
}

func (c *Core) bqMiss(u *uop) (next uint64, stall bool) {
	if c.cfg.BQMissPolicy == config.StallFetch {
		c.Stats.BQMissStalls++
		c.cycStall = stallBQMiss
		c.cycStallCtr = &c.Stats.BQMissStalls
		return 0, true
	}
	// Speculative pop: predict the predicate with the branch predictor and
	// leave a claim in the BQ entry for the late push to check (§III-C2).
	c.Meter.Add(energy.PredictorAccess, 1)
	u.specPop = true
	u.usedPredictor = true
	u.lookup = c.pred.Lookup(u.pc)
	u.predTaken = u.lookup.Pred
	u.hist = c.pred.Snapshot()
	c.pred.OnFetchOutcome(u.pc, u.predTaken)
	if c.bq.specHead < c.bq.specTail {
		e := c.bq.at(c.bq.specHead)
		e.popped = true
		e.predPred = u.predTaken
		e.popSeq = u.seq
		e.popRob = ^uint64(0) // filled at rename
		u.bqIdx = int64(c.bq.specHead)
		c.bq.specHead++
		c.Meter.Add(energy.BQAccess, 1)
	}
	c.btbProbe(u, u.predTaken)
	if u.predTaken {
		return u.actTarget, false
	}
	return u.pc + 1, false
}

// btbProbe models the BTB access made for every conditional branch and JR
// in the fetch bundle. A taken transfer that misses costs a one-cycle
// misfetch penalty (§III-C4); misfetch repair at decode installs the entry,
// so the penalty is paid once per cold or evicted branch.
func (c *Core) btbProbe(u *uop, taken bool) {
	c.Meter.Add(energy.BTBAccess, 1)
	_, hit := c.btb.Lookup(u.pc)
	if taken && !hit {
		c.Stats.BTBMisfetches++
		c.fetchStallTill = c.now + 2
		c.btb.Insert(u.pc, u.predTarget)
	}
}

