package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// TestRandomCFDDifferential generates randomized but ISA-legal CFD
// programs — chunks of pushes followed by matching pops, interleaved VQ
// traffic, TQ-driven inner loops, occasional Mark/Forward bulk-pops, and
// data-dependent hammocks to keep the recovery machinery busy — and
// cross-checks the pipeline against the emulator. This is the corner-case
// net for BQ/TQ/VQ state repair under misprediction recovery.
func TestRandomCFDDifferential(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			t.Parallel()
			p, m := randomCFDProgram(seed)
			runBoth(t, testConfig(), p, m)
		})
	}
}

func randomCFDProgram(seed int64) (*prog.Program, *mem.Memory) {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder()
	const dataBase = 0x40000
	lbl := func(s string, i int) string { return fmt.Sprintf("%s_%d", s, i) }

	b.Li(1, dataBase) // data cursor
	b.Li(12, 0)       // accumulator
	b.Li(13, 0)       // out index
	b.Li(14, 0x90000) // out base

	chunks := 4 + rng.Intn(4)
	for c := 0; c < chunks; c++ {
		k := 1 + rng.Intn(16) // pushes in this chunk
		useVQ := rng.Intn(2) == 0
		useMark := rng.Intn(2) == 0
		// Generation loop: k pushes of data-dependent predicates.
		b.Li(2, int64(k))
		b.Label(lbl("gen", c))
		b.Load(isa.LD, 3, 1, 0)
		b.I(isa.ANDI, 4, 3, 1)
		b.PushBQ(4)
		if useVQ {
			b.PushVQ(3)
		}
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, lbl("gen", c))
		if useMark {
			b.MarkBQ()
		}
		// Consumption loop: j pops; if marked, j may undershoot and
		// Forward cleans the rest (the early-exit idiom). Unpopped VQ
		// values are popped unconditionally to keep VQ balance.
		j := k
		if useMark && k > 1 {
			j = 1 + rng.Intn(k)
		}
		b.Li(2, int64(j))
		b.Label(lbl("use", c))
		if useVQ {
			b.PopVQ(5)
			b.R(isa.ADD, 12, 12, 5)
		}
		b.Note("random pred", prog.SeparableTotal)
		b.BranchBQ(lbl("work", c))
		b.Jump(lbl("skip", c))
		b.Label(lbl("work", c))
		b.I(isa.ADDI, 12, 12, 3)
		b.I(isa.SHLI, 6, 13, 3)
		b.R(isa.ADD, 6, 6, 14)
		b.Store(isa.SD, 12, 6, 0)
		b.I(isa.ADDI, 13, 13, 1)
		b.Label(lbl("skip", c))
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, lbl("use", c))
		if useMark {
			b.ForwardBQ()
			// Drain the VQ values whose BQ twins were bulk-popped.
			if useVQ && j < k {
				b.Li(2, int64(k-j))
				b.Label(lbl("vqdrain", c))
				b.PopVQ(5)
				b.R(isa.XOR, 12, 12, 5)
				b.I(isa.ADDI, 2, 2, -1)
				b.Branch(isa.BNE, 2, 0, lbl("vqdrain", c))
			}
		}
		// Occasionally a TQ-driven inner loop between chunks.
		if rng.Intn(2) == 0 {
			trips := rng.Intn(6)
			b.Li(7, int64(trips))
			b.PushTQ(7)
			b.PopTQ()
			b.Jump(lbl("tqt", c))
			b.Label(lbl("tqb", c))
			b.I(isa.ADDI, 12, 12, 1)
			b.Label(lbl("tqt", c))
			b.BranchTCR(lbl("tqb", c))
		}
		// A plain data-dependent hammock to provoke recoveries around
		// the queue operations.
		b.Load(isa.LD, 3, 1, 0)
		b.I(isa.ANDI, 4, 3, 3)
		b.Branch(isa.BNE, 4, 0, lbl("h", c))
		b.R(isa.SUB, 12, 12, 3)
		b.Label(lbl("h", c))
	}
	b.Li(6, 0x98000)
	b.Store(isa.SD, 12, 6, 0)
	b.Store(isa.SD, 13, 6, 8)
	b.Halt()

	m := mem.New()
	vals := make([]uint64, 1024)
	for i := range vals {
		vals[i] = rng.Uint64() % 1000
	}
	m.WriteUint64s(dataBase, vals)
	return b.MustBuild(), m
}

// FuzzCFDDifferential is the native-fuzzing entry to the same
// differential net: each input is a generator seed, expanded into an
// ISA-legal CFD program and cross-checked against the emulator under
// both BQ miss policies. Run with
//
//	go test -run '^$' -fuzz FuzzCFDDifferential -fuzztime 30s ./internal/pipeline/
//
// The committed corpus under testdata/fuzz/FuzzCFDDifferential/ holds
// seeds that exercise Mark/Forward bulk pops, VQ drains, and TQ inner
// loops; those also run as plain subtests under go test.
func FuzzCFDDifferential(f *testing.F) {
	for seed := int64(100); seed < 110; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p, m := randomCFDProgram(seed)
		runBoth(t, testConfig(), p, m)
		stall := testConfig()
		stall.BQMissPolicy = config.StallFetch
		runBoth(t, stall, p, m)
	})
}

// TestRandomCFDDifferentialStallPolicy reruns a few seeds under the
// stall-on-miss policy (different fetch-unit path).
func TestRandomCFDDifferentialStallPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.BQMissPolicy = config.StallFetch
	for seed := int64(200); seed < 204; seed++ {
		p, m := randomCFDProgram(seed)
		runBoth(t, cfg, p, m)
	}
}

// TestRandomCFDDifferentialTinyWindow stresses recovery with scarce
// resources.
func TestRandomCFDDifferentialTinyWindow(t *testing.T) {
	cfg := testConfig()
	cfg.ROBSize = 24
	cfg.IQSize = 6
	cfg.LQSize = 6
	cfg.SQSize = 4
	cfg.NumPhysRegs = 24 + 150
	cfg.NumCheckpoints = 2
	cfg.Name = "fuzz-tiny"
	for seed := int64(300); seed < 306; seed++ {
		p, m := randomCFDProgram(seed)
		runBoth(t, cfg, p, m)
	}
}
