package pipeline

import (
	"cfd/internal/cache"
	"cfd/internal/emu"
	"cfd/internal/energy"
	"cfd/internal/isa"
)

// wrong-path addresses above this bound skip the cache model (a real core
// would fault; garbage addresses must not pollute the timing state).
const addrLimit = uint64(1) << 40

type port uint8

const (
	portALU port = iota
	portMem
	portBr
)

func portFor(op isa.Op) (port, bool) {
	switch op.Class() {
	case isa.ClassLoad, isa.ClassStore:
		return portMem, false
	case isa.ClassBranch, isa.ClassJump:
		return portBr, false
	case isa.ClassMul, isa.ClassDiv:
		return portALU, true
	default:
		return portALU, false
	}
}

// iqEnt is a compact issue-queue entry: just the operand registers and port
// routing the wakeup/select scan needs, so the per-cycle walk stays within a
// cache line per entry instead of dragging whole uops through the cache.
type iqEnt struct {
	pos    uint64 // rob position
	seq    uint64
	psrc1  int32
	psrc2  int32
	psrc3  int32
	vqSrc  int32
	port   port
	mulDiv bool
	isLoad bool
}

// issue selects ready instructions from the issue queue — oldest first, up
// to IssueWidth and the per-port limits — and executes them: values are
// computed here (execute-at-execute) and completion is scheduled after the
// operation latency (loads: when the cache hierarchy delivers the line).
func (c *Core) issue() {
	c.agenStores()
	aluLeft := c.cfg.ALUPorts
	memLeft := c.cfg.MemPorts
	brLeft := c.cfg.BrPorts
	mulDivLeft := 1
	issued := 0

	kept := c.iq[:0]
	for qi := range c.iq {
		e := &c.iq[qi]
		if issued >= c.cfg.IssueWidth || aluLeft+memLeft+brLeft == 0 {
			kept = append(kept, c.iq[qi:]...)
			break
		}
		avail := false
		switch e.port {
		case portALU:
			avail = aluLeft > 0 && (!e.mulDiv || mulDivLeft > 0)
		case portMem:
			avail = memLeft > 0
		case portBr:
			avail = brLeft > 0
		}
		if !avail || !c.ready(e) {
			kept = append(kept, *e)
			continue
		}
		u := c.robAt(e.pos)
		if !c.execute(u, e.pos) {
			kept = append(kept, *e) // load blocked on a store conflict
			continue
		}
		issued++
		switch e.port {
		case portALU:
			aluLeft--
			if e.mulDiv {
				mulDivLeft--
			}
		case portMem:
			memLeft--
		case portBr:
			brLeft--
		}
		u.issued = true
		c.Meter.Add(energy.IQIssue, 1)
	}
	c.iq = kept
	c.cycIssued = issued
}

// ready reports whether all source operands are available and, for loads,
// whether every older store has resolved its address and data.
func (c *Core) ready(e *iqEnt) bool {
	if e.psrc1 >= 0 && !c.prfReady[e.psrc1] {
		return false
	}
	if e.psrc2 >= 0 && !c.prfReady[e.psrc2] {
		return false
	}
	if e.psrc3 >= 0 && !c.prfReady[e.psrc3] {
		return false
	}
	if e.vqSrc >= 0 && !c.prfReady[e.vqSrc] {
		return false
	}
	if e.isLoad && e.seq > c.sqResolvedTo {
		// An older store has not resolved its address yet.
		return false
	}
	return true
}

// agenStores resolves store addresses as soon as the base register is
// ready, independent of the data operand, so memory disambiguation does not
// serialize younger loads behind pending store data. It also refreshes
// sqResolvedTo — the seq below which every store queue entry has a resolved
// address — which is all ready() needs to disambiguate a load.
func (c *Core) agenStores() {
	resolvedTo := ^uint64(0)
	for pos := c.sqHead; pos < c.sqTail; pos++ {
		e := c.sqAt(pos)
		if e.addrOK {
			continue
		}
		u := c.robAt(e.robPos)
		if u.seq == e.seq && !u.squashed && u.psrc1 >= 0 && c.prfReady[u.psrc1] {
			e.addr = c.prf[u.psrc1] + uint64(u.inst.Imm)
			e.size = emu.StoreSize(u.inst.Op)
			e.addrOK = true
			continue
		}
		if resolvedTo == ^uint64(0) {
			resolvedTo = e.seq
		}
	}
	c.sqResolvedTo = resolvedTo
}

// advanceSQResolved recomputes sqResolvedTo after the formerly-oldest
// unresolved store resolved mid-cycle.
func (c *Core) advanceSQResolved() {
	for pos := c.sqHead; pos < c.sqTail; pos++ {
		if e := c.sqAt(pos); !e.addrOK {
			c.sqResolvedTo = e.seq
			return
		}
	}
	c.sqResolvedTo = ^uint64(0)
}

func (c *Core) readSrc(pr int32) (uint64, cache.ServiceLevel) {
	if pr < 0 {
		return 0, cache.NoData
	}
	c.Meter.Add(energy.PRFRead, 1)
	return c.prf[pr], c.prfLevel[pr]
}

// execute computes a uop's result and schedules its completion. It returns
// false when a load must wait for a conflicting store to drain.
func (c *Core) execute(u *uop, pos uint64) bool {
	op := u.inst.Op
	v1, l1 := c.readSrc(u.psrc1)
	v2, l2 := c.readSrc(u.psrc2)
	taint := cache.Max(l1, l2)
	lat := uint64(1)

	switch {
	case op.IsLoad() && op != isa.PREF:
		addr := v1 + uint64(u.inst.Imm)
		u.addr = addr
		size := emu.LoadSize(op)
		val, fwd, wait := c.sqLookup(u.seq, addr, size)
		if wait {
			return false
		}
		c.Meter.Add(energy.AGU, 1)
		c.Meter.Add(energy.LSQOp, 1)
		var lvl cache.ServiceLevel = cache.L1
		if fwd {
			lat = c.cfg.Cache.L1.Latency
		} else {
			val = c.mem.Read(addr, size)
			if addr < addrLimit {
				done, sl := c.hier.Access(addr, c.now)
				lat = done - c.now
				lvl = sl
				c.chargeMemEnergy(sl)
			} else {
				lat = c.cfg.Cache.L1.Latency
			}
		}
		u.memLevel = lvl
		if u.pdst >= 0 {
			c.prf[u.pdst] = emu.ExtendLoad(op, val)
			c.prfLevel[u.pdst] = cache.Max(taint, lvl)
			c.Meter.Add(energy.PRFWrite, 1)
		}

	case op == isa.PREF:
		addr := v1 + uint64(u.inst.Imm)
		u.addr = addr
		c.Meter.Add(energy.AGU, 1)
		if addr < addrLimit {
			c.hier.Prefetch(addr, c.now)
			c.Meter.Add(energy.L1Access, 1)
		}

	case op.IsStore():
		addr := v1 + uint64(u.inst.Imm)
		size := emu.StoreSize(op)
		u.addr, u.storeData, u.storeSize = addr, v2&sizeMask(size), size
		e := c.sqAt(u.sqPos)
		e.addr, e.size, e.addrOK = addr, size, true
		e.data, e.dataOK = u.storeData, true
		if u.seq == c.sqResolvedTo {
			c.advanceSQResolved()
		}
		c.Meter.Add(energy.AGU, 1)
		c.Meter.Add(energy.LSQOp, 1)

	case op == isa.PushBQ:
		u.actTaken = v1 != 0
		u.srcLevel = taint
		c.Meter.Add(energy.ALUOp, 1)

	case op == isa.PushTQ:
		u.storeData = v1
		u.srcLevel = taint
		c.Meter.Add(energy.ALUOp, 1)

	case op == isa.PushVQ:
		c.prf[u.pdst] = v1
		c.prfLevel[u.pdst] = taint
		c.Meter.Add(energy.PRFWrite, 1)
		c.Meter.Add(energy.ALUOp, 1)

	case op == isa.PopVQ:
		v, lvl := c.readSrc(u.vqSrcPreg)
		c.prf[u.pdst] = v
		c.prfLevel[u.pdst] = lvl
		c.Meter.Add(energy.PRFWrite, 1)
		c.Meter.Add(energy.ALUOp, 1)

	case u.isCond: // BEQ..BGEU (queue pops never reach the IQ)
		u.actTaken = emu.EvalBranch(op, v1, v2)
		u.srcLevel = taint
		c.Meter.Add(energy.ALUOp, 1)

	case u.isJR:
		u.actTaken, u.actTarget = true, v1
		u.srcLevel = taint
		c.Meter.Add(energy.ALUOp, 1)

	default: // ALU, MUL, DIV, CMOV
		var old uint64
		if u.psrc3 >= 0 {
			var l3 cache.ServiceLevel
			old, l3 = c.readSrc(u.psrc3)
			taint = cache.Max(taint, l3)
		}
		res := emu.ALUOp(op, v1, v2, uint64(u.inst.Imm), old)
		if u.pdst >= 0 {
			c.prf[u.pdst] = res
			c.prfLevel[u.pdst] = taint
			c.Meter.Add(energy.PRFWrite, 1)
		}
		switch op.Class() {
		case isa.ClassMul:
			lat = uint64(c.cfg.MulLatency)
			c.Meter.Add(energy.MulDivOp, 1)
		case isa.ClassDiv:
			lat = uint64(c.cfg.DivLatency)
			c.Meter.Add(energy.MulDivOp, 1)
		default:
			c.Meter.Add(energy.ALUOp, 1)
		}
	}

	u.issueAt = c.now
	c.schedule(c.now+lat, pos, u.seq)
	return true
}

func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}

func (c *Core) chargeMemEnergy(lvl cache.ServiceLevel) {
	c.Meter.Add(energy.L1Access, 1)
	switch lvl {
	case cache.L2:
		c.Meter.Add(energy.L2Access, 1)
	case cache.L3:
		c.Meter.Add(energy.L2Access, 1)
		c.Meter.Add(energy.L3Access, 1)
	case cache.MEM:
		c.Meter.Add(energy.L2Access, 1)
		c.Meter.Add(energy.L3Access, 1)
		c.Meter.Add(energy.MemAccess, 1)
	}
}

// sqLookup searches the store queue for stores older than seq overlapping
// [addr, addr+size). An exact-width match from the youngest such store
// forwards its data; a partial overlap forces the load to wait until the
// store drains.
func (c *Core) sqLookup(seq, addr uint64, size int) (val uint64, fwd, wait bool) {
	for pos := c.sqHead; pos < c.sqTail; pos++ {
		e := c.sqAt(pos)
		if e.seq >= seq {
			break
		}
		if !e.addrOK {
			return 0, false, true // guarded by ready(); defensive
		}
		if e.addr+uint64(e.size) <= addr || addr+uint64(size) <= e.addr {
			continue
		}
		if e.addr == addr && e.size == size && e.dataOK {
			val, fwd, wait = e.data, true, false
		} else {
			val, fwd, wait = 0, false, true
		}
	}
	return val, fwd, wait
}

// complete drains this cycle's completion events: results become visible to
// dependents, branches resolve (initiating recovery on mispredictions), and
// pushes write their queue entries — including the late-push check against
// speculative pops (§III-C2).
func (c *Core) complete() {
	slot := c.now % eventRing
	evs := c.events[slot]
	if len(evs) == 0 {
		return
	}
	c.cycCompleted = len(evs)
	c.events[slot] = evs[:0]
	for _, ev := range evs {
		if ev.at > c.now {
			// Parked long-latency event: reschedule (now within ring
			// range or parks again).
			c.schedule(ev.at, ev.robPos, ev.seq)
			continue
		}
		u := c.robAt(ev.robPos)
		if u.seq != ev.seq || u.squashed {
			continue
		}
		u.executed = true
		u.doneAt = c.now
		if u.pdst >= 0 {
			c.prfReady[u.pdst] = true
		}
		switch {
		case u.inst.Op == isa.PushBQ:
			c.completePushBQ(u)
		case u.inst.Op == isa.PushTQ:
			e := c.tq.at(uint64(u.tqIdx))
			e.overflow = u.storeData > maxTripCount
			e.count = uint32(u.storeData & maxTripCount)
			e.pushed = true
		case u.isCond && !u.resolvedFetch:
			c.resolveBranch(u, ev.robPos)
		case u.isJR:
			c.resolveBranch(u, ev.robPos)
		}
	}
}

const maxTripCount = 1<<16 - 1

// resolveBranch checks a predicted branch at execute. Mispredictions
// recover immediately through the branch's checkpoint, or wait for
// retirement when it has none (the timing cost of running out of
// checkpoints).
func (c *Core) resolveBranch(u *uop, pos uint64) {
	correct := u.actTaken == u.predTaken
	if u.isJR {
		correct = u.actTarget == u.predTarget
	}
	if u.actTaken {
		c.btb.Insert(u.pc, u.actTarget)
	}
	if correct {
		if c.cfg.CkptOoOReclaim && u.hasCkpt {
			c.usedCkpts--
			u.hasCkpt = false
		}
		return
	}
	u.mispredict = true
	newPC := u.actTarget
	if u.isCond && !u.actTaken {
		newPC = u.pc + 1
	}
	if u.hasCkpt {
		c.Stats.Recoveries++
		c.pred.Restore(u.hist)
		if u.isCond {
			c.pred.OnFetchOutcome(u.pc, u.actTaken)
		}
		c.recoverAfter(u.seq, newPC)
		c.noteRecovery(u.seq, u.srcLevel, u.specPop)
		c.Meter.Add(energy.CkptRestore, 1)
		if c.cfg.CkptOoOReclaim {
			c.usedCkpts--
			u.hasCkpt = false
		}
	} else {
		u.retireRecover = true
	}
}

// completePushBQ implements the push side of BQ operation (Fig 10): write
// the predicate and pushed bit; if a speculative pop already claimed this
// entry, confirm its prediction or initiate recovery from the pop's
// checkpoint (late push).
func (c *Core) completePushBQ(u *uop) {
	c.Meter.Add(energy.BQAccess, 1)
	e := c.bq.at(uint64(u.bqIdx))
	pred := u.actTaken
	e.srcLevel = u.srcLevel
	if e.popped {
		if e.predPred != pred {
			c.lateRecover(e, pred)
		} else {
			c.confirmSpecPop(e, pred)
		}
	}
	e.pred = pred
	e.pushed = true
}

// confirmSpecPop marks the speculating pop resolved and releases its
// checkpoint.
func (c *Core) confirmSpecPop(e *bqEntryHW, pred bool) {
	pop := c.findPop(e)
	if pop == nil {
		return
	}
	pop.actTaken = pred
	pop.resolvedFetch = true
	if pop.hasCkpt && c.cfg.CkptOoOReclaim {
		c.usedCkpts--
		pop.hasCkpt = false
	}
}

// findPop locates the speculating pop for a BQ entry, in the ROB or still
// in the front-end queue.
func (c *Core) findPop(e *bqEntryHW) *uop {
	if e.popRob != ^uint64(0) && e.popRob >= c.robHead && e.popRob < c.robTail {
		u := c.robAt(e.popRob)
		if u.seq == e.popSeq {
			return u
		}
	}
	for pos := c.robTail; pos < c.fqTail; pos++ {
		if u := c.robAt(pos); u.seq == e.popSeq {
			return u
		}
	}
	return nil
}

// lateRecover handles a late push whose predicate disagrees with the
// speculative pop's prediction: recover to the pop using the checkpoint it
// claimed, exactly like a branch misprediction anchored at the pop.
func (c *Core) lateRecover(e *bqEntryHW, pred bool) {
	pop := c.findPop(e)
	if pop == nil {
		return // pop squashed between the claim and now; popped bit was stale
	}
	pop.actTaken = pred
	pop.predTaken = pred // the front end proceeds down the corrected path
	pop.mispredict = true
	pop.resolvedFetch = true
	newPC := pop.pc + 1
	if pred {
		newPC = pop.actTarget
	}
	c.Stats.Recoveries++
	c.pred.Restore(pop.hist)
	c.pred.OnFetchOutcome(pop.pc, pred)
	c.recoverAfter(pop.seq, newPC)
	c.noteRecovery(pop.seq, e.srcLevel, true)
	c.Meter.Add(energy.CkptRestore, 1)
	if pop.hasCkpt {
		c.usedCkpts--
		pop.hasCkpt = false
	}
	pop.srcLevel = e.srcLevel
}
