package pipeline

import (
	"reflect"
	"testing"

	"cfd/internal/fault"
	"cfd/internal/mem"
	"cfd/internal/obs"
)

// TestObserverTailFlushOnFault pins the fault-path tail flush: a run the
// watchdog kills mid-interval must leave exactly the series a clean run
// truncated at the same cycle produces — including the final partial
// sample, which used to be dropped along with the faulting run.
func TestObserverTailFlushOnFault(t *testing.T) {
	const every, cut = 64, 1000 // cut lands mid-interval, off a boundary

	build := func(opts ...Option) (*Core, *obs.Observer) {
		m := mem.New()
		m.WriteUint64s(0x10000, randomArray(200, 100, 17))
		cfg := testConfig()
		o := obs.NewObserver(every, cfg.BQSize, cfg.VQSize, cfg.TQSize)
		core, err := New(cfg, cfdLoop(0x10000, 0x80000, 200, 50), m,
			append([]Option{WithObserver(o)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return core, o
	}

	// Clean reference, truncated at the cut by stepping cycle-by-cycle.
	clean, cleanObs := build()
	for clean.now < cut && !clean.done {
		if err := clean.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	if clean.done {
		t.Fatalf("workload finished before cycle %d; pick a smaller cut", cut)
	}
	clean.FinishObservation()

	// The same machine killed by a cycle-budget watchdog at the cut.
	faulted, faultedObs := build(WithWatchdog(&fault.Watchdog{MaxCycles: cut}))
	err := faulted.Run(0)
	if _, ok := fault.As(err); !ok {
		t.Fatalf("want a watchdog fault at cycle %d, got %v", cut, err)
	}
	// No manual FinishObservation: the fault path must have flushed.

	if len(faultedObs.Samples) == 0 {
		t.Fatal("faulted run produced no samples")
	}
	if last := faultedObs.Samples[len(faultedObs.Samples)-1].Cycle; last != cut {
		t.Errorf("faulted series ends at cycle %d, want the fault cycle %d", last, cut)
	}
	if !reflect.DeepEqual(cleanObs.Samples, faultedObs.Samples) {
		t.Errorf("faulted series differs from truncated-clean series\nclean:   %+v\nfaulted: %+v",
			cleanObs.Samples, faultedObs.Samples)
	}

	// A caller-side flush after the fault-path flush records nothing.
	before := len(faultedObs.Samples)
	faulted.FinishObservation()
	if len(faultedObs.Samples) != before {
		t.Errorf("double Finish appended a sample: %d -> %d", before, len(faultedObs.Samples))
	}
}
