package pipeline

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"cfd/internal/mem"
	"cfd/internal/obs"
	"cfd/internal/stats"
)

// obsRun runs the cfdLoop workload with an attached observer and returns
// the finished core.
func obsRun(t testing.TB, every uint64, n int64) *Core {
	t.Helper()
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(int(n), 100, 17))
	cfg := testConfig()
	o := obs.NewObserver(every, cfg.BQSize, cfg.VQSize, cfg.TQSize)
	core, err := New(cfg, cfdLoop(0x10000, 0x80000, n, 50), m, WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	core.FinishObservation()
	return core
}

func TestObserverTimeSeries(t *testing.T) {
	const every = 64
	core := obsRun(t, every, 100)
	o := core.Observer()
	st := &core.Stats

	wantSamples := int(st.Cycles / every)
	if st.Cycles%every != 0 {
		wantSamples++ // Finish flushes the partial tail
	}
	if len(o.Samples) != wantSamples {
		t.Fatalf("%d samples over %d cycles at every=%d, want %d",
			len(o.Samples), st.Cycles, every, wantSamples)
	}

	// Per-sample invariants, plus: interval retires must total the run's.
	var retired float64
	var prevCycle uint64
	for i, s := range o.Samples {
		if s.Cycle <= prevCycle {
			t.Fatalf("sample %d: cycle %d not increasing past %d", i, s.Cycle, prevCycle)
		}
		dc := float64(s.Cycle - prevCycle)
		retired += s.IPC * dc
		if s.IPC < 0 || s.IPC > float64(testConfig().RetireWidth) {
			t.Errorf("sample %d: IPC %v outside [0, retire width]", i, s.IPC)
		}
		for name, f := range map[string]float64{
			"fetch": s.FetchStall, "bq": s.BQStall, "tq": s.TQStall,
		} {
			if f < 0 || f > 1 {
				t.Errorf("sample %d: %s stall fraction %v outside [0,1]", i, name, f)
			}
		}
		if s.BQOcc < 0 || s.BQOcc > float64(testConfig().BQSize) {
			t.Errorf("sample %d: BQ occupancy %v outside queue bounds", i, s.BQOcc)
		}
		prevCycle = s.Cycle
	}
	if got := uint64(math.Round(retired)); got != st.Retired {
		t.Errorf("time series accounts for %d retires, run retired %d", got, st.Retired)
	}
	// The last boundary is the run's final cycle.
	if last := o.Samples[len(o.Samples)-1].Cycle; last != st.Cycles {
		t.Errorf("last sample at cycle %d, run took %d", last, st.Cycles)
	}
	// Stall fractions must agree with the CPI stack in aggregate.
	var bqStall float64
	prevCycle = 0
	for _, s := range o.Samples {
		bqStall += s.BQStall * float64(s.Cycle-prevCycle)
		prevCycle = s.Cycle
	}
	if got, want := uint64(math.Round(bqStall)), st.CPI.Buckets[stats.CPIBQStall]; got != want {
		t.Errorf("series BQ stall cycles %d != CPI stack %d", got, want)
	}
}

func TestObserverOccupancyHistograms(t *testing.T) {
	core := obsRun(t, 64, 100)
	o := core.Observer()
	st := &core.Stats

	// Every cycle observed exactly once per queue.
	for name, h := range map[string]*obs.Hist{"BQ": o.BQ, "VQ": o.VQ, "TQ": o.TQ} {
		if h.Total() != st.Cycles {
			t.Errorf("%s histogram saw %d cycles, run took %d", name, h.Total(), st.Cycles)
		}
	}
	// cfdLoop pushes predicates well ahead of the consumer loop: the BQ
	// must have been observed non-empty.
	if o.BQ.Max() == 0 {
		t.Error("BQ never observed non-empty in a CFD workload")
	}
	occ := o.Occupancy()
	if occ == nil {
		t.Fatal("no occupancy section")
	}
	if occ.BQ.Size != testConfig().BQSize || occ.BQ.Max == 0 {
		t.Errorf("BQ occupancy export wrong: %+v", occ.BQ)
	}
	var sum uint64
	for _, c := range occ.BQ.Counts {
		sum += c
	}
	if sum != st.Cycles {
		t.Errorf("exported BQ counts sum to %d, want %d", sum, st.Cycles)
	}
}

// TestObserverDeterministic: the same run observed twice yields identical
// series and histograms (the export-determinism building block).
func TestObserverDeterministic(t *testing.T) {
	a := obsRun(t, 32, 100).Observer()
	b := obsRun(t, 32, 100).Observer()
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Error("samples differ between identical runs")
	}
	if !reflect.DeepEqual(a.Occupancy(), b.Occupancy()) {
		t.Error("occupancy differs between identical runs")
	}
}

func TestPerfettoTraceFromPipeline(t *testing.T) {
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(100, 100, 17))
	cfg := testConfig()
	o := obs.NewObserver(64, cfg.BQSize, cfg.VQSize, cfg.TQSize)
	// Start the window deep inside the consumer loop (the generator loop
	// retires ~600 instructions first), so the trace must contain the
	// steady-state branch_bq pops.
	core, err := New(cfg, cfdLoop(0x10000, 0x80000, 100, 50), m,
		WithObserver(o), WithTraceWindow(800, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	core.FinishObservation()

	tr := core.PerfettoTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("pipeline trace does not validate: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"cfd pipeline core"`, `"fetch"`, `"issue/execute"`, // rows
		`"ipc"`, `"queue occupancy"`, // counter tracks from the observer
		"branch_bq", // the CFD pop must appear in a traced window
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// Determinism: rebuilding and re-encoding is byte-identical.
	var again bytes.Buffer
	if err := core.PerfettoTrace().Encode(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-encoded trace differs")
	}
}

func TestRegisterProbes(t *testing.T) {
	reg := obs.NewRegistry()
	core := obsRun(t, 0, 100)
	core.RegisterProbes(reg)
	snap := reg.Snapshot()
	if snap["pipeline.cycles"] != float64(core.Stats.Cycles) {
		t.Errorf("cycles probe = %v, want %d", snap["pipeline.cycles"], core.Stats.Cycles)
	}
	if snap["pipeline.retired"] != float64(core.Stats.Retired) {
		t.Errorf("retired probe = %v, want %d", snap["pipeline.retired"], core.Stats.Retired)
	}
	// Registering into a nil registry is a no-op, not a panic.
	core.RegisterProbes(nil)
}

// BenchmarkPipelineObserved measures the enabled-observability path;
// compare against BenchmarkPipelineDisabledObs (the instrumented-but-
// disabled path, equivalent to the pre-observability simulator) to bound
// the sampling overhead.
func benchPipeline(b *testing.B, every uint64) {
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(120, 100, 17))
	cfg := testConfig()
	p := cfdLoop(0x10000, 0x80000, 120, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var opts []Option
		if every > 0 {
			opts = append(opts, WithObserver(obs.NewObserver(every, cfg.BQSize, cfg.VQSize, cfg.TQSize)))
		}
		core, err := New(cfg, p, m.Clone(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			b.Fatal(err)
		}
		core.FinishObservation()
	}
}

func BenchmarkPipelineDisabledObs(b *testing.B) { benchPipeline(b, 0) }
func BenchmarkPipelineObserved(b *testing.B)    { benchPipeline(b, 1024) }
