package pipeline

// Oracle holds recorded true outcomes for selected static branches, in
// dynamic execution order. It models perfect branch prediction: the harness
// records outcomes from a functional pre-run of the same region, and the
// fetch unit consults them in fetch order. Wrong-path fetches consume
// cursor positions that recovery hands back (undo), keeping the stream
// aligned with the correct path.
type Oracle struct {
	outcomes map[uint64][]bool
	cursor   map[uint64]int
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{
		outcomes: make(map[uint64][]bool),
		cursor:   make(map[uint64]int),
	}
}

// Record appends one dynamic outcome of the static branch at pc.
func (o *Oracle) Record(pc uint64, taken bool) {
	o.outcomes[pc] = append(o.outcomes[pc], taken)
}

// Covers reports whether pc has recorded outcomes.
func (o *Oracle) Covers(pc uint64) bool {
	_, ok := o.outcomes[pc]
	return ok
}

// Next consumes and returns the next outcome for pc. ok is false when the
// trace is exhausted (deep wrong path past the recorded region); callers
// fall back to the predictor.
func (o *Oracle) Next(pc uint64) (taken, ok bool) {
	tr := o.outcomes[pc]
	cur := o.cursor[pc]
	if cur >= len(tr) {
		return false, false
	}
	o.cursor[pc] = cur + 1
	return tr[cur], true
}

// Undo hands back one consumed outcome for pc (squash recovery).
func (o *Oracle) Undo(pc uint64) {
	if cur := o.cursor[pc]; cur > 0 {
		o.cursor[pc] = cur - 1
	}
}

// Reset rewinds all cursors (for reusing one oracle across runs).
func (o *Oracle) Reset() {
	for pc := range o.cursor {
		o.cursor[pc] = 0
	}
}
