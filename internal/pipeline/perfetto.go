package pipeline

import (
	"cfd/internal/obs"
)

// Perfetto trace rows: one process for the core, one thread per pipeline
// stage. Each traced instruction contributes a span per stage it occupied,
// so the classic Pipeview diagram becomes a zoomable Gantt chart in
// ui.perfetto.dev / chrome://tracing.
const (
	tracePID   = 1
	tidFetch   = 1 // fetch → rename (front-end queue)
	tidRename  = 2 // rename/dispatch → issue (waiting in the IQ)
	tidExecute = 3 // issue → completion (execution lanes, memory)
	tidCommit  = 4 // completion → retirement (ROB wait)
)

// PerfettoTrace renders the collected pipeline trace (WithTrace /
// WithTraceWindow) as a Chrome/Perfetto trace: stage spans per traced
// instruction, plus counter tracks (IPC, queue occupancy, stall fractions)
// from the attached observer's time series when sampling was enabled.
// One trace timestamp unit corresponds to one simulated cycle.
func (c *Core) PerfettoTrace() *obs.Trace {
	tr := obs.NewTrace()
	tr.NameProcess(tracePID, "cfd pipeline core")
	tr.NameThread(tracePID, tidFetch, "fetch")
	tr.NameThread(tracePID, tidRename, "rename/dispatch")
	tr.NameThread(tracePID, tidExecute, "issue/execute")
	tr.NameThread(tracePID, tidCommit, "complete/retire")

	for _, e := range c.Trace() {
		cat := "inst"
		if e.Squashed {
			cat = "squashed"
		}
		args := map[string]interface{}{"seq": e.Seq, "pc": e.PC}
		if e.Mispredict {
			args["mispredict"] = true
		}
		span := func(tid int, from, to uint64) {
			if to < from {
				to = from
			}
			tr.Span(tracePID, tid, e.Inst, cat, from, to-from, args)
		}
		end := e.RetireAt
		switch {
		case e.RenameAt == 0: // squashed before rename: fetch only
			span(tidFetch, e.FetchAt, end)
		case e.IssueAt == 0: // never issued (squashed in the window)
			span(tidFetch, e.FetchAt, e.RenameAt)
			span(tidRename, e.RenameAt, end)
		default:
			span(tidFetch, e.FetchAt, e.RenameAt)
			span(tidRename, e.RenameAt, e.IssueAt)
			span(tidExecute, e.IssueAt, e.DoneAt)
			span(tidCommit, e.DoneAt, end)
		}
	}

	if o := c.obsv; o != nil {
		for _, s := range o.Samples {
			tr.Counter(tracePID, "ipc", s.Cycle, map[string]interface{}{"ipc": s.IPC})
			tr.Counter(tracePID, "queue occupancy", s.Cycle, map[string]interface{}{
				"bq": s.BQOcc, "vq": s.VQOcc, "tq": s.TQOcc,
			})
			tr.Counter(tracePID, "stall fraction", s.Cycle, map[string]interface{}{
				"fetch": s.FetchStall, "bq": s.BQStall, "tq": s.TQStall,
			})
		}
	}
	return tr
}

// RegisterProbes registers the core's live state as named probes: retired
// and cycle counts, misprediction totals, and the current architectural
// queue occupancies. The registry samples them on demand, so registration
// adds no per-cycle cost. No-op on a nil registry.
func (c *Core) RegisterProbes(reg *obs.Registry) {
	reg.RegisterProbe("pipeline.cycles", obs.ProbeFunc(func() float64 { return float64(c.Stats.Cycles) }))
	reg.RegisterProbe("pipeline.retired", obs.ProbeFunc(func() float64 { return float64(c.Stats.Retired) }))
	reg.RegisterProbe("pipeline.mispredicts", obs.ProbeFunc(func() float64 { return float64(c.Stats.Mispredicts) }))
	reg.RegisterProbe("pipeline.bq_occ", obs.ProbeFunc(func() float64 { return float64(c.bq.length()) }))
	reg.RegisterProbe("pipeline.vq_occ", obs.ProbeFunc(func() float64 { return float64(c.vq.length()) }))
	reg.RegisterProbe("pipeline.tq_occ", obs.ProbeFunc(func() float64 { return float64(c.tq.length()) }))
}
