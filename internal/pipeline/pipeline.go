// Package pipeline is the execute-at-execute, cycle-level model of the
// paper's out-of-order core (§III-C, §IV, §VI): a conventional superscalar
// pipeline — fetch (branch predictor, BTB, RAS), decode/rename (RMT, ring
// freelist), dispatch, issue queue, execution lanes, load/store queues,
// ROB, in-order retire — extended with the CFD hardware:
//
//   - the BQ and TQ live in the fetch unit and resolve BranchBQ /
//     BranchTCR / PopTQ at fetch, timely and non-speculatively;
//   - speculative pops on BQ misses take checkpoints and are confirmed or
//     disconfirmed by late pushes (§III-C2);
//   - the VQ renamer in the rename stage maps the architectural value
//     queue onto the physical register file (§IV-B2);
//   - misprediction recovery restores rename state, queue pointers, the
//     TCR, and predictor history, with checkpointed branches recovering at
//     resolve and uncheckpointed ones at retire.
//
// Wrong paths are genuinely fetched, renamed, executed, and squashed;
// values flow through a physical register file written at issue time.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"cfd/internal/cache"
	"cfd/internal/config"
	"cfd/internal/core"
	"cfd/internal/energy"
	"cfd/internal/fault"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/obs"
	"cfd/internal/predictor"
	"cfd/internal/prog"
	"cfd/internal/stats"
)

// ErrLimit is returned by Run when the retired-instruction budget is
// exhausted before HALT retires.
var ErrLimit = errors.New("pipeline: instruction limit reached")

// ErrDeadlock is returned when no instruction retires for a long time —
// always a model or program bug.
var ErrDeadlock = errors.New("pipeline: no retirement progress (deadlock)")

const noReg = int32(-1)

// uop is one in-flight instruction.
type uop struct {
	seq     uint64
	pc      uint64
	inst    isa.Inst
	readyAt uint64 // cycle at which it may rename (front-end depth)

	// Control state.
	isCond        bool
	isJR          bool
	predTaken     bool
	predTarget    uint64
	actTaken      bool
	actTarget     uint64
	resolvedFetch bool // direction known non-speculatively at fetch
	usedPredictor bool
	usedOracle    bool
	specPop       bool // BranchBQ that missed and speculated
	lookup        predictor.Lookup
	hist          predictor.HistSnap
	hasCkpt       bool
	mispredict    bool
	retireRecover bool // recover at retire (no checkpoint)
	recovered     bool

	// Rename state (physical registers; -1 = none).
	pdst, psrc1, psrc2, psrc3 int32
	pold                      int32
	vqSrcPreg                 int32

	// Undo records for walk-based recovery.
	rasOldTop int
	oldTCR    uint64
	oldMark   uint64
	oldMarkOK bool
	bqIdx      int64 // PushBQ: allocated tail; BranchBQ: popped head
	tqIdx      int64
	vqIdx      int64
	fwdFrom    uint64
	fwdTo      uint64
	fwdHadMark bool // ForwardBQ: a MarkBQ preceded it (checked at retire)

	// Memory state.
	isLoad, isStore bool
	addr            uint64
	storeData       uint64
	storeSize       int
	memLevel        cache.ServiceLevel
	srcLevel        cache.ServiceLevel
	sqPos           uint64
	lqPos           uint64

	inIQ     bool
	executed bool
	issued   bool
	squashed bool
	isHalt   bool

	// Issue-port routing, decided once at fetch so the per-cycle IQ scan
	// does not re-derive it from the opcode.
	port   port
	mulDiv bool

	// Stage timestamps (pipeline tracing).
	fetchAt  uint64
	renameAt uint64
	issueAt  uint64
	doneAt   uint64
}

// bqEntryHW is a physical BQ entry (paper Fig 9): the software-visible
// predicate plus the pushed bit, popped bit, and the speculating pop's
// identity (its checkpoint handle).
type bqEntryHW struct {
	pred     bool
	pushed   bool
	popped   bool
	predPred bool
	popSeq   uint64 // seq of the speculating pop (for late-push recovery)
	popRob   uint64
	srcLevel cache.ServiceLevel // taint of the push's sources (attribution)
}

// bqHW is the fetch unit's branch queue. Pointers are monotonic; the entry
// index is ptr % size. The architectural length used for the fetch stall
// rule (§III-C3) is specTail - commHead: fetched-but-unretired pushes
// (pending_push_ctr) plus retired-but-unpopped entries (net_push_ctr).
type bqHW struct {
	size     int // architectural capacity (the fetch stall rule)
	mask     uint64
	entries  []bqEntryHW // len is size rounded up to a power of two
	specHead uint64
	specTail uint64
	specMark uint64
	markOK   bool
	commHead uint64
}

func (q *bqHW) length() int { return int(q.specTail - q.commHead) }

func (q *bqHW) at(pos uint64) *bqEntryHW { return &q.entries[pos&q.mask] }

// tqEntryHW is a physical TQ entry: trip count, overflow, pushed bit.
type tqEntryHW struct {
	count    uint32
	overflow bool
	pushed   bool
}

type tqHW struct {
	size     int
	mask     uint64
	entries  []tqEntryHW
	specHead uint64
	specTail uint64
	commHead uint64
}

func (q *tqHW) length() int { return int(q.specTail - q.commHead) }

func (q *tqHW) at(pos uint64) *tqEntryHW { return &q.entries[pos&q.mask] }

// vqRen is the VQ renamer (paper Fig 12): a circular buffer of physical
// register mappings in the rename stage.
type vqRen struct {
	size     int
	mask     uint64
	mapping  []int32
	specHead uint64
	specTail uint64
	commHead uint64
}

func (q *vqRen) length() int { return int(q.specTail - q.commHead) }

func (q *vqRen) at(pos uint64) *int32 { return &q.mapping[pos&q.mask] }

// sqEntry is a store queue entry. Address generation is decoupled from
// data: the address resolves as soon as the base register is ready, letting
// younger non-conflicting loads issue around the store.
type sqEntry struct {
	seq    uint64
	robPos uint64
	addr   uint64
	size   int
	data   uint64
	addrOK bool
	dataOK bool
}

// Stats accumulates the simulation counters the experiments consume.
type Stats struct {
	Cycles  uint64
	Retired uint64
	Fetched uint64

	// Conditional branch accounting (retired only).
	CondBranches   uint64
	Mispredicts    uint64
	MispredByLevel [5]uint64 // indexed by cache.ServiceLevel
	BTBMisfetches  uint64

	// CFD accounting.
	BQPops            uint64 // retired BranchBQ
	BQResolvedAtFetch uint64
	BQMisses          uint64 // speculative pops (retired)
	BQLateMispredict  uint64
	BQFullStalls      uint64 // cycles fetch stalled on a full BQ
	BQMissStalls      uint64 // cycles fetch stalled on a BQ miss (stall policy)
	TQPops            uint64
	TQMissStalls      uint64
	TCRBranches       uint64

	// Squash accounting.
	SquashedUops     uint64
	Recoveries       uint64
	RetireRecoveries uint64

	// Per-static-branch stats (retired conditional branches).
	PerBranch map[uint64]*BranchStat

	// CPI is the cycle-attribution stack: every cycle is charged to
	// exactly one bucket, so CPI.Total() == Cycles (see cpi.go).
	CPI stats.CPIStack
}

// BranchStat is per-static-branch retirement statistics.
type BranchStat struct {
	Execs       uint64
	Mispredicts uint64
	Taken       uint64
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MPKI returns mispredictions per 1000 retired instructions.
func (s *Stats) MPKI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Retired)
}

// Core is one simulated processor core bound to a program and memory.
type Core struct {
	cfg  config.Core
	prog *prog.Program
	mem  *mem.Memory
	hier *cache.Hierarchy

	// Front end.
	fetchPC        uint64
	fetchStallTill uint64
	haltFetched    bool
	seq            uint64
	pred           predictor.DirPredictor
	btb            *predictor.BTB
	ras            *predictor.RAS
	conf           *predictor.Confidence
	oracle         *Oracle
	perfectBP      bool
	feDelay        uint64

	bq      bqHW
	tq      tqHW
	vq      vqRen
	specTCR uint64

	// Rename state.
	rmt      [isa.NumRegs]int32
	amt      [isa.NumRegs]int32
	freeRing []int32
	flHead   uint64 // alloc position (monotonic)
	flTail   uint64 // free position (monotonic)

	// Physical register file.
	prf      []uint64
	prfReady []bool
	prfLevel []cache.ServiceLevel

	// Window. The rob, sq, and freeRing backings are rounded up to powers
	// of two so monotonic positions index with a mask instead of a modulo;
	// architectural capacities come from the config, not the backing
	// length.
	//
	// The front-end queue shares the rob ring: fetch constructs each uop
	// directly in the slot it will occupy, positions [robTail, fqTail);
	// rename merely advances robTail, so a uop never moves once written
	// (copying a several-hundred-byte uop per stage dominated the hot
	// loop). The ring is sized for ROBSize plus the front-end capacity.
	rob     []uop
	robMask uint64
	robHead uint64
	robTail uint64
	fqTail  uint64
	iq      []iqEnt // age order
	sq      []sqEntry
	sqMask  uint64
	sqHead  uint64
	sqTail  uint64
	lqCount int
	flMask  uint64

	// sqResolvedTo is the seq of the oldest store-queue entry whose
	// address is still unresolved (^0 when all are resolved): a load is
	// disambiguation-ready iff its seq does not exceed it. agenStores
	// refreshes it each cycle; a store resolving at execute advances it so
	// same-cycle younger loads see the address, as a live SQ walk would.
	sqResolvedTo uint64

	usedCkpts int

	// Completion events: a bucket ring indexed by cycle. Events farther
	// out than the ring (rare: deeply queued misses) park in the last
	// slot and reschedule.
	events [][]completion

	now             uint64
	done            bool
	lastRetireCycle uint64
	trace           *tracer
	obsv            *obs.Observer

	// Hardened-runtime state: the watchdog bounding Run, the
	// no-retirement-progress limit, and the last-retired diagnostic ring
	// captured into fault snapshots.
	wd         *fault.Watchdog
	stallLimit uint64
	diag       retRing

	// Cycle-attribution state (see cpi.go).
	cycRetired  int        // instructions retired this cycle
	cycOverhead int        // CFD bookkeeping instructions retired this cycle
	ohDebt      int        // accumulated bookkeeping retire slots
	cycStall    stallCause // why fetch stalled this cycle
	shadow      recoverShadow

	// Idle-cycle skip state (see idleSkip): whether the last cycle made
	// any progress, the CPI bucket it was charged to, and the stall
	// counter (if any) the stalled fetch path bumped — both replicated
	// exactly for each fast-forwarded cycle.
	cycIssued    int
	cycCompleted int
	idle         bool // the last cycle made no progress
	lastBucket   stats.CPIBucket
	cycStallCtr  *uint64
	idleSkipOff  bool

	// Context-switch scratch (lazily created on the first save/restore,
	// then reused) so queue save/restore allocates nothing in steady
	// state; see ctxswitch.go.
	ctxBQ  *core.BQ
	ctxTQ  *core.TQ
	ctxVQ  *core.VQ
	ctxImg []byte

	Stats Stats
	Meter *energy.Meter
}

type completion struct {
	robPos uint64
	seq    uint64
	at     uint64
}

// eventRing is the completion ring size; it must exceed the longest normal
// operation latency including MSHR queueing.
const eventRing = 1 << 14

func (c *Core) schedule(at, robPos, seq uint64) {
	slot := at
	if at-c.now >= eventRing {
		slot = c.now + eventRing - 1
	}
	c.events[slot%eventRing] = append(c.events[slot%eventRing], completion{robPos: robPos, seq: seq, at: at})
}

// fqLen returns the front-end queue occupancy.
func (c *Core) fqLen() int { return int(c.fqTail - c.robTail) }

func (c *Core) fqFront() *uop { return c.robAt(c.robTail) }

// Option configures a Core.
type Option func(*Core)

// WithOracle supplies recorded true branch outcomes. Branch PCs covered by
// the oracle resolve at fetch with the true outcome ("perfect prediction"
// for those branches, e.g. Base+PerfectCFD in Fig 19).
func WithOracle(o *Oracle) Option { return func(c *Core) { c.oracle = o } }

// WithPerfectBP makes every conditional branch consult the oracle
// (full perfect prediction); requires WithOracle.
func WithPerfectBP() Option { return func(c *Core) { c.perfectBP = true } }

// WithObserver attaches an interval sampler and queue-occupancy profiler to
// the core: every cycle it observes BQ/VQ/TQ occupancy, and at each
// sampling boundary it snapshots interval IPC, mispredicts/KI, fetch/BQ/TQ
// stall fractions, and cache MPKI into the observer's time series. A nil
// observer is valid and free: the per-cycle hook is skipped entirely (the
// zero-overhead-when-disabled contract, pinned by the obs benchmarks).
func WithObserver(o *obs.Observer) Option { return func(c *Core) { c.obsv = o } }

// WithWatchdog bounds Run with a cycle budget and/or wall-clock deadline.
// Expiry surfaces as a fault.WatchdogExpiry fault carrying a machine-state
// snapshot, never a hang.
func WithWatchdog(w *fault.Watchdog) Option { return func(c *Core) { c.wd = w } }

// WithDeadlockLimit overrides how many cycles may pass without a retirement
// before Run reports a deadlock fault (default defaultStallLimit; tests use
// small values to keep hang scenarios fast).
func WithDeadlockLimit(cycles uint64) Option {
	return func(c *Core) { c.stallLimit = cycles }
}

// WithoutIdleSkip disables idle-cycle fast-forwarding, simulating every
// cycle individually. Results are identical either way (pinned by the
// idle-skip equivalence test); this exists for that test and for debugging.
func WithoutIdleSkip() Option { return func(c *Core) { c.idleSkipOff = true } }

// defaultStallLimit is the no-retirement-progress bound: generously above
// any legitimate stall (a full-window chain of memory misses resolves in
// thousands of cycles, not hundreds of thousands).
const defaultStallLimit = 200000

// New builds a core. The memory m holds the workload's initial data; the
// core commits stores back to it, so pass a clone if the caller needs the
// original. m may be nil.
func New(cfg config.Core, p *prog.Program, m *mem.Memory, opts ...Option) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		m = mem.New()
	}
	bqCap := nextPow2(cfg.BQSize)
	tqCap := nextPow2(cfg.TQSize)
	vqCap := nextPow2(cfg.VQSize)
	// The rob ring also hosts the front-end queue (see the Core field
	// comment), so size it for both occupancies.
	capFQ := cfg.FetchWidth * (cfg.FrontEndDepth + 1)
	robCap := nextPow2(cfg.ROBSize + capFQ)
	sqCap := nextPow2(cfg.SQSize)
	c := &Core{
		cfg:     cfg,
		prog:    p,
		mem:     m,
		hier:    cache.New(cfg.Cache),
		btb:     predictor.NewBTB(cfg.BTBLogSets, cfg.BTBWays),
		ras:     predictor.NewRAS(cfg.RASDepth),
		conf:    predictor.NewConfidence(12, cfg.ConfidenceThresh),
		feDelay: uint64(cfg.FrontEndDepth - 1),
		bq:      bqHW{size: cfg.BQSize, mask: bqCap - 1, entries: make([]bqEntryHW, bqCap)},
		tq:      tqHW{size: cfg.TQSize, mask: tqCap - 1, entries: make([]tqEntryHW, tqCap)},
		vq:      vqRen{size: cfg.VQSize, mask: vqCap - 1, mapping: make([]int32, vqCap)},
		rob:     make([]uop, robCap),
		robMask: robCap - 1,
		sq:      make([]sqEntry, sqCap),
		sqMask:  sqCap - 1,
		events:  make([][]completion, eventRing),
		Meter:   energy.NewMeter(energy.DefaultModel(cfg.ROBSize)),
	}
	// Seed each completion bucket with a little capacity carved from one
	// backing array: steady state then appends without allocating (the
	// drain in complete() resets buckets to length zero, keeping whatever
	// capacity they have grown to).
	evBack := make([]completion, eventRing*4)
	for i := range c.events {
		c.events[i] = evBack[i*4 : i*4 : i*4+4]
	}
	switch cfg.Predictor {
	case config.PredGshare:
		c.pred = predictor.NewGshare(14, 16)
	case config.PredBimodal:
		c.pred = predictor.NewBimodal(14)
	default:
		c.pred = predictor.NewISLTAGE()
	}
	// Physical register file: logical registers map to pregs 0..31, the
	// rest are free. preg 0 backs r0 and stays 0.
	n := cfg.NumPhysRegs
	c.prf = make([]uint64, n)
	c.prfReady = make([]bool, n)
	c.prfLevel = make([]cache.ServiceLevel, n)
	flCap := nextPow2(n)
	c.freeRing = make([]int32, flCap)
	c.flMask = flCap - 1
	for i := 0; i < isa.NumRegs; i++ {
		c.rmt[i] = int32(i)
		c.amt[i] = int32(i)
		c.prfReady[i] = true
	}
	free := 0
	for pr := isa.NumRegs; pr < n; pr++ {
		c.freeRing[free] = int32(pr)
		free++
	}
	c.flTail = uint64(free)
	c.Stats.PerBranch = make(map[uint64]*BranchStat)
	for _, o := range opts {
		o(c)
	}
	if c.perfectBP && c.oracle == nil {
		return nil, errors.New("pipeline: WithPerfectBP requires WithOracle")
	}
	return c, nil
}

// Cycle runs one clock cycle.
func (c *Core) Cycle() error {
	c.hier.Tick(c.now)
	c.cycRetired = 0
	c.cycOverhead = 0
	c.cycStall = stallNone
	c.cycStallCtr = nil
	c.cycIssued = 0
	c.cycCompleted = 0
	robTail0, fqTail0 := c.robTail, c.fqTail
	if err := c.retire(); err != nil {
		return err
	}
	c.complete()
	c.issue()
	if err := c.rename(); err != nil {
		return err
	}
	if err := c.fetch(); err != nil {
		return err
	}
	c.idle = c.cycRetired == 0 && c.cycCompleted == 0 && c.cycIssued == 0 &&
		c.robTail == robTail0 && c.fqTail == fqTail0
	c.attributeCycle()
	if c.obsv != nil {
		c.obsTick()
	}
	c.now++
	c.Stats.Cycles++
	c.Meter.AddCycles(1)
	return nil
}

// idleSkip fast-forwards over cycles in which no stage can make progress.
//
// A cycle with no retirement, no completion event, no issue, no rename, and
// no fetch leaves every piece of machine state except the clock untouched,
// so the next cycle repeats it exactly — until one of the things the frozen
// state is waiting on arrives. Those wake sources are exhaustively:
//
//   - a scheduled completion event (loads, long-latency ops),
//   - fetchStallTill expiring (BTB misfetch, ctx-switch serialization),
//   - the front-of-queue uop's readyAt (front-end pipeline depth).
//
// The skip jumps the clock to the earliest of those, capped so the deadlock
// detector and the watchdog's cycle budget still observe the exact cycle
// numbers they would have seen cycling one by one. Each skipped cycle is
// charged to the same CPI bucket and the same fetch-stall counter as the
// frozen cycle just simulated, so the CPI-stack exact-sum invariant and all
// stall statistics are bit-identical with and without skipping.
//
// The caller (RunCtx) disables skipping when an observer, tracer, or MSHR
// sampler is attached: those hooks observe every cycle individually.
func (c *Core) idleSkip(wd *fault.Watchdog, stallLimit uint64) {
	// Never skip past the cycle where the deadlock detector must fire.
	target := c.lastRetireCycle + stallLimit + 1
	if wd != nil && wd.MaxCycles != 0 && wd.MaxCycles < target {
		// ... nor past the watchdog's cycle budget.
		target = wd.MaxCycles
	}
	// c.now is the next cycle to simulate (Cycle() already advanced it), so
	// a wake source equal to c.now means that next cycle makes progress and
	// the skip must collapse to nothing.
	if !c.haltFetched && c.fetchStallTill >= c.now && c.fetchStallTill < target {
		target = c.fetchStallTill
	}
	if c.fqLen() > 0 {
		if ra := c.fqFront().readyAt; ra >= c.now && ra < target {
			target = ra
		}
	}
	// Every outstanding completion event occupies a ring bucket within
	// eventRing cycles of now (far events park at the ring horizon), so a
	// forward scan finds the earliest one.
	scanTo := target
	if horizon := c.now + eventRing; scanTo > horizon {
		scanTo = horizon
	}
	for t := c.now; t < scanTo; t++ {
		if len(c.events[t%eventRing]) > 0 {
			target = t
			break
		}
	}
	if target <= c.now {
		return
	}
	n := target - c.now
	c.Stats.CPI.AddN(c.lastBucket, n)
	if c.cycStallCtr != nil {
		*c.cycStallCtr += n
	}
	c.now = target
	c.Stats.Cycles += n
	c.Meter.AddCycles(n)
}

// obsTick feeds the attached observer after a cycle's stages have acted:
// per-cycle queue occupancies, and a time-series sample at each boundary.
func (c *Core) obsTick() {
	o := c.obsv
	o.TickQueues(c.bq.length(), c.vq.length(), c.tq.length())
	if cyc := c.now + 1; o.Due(cyc) {
		o.Record(c.intervalCounters(cyc))
	}
}

// intervalCounters snapshots the cumulative counters the observer turns
// into interval rates. Stall cycles come from the CPI stack, so the series'
// stall fractions agree with the end-of-run attribution by construction.
func (c *Core) intervalCounters(cycle uint64) obs.IntervalCounters {
	_, l1Misses := c.hier.LevelStats(cache.L1)
	return obs.IntervalCounters{
		Cycle:            cycle,
		Retired:          c.Stats.Retired,
		Mispredicts:      c.Stats.Mispredicts,
		FetchStallCycles: c.Stats.CPI.Buckets[stats.CPIFetchStall],
		BQStallCycles:    c.Stats.CPI.Buckets[stats.CPIBQStall],
		TQStallCycles:    c.Stats.CPI.Buckets[stats.CPITQStall],
		CacheMisses:      l1Misses,
	}
}

// FinishObservation flushes the observer's partial final interval. Callers
// that attach an observer should call it once after Run returns.
func (c *Core) FinishObservation() {
	if c.obsv != nil {
		c.obsv.Finish(c.intervalCounters(c.now))
	}
}

// Observer returns the attached observer (nil when observability is off).
func (c *Core) Observer() *obs.Observer { return c.obsv }

// Run executes until HALT retires or maxRetired instructions have retired
// (0 = no limit). It returns ErrLimit if the budget ran out first.
func (c *Core) Run(maxRetired uint64) error {
	return c.RunCtx(context.Background(), maxRetired)
}

// RunCtx is Run with cancellation and watchdog supervision. Abnormal
// conditions — queue ordering violations, watchdog expiry (cycle budget,
// wall-clock deadline, ctx cancellation), retirement deadlock, internal
// invariant breaches — return a *fault.Fault carrying a machine-state
// snapshot; RunCtx never panics on malformed programs.
//
// A faulting run flushes the observer's partial tail interval before
// returning, so a faulted time series is exactly the clean series
// truncated at the fault cycle — the final sample is not lost with the
// run. (FinishObservation stays idempotent: no clock advances after the
// fault, so a later caller-side flush records nothing.)
func (c *Core) RunCtx(ctx context.Context, maxRetired uint64) error {
	err := c.runCtx(ctx, maxRetired)
	if err != nil && !errors.Is(err, ErrLimit) {
		c.FinishObservation()
	}
	return err
}

func (c *Core) runCtx(ctx context.Context, maxRetired uint64) error {
	wd := c.wd
	if ctx != nil && ctx.Done() != nil {
		// Fold the caller's context into a run-local watchdog copy.
		w := fault.Watchdog{}
		if wd != nil {
			w = *wd
		}
		w.Ctx = ctx
		wd = &w
	}
	limit := c.stallLimit
	if limit == 0 {
		limit = defaultStallLimit
	}
	// Idle-cycle skipping is off when any per-cycle hook observes the
	// machine: the interval sampler, the pipeline tracer, and the MSHR
	// occupancy sampler all need to see every cycle individually.
	skip := !c.idleSkipOff && c.obsv == nil && c.trace == nil && !c.cfg.Cache.SampleMSHRs
	c.lastRetireCycle = c.now
	for !c.done {
		if maxRetired != 0 && c.Stats.Retired >= maxRetired {
			return ErrLimit
		}
		if reason, expired := wd.Check(c.now); expired {
			return fault.Wrap(fault.WatchdogExpiry,
				fmt.Errorf("pipeline: watchdog: %s at cycle %d (pc %d)", reason, c.now, c.fetchPC),
				c.snapshot())
		}
		if err := c.Cycle(); err != nil {
			return err
		}
		if skip && c.idle {
			c.idleSkip(wd, limit)
		}
		if c.now-c.lastRetireCycle > limit {
			return fault.Wrap(fault.WatchdogExpiry,
				fmt.Errorf("%w at cycle %d (pc %d)", ErrDeadlock, c.now, c.fetchPC),
				c.snapshot())
		}
		if c.now&1023 == 0 {
			if err := c.checkInvariants(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Mem returns the committed memory.
func (c *Core) Mem() *mem.Memory { return c.mem }

// Hierarchy exposes the cache hierarchy for stats.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// Done reports whether HALT has retired.
func (c *Core) Done() bool { return c.done }

// freelist helpers.
func (c *Core) freeCount() int { return int(c.flTail - c.flHead) }

func (c *Core) allocPreg() int32 {
	pr := c.freeRing[c.flHead&c.flMask]
	c.flHead++
	c.prfReady[pr] = false
	c.prfLevel[pr] = cache.NoData
	return pr
}

func (c *Core) freePreg(pr int32) {
	if pr < isa.NumRegs {
		// Initial logical mappings are freed once renamed over; they
		// re-enter the pool like any other register.
	}
	c.freeRing[c.flTail&c.flMask] = pr
	c.flTail++
}

// robAt returns the uop at a monotonic rob position.
func (c *Core) robAt(pos uint64) *uop { return &c.rob[pos&c.robMask] }

// sqAt returns the store-queue entry at a monotonic sq position.
func (c *Core) sqAt(pos uint64) *sqEntry { return &c.sq[pos&c.sqMask] }

// nextPow2 rounds n up to the next power of two (minimum 1).
func nextPow2(n int) uint64 {
	p := uint64(1)
	for p < uint64(n) {
		p <<= 1
	}
	return p
}

func (c *Core) robCount() int { return int(c.robTail - c.robHead) }
