package pipeline

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// tqOverflowProg pushes trip counts around the 16-bit limit; overflowed
// entries divert to an unmodified fallback loop via PopTQOV (§IV-C4).
func tqOverflowProg(counts []uint64) (*prog.Program, *mem.Memory) {
	m := mem.New()
	m.WriteUint64s(0x10000, counts)
	b := prog.NewBuilder()
	b.Li(1, 0x10000)
	b.Li(2, int64(len(counts)))
	b.Label("gen")
	b.Load(isa.LD, 3, 1, 0)
	b.PushTQ(3)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "gen")
	b.Li(1, 0x10000)
	b.Li(2, int64(len(counts)))
	b.Li(4, 0) // sum of iterations
	b.Label("outer")
	b.PopTQOV("fallback")
	b.Jump("test")
	b.Label("body")
	b.I(isa.ADDI, 4, 4, 1)
	b.Label("test")
	b.BranchTCR("body")
	b.Jump("next")
	// Fallback: the unmodified counted loop for overflowed trip counts.
	b.Label("fallback")
	b.Load(isa.LD, 5, 1, 0)
	b.Label("fb")
	b.I(isa.ADDI, 4, 4, 1)
	b.I(isa.ADDI, 5, 5, -1)
	b.Branch(isa.BNE, 5, 0, "fb")
	b.Label("next")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "outer")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 4, 30, 0)
	b.Halt()
	return b.MustBuild(), m
}

func TestTQOverflowFallback(t *testing.T) {
	counts := []uint64{3, 70000, 5, 1 << 17, 2}
	p, m := tqOverflowProg(counts)
	core := runBoth(t, testConfig(), p, m)
	var want uint64
	for _, c := range counts {
		want += c
	}
	if got := core.Mem().Read(0x9000, 8); got != want {
		t.Errorf("iteration sum = %d, want %d", got, want)
	}
	if core.Stats.TQPops != uint64(len(counts)) {
		t.Errorf("TQPops = %d, want %d", core.Stats.TQPops, len(counts))
	}
}

func TestAlternatePredictorsRunCorrectly(t *testing.T) {
	const n = 600
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 17))
	p := condLoop(0x10000, 0x80000, n, 50)
	for _, kind := range []config.PredictorKind{config.PredBimodal, config.PredGshare} {
		cfg := testConfig()
		cfg.Predictor = kind
		core := runBoth(t, cfg, p, m)
		if core.Stats.Mispredicts == 0 {
			t.Errorf("%v: no mispredictions on random data", kind)
		}
	}
}

func TestWindowSweepConfigsRun(t *testing.T) {
	const n = 400
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 19))
	p := condLoop(0x10000, 0x80000, n, 50)
	var prev uint64
	for _, cfg := range config.WindowSweep() {
		cfg.Cache = testConfig().Cache
		core := runBoth(t, cfg, p, m)
		if prev != 0 && core.Stats.Cycles > prev*2 {
			t.Errorf("%s: cycles %d regressed badly vs %d", cfg.Name, core.Stats.Cycles, prev)
		}
		prev = core.Stats.Cycles
	}
}

func TestEnergyMeterAccumulates(t *testing.T) {
	const n = 100 // within the BQ size: cfdLoop is not strip-mined
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 23))
	core := runBoth(t, testConfig(), cfdLoop(0x10000, 0x80000, n, 50), m)
	if core.Meter.Total() <= 0 || core.Meter.Dynamic() <= 0 {
		t.Error("energy not accounted")
	}
	if core.Meter.QueueEnergy() <= 0 {
		t.Error("BQ energy not accounted on a CFD program")
	}
	if core.Meter.QueueEnergy() > core.Meter.Dynamic()/100 {
		t.Error("queue energy implausibly large relative to core energy")
	}
}

func TestOracleUndoAndReset(t *testing.T) {
	o := NewOracle()
	o.Record(4, true)
	o.Record(4, false)
	if v, ok := o.Next(4); !ok || !v {
		t.Fatal("first outcome")
	}
	o.Undo(4)
	if v, ok := o.Next(4); !ok || !v {
		t.Fatal("undo did not rewind")
	}
	if v, ok := o.Next(4); !ok || v {
		t.Fatal("second outcome")
	}
	if _, ok := o.Next(4); ok {
		t.Fatal("exhausted trace must report !ok")
	}
	o.Reset()
	if v, ok := o.Next(4); !ok || !v {
		t.Fatal("reset did not rewind")
	}
	if !o.Covers(4) || o.Covers(8) {
		t.Error("Covers wrong")
	}
	o.Undo(99) // undo on unknown pc must be harmless
}

func TestDumpRenders(t *testing.T) {
	core, err := New(testConfig(), condLoop(0x10000, 0x80000, 10, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := core.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	out := core.Dump()
	for _, want := range []string{"cycle", "rob", "BQ head", "VQ head"} {
		if !contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHaltMidSpeculation: a HALT fetched down a wrong path must not end the
// simulation; recovery clears it.
func TestHaltMidSpeculation(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 0x10000)
	b.Li(2, 200)
	b.Li(9, 0)
	b.Label("loop")
	b.Load(isa.LD, 3, 1, 0)
	b.I(isa.ANDI, 4, 3, 1)
	// When mispredicted taken, the wrong path falls into HALT quickly.
	b.Branch(isa.BNE, 4, 0, "over")
	b.Halt() // only reached architecturally when r4 == 0... never: r4==0 falls through!
	b.Label("over")
	b.I(isa.ADDI, 9, 9, 1)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "loop")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 9, 30, 0)
	b.Halt()
	m := mem.New()
	// All odd values: the branch is always taken; a predictor warming up
	// will mispredict some and speculatively fetch the HALT.
	vals := make([]uint64, 200)
	for i := range vals {
		vals[i] = uint64(2*i + 1)
	}
	m.WriteUint64s(0x10000, vals)
	core := runBoth(t, testConfig(), b.MustBuild(), m)
	if got := core.Mem().Read(0x9000, 8); got != 200 {
		t.Errorf("count = %d, want 200", got)
	}
}
