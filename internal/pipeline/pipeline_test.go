package pipeline

import (
	"errors"
	"math/rand"
	"testing"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// testConfig shrinks the caches so tests exercise misses quickly.
func testConfig() config.Core {
	c := config.SandyBridge()
	c.Cache.L1.SizeKB = 4
	c.Cache.L2.SizeKB = 16
	c.Cache.L3.SizeKB = 64
	return c
}

// runBoth executes p on the emulator and the pipeline from identical
// initial memory and requires identical final memory. It returns the
// pipeline core for stats inspection.
func runBoth(t *testing.T, cfg config.Core, p *prog.Program, init *mem.Memory, opts ...Option) *Core {
	t.Helper()
	if init == nil {
		init = mem.New()
	}
	em := emu.New(p, init.Clone())
	if err := em.Run(20_000_000); err != nil {
		t.Fatalf("emulator: %v", err)
	}
	core, err := New(cfg, p, init.Clone(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if !em.Mem.Equal(core.Mem()) {
		t.Fatal("pipeline final memory diverges from emulator")
	}
	if core.Stats.Retired != em.Retired {
		t.Errorf("retired %d instructions, emulator retired %d", core.Stats.Retired, em.Retired)
	}
	return core
}

// storeRegs appends code storing r1..r15 to out.
func storeRegs(b *prog.Builder, out uint64) {
	b.Li(30, int64(out))
	for r := isa.Reg(1); r <= 15; r++ {
		b.Store(isa.SD, r, 30, int64(8*(r-1)))
	}
}

func TestStraightLine(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 5)
	b.Li(2, 7)
	b.R(isa.ADD, 3, 1, 2)
	b.R(isa.MUL, 4, 3, 3)
	b.I(isa.SLTI, 5, 4, 200)
	b.R(isa.DIV, 6, 4, 2)
	b.R(isa.XOR, 7, 6, 1)
	storeRegs(b, 0x9000)
	b.Halt()
	runBoth(t, testConfig(), b.MustBuild(), nil)
}

func TestIndependentALUThroughput(t *testing.T) {
	b := prog.NewBuilder()
	for i := 0; i < 2000; i++ {
		b.I(isa.ADDI, isa.Reg(1+i%8), 0, int64(i))
	}
	b.Halt()
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if ipc := core.Stats.IPC(); ipc < 2.0 {
		t.Errorf("independent ALU IPC = %.2f, want > 2 on a 4-wide core", ipc)
	}
}

func TestDependentChainLatency(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 0)
	for i := 0; i < 2000; i++ {
		b.I(isa.ADDI, 1, 1, 1)
	}
	b.Halt()
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if ipc := core.Stats.IPC(); ipc > 1.2 {
		t.Errorf("dependent-chain IPC = %.2f, want <= ~1", ipc)
	}
}

// condLoop builds: for i in 0..n { if (a[i] > k) b[i] = a[i]+7 } with the
// branch data-dependent on a[].
func condLoop(aBase, bBase uint64, n, k int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(aBase))
	b.Li(2, int64(bBase))
	b.Li(3, n)
	b.Li(4, k)
	b.Label("loop")
	b.Load(isa.LD, 5, 1, 0)
	b.R(isa.SLT, 6, 4, 5)
	b.Branch(isa.BEQ, 6, 0, "skip")
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "loop")
	b.Halt()
	return b.MustBuild()
}

func randomArray(n int, mod int64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(rng.Int63n(mod))
	}
	return vals
}

func TestMispredictionRecovery(t *testing.T) {
	const n = 2000
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 42))
	core := runBoth(t, testConfig(), condLoop(0x10000, 0x80000, n, 50), m)
	if core.Stats.Mispredicts == 0 {
		t.Error("random data-dependent branch produced no mispredictions")
	}
	if core.Stats.Recoveries == 0 {
		t.Error("no checkpoint recoveries despite mispredictions")
	}
}

func TestRetireTimeRecoveryWithZeroCheckpoints(t *testing.T) {
	cfg := testConfig()
	cfg.NumCheckpoints = 0
	const n = 800
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 7))
	core := runBoth(t, cfg, condLoop(0x10000, 0x80000, n, 50), m)
	if core.Stats.RetireRecoveries == 0 {
		t.Error("zero-checkpoint core must recover at retire")
	}
	if core.Stats.Recoveries != 0 {
		t.Error("zero-checkpoint core cannot do resolve-time recovery of predicted branches")
	}
}

// cfdLoop is the canonical Fig 3b transformation of condLoop.
func cfdLoop(aBase, bBase uint64, n, k int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(aBase))
	b.Li(3, n)
	b.Li(4, k)
	b.Label("gen")
	b.Load(isa.LD, 5, 1, 0)
	b.R(isa.SLT, 6, 4, 5)
	b.PushBQ(6)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "gen")
	b.Li(1, int64(aBase))
	b.Li(2, int64(bBase))
	b.Li(3, n)
	b.Label("use")
	b.BranchBQ("work")
	b.Jump("skip")
	b.Label("work")
	b.Load(isa.LD, 5, 1, 0)
	b.I(isa.ADDI, 7, 5, 7)
	b.Store(isa.SD, 7, 2, 0)
	b.Label("skip")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "use")
	b.Halt()
	return b.MustBuild()
}

func TestCFDMatchesEmulatorAndEliminatesMispredicts(t *testing.T) {
	const n = 100 // within BQ size: no strip mining needed
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 11))

	base, err := New(testConfig(), condLoop(0x10000, 0x80000, n, 50), m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Run(0); err != nil {
		t.Fatal(err)
	}

	cfd := runBoth(t, testConfig(), cfdLoop(0x10000, 0x80000, n, 50), m)
	if !base.Mem().Equal(cfd.Mem()) {
		t.Fatal("CFD-transformed program computes different memory than baseline")
	}
	if cfd.Stats.BQPops == 0 {
		t.Fatal("no BQ pops retired")
	}
	if cfd.Stats.BQResolvedAtFetch == 0 {
		t.Error("no pops resolved non-speculatively at fetch")
	}
	// The hard branch is gone: CFD's mispredictions should be (near)
	// zero while the baseline suffers many.
	if base.Stats.Mispredicts < 10 {
		t.Errorf("baseline mispredicts = %d, expected many", base.Stats.Mispredicts)
	}
	if cfd.Stats.BQLateMispredict > cfd.Stats.BQPops/10 {
		t.Errorf("late-push mispredicts = %d of %d pops, want rare", cfd.Stats.BQLateMispredict, cfd.Stats.BQPops)
	}
}

// latePushProg interleaves a push immediately before its pop — deliberately
// insufficient fetch separation, forcing BQ misses.
func latePushProg(aBase uint64, n int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(aBase))
	b.Li(3, n)
	b.Li(9, 0) // accumulator
	b.Label("loop")
	b.Load(isa.LD, 5, 1, 0)
	b.I(isa.ANDI, 6, 5, 1)
	b.PushBQ(6)
	b.BranchBQ("odd")
	b.Jump("next")
	b.Label("odd")
	b.I(isa.ADDI, 9, 9, 1)
	b.Label("next")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 3, 3, -1)
	b.Branch(isa.BNE, 3, 0, "loop")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 9, 30, 0)
	b.Halt()
	return b.MustBuild()
}

func TestLatePushSpeculation(t *testing.T) {
	const n = 1500
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 1000, 13))
	core := runBoth(t, testConfig(), latePushProg(0x10000, n), m)
	if core.Stats.BQMisses == 0 {
		t.Error("adjacent push/pop must cause BQ misses")
	}
	if core.Stats.BQLateMispredict == 0 {
		t.Error("random predicates with speculative pops must cause late-push mispredictions")
	}
}

func TestLatePushStallPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.BQMissPolicy = config.StallFetch
	const n = 1000
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 1000, 13))
	core := runBoth(t, cfg, latePushProg(0x10000, n), m)
	if core.Stats.BQMissStalls == 0 {
		t.Error("stall policy must stall on BQ misses")
	}
	if core.Stats.BQMisses != 0 {
		t.Error("stall policy must never speculate a pop")
	}
	if core.Stats.BQLateMispredict != 0 {
		t.Error("stall policy cannot have late-push mispredictions")
	}
}

func tqProg(base uint64, n int64) *prog.Program {
	b := prog.NewBuilder()
	b.Li(1, int64(base))
	b.Li(2, n)
	b.Label("gen")
	b.Load(isa.LD, 3, 1, 0)
	b.PushTQ(3)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "gen")
	b.Li(2, n)
	b.Li(4, 0)
	b.Label("outer")
	b.PopTQ()
	b.Jump("test")
	b.Label("body")
	b.I(isa.ADDI, 4, 4, 1)
	b.Label("test")
	b.BranchTCR("body")
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "outer")
	b.Li(6, 0x9000)
	b.Store(isa.SD, 4, 6, 0)
	b.Halt()
	return b.MustBuild()
}

func TestTQLoop(t *testing.T) {
	const n = 200
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 10, 5))
	core := runBoth(t, testConfig(), tqProg(0x10000, n), m)
	if core.Stats.TQPops != n {
		t.Errorf("TQPops = %d, want %d", core.Stats.TQPops, n)
	}
	if core.Stats.TCRBranches == 0 {
		t.Error("no BranchTCR retirements")
	}
}

func TestMarkForward(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 10)
	b.Li(2, 1)
	b.Label("gen")
	b.PushBQ(2)
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "gen")
	b.MarkBQ()
	b.Li(1, 4) // consume only 4 of 10
	b.Label("use")
	b.BranchBQ("body")
	b.Label("body")
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "use")
	b.ForwardBQ()
	// A second decoupled region must find a clean BQ.
	b.Li(1, 3)
	b.Li(2, 0)
	b.Label("gen2")
	b.PushBQ(2)
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "gen2")
	b.Li(1, 3)
	b.Li(9, 0)
	b.Label("use2")
	b.BranchBQ("taken2")
	b.I(isa.ADDI, 9, 9, 1) // predicates are 0: executed each time
	b.Label("taken2")
	b.I(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, 0, "use2")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 9, 30, 0)
	b.Halt()
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if got := core.Mem().Read(0x9000, 8); got != 3 {
		t.Errorf("second region result = %d, want 3", got)
	}
}

func TestVQCommunicatesValues(t *testing.T) {
	// Loop 1 pushes a[i]*3 onto the VQ; loop 2 pops and stores. n stays
	// within the architectural VQ size (128): no strip mining.
	const n = 120
	b := prog.NewBuilder()
	b.Li(1, 0x10000)
	b.Li(2, n)
	b.Li(7, 3)
	b.Label("gen")
	b.Load(isa.LD, 3, 1, 0)
	b.R(isa.MUL, 4, 3, 7)
	b.PushVQ(4)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "gen")
	b.Li(1, 0x80000)
	b.Li(2, n)
	b.Label("use")
	b.PopVQ(5)
	b.Store(isa.SD, 5, 1, 0)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "use")
	b.Halt()
	m := mem.New()
	vals := randomArray(n, 1000, 3)
	m.WriteUint64s(0x10000, vals)
	core := runBoth(t, testConfig(), b.MustBuild(), m)
	for i, v := range vals[:5] {
		if got := core.Mem().Read(0x80000+uint64(8*i), 8); got != v*3 {
			t.Fatalf("vq value %d = %d, want %d", i, got, v*3)
		}
	}
}

func TestVQInterleavedWithBranchRecovery(t *testing.T) {
	// VQ traffic with hard-to-predict branches in between: recovery must
	// restore VQ renamer pointers exactly. n kept within VQ size.
	const n = 100
	b := prog.NewBuilder()
	b.Li(1, 0x10000)
	b.Li(2, n)
	b.Label("gen")
	b.Load(isa.LD, 3, 1, 0)
	b.PushVQ(3)
	b.I(isa.ANDI, 4, 3, 1)
	b.Branch(isa.BEQ, 4, 0, "even") // hard branch between pushes
	b.Nop()
	b.Label("even")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "gen")
	b.Li(1, 0x80000)
	b.Li(2, n)
	b.Label("use")
	b.PopVQ(5)
	b.Store(isa.SD, 5, 1, 0)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 2, 2, -1)
	b.Branch(isa.BNE, 2, 0, "use")
	b.Halt()
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 1000, 99))
	runBoth(t, testConfig(), b.MustBuild(), m)
}

func TestStoreLoadForwarding(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 0x5000)
	b.Li(2, 1234)
	b.Store(isa.SD, 2, 1, 0)
	b.Load(isa.LD, 3, 1, 0) // must forward from the store queue
	b.I(isa.ADDI, 3, 3, 1)
	b.Li(30, 0x9000)
	b.Store(isa.SD, 3, 30, 0)
	b.Halt()
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if got := core.Mem().Read(0x9000, 8); got != 1235 {
		t.Errorf("forwarded value+1 = %d, want 1235", got)
	}
}

func TestPartialOverlapStoreLoad(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(1, 0x5000)
	b.Li(2, 0x1122334455667788)
	b.Store(isa.SD, 2, 1, 0)
	b.Load(isa.LW, 3, 1, 4) // partial overlap: upper half
	b.Li(30, 0x9000)
	b.Store(isa.SD, 3, 30, 0)
	b.Halt()
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if got := core.Mem().Read(0x9000, 8); got != 0x11223344 {
		t.Errorf("partial-overlap load = %#x, want 0x11223344", got)
	}
}

func TestPerfectBPEliminatesMispredictions(t *testing.T) {
	const n = 1000
	init := mem.New()
	init.WriteUint64s(0x10000, randomArray(n, 100, 21))
	p := condLoop(0x10000, 0x80000, n, 50)

	// Record the oracle from a functional pre-run.
	oracle := NewOracle()
	em := emu.New(p, init.Clone(), emu.WithTracer(emu.TracerFunc(func(ev emu.Event) {
		if ev.Inst.Op.IsCondBranch() {
			oracle.Record(ev.PC, ev.Taken)
		}
	})))
	if err := em.Run(0); err != nil {
		t.Fatal(err)
	}

	core, err := New(testConfig(), p, init.Clone(), WithOracle(oracle), WithPerfectBP())
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	if !core.Mem().Equal(em.Mem) {
		t.Fatal("perfect-BP run diverges from emulator")
	}
	if core.Stats.Mispredicts != 0 {
		t.Errorf("perfect BP mispredicts = %d, want 0", core.Stats.Mispredicts)
	}

	// And it must be faster than the real predictor.
	base, _ := New(testConfig(), p, init.Clone())
	if err := base.Run(0); err != nil {
		t.Fatal(err)
	}
	if core.Stats.Cycles >= base.Stats.Cycles {
		t.Errorf("perfect BP (%d cycles) not faster than baseline (%d)", core.Stats.Cycles, base.Stats.Cycles)
	}
}

func TestOrderingViolationDetected(t *testing.T) {
	b := prog.NewBuilder()
	b.BranchBQ("x")
	b.Label("x")
	b.Halt()
	core, err := New(testConfig(), b.MustBuild(), nil)
	if err != nil {
		t.Fatal(err)
	}
	err = core.Run(0)
	if err == nil {
		t.Fatal("pop before any push must fail")
	}
}

// TestSaveRestoreContextSwitch runs the full three-queue context-switch
// sequence (save, clobber, restore, consume) on the cycle-level core and
// checks it against the emulator — the §III-A/§IV-B context-switch story
// end to end.
func TestSaveRestoreContextSwitch(t *testing.T) {
	const saveArea = 0x20000
	b := prog.NewBuilder()
	b.Li(1, 1)
	b.PushBQ(1)
	b.PushBQ(0)
	b.PushBQ(1)
	b.Li(2, 111)
	b.PushVQ(2)
	b.Li(2, 222)
	b.PushVQ(2)
	b.Li(2, 5)
	b.PushTQ(2)
	b.Li(3, saveArea)
	b.SaveQueue(isa.SaveBQ, 3, 0)
	b.SaveQueue(isa.SaveVQ, 3, 64)
	b.SaveQueue(isa.SaveTQ, 3, 2048)
	// Clobber: the "other process".
	b.Li(4, 0)
	b.PushBQ(4)
	b.BranchBQ("g1")
	b.Label("g1")
	b.Li(4, 999)
	b.PushVQ(4)
	b.PopVQ(5)
	b.PushTQ(4)
	b.PopTQ()
	b.Label("drain")
	b.BranchTCR("drain")
	b.SaveQueue(isa.RestoreBQ, 3, 0)
	b.SaveQueue(isa.RestoreVQ, 3, 64)
	b.SaveQueue(isa.RestoreTQ, 3, 2048)
	// Consume the restored state and store the evidence.
	b.Li(10, 0)
	b.BranchBQ("p1")
	b.Jump("bad")
	b.Label("p1")
	b.I(isa.ADDI, 10, 10, 1)
	b.BranchBQ("bad")
	b.I(isa.ADDI, 10, 10, 2)
	b.BranchBQ("p3")
	b.Jump("bad")
	b.Label("p3")
	b.I(isa.ADDI, 10, 10, 4)
	b.PopVQ(11)
	b.PopVQ(12)
	b.PopTQ()
	b.Li(13, 0)
	b.Jump("tq")
	b.Label("body")
	b.I(isa.ADDI, 13, 13, 1)
	b.Label("tq")
	b.BranchTCR("body")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 10, 30, 0)
	b.Store(isa.SD, 11, 30, 8)
	b.Store(isa.SD, 12, 30, 16)
	b.Store(isa.SD, 13, 30, 24)
	b.Halt()
	b.Label("bad")
	b.Halt()

	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	m := core.Mem()
	if got := m.Read(0x9000, 8); got != 7 {
		t.Errorf("restored predicates consumed wrong: %d, want 7", got)
	}
	if m.Read(0x9008, 8) != 111 || m.Read(0x9010, 8) != 222 {
		t.Errorf("restored VQ values = %d, %d", m.Read(0x9008, 8), m.Read(0x9010, 8))
	}
	if got := m.Read(0x9018, 8); got != 5 {
		t.Errorf("restored trip count ran %d iterations, want 5", got)
	}
}

func TestRunLimit(t *testing.T) {
	b := prog.NewBuilder()
	b.Label("spin")
	b.I(isa.ADDI, 1, 1, 1)
	b.Jump("spin")
	core, err := New(testConfig(), b.MustBuild(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(5000); !errors.Is(err, ErrLimit) {
		t.Errorf("err = %v, want ErrLimit", err)
	}
}

func TestDeepPipelineHurtsMispredictingCode(t *testing.T) {
	const n = 1500
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 31))
	p := condLoop(0x10000, 0x80000, n, 50)
	shallow := runBoth(t, testConfig().WithDepth(5), p, m)
	deep := runBoth(t, testConfig().WithDepth(20), p, m)
	if deep.Stats.Cycles <= shallow.Stats.Cycles {
		t.Errorf("deep pipeline (%d cycles) not slower than shallow (%d)",
			deep.Stats.Cycles, shallow.Stats.Cycles)
	}
}

func TestJALJRRoundTrip(t *testing.T) {
	b := prog.NewBuilder()
	b.Li(9, 0)
	b.Li(10, 5)
	b.Label("loop")
	b.Jal(31, "fn")
	b.I(isa.ADDI, 10, 10, -1)
	b.Branch(isa.BNE, 10, 0, "loop")
	b.Li(30, 0x9000)
	b.Store(isa.SD, 9, 30, 0)
	b.Halt()
	b.Label("fn")
	b.I(isa.ADDI, 9, 9, 7)
	b.Jr(31)
	core := runBoth(t, testConfig(), b.MustBuild(), nil)
	if got := core.Mem().Read(0x9000, 8); got != 35 {
		t.Errorf("result = %d, want 35", got)
	}
}

// TestRandomDifferential cross-checks the pipeline against the emulator on
// randomized structured programs: counted loops with data-dependent
// hammocks, loads, stores, and ALU traffic.
func TestRandomDifferential(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		b := prog.NewBuilder()
		const dataBase = 0x20000
		b.Li(1, dataBase)
		b.Li(2, int64(50+rng.Intn(100))) // outer trip count
		for r := isa.Reg(10); r <= 18; r++ {
			b.Li(r, rng.Int63n(1000))
		}
		b.Label("loop")
		nBody := 5 + rng.Intn(15)
		for i := 0; i < nBody; i++ {
			r1 := isa.Reg(10 + rng.Intn(9))
			r2 := isa.Reg(10 + rng.Intn(9))
			rd := isa.Reg(10 + rng.Intn(9))
			switch rng.Intn(7) {
			case 0:
				b.R(isa.ADD, rd, r1, r2)
			case 1:
				b.R(isa.XOR, rd, r1, r2)
			case 2:
				b.R(isa.MUL, rd, r1, r2)
			case 3:
				// Bounded load: index = r1 & 1023.
				b.I(isa.ANDI, 20, r1, 1023)
				b.I(isa.SHLI, 20, 20, 3)
				b.R(isa.ADD, 20, 20, 1)
				b.Load(isa.LD, rd, 20, 0)
			case 4:
				b.I(isa.ANDI, 20, r1, 1023)
				b.I(isa.SHLI, 20, 20, 3)
				b.R(isa.ADD, 20, 20, 1)
				b.Store(isa.SD, r2, 20, 0)
			case 5:
				// Data-dependent hammock.
				lbl := labelName(seed, i)
				b.I(isa.ANDI, 21, r1, 3)
				b.Branch(isa.BNE, 21, 0, lbl)
				b.I(isa.ADDI, rd, rd, 13)
				b.R(isa.SUB, rd, rd, r2)
				b.Label(lbl)
			case 6:
				b.R(isa.CMOVNZ, rd, r1, r2)
			}
		}
		b.I(isa.ADDI, 2, 2, -1)
		b.Branch(isa.BNE, 2, 0, "loop")
		storeRegs(b, 0x9000)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		m.WriteUint64s(dataBase, randomArray(1024, 1<<30, seed+100))
		runBoth(t, testConfig(), p, m)
	}
}

var labelCounter int

func labelName(seed int64, i int) string {
	labelCounter++
	return "h" + string(rune('a'+seed)) + "_" + itoa(i) + "_" + itoa(labelCounter)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
