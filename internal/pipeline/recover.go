package pipeline

import "cfd/internal/isa"

// recoverAfter squashes every uop younger than anchorSeq — in the front-end
// queue and in the window — undoing, in reverse program order, all of their
// speculative effects: rename mappings and freelist allocations, VQ renamer
// pointers, BQ/TQ pointers and popped bits, the TCR, the RAS, checkpoint
// tokens, oracle cursors, and load/store queue occupancy. Fetch restarts at
// newPC next cycle. Callers restore predictor history (it is anchored at
// the recovering branch) before calling.
//
// This walk implements the paper's recovery semantics (§III-C4): restore
// BQ head/tail/mark from the checkpoint, clear popped bits between them,
// and deduct squashed pushes from pending_push_ctr — expressed here through
// the monotonic pointer representation.
func (c *Core) recoverAfter(anchorSeq, newPC uint64) {
	// Front-end queue first: its uops are the youngest.
	for c.fqTail > c.robTail {
		u := c.robAt(c.fqTail - 1)
		if u.seq <= anchorSeq {
			break
		}
		c.undoFetchSide(u)
		c.fqTail--
		c.Stats.SquashedUops++
	}

	// Window walk, youngest to oldest. It only squashes when the anchor
	// is at or below robTail, i.e. the front-end region drained entirely,
	// so fqTail follows robTail down.
	for c.robTail > c.robHead {
		u := c.robAt(c.robTail - 1)
		if u.seq <= anchorSeq {
			break
		}
		c.undoFetchSide(u)
		c.undoRenameSide(u)
		u.squashed = true
		c.traceRecord(u)
		c.Stats.SquashedUops++
		c.robTail--
		c.fqTail = c.robTail
	}

	// Drop squashed issue-queue entries (they are all younger than the
	// anchor or they would have survived the walk).
	kept := c.iq[:0]
	for _, e := range c.iq {
		if e.pos < c.robTail && e.seq <= anchorSeq {
			kept = append(kept, e)
		}
	}
	c.iq = kept

	c.pred.OnSquash()
	c.fetchPC = newPC
	c.fetchStallTill = c.now + 1
}

// undoFetchSide reverses a uop's fetch-stage effects on the front-end
// state. Called in reverse program order, so simple pointer restores
// compose correctly.
func (c *Core) undoFetchSide(u *uop) {
	switch u.inst.Op {
	case isa.PushBQ:
		if u.bqIdx >= 0 {
			c.bq.specTail = uint64(u.bqIdx)
		}
	case isa.BranchBQ:
		if u.bqIdx >= 0 {
			c.bq.specHead = uint64(u.bqIdx)
			c.bq.at(uint64(u.bqIdx)).popped = false
		}
	case isa.MarkBQ:
		c.bq.specMark, c.bq.markOK = u.oldMark, u.oldMarkOK
	case isa.ForwardBQ:
		c.bq.specHead = u.fwdFrom
	case isa.PushTQ:
		if u.tqIdx >= 0 {
			c.tq.specTail = uint64(u.tqIdx)
		}
	case isa.PopTQ, isa.PopTQOV:
		if u.tqIdx >= 0 {
			c.tq.specHead = uint64(u.tqIdx)
		}
		c.specTCR = u.oldTCR
	case isa.BranchTCR:
		c.specTCR = u.oldTCR
	case isa.JAL, isa.JR:
		c.ras.SetTop(u.rasOldTop)
	case isa.HALT:
		c.haltFetched = false
	}
	if u.usedOracle && c.oracle != nil {
		c.oracle.Undo(u.pc)
	}
}

// undoRenameSide reverses a uop's rename-stage effects. Reverse program
// order makes the ring-freelist head rollback exact: allocations are
// returned in the opposite order they were taken, and the ring still holds
// the same register numbers in those slots.
func (c *Core) undoRenameSide(u *uop) {
	op := u.inst.Op
	if op == isa.PushVQ {
		c.vq.specTail = uint64(u.vqIdx)
	}
	if op == isa.PopVQ {
		c.vq.specHead = uint64(u.vqIdx)
	}
	if u.pdst >= 0 {
		c.flHead--
	}
	if op.WritesRd() && u.inst.Rd != isa.Zero && op != isa.PushVQ {
		c.rmt[u.inst.Rd] = u.pold
	}
	if u.isLoad {
		c.lqCount--
	}
	if u.isStore {
		c.sqTail = u.sqPos
	}
	if u.hasCkpt {
		c.usedCkpts--
		u.hasCkpt = false
	}
}
