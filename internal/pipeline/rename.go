package pipeline

import (
	"cfd/internal/energy"
	"cfd/internal/isa"
)

// needsIQ reports whether the op occupies an issue-queue entry and
// execution lane. Fetch-resolved control, queue bookkeeping handled in the
// front end, and NOP/HALT complete at rename.
func needsIQ(u *uop) bool {
	switch u.inst.Op {
	case isa.NOP, isa.HALT, isa.J, isa.JAL, isa.MarkBQ, isa.ForwardBQ,
		isa.BranchTCR, isa.PopTQ, isa.PopTQOV, isa.BranchBQ,
		isa.SaveBQ, isa.RestoreBQ, isa.SaveVQ, isa.RestoreVQ,
		isa.SaveTQ, isa.RestoreTQ:
		return false
	}
	if u.usedOracle {
		return false // oracle-resolved branches are fetch-resolved
	}
	return true
}

// rename performs in-order register renaming and dispatch: up to
// RenameWidth uops per cycle move from the front-end queue into the ROB,
// issue queue, and load/store queues, allocating physical registers from
// the ring freelist. The VQ renamer (§IV-B2) maps PushVQ/PopVQ onto
// physical registers here. Speculative BranchBQ pops claim their mandatory
// checkpoint here (§III-C2); ordinary predicted branches take one when
// confidence and availability allow.
func (c *Core) rename() error {
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fqLen() == 0 {
			break
		}
		u := c.fqFront()
		if u.readyAt > c.now {
			break
		}
		if c.robCount() >= c.cfg.ROBSize {
			break
		}
		op := u.inst.Op
		inIQ := needsIQ(u)
		if inIQ && len(c.iq) >= c.cfg.IQSize {
			break
		}
		isLoad := op.IsLoad() // includes PREF
		if isLoad && c.lqCount >= c.cfg.LQSize {
			break
		}
		if op.IsStore() && int(c.sqTail-c.sqHead) >= c.cfg.SQSize {
			break
		}
		needsDest := op == isa.PushVQ || (op.WritesRd() && u.inst.Rd != isa.Zero)
		if needsDest && c.freeCount() == 0 {
			break
		}
		if op == isa.PushVQ && c.vq.length() >= c.vq.size {
			break
		}
		if op == isa.PopVQ && c.vq.specHead >= c.vq.specTail {
			// Pop with no mapping: an ordering-rule violation on the
			// correct path, wrong-path noise otherwise. Stall; the
			// correct-path case surfaces as a deadlock error.
			break
		}

		// Checkpoint policy.
		if u.specPop && u.bqIdx >= 0 {
			e := c.bq.at(uint64(u.bqIdx))
			if e.pushed {
				// The late push already confirmed (or corrected, via
				// recovery) this pop before it renamed: it no longer
				// needs a checkpoint.
				u.actTaken = e.pred
				u.resolvedFetch = true
			} else {
				// A speculative pop always takes a checkpoint; stall
				// rename until one is free.
				if c.usedCkpts >= c.cfg.NumCheckpoints {
					break
				}
				c.usedCkpts++
				u.hasCkpt = true
				e.popRob = c.robTail
				c.Meter.Add(energy.CkptCreate, 1)
			}
		} else if u.usedPredictor && (u.isCond || u.isJR) && !u.resolvedFetch {
			want := true
			if c.cfg.CkptConfGuided {
				want = !c.conf.HighConfidence(u.pc)
			}
			if want && c.usedCkpts < c.cfg.NumCheckpoints {
				c.usedCkpts++
				u.hasCkpt = true
				c.Meter.Add(energy.CkptCreate, 1)
			}
		}

		// Source renaming.
		if op.ReadsRs1() {
			u.psrc1 = c.rmt[u.inst.Rs1]
		}
		if op.ReadsRs2() {
			u.psrc2 = c.rmt[u.inst.Rs2]
		}
		if op == isa.CMOVZ || op == isa.CMOVNZ {
			u.psrc3 = c.rmt[u.inst.Rd] // conditional moves read their old destination
		}
		if op == isa.PopVQ {
			u.vqIdx = int64(c.vq.specHead)
			u.vqSrcPreg = *c.vq.at(c.vq.specHead)
			c.vq.specHead++
			c.Meter.Add(energy.VQRenAccess, 1)
		}

		// Destination renaming.
		switch {
		case op == isa.PushVQ:
			u.vqIdx = int64(c.vq.specTail)
			pr := c.allocPreg()
			u.pdst = pr
			*c.vq.at(c.vq.specTail) = pr
			c.vq.specTail++
			c.Meter.Add(energy.VQRenAccess, 1)
		case op.WritesRd() && u.inst.Rd != isa.Zero:
			pr := c.allocPreg()
			u.pold = c.rmt[u.inst.Rd]
			c.rmt[u.inst.Rd] = pr
			u.pdst = pr
			if op == isa.JAL {
				c.prf[pr] = u.pc + 1
				c.prfReady[pr] = true
			}
		}

		// Window allocation.
		u.isLoad = isLoad
		u.isStore = op.IsStore()
		if isLoad {
			c.lqCount++
		}
		if u.isStore {
			u.sqPos = c.sqTail
			*c.sqAt(c.sqTail) = sqEntry{seq: u.seq, robPos: c.robTail}
			c.sqTail++
			c.Meter.Add(energy.LSQOp, 1)
		}

		u.inIQ = inIQ
		u.renameAt = c.now
		if !inIQ {
			u.executed = true
			u.doneAt = c.now
		}
		// u already lives in the rob-ring slot at robTail (fetch built it
		// there); renaming it is a pointer bump.
		pos := c.robTail
		c.robTail++
		if inIQ {
			c.iq = append(c.iq, iqEnt{
				pos: pos, seq: u.seq,
				psrc1: u.psrc1, psrc2: u.psrc2, psrc3: u.psrc3,
				vqSrc: u.vqSrcPreg,
				port:  u.port, mulDiv: u.mulDiv, isLoad: u.isLoad,
			})
			c.Meter.Add(energy.IQWrite, 1)
		}
		c.Meter.Add(energy.Rename, 1)
		c.Meter.Add(energy.ROBWrite, 1)
	}
	return nil
}
