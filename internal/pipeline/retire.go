package pipeline

import (
	"cfd/internal/core"
	"cfd/internal/energy"
	"cfd/internal/isa"
)

// retire commits up to RetireWidth executed instructions in order: stores
// write memory and access the cache, queue commit pointers advance (the
// architectural net_push_ctr bookkeeping of §III-C3), the AMT and freelist
// track committed mappings, and the predictor/confidence estimator train.
// A mispredicted branch that could not take a checkpoint performs its
// recovery here, from committed state — the timing penalty of checkpoint
// exhaustion.
func (c *Core) retire() error {
	for n := 0; n < c.cfg.RetireWidth; n++ {
		if c.robHead == c.robTail {
			return nil
		}
		u := c.robAt(c.robHead)
		if !u.executed {
			return nil
		}
		if u.retireRecover && !u.recovered {
			newPC := u.actTarget
			if u.isCond && !u.actTaken {
				newPC = u.pc + 1
			}
			c.Stats.RetireRecoveries++
			c.pred.Restore(u.hist)
			if u.isCond {
				c.pred.OnFetchOutcome(u.pc, u.actTaken)
			}
			c.recoverAfter(u.seq, newPC)
			c.noteRecovery(u.seq, u.srcLevel, u.specPop)
			c.Meter.Add(energy.CkptRestore, 1)
			u.recovered = true
		}

		op := u.inst.Op
		switch {
		case u.isHalt:
			c.done = true
		case u.isStore:
			c.mem.Write(u.addr, u.storeSize, u.storeData)
			if u.addr < addrLimit {
				_, lvl := c.hier.Access(u.addr, c.now)
				c.chargeMemEnergy(lvl)
			}
			c.sqHead++
		case op == isa.BranchBQ:
			if u.bqIdx < 0 {
				// A speculative pop that never claimed an entry reached
				// retirement: the program popped more than it pushed.
				return c.queueFault(u.pc, &core.ViolationError{
					Queue: "BQ", Op: "branch_bq",
					Why: "retired with no pushed predicate (push/pop ordering violation)",
				})
			}
			c.bq.commHead = uint64(u.bqIdx) + 1
			c.Stats.BQPops++
			if u.specPop {
				c.Stats.BQMisses++
				if u.mispredict {
					c.Stats.BQLateMispredict++
				}
			} else {
				c.Stats.BQResolvedAtFetch++
			}
		case op == isa.ForwardBQ:
			if !u.fwdHadMark {
				// Retired (hence correct-path) forward with no preceding
				// mark — the same violation the emulator reports.
				return c.queueFault(u.pc, &core.ViolationError{
					Queue: "BQ", Op: "forward", Why: "no preceding mark",
				})
			}
			if u.fwdTo > c.bq.commHead {
				c.bq.commHead = u.fwdTo
			}
		case op == isa.PopTQ, op == isa.PopTQOV:
			c.tq.commHead = uint64(u.tqIdx) + 1
			c.Stats.TQPops++
		case op == isa.BranchTCR:
			c.Stats.TCRBranches++
		case op == isa.PopVQ:
			// The push's physical register is freed when the pop that
			// references it retires (§IV-B2).
			c.freePreg(u.vqSrcPreg)
			c.vq.commHead = uint64(u.vqIdx) + 1
		}

		if op.WritesRd() && u.inst.Rd != isa.Zero && op != isa.PushVQ {
			c.amt[u.inst.Rd] = u.pdst
			if u.pold >= 0 {
				c.freePreg(u.pold)
			}
		}
		if u.isLoad {
			c.lqCount--
		}

		if u.isCond {
			c.Stats.CondBranches++
			bs := c.Stats.PerBranch[u.pc]
			if bs == nil {
				bs = &BranchStat{}
				c.Stats.PerBranch[u.pc] = bs
			}
			bs.Execs++
			if u.actTaken {
				bs.Taken++
			}
			if u.usedPredictor {
				c.pred.Train(u.pc, u.lookup, u.actTaken)
				c.conf.Update(u.pc, u.actTaken == u.predTaken)
			}
			if u.mispredict {
				c.Stats.Mispredicts++
				c.Stats.MispredByLevel[u.srcLevel]++
				bs.Mispredicts++
			}
		} else if u.isJR && u.mispredict {
			c.Stats.Mispredicts++
			c.Stats.MispredByLevel[u.srcLevel]++
		}

		if u.hasCkpt {
			c.usedCkpts--
			u.hasCkpt = false
		}

		c.traceRecord(u)
		c.diag.record(u.pc, u.inst)
		c.Meter.Add(energy.Retire, 1)
		c.Stats.Retired++
		c.cycRetired++
		if cfdOverheadOp(op) {
			c.cycOverhead++
		}
		if c.shadow.active && u.seq > c.shadow.anchor {
			// The corrected path has reached retirement: the recovery
			// refill is over.
			c.shadow.active = false
		}
		c.lastRetireCycle = c.now
		c.robHead++
		if c.done {
			return nil
		}
	}
	return nil
}
