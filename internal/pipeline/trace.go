package pipeline

import (
	"fmt"
	"strings"
)

// TraceEvent records one instruction's flow through the pipeline stages.
type TraceEvent struct {
	Seq        uint64
	PC         uint64
	Inst       string
	FetchAt    uint64
	RenameAt   uint64
	IssueAt    uint64
	DoneAt     uint64
	RetireAt   uint64
	Squashed   bool
	Mispredict bool
}

// tracer collects stage timestamps for a window of the instruction stream:
// skip instructions pass uncaptured, then limit instructions are recorded.
type tracer struct {
	skip   int
	limit  int
	events []TraceEvent
}

// WithTrace enables pipeline tracing for the first limit instructions that
// enter the window (squashed ones included). Render the result with
// Pipeview.
func WithTrace(limit int) Option {
	return func(c *Core) { c.trace = &tracer{limit: limit} }
}

// WithTraceWindow enables pipeline tracing for limit instructions starting
// after the first start instructions have left the pipeline (retired or
// squashed) — a mid-run window that captures steady-state behaviour
// instead of only warm-up.
func WithTraceWindow(start, limit int) Option {
	return func(c *Core) { c.trace = &tracer{skip: start, limit: limit} }
}

func (c *Core) traceRecord(u *uop) {
	if c.trace == nil || len(c.trace.events) >= c.trace.limit {
		return
	}
	if c.trace.skip > 0 {
		c.trace.skip--
		return
	}
	c.trace.events = append(c.trace.events, TraceEvent{
		Seq:        u.seq,
		PC:         u.pc,
		Inst:       u.inst.String(),
		FetchAt:    u.fetchAt,
		RenameAt:   u.renameAt,
		IssueAt:    u.issueAt,
		DoneAt:     u.doneAt,
		RetireAt:   c.now,
		Squashed:   u.squashed,
		Mispredict: u.mispredict,
	})
}

// Trace returns the collected events.
func (c *Core) Trace() []TraceEvent {
	if c.trace == nil {
		return nil
	}
	return c.trace.events
}

// Pipeview renders the collected trace as a classic textual pipeline
// diagram: one row per instruction, one column per cycle, with stage
// letters F (fetch), R (rename/dispatch), I (issue/execute), C (complete),
// X (retire), and 'x' marking squashed instructions.
func (c *Core) Pipeview() string {
	evs := c.Trace()
	if len(evs) == 0 {
		return "(no trace; construct the core with WithTrace)\n"
	}
	base := evs[0].FetchAt
	var last uint64
	for _, e := range evs {
		if e.RetireAt > last {
			last = e.RetireAt
		}
	}
	width := int(last-base) + 1
	if width > 160 {
		width = 160
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycle origin %d, one column per cycle\n", base)
	for _, e := range evs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		put := func(at uint64, ch byte) {
			if at >= base && int(at-base) < width {
				if row[at-base] == '.' {
					row[at-base] = ch
				}
			}
		}
		put(e.RetireAt, 'X')
		put(e.DoneAt, 'C')
		put(e.IssueAt, 'I')
		put(e.RenameAt, 'R')
		put(e.FetchAt, 'F')
		mark := ' '
		if e.Squashed {
			mark = 'x'
		}
		fmt.Fprintf(&b, "%5d %c %-22s |%s|\n", e.Seq, mark, truncate(e.Inst, 22), row)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
