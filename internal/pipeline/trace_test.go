package pipeline

import (
	"strings"
	"testing"

	"cfd/internal/mem"
)

func TestPipeviewTrace(t *testing.T) {
	const n = 50
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 41))
	core, err := New(testConfig(), condLoop(0x10000, 0x80000, n, 50), m, WithTrace(40))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	evs := core.Trace()
	if len(evs) != 40 {
		t.Fatalf("trace collected %d events, want 40", len(evs))
	}
	sawSquashed := false
	for _, e := range evs {
		if e.Squashed {
			sawSquashed = true
			continue
		}
		if !(e.FetchAt <= e.RenameAt && e.RenameAt <= e.DoneAt && e.DoneAt <= e.RetireAt) {
			t.Errorf("seq %d: stage order violated: F%d R%d C%d X%d",
				e.Seq, e.FetchAt, e.RenameAt, e.DoneAt, e.RetireAt)
		}
		if e.IssueAt != 0 && (e.IssueAt < e.RenameAt || e.IssueAt > e.DoneAt) {
			t.Errorf("seq %d: issue out of order: R%d I%d C%d", e.Seq, e.RenameAt, e.IssueAt, e.DoneAt)
		}
	}
	if !sawSquashed {
		t.Log("no squashed uops in the first 40 (acceptable)")
	}
	view := core.Pipeview()
	for _, want := range []string{"cycle origin", "F", "X", "|"} {
		if !strings.Contains(view, want) {
			t.Errorf("Pipeview missing %q:\n%s", want, view)
		}
	}
	// The fetch-to-execute depth must be visible: for the first load,
	// issue happens no earlier than FrontEndDepth-1 cycles after fetch.
	for _, e := range evs {
		if strings.HasPrefix(e.Inst, "ld") && !e.Squashed && e.IssueAt > 0 {
			if gap := e.IssueAt - e.FetchAt; gap < uint64(testConfig().FrontEndDepth-1) {
				t.Errorf("fetch-to-issue gap %d below front-end depth", gap)
			}
			break
		}
	}
}

// TestPipeviewTraceWindow captures a mid-run window: the trace must skip
// the warm-up and render steady-state instructions only.
func TestPipeviewTraceWindow(t *testing.T) {
	const n = 200
	const start, limit = 500, 60
	m := mem.New()
	m.WriteUint64s(0x10000, randomArray(n, 100, 41))
	core, err := New(testConfig(), condLoop(0x10000, 0x80000, n, 50), m, WithTraceWindow(start, limit))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	evs := core.Trace()
	if len(evs) != limit {
		t.Fatalf("windowed trace collected %d events, want %d", len(evs), limit)
	}
	for i, e := range evs {
		// Every traced uop is a distinct instruction, so after skipping
		// `start` of them the sequence numbers must be past the warm-up.
		if e.Seq < start {
			t.Errorf("event %d: seq %d predates the window start %d", i, e.Seq, start)
		}
		if e.FetchAt == 0 {
			t.Errorf("event %d: mid-run instruction fetched at cycle 0", i)
		}
	}
	view := core.Pipeview()
	if !strings.Contains(view, "cycle origin") {
		t.Errorf("windowed Pipeview did not render:\n%s", view)
	}
	// The cycle origin is the window's first fetch, not the run's start.
	if strings.Contains(view, "cycle origin 0,") {
		t.Error("windowed Pipeview anchored at cycle 0 (window not applied)")
	}
}

func TestPipeviewWithoutTrace(t *testing.T) {
	core, err := New(testConfig(), condLoop(0x10000, 0x80000, 5, 50), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(core.Pipeview(), "no trace") {
		t.Error("untraced Pipeview must say so")
	}
}
