package predictor

// BTB is a set-associative branch target buffer. Its role (paper §III-C4):
// detect control instructions and provide their taken-targets in the same
// cycle they are fetched. A taken branch that misses in the BTB costs a
// one-cycle misfetch penalty. BranchBQ/BranchTCR instructions are cached
// like every other branch so a queue-resolved taken pop pays no penalty on
// a BTB hit.
type BTB struct {
	sets    [][]btbEntry
	setMask uint64
	ways    int
	hits    uint64
	misses  uint64
	// clock is the per-instance LRU timestamp. It must not be shared
	// across BTBs: cores simulate concurrently in the parallel harness,
	// and only intra-core ordering matters for LRU.
	clock uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// NewBTB returns a BTB with 2^logSets sets of the given associativity.
func NewBTB(logSets, ways int) *BTB {
	b := &BTB{
		sets:    make([][]btbEntry, 1<<logSets),
		setMask: 1<<logSets - 1,
		ways:    ways,
	}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, ways)
	}
	return b
}

// Lookup returns the cached taken-target for pc.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	set := b.sets[pc&b.setMask]
	tag := pc >> 1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clock++
			set[i].lru = b.clock
			b.hits++
			return set[i].target, true
		}
	}
	b.misses++
	return 0, false
}

// Insert records pc's taken-target, replacing the LRU way on conflict.
func (b *BTB) Insert(pc, target uint64) {
	set := b.sets[pc&b.setMask]
	tag := pc >> 1
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.clock++
	set[victim] = btbEntry{valid: true, tag: tag, target: target, lru: b.clock}
}

// Stats returns hit and miss counts.
func (b *BTB) Stats() (hits, misses uint64) { return b.hits, b.misses }

// RAS is a fixed-depth return address stack with simple overwrite-on-
// overflow semantics. The pipeline checkpoints the top-of-stack index at
// branches; full content corruption from deep wrong paths is accepted
// (standard simulator behavior).
type RAS struct {
	stack []uint64
	top   int // number of valid entries (logical; wraps physically)
}

// NewRAS returns a RAS with the given depth.
func NewRAS(depth int) *RAS { return &RAS{stack: make([]uint64, depth)} }

// Push records a return address (call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%len(r.stack)] = addr
	r.top++
}

// Pop predicts a return target.
func (r *RAS) Pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%len(r.stack)], true
}

// Top returns the logical top-of-stack index for checkpointing.
func (r *RAS) Top() int { return r.top }

// SetTop restores the logical top-of-stack index.
func (r *RAS) SetTop(t int) {
	if t < 0 {
		t = 0
	}
	r.top = t
}

// Confidence is a JRS-style branch confidence estimator: a table of
// miss-distance counters (resetting counters) indexed by PC and global
// history. The baseline uses it to decide which predicted branches deserve
// one of the scarce checkpoints (confidence-guided checkpointing, §VI).
type Confidence struct {
	ctrs   []uint8
	mask   uint32
	thresh uint8
	max    uint8
}

// NewConfidence returns an estimator with 2^logSize counters; a branch is
// low-confidence until its counter reaches thresh consecutive correct
// predictions.
func NewConfidence(logSize int, thresh uint8) *Confidence {
	return &Confidence{
		ctrs:   make([]uint8, 1<<logSize),
		mask:   1<<logSize - 1,
		thresh: thresh,
		max:    15,
	}
}

func (c *Confidence) index(pc uint64) uint32 {
	return (uint32(pc) ^ uint32(pc>>13)) & c.mask
}

// HighConfidence reports whether pc's prediction is trusted (no checkpoint
// needed).
func (c *Confidence) HighConfidence(pc uint64) bool {
	return c.ctrs[c.index(pc)] >= c.thresh
}

// Update trains the estimator with the resolved outcome of a prediction:
// correct predictions increment the resetting counter, mispredictions clear
// it.
func (c *Confidence) Update(pc uint64, correct bool) {
	i := c.index(pc)
	if correct {
		if c.ctrs[i] < c.max {
			c.ctrs[i]++
		}
	} else {
		c.ctrs[i] = 0
	}
}
