// Package predictor implements branch direction predictors (bimodal,
// gshare, and an ISL-TAGE-class predictor: TAGE with a loop predictor and a
// statistical corrector), the branch target buffer, the return address
// stack, and a JRS confidence estimator used for confidence-guided
// checkpointing — the front-end prediction machinery of the paper's
// baseline core (§VI).
package predictor

// numTables is the number of tagged TAGE tables; it also bounds the history
// snapshot size for all predictors.
const numTables = 8

// Lookup carries one prediction plus the internal state needed to train the
// predictor at retirement. The pipeline stores it in the branch's window
// entry and hands it back to Train unchanged.
type Lookup struct {
	// Pred is the predicted direction.
	Pred bool

	// TAGE internals.
	provider int8 // providing tagged table, -1 when the base table provided
	altTable int8 // alternate provider, -1 when base
	altPred  bool
	usedAlt  bool
	weak     bool // provider counter was weak (new entry)
	indices  [numTables]uint32
	tags     [numTables]uint16
	baseIdx  uint32
	basePred bool
	tagePred bool // prediction before loop/SC override

	// Loop predictor.
	loopPred  bool
	loopValid bool // loop predictor is confident and overrode TAGE
	loopHit   bool // entry matched (confident or not)

	// Statistical corrector.
	scSum  int32
	scIdx  [3]uint32
	usedSC bool

	// gshare.
	ghist uint64
}

// HistSnap is a value snapshot of a predictor's speculative history,
// sufficient to roll back to a branch or checkpoint. One struct covers all
// predictor kinds.
type HistSnap struct {
	pos      uint32
	path     uint32
	foldIdx  [numTables]uint32
	foldTag1 [numTables]uint32
	foldTag2 [numTables]uint32
	scFold   [2]uint32
	ghist    uint64
}

// DirPredictor predicts conditional branch directions.
//
// Protocol: the fetch unit calls Lookup to predict, then OnFetchOutcome
// with the outcome it proceeds with (the prediction, or the queue-popped
// predicate for CFD branches — history must see those too so correlated
// branches can exploit them). Snapshot/Restore save and roll back the
// speculative history around checkpoints; OnSquash additionally resyncs
// speculative state that is too large to checkpoint (the loop predictor's
// iteration counters). Train is called in retirement order with the Lookup
// returned at fetch.
type DirPredictor interface {
	Name() string
	Lookup(pc uint64) Lookup
	OnFetchOutcome(pc uint64, taken bool)
	Snapshot() HistSnap
	Restore(s HistSnap)
	OnSquash()
	Train(pc uint64, l Lookup, taken bool)
}

// lfsr is a tiny deterministic pseudo-random source for TAGE allocation.
type lfsr uint32

func (r *lfsr) next() uint32 {
	v := uint32(*r)
	v ^= v << 13
	v ^= v >> 17
	v ^= v << 5
	*r = lfsr(v)
	return v
}

func counterUpdate(c int8, taken bool, max int8) int8 {
	if taken {
		if c < max {
			c++
		}
	} else {
		if c > -max-1 {
			c--
		}
	}
	return c
}
