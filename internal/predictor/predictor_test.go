package predictor

import (
	"math/rand"
	"testing"
)

// drive runs a (pc, taken) trace through a predictor in functional-profiling
// mode (outcome resolved immediately) and returns accuracy over the second
// half of the trace.
func drive(p DirPredictor, trace []struct {
	pc    uint64
	taken bool
}) float64 {
	correct, total := 0, 0
	for i, ev := range trace {
		l := p.Lookup(ev.pc)
		if i >= len(trace)/2 {
			total++
			if l.Pred == ev.taken {
				correct++
			}
		}
		p.OnFetchOutcome(ev.pc, ev.taken)
		p.Train(ev.pc, l, ev.taken)
	}
	return float64(correct) / float64(total)
}

type traceEv = struct {
	pc    uint64
	taken bool
}

func biasedTrace(pc uint64, n int, pTaken float64, seed int64) []traceEv {
	rng := rand.New(rand.NewSource(seed))
	tr := make([]traceEv, n)
	for i := range tr {
		tr[i] = traceEv{pc, rng.Float64() < pTaken}
	}
	return tr
}

func TestBimodalLearnsBias(t *testing.T) {
	acc := drive(NewBimodal(12), biasedTrace(0x400, 4000, 0.95, 1))
	if acc < 0.90 {
		t.Errorf("bimodal accuracy on 95%%-biased branch = %.3f, want >= 0.90", acc)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	tr := make([]traceEv, 4000)
	for i := range tr {
		tr[i] = traceEv{0x400, i%2 == 0}
	}
	acc := drive(NewGshare(14, 16), tr)
	if acc < 0.99 {
		t.Errorf("gshare accuracy on alternating branch = %.3f, want >= 0.99", acc)
	}
}

func TestTAGELearnsHistoryPattern(t *testing.T) {
	// A branch correlated with the previous two outcomes of another
	// branch: needs global history.
	rng := rand.New(rand.NewSource(2))
	var tr []traceEv
	h1, h2 := false, false
	for i := 0; i < 8000; i++ {
		a := rng.Intn(2) == 0
		tr = append(tr, traceEv{0x100, a})
		tr = append(tr, traceEv{0x200, h1 != h2}) // xor of last two outcomes of 0x100
		h2, h1 = h1, a
	}
	p := NewISLTAGE()
	correct, total := 0, 0
	for i, ev := range tr {
		l := p.Lookup(ev.pc)
		if ev.pc == 0x200 && i >= len(tr)/2 {
			total++
			if l.Pred == ev.taken {
				correct++
			}
		}
		p.OnFetchOutcome(ev.pc, ev.taken)
		p.Train(ev.pc, l, ev.taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("TAGE accuracy on history-correlated branch = %.3f, want >= 0.95", acc)
	}
	// A bimodal predictor cannot learn this (xor of two random bits is
	// itself ~50/50).
	accB := drive(NewBimodal(12), tr)
	_ = accB // sanity only; the xor branch alone would be ~0.5
}

func TestTAGERandomBranchNearChance(t *testing.T) {
	acc := drive(NewISLTAGE(), biasedTrace(0x300, 20000, 0.5, 3))
	if acc > 0.60 {
		t.Errorf("TAGE accuracy on random branch = %.3f; data-dependent random branches must stay hard", acc)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	// A loop back-edge taken 127 times then not taken, repeatedly: the
	// strip-mined CFD chunk loops look exactly like this. ISL-TAGE's loop
	// predictor should get the exits right after warmup.
	var tr []traceEv
	for rep := 0; rep < 120; rep++ {
		for i := 0; i < 127; i++ {
			tr = append(tr, traceEv{0x500, true})
		}
		tr = append(tr, traceEv{0x500, false})
	}
	acc := drive(NewISLTAGE(), tr)
	if acc < 0.995 {
		t.Errorf("ISL-TAGE accuracy on fixed-trip loop = %.4f, want >= 0.995", acc)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := NewISLTAGE()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		pc := uint64(rng.Intn(64)) * 4
		l := p.Lookup(pc)
		p.OnFetchOutcome(pc, rng.Intn(2) == 0)
		_ = l
	}
	snap := p.Snapshot()
	before := p.Lookup(0x123)
	// Pollute history down a "wrong path", then restore.
	for i := 0; i < 100; i++ {
		p.OnFetchOutcome(uint64(i)*8, i%3 == 0)
	}
	p.Restore(snap)
	after := p.Lookup(0x123)
	if before != after {
		t.Error("Lookup differs after Snapshot/Restore round trip")
	}
}

func TestGshareSnapshotRestore(t *testing.T) {
	p := NewGshare(12, 12)
	p.OnFetchOutcome(4, true)
	p.OnFetchOutcome(8, false)
	s := p.Snapshot()
	before := p.Lookup(0x40)
	p.OnFetchOutcome(12, true)
	p.Restore(s)
	if p.Lookup(0x40) != before {
		t.Error("gshare restore did not recover history")
	}
}

func TestOnSquashResyncsLoopPredictor(t *testing.T) {
	p := NewISLTAGE()
	// Train a loop entry.
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 10; i++ {
			l := p.Lookup(0x700)
			p.OnFetchOutcome(0x700, true)
			p.Train(0x700, l, true)
		}
		l := p.Lookup(0x700)
		p.OnFetchOutcome(0x700, false)
		p.Train(0x700, l, false)
	}
	// Speculatively fetch a few iterations that will squash.
	for i := 0; i < 5; i++ {
		p.Lookup(0x700)
		p.OnFetchOutcome(0x700, true)
	}
	p.OnSquash()
	le := &p.loop[p.loopIndex(0x700)]
	if le.specIter != le.retiredIter {
		t.Errorf("specIter %d != retiredIter %d after OnSquash", le.specIter, le.retiredIter)
	}
}

func TestBTBInsertLookupAndLRU(t *testing.T) {
	b := NewBTB(2, 2) // 4 sets × 2 ways
	b.Insert(0x10, 0x100)
	if tgt, hit := b.Lookup(0x10); !hit || tgt != 0x100 {
		t.Fatalf("lookup = %#x,%v", tgt, hit)
	}
	// Two more entries mapping to the same set (0x10, 0x14, 0x18 all have
	// pc & 3 == 0). Refresh 0x10 so 0x14 becomes the LRU victim.
	b.Insert(0x14, 0x200)
	b.Lookup(0x10)
	b.Insert(0x18, 0x300)
	if _, hit := b.Lookup(0x14); hit {
		t.Error("LRU eviction kept the wrong way")
	}
	if _, hit := b.Lookup(0x10); !hit {
		t.Error("recently used entry evicted")
	}
	hits, misses := b.Stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestBTBUpdateExistingEntry(t *testing.T) {
	b := NewBTB(4, 2)
	b.Insert(0x20, 0x111)
	b.Insert(0x20, 0x222)
	if tgt, hit := b.Lookup(0x20); !hit || tgt != 0x222 {
		t.Errorf("updated target = %#x,%v, want 0x222", tgt, hit)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("pop of empty RAS succeeded")
	}
	r.Push(10)
	r.Push(20)
	top := r.Top()
	r.Push(30)
	if v, ok := r.Pop(); !ok || v != 30 {
		t.Errorf("pop = %d,%v", v, ok)
	}
	r.SetTop(top)
	if v, ok := r.Pop(); !ok || v != 20 {
		t.Errorf("pop after SetTop = %d,%v, want 20", v, ok)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d, want 2", v)
	}
}

func TestConfidenceEstimator(t *testing.T) {
	c := NewConfidence(10, 4)
	pc := uint64(0x40)
	if c.HighConfidence(pc) {
		t.Error("fresh counter must be low confidence")
	}
	for i := 0; i < 4; i++ {
		c.Update(pc, true)
	}
	if !c.HighConfidence(pc) {
		t.Error("counter at threshold must be high confidence")
	}
	c.Update(pc, false)
	if c.HighConfidence(pc) {
		t.Error("misprediction must reset confidence")
	}
}

func TestStaticPredictor(t *testing.T) {
	p := &Static{Taken: true}
	if !p.Lookup(0).Pred {
		t.Error("always-taken predicted not-taken")
	}
	if (&Static{}).Name() != "always-not-taken" {
		t.Error("bad name")
	}
}

func TestFoldedHistoryCancellation(t *testing.T) {
	// Property: the folded register is a GF(2)-linear function of exactly
	// the last origLen bits — bits older than origLen cancel out. So
	// after pushing origLen zero bits, the register must be zero no
	// matter what preceded them; and it must always fit in compLen bits.
	const origLen, compLen = 19, 10
	f := newFolded(origLen, compLen)
	rng := rand.New(rand.NewSource(9))
	var bits []uint32
	push := func(b uint32) {
		var old uint32
		if len(bits) >= origLen {
			old = bits[len(bits)-origLen]
		}
		f.update(b, old)
		bits = append(bits, b)
		if f.comp >= 1<<compLen {
			t.Fatalf("folded register overflowed: %#x", f.comp)
		}
	}
	for i := 0; i < 500; i++ {
		push(uint32(rng.Intn(2)))
	}
	for i := 0; i < origLen; i++ {
		push(0)
	}
	if f.comp != 0 {
		t.Errorf("fold of all-zero window = %#x, want 0 (old bits must cancel)", f.comp)
	}
}
