package predictor

// Bimodal is a classic table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	ctrs []int8
	mask uint32
}

// NewBimodal returns a bimodal predictor with 2^logSize counters.
func NewBimodal(logSize int) *Bimodal {
	return &Bimodal{ctrs: make([]int8, 1<<logSize), mask: 1<<logSize - 1}
}

// Name implements DirPredictor.
func (p *Bimodal) Name() string { return "bimodal" }

// Lookup implements DirPredictor.
func (p *Bimodal) Lookup(pc uint64) Lookup {
	idx := uint32(pc) & p.mask
	return Lookup{Pred: p.ctrs[idx] >= 0, baseIdx: idx}
}

// OnFetchOutcome implements DirPredictor (bimodal keeps no history).
func (p *Bimodal) OnFetchOutcome(pc uint64, taken bool) {}

// Snapshot implements DirPredictor.
func (p *Bimodal) Snapshot() HistSnap { return HistSnap{} }

// Restore implements DirPredictor.
func (p *Bimodal) Restore(s HistSnap) {}

// OnSquash implements DirPredictor.
func (p *Bimodal) OnSquash() {}

// Train implements DirPredictor.
func (p *Bimodal) Train(pc uint64, l Lookup, taken bool) {
	p.ctrs[l.baseIdx] = counterUpdate(p.ctrs[l.baseIdx], taken, 1)
}

// Gshare XORs a global history register with the PC to index 2-bit
// counters.
type Gshare struct {
	ctrs     []int8
	mask     uint32
	histBits uint
	hist     uint64
}

// NewGshare returns a gshare predictor with 2^logSize counters and
// histBits bits of global history.
func NewGshare(logSize int, histBits uint) *Gshare {
	return &Gshare{
		ctrs:     make([]int8, 1<<logSize),
		mask:     1<<logSize - 1,
		histBits: histBits,
	}
}

// Name implements DirPredictor.
func (p *Gshare) Name() string { return "gshare" }

func (p *Gshare) index(pc uint64, hist uint64) uint32 {
	return uint32(pc^(pc>>16)^hist) & p.mask
}

// Lookup implements DirPredictor.
func (p *Gshare) Lookup(pc uint64) Lookup {
	idx := p.index(pc, p.hist)
	return Lookup{Pred: p.ctrs[idx] >= 0, baseIdx: idx, ghist: p.hist}
}

// OnFetchOutcome implements DirPredictor: speculative history update.
func (p *Gshare) OnFetchOutcome(pc uint64, taken bool) {
	p.hist <<= 1
	if taken {
		p.hist |= 1
	}
	p.hist &= 1<<p.histBits - 1
}

// Snapshot implements DirPredictor.
func (p *Gshare) Snapshot() HistSnap { return HistSnap{ghist: p.hist} }

// Restore implements DirPredictor.
func (p *Gshare) Restore(s HistSnap) { p.hist = s.ghist }

// OnSquash implements DirPredictor.
func (p *Gshare) OnSquash() {}

// Train implements DirPredictor. Training uses the history captured at
// lookup time, so wrong-path pollution of the speculative history does not
// corrupt table updates.
func (p *Gshare) Train(pc uint64, l Lookup, taken bool) {
	p.ctrs[l.baseIdx] = counterUpdate(p.ctrs[l.baseIdx], taken, 1)
}

// Static always predicts one direction; useful for tests and as a
// degenerate baseline.
type Static struct{ Taken bool }

// Name implements DirPredictor.
func (p *Static) Name() string {
	if p.Taken {
		return "always-taken"
	}
	return "always-not-taken"
}

// Lookup implements DirPredictor.
func (p *Static) Lookup(pc uint64) Lookup { return Lookup{Pred: p.Taken} }

// OnFetchOutcome implements DirPredictor.
func (p *Static) OnFetchOutcome(pc uint64, taken bool) {}

// Snapshot implements DirPredictor.
func (p *Static) Snapshot() HistSnap { return HistSnap{} }

// Restore implements DirPredictor.
func (p *Static) Restore(s HistSnap) {}

// OnSquash implements DirPredictor.
func (p *Static) OnSquash() {}

// Train implements DirPredictor.
func (p *Static) Train(pc uint64, l Lookup, taken bool) {}
