package predictor

// ISLTAGE is an ISL-TAGE-class predictor (Seznec, CBP3): a TAGE predictor
// (bimodal base table plus tagged tables indexed with geometrically
// increasing global history lengths) augmented with a loop predictor and a
// small statistical corrector. It is the paper's baseline predictor (§VI).
//
// Speculative global history is updated at fetch with the outcome the
// front-end proceeds with, snapshot at branches/checkpoints, and restored on
// recovery. Tables are trained at retirement using the indices and tags
// captured at prediction time.
type ISLTAGE struct {
	// Base bimodal table.
	base     []int8
	baseMask uint32

	// Tagged tables.
	tables    [numTables][]tageEntry
	histLens  [numTables]uint32
	tableMask uint32
	tagMask   uint16

	// Speculative global history: a circular bit buffer plus folded
	// registers per table (index fold, two tag folds).
	hist     []uint8
	histMask uint32
	pos      uint32
	path     uint32
	foldIdx  [numTables]folded
	foldTag1 [numTables]folded
	foldTag2 [numTables]folded

	// Statistical corrector: bias table plus two history-indexed tables.
	scTables [3][]int8
	scMask   uint32
	scFold   [2]folded
	scLens   [2]uint32
	scThresh int32

	// Loop predictor.
	loop     []loopEntry
	loopMask uint32

	useAltOnNA int8
	tick       uint32
	rng        lfsr
}

type tageEntry struct {
	tag uint16
	ctr int8 // 3-bit signed: -4..3, taken when >= 0
	u   uint8
}

type loopEntry struct {
	tag         uint16
	trip        uint16 // iterations in body direction before the exit
	retiredIter uint16
	specIter    uint16
	conf        uint8
	dir         bool // body direction (the direction taken trip times)
	valid       bool
}

type folded struct {
	comp     uint32
	compLen  uint32
	origLen  uint32
	outPoint uint32
}

func newFolded(origLen, compLen uint32) folded {
	return folded{compLen: compLen, origLen: origLen, outPoint: origLen % compLen}
}

func (f *folded) update(newBit, oldBit uint32) {
	f.comp = f.comp<<1 | newBit
	f.comp ^= oldBit << f.outPoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= 1<<f.compLen - 1
}

const (
	tageLogBase  = 14 // 16K-entry bimodal base
	tageLogTable = 10 // 1K entries per tagged table
	tageTagBits  = 12
	tageHistBuf  = 4096 // must exceed max in-flight branches plus max history
	scLogTable   = 10
	loopLogTable = 7
	loopConfMax  = 7
)

// NewISLTAGE returns the default ISL-TAGE configuration (roughly the 64KB
// CBP3 budget class).
func NewISLTAGE() *ISLTAGE {
	p := &ISLTAGE{
		base:      make([]int8, 1<<tageLogBase),
		baseMask:  1<<tageLogBase - 1,
		tableMask: 1<<tageLogTable - 1,
		tagMask:   1<<tageTagBits - 1,
		hist:      make([]uint8, tageHistBuf),
		histMask:  tageHistBuf - 1,
		scMask:    1<<scLogTable - 1,
		scLens:    [2]uint32{16, 64},
		scThresh:  6,
		loop:      make([]loopEntry, 1<<loopLogTable),
		loopMask:  1<<loopLogTable - 1,
		rng:       lfsr(0x2545f491),
	}
	p.histLens = [numTables]uint32{4, 9, 19, 40, 80, 160, 320, 640}
	for i := 0; i < numTables; i++ {
		p.tables[i] = make([]tageEntry, 1<<tageLogTable)
		p.foldIdx[i] = newFolded(p.histLens[i], tageLogTable)
		p.foldTag1[i] = newFolded(p.histLens[i], tageTagBits)
		p.foldTag2[i] = newFolded(p.histLens[i], tageTagBits-1)
	}
	for i := range p.scTables {
		p.scTables[i] = make([]int8, 1<<scLogTable)
	}
	p.scFold[0] = newFolded(p.scLens[0], scLogTable)
	p.scFold[1] = newFolded(p.scLens[1], scLogTable)
	return p
}

// Name implements DirPredictor.
func (p *ISLTAGE) Name() string { return "isl-tage" }

func (p *ISLTAGE) index(pc uint64, t int) uint32 {
	return (uint32(pc) ^ uint32(pc>>2) ^ uint32(pc>>(5+t)) ^ p.foldIdx[t].comp ^ (p.path & (1<<min32(p.histLens[t], 16) - 1))) & p.tableMask
}

func (p *ISLTAGE) tag(pc uint64, t int) uint16 {
	return uint16(uint32(pc)^p.foldTag1[t].comp^(p.foldTag2[t].comp<<1)) & p.tagMask
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Lookup implements DirPredictor.
func (p *ISLTAGE) Lookup(pc uint64) Lookup {
	var l Lookup
	l.provider, l.altTable = -1, -1
	l.baseIdx = uint32(pc^pc>>2) & p.baseMask
	l.basePred = p.base[l.baseIdx] >= 0

	for t := 0; t < numTables; t++ {
		l.indices[t] = p.index(pc, t)
		l.tags[t] = p.tag(pc, t)
	}
	// Longest and second-longest matching tables.
	for t := numTables - 1; t >= 0; t-- {
		if p.tables[t][l.indices[t]].tag == l.tags[t] {
			if l.provider < 0 {
				l.provider = int8(t)
			} else {
				l.altTable = int8(t)
				break
			}
		}
	}

	l.altPred = l.basePred
	if l.altTable >= 0 {
		l.altPred = p.tables[l.altTable][l.indices[l.altTable]].ctr >= 0
	}
	if l.provider >= 0 {
		e := &p.tables[l.provider][l.indices[l.provider]]
		provPred := e.ctr >= 0
		l.weak = e.ctr == 0 || e.ctr == -1
		newEntry := l.weak && e.u == 0
		if newEntry && p.useAltOnNA >= 0 {
			l.usedAlt = true
			l.tagePred = l.altPred
		} else {
			l.tagePred = provPred
		}
	} else {
		l.usedAlt = true
		l.tagePred = l.basePred
	}
	l.Pred = l.tagePred

	// Statistical corrector: consulted when the provider is weak.
	l.scIdx[0] = uint32(pc) & p.scMask
	l.scIdx[1] = (uint32(pc) ^ p.scFold[0].comp) & p.scMask
	l.scIdx[2] = (uint32(pc>>2) ^ p.scFold[1].comp) & p.scMask
	var sum int32
	for i, idx := range l.scIdx {
		sum += 2*int32(p.scTables[i][idx]) + 1
	}
	if l.tagePred {
		l.scSum = sum
	} else {
		l.scSum = -sum
	}
	if l.weak || l.provider < 0 {
		if l.scSum < -p.scThresh {
			l.usedSC = true
			l.Pred = !l.tagePred
		}
	}

	// Loop predictor: overrides everything when confident.
	le := &p.loop[p.loopIndex(pc)]
	if le.valid && le.tag == p.loopTag(pc) {
		l.loopHit = true
		if le.conf >= 3 {
			l.loopValid = true
			// trip counts the body-direction instances per round, so
			// the exit is the fetch seeing specIter == trip.
			if le.specIter >= le.trip {
				l.loopPred = !le.dir // predict the exit
			} else {
				l.loopPred = le.dir
			}
			l.Pred = l.loopPred
		}
	}
	return l
}

func (p *ISLTAGE) loopIndex(pc uint64) uint32 { return uint32(pc>>2^pc) & p.loopMask }
func (p *ISLTAGE) loopTag(pc uint64) uint16   { return uint16(pc>>9) & 0x3fff }

// OnFetchOutcome implements DirPredictor: pushes the front-end outcome into
// the speculative history and advances the loop predictor's speculative
// iteration counter.
func (p *ISLTAGE) OnFetchOutcome(pc uint64, taken bool) {
	var bit uint8
	if taken {
		bit = 1
	}
	p.hist[p.pos&p.histMask] = bit
	for t := 0; t < numTables; t++ {
		old := uint32(p.hist[(p.pos-p.histLens[t])&p.histMask])
		p.foldIdx[t].update(uint32(bit), old)
		p.foldTag1[t].update(uint32(bit), old)
		p.foldTag2[t].update(uint32(bit), old)
	}
	for i := range p.scFold {
		old := uint32(p.hist[(p.pos-p.scLens[i])&p.histMask])
		p.scFold[i].update(uint32(bit), old)
	}
	p.pos++
	p.path = (p.path<<1 | uint32(pc)&1) & 0xffff

	le := &p.loop[p.loopIndex(pc)]
	if le.valid && le.tag == p.loopTag(pc) {
		if taken == le.dir {
			le.specIter++
		} else {
			le.specIter = 0
		}
	}
}

// Snapshot implements DirPredictor.
func (p *ISLTAGE) Snapshot() HistSnap {
	s := HistSnap{pos: p.pos, path: p.path}
	for t := 0; t < numTables; t++ {
		s.foldIdx[t] = p.foldIdx[t].comp
		s.foldTag1[t] = p.foldTag1[t].comp
		s.foldTag2[t] = p.foldTag2[t].comp
	}
	s.scFold[0] = p.scFold[0].comp
	s.scFold[1] = p.scFold[1].comp
	return s
}

// Restore implements DirPredictor.
func (p *ISLTAGE) Restore(s HistSnap) {
	p.pos, p.path = s.pos, s.path
	for t := 0; t < numTables; t++ {
		p.foldIdx[t].comp = s.foldIdx[t]
		p.foldTag1[t].comp = s.foldTag1[t]
		p.foldTag2[t].comp = s.foldTag2[t]
	}
	p.scFold[0].comp = s.scFold[0]
	p.scFold[1].comp = s.scFold[1]
}

// OnSquash implements DirPredictor: resynchronizes the loop predictor's
// speculative iteration counters with retired state (they are too large to
// checkpoint per branch).
func (p *ISLTAGE) OnSquash() {
	for i := range p.loop {
		p.loop[i].specIter = p.loop[i].retiredIter
	}
}

// Train implements DirPredictor.
func (p *ISLTAGE) Train(pc uint64, l Lookup, taken bool) {
	// Loop predictor update.
	p.trainLoop(pc, l, taken)

	// Statistical corrector update: train whenever it was consulted
	// territory (weak provider) or it flipped the prediction.
	if l.usedSC || ((l.weak || l.provider < 0) && (l.scSum >= -p.scThresh && l.scSum <= p.scThresh)) {
		for i, idx := range l.scIdx {
			want := taken
			c := p.scTables[i][idx]
			p.scTables[i][idx] = counterUpdate(c, want, 31)
		}
	}

	// use_alt_on_na bookkeeping: when the provider was a weak new entry
	// and provider and alt disagreed, learn which to trust.
	if l.provider >= 0 {
		e := &p.tables[l.provider][l.indices[l.provider]]
		provPred := e.ctr >= 0
		newEntry := (e.ctr == 0 || e.ctr == -1) && e.u == 0
		if newEntry && provPred != l.altPred {
			if l.altPred == taken {
				if p.useAltOnNA < 7 {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > -8 {
				p.useAltOnNA--
			}
		}
	}

	// Update provider (and sometimes alt/base) counters.
	if l.provider >= 0 {
		e := &p.tables[l.provider][l.indices[l.provider]]
		e.ctr = counterUpdate(e.ctr, taken, 3)
		if e.u == 0 {
			// Also train the alternate so it stays warm.
			if l.altTable >= 0 {
				a := &p.tables[l.altTable][l.indices[l.altTable]]
				a.ctr = counterUpdate(a.ctr, taken, 3)
			} else {
				p.base[l.baseIdx] = counterUpdate(p.base[l.baseIdx], taken, 1)
			}
		}
		// Usefulness: provider differed from alt and was right/wrong.
		provPred := e.ctr >= 0
		_ = provPred
		if l.tagePred != l.altPred {
			if l.tagePred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
	} else {
		p.base[l.baseIdx] = counterUpdate(p.base[l.baseIdx], taken, 1)
	}

	// Allocate on a TAGE misprediction (before loop/SC overrides).
	if l.tagePred != taken && l.provider < numTables-1 {
		p.allocate(l, taken)
	}

	// Periodic usefulness aging.
	p.tick++
	if p.tick&(1<<18-1) == 0 {
		for t := range p.tables {
			for i := range p.tables[t] {
				p.tables[t][i].u >>= 1
			}
		}
	}
}

func (p *ISLTAGE) allocate(l Lookup, taken bool) {
	start := int(l.provider + 1)
	// Find candidate tables with u == 0; prefer a random one among the
	// shorter eligible histories (standard TAGE uses a skewed choice).
	// Only the first two candidates matter, so track them in scalars —
	// this runs on every TAGE misprediction and must not allocate.
	first, second := -1, -1
	for t := start; t < numTables; t++ {
		if p.tables[t][l.indices[t]].u == 0 {
			if first < 0 {
				first = t
			} else {
				second = t
				break
			}
		}
	}
	if first < 0 {
		for t := start; t < numTables; t++ {
			p.tables[t][l.indices[t]].u--
			if p.tables[t][l.indices[t]].u == 255 { // underflow guard
				p.tables[t][l.indices[t]].u = 0
			}
		}
		return
	}
	// Pick among up to the first two candidates, favoring the shorter.
	pick := first
	if second >= 0 && p.rng.next()&3 == 0 {
		pick = second
	}
	e := &p.tables[pick][l.indices[pick]]
	e.tag = l.tags[pick]
	e.u = 0
	if taken {
		e.ctr = 0
	} else {
		e.ctr = -1
	}
}

func (p *ISLTAGE) trainLoop(pc uint64, l Lookup, taken bool) {
	le := &p.loop[p.loopIndex(pc)]
	tag := p.loopTag(pc)
	if le.valid && le.tag == tag {
		if l.loopValid {
			// Confidence tracking on used predictions.
			if l.loopPred == taken {
				if le.conf < loopConfMax {
					le.conf++
				}
			} else {
				// Wrong: retrain from scratch.
				le.valid = false
				le.conf = 0
				le.retiredIter = 0
				le.specIter = 0
				return
			}
		}
		if taken == le.dir {
			le.retiredIter++
			if le.retiredIter == 0 { // overflow: give up on this loop
				le.valid = false
			}
		} else {
			// Exit observed: does the trip count repeat?
			if le.retiredIter == le.trip {
				if le.conf < loopConfMax {
					le.conf++
				}
			} else {
				le.trip = le.retiredIter
				le.conf = 0
			}
			le.retiredIter = 0
			le.specIter = 0
		}
		return
	}
	// Allocate on a TAGE misprediction. For a loop branch the mispredict
	// is almost always the exit, so the body direction is the opposite
	// of the observed outcome; a mid-body mispredict allocates a useless
	// entry that retrains harmlessly.
	if l.tagePred != taken {
		*le = loopEntry{tag: tag, dir: !taken, valid: true}
	}
}
