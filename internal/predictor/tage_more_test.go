package predictor

import (
	"math/rand"
	"testing"
)

// TestTAGEAllocatesOnMispredict: repeated mispredicts of a history-
// correlated branch must populate tagged entries (providers appear).
func TestTAGEAllocatesOnMispredict(t *testing.T) {
	p := NewISLTAGE()
	rng := rand.New(rand.NewSource(61))
	sawProvider := false
	last := false
	for i := 0; i < 5000; i++ {
		// Branch 0x80 repeats the previous outcome of branch 0x40.
		a := rng.Intn(2) == 0
		l := p.Lookup(0x40)
		p.OnFetchOutcome(0x40, a)
		p.Train(0x40, l, a)
		l2 := p.Lookup(0x80)
		if l2.provider >= 0 {
			sawProvider = true
		}
		p.OnFetchOutcome(0x80, last)
		p.Train(0x80, l2, last)
		last = a
	}
	if !sawProvider {
		t.Error("no tagged-table provider ever matched: allocation broken")
	}
}

// TestTAGEPeriodicPatternLearned: a period-4 pattern (TTTN) needs only
// short history and must be near-perfect.
func TestTAGEPeriodicPatternLearned(t *testing.T) {
	p := NewISLTAGE()
	correct, total := 0, 0
	for i := 0; i < 8000; i++ {
		taken := i%4 != 3
		l := p.Lookup(0x200)
		if i > 4000 {
			total++
			if l.Pred == taken {
				correct++
			}
		}
		p.OnFetchOutcome(0x200, taken)
		p.Train(0x200, l, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.98 {
		t.Errorf("period-4 accuracy = %.3f, want >= 0.98", acc)
	}
}

// TestLoopPredictorVariableTripsStayLow: a loop whose trip count changes
// every round must never reach confident (wrong) predictions that tank
// accuracy below the TAGE fallback.
func TestLoopPredictorVariableTrips(t *testing.T) {
	p := NewISLTAGE()
	rng := rand.New(rand.NewSource(62))
	mis := 0
	total := 0
	bodyMis := 0
	for round := 0; round < 400; round++ {
		trips := 3 + rng.Intn(5)
		for j := 0; j < trips; j++ {
			l := p.Lookup(0x300)
			total++
			if !l.Pred {
				bodyMis++ // predicted exit during the body
			}
			p.OnFetchOutcome(0x300, true)
			p.Train(0x300, l, true)
		}
		l := p.Lookup(0x300)
		total++
		if l.Pred {
			mis++ // missed the exit (expected: exits are random)
		}
		p.OnFetchOutcome(0x300, false)
		p.Train(0x300, l, false)
	}
	// Exits are genuinely unpredictable, but the heavily-biased body
	// direction must stay well predicted: a confident-but-wrong loop
	// entry would blow body accuracy up.
	if float64(bodyMis) > 0.2*float64(total) {
		t.Errorf("body mispredicts %d of %d: loop predictor misfiring", bodyMis, total)
	}
	_ = mis
}

// TestHistSnapValueSemantics: snapshots are values; mutating the predictor
// after taking one must not alter it.
func TestHistSnapValueSemantics(t *testing.T) {
	p := NewISLTAGE()
	for i := 0; i < 100; i++ {
		p.OnFetchOutcome(uint64(i), i%3 == 0)
	}
	s1 := p.Snapshot()
	s2 := s1 // copy
	p.OnFetchOutcome(4096, true)
	p.Restore(s2)
	after := p.Snapshot()
	if after != s1 {
		t.Error("restored snapshot differs from the original")
	}
}

// TestBTBStats: hit/miss counters must track lookups.
func TestBTBStats(t *testing.T) {
	b := NewBTB(4, 2)
	b.Lookup(0x10)
	b.Insert(0x10, 0x99)
	b.Lookup(0x10)
	h, m := b.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1,1", h, m)
	}
}

// TestConfidenceSaturates: the resetting counter must not wrap.
func TestConfidenceSaturates(t *testing.T) {
	c := NewConfidence(8, 4)
	for i := 0; i < 1000; i++ {
		c.Update(0x8, true)
	}
	if !c.HighConfidence(0x8) {
		t.Error("saturated counter lost confidence")
	}
	c.Update(0x8, false)
	if c.HighConfidence(0x8) {
		t.Error("reset failed after saturation")
	}
}
