package prog

import (
	"fmt"
	"sort"

	"cfd/internal/isa"
)

// Builder assembles a Program instruction by instruction, with forward
// label references resolved at Build time. All emit methods return the
// Builder for chaining. Errors (duplicate labels, unresolved references)
// are accumulated and reported by Build.
type Builder struct {
	insts  []isa.Inst
	labels map[string]uint64
	notes  map[uint64]BranchNote
	// fixups maps instruction index → label whose pc must be patched into
	// the PC-relative immediate.
	fixups map[int]string
	errs   []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]uint64),
		notes:  make(map[uint64]BranchNote),
		fixups: make(map[int]string),
	}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return uint64(len(b.insts)) }

// Label binds name to the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate label %q", name))
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// Note annotates the next emitted instruction (normally a branch) for the
// classification study.
func (b *Builder) Note(name string, class BranchClass) *Builder {
	b.notes[b.PC()] = BranchNote{Name: name, Class: class}
	return b
}

func (b *Builder) emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emitToLabel(in isa.Inst, label string) *Builder {
	b.fixups[len(b.insts)] = label
	return b.emit(in)
}

// R emits a three-register ALU operation (ADD, SUB, MUL, ..., CMOVZ).
func (b *Builder) R(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I emits a register-immediate ALU operation (ADDI, SLTI, ...).
func (b *Builder) I(op isa.Op, rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads a constant into rd.
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return b.I(isa.ADDI, rd, isa.Zero, imm)
}

// Mov copies rs into rd.
func (b *Builder) Mov(rd, rs isa.Reg) *Builder {
	return b.I(isa.ADDI, rd, rs, 0)
}

// Load emits a load: rd = mem[base + off].
func (b *Builder) Load(op isa.Op, rd, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
}

// Store emits a store: mem[base + off] = src.
func (b *Builder) Store(op isa.Op, src, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rs1: base, Rs2: src, Imm: off})
}

// Pref emits a software prefetch of base + off.
func (b *Builder) Pref(base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: isa.PREF, Rs1: base, Imm: off})
}

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Jump emits an unconditional jump to a label.
func (b *Builder) Jump(label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: isa.J}, label)
}

// Jal emits a jump-and-link to a label.
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: isa.JAL, Rd: rd}, label)
}

// Jr emits a register-indirect jump.
func (b *Builder) Jr(rs isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.JR, Rs1: rs})
}

// Nop emits a NOP; Halt stops the machine.
func (b *Builder) Nop() *Builder  { return b.emit(isa.Inst{Op: isa.NOP}) }
func (b *Builder) Halt() *Builder { return b.emit(isa.Inst{Op: isa.HALT}) }

// PushBQ pushes (rs != 0) onto the branch queue.
func (b *Builder) PushBQ(rs isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.PushBQ, Rs1: rs})
}

// BranchBQ pops a predicate and branches to label when it is 1.
func (b *Builder) BranchBQ(label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: isa.BranchBQ}, label)
}

// MarkBQ marks the BQ tail; ForwardBQ bulk-pops through the mark.
func (b *Builder) MarkBQ() *Builder    { return b.emit(isa.Inst{Op: isa.MarkBQ}) }
func (b *Builder) ForwardBQ() *Builder { return b.emit(isa.Inst{Op: isa.ForwardBQ}) }

// PushVQ pushes the value of rs onto the value queue; PopVQ pops into rd.
func (b *Builder) PushVQ(rs isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.PushVQ, Rs1: rs})
}
func (b *Builder) PopVQ(rd isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.PopVQ, Rd: rd})
}

// PushTQ pushes a trip count; PopTQ pops it into the TCR; BranchTCR
// tests/decrements the TCR; PopTQOV pops and branches to label on overflow.
func (b *Builder) PushTQ(rs isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.PushTQ, Rs1: rs})
}
func (b *Builder) PopTQ() *Builder { return b.emit(isa.Inst{Op: isa.PopTQ}) }
func (b *Builder) BranchTCR(label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: isa.BranchTCR}, label)
}
func (b *Builder) PopTQOV(label string) *Builder {
	return b.emitToLabel(isa.Inst{Op: isa.PopTQOV}, label)
}

// SaveQueue emits one of the save/restore context-switch instructions with
// a base register and displacement.
func (b *Builder) SaveQueue(op isa.Op, base isa.Reg, off int64) *Builder {
	return b.emit(isa.Inst{Op: op, Rs1: base, Imm: off})
}

// Raw appends a pre-formed instruction verbatim.
func (b *Builder) Raw(in isa.Inst) *Builder { return b.emit(in) }

// Build resolves label references and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for idx, label := range b.fixups {
		pc, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("prog: undefined label %q at pc %d", label, idx)
		}
		insts[idx].Imm = int64(pc) - int64(idx)
	}
	labels := make(map[string]uint64, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	notes := make(map[uint64]BranchNote, len(b.notes))
	for k, v := range b.notes {
		notes[k] = v
	}
	return &Program{Insts: insts, Labels: labels, Notes: notes}, nil
}

// MustBuild is Build that panics on error; for statically known-good
// workload construction. The panic carries the build context — instruction
// count and the labels defined so far — so an init-time failure points at
// the broken program instead of a bare error value.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		labels := make([]string, 0, len(b.labels))
		for l := range b.labels {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		panic(fmt.Sprintf("prog: MustBuild of a broken program: %v (after %d instructions; labels defined: %v)",
			err, len(b.insts), labels))
	}
	return p
}
