// Package prog represents CFD-RISC programs: an instruction sequence plus
// the symbol and branch-annotation metadata the workloads, classifier, and
// simulator share.
package prog

import (
	"fmt"
	"strings"

	"cfd/internal/isa"
)

// BranchClass is the paper's four-way control-flow classification (§II-B),
// refined with the totally/partially separable split and the separable
// loop-branch flavor (§IV-C).
type BranchClass uint8

// Branch classes.
const (
	NotAnalyzed      BranchClass = iota // small contribution to mispredictions
	Hammock                             // small CD region; if-conversion target
	SeparableTotal                      // large CD region, slice fully separable (CFD)
	SeparablePartial                    // slice contains few CD instructions (CFD + if-conversion)
	SeparableLoop                       // separable loop-branch (CFD with the TQ)
	Inseparable                         // slice depends on many CD instructions
	EasyToPredict                       // loop back-edges etc.; predictor handles them
)

// String returns a short human-readable class name.
func (c BranchClass) String() string {
	switch c {
	case NotAnalyzed:
		return "not-analyzed"
	case Hammock:
		return "hammock"
	case SeparableTotal:
		return "separable(total)"
	case SeparablePartial:
		return "separable(partial)"
	case SeparableLoop:
		return "separable(loop-branch)"
	case Inseparable:
		return "inseparable"
	case EasyToPredict:
		return "easy"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Separable reports whether CFD applies to this class.
func (c BranchClass) Separable() bool {
	return c == SeparableTotal || c == SeparablePartial || c == SeparableLoop
}

// BranchNote annotates a static branch for the classification study.
type BranchNote struct {
	Name  string // e.g. "test[i] > theeps"
	Class BranchClass
}

// Program is an assembled CFD-RISC program. PCs are instruction indices.
type Program struct {
	Insts  []isa.Inst
	Labels map[string]uint64 // code labels → pc
	Notes  map[uint64]BranchNote
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// At returns the instruction at pc, or HALT when pc falls outside the
// program (running off the end stops the machine).
func (p *Program) At(pc uint64) isa.Inst {
	if pc >= uint64(len(p.Insts)) {
		return isa.Inst{Op: isa.HALT}
	}
	return p.Insts[pc]
}

// LabelAt returns the pc of a label.
func (p *Program) LabelAt(name string) (uint64, bool) {
	pc, ok := p.Labels[name]
	return pc, ok
}

// Disassemble renders the program with labels and per-branch annotations.
func (p *Program) Disassemble() string {
	byPC := make(map[uint64][]string)
	for name, pc := range p.Labels {
		byPC[pc] = append(byPC[pc], name)
	}
	var b strings.Builder
	for pc, in := range p.Insts {
		for _, l := range byPC[uint64(pc)] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d:  %s", pc, in)
		if note, ok := p.Notes[uint64(pc)]; ok {
			fmt.Fprintf(&b, "    ; %s [%s]", note.Name, note.Class)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Encode returns the binary image of the program.
func (p *Program) Encode() ([]uint64, error) {
	words := make([]uint64, len(p.Insts))
	for i, in := range p.Insts {
		w, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("prog: pc %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// Decode rebuilds a program (without labels or notes) from a binary image.
func Decode(words []uint64) (*Program, error) {
	p := &Program{
		Labels: make(map[string]uint64),
		Notes:  make(map[uint64]BranchNote),
	}
	for i, w := range words {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("prog: word %d: %w", i, err)
		}
		p.Insts = append(p.Insts, in)
	}
	return p, nil
}
