package prog

import (
	"strings"
	"testing"

	"cfd/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 0)                      // 0: addi r1, r0, 0
	b.Label("loop")                 //
	b.I(isa.ADDI, 1, 1, 1)          // 1: r1++
	b.I(isa.SLTI, 2, 1, 10)         // 2: r2 = r1 < 10
	b.Branch(isa.BNE, 2, 0, "loop") // 3: backward branch
	b.Halt()                        // 4
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	br := p.Insts[3]
	if br.Target(3) != 1 {
		t.Errorf("branch target = %d, want 1", br.Target(3))
	}
	if pc, ok := p.LabelAt("loop"); !ok || pc != 1 {
		t.Errorf("LabelAt(loop) = %d,%v", pc, ok)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder()
	b.Branch(isa.BEQ, 1, 0, "done") // 0
	b.Nop()                         // 1
	b.Label("done")
	b.Halt() // 2
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target(0) != 2 {
		t.Errorf("forward target = %d, want 2", p.Insts[0].Target(0))
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestNoteAttachesToNextInstruction(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Note("if (a[i])", SeparableTotal)
	b.BranchBQ("skip")
	b.Label("skip").Halt()
	p := b.MustBuild()
	note, ok := p.Notes[1]
	if !ok || note.Class != SeparableTotal || note.Name != "if (a[i])" {
		t.Errorf("note = %+v, %v", note, ok)
	}
}

func TestAtPastEndReturnsHalt(t *testing.T) {
	p := NewBuilder().Nop().MustBuild()
	if p.At(99).Op != isa.HALT {
		t.Error("At past end must be HALT")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 1234)
	b.Label("l")
	b.R(isa.ADD, 2, 1, 1)
	b.Branch(isa.BNE, 2, 0, "l")
	b.PushBQ(3)
	b.BranchBQ("l")
	b.Halt()
	p := b.MustBuild()
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("decoded Len = %d, want %d", q.Len(), p.Len())
	}
	for i := range p.Insts {
		if q.Insts[i] != p.Insts[i] {
			t.Errorf("inst %d = %+v, want %+v", i, q.Insts[i], p.Insts[i])
		}
	}
}

func TestDisassembleShowsLabelsAndNotes(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Note("hard branch", SeparablePartial)
	b.Branch(isa.BLT, 1, 2, "top")
	b.Halt()
	out := b.MustBuild().Disassemble()
	for _, want := range []string{"top:", "blt", "hard branch", "separable(partial)"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestBranchClassPredicates(t *testing.T) {
	for _, c := range []BranchClass{SeparableTotal, SeparablePartial, SeparableLoop} {
		if !c.Separable() {
			t.Errorf("%v must be separable", c)
		}
	}
	for _, c := range []BranchClass{Hammock, Inseparable, NotAnalyzed, EasyToPredict} {
		if c.Separable() {
			t.Errorf("%v must not be separable", c)
		}
	}
}

func TestBranchClassStrings(t *testing.T) {
	if SeparableLoop.String() != "separable(loop-branch)" {
		t.Errorf("got %q", SeparableLoop.String())
	}
	if BranchClass(99).String() == "" {
		t.Error("unknown class must still render")
	}
}

func TestBuilderCFDEmitters(t *testing.T) {
	b := NewBuilder()
	b.MarkBQ().PushVQ(1).PopVQ(2).PushTQ(3).PopTQ().ForwardBQ()
	b.Label("l")
	b.BranchTCR("l").PopTQOV("l")
	b.SaveQueue(isa.SaveBQ, 5, 128)
	p := b.MustBuild()
	wantOps := []isa.Op{isa.MarkBQ, isa.PushVQ, isa.PopVQ, isa.PushTQ, isa.PopTQ,
		isa.ForwardBQ, isa.BranchTCR, isa.PopTQOV, isa.SaveBQ}
	for i, op := range wantOps {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	// BranchTCR at pc 6 targets label "l" at pc 6 → offset 0.
	if p.Insts[6].Imm != 0 {
		t.Errorf("BranchTCR offset = %d, want 0", p.Insts[6].Imm)
	}
}

// TestMustBuildPanicContext: a MustBuild failure names the broken label and
// reports the build context (instruction count, labels defined) so an
// init-time panic is diagnosable.
func TestMustBuildPanicContext(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("MustBuild with an undefined label did not panic")
		}
		msg, _ := v.(string)
		for _, want := range []string{"missing", "start", "instructions"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	NewBuilder().Label("start").Nop().Jump("missing").MustBuild()
}
