// Package serve is the live-exposition slice of cfdserve (ROADMAP item
// 3): a loopback HTTP server that makes a running sweep inspectable
// without touching its deterministic artifacts.
//
//   - GET /metrics — the obs.Registry in Prometheus text exposition
//     format: runner-cache counters, persistent-store counters, and the
//     host-sampler series.
//   - GET /status — a JSON snapshot of campaign state: per-sweep
//     progress with a simulated-only ETA, in-flight specs, runner and
//     store metrics, and the last N journal events.
//   - GET /debug/pprof/... — the standard Go profiling endpoints.
//
// Everything served is read-only and advisory; the sweep never blocks on
// a scrape. The Tracker folds the journal's event stream into the
// /status snapshot, so the server sees exactly what the journal records.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"cfd/internal/harness"
	"cfd/internal/obs"
	"cfd/internal/obs/journal"
	"cfd/internal/store"
)

// lastEventsDepth bounds the /status journal-event ring.
const lastEventsDepth = 32

// SweepStatus is the live view of the current (or most recent) sweep.
type SweepStatus struct {
	Seq       uint64 `json:"seq"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// Simulated counts completions that ran fresh (neither cache nor
	// store hits) — the denominator of the ETA estimate.
	Simulated   int    `json:"simulated"`
	StoreHits   int    `json:"storeHits"`
	CacheHits   int    `json:"cacheHits"`
	Running     bool   `json:"running"`
	ElapsedSec  float64 `json:"elapsedSec"`
	// ETASec estimates time to sweep completion from simulated-only
	// completions (store and cache hits are near-instant and would skew
	// a naive per-spec average); -1 when there is no basis yet.
	ETASec float64 `json:"etaSec"`
}

// Status is the /status document.
type Status struct {
	Tool      string    `json:"tool"`
	StartedAt time.Time `json:"startedAt"`
	UptimeSec float64   `json:"uptimeSec"`

	Sweeps     uint64       `json:"sweeps"`
	SpecsDone  uint64       `json:"specsDone"`
	Faults     uint64       `json:"faults"`
	Sweep      *SweepStatus `json:"sweep,omitempty"`
	InFlight   []string     `json:"inFlight,omitempty"`
	Runner     *harness.Metrics `json:"runner,omitempty"`
	Store      *store.Metrics   `json:"store,omitempty"`
	Journal    *JournalStatus   `json:"journal,omitempty"`
	LastEvents []journal.Event  `json:"lastEvents,omitempty"`
}

// JournalStatus points at the journal file backing the event stream.
type JournalStatus struct {
	Path    string `json:"path,omitempty"`
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped,omitempty"`
}

// Tracker folds journal events into a live Status snapshot. Subscribe it
// to the journal bus; Snapshot is safe to call concurrently from the
// HTTP handlers.
type Tracker struct {
	mu      sync.Mutex
	started time.Time

	sweeps    uint64
	specsDone uint64
	faults    uint64

	cur        *SweepStatus
	sweepStart time.Time
	inFlight   map[string]struct{}

	last []journal.Event
}

// NewTracker returns a Tracker anchored at now.
func NewTracker() *Tracker {
	return &Tracker{started: time.Now(), inFlight: make(map[string]struct{})}
}

// Observe folds one journal event into the tracker. It is the function
// to pass to journal.Subscribe.
func (t *Tracker) Observe(ev journal.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Type {
	case journal.SweepStart:
		t.sweeps++
		t.cur = &SweepStatus{Seq: ev.Sweep, Total: ev.Total, Running: true}
		t.sweepStart = time.Now()
		t.inFlight = make(map[string]struct{})
	case journal.SpecSubmit:
		t.inFlight[specLabel(ev)] = struct{}{}
	case journal.SpecDone:
		delete(t.inFlight, specLabel(ev))
		t.specsDone++
		if ev.Status == "fault" {
			t.faults++
		}
		if s := t.cur; s != nil && s.Running {
			s.Completed++
			switch {
			case ev.Status == "fault":
				s.Failed++
			}
			switch {
			case ev.CacheHit:
				s.CacheHits++
			case ev.StoreHit:
				s.StoreHits++
			default:
				s.Simulated++
			}
		}
	case journal.SweepFinish:
		if s := t.cur; s != nil && s.Seq == ev.Sweep {
			s.Running = false
		}
	}
	if len(t.last) == lastEventsDepth {
		copy(t.last, t.last[1:])
		t.last = t.last[:lastEventsDepth-1]
	}
	t.last = append(t.last, ev)
}

// specLabel is the human-readable in-flight label for a spec event.
func specLabel(ev journal.Event) string {
	return fmt.Sprintf("%s/%s @ %s", ev.Workload, ev.Variant, ev.Config)
}

// Snapshot assembles the tracker's half of the /status document.
func (t *Tracker) Snapshot() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{
		StartedAt: t.started,
		UptimeSec: time.Since(t.started).Seconds(),
		Sweeps:    t.sweeps,
		SpecsDone: t.specsDone,
		Faults:    t.faults,
	}
	if t.cur != nil {
		s := *t.cur
		if s.Running {
			s.ElapsedSec = time.Since(t.sweepStart).Seconds()
		}
		s.ETASec = eta(s)
		st.Sweep = &s
	}
	for k := range t.inFlight {
		st.InFlight = append(st.InFlight, k)
	}
	sortStrings(st.InFlight)
	st.LastEvents = append(st.LastEvents, t.last...)
	return st
}

// eta estimates seconds to completion from simulated-only completions:
// elapsed / simulated gives the per-simulation cost, times the specs
// still outstanding. Store and cache hits are excluded from the
// denominator — they complete near-instantly and would collapse the
// estimate on a resumed sweep. -1 means "no basis yet".
func eta(s SweepStatus) float64 {
	if !s.Running || s.Completed >= s.Total || s.Simulated == 0 {
		return -1
	}
	per := s.ElapsedSec / float64(s.Simulated)
	return per * float64(s.Total-s.Completed)
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Server is the live observability endpoint for one CLI invocation.
type Server struct {
	// Tool names the producing binary in /status.
	Tool string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *obs.Registry
	// Tracker backs the sweep half of /status; subscribe it to the
	// journal before starting the server.
	Tracker *Tracker
	// Runner and Journal, when set, add their live counters to /status.
	Runner  *harness.Runner
	Journal *journal.Journal

	srv *http.Server
}

// New assembles a Server; wire the pieces, then Start it.
func New(tool string, reg *obs.Registry, tr *Tracker) *Server {
	return &Server{Tool: tool, Registry: reg, Tracker: tr}
}

// Handler returns the server's mux (exported for tests and embedding).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Registry.WritePrometheus(w) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		st := Status{Tool: s.Tool, StartedAt: time.Now()}
		if s.Tracker != nil {
			st = s.Tracker.Snapshot()
		}
		st.Tool = s.Tool
		if s.Runner != nil {
			m := s.Runner.Metrics()
			st.Runner = &m
			if s.Runner.Store != nil {
				sm := s.Runner.Store.Metrics()
				st.Store = &sm
			}
		}
		if s.Journal != nil {
			st.Journal = &JournalStatus{
				Path:    s.Journal.Path(),
				Events:  s.Journal.Events(),
				Dropped: s.Journal.Dropped(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st) //nolint:errcheck // best-effort scrape
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "cfd %s observability\n\n/metrics      Prometheus text exposition\n/status       live sweep status (JSON)\n/debug/pprof  Go profiling endpoints\n", s.Tool)
	})
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:9190" or ":0") and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed
	return ln.Addr(), nil
}

// Shutdown stops the server, waiting up to the context's deadline for
// in-flight scrapes.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
