package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cfd/internal/obs"
	"cfd/internal/obs/journal"
)

// TestTrackerFolds pins the Tracker's event folding: sweep lifecycle,
// in-flight bookkeeping, hit/simulated classification, and the
// last-events ring.
func TestTrackerFolds(t *testing.T) {
	tr := NewTracker()
	tr.Observe(journal.Event{Type: journal.SweepStart, Sweep: 1, Total: 3, Jobs: 2})
	tr.Observe(journal.Event{Type: journal.SpecSubmit, Sweep: 1, Key: "a", Workload: "w", Variant: "base", Config: "cfg"})
	tr.Observe(journal.Event{Type: journal.SpecSubmit, Sweep: 1, Key: "b", Workload: "w", Variant: "cfd", Config: "cfg"})

	st := tr.Snapshot()
	if st.Sweeps != 1 || st.Sweep == nil || !st.Sweep.Running {
		t.Fatalf("mid-sweep snapshot: %+v", st)
	}
	if len(st.InFlight) != 2 {
		t.Fatalf("inFlight = %v", st.InFlight)
	}
	if st.Sweep.ETASec != -1 {
		t.Fatalf("ETA with no simulated completions = %v, want -1", st.Sweep.ETASec)
	}

	tr.Observe(journal.Event{Type: journal.SpecDone, Sweep: 1, Key: "a", Workload: "w", Variant: "base", Config: "cfg", Status: "ok"})
	tr.Observe(journal.Event{Type: journal.SpecDone, Sweep: 1, Key: "b", Workload: "w", Variant: "cfd", Config: "cfg", Status: "fault", Error: "boom", StoreHit: true})
	st = tr.Snapshot()
	if len(st.InFlight) != 0 {
		t.Fatalf("inFlight after done = %v", st.InFlight)
	}
	s := st.Sweep
	if s.Completed != 2 || s.Failed != 1 || s.Simulated != 1 || s.StoreHits != 1 {
		t.Fatalf("sweep counts: %+v", s)
	}
	if st.SpecsDone != 2 || st.Faults != 1 {
		t.Fatalf("totals: %+v", st)
	}
	if s.ETASec < 0 {
		t.Fatalf("ETA with a simulated completion = %v, want >= 0", s.ETASec)
	}

	tr.Observe(journal.Event{Type: journal.SweepFinish, Sweep: 1, Total: 3, Completed: 2})
	st = tr.Snapshot()
	if st.Sweep.Running {
		t.Fatal("sweep still running after finish")
	}
	if st.Sweep.ETASec != -1 {
		t.Fatalf("ETA after finish = %v, want -1", st.Sweep.ETASec)
	}
	if len(st.LastEvents) != 6 {
		t.Fatalf("lastEvents = %d, want 6", len(st.LastEvents))
	}
}

// TestTrackerRing pins the last-events ring bound.
func TestTrackerRing(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < lastEventsDepth*2; i++ {
		tr.Observe(journal.Event{Type: journal.StoreRetry, Seq: uint64(i + 1)})
	}
	st := tr.Snapshot()
	if len(st.LastEvents) != lastEventsDepth {
		t.Fatalf("ring holds %d, want %d", len(st.LastEvents), lastEventsDepth)
	}
	if st.LastEvents[lastEventsDepth-1].Seq != lastEventsDepth*2 {
		t.Fatal("ring did not keep the newest events")
	}
}

// TestEta pins the simulated-only estimator's edge cases.
func TestEta(t *testing.T) {
	cases := []struct {
		s    SweepStatus
		want float64
	}{
		{SweepStatus{Running: true, Total: 10, Completed: 5, Simulated: 0, ElapsedSec: 10}, -1},
		{SweepStatus{Running: false, Total: 10, Completed: 5, Simulated: 5, ElapsedSec: 10}, -1},
		{SweepStatus{Running: true, Total: 10, Completed: 10, Simulated: 10, ElapsedSec: 10}, -1},
		// 10s / 5 simulated = 2s per sim, 5 outstanding → 10s.
		{SweepStatus{Running: true, Total: 10, Completed: 5, Simulated: 5, ElapsedSec: 10}, 10},
		// Resumed sweep: 8 store hits + 2 simulated in 4s → 2s/sim, 90 left → 180s.
		{SweepStatus{Running: true, Total: 100, Completed: 10, Simulated: 2, StoreHits: 8, ElapsedSec: 4}, 180},
	}
	for i, tc := range cases {
		if got := eta(tc.s); got != tc.want {
			t.Errorf("case %d: eta = %v, want %v", i, got, tc.want)
		}
	}
}

// TestServerEndpoints drives the HTTP surface end to end on a loopback
// listener: /metrics serves the Prometheus exposition, /status decodes
// as JSON with the tracker's state folded in, /debug/pprof answers, and
// the index routes.
func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("harness.lookups").Add(42)
	jr := journal.New("test")
	tr := NewTracker()
	jr.Subscribe(tr.Observe)

	srv := New("test", reg, tr)
	srv.Journal = jr
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := "http://" + addr.String()

	jr.Emit(journal.Event{Type: journal.SweepStart, Sweep: 1, Total: 2, Jobs: 1})
	jr.Emit(journal.Event{Type: journal.SpecDone, Sweep: 1, Key: "k", Workload: "w", Variant: "base", Config: "c", Status: "ok"})
	// The tracker observes off the journal's writer goroutine; wait for
	// the events to land before scraping.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := tr.Snapshot(); st.SpecsDone == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tracker never observed the journal events")
		}
		time.Sleep(time.Millisecond)
	}

	body := get(t, base+"/metrics")
	if !strings.Contains(body, "# TYPE cfd_harness_lookups counter") || !strings.Contains(body, "cfd_harness_lookups 42") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	var st Status
	if err := json.Unmarshal([]byte(get(t, base+"/status")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tool != "test" || st.SpecsDone != 1 || st.Sweep == nil || st.Sweep.Total != 2 {
		t.Fatalf("/status = %+v", st)
	}
	if st.Journal == nil || st.Journal.Events == 0 {
		t.Fatalf("/status journal section = %+v", st.Journal)
	}
	if len(st.LastEvents) == 0 {
		t.Fatal("/status has no lastEvents")
	}

	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body := get(t, base+"/"); !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %q", body)
	}
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}

	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestSpecLabel pins the in-flight label format the /status consumers see.
func TestSpecLabel(t *testing.T) {
	ev := journal.Event{Workload: "w", Variant: "cfd", Config: "paper"}
	if got, want := specLabel(ev), "w/cfd @ paper"; got != want {
		t.Fatalf("specLabel = %q, want %q", got, want)
	}
}
