package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// CPIBucket identifies one cycle-attribution bucket of a CPIStack. Every
// simulated cycle is charged to exactly one bucket, so the buckets sum to
// the run's total cycles (the classic top-down CPI-stack invariant).
type CPIBucket int

// Buckets. The order is the rendering and serialization order.
const (
	// CPIRetiring: at least one non-overhead instruction retired.
	CPIRetiring CPIBucket = iota
	// CPICFDOverhead: retiring cycles consumed by CFD bookkeeping
	// instructions (pushes, marks, VQ moves, queue save/restore) — the
	// instruction overhead CFD adds to the program, amortized over retire
	// bandwidth: every RetireWidth bookkeeping retirements convert one
	// retiring cycle into this bucket.
	CPICFDOverhead
	// CPIFetchStall: the window was empty and the front end was filling
	// (pipeline depth, BTB misfetch repair, fetch redirect bubbles).
	CPIFetchStall
	// CPIBQStall: the window was empty and fetch was stalled by the BQ —
	// an architecturally full BQ on a push, or a BQ miss under the
	// stall-fetch policy (§III-C2/C3).
	CPIBQStall
	// CPITQStall: the window was empty and fetch was stalled on a TQ miss.
	CPITQStall
	// CPISpecPopRecovery: empty-window refill cycles after a late push
	// disconfirmed a speculative BQ pop (§III-C2) — the cost of the
	// speculative-pop policy.
	CPISpecPopRecovery
	// CPIRecoverNoData..CPIRecoverMEM: empty-window refill cycles after an
	// ordinary branch/JR misprediction recovery, split by the furthest
	// memory level that fed the branch (the Fig 2a attribution).
	CPIRecoverNoData
	CPIRecoverL1
	CPIRecoverL2
	CPIRecoverL3
	CPIRecoverMEM
	// CPIMemL1..CPIMemDRAM: no retirement because the oldest instruction
	// was an issued load still waiting on the memory hierarchy, split by
	// the level that services it.
	CPIMemL1
	CPIMemL2
	CPIMemL3
	CPIMemDRAM
	// CPIBackend: every other lost cycle — dependency chains, execution
	// latency, structural hazards with a non-empty window.
	CPIBackend

	NumCPIBuckets
)

var cpiBucketNames = [NumCPIBuckets]string{
	"retiring", "cfd-overhead", "fetch-stall", "bq-stall", "tq-stall",
	"specpop-recovery", "recover-nodata", "recover-l1", "recover-l2",
	"recover-l3", "recover-mem", "mem-l1", "mem-l2", "mem-l3", "mem-dram",
	"backend",
}

// String returns the bucket's stable name (also its JSON key).
func (b CPIBucket) String() string {
	if b >= 0 && b < NumCPIBuckets {
		return cpiBucketNames[b]
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// CPIStack is a cycle-attribution stack: one counter per bucket. The zero
// value is ready to use.
type CPIStack struct {
	Buckets [NumCPIBuckets]uint64
}

// Add charges one cycle to bucket b.
func (s *CPIStack) Add(b CPIBucket) { s.Buckets[b]++ }

// AddN charges n cycles to bucket b (idle-skip fast-forward attribution).
func (s *CPIStack) AddN(b CPIBucket, n uint64) { s.Buckets[b] += n }

// Total returns the number of attributed cycles.
func (s *CPIStack) Total() uint64 {
	var t uint64
	for _, v := range s.Buckets {
		t += v
	}
	return t
}

// RecoveryCycles returns the cycles attributed to misprediction recovery at
// the given memory-level index (0 = NoData .. 4 = MEM, mirroring the
// pipeline's MispredByLevel indexing).
func (s *CPIStack) RecoveryCycles(level int) uint64 {
	if level < 0 || level > 4 {
		return 0
	}
	return s.Buckets[CPIRecoverNoData+CPIBucket(level)]
}

// Check verifies the CPI-stack invariant: the buckets must sum exactly to
// cycles.
func (s *CPIStack) Check(cycles uint64) error {
	if t := s.Total(); t != cycles {
		return fmt.Errorf("stats: CPI stack sums to %d cycles, run took %d", t, cycles)
	}
	return nil
}

// Render formats the stack as a table of cycles, cycle share, and CPI
// contribution (bucket cycles per retired instruction). Zero buckets are
// omitted; the total row pins the invariant in the output.
func (s *CPIStack) Render(title string, retired uint64) string {
	total := s.Total()
	t := NewTable(title, "bucket", "cycles", "share", "CPI")
	cpi := func(v uint64) string {
		if retired == 0 {
			return "-"
		}
		return fmt.Sprintf("%.4f", float64(v)/float64(retired))
	}
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		v := s.Buckets[b]
		if v == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = float64(v) / float64(total)
		}
		t.Add(b.String(), fmt.Sprint(v), Share(share), cpi(v))
	}
	totShare := Share(0)
	if total > 0 {
		totShare = Share(1)
	}
	t.Add("total", fmt.Sprint(total), totShare, cpi(total))
	return strings.TrimSuffix(t.String(), "\n")
}

// MarshalJSON serializes the stack as an object keyed by bucket name, in
// bucket order (encoding/json preserves struct-driven ordering only for
// hand-built objects, so the object is assembled explicitly to keep the
// export byte-stable).
func (s CPIStack) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for i := CPIBucket(0); i < NumCPIBuckets; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", i.String(), s.Buckets[i])
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes the named-bucket object form. Unknown bucket names
// are rejected so schema drift fails loudly.
func (s *CPIStack) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*s = CPIStack{}
	for name, v := range m {
		found := false
		for i := CPIBucket(0); i < NumCPIBuckets; i++ {
			if i.String() == name {
				s.Buckets[i] = v
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("stats: unknown CPI bucket %q", name)
		}
	}
	return nil
}
