package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCPIBucketNames(t *testing.T) {
	seen := map[string]bool{}
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		n := b.String()
		if n == "" || strings.HasPrefix(n, "bucket(") {
			t.Errorf("bucket %d has no name", b)
		}
		if seen[n] {
			t.Errorf("duplicate bucket name %q", n)
		}
		seen[n] = true
	}
	if got := CPIBucket(NumCPIBuckets).String(); !strings.HasPrefix(got, "bucket(") {
		t.Errorf("out-of-range bucket name = %q", got)
	}
}

func TestCPIStackCheck(t *testing.T) {
	var s CPIStack
	s.Add(CPIRetiring)
	s.Add(CPIRetiring)
	s.Add(CPIBackend)
	if err := s.Check(3); err != nil {
		t.Errorf("Check(3) = %v, want nil", err)
	}
	if err := s.Check(4); err == nil {
		t.Error("Check(4) on a 3-cycle stack did not fail")
	}
	if s.Total() != 3 {
		t.Errorf("Total = %d, want 3", s.Total())
	}
}

func TestCPIStackRecoveryCycles(t *testing.T) {
	var s CPIStack
	s.Add(CPIRecoverL2)
	s.Add(CPIRecoverL2)
	s.Add(CPIRecoverNoData)
	if got := s.RecoveryCycles(2); got != 2 {
		t.Errorf("RecoveryCycles(2) = %d, want 2", got)
	}
	if got := s.RecoveryCycles(0); got != 1 {
		t.Errorf("RecoveryCycles(0) = %d, want 1", got)
	}
	if got := s.RecoveryCycles(5); got != 0 {
		t.Errorf("RecoveryCycles(5) = %d, want 0", got)
	}
	if got := s.RecoveryCycles(-1); got != 0 {
		t.Errorf("RecoveryCycles(-1) = %d, want 0", got)
	}
}

func TestCPIStackRender(t *testing.T) {
	var s CPIStack
	s.Buckets[CPIRetiring] = 60
	s.Buckets[CPIMemDRAM] = 40
	out := s.Render("cpi", 100)
	if !strings.Contains(out, "retiring") || !strings.Contains(out, "mem-dram") {
		t.Errorf("missing buckets:\n%s", out)
	}
	if strings.Contains(out, "backend") {
		t.Errorf("zero bucket rendered:\n%s", out)
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "100") {
		t.Errorf("missing total row:\n%s", out)
	}
	// Zero-retired render must not divide by zero.
	if out := (&CPIStack{}).Render("empty", 0); !strings.Contains(out, "total") {
		t.Errorf("empty render missing total:\n%s", out)
	}
}

func TestCPIStackJSONRoundTrip(t *testing.T) {
	var s CPIStack
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		s.Buckets[b] = uint64(b) * 7
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Keys appear in bucket order so the export is byte-stable.
	prev := -1
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		i := strings.Index(string(data), `"`+b.String()+`"`)
		if i < 0 {
			t.Fatalf("bucket %q missing from JSON: %s", b, data)
		}
		if i < prev {
			t.Errorf("bucket %q out of order in JSON", b)
		}
		prev = i
	}
	var got CPIStack
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, s)
	}
}

func TestCPIStackJSONUnknownBucket(t *testing.T) {
	var s CPIStack
	if err := json.Unmarshal([]byte(`{"no-such-bucket":1}`), &s); err == nil {
		t.Error("unknown bucket name accepted")
	}
}
