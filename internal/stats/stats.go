// Package stats provides the table and series formatting used by the
// experiment harness to print paper-style tables and figure data.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row. Missing cells render empty; a row with more cells
// than columns is a programmer error (it would silently drop data from a
// paper table) and panics.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("stats: table %q row has %d cells for %d columns: %q",
			t.Title, len(cells), len(t.Columns), cells))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values: strings pass through, float64
// render with two decimals, integers plainly.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Pct formats a ratio as a signed percentage change ("+23.4%").
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}

// Ratio formats a speedup ("1.23x").
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Share formats a fraction as a percentage ("12.3%").
func Share(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Histogram renders value buckets as an ASCII bar chart.
func Histogram(title string, labels []string, values []uint64) string {
	var max uint64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var total uint64
	for _, v := range values {
		total += v
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	for i, v := range values {
		bar := 0
		if max > 0 {
			// 128-bit scaling: v*40 overflows uint64 for large counters.
			hi, lo := bits.Mul64(v, 40)
			bar64, _ := bits.Div64(hi, lo, max)
			bar = int(bar64)
			if v > 0 && bar == 0 {
				// A nonzero bucket must be distinguishable from an
				// empty one.
				bar = 1
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(v) / float64(total)
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-8s %-40s %6.2f%%\n", label, strings.Repeat("#", bar), 100*share)
	}
	return b.String()
}
