package stats

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Add("x", "1")
	tab.Addf("longer-name", 3.14159)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the same prefix width.
	if len(lines[1]) < len("longer-name") {
		t.Error("column width not expanded to fit rows")
	}
}

func TestTableMissingCellsPad(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Add("only")
	if got := len(tab.Rows[0]); got != 2 {
		t.Errorf("short row padded to %d cells, want 2", got)
	}
	_ = tab.String() // must render without panicking
}

func TestTableExtraCellsPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Add with more cells than columns did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "3 cells for 2 columns") {
			t.Errorf("panic message %q lacks cell/column counts", msg)
		}
	}()
	tab := NewTable("demo", "a", "b")
	tab.Add("x", "y", "dropped")
}

func TestFormatters(t *testing.T) {
	if Pct(1.234) != "+23.4%" {
		t.Errorf("Pct = %q", Pct(1.234))
	}
	if Pct(0.9) != "-10.0%" {
		t.Errorf("Pct = %q", Pct(0.9))
	}
	if Ratio(1.5) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(1.5))
	}
	if Share(0.123) != "12.3%" {
		t.Errorf("Share = %q", Share(0.123))
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("h", []string{"0", "1", "2"}, []uint64{1, 2, 1})
	if !strings.Contains(out, "== h ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "50.00%") {
		t.Errorf("missing share:\n%s", out)
	}
	// Empty histogram must not panic.
	_ = Histogram("e", nil, []uint64{0, 0})
}

func TestHistogramSmallBucketVisible(t *testing.T) {
	// 1 out of 1e6: v*40/max rounds to 0, but a nonzero bucket must still
	// render at least one bar character.
	out := Histogram("h", []string{"tiny", "big"}, []uint64{1, 1_000_000})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "#") {
		t.Errorf("nonzero bucket rendered with zero-width bar: %q", lines[1])
	}
	// A zero bucket stays empty.
	out = Histogram("h", []string{"z", "big"}, []uint64{0, 10})
	lines = strings.Split(strings.TrimSpace(out), "\n")
	if strings.Contains(lines[1], "#") {
		t.Errorf("zero bucket rendered with a bar: %q", lines[1])
	}
}

func TestHistogramOverflowSafe(t *testing.T) {
	// v*40 overflows uint64 for v > 2^64/40; the bar math must survive and
	// still scale proportionally.
	big := uint64(1) << 62 // big*40 >> 2^64
	out := Histogram("h", []string{"half", "full"}, []uint64{big / 2, big})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	half := strings.Count(lines[1], "#")
	full := strings.Count(lines[2], "#")
	if full != 40 {
		t.Errorf("max bucket bar = %d, want 40", full)
	}
	if half != 20 {
		t.Errorf("half bucket bar = %d, want 20", half)
	}
}
