package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Add("x", "1")
	tab.Addf("longer-name", 3.14159)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the same prefix width.
	if len(lines[1]) < len("longer-name") {
		t.Error("column width not expanded to fit rows")
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Add("only")
	tab.Add("x", "y", "dropped")
	out := tab.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(1.234) != "+23.4%" {
		t.Errorf("Pct = %q", Pct(1.234))
	}
	if Pct(0.9) != "-10.0%" {
		t.Errorf("Pct = %q", Pct(0.9))
	}
	if Ratio(1.5) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(1.5))
	}
	if Share(0.123) != "12.3%" {
		t.Errorf("Share = %q", Share(0.123))
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("h", []string{"0", "1", "2"}, []uint64{1, 2, 1})
	if !strings.Contains(out, "== h ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "50.00%") {
		t.Errorf("missing share:\n%s", out)
	}
	// Empty histogram must not panic.
	_ = Histogram("e", nil, []uint64{0, 0})
}
