// Package store is a crash-safe, content-addressed, on-disk result store.
//
// The harness keys every simulation by its deterministic RunSpec key; this
// package persists one opaque JSON payload per key so completed work
// survives the process. Entries are written with a crash-safe protocol —
// write to a temp file in the same directory, fsync, then atomically
// rename — so a SIGKILL or power cut at any instant leaves either the
// previous state or the complete new entry, never a torn file that decodes.
//
// Every entry is an envelope carrying the store schema and version, the
// full key (the file name is only its SHA-256), the payload's declared
// schema and version, and a SHA-256 checksum over the exact payload bytes.
// Get re-verifies all of it: a torn, bit-flipped, truncated, stale, or
// mislabeled entry is detected, moved to a quarantine side directory for
// post-mortem, and reported as a miss — graceful degradation (the caller
// re-simulates), never a crash or a silently wrong result.
//
// Transient I/O errors are retried under a small bounded backoff before
// they surface; corruption is never retried (the bytes will not get
// better) and deterministic payload content is never second-guessed.
// Concurrent writers — goroutines or whole processes sharing the
// directory — are safe: temp names are unique per writer and the final
// rename is atomic, so the last complete write wins and readers only ever
// observe complete entries.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cfd/internal/obs"
)

// Envelope schema identification. Version bumps on any incompatible change
// to the envelope layout; stale-versioned entries quarantine on read.
const (
	Schema  = "cfd-store"
	Version = 1
)

// Subdirectories of a store root.
const (
	entriesDir    = "entries"
	quarantineDir = "quarantine"
)

// tmpPattern is the os.CreateTemp pattern for in-flight entry writes; the
// '*' makes every writer's temp name unique, so concurrent writers of the
// same key never collide before their atomic renames.
const tmpPattern = ".tmp-*"

// envelope is the on-disk form of one entry.
type envelope struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Key is the full store key; the entry file name is sha256(Key), so
	// the envelope records the preimage and Get can reject a mislabeled
	// or hash-colliding file.
	Key string `json:"key"`
	// PayloadSchema/PayloadVersion identify the payload's own schema (the
	// store treats payload bytes as opaque); entries written under a
	// different payload schema quarantine on read.
	PayloadSchema  string `json:"payloadSchema"`
	PayloadVersion int    `json:"payloadVersion"`
	// SHA256 is the hex checksum over the exact Payload bytes.
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Metrics is a snapshot of a Store's counters. Hits/Misses describe
// lookups; Quarantines counts corrupted entries detected and set aside;
// Retries counts transient-I/O retry attempts that followed a failure;
// PutFailures/GetFailures count operations that still failed after the
// bounded retries (the caller degrades gracefully: a failed Put keeps the
// result in memory only, a failed Get falls back to re-simulation).
type Metrics struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantines uint64 `json:"quarantines"`
	Retries     uint64 `json:"retries"`
	PutFailures uint64 `json:"putFailures,omitempty"`
	GetFailures uint64 `json:"getFailures,omitempty"`
}

// Store is one on-disk result store rooted at a directory. It is safe for
// concurrent use by multiple goroutines, and multiple processes may share
// one directory: per-key writes are atomic renames, so concurrent writers
// of the same key both converge to a complete, valid entry.
type Store struct {
	dir            string
	payloadSchema  string
	payloadVersion int
	backoff        []time.Duration

	// InjectOpError, when non-nil, is consulted before every filesystem
	// operation with the operation name ("read", "create", "write",
	// "sync", "rename") and target path; a returned error is treated as
	// that operation failing. It exists for tests and fault-injection
	// campaigns exercising the transient-I/O retry path; nil in
	// production. Set it before the store is shared between goroutines.
	InjectOpError func(op, path string) error

	// OnQuarantine, when non-nil, is called after an entry is set aside,
	// with the entry's base file name and the rejection reason. It fires
	// for both internally detected envelope damage and caller-reported
	// payload damage (Quarantine), so an event journal sees every
	// invalidation exactly once. Set before sharing the store; it runs
	// under the quarantine lock and must not call back into the store.
	OnQuarantine func(entry, reason string)

	// OnRetry, when non-nil, is called once per transient-I/O retry
	// attempt, after the Retries counter increments. Same discipline as
	// OnQuarantine: set before sharing, keep it cheap and non-reentrant.
	OnRetry func()

	hits        atomic.Uint64
	misses      atomic.Uint64
	puts        atomic.Uint64
	quarantines atomic.Uint64
	retries     atomic.Uint64
	putFailures atomic.Uint64
	getFailures atomic.Uint64

	// quarantineMu serializes quarantine-name probing so two detections of
	// the same entry cannot race to one side-file name.
	quarantineMu sync.Mutex
}

// Option configures Open.
type Option func(*Store)

// WithBackoff overrides the transient-I/O retry schedule: one retry per
// element, sleeping that element first. An empty (non-nil) schedule
// disables retries.
func WithBackoff(backoff []time.Duration) Option {
	return func(s *Store) { s.backoff = backoff }
}

// defaultBackoff bounds transient-I/O retries: three attempts beyond the
// first, under 40ms total sleep, so a wedged disk degrades the store to a
// pass-through instead of wedging the sweep.
var defaultBackoff = []time.Duration{1 * time.Millisecond, 8 * time.Millisecond, 30 * time.Millisecond}

// Open creates (or reopens) the store rooted at dir for payloads of the
// given schema and version, and sweeps any temp files a crashed writer
// left behind. The directory is created if missing.
func Open(dir, payloadSchema string, payloadVersion int, opts ...Option) (*Store, error) {
	s := &Store{
		dir:            dir,
		payloadSchema:  payloadSchema,
		payloadVersion: payloadVersion,
		backoff:        defaultBackoff,
	}
	for _, o := range opts {
		o(s)
	}
	for _, d := range []string{dir, filepath.Join(dir, entriesDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	// Orphaned temp files are in-flight writes that never renamed (the
	// writer crashed or was killed); they are invisible to Get and safe to
	// drop. A concurrently live writer whose temp is swept simply fails
	// its rename and retries the whole write.
	tmps, err := filepath.Glob(filepath.Join(dir, entriesDir, "*"+tmpPattern[:4]+"*"))
	if err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Metrics returns a snapshot of the store's counters.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Quarantines: s.quarantines.Load(),
		Retries:     s.retries.Load(),
		PutFailures: s.putFailures.Load(),
		GetFailures: s.getFailures.Load(),
	}
}

// Len returns the number of complete entries currently on disk.
func (s *Store) Len() (int, error) {
	des, err := os.ReadDir(filepath.Join(s.dir, entriesDir))
	if err != nil {
		return 0, err
	}
	n := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// entryPath returns the entry file for key: entries/sha256(key).json.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, entriesDir, hex.EncodeToString(sum[:])+".json")
}

// op runs one injectable filesystem step.
func (s *Store) op(name, path string, f func() error) error {
	if h := s.InjectOpError; h != nil {
		if err := h(name, path); err != nil {
			return err
		}
	}
	return f()
}

// withRetry runs f, retrying under the bounded backoff schedule on error.
// Every retry attempt (not the first try) increments the Retries counter.
func (s *Store) withRetry(f func() error) error {
	err := f()
	for _, d := range s.backoff {
		if err == nil {
			return nil
		}
		time.Sleep(d)
		s.retries.Add(1)
		if h := s.OnRetry; h != nil {
			h()
		}
		err = f()
	}
	return err
}

// Get returns the payload stored for key. ok is false on a miss — the key
// was never stored, or its entry was corrupt and has been quarantined. A
// non-nil error means the read itself kept failing after retries
// (corruption is not an error: it degrades to a miss).
func (s *Store) Get(key string) (payload []byte, ok bool, err error) {
	path := s.entryPath(key)
	var data []byte
	err = s.withRetry(func() error {
		return s.op("read", path, func() error {
			var rerr error
			data, rerr = os.ReadFile(path)
			if errors.Is(rerr, fs.ErrNotExist) {
				// A miss is definitive, not transient: stop retrying.
				data = nil
				return nil
			}
			return rerr
		})
	})
	if err != nil {
		s.getFailures.Add(1)
		return nil, false, fmt.Errorf("store: get %s: %w", path, err)
	}
	if data == nil {
		s.misses.Add(1)
		return nil, false, nil
	}
	if reason := s.verify(key, data); reason != "" {
		s.quarantine(path, reason)
		s.misses.Add(1)
		return nil, false, nil
	}
	var env envelope
	if uerr := json.Unmarshal(data, &env); uerr != nil {
		// Unreachable after verify, but never trust a torn decode.
		s.quarantine(path, "decode: "+uerr.Error())
		s.misses.Add(1)
		return nil, false, nil
	}
	s.hits.Add(1)
	return env.Payload, true, nil
}

// verify checks one entry's envelope against key and returns a non-empty
// rejection reason when the entry must be quarantined.
func (s *Store) verify(key string, data []byte) string {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return "malformed JSON (torn or truncated write): " + err.Error()
	}
	switch {
	case env.Schema != Schema:
		return fmt.Sprintf("envelope schema %q, want %q", env.Schema, Schema)
	case env.Version != Version:
		return fmt.Sprintf("envelope version %d, want %d", env.Version, Version)
	case env.Key != key:
		// Both sides: what the entry claims to hold and what the lookup
		// wanted, so a sidecar alone diagnoses a renamed or aliased key.
		return fmt.Sprintf("key mismatch: entry for %q, want %q", env.Key, key)
	case env.PayloadSchema != s.payloadSchema:
		return fmt.Sprintf("payload schema %q, want %q", env.PayloadSchema, s.payloadSchema)
	case env.PayloadVersion != s.payloadVersion:
		return fmt.Sprintf("stale payload version %d, want %d", env.PayloadVersion, s.payloadVersion)
	case env.SHA256 == "":
		return "checksum missing"
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return fmt.Sprintf("checksum mismatch: payload %s, envelope %s", got[:12], env.SHA256)
	}
	return ""
}

// Put stores payload under key with the crash-safe protocol: marshal the
// envelope, write it to a uniquely named temp file in the entries
// directory, fsync, close, and atomically rename over the final name. An
// existing entry for key is replaced. Transient failures retry the whole
// write; a persistent failure is returned (and counted) for the caller to
// degrade on.
func (s *Store) Put(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	env := envelope{
		Schema:         Schema,
		Version:        Version,
		Key:            key,
		PayloadSchema:  s.payloadSchema,
		PayloadVersion: s.payloadVersion,
		SHA256:         hex.EncodeToString(sum[:]),
		Payload:        json.RawMessage(payload),
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("store: encode %q: %w", key, err)
	}
	path := s.entryPath(key)
	err = s.withRetry(func() error { return s.writeAtomic(path, data) })
	if err != nil {
		s.putFailures.Add(1)
		return fmt.Errorf("store: put %s: %w", path, err)
	}
	s.puts.Add(1)
	return nil
}

// writeAtomic performs one temp+fsync+rename attempt.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	var f *os.File
	if err := s.op("create", dir, func() error {
		var cerr error
		f, cerr = os.CreateTemp(dir, filepath.Base(path)+tmpPattern)
		return cerr
	}); err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.op("write", tmp, func() error {
		_, werr := f.Write(data)
		return werr
	}); err != nil {
		return fail(err)
	}
	// fsync before rename: the rename must never become visible ahead of
	// the bytes it names, or a crash could expose a complete-looking file
	// with torn contents.
	if err := s.op("sync", tmp, f.Sync); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.op("rename", path, func() error { return os.Rename(tmp, path) }); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best effort: persist the directory entry too, so the rename itself
	// survives a power cut. Failure here is not worth failing the Put —
	// the entry is already durable-enough for every crash short of power
	// loss, and the next run would simply re-simulate.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Quarantine moves the entry for key (if present) to the quarantine side
// directory. The store calls it internally on every corrupt read; callers
// that detect higher-level payload damage (e.g. a decoded result whose
// spec does not match) use it to invalidate the entry the same way.
func (s *Store) Quarantine(key, reason string) {
	s.quarantine(s.entryPath(key), reason)
}

// quarantine renames an entry file into quarantine/, pairing it with a
// .reason file describing why. Name collisions (the same entry corrupted
// repeatedly) get numeric suffixes.
func (s *Store) quarantine(path, reason string) {
	s.quarantineMu.Lock()
	defer s.quarantineMu.Unlock()
	base := filepath.Base(path)
	for i := 0; ; i++ {
		name := base
		if i > 0 {
			name = fmt.Sprintf("%s.%d", base, i)
		}
		dst := filepath.Join(s.dir, quarantineDir, name)
		if _, err := os.Lstat(dst); err == nil {
			continue // occupied; try the next suffix
		}
		if err := os.Rename(path, dst); err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return // already gone (e.g. a racing quarantine won)
			}
			// Last resort: remove the corrupt entry so it cannot be read
			// again. Losing the post-mortem copy is acceptable; serving
			// corrupt data is not.
			os.Remove(path)
		} else {
			os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
		}
		s.quarantines.Add(1)
		if h := s.OnQuarantine; h != nil {
			h(base, reason)
		}
		return
	}
}

// RegisterMetrics registers the store's counters as pull-based probes on
// reg, so a live /metrics scrape sees the same numbers Metrics reports.
// No-op on a nil registry.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterProbe("store.hits", obs.ProbeFunc(func() float64 { return float64(s.hits.Load()) }))
	reg.RegisterProbe("store.misses", obs.ProbeFunc(func() float64 { return float64(s.misses.Load()) }))
	reg.RegisterProbe("store.puts", obs.ProbeFunc(func() float64 { return float64(s.puts.Load()) }))
	reg.RegisterProbe("store.quarantines", obs.ProbeFunc(func() float64 { return float64(s.quarantines.Load()) }))
	reg.RegisterProbe("store.retries", obs.ProbeFunc(func() float64 { return float64(s.retries.Load()) }))
	reg.RegisterProbe("store.put_failures", obs.ProbeFunc(func() float64 { return float64(s.putFailures.Load()) }))
	reg.RegisterProbe("store.get_failures", obs.ProbeFunc(func() float64 { return float64(s.getFailures.Load()) }))
}
