package store

import (
	"bytes"
	"cfd/internal/obs"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, "test-payload", 1, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir())
	payload := []byte(`{"x":1,"y":"two"}`)
	if err := s.Put("k1", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := s.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %s want %s", got, payload)
	}
	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	m := s.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Puts != 1 || m.Quarantines != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPutReplacesEntry(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Put("k", []byte(`"old"`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte(`"new"`)); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get("k")
	if !ok || string(got) != `"new"` {
		t.Fatalf("got %q ok=%v, want \"new\"", got, ok)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// corrupt applies one named mutation to the single entry file in dir.
func corrupt(t *testing.T, s *Store, key, how string) {
	t.Helper()
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	switch how {
	case "torn":
		data = data[:len(data)/2]
	case "truncated":
		data = nil
	case "bitflip":
		data[len(data)/3] ^= 0x10
	case "stale-envelope-version":
		data = bytes.Replace(data,
			[]byte(fmt.Sprintf(`"version":%d`, Version)),
			[]byte(fmt.Sprintf(`"version":%d`, Version+1)), 1)
	case "stale-payload-version":
		data = bytes.Replace(data, []byte(`"payloadVersion":1`), []byte(`"payloadVersion":99`), 1)
	case "wrong-payload-schema":
		data = bytes.Replace(data, []byte(`"payloadSchema":"test-payload"`), []byte(`"payloadSchema":"other"`), 1)
	case "checksum-stripped":
		var env map[string]json.RawMessage
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		delete(env, "sha256")
		data, err = json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
	case "payload-edit":
		// Valid JSON, valid envelope — only the checksum can catch it.
		data = bytes.Replace(data, []byte(`{"x":1`), []byte(`{"x":2`), 1)
	case "key-mismatch":
		data = bytes.Replace(data, []byte(`"key":"`+key+`"`), []byte(`"key":"imposter"`), 1)
	default:
		t.Fatalf("unknown corruption %q", how)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write corruption: %v", err)
	}
}

func TestCorruptionQuarantines(t *testing.T) {
	cases := []string{
		"torn", "truncated", "bitflip", "stale-envelope-version",
		"stale-payload-version", "wrong-payload-schema",
		"checksum-stripped", "payload-edit", "key-mismatch",
	}
	for _, how := range cases {
		t.Run(how, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir)
			payload := []byte(`{"x":1,"y":"two"}`)
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			corrupt(t, s, "k", how)

			got, ok, err := s.Get("k")
			if err != nil {
				t.Fatalf("corrupt Get must degrade to a miss, got error %v", err)
			}
			if ok {
				t.Fatalf("corrupt entry served as a hit: %s", got)
			}
			if q := s.Metrics().Quarantines; q != 1 {
				t.Fatalf("quarantines = %d, want 1", q)
			}
			// The entry is gone from the hot path and preserved (with a
			// reason) on the side.
			if _, ok, _ := s.Get("k"); ok {
				t.Fatal("entry still readable after quarantine")
			}
			qfiles, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.json*"))
			var reasons int
			for _, f := range qfiles {
				if strings.HasSuffix(f, ".reason") {
					reasons++
				}
			}
			if len(qfiles)-reasons != 1 || reasons != 1 {
				t.Fatalf("quarantine dir: %v", qfiles)
			}
			// Re-writing the key recovers cleanly.
			if err := s.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := s.Get("k"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("after re-Put: ok=%v got=%s", ok, got)
			}
		})
	}
}

func TestRepeatedQuarantineSuffixes(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
		corrupt(t, s, "k", "torn")
		if _, ok, _ := s.Get("k"); ok {
			t.Fatal("corrupt hit")
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.json*"))
	var entries int
	for _, f := range files {
		if !strings.HasSuffix(f, ".reason") {
			entries++
		}
	}
	if entries != 3 {
		t.Fatalf("want 3 quarantined copies, got %d: %v", entries, files)
	}
}

func TestTransientErrorsRetry(t *testing.T) {
	var fails, calls int
	s := open(t, t.TempDir(), WithBackoff([]time.Duration{0, 0, 0}))
	s.InjectOpError = func(op, path string) error {
		if op == "sync" {
			calls++
			if calls <= fails {
				return errors.New("injected EIO")
			}
		}
		return nil
	}

	// Two transient failures, third attempt lands.
	fails, calls = 2, 0
	if err := s.Put("k", []byte(`1`)); err != nil {
		t.Fatalf("Put should survive transient errors: %v", err)
	}
	if m := s.Metrics(); m.Retries != 2 || m.PutFailures != 0 {
		t.Fatalf("metrics after recovered Put: %+v", m)
	}
	if _, ok, _ := s.Get("k"); !ok {
		t.Fatal("recovered Put not readable")
	}

	// Persistent failure: retries exhaust, error surfaces, counted.
	fails, calls = 100, 0
	if err := s.Put("k2", []byte(`2`)); err == nil {
		t.Fatal("Put should fail after retry exhaustion")
	}
	if m := s.Metrics(); m.PutFailures != 1 {
		t.Fatalf("putFailures = %d, want 1", m.PutFailures)
	}
	// The failed write must not leave a visible (or temp) file behind.
	if _, ok, _ := s.Get("k2"); ok {
		t.Fatal("failed Put left a readable entry")
	}
	tmps, _ := filepath.Glob(filepath.Join(s.Dir(), "entries", "*.tmp-*"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temps: %v", tmps)
	}

	s.InjectOpError = func(op, path string) error {
		if op == "read" {
			return errors.New("injected EIO")
		}
		return nil
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Fatal("Get should report persistent read failure")
	}
	if m := s.Metrics(); m.GetFailures != 1 {
		t.Fatalf("getFailures = %d, want 1", m.GetFailures)
	}
}

func TestOpenSweepsOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "entries", "deadbeef.json.tmp-12345")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	open(t, dir) // reopen sweeps
	if _, err := os.Lstat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan temp survived reopen: %v", err)
	}
	if got, ok, _ := s.Get("k"); !ok || string(got) != `1` {
		t.Fatalf("real entry damaged by sweep: ok=%v got=%s", ok, got)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	dir := t.TempDir()
	// Two handles on one directory model two processes; many goroutines
	// per handle model a parallel sweep.
	a := open(t, dir)
	b := open(t, dir)
	payload := []byte(`{"v":42}`)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, s := range []*Store{a, b} {
			wg.Add(1)
			go func(s *Store, i int) {
				defer wg.Done()
				key := fmt.Sprintf("k%d", i%4)
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok, err := s.Get(key); err != nil || (ok && !bytes.Equal(got, payload)) {
					t.Errorf("Get: ok=%v err=%v got=%s", ok, err, got)
				}
			}(s, i)
		}
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		got, ok, err := a.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Fatalf("k%d after convergence: ok=%v err=%v got=%s", i, ok, err, got)
		}
	}
	if q := a.Metrics().Quarantines + b.Metrics().Quarantines; q != 0 {
		t.Fatalf("concurrent writers caused %d quarantines", q)
	}
	if n, _ := a.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
}

// TestHooksAndMetrics pins the observer surface added for the event
// journal and /metrics: OnQuarantine fires once per quarantined entry
// with its base name and reason, OnRetry fires once per retry attempt,
// and RegisterMetrics exposes the counters as probes.
func TestHooksAndMetrics(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, WithBackoff([]time.Duration{time.Millisecond, time.Millisecond}))
	var mu sync.Mutex
	type q struct{ entry, reason string }
	var quarantines []q
	retries := 0
	s.OnQuarantine = func(entry, reason string) {
		mu.Lock()
		quarantines = append(quarantines, q{entry, reason})
		mu.Unlock()
	}
	s.OnRetry = func() {
		mu.Lock()
		retries++
		mu.Unlock()
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)

	if err := s.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk: the next Get must quarantine and fire
	// the hook with the entry's base name.
	path := s.entryPath("k")
	if err := os.WriteFile(path, []byte(`{"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("corrupt Get: ok=%v err=%v", ok, err)
	}
	if len(quarantines) != 1 {
		t.Fatalf("OnQuarantine fired %d times, want 1", len(quarantines))
	}
	if quarantines[0].entry != filepath.Base(path) || quarantines[0].reason == "" {
		t.Fatalf("OnQuarantine got %+v", quarantines[0])
	}

	// Caller-reported damage (the harness's payload-level Quarantine)
	// goes through the same hook.
	if err := s.Put("k2", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	s.Quarantine("k2", "payload mismatch")
	if len(quarantines) != 2 || quarantines[1].reason != "payload mismatch" {
		t.Fatalf("quarantines after caller report: %+v", quarantines)
	}

	// Transient write errors fire OnRetry per attempt.
	fails := 2
	s.InjectOpError = func(op, path string) error {
		if op == "sync" && fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	}
	if err := s.Put("k3", []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", retries)
	}

	snap := reg.Snapshot()
	m := s.Metrics()
	for name, want := range map[string]uint64{
		"store.hits":         m.Hits,
		"store.misses":       m.Misses,
		"store.puts":         m.Puts,
		"store.quarantines":  m.Quarantines,
		"store.retries":      m.Retries,
		"store.put_failures": m.PutFailures,
		"store.get_failures": m.GetFailures,
	} {
		if got := snap[name]; got != float64(want) {
			t.Errorf("probe %s = %v, want %d", name, got, want)
		}
	}
	if snap["store.quarantines"] != 2 || snap["store.retries"] != 2 {
		t.Errorf("probe snapshot: %v", snap)
	}
}

// TestKeyMismatchReasonNamesBothKeys: the .reason sidecar for a key
// mismatch records both sides — the key the entry claims and the key the
// lookup wanted — so the sidecar alone diagnoses an aliased or renamed
// entry without replaying the access.
func TestKeyMismatchReasonNamesBothKeys(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Put("k", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, s, "k", "key-mismatch")
	if _, ok, _ := s.Get("k"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	reasons, _ := filepath.Glob(filepath.Join(dir, "quarantine", "*.reason"))
	if len(reasons) != 1 {
		t.Fatalf("reason sidecars: %v", reasons)
	}
	data, err := os.ReadFile(reasons[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`entry for "imposter"`, `want "k"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("reason %q missing %q", data, want)
		}
	}
}
