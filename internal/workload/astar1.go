package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// astar1like mirrors astar region #1, the paper's case study (Fig 22, §VII-B).
// The loop walks an index array into a large map (random gather: many cache
// misses feeding the branches) with three challenging features:
//
//  1. Two nested hard-to-predict branches; the inner one's memory reference
//     is only performed when the outer predicate holds.
//  2. A short loop-carried dependence: the control-dependent region sets
//     map[x] = fill, which the outer predicate (map[x] != fill) of later
//     iterations reads. The update is monotone (unfilled → filled), exactly
//     like astar's waymap fill numbers, which is what makes the decoupled
//     evaluation correct.
//  3. An early exit when the target cell is filled (astar's early return).
//
// The CFD variant decouples into three loops (Fig 22): the first evaluates
// the outer condition for the chunk; the second — guarded by the popped
// outer predicate — re-evaluates the fresh outer value, performs the inner
// (previously unsafe) load, applies the if-converted loop-carried update
// with conditional moves, and pushes the combined predicate; the third
// guards the control-dependent region with the combined predicate. Both the
// second and third loops duplicate the early-exit check; Mark and Forward
// bulk-pop the excess pushes each time a loop exits early (§IV-A).
//
// Register conventions:
//
//	r1 idx ptr    r2 map base   r3 aux base   r4 remaining  r5 fill
//	r6 total      r7 x          r8 m/p1       r9 q          r10 comb
//	r11 tmp       r12 sum       r13 cnt       r14 out base  r15 const3/r27 endT
//	r16 chunkN    r17 tmp       r18 j         r19 saved idx r20 brk tmp
//	r21 ptr2      r22 ptr3      r23 pf ptr    r24 pf cnt    r25 tmp
const (
	astar1IdxBase = 0x0400_0000
	astar1MapBase = 0x0500_0000
	astar1AuxBase = 0x1500_0000
	astar1OutBase = 0x2500_0000
	astar1Result  = 0x0041_0000
	astar1Total   = 500
)

func init() {
	register(&Spec{
		Name:     "astar1like",
		Analog:   "astar region #1 (SPEC2006, makebound2)",
		Function: "makebound2 analog",
		TimePct:  47,
		Class:    prog.SeparablePartial,
		Variants: []Variant{Base, CFD, DFD, CFDDFD},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildAstar1,
	})
}

func astar1MapN(n int64) int64 {
	mapN := 4 * n
	if mapN < 1<<14 {
		mapN = 1 << 14
	}
	return mapN
}

func astar1Mem(n int64) (*mem.Memory, int64) {
	rng := rngFor("astar1like")
	mapN := astar1MapN(n)
	m := mem.New()
	idx := make([]uint64, n)
	endT := uint64(mapN - 1) // reserved target index, planted once
	for i := range idx {
		idx[i] = uint64(rng.Int63n(mapN - 1))
	}
	// Plant the early-exit target ~95% through the index stream.
	exitPos := int(float64(n) * 0.95)
	if exitPos >= int(n) {
		exitPos = int(n) - 1
	}
	idx[exitPos] = endT
	m.WriteUint64s(astar1IdxBase, idx)

	mapArr := make([]uint64, mapN)
	auxArr := make([]uint64, mapN)
	const fill = 7
	for i := range mapArr {
		if rng.Intn(100) < 45 {
			mapArr[i] = fill // ~45% pre-filled: outer predicate ~55% taken
		} else {
			mapArr[i] = uint64(1 + rng.Intn(5))
		}
		auxArr[i] = uint64(rng.Int63n(1000)) // ~50% pass the inner test
	}
	mapArr[endT] = 1 // target must be unfilled
	auxArr[endT] = 0 // and pass the inner test
	m.WriteUint64s(astar1MapBase, mapArr)
	m.WriteUint64s(astar1AuxBase, auxArr)
	return m, mapN
}

func astar1Prolog(b *prog.Builder, n, mapN int64) {
	b.Li(1, astar1IdxBase)
	b.Li(2, astar1MapBase)
	b.Li(3, astar1AuxBase)
	b.Li(4, n)
	b.Li(5, 7) // fill
	b.Li(6, astar1Total)
	b.Li(12, 0) // sum
	b.Li(13, 0) // cnt
	b.Li(14, astar1OutBase)
	b.Li(15, 3)      // CD-region multiplier constant
	b.Li(27, mapN-1) // endT
}

func astar1Epilog(b *prog.Builder) {
	b.Label("regiondone")
	b.Li(30, astar1Result)
	b.Store(isa.SD, 12, 30, 0)
	b.Store(isa.SD, 13, 30, 8)
	b.Halt()
}

// astar1CD emits the third-loop control-dependent region: x in r7, q
// (aux[x]) in r9; updates sum (r12), cnt (r13), appends x and a derived
// heuristic value to out. The region is deliberately large — bound
// maintenance, priority computation, appends — which is exactly what makes
// the branch unsuitable for if-conversion and CFD profitable.
func astar1CD(b *prog.Builder) {
	b.R(isa.ADD, 12, 12, 9)
	b.R(isa.ADD, 12, 12, 7)
	b.I(isa.SHLI, 11, 13, 4)
	b.R(isa.ADD, 11, 11, 14)
	b.Store(isa.SD, 7, 11, 0) // out[2*cnt] = x
	// Heuristic/priority computation over x and q.
	b.R(isa.MUL, 25, 9, 15)
	b.I(isa.ADDI, 25, 25, 41)
	b.R(isa.XOR, 26, 25, 7)
	b.I(isa.SHRI, 26, 26, 3)
	b.R(isa.ADD, 25, 25, 26)
	b.I(isa.SHLI, 26, 25, 1)
	b.R(isa.SUB, 26, 26, 9)
	b.R(isa.ADD, 12, 12, 26)
	b.Store(isa.SD, 25, 11, 8) // out[2*cnt+1] = priority
	b.I(isa.ADDI, 13, 13, 1)
	b.R(isa.XOR, 25, 12, 13)
	b.I(isa.SHRI, 25, 25, 1)
	b.R(isa.ADD, 12, 12, 25)
}

// emitBaseIter emits one baseline iteration body (shared by base and DFD).
// Labels are suffixed so the caller can instantiate it in different loops.
func astar1BaseBody(b *prog.Builder, sfx string) {
	b.Load(isa.LD, 7, 1, 0) // x = idx[i]
	b.I(isa.SHLI, 11, 7, 3)
	b.R(isa.ADD, 11, 11, 2)
	b.Load(isa.LD, 8, 11, 0) // m = map[x]
	b.Note("map[x] != fill", prog.SeparablePartial)
	b.Branch(isa.BEQ, 8, 5, "skip"+sfx) // outer: skip when filled
	b.I(isa.SHLI, 11, 7, 3)
	b.R(isa.ADD, 11, 11, 3)
	b.Load(isa.LD, 9, 11, 0) // q = aux[x] (only safe under the outer predicate)
	b.Note("aux[x] <= total", prog.SeparableTotal)
	b.Branch(isa.BLT, 6, 9, "skip"+sfx) // inner: skip when q > total
	// Loop-carried update: map[x] = fill.
	b.I(isa.SHLI, 11, 7, 3)
	b.R(isa.ADD, 11, 11, 2)
	b.Store(isa.SD, 5, 11, 0)
	astar1CD(b)
	b.Note("x == endT (early exit)", prog.EasyToPredict)
	b.Branch(isa.BEQ, 7, 27, "regiondone")
	b.Label("skip" + sfx)
	b.I(isa.ADDI, 1, 1, 8)
}

func buildAstar1(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	m, mapN := astar1Mem(n)
	b := prog.NewBuilder()
	astar1Prolog(b, n, mapN)

	switch v {
	case Base:
		b.Label("loop")
		astar1BaseBody(b, "0")
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "loop")
		astar1Epilog(b)

	case DFD:
		// Fig 16: a prefetch loop carrying only the branch-feeding loads
		// and their address slices precedes each chunk of the original.
		b.Label("chunk")
		b.Li(16, ChunkSize)
		b.R(isa.SLT, 17, 4, 16)
		b.R(isa.CMOVNZ, 16, 4, 17)
		b.Mov(23, 1)
		b.Mov(24, 16)
		b.Label("pf")
		b.Load(isa.LD, 7, 23, 0)
		b.I(isa.SHLI, 11, 7, 3)
		b.R(isa.ADD, 25, 11, 2)
		b.Pref(25, 0) // map[x]
		b.R(isa.ADD, 25, 11, 3)
		b.Pref(25, 0) // aux[x]
		b.I(isa.ADDI, 23, 23, 8)
		b.I(isa.ADDI, 24, 24, -1)
		b.Branch(isa.BNE, 24, 0, "pf")
		b.Mov(18, 16)
		b.Label("loop")
		astar1BaseBody(b, "0")
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "loop")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")
		astar1Epilog(b)

	case CFD, CFDDFD:
		// Two BQ streams share the architectural BQ, so the chunk is
		// half the BQ size.
		const chunk = ChunkSize / 2
		b.Label("chunk")
		b.Li(16, chunk)
		b.R(isa.SLT, 17, 4, 16)
		b.R(isa.CMOVNZ, 16, 4, 17)
		if v == CFDDFD {
			b.Mov(23, 1)
			b.Mov(24, 16)
			b.Label("pf")
			b.Load(isa.LD, 7, 23, 0)
			b.I(isa.SHLI, 11, 7, 3)
			b.R(isa.ADD, 25, 11, 2)
			b.Pref(25, 0)
			b.R(isa.ADD, 25, 11, 3)
			b.Pref(25, 0)
			b.I(isa.ADDI, 23, 23, 8)
			b.I(isa.ADDI, 24, 24, -1)
			b.Branch(isa.BNE, 24, 0, "pf")
		}
		// Loop 1: outer-condition slice (stream 1).
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Label("gen")
		b.Load(isa.LD, 7, 1, 0)
		b.I(isa.SHLI, 11, 7, 3)
		b.R(isa.ADD, 11, 11, 2)
		b.Load(isa.LD, 8, 11, 0)
		b.R(isa.SEQ, 8, 8, 5)
		b.I(isa.XORI, 8, 8, 1) // p1 = (map[x] != fill)
		b.PushBQ(8)
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		b.MarkBQ() // end of stream 1
		// Loop 2: guarded combined-condition evaluation with the
		// if-converted loop-carried update (stream 2).
		b.Mov(18, 16)
		b.Mov(21, 19)
		b.Label("mid")
		b.Note("map[x] != fill (decoupled guard)", prog.SeparablePartial)
		b.BranchBQ("midwork")
		b.PushBQ(0) // outer false: combined predicate is 0
		b.Jump("midskip")
		b.Label("midwork")
		b.Load(isa.LD, 7, 21, 0)
		b.I(isa.SHLI, 11, 7, 3)
		b.R(isa.ADD, 11, 11, 2)
		b.Load(isa.LD, 8, 11, 0) // fresh m (sees this chunk's updates)
		b.R(isa.SEQ, 25, 8, 5)
		b.I(isa.XORI, 25, 25, 1) // fresh p1
		b.I(isa.SHLI, 17, 7, 3)
		b.R(isa.ADD, 17, 17, 3)
		b.Load(isa.LD, 9, 17, 0) // q = aux[x] (safe: outer held at chunk start)
		b.R(isa.SLT, 10, 6, 9)
		b.I(isa.XORI, 10, 10, 1) // q <= total
		b.R(isa.AND, 10, 10, 25) // comb
		// If-converted update: store fill when comb, else the old value.
		b.Mov(17, 8)
		b.R(isa.CMOVNZ, 17, 5, 10)
		b.Store(isa.SD, 17, 11, 0)
		b.PushBQ(10)
		// Duplicated early-exit check (break, not return).
		b.R(isa.SEQ, 20, 7, 27)
		b.R(isa.AND, 20, 20, 10)
		b.Branch(isa.BNE, 20, 0, "midbreak")
		b.Label("midskip")
		b.I(isa.ADDI, 21, 21, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "mid")
		b.Label("midbreak")
		b.ForwardBQ() // discard stream-1 leftovers
		b.MarkBQ()    // end of stream 2
		// Loop 3: control-dependent region guarded by the combined
		// predicate.
		b.Mov(18, 16)
		b.Mov(22, 19)
		b.Label("fin")
		b.Note("combined (decoupled)", prog.SeparableTotal)
		b.BranchBQ("finwork")
		b.Jump("finskip")
		b.Label("finwork")
		b.Load(isa.LD, 7, 22, 0)
		b.I(isa.SHLI, 11, 7, 3)
		b.R(isa.ADD, 11, 11, 3)
		b.Load(isa.LD, 9, 11, 0)
		astar1CD(b)
		b.R(isa.SEQ, 20, 7, 27)
		b.Branch(isa.BNE, 20, 0, "finbreak")
		b.Label("finskip")
		b.I(isa.ADDI, 22, 22, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "fin")
		b.Label("finbreak")
		b.ForwardBQ() // discard stream-2 leftovers
		// The early exit ends the region; otherwise continue chunks.
		b.Branch(isa.BNE, 20, 0, "regiondone")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")
		astar1Epilog(b)

	default:
		return nil, nil, badVariant("astar1like", v)
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}
