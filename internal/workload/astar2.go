package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// astar2like mirrors astar region #2 (Fig 14, §VII-D): an outer loop whose
// inner loop has a data-dependent trip count bound[i] in 0..9 — a separable
// loop-branch. The predictor cannot learn when the inner loop exits. After
// CFD(TQ) removes the loop-branch mispredictions, the hard if inside the
// inner loop body dominates (Fig 28), which CFD(BQ) then removes.
//
// Variants: base; cfdtq (trip counts through the TQ); cfdbq (BQ on the
// inner if only); cfdbqtq (both).
//
// Register conventions:
//
//	r1 bound ptr  r2 data ptr   r3 out base   r4 remaining  r5 t
//	r6 j          r7 v          r8 pred       r9-r11 temps  r12 acc
//	r13 cnt       r16 chunkN    r17 tmp       r18 i         r19 saved bound
//	r21 saved data r22 ptr2     r23 ptr3
const (
	astar2BoundBase = 0x0600_0000
	astar2DataBase  = 0x0700_0000
	astar2OutBase   = 0x0800_0000
	astar2Result    = 0x0042_0000
	astar2MaxTrip   = 10
)

func init() {
	register(&Spec{
		Name:     "astar2like",
		Analog:   "astar region #2 (SPEC2006, loop-branch)",
		Function: "wayobj::fill analog",
		TimePct:  30,
		Class:    prog.SeparableLoop,
		Variants: []Variant{Base, CFDTQ, CFDBQ, CFDBQTQ},
		DefaultN: 60_000,
		TestN:    2_000,
		Build:    buildAstar2,
	})
}

func astar2Mem(n int64) *mem.Memory {
	rng := rngFor("astar2like")
	m := mem.New()
	bound := make([]uint64, n)
	data := make([]uint64, n*astar2MaxTrip)
	for i := range bound {
		bound[i] = uint64(rng.Intn(astar2MaxTrip)) // 0..9 trips, like astar
	}
	for i := range data {
		data[i] = uint64(rng.Int63n(1 << 20))
	}
	m.WriteUint64s(astar2BoundBase, bound)
	m.WriteUint64s(astar2DataBase, data)
	return m
}

func astar2Prolog(b *prog.Builder, n int64) {
	b.Li(1, astar2BoundBase)
	b.Li(2, astar2DataBase)
	b.Li(3, astar2OutBase)
	b.Li(4, n)
	b.Li(12, 0)
	b.Li(13, 0)
}

func astar2Epilog(b *prog.Builder) {
	b.Li(30, astar2Result)
	b.Store(isa.SD, 12, 30, 0)
	b.Store(isa.SD, 13, 30, 8)
	b.Halt()
}

// astar2CD emits the inner if's control-dependent region: v in r7; updates
// acc (r12), cnt (r13), appends to out.
func astar2CD(b *prog.Builder) {
	b.I(isa.SHLI, 9, 7, 1)
	b.R(isa.ADD, 12, 12, 9)
	b.I(isa.SHLI, 10, 13, 3)
	b.R(isa.ADD, 10, 10, 3)
	b.Store(isa.SD, 12, 10, 0) // out[cnt] = acc
	b.I(isa.ADDI, 13, 13, 1)
	b.R(isa.XOR, 11, 12, 7)
	b.I(isa.SHRI, 11, 11, 2)
	b.R(isa.ADD, 12, 12, 11)
}

// astar2InnerIf emits the data-dependent if over v (r7): pred = v has an
// odd popcount-ish mix — effectively random.
func astar2Pred(b *prog.Builder) {
	b.I(isa.SHRI, 8, 7, 7)
	b.R(isa.XOR, 8, 8, 7)
	b.I(isa.ANDI, 8, 8, 1)
}

func buildAstar2(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	b := prog.NewBuilder()
	astar2Prolog(b, n)

	// Strip-mine chunk: the BQ variants push up to 10 predicates per
	// outer iteration, so 12 outer iterations bound the BQ at 120 < 128.
	chunk := int64(12)
	if v == CFDTQ {
		chunk = 64
	}

	switch v {
	case Base:
		b.Label("outer")
		b.Load(isa.LD, 5, 1, 0) // t = bound[i]
		b.Li(6, 0)
		b.Label("inner")
		b.Note("j < bound[i] (loop-branch)", prog.SeparableLoop)
		b.Branch(isa.BGE, 6, 5, "innerdone")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2Pred(b)
		b.Note("mix(v) odd", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "noif")
		astar2CD(b)
		b.Label("noif")
		b.I(isa.ADDI, 6, 6, 1)
		b.Jump("inner")
		b.Label("innerdone")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "outer")
		astar2Epilog(b)

	case CFDTQ:
		b.Label("chunkL")
		b.Li(16, chunk)
		b.R(isa.SLT, 17, 4, 16)
		b.R(isa.CMOVNZ, 16, 4, 17)
		// Loop 1: trip-count generation.
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Label("gen")
		b.Load(isa.LD, 5, 1, 0)
		b.PushTQ(5)
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		// Loop 2: TCR-driven inner looping.
		b.Mov(18, 16)
		b.Label("outer")
		b.PopTQ()
		b.Li(6, 0)
		b.Jump("test")
		b.Label("body")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2Pred(b)
		b.Note("mix(v) odd", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "noif")
		astar2CD(b)
		b.Label("noif")
		b.I(isa.ADDI, 6, 6, 1)
		b.Label("test")
		b.Note("j < bound[i] (TCR)", prog.SeparableLoop)
		b.BranchTCR("body")
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "outer")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunkL")
		astar2Epilog(b)

	case CFDBQ:
		b.Label("chunkL")
		b.Li(16, chunk)
		b.R(isa.SLT, 17, 4, 16)
		b.R(isa.CMOVNZ, 16, 4, 17)
		// Loop 1: walk the chunk's inner iterations, pushing the inner
		// if's predicates. The hard loop-branch remains in both loops:
		// CFD(BQ) alone only removes the if's mispredictions (Fig 28).
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Mov(21, 2)
		b.Label("gen")
		b.Load(isa.LD, 5, 1, 0)
		b.Li(6, 0)
		b.Label("gentest")
		b.Note("j < bound[i] (loop-branch)", prog.SeparableLoop)
		b.Branch(isa.BGE, 6, 5, "gendone")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2Pred(b)
		b.PushBQ(8)
		b.I(isa.ADDI, 6, 6, 1)
		b.Jump("gentest")
		b.Label("gendone")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		// Loop 2: consume.
		b.Mov(18, 16)
		b.Mov(1, 19)
		b.Mov(2, 21)
		b.Label("outer")
		b.Load(isa.LD, 5, 1, 0)
		b.Li(6, 0)
		b.Jump("test")
		b.Label("body")
		b.Note("mix(v) odd (decoupled)", prog.SeparableTotal)
		b.BranchBQ("doif")
		b.Jump("noif")
		b.Label("doif")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2CD(b)
		b.Label("noif")
		b.I(isa.ADDI, 6, 6, 1)
		b.Label("test")
		b.Note("j < bound[i] (loop-branch 2)", prog.SeparableLoop)
		b.Branch(isa.BLT, 6, 5, "body")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "outer")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunkL")
		astar2Epilog(b)

	case CFDBQTQ:
		// Three loops; the trip count is pushed twice so both the
		// predicate-generation loop and the consume loop run TCR-driven.
		// No hard branch survives anywhere — which is why BQ+TQ gains
		// exceed the sum of the individual gains (Fig 28).
		b.Label("chunkL")
		b.Li(16, chunk)
		b.R(isa.SLT, 17, 4, 16)
		b.R(isa.CMOVNZ, 16, 4, 17)
		// Loop 1: trip counts for the predicate-generation loop.
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Mov(21, 2)
		b.Label("gen")
		b.Load(isa.LD, 5, 1, 0)
		b.PushTQ(5)
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		// Loop 2: TCR-driven predicate generation.
		b.Mov(18, 16)
		b.Label("mid")
		b.PopTQ()
		b.Li(6, 0)
		b.Jump("midtest")
		b.Label("midbody")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2Pred(b)
		b.PushBQ(8)
		b.I(isa.ADDI, 6, 6, 1)
		b.Label("midtest")
		b.Note("j < bound[i] (TCR gen)", prog.SeparableLoop)
		b.BranchTCR("midbody")
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "mid")
		// Re-push the trip counts for the consume loop (the reloads hit
		// L1: the chunk's bound[] lines are resident).
		b.Mov(18, 16)
		b.Mov(22, 19)
		b.Label("regen")
		b.Load(isa.LD, 5, 22, 0)
		b.PushTQ(5)
		b.I(isa.ADDI, 22, 22, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "regen")
		// Loop 3: TCR-driven consumption.
		b.Mov(18, 16)
		b.Mov(2, 21)
		b.Label("outer")
		b.PopTQ()
		b.Li(6, 0)
		b.Jump("test")
		b.Label("body")
		b.Note("mix(v) odd (decoupled)", prog.SeparableTotal)
		b.BranchBQ("doif")
		b.Jump("noif")
		b.Label("doif")
		b.I(isa.SHLI, 9, 6, 3)
		b.R(isa.ADD, 9, 9, 2)
		b.Load(isa.LD, 7, 9, 0)
		astar2CD(b)
		b.Label("noif")
		b.I(isa.ADDI, 6, 6, 1)
		b.Label("test")
		b.Note("j < bound[i] (TCR)", prog.SeparableLoop)
		b.BranchTCR("body")
		b.I(isa.ADDI, 2, 2, 8*astar2MaxTrip)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "outer")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunkL")
		astar2Epilog(b)

	default:
		return nil, nil, badVariant("astar2like", v)
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, astar2Mem(n), nil
}
