package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// Classification-study workloads (paper §II): these exist so the Fig 6
// control-flow breakdown has all four classes represented. They only build
// the Base variant.
//
//   - hammocklike: a hard branch guarding a tiny control-dependent region —
//     the if-conversion class.
//   - inseparablelike: the branch's predicate depends on state computed by
//     its own control-dependent instructions (a serial loop-carried
//     dependence) — CFD does not apply.
//   - streamlike: loop-only control flow, easy to predict — the excluded /
//     not-analyzed slice.

func init() {
	register(&Spec{
		Name:     "hammocklike",
		Analog:   "hammock-dominated kernels (e.g. hmmer-style max updates)",
		Function: "clamp/abs analog",
		TimePct:  50,
		Class:    prog.Hammock,
		Variants: []Variant{Base},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildHammock,
	})
	register(&Spec{
		Name:     "inseparablelike",
		Analog:   "serial adaptive kernels (inseparable class)",
		Function: "state-machine analog",
		TimePct:  60,
		Class:    prog.Inseparable,
		Variants: []Variant{Base},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildInseparable,
	})
	register(&Spec{
		Name:     "streamlike",
		Analog:   "predictable streaming kernels (excluded slice)",
		Function: "checksum analog",
		TimePct:  90,
		Class:    prog.EasyToPredict,
		Variants: []Variant{Base},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildStreamEasy,
	})
	register(&Spec{
		Name:     "h264like",
		Analog:   "well-predicted media kernels (SPEC2006, excluded slice)",
		Function: "mode-decision analog",
		TimePct:  70,
		Class:    prog.EasyToPredict,
		Variants: []Variant{Base},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildH264,
	})
}

const (
	classArrBase = 0x1600_0000
	classResult  = 0x004a_0000
	classArrN    = 32 << 10
)

func classMem(name string, mod int64) *mem.Memory {
	rng := rngFor(name)
	m := mem.New()
	arr := make([]uint64, classArrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(mod))
	}
	m.WriteUint64s(classArrBase, arr)
	return m
}

func classProlog(b *prog.Builder, n int64) (passN int64) {
	passN = n
	if passN > classArrN {
		passN = classArrN
	}
	passes := (n + passN - 1) / passN
	b.Li(12, 0)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, classArrBase)
	b.Li(4, passN)
	return passN
}

func classEpilog(b *prog.Builder) {
	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, classResult)
	b.Store(isa.SD, 12, 30, 0)
	b.Halt()
}

func buildHammock(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	if v != Base {
		return nil, nil, badVariant("hammocklike", v)
	}
	b := prog.NewBuilder()
	classProlog(b, n)
	b.Li(3, 500)
	b.Label("loop")
	b.Load(isa.LD, 7, 1, 0)
	b.Note("x < k (hammock)", prog.Hammock)
	b.Branch(isa.BGE, 7, 3, "skip")
	// Tiny CD region: an if-conversion candidate.
	b.I(isa.ADDI, 12, 12, 1)
	b.Label("skip")
	b.R(isa.ADD, 12, 12, 7)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 4, 4, -1)
	b.Branch(isa.BNE, 4, 0, "loop")
	classEpilog(b)
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, classMem("hammocklike", 1000), nil
}

func buildInseparable(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	if v != Base {
		return nil, nil, badVariant("inseparablelike", v)
	}
	b := prog.NewBuilder()
	b.Li(15, 3)
	classProlog(b, n)
	b.Label("loop")
	b.Load(isa.LD, 7, 1, 0)
	b.I(isa.ANDI, 8, 12, 1) // predicate reads the accumulator...
	b.Note("acc odd (inseparable)", prog.Inseparable)
	b.Branch(isa.BEQ, 8, 0, "even")
	// ...which this control-dependent region rewrites: a loop-carried
	// dependence through many CD instructions.
	b.R(isa.MUL, 12, 12, 15)
	b.R(isa.ADD, 12, 12, 7)
	b.I(isa.ADDI, 12, 12, 1)
	b.R(isa.XOR, 12, 12, 7)
	b.Jump("next")
	b.Label("even")
	b.I(isa.SHRI, 12, 12, 1)
	b.R(isa.ADD, 12, 12, 7)
	b.Label("next")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 4, 4, -1)
	b.Branch(isa.BNE, 4, 0, "loop")
	classEpilog(b)
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, classMem("inseparablelike", 1<<20), nil
}

// buildH264 models the paper's *excluded* slice (Fig 6b): branch-dense code
// whose branches are almost always predicted — a per-branch misprediction
// rate below the paper's 2% exclusion threshold — yet which still
// contributes visible MPKI weight to the four-suite totals.
func buildH264(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	if v != Base {
		return nil, nil, badVariant("h264like", v)
	}
	// Data: mostly-monotone values so x < threshold is ~99% one way,
	// with rare random spikes providing the residual mispredictions.
	rng := rngFor("h264like")
	m := mem.New()
	arr := make([]uint64, classArrN)
	for i := range arr {
		if rng.Intn(100) == 0 {
			arr[i] = uint64(900 + rng.Intn(100)) // rare spike
		} else {
			arr[i] = uint64(rng.Intn(400)) // usually below threshold
		}
	}
	m.WriteUint64s(classArrBase+0x0080_0000, arr)

	b := prog.NewBuilder()
	b.Li(3, 500)
	passN := n
	if passN > classArrN {
		passN = classArrN
	}
	passes := (n + passN - 1) / passN
	b.Li(12, 0)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, classArrBase+0x0080_0000)
	b.Li(4, passN)
	b.Label("loop")
	b.Load(isa.LD, 7, 1, 0)
	// A branch-dense body: three biased branches per element.
	b.Note("x < k (biased)", prog.EasyToPredict)
	b.Branch(isa.BGE, 7, 3, "rare")
	b.R(isa.ADD, 12, 12, 7)
	b.Jump("next")
	b.Label("rare")
	b.I(isa.SHLI, 8, 7, 1)
	b.R(isa.ADD, 12, 12, 8)
	b.Label("next")
	b.I(isa.ANDI, 9, 7, 1023)
	b.Note("x & 1023 == 7 (biased)", prog.EasyToPredict)
	b.Branch(isa.BEQ, 9, 0, "zero")
	b.I(isa.ADDI, 12, 12, 1)
	b.Label("zero")
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 4, 4, -1)
	b.Note("i < n (loop)", prog.EasyToPredict)
	b.Branch(isa.BNE, 4, 0, "loop")
	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, classResult+0x40)
	b.Store(isa.SD, 12, 30, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

func buildStreamEasy(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	if v != Base {
		return nil, nil, badVariant("streamlike", v)
	}
	b := prog.NewBuilder()
	classProlog(b, n)
	b.Label("loop")
	b.Load(isa.LD, 7, 1, 0)
	b.R(isa.ADD, 12, 12, 7)
	b.R(isa.XOR, 12, 12, 4)
	b.I(isa.ADDI, 1, 1, 8)
	b.I(isa.ADDI, 4, 4, -1)
	b.Note("i < n (easy)", prog.EasyToPredict)
	b.Branch(isa.BNE, 4, 0, "loop")
	classEpilog(b)
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, classMem("streamlike", 1000), nil
}
