package workload

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cfd/internal/emu"
)

var updateDigests = flag.Bool("update", false, "rewrite testdata/digests.json from the current builders")

const digestFile = "testdata/digests.json"

// digestLimit bounds emulator steps when computing digests; test-sized
// inputs finish well under it.
const digestLimit = 50_000_000

// finalDigest runs a workload variant at TestN on the functional emulator
// and returns the checksum of its final memory.
func finalDigest(t *testing.T, s *Spec, v Variant) uint64 {
	t.Helper()
	p, m, err := s.Build(v, s.TestN)
	if err != nil {
		t.Fatalf("%s/%s: build: %v", s.Name, v, err)
	}
	machine := emu.New(p, m)
	if err := machine.Run(digestLimit); err != nil {
		t.Fatalf("%s/%s: emulate: %v", s.Name, v, err)
	}
	return m.Checksum()
}

func digestKey(s *Spec, v Variant) string {
	return fmt.Sprintf("%s/%s", s.Name, v)
}

// TestGoldenMemoryDigests pins the final memory image of every
// workload×variant cell. The digests were captured from the hand-written
// variant bodies before the xform-pipeline migration; generated programs
// must retire exactly the same memory. Regenerate deliberately with
//
//	go test ./internal/workload/ -run TestGoldenMemoryDigests -update
func TestGoldenMemoryDigests(t *testing.T) {
	want := map[string]uint64{}
	if !*updateDigests {
		raw, err := os.ReadFile(digestFile)
		if err != nil {
			t.Fatalf("read %s: %v (run with -update to create)", digestFile, err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("parse %s: %v", digestFile, err)
		}
	}
	got := map[string]uint64{}
	for _, s := range All() {
		for _, v := range s.Variants {
			got[digestKey(s, v)] = finalDigest(t, s, v)
		}
	}
	if *updateDigests {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf []byte
		buf = append(buf, "{\n"...)
		for i, k := range keys {
			comma := ","
			if i == len(keys)-1 {
				comma = ""
			}
			buf = append(buf, fmt.Sprintf("  %q: %d%s\n", k, got[k], comma)...)
		}
		buf = append(buf, "}\n"...)
		if err := os.MkdirAll(filepath.Dir(digestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestFile, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), digestFile)
		return
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: cell disappeared (was digest %d)", k, w)
			continue
		}
		if g != w {
			t.Errorf("%s: final memory digest %d, golden %d", k, g, w)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new cell not in golden file (run -update)", k)
		}
	}
}
