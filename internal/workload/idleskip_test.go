package workload

import (
	"reflect"
	"testing"

	"cfd/internal/config"
	"cfd/internal/pipeline"
)

// TestIdleSkipEquivalence pins the idle-cycle fast-forward's correctness
// contract: a run with skipping enabled must produce bit-identical
// statistics — cycle count, every CPI-stack bucket, every stall counter,
// per-branch stats — to a run simulating each cycle individually. The
// tiny contended core and the stall-on-BQ-miss policy maximize the frozen
// stretches the skip collapses.
func TestIdleSkipEquivalence(t *testing.T) {
	tiny := config.SandyBridge()
	tiny.ROBSize = 32
	tiny.IQSize = 8
	tiny.LQSize = 8
	tiny.SQSize = 6
	tiny.NumPhysRegs = 64
	tiny.VQSize = 16
	tiny.NumCheckpoints = 1
	tiny.Name = "tiny"

	stall := config.SandyBridge()
	stall.BQMissPolicy = config.StallFetch

	cfgs := []struct {
		name string
		cfg  config.Core
	}{
		{"sandybridge", config.SandyBridge()},
		{"stallpolicy", stall},
		{"tiny", tiny},
	}
	for _, tc := range cfgs {
		for _, name := range []string{"astar1like", "astar2like", "mcflike"} {
			s, ok := ByName(name)
			if !ok {
				t.Fatalf("workload %s missing", name)
			}
			for _, v := range s.Variants {
				if tc.name == "tiny" && v == CFDPlus {
					continue // tiny VQ cannot hold the workloads' chunks
				}
				t.Run(tc.name+"/"+name+"/"+string(v), func(t *testing.T) {
					t.Parallel()
					p, m, err := s.Build(v, 1000)
					if err != nil {
						t.Fatal(err)
					}
					fast, err := pipeline.New(tc.cfg, p, m.Clone())
					if err != nil {
						t.Fatal(err)
					}
					if err := fast.Run(0); err != nil {
						t.Fatalf("skip run: %v", err)
					}
					slow, err := pipeline.New(tc.cfg, p, m.Clone(),
						pipeline.WithoutIdleSkip())
					if err != nil {
						t.Fatal(err)
					}
					if err := slow.Run(0); err != nil {
						t.Fatalf("cycle-by-cycle run: %v", err)
					}
					if fast.Stats.Cycles != slow.Stats.Cycles {
						t.Errorf("cycles diverge: skip=%d exact=%d",
							fast.Stats.Cycles, slow.Stats.Cycles)
					}
					if !reflect.DeepEqual(fast.Stats, slow.Stats) {
						t.Errorf("stats diverge with idle skipping\nskip:  %+v\nexact: %+v",
							fast.Stats, slow.Stats)
					}
					if tot := fast.Stats.CPI.Total(); tot != fast.Stats.Cycles {
						t.Errorf("CPI stack sums to %d, want %d cycles", tot, fast.Stats.Cycles)
					}
					if !fast.Mem().Equal(slow.Mem()) {
						t.Error("memory diverges with idle skipping")
					}
				})
			}
		}
	}
}
