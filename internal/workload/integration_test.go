package workload

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/emu"
	"cfd/internal/pipeline"
)

// TestPipelineMatchesEmulatorAllVariants is the end-to-end correctness
// gate: every workload variant must leave the cycle-level core's committed
// memory identical to the functional emulator's, and variants must retire
// the same instruction count on both models.
func TestPipelineMatchesEmulatorAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := config.SandyBridge()
	for _, s := range All() {
		for _, v := range s.Variants {
			s, v := s, v
			t.Run(s.Name+"/"+string(v), func(t *testing.T) {
				t.Parallel()
				n := s.TestN
				p, m, err := s.Build(v, n)
				if err != nil {
					t.Fatal(err)
				}
				em := emu.New(p, m.Clone())
				if err := em.Run(100_000_000); err != nil {
					t.Fatal(err)
				}
				core, err := pipeline.New(cfg, p, m)
				if err != nil {
					t.Fatal(err)
				}
				if err := core.Run(0); err != nil {
					t.Fatalf("pipeline: %v\n%s", err, core.Dump())
				}
				if !em.Mem.Equal(core.Mem()) {
					t.Error("pipeline memory diverges from emulator")
				}
				if core.Stats.Retired != em.Retired {
					t.Errorf("pipeline retired %d, emulator %d", core.Stats.Retired, em.Retired)
				}
			})
		}
	}
}

// TestPipelineMatchesEmulatorStallPolicy repeats the gate under the
// stall-on-BQ-miss policy, which exercises a different fetch path.
func TestPipelineMatchesEmulatorStallPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := config.SandyBridge()
	cfg.BQMissPolicy = config.StallFetch
	for _, name := range []string{"tifflike", "soplexlike", "astar1like"} {
		s, _ := ByName(name)
		for _, v := range s.Variants {
			p, m, err := s.Build(v, s.TestN)
			if err != nil {
				t.Fatal(err)
			}
			em := emu.New(p, m.Clone())
			if err := em.Run(100_000_000); err != nil {
				t.Fatal(err)
			}
			core, err := pipeline.New(cfg, p, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Run(0); err != nil {
				t.Fatalf("%s/%s: %v", name, v, err)
			}
			if !em.Mem.Equal(core.Mem()) {
				t.Errorf("%s/%s diverges under stall policy", name, v)
			}
		}
	}
}

// TestPipelineMatchesEmulatorTinyWindow runs the CFD variants on a
// minimal, heavily contended core: small window, one checkpoint, shallow
// queues — the regime where recovery and stall corner cases live.
func TestPipelineMatchesEmulatorTinyWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := config.SandyBridge()
	cfg.ROBSize = 32
	cfg.IQSize = 8
	cfg.LQSize = 8
	cfg.SQSize = 6
	cfg.NumPhysRegs = 64
	cfg.VQSize = 16 // a full VQ must fit in the PRF (config.Validate)
	cfg.NumCheckpoints = 1
	cfg.Name = "tiny"
	for _, name := range []string{"soplexlike", "astar1like", "astar2like", "tifflike"} {
		s, _ := ByName(name)
		for _, v := range s.Variants {
			if v == CFDPlus {
				continue // the workloads' VQ chunks need the full-size VQ
			}
			p, m, err := s.Build(v, 1000)
			if err != nil {
				t.Fatal(err)
			}
			em := emu.New(p, m.Clone())
			if err := em.Run(100_000_000); err != nil {
				t.Fatal(err)
			}
			core, err := pipeline.New(cfg, p, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.Run(0); err != nil {
				t.Fatalf("%s/%s: %v\n%s", name, v, err, core.Dump())
			}
			if !em.Mem.Equal(core.Mem()) {
				t.Errorf("%s/%s diverges on the tiny core", name, v)
			}
		}
	}
}

// TestBQFullStallHappensAndResolves: the strip-mined loops fill the BQ to
// its architectural size; fetch must stall pushes (§III-C3) and always make
// progress again.
func TestBQFullStallHappensAndResolves(t *testing.T) {
	s, _ := ByName("soplexlike")
	p, m, err := s.Build(CFD, 2000)
	if err != nil {
		t.Fatal(err)
	}
	core, err := pipeline.New(config.SandyBridge(), p, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Run(0); err != nil {
		t.Fatal(err)
	}
	if core.Stats.BQFullStalls == 0 {
		t.Error("expected BQ-full fetch stalls with back-to-back full chunks")
	}
}
