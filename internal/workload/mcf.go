package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// mcflike mirrors mcf's arc-scanning loops (primal_bea_mpp analog): the
// loop strides over an array of 64-byte arc records far larger than the
// LLC, branching on a record field — so nearly every mispredicted branch is
// fed by main memory. This is the class of workload for which the paper
// shows CFD acting as the catalyst for large-window latency tolerance
// (Figs 2b, 21b, 23).
//
// Arc record layout (8 fields of 8 bytes): [cost, flow, ident, a, b, c, d, e].
//
// Register conventions follow soplexlike, with r1 the arc cursor.
const (
	mcfArcBase  = 0x4000_0000
	mcfOutBase  = 0x6000_0000
	mcfResult   = 0x0048_0000
	mcfArcN     = 64 << 10 // 64K arcs × 64B = 4MB: exceeds the 2MB L3
	mcfArcBytes = 64
)

func init() {
	register(&Spec{
		Name:     "mcflike",
		Analog:   "mcf (SPEC2006)",
		Function: "primal_bea_mpp analog",
		TimePct:  55,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD, DFD, CFDDFD},
		DefaultN: 120_000,
		TestN:    3_000,
		Build:    buildMcf,
	})
}

func mcfMem() *mem.Memory {
	rng := rngFor("mcflike")
	m := mem.New()
	arcs := make([]uint64, mcfArcN*8)
	for i := 0; i < mcfArcN; i++ {
		arcs[i*8+0] = uint64(rng.Int63n(1000)) // cost: branch feeder, ~50%
		arcs[i*8+1] = uint64(rng.Int63n(100))  // flow
		arcs[i*8+2] = uint64(rng.Intn(3))      // ident
	}
	m.WriteUint64s(mcfArcBase, arcs)
	return m
}

// mcfCD: the CD region reads more arc fields and updates the arc — work
// the wrong path would waste on a misprediction.
func mcfCD(b *prog.Builder) {
	b.Load(isa.LD, 9, 21, 8)   // flow
	b.Load(isa.LD, 10, 21, 16) // ident
	b.R(isa.ADD, 11, 9, 10)
	b.R(isa.MUL, 11, 11, 15)
	b.Store(isa.SD, 11, 21, 24) // arc->a = ...
	b.R(isa.ADD, 12, 12, 11)
	b.I(isa.ADDI, 13, 13, 1)
	b.R(isa.XOR, 25, 12, 13)
	b.I(isa.SHRI, 25, 25, 3)
	b.R(isa.ADD, 12, 12, 25)
}

func buildMcf(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	passN := n
	if passN > mcfArcN {
		passN = mcfArcN
	}
	passes := (n + passN - 1) / passN

	b := prog.NewBuilder()
	b.Li(3, 500) // threshold
	b.Li(12, 0)
	b.Li(13, 0)
	b.Li(15, 3)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, mcfArcBase)
	b.Li(4, passN)

	emitBaseLoop := func(counter isa.Reg, loop, done string) {
		b.Label(loop)
		b.Load(isa.LD, 7, 1, 0) // cost
		b.R(isa.SLT, 8, 7, 3)
		b.Mov(21, 1)
		b.Note("arc->cost < cutoff", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "skip"+loop)
		mcfCD(b)
		b.Label("skip" + loop)
		b.I(isa.ADDI, 1, 1, mcfArcBytes)
		b.I(isa.ADDI, counter, counter, -1)
		b.Branch(isa.BNE, counter, 0, loop)
		_ = done
	}

	switch v {
	case Base:
		emitBaseLoop(4, "loop", "")

	case CFD, CFDDFD:
		b.Label("chunk")
		emitMinChunk(b)
		if v == CFDDFD {
			b.Mov(23, 1)
			b.Mov(24, 16)
			b.Label("pf")
			b.Pref(23, 0)
			b.I(isa.ADDI, 23, 23, mcfArcBytes)
			b.I(isa.ADDI, 24, 24, -1)
			b.Branch(isa.BNE, 24, 0, "pf")
		}
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Label("gen")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 7, 3)
		b.PushBQ(8)
		b.I(isa.ADDI, 1, 1, mcfArcBytes)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		b.Mov(18, 16)
		b.Mov(21, 19)
		b.Label("use")
		b.Note("arc->cost < cutoff (decoupled)", prog.SeparableTotal)
		b.BranchBQ("work")
		b.Jump("skip")
		b.Label("work")
		mcfCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 21, 21, mcfArcBytes)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "use")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")

	case DFD:
		b.Label("chunk")
		emitMinChunk(b)
		b.Mov(23, 1)
		b.Mov(24, 16)
		b.Label("pf")
		b.Pref(23, 0)
		b.I(isa.ADDI, 23, 23, mcfArcBytes)
		b.I(isa.ADDI, 24, 24, -1)
		b.Branch(isa.BNE, 24, 0, "pf")
		b.Mov(18, 16)
		emitBaseLoop(18, "loop", "")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")

	default:
		return nil, nil, badVariant("mcflike", v)
	}

	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, mcfResult)
	b.Store(isa.SD, 12, 30, 0)
	b.Store(isa.SD, 13, 30, 8)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, mcfMem(), nil
}
