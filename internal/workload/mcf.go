package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// mcflike mirrors mcf's arc-scanning loops (primal_bea_mpp analog): the
// loop strides over an array of 64-byte arc records far larger than the
// LLC, branching on a record field — so nearly every mispredicted branch is
// fed by main memory. This is the class of workload for which the paper
// shows CFD acting as the catalyst for large-window latency tolerance
// (Figs 2b, 21b, 23).
//
// Arc record layout (8 fields of 8 bytes): [cost, flow, ident, a, b, c, d, e].
//
// Register conventions follow soplexlike, with r1 the arc cursor and r21
// the record pointer the CD region indexes from (part of the branch slice,
// so the pass recomputes it in the consuming loop).
const (
	mcfArcBase  = 0x4000_0000
	mcfResult   = 0x0048_0000
	mcfArcN     = 64 << 10 // 64K arcs × 64B = 4MB: exceeds the 2MB L3
	mcfArcBytes = 64
)

func init() {
	register(&Spec{
		Name:     "mcflike",
		Analog:   "mcf (SPEC2006)",
		Function: "primal_bea_mpp analog",
		TimePct:  55,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD, DFD, CFDDFD},
		DefaultN: 120_000,
		TestN:    3_000,
		Kernel:   mcfKernel,
	})
}

func mcfMem() *mem.Memory {
	rng := rngFor("mcflike")
	m := mem.New()
	arcs := make([]uint64, mcfArcN*8)
	for i := 0; i < mcfArcN; i++ {
		arcs[i*8+0] = uint64(rng.Int63n(1000)) // cost: branch feeder, ~50%
		arcs[i*8+1] = uint64(rng.Int63n(100))  // flow
		arcs[i*8+2] = uint64(rng.Intn(3))      // ident
	}
	m.WriteUint64s(mcfArcBase, arcs)
	return m
}

func mcfKernel(n int64) (xform.Form, *mem.Memory, error) {
	passN := min(n, mcfArcN)
	passes := (n + passN - 1) / passN
	k := &xform.Kernel{
		Name: "mcflike",
		Init: []isa.Inst{
			li(3, 500), // threshold
			li(12, 0),
			li(13, 0),
			li(15, 3),
			li(20, passes),
		},
		PassInit: []isa.Inst{
			li(1, mcfArcBase),
			li(4, passN),
		},
		Slice: []isa.Inst{
			ld(isa.LD, 7, 1, 0), // cost
			rr(isa.SLT, 8, 7, 3),
			ri(isa.ADDI, 21, 1, 0), // record pointer for the CD region
		},
		// The CD region reads more arc fields and updates the arc — work
		// the wrong path would waste on a misprediction.
		CD: []isa.Inst{
			ld(isa.LD, 9, 21, 8),   // flow
			ld(isa.LD, 10, 21, 16), // ident
			rr(isa.ADD, 11, 9, 10),
			rr(isa.MUL, 11, 11, 15),
			st(isa.SD, 11, 21, 24), // arc->a = ...
			rr(isa.ADD, 12, 12, 11),
			ri(isa.ADDI, 13, 13, 1),
			rr(isa.XOR, 25, 12, 13),
			ri(isa.SHRI, 25, 25, 3),
			rr(isa.ADD, 12, 12, 25),
		},
		Step: []isa.Inst{
			ri(isa.ADDI, 1, 1, mcfArcBytes),
		},
		Fini: []isa.Inst{
			li(30, mcfResult),
			st(isa.SD, 12, 30, 0),
			st(isa.SD, 13, 30, 8),
		},
		Pred:    8,
		Counter: 4,
		Passes:  20,
		Scratch: []isa.Reg{16, 17, 18},
		NoAlias: true,
		Note:    "arc->cost < cutoff",
	}
	return k, mcfMem(), nil
}
