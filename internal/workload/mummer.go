package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// mummerlike mirrors the BioBench suffix-tree matching kernels (mummer):
// a scan comparing a query stream against reference characters, with a
// hard, data-dependent mismatch branch guarding a large bookkeeping region
// (match-extension accounting, position output). The characters are
// byte-sized — exercising the ISA's sub-word loads — and the branch is
// totally separable: nothing in the CD region feeds the comparison.
//
// Register conventions follow soplexlike; r7/r9 hold the two characters.
const (
	mummerRefBase = 0x1700_0000
	mummerQryBase = 0x1800_0000
	mummerOutBase = 0x1900_0000
	mummerResult  = 0x004b_0000
	mummerArrN    = 48 << 10 // 48KB of byte characters: L2-resident
)

func init() {
	register(&Spec{
		Name:     "mummerlike",
		Analog:   "mummer (BioBench)",
		Function: "match-extension analog",
		TimePct:  40,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD},
		DefaultN: 150_000,
		TestN:    3_000,
		Build:    buildMummer,
	})
}

func mummerMem() *mem.Memory {
	rng := rngFor("mummerlike")
	m := mem.New()
	ref := make([]byte, mummerArrN)
	qry := make([]byte, mummerArrN)
	bases := []byte{'A', 'C', 'G', 'T'}
	for i := range ref {
		ref[i] = bases[rng.Intn(4)]
		qry[i] = bases[rng.Intn(4)] // 25% match rate, unpredictable
	}
	m.StoreBytes(mummerRefBase, ref)
	m.StoreBytes(mummerQryBase, qry)
	return m
}

// mummerCD: the match-bookkeeping region — extension length update, score
// mix, and an output append.
func mummerCD(b *prog.Builder) {
	b.I(isa.ADDI, 10, 10, 1) // extension length
	b.R(isa.ADD, 12, 12, 7)
	b.R(isa.MUL, 11, 10, 15)
	b.R(isa.XOR, 11, 11, 12)
	b.I(isa.SHLI, 25, 13, 3)
	b.R(isa.ADD, 25, 25, 14)
	b.Store(isa.SD, 11, 25, 0) // out[cnt] = score
	b.I(isa.ADDI, 13, 13, 1)
	b.I(isa.SHRI, 11, 11, 4)
	b.R(isa.ADD, 12, 12, 11)
}

func buildMummer(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	passN := n
	if passN > mummerArrN {
		passN = mummerArrN
	}
	passes := (n + passN - 1) / passN

	b := prog.NewBuilder()
	b.Li(10, 0) // extension length
	b.Li(12, 0) // score
	b.Li(13, 0) // out count
	b.Li(14, mummerOutBase)
	b.Li(15, 3)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, mummerRefBase)
	b.Li(2, mummerQryBase)
	b.Li(4, passN)

	switch v {
	case Base:
		b.Label("loop")
		b.Load(isa.LBU, 7, 1, 0) // ref char
		b.Load(isa.LBU, 9, 2, 0) // query char
		b.R(isa.SEQ, 8, 7, 9)
		b.Note("ref[i] == qry[i]", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "skip")
		mummerCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, 1)
		b.I(isa.ADDI, 2, 2, 1)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "loop")

	case CFD:
		b.Label("chunk")
		emitMinChunk(b)
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Mov(21, 2)
		b.Label("gen")
		b.Load(isa.LBU, 7, 1, 0)
		b.Load(isa.LBU, 9, 2, 0)
		b.R(isa.SEQ, 8, 7, 9)
		b.PushBQ(8)
		b.I(isa.ADDI, 1, 1, 1)
		b.I(isa.ADDI, 2, 2, 1)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		b.Mov(18, 16)
		b.Mov(22, 19)
		b.Label("use")
		b.Note("ref[i] == qry[i] (decoupled)", prog.SeparableTotal)
		b.BranchBQ("work")
		b.Jump("skip")
		b.Label("work")
		b.Load(isa.LBU, 7, 22, 0) // reload the matched character
		mummerCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 22, 22, 1)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "use")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")

	default:
		return nil, nil, badVariant("mummerlike", v)
	}

	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, mummerResult)
	b.Store(isa.SD, 12, 30, 0)
	b.Store(isa.SD, 13, 30, 8)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, mummerMem(), nil
}
