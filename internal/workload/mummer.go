package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// mummerlike mirrors the BioBench suffix-tree matching kernels (mummer):
// a scan comparing a query stream against reference characters, with a
// hard, data-dependent mismatch branch guarding a large bookkeeping region
// (match-extension accounting, position output). The characters are
// byte-sized — exercising the ISA's sub-word loads — and the branch is
// totally separable: nothing in the CD region feeds the comparison.
//
// Register conventions follow soplexlike; r7/r9 hold the two characters.
const (
	mummerRefBase = 0x1700_0000
	mummerQryBase = 0x1800_0000
	mummerOutBase = 0x1900_0000
	mummerResult  = 0x004b_0000
	mummerArrN    = 48 << 10 // 48KB of byte characters: L2-resident
)

func init() {
	register(&Spec{
		Name:     "mummerlike",
		Analog:   "mummer (BioBench)",
		Function: "match-extension analog",
		TimePct:  40,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD},
		DefaultN: 150_000,
		TestN:    3_000,
		Kernel:   mummerKernel,
	})
}

func mummerMem() *mem.Memory {
	rng := rngFor("mummerlike")
	m := mem.New()
	ref := make([]byte, mummerArrN)
	qry := make([]byte, mummerArrN)
	bases := []byte{'A', 'C', 'G', 'T'}
	for i := range ref {
		ref[i] = bases[rng.Intn(4)]
		qry[i] = bases[rng.Intn(4)] // 25% match rate, unpredictable
	}
	m.StoreBytes(mummerRefBase, ref)
	m.StoreBytes(mummerQryBase, qry)
	return m
}

func mummerKernel(n int64) (xform.Form, *mem.Memory, error) {
	passN := min(n, mummerArrN)
	passes := (n + passN - 1) / passN
	k := &xform.Kernel{
		Name: "mummerlike",
		Init: []isa.Inst{
			li(10, 0), // extension length
			li(12, 0), // score
			li(13, 0), // out count
			li(14, mummerOutBase),
			li(15, 3),
			li(20, passes),
		},
		PassInit: []isa.Inst{
			li(1, mummerRefBase),
			li(2, mummerQryBase),
			li(4, passN),
		},
		Slice: []isa.Inst{
			ld(isa.LBU, 7, 1, 0), // ref char
			ld(isa.LBU, 9, 2, 0), // query char
			rr(isa.SEQ, 8, 7, 9),
		},
		// The match-bookkeeping region — extension length update, score
		// mix, and an output append.
		CD: []isa.Inst{
			ri(isa.ADDI, 10, 10, 1), // extension length
			rr(isa.ADD, 12, 12, 7),
			rr(isa.MUL, 11, 10, 15),
			rr(isa.XOR, 11, 11, 12),
			ri(isa.SHLI, 25, 13, 3),
			rr(isa.ADD, 25, 25, 14),
			st(isa.SD, 11, 25, 0), // out[cnt] = score
			ri(isa.ADDI, 13, 13, 1),
			ri(isa.SHRI, 11, 11, 4),
			rr(isa.ADD, 12, 12, 11),
		},
		Step: []isa.Inst{
			ri(isa.ADDI, 1, 1, 1),
			ri(isa.ADDI, 2, 2, 1),
		},
		Fini: []isa.Inst{
			li(30, mummerResult),
			st(isa.SD, 12, 30, 0),
			st(isa.SD, 13, 30, 8),
		},
		Pred:    8,
		Counter: 4,
		Passes:  20,
		Scratch: []isa.Reg{16, 17, 18, 19},
		NoAlias: true,
		Note:    "ref[i] == qry[i]",
	}
	return k, mummerMem(), nil
}
