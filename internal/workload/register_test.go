package workload

import (
	"strings"
	"testing"

	"cfd/internal/mem"
	"cfd/internal/prog"
)

func dummyBuild(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	return prog.NewBuilder().Halt().MustBuild(), mem.New(), nil
}

func TestRegisterValidation(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"nil spec", nil, "no name"},
		{"empty name", &Spec{Build: dummyBuild, Variants: []Variant{Base}}, "no name"},
		{"nil build", &Spec{Name: "x-test", Variants: []Variant{Base}}, "nil Build"},
		{"no variants", &Spec{Name: "x-test", Build: dummyBuild}, "no variants"},
	}
	for _, tc := range cases {
		err := Register(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Register = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRegisterDuplicate(t *testing.T) {
	s := &Spec{Name: "dup-test", Build: dummyBuild, Variants: []Variant{Base}}
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	defer Deregister(s.Name)
	if err := Register(s); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate Register = %v, want duplicate-name error", err)
	}
}

func TestDeregister(t *testing.T) {
	s := &Spec{Name: "transient-test", Build: dummyBuild, Variants: []Variant{Base}}
	if err := Register(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := ByName(s.Name); !ok {
		t.Fatal("registered workload not found")
	}
	if !Deregister(s.Name) {
		t.Fatal("Deregister reported the name absent")
	}
	if _, ok := ByName(s.Name); ok {
		t.Fatal("workload still present after Deregister")
	}
	if Deregister(s.Name) {
		t.Fatal("second Deregister reported the name present")
	}
}

// TestMustBuildPanicIsDescriptive: the init-time panic must name the
// workload and variant, not just forward a bare error.
func TestMustBuildPanicIsDescriptive(t *testing.T) {
	s, ok := ByName("soplexlike")
	if !ok {
		t.Fatal("soplexlike not registered")
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("MustBuild of an unimplemented variant did not panic")
		}
		msg, _ := v.(string)
		if !strings.Contains(msg, "soplexlike") || !strings.Contains(msg, "nope") {
			t.Fatalf("panic %q does not identify the workload and variant", msg)
		}
	}()
	s.MustBuild(Variant("nope"), 256)
}
