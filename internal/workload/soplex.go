package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// soplexlike mirrors the soplex kernel of paper Figs 8 and 11: a loop
// comparing each element of test[] against the threshold theeps, with a
// large control-dependent region that updates pricing state. The branch is
// totally separable: neither test[] nor theeps changes inside the region.
//
// The workload is a single kernel description; every variant — base, cfd
// (strip-mined two-loop decoupling, recomputing x in the second loop), cfd+
// (x through the VQ, Fig 11), dfd (prefetch loop, §V), and cfd+dfd (Fig 26)
// — is generated from it by the xform pass pipeline.
//
// Register conventions:
//
//	r1 test ptr   r2 out ptr    r3 theeps     r4 remaining  r5 count
//	r6 best       r7 x          r8 predicate  r9-r13 CD temps
//	r14 out2 ptr  r15 const 3   r20 passes    r16-r21 pass scratch
const (
	soplexTestBase = 0x0100_0000
	soplexOutBase  = 0x0200_0000
	soplexOut2Base = 0x0300_0000
	soplexResult   = 0x0040_0000
	soplexArrN     = 65536 // 512KB test array: L2/L3-resident across passes
	soplexTheeps   = 500
)

func init() {
	register(&Spec{
		Name:     "soplexlike",
		Analog:   "soplex (SPEC2006)",
		Function: "enterTest / maxDelta analog",
		TimePct:  58,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD, CFDPlus, DFD, CFDDFD},
		DefaultN: 200_000,
		TestN:    4_000,
		Kernel:   soplexKernel,
	})
}

func soplexMem(n int64) *mem.Memory {
	rng := rngFor("soplexlike")
	m := mem.New()
	arr := make([]uint64, soplexArrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(1000)) // ~50% exceed theeps
	}
	m.WriteUint64s(soplexTestBase, arr)
	return m
}

func soplexKernel(n int64) (xform.Form, *mem.Memory, error) {
	passN := min(n, soplexArrN)
	passes := (n + passN - 1) / passN
	k := &xform.Kernel{
		Name: "soplexlike",
		Init: []isa.Inst{
			li(3, soplexTheeps),
			li(5, 0),
			li(6, 0),
			li(15, 3),
			li(20, passes),
		},
		PassInit: []isa.Inst{
			li(1, soplexTestBase),
			li(2, soplexOutBase),
			li(14, soplexOut2Base),
			li(4, passN),
		},
		Slice: []isa.Inst{
			ld(isa.LD, 7, 1, 0),
			rr(isa.SLT, 8, 3, 7),
		},
		// The control-dependent region: stores through out/out2, and the
		// loop-carried count (r5) and best (r6) update.
		CD: []isa.Inst{
			rr(isa.MUL, 9, 7, 15),
			ri(isa.ADDI, 9, 9, 17),
			rr(isa.XOR, 10, 7, 6),
			st(isa.SD, 9, 2, 0),
			ri(isa.ADDI, 5, 5, 1),
			rr(isa.SLT, 11, 6, 7),
			rr(isa.CMOVNZ, 6, 7, 11),
			ri(isa.SHRI, 12, 9, 2),
			rr(isa.ADD, 13, 12, 5),
			rr(isa.ADD, 13, 13, 10),
			st(isa.SD, 13, 14, 0),
		},
		Step: []isa.Inst{
			ri(isa.ADDI, 1, 1, 8),
			ri(isa.ADDI, 2, 2, 8),
			ri(isa.ADDI, 14, 14, 8),
		},
		Fini: []isa.Inst{
			li(30, soplexResult),
			st(isa.SD, 5, 30, 0),
			st(isa.SD, 6, 30, 8),
		},
		Pred:     8,
		Counter:  4,
		Passes:   20,
		Scratch:  []isa.Reg{16, 17, 18, 19, 21},
		NoAlias:  true,
		Note:     "test[i] > theeps",
		LoopNote: "i < num",
	}
	return k, soplexMem(n), nil
}
