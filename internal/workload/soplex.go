package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// soplexlike mirrors the soplex kernel of paper Figs 8 and 11: a loop
// comparing each element of test[] against the threshold theeps, with a
// large control-dependent region that updates pricing state. The branch is
// totally separable: neither test[] nor theeps changes inside the region.
//
// Variants: base; cfd (strip-mined two-loop decoupling, reloading x in the
// second loop); cfd+ (communicates x through the VQ, Fig 11); dfd
// (prefetch loop, §V); cfd+dfd (Fig 26).
//
// Register conventions:
//
//	r1 test ptr   r2 out ptr    r3 theeps     r4 remaining  r5 count
//	r6 best       r7 x          r8 predicate  r9-r13 CD temps
//	r14 out2 ptr  r15 const 3   r16 chunkN    r17 tmp       r18 j
//	r19 saved ptr r20 passes    r21 reload ptr r22 pf ptr   r23 pf cnt
const (
	soplexTestBase = 0x0100_0000
	soplexOutBase  = 0x0200_0000
	soplexOut2Base = 0x0300_0000
	soplexResult   = 0x0040_0000
	soplexArrN     = 65536 // 512KB test array: L2/L3-resident across passes
	soplexTheeps   = 500
)

func init() {
	register(&Spec{
		Name:     "soplexlike",
		Analog:   "soplex (SPEC2006)",
		Function: "enterTest / maxDelta analog",
		TimePct:  58,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD, CFDPlus, DFD, CFDDFD},
		DefaultN: 200_000,
		TestN:    4_000,
		Build:    buildSoplex,
	})
}

func soplexMem(n int64) *mem.Memory {
	rng := rngFor("soplexlike")
	m := mem.New()
	arr := make([]uint64, soplexArrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(1000)) // ~50% exceed theeps
	}
	m.WriteUint64s(soplexTestBase, arr)
	return m
}

// soplexCD emits the control-dependent region: x is in r7, stores go
// through r2 (out) and r14 (out2), and the loop-carried count (r5) and
// best (r6) update. Identical across all variants.
func soplexCD(b *prog.Builder) {
	b.R(isa.MUL, 9, 7, 15)
	b.I(isa.ADDI, 9, 9, 17)
	b.R(isa.XOR, 10, 7, 6)
	b.Store(isa.SD, 9, 2, 0)
	b.I(isa.ADDI, 5, 5, 1)
	b.R(isa.SLT, 11, 6, 7)
	b.R(isa.CMOVNZ, 6, 7, 11)
	b.I(isa.SHRI, 12, 9, 2)
	b.R(isa.ADD, 13, 12, 5)
	b.R(isa.ADD, 13, 13, 10)
	b.Store(isa.SD, 13, 14, 0)
}

// soplexProlog emits the pass-invariant setup and returns after emitting
// the per-pass pointer reset label "pass".
func soplexProlog(b *prog.Builder, n int64) {
	passN := n
	if passN > soplexArrN {
		passN = soplexArrN
	}
	passes := (n + passN - 1) / passN
	b.Li(3, soplexTheeps)
	b.Li(5, 0)
	b.Li(6, 0)
	b.Li(15, 3)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, soplexTestBase)
	b.Li(2, soplexOutBase)
	b.Li(14, soplexOut2Base)
	b.Li(4, passN)
}

// soplexEpilog closes the pass loop and stores the results.
func soplexEpilog(b *prog.Builder) {
	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, soplexResult)
	b.Store(isa.SD, 5, 30, 0)
	b.Store(isa.SD, 6, 30, 8)
	b.Halt()
}

// emitMinChunkN sets r16 = min(size, r4) using a conditional move.
func emitMinChunkN(b *prog.Builder, size int64) {
	b.Li(16, size)
	b.R(isa.SLT, 17, 4, 16)
	b.R(isa.CMOVNZ, 16, 4, 17)
}

// emitMinChunk sets r16 = min(ChunkSize, r4).
func emitMinChunk(b *prog.Builder) { emitMinChunkN(b, ChunkSize) }

func buildSoplex(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	b := prog.NewBuilder()
	switch v {
	case Base:
		soplexProlog(b, n)
		b.Label("loop")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 3, 7)
		b.Note("test[i] > theeps", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "skip")
		soplexCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 14, 14, 8)
		b.I(isa.ADDI, 4, 4, -1)
		b.Note("i < num", prog.EasyToPredict)
		b.Branch(isa.BNE, 4, 0, "loop")
		soplexEpilog(b)

	case CFD, CFDPlus:
		soplexProlog(b, n)
		b.Label("chunk")
		// The VQ variant uses half-size chunks: every in-flight VQ entry
		// pins a physical register until its pop retires, so a full
		// 128-entry chunk would starve renaming.
		if v == CFDPlus {
			emitMinChunkN(b, ChunkSize/2)
		} else {
			emitMinChunk(b)
		}
		// Loop 1: the branch slice, pushing predicates (and, for CFD+,
		// the value of x through the VQ).
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Label("gen")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 3, 7)
		b.PushBQ(8)
		if v == CFDPlus {
			b.PushVQ(7)
		}
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		// Loop 2: the branch and its control-dependent region.
		b.Mov(18, 16)
		b.Mov(21, 19)
		b.Label("use")
		if v == CFDPlus {
			b.PopVQ(7)
		}
		b.Note("test[i] > theeps (decoupled)", prog.SeparableTotal)
		b.BranchBQ("work")
		b.Jump("skip")
		b.Label("work")
		if v == CFD {
			b.Load(isa.LD, 7, 21, 0) // reload x: the CFD+ optimization removes this
		}
		soplexCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 21, 21, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 14, 14, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "use")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")
		soplexEpilog(b)

	case DFD, CFDDFD:
		soplexProlog(b, n)
		b.Label("chunk")
		emitMinChunk(b)
		// Prefetch loop: one PREF per cache line of the chunk.
		b.Mov(22, 1)
		b.I(isa.ADDI, 23, 16, 7)
		b.I(isa.SHRI, 23, 23, 3) // lines = ceil(chunkN/8)
		b.Label("pf")
		b.Pref(22, 0)
		b.I(isa.ADDI, 22, 22, 64)
		b.I(isa.ADDI, 23, 23, -1)
		b.Branch(isa.BNE, 23, 0, "pf")
		if v == DFD {
			// Original loop over the chunk.
			b.Mov(18, 16)
			b.Label("loop")
			b.Load(isa.LD, 7, 1, 0)
			b.R(isa.SLT, 8, 3, 7)
			b.Note("test[i] > theeps", prog.SeparableTotal)
			b.Branch(isa.BEQ, 8, 0, "skip")
			soplexCD(b)
			b.Label("skip")
			b.I(isa.ADDI, 1, 1, 8)
			b.I(isa.ADDI, 2, 2, 8)
			b.I(isa.ADDI, 14, 14, 8)
			b.I(isa.ADDI, 18, 18, -1)
			b.Branch(isa.BNE, 18, 0, "loop")
		} else {
			// CFD loops over the prefetched chunk (Fig 26).
			b.Mov(18, 16)
			b.Mov(19, 1)
			b.Label("gen")
			b.Load(isa.LD, 7, 1, 0)
			b.R(isa.SLT, 8, 3, 7)
			b.PushBQ(8)
			b.I(isa.ADDI, 1, 1, 8)
			b.I(isa.ADDI, 18, 18, -1)
			b.Branch(isa.BNE, 18, 0, "gen")
			b.Mov(18, 16)
			b.Mov(21, 19)
			b.Label("use")
			b.Note("test[i] > theeps (decoupled)", prog.SeparableTotal)
			b.BranchBQ("work")
			b.Jump("skip")
			b.Label("work")
			b.Load(isa.LD, 7, 21, 0)
			soplexCD(b)
			b.Label("skip")
			b.I(isa.ADDI, 21, 21, 8)
			b.I(isa.ADDI, 2, 2, 8)
			b.I(isa.ADDI, 14, 14, 8)
			b.I(isa.ADDI, 18, 18, -1)
			b.Branch(isa.BNE, 18, 0, "use")
		}
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")
		soplexEpilog(b)

	default:
		return nil, nil, badVariant("soplexlike", v)
	}
	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, soplexMem(n), nil
}
