package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// streamParams instantiates the family of "streamed predicate + large
// control-dependent region" kernels that several of the paper's CFD-class
// applications reduce to (bzip2's sort main loop, eclat's support counting,
// jpeg's quantization, gromacs/namd's cutoff tests). The members differ in
// working-set size (which memory level feeds the branch), taken rate, and
// control-dependent region size (which sets the CFD overhead).
type streamParams struct {
	name     string
	analog   string
	function string
	timePct  int
	arrBase  uint64
	outBase  uint64
	resBase  uint64
	arrN     int64 // working set in elements; passes repeat over it
	mod      int64 // element value range
	takenPct int64 // percentage of elements below the threshold
	cdExtra  int   // filler ALU ops in the CD region beyond the fixed core
	variants []Variant
	defaultN int64
	testN    int64
}

func registerStream(p streamParams) {
	register(&Spec{
		Name:     p.name,
		Analog:   p.analog,
		Function: p.function,
		TimePct:  p.timePct,
		Class:    prog.SeparableTotal,
		Variants: p.variants,
		DefaultN: p.defaultN,
		TestN:    p.testN,
		Build: func(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
			return buildStream(p, v, n)
		},
	})
}

func init() {
	registerStream(streamParams{
		name: "bzip2like", analog: "bzip2 (SPEC2006)",
		function: "mainSort compare analog", timePct: 37,
		arrBase: 0x0900_0000, outBase: 0x0a00_0000, resBase: 0x0043_0000,
		arrN: 8 << 10, mod: 1000, takenPct: 50, cdExtra: 4,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "eclatlike", analog: "eclat (NU-MineBench)",
		function: "support-count analog", timePct: 45,
		arrBase: 0x0b00_0000, outBase: 0x0c00_0000, resBase: 0x0044_0000,
		arrN: 128 << 10, mod: 1000, takenPct: 40, cdExtra: 8,
		variants: []Variant{Base, CFD, CFDPlus},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "jpeglike", analog: "jpeg-compr (cBench)",
		function: "quantization analog", timePct: 40,
		arrBase: 0x0d00_0000, outBase: 0x0e00_0000, resBase: 0x0045_0000,
		arrN: 1 << 10, mod: 1000, takenPct: 50, cdExtra: 6,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "gromacslike", analog: "gromacs (SPEC2006)",
		function: "inner-loop cutoff analog", timePct: 25,
		arrBase: 0x0f00_0000, outBase: 0x1000_0000, resBase: 0x0046_0000,
		arrN: 32 << 10, mod: 1000, takenPct: 30, cdExtra: 14,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "tiffmedianlike", analog: "tiff-median (cBench)",
		function: "median-filter threshold analog", timePct: 30,
		arrBase: 0x1a00_0000, outBase: 0x1b00_0000, resBase: 0x004c_0000,
		arrN: 4 << 10, mod: 1000, takenPct: 45, cdExtra: 10,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "namdlike", analog: "namd (SPEC2006)",
		function: "pairlist cutoff analog", timePct: 35,
		arrBase: 0x1100_0000, outBase: 0x1200_0000, resBase: 0x0047_0000,
		arrN: 16 << 10, mod: 1000, takenPct: 50, cdExtra: 18,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
}

func streamMem(p streamParams) *mem.Memory {
	rng := rngFor(p.name)
	m := mem.New()
	arr := make([]uint64, p.arrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(p.mod))
	}
	m.WriteUint64s(p.arrBase, arr)
	return m
}

// streamCD emits the CD region: x in r7; updates acc r12, stores out[i]
// through r2, then cdExtra filler ops mixing acc.
func streamCD(b *prog.Builder, cdExtra int) {
	b.R(isa.MUL, 9, 7, 15)
	b.I(isa.ADDI, 9, 9, 11)
	b.Store(isa.SD, 9, 2, 0)
	b.R(isa.ADD, 12, 12, 9)
	for i := 0; i < cdExtra; i++ {
		switch i % 3 {
		case 0:
			b.R(isa.XOR, 10, 12, 7)
		case 1:
			b.I(isa.SHRI, 11, 10, 2)
		case 2:
			b.R(isa.ADD, 12, 12, 11)
		}
	}
}

func buildStream(p streamParams, v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	passN := n
	if passN > p.arrN {
		passN = p.arrN
	}
	passes := (n + passN - 1) / passN
	thresh := p.mod * p.takenPct / 100

	b := prog.NewBuilder()
	b.Li(3, thresh)
	b.Li(12, 0)
	b.Li(15, 3)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, int64(p.arrBase))
	b.Li(2, int64(p.outBase))
	b.Li(4, passN)

	switch v {
	case Base:
		b.Label("loop")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 7, 3) // x < thresh
		b.Note(p.function, prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "skip")
		streamCD(b, p.cdExtra)
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "loop")

	case CFD, CFDPlus:
		b.Label("chunk")
		if v == CFDPlus {
			emitMinChunkN(b, ChunkSize/2) // VQ entries pin physical registers
		} else {
			emitMinChunk(b)
		}
		b.Mov(18, 16)
		b.Mov(19, 1)
		b.Label("gen")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 7, 3)
		b.PushBQ(8)
		if v == CFDPlus {
			b.PushVQ(7)
		}
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "gen")
		b.Mov(18, 16)
		b.Mov(21, 19)
		b.Label("use")
		if v == CFDPlus {
			b.PopVQ(7)
		}
		b.Note(p.function+" (decoupled)", prog.SeparableTotal)
		b.BranchBQ("work")
		b.Jump("skip")
		b.Label("work")
		if v == CFD {
			b.Load(isa.LD, 7, 21, 0)
		}
		streamCD(b, p.cdExtra)
		b.Label("skip")
		b.I(isa.ADDI, 21, 21, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "use")
		b.R(isa.SUB, 4, 4, 16)
		b.Branch(isa.BNE, 4, 0, "chunk")

	default:
		return nil, nil, badVariant(p.name, v)
	}

	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, int64(p.resBase))
	b.Store(isa.SD, 12, 30, 0)
	b.Halt()

	pr, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return pr, streamMem(p), nil
}
