package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// streamParams instantiates the family of "streamed predicate + large
// control-dependent region" kernels that several of the paper's CFD-class
// applications reduce to (bzip2's sort main loop, eclat's support counting,
// jpeg's quantization, gromacs/namd's cutoff tests). The members differ in
// working-set size (which memory level feeds the branch), taken rate, and
// control-dependent region size (which sets the CFD overhead). Each member
// is one kernel description; the xform pass pipeline generates its variants.
type streamParams struct {
	name     string
	analog   string
	function string
	timePct  int
	arrBase  int64
	outBase  int64
	resBase  int64
	arrN     int64 // working set in elements; passes repeat over it
	mod      int64 // element value range
	takenPct int64 // percentage of elements below the threshold
	cdExtra  int   // filler ALU ops in the CD region beyond the fixed core
	variants []Variant
	defaultN int64
	testN    int64
}

func registerStream(p streamParams) {
	register(&Spec{
		Name:     p.name,
		Analog:   p.analog,
		Function: p.function,
		TimePct:  p.timePct,
		Class:    prog.SeparableTotal,
		Variants: p.variants,
		DefaultN: p.defaultN,
		TestN:    p.testN,
		Kernel: func(n int64) (xform.Form, *mem.Memory, error) {
			return streamKernel(p, n), streamMem(p), nil
		},
	})
}

func init() {
	registerStream(streamParams{
		name: "bzip2like", analog: "bzip2 (SPEC2006)",
		function: "mainSort compare analog", timePct: 37,
		arrBase: 0x0900_0000, outBase: 0x0a00_0000, resBase: 0x0043_0000,
		arrN: 8 << 10, mod: 1000, takenPct: 50, cdExtra: 4,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "eclatlike", analog: "eclat (NU-MineBench)",
		function: "support-count analog", timePct: 45,
		arrBase: 0x0b00_0000, outBase: 0x0c00_0000, resBase: 0x0044_0000,
		arrN: 128 << 10, mod: 1000, takenPct: 40, cdExtra: 8,
		variants: []Variant{Base, CFD, CFDPlus},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "jpeglike", analog: "jpeg-compr (cBench)",
		function: "quantization analog", timePct: 40,
		arrBase: 0x0d00_0000, outBase: 0x0e00_0000, resBase: 0x0045_0000,
		arrN: 1 << 10, mod: 1000, takenPct: 50, cdExtra: 6,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "gromacslike", analog: "gromacs (SPEC2006)",
		function: "inner-loop cutoff analog", timePct: 25,
		arrBase: 0x0f00_0000, outBase: 0x1000_0000, resBase: 0x0046_0000,
		arrN: 32 << 10, mod: 1000, takenPct: 30, cdExtra: 14,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "tiffmedianlike", analog: "tiff-median (cBench)",
		function: "median-filter threshold analog", timePct: 30,
		arrBase: 0x1a00_0000, outBase: 0x1b00_0000, resBase: 0x004c_0000,
		arrN: 4 << 10, mod: 1000, takenPct: 45, cdExtra: 10,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
	registerStream(streamParams{
		name: "namdlike", analog: "namd (SPEC2006)",
		function: "pairlist cutoff analog", timePct: 35,
		arrBase: 0x1100_0000, outBase: 0x1200_0000, resBase: 0x0047_0000,
		arrN: 16 << 10, mod: 1000, takenPct: 50, cdExtra: 18,
		variants: []Variant{Base, CFD},
		defaultN: 150_000, testN: 3_000,
	})
}

func streamMem(p streamParams) *mem.Memory {
	rng := rngFor(p.name)
	m := mem.New()
	arr := make([]uint64, p.arrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(p.mod))
	}
	m.WriteUint64s(uint64(p.arrBase), arr)
	return m
}

// streamCD builds the CD region: x in r7; updates acc r12, stores out[i]
// through r2, then cdExtra filler ops mixing acc.
func streamCD(cdExtra int) []isa.Inst {
	cd := []isa.Inst{
		rr(isa.MUL, 9, 7, 15),
		ri(isa.ADDI, 9, 9, 11),
		st(isa.SD, 9, 2, 0),
		rr(isa.ADD, 12, 12, 9),
	}
	for i := 0; i < cdExtra; i++ {
		switch i % 3 {
		case 0:
			cd = append(cd, rr(isa.XOR, 10, 12, 7))
		case 1:
			cd = append(cd, ri(isa.SHRI, 11, 10, 2))
		case 2:
			cd = append(cd, rr(isa.ADD, 12, 12, 11))
		}
	}
	return cd
}

func streamKernel(p streamParams, n int64) *xform.Kernel {
	passN := min(n, p.arrN)
	passes := (n + passN - 1) / passN
	thresh := p.mod * p.takenPct / 100
	return &xform.Kernel{
		Name: p.name,
		Init: []isa.Inst{
			li(3, thresh),
			li(12, 0),
			li(15, 3),
			li(20, passes),
		},
		PassInit: []isa.Inst{
			li(1, p.arrBase),
			li(2, p.outBase),
			li(4, passN),
		},
		Slice: []isa.Inst{
			ld(isa.LD, 7, 1, 0),
			rr(isa.SLT, 8, 7, 3), // x < thresh
		},
		CD: streamCD(p.cdExtra),
		Step: []isa.Inst{
			ri(isa.ADDI, 1, 1, 8),
			ri(isa.ADDI, 2, 2, 8),
		},
		Fini: []isa.Inst{
			li(30, p.resBase),
			st(isa.SD, 12, 30, 0),
		},
		Pred:    8,
		Counter: 4,
		Passes:  20,
		Scratch: []isa.Reg{16, 17, 18, 19},
		NoAlias: true,
		Note:    p.function,
	}
}
