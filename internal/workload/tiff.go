package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// tifflike mirrors tiff-2-bw, the paper's one application where no loop
// decoupling was performed: the predicate computation is merely hoisted a
// few iterations ahead *within* the loop (§VII-A, group 1). The push for
// iteration i+D executes only D loop bodies before the pop for iteration
// i+D is fetched; when the predicate's load misses even in the L1, that
// separation is insufficient and the pop takes a BQ miss. The paper
// measured a ~20% BQ miss rate for tiff-2-bw, making it the one workload
// where the speculative-pop policy clearly beats stalling (Fig 21c).
//
// Variants: base (plain loop); cfd (software-pipelined push D=4 ahead) —
// the one workload whose "cfd" variant maps to the Hoist transform rather
// than strip-mined decoupling.
const (
	tiffArrBase = 0x1300_0000
	tiffOutBase = 0x1400_0000
	tiffResult  = 0x0049_0000
	tiffArrN    = 16 << 10 // 128KB: streams through L1, lives in L2
	tiffAhead   = 4
)

func init() {
	register(&Spec{
		Name:     "tifflike",
		Analog:   "tiff-2-bw (cBench)",
		Function: "greyscale threshold analog",
		TimePct:  15,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD},
		DefaultN: 150_000,
		TestN:    3_000,
		Kernel:   tiffKernel,
		Xforms:   map[Variant]xform.Transform{CFD: xform.THoist},
	})
}

func tiffMem() *mem.Memory {
	rng := rngFor("tifflike")
	m := mem.New()
	arr := make([]uint64, tiffArrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(tiffArrBase, arr)
	return m
}

func tiffKernel(n int64) (xform.Form, *mem.Memory, error) {
	passN := min(n, tiffArrN)
	if passN <= 2*tiffAhead {
		passN = 2 * tiffAhead // the hoist needs a prologue and a drain
	}
	passes := (n + passN - 1) / passN
	k := &xform.Kernel{
		Name: "tifflike",
		Init: []isa.Inst{
			li(3, 500),
			li(12, 0),
			li(15, 3),
			li(20, passes),
		},
		PassInit: []isa.Inst{
			li(1, tiffArrBase),
			li(2, tiffOutBase),
			li(4, passN),
		},
		Slice: []isa.Inst{
			ld(isa.LD, 7, 1, 0),
			rr(isa.SLT, 8, 7, 3),
		},
		CD: []isa.Inst{
			rr(isa.MUL, 9, 7, 15),
			ri(isa.ADDI, 9, 9, 29),
			st(isa.SD, 9, 2, 0),
			rr(isa.ADD, 12, 12, 9),
			rr(isa.XOR, 10, 12, 7),
			ri(isa.SHRI, 10, 10, 1),
			rr(isa.ADD, 12, 12, 10),
		},
		Step: []isa.Inst{
			ri(isa.ADDI, 1, 1, 8),
			ri(isa.ADDI, 2, 2, 8),
		},
		Fini: []isa.Inst{
			li(30, tiffResult),
			st(isa.SD, 12, 30, 0),
		},
		Pred:      8,
		Counter:   4,
		Passes:    20,
		Lookahead: tiffAhead,
		Scratch:   []isa.Reg{16, 17, 18, 19},
		NoAlias:   true,
		Note:      "pixel < threshold",
	}
	return k, tiffMem(), nil
}
