package workload

import (
	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
)

// tifflike mirrors tiff-2-bw, the paper's one application where no loop
// decoupling was performed: the predicate computation is merely hoisted a
// few iterations ahead *within* the loop (§VII-A, group 1). The push for
// iteration i+D executes only D loop bodies before the pop for iteration
// i+D is fetched; when the predicate's load misses even in the L1, that
// separation is insufficient and the pop takes a BQ miss. The paper
// measured a ~20% BQ miss rate for tiff-2-bw, making it the one workload
// where the speculative-pop policy clearly beats stalling (Fig 21c).
//
// Variants: base (plain loop); cfd (software-pipelined push D=4 ahead).
const (
	tiffArrBase = 0x1300_0000
	tiffOutBase = 0x1400_0000
	tiffResult  = 0x0049_0000
	tiffArrN    = 16 << 10 // 128KB: streams through L1, lives in L2
	tiffAhead   = 4
)

func init() {
	register(&Spec{
		Name:     "tifflike",
		Analog:   "tiff-2-bw (cBench)",
		Function: "greyscale threshold analog",
		TimePct:  15,
		Class:    prog.SeparableTotal,
		Variants: []Variant{Base, CFD},
		DefaultN: 150_000,
		TestN:    3_000,
		Build:    buildTiff,
	})
}

func tiffMem() *mem.Memory {
	rng := rngFor("tifflike")
	m := mem.New()
	arr := make([]uint64, tiffArrN)
	for i := range arr {
		arr[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(tiffArrBase, arr)
	return m
}

func tiffCD(b *prog.Builder) {
	b.R(isa.MUL, 9, 7, 15)
	b.I(isa.ADDI, 9, 9, 29)
	b.Store(isa.SD, 9, 2, 0)
	b.R(isa.ADD, 12, 12, 9)
	b.R(isa.XOR, 10, 12, 7)
	b.I(isa.SHRI, 10, 10, 1)
	b.R(isa.ADD, 12, 12, 10)
}

func buildTiff(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	passN := n
	if passN > tiffArrN {
		passN = tiffArrN
	}
	if passN <= 2*tiffAhead {
		passN = 2 * tiffAhead
	}
	passes := (n + passN - 1) / passN

	b := prog.NewBuilder()
	b.Li(3, 500)
	b.Li(12, 0)
	b.Li(15, 3)
	b.Li(20, passes)
	b.Label("pass")
	b.Li(1, tiffArrBase) // x cursor (body)
	b.Li(2, tiffOutBase)

	switch v {
	case Base:
		b.Li(4, passN)
		b.Label("loop")
		b.Load(isa.LD, 7, 1, 0)
		b.R(isa.SLT, 8, 7, 3)
		b.Note("pixel < threshold", prog.SeparableTotal)
		b.Branch(isa.BEQ, 8, 0, "skip")
		tiffCD(b)
		b.Label("skip")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "loop")

	case CFD:
		// Prologue: push predicates for the first D iterations.
		b.Li(19, tiffArrBase) // lookahead cursor
		b.Li(18, tiffAhead)
		b.Label("pro")
		b.Load(isa.LD, 7, 19, 0)
		b.R(isa.SLT, 8, 7, 3)
		b.PushBQ(8)
		b.I(isa.ADDI, 19, 19, 8)
		b.I(isa.ADDI, 18, 18, -1)
		b.Branch(isa.BNE, 18, 0, "pro")
		// Steady state: consume predicate i, push predicate i+D.
		b.Li(4, passN-tiffAhead)
		b.Label("loop")
		b.Note("pixel < threshold (hoisted)", prog.SeparableTotal)
		b.BranchBQ("work")
		b.Jump("skip")
		b.Label("work")
		b.Load(isa.LD, 7, 1, 0)
		tiffCD(b)
		b.Label("skip")
		b.Load(isa.LD, 7, 19, 0)
		b.R(isa.SLT, 8, 7, 3)
		b.PushBQ(8)
		b.I(isa.ADDI, 19, 19, 8)
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "loop")
		// Epilogue: drain the last D predicates.
		b.Li(4, tiffAhead)
		b.Label("tail")
		b.Note("pixel < threshold (drain)", prog.SeparableTotal)
		b.BranchBQ("twork")
		b.Jump("tskip")
		b.Label("twork")
		b.Load(isa.LD, 7, 1, 0)
		tiffCD(b)
		b.Label("tskip")
		b.I(isa.ADDI, 1, 1, 8)
		b.I(isa.ADDI, 2, 2, 8)
		b.I(isa.ADDI, 4, 4, -1)
		b.Branch(isa.BNE, 4, 0, "tail")

	default:
		return nil, nil, badVariant("tifflike", v)
	}

	b.I(isa.ADDI, 20, 20, -1)
	b.Branch(isa.BNE, 20, 0, "pass")
	b.Li(30, tiffResult)
	b.Store(isa.SD, 12, 30, 0)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return p, tiffMem(), nil
}
