// Package workload provides synthetic analogs of the paper's evaluated
// benchmarks. Each workload reproduces the control-flow idiom of one
// application the paper targets — the separable branch of soplex (Fig 8),
// astar's partially separable branch with nested conditions and an early
// exit (Fig 22), astar's separable loop-branch (Fig 14), and so on — with a
// deterministic data generator sized to exercise the same memory levels.
//
// Every workload builds multiple program variants (baseline, CFD, CFD+,
// DFD, TQ combinations) that perform identical architectural work: the
// final memory of every variant must match the baseline's, which the tests
// enforce through the functional emulator.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cfd/internal/mem"
	"cfd/internal/prog"
)

// Variant names a program transformation of a workload.
type Variant string

// Variants.
const (
	Base    Variant = "base"    // unmodified loop
	CFD     Variant = "cfd"     // control-flow decoupling (BQ)
	CFDPlus Variant = "cfd+"    // CFD with the value queue (§IV-B)
	DFD     Variant = "dfd"     // data-flow decoupling: prefetch loop (§V)
	CFDDFD  Variant = "cfd+dfd" // both applied simultaneously (Fig 26)
	CFDTQ   Variant = "cfdtq"   // trip-count queue on the loop-branch (§IV-C)
	CFDBQ   Variant = "cfdbq"   // BQ on the inner branch only (Fig 28)
	CFDBQTQ Variant = "cfdbqtq" // BQ and TQ together (Fig 28)
)

// ChunkSize is the strip-mining chunk: CFD-class loops iterate thousands of
// times, so the loop is strip-mined into chunks no larger than the BQ size
// (§III-B).
const ChunkSize = 128

// Spec describes one workload.
type Spec struct {
	Name     string
	Analog   string // the paper benchmark this mirrors
	Function string // "function" name for the Table V/VI analog
	// TimePct is the fraction of whole-benchmark time spent in the
	// region (gprof column of Tables V/VI), used for Amdahl projections.
	TimePct int
	// Class is the dominant hard-branch class.
	Class prog.BranchClass
	// Variants lists the transformations this workload implements.
	Variants []Variant
	// DefaultN is the input size (elements) for full experiment runs;
	// TestN is a reduced size for unit tests.
	DefaultN int64
	TestN    int64
	// Build constructs the program and initial memory for a variant.
	Build func(v Variant, n int64) (*prog.Program, *mem.Memory, error)
}

// HasVariant reports whether v is implemented.
func (s *Spec) HasVariant(v Variant) bool {
	for _, x := range s.Variants {
		if x == v {
			return true
		}
	}
	return false
}

// MustBuild is Build that panics on error (workloads are statically
// known-good).
func (s *Spec) MustBuild(v Variant, n int64) (*prog.Program, *mem.Memory) {
	p, m, err := s.Build(v, n)
	if err != nil {
		panic(fmt.Sprintf("workload %s/%s: %v", s.Name, v, err))
	}
	return p, m
}

var registry = map[string]*Spec{}

// Register adds a workload to the registry, rejecting malformed specs and
// duplicate names. The statically known workloads register through the
// init-time register wrapper; tests use Register and Deregister directly to
// install transient (including deliberately corrupt) workloads.
func Register(s *Spec) error {
	switch {
	case s == nil || s.Name == "":
		return fmt.Errorf("workload: register: spec has no name")
	case s.Build == nil:
		return fmt.Errorf("workload %s: register: nil Build function", s.Name)
	case len(s.Variants) == 0:
		return fmt.Errorf("workload %s: register: no variants", s.Name)
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("workload %s: register: duplicate name", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// Deregister removes a workload installed by Register and reports whether
// the name was present.
func Deregister(name string) bool {
	_, ok := registry[name]
	delete(registry, name)
	return ok
}

// register is the init-time path for the built-in workloads: a registration
// error there is a programming bug in this package, so it panics.
func register(s *Spec) *Spec {
	if err := Register(s); err != nil {
		panic(err)
	}
	return s
}

// ByName returns a registered workload.
func ByName(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every registered workload, sorted by name.
func All() []*Spec {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Spec, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// CFDClass returns the workloads CFD applies to (the Fig 18/19 set).
func CFDClass() []*Spec {
	var out []*Spec
	for _, s := range All() {
		if s.Class.Separable() {
			out = append(out, s)
		}
	}
	return out
}

// badVariant builds the standard error for an unimplemented variant.
func badVariant(name string, v Variant) error {
	return fmt.Errorf("workload %s: variant %q not implemented", name, v)
}

// rngFor returns the deterministic data generator for a workload.
func rngFor(name string) *rand.Rand {
	var seed int64
	for _, b := range name {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed))
}

// SeparablePCs extracts the PCs of branches annotated separable — the set
// "perfected" in the Base+PerfectCFD configuration of Fig 19.
func SeparablePCs(p *prog.Program) []uint64 {
	var pcs []uint64
	for pc, note := range p.Notes {
		if note.Class.Separable() {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}
