// Package workload provides synthetic analogs of the paper's evaluated
// benchmarks. Each workload reproduces the control-flow idiom of one
// application the paper targets — the separable branch of soplex (Fig 8),
// astar's partially separable branch with nested conditions and an early
// exit (Fig 22), astar's separable loop-branch (Fig 14), and so on — with a
// deterministic data generator sized to exercise the same memory levels.
//
// Every workload builds multiple program variants (baseline, CFD, CFD+,
// DFD, TQ combinations) that perform identical architectural work: the
// final memory of every variant must match the baseline's, which the tests
// enforce through the functional emulator.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"cfd/internal/isa"
	"cfd/internal/mem"
	"cfd/internal/prog"
	"cfd/internal/xform"
)

// Variant names a program transformation of a workload.
type Variant string

// Variants.
const (
	Base    Variant = "base"    // unmodified loop
	CFD     Variant = "cfd"     // control-flow decoupling (BQ)
	CFDPlus Variant = "cfd+"    // CFD with the value queue (§IV-B)
	DFD     Variant = "dfd"     // data-flow decoupling: prefetch loop (§V)
	CFDDFD  Variant = "cfd+dfd" // both applied simultaneously (Fig 26)
	CFDTQ   Variant = "cfdtq"   // trip-count queue on the loop-branch (§IV-C)
	CFDBQ   Variant = "cfdbq"   // BQ on the inner branch only (Fig 28)
	CFDBQTQ Variant = "cfdbqtq" // BQ and TQ together (Fig 28)
)

// Spec describes one workload.
type Spec struct {
	Name     string
	Analog   string // the paper benchmark this mirrors
	Function string // "function" name for the Table V/VI analog
	// TimePct is the fraction of whole-benchmark time spent in the
	// region (gprof column of Tables V/VI), used for Amdahl projections.
	TimePct int
	// Class is the dominant hard-branch class.
	Class prog.BranchClass
	// Variants lists the transformations this workload implements.
	Variants []Variant
	// DefaultN is the input size (elements) for full experiment runs;
	// TestN is a reduced size for unit tests.
	DefaultN int64
	TestN    int64
	// Build constructs the program and initial memory for a variant.
	// Kernel-shaped workloads leave it nil: registration synthesizes it
	// from Kernel through the xform pass pipeline, so every variant is
	// generated, not hand-written. Only workloads whose control flow is
	// not kernel-shaped (the classification-study set) provide Build.
	Build func(v Variant, n int64) (*prog.Program, *mem.Memory, error)
	// Kernel returns the workload's structured kernel form and initial
	// memory at size n. The variants are produced by applying the pass
	// pipeline's transforms to this single description.
	Kernel func(n int64) (xform.Form, *mem.Memory, error)
	// Xforms overrides the variant→transform mapping where the two names
	// differ (tifflike's "cfd" is the hoist schedule, §VII-A); absent
	// entries map the variant name to the transform of the same name.
	Xforms map[Variant]xform.Transform
}

// Transform returns the pass-pipeline transform that builds variant v.
func (s *Spec) Transform(v Variant) xform.Transform {
	if t, ok := s.Xforms[v]; ok {
		return t
	}
	return xform.Transform(v)
}

// buildFromKernel is the synthesized Build for kernel-shaped workloads:
// construct the kernel once, apply the variant's transform.
func (s *Spec) buildFromKernel(v Variant, n int64) (*prog.Program, *mem.Memory, error) {
	if !s.HasVariant(v) {
		return nil, nil, badVariant(s.Name, v)
	}
	f, m, err := s.Kernel(n)
	if err != nil {
		return nil, nil, err
	}
	p, err := f.Apply(s.Transform(v), xform.DefaultParams())
	if err != nil {
		return nil, nil, err
	}
	return p, m, nil
}

// HasVariant reports whether v is implemented.
func (s *Spec) HasVariant(v Variant) bool {
	for _, x := range s.Variants {
		if x == v {
			return true
		}
	}
	return false
}

// MustBuild is Build that panics on error (workloads are statically
// known-good).
func (s *Spec) MustBuild(v Variant, n int64) (*prog.Program, *mem.Memory) {
	p, m, err := s.Build(v, n)
	if err != nil {
		panic(fmt.Sprintf("workload %s/%s: %v", s.Name, v, err))
	}
	return p, m
}

var registry = map[string]*Spec{}

// Register adds a workload to the registry, rejecting malformed specs and
// duplicate names. The statically known workloads register through the
// init-time register wrapper; tests use Register and Deregister directly to
// install transient (including deliberately corrupt) workloads.
func Register(s *Spec) error {
	switch {
	case s == nil || s.Name == "":
		return fmt.Errorf("workload: register: spec has no name")
	case s.Build == nil && s.Kernel == nil:
		return fmt.Errorf("workload %s: register: nil Build function and no Kernel", s.Name)
	case len(s.Variants) == 0:
		return fmt.Errorf("workload %s: register: no variants", s.Name)
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("workload %s: register: duplicate name", s.Name)
	}
	if s.Build == nil {
		s.Build = s.buildFromKernel
	}
	registry[s.Name] = s
	return nil
}

// Deregister removes a workload installed by Register and reports whether
// the name was present.
func Deregister(name string) bool {
	_, ok := registry[name]
	delete(registry, name)
	return ok
}

// register is the init-time path for the built-in workloads: a registration
// error there is a programming bug in this package, so it panics.
func register(s *Spec) *Spec {
	if err := Register(s); err != nil {
		panic(err)
	}
	return s
}

// ByName returns a registered workload.
func ByName(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every registered workload, sorted by name.
func All() []*Spec {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Spec, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// CFDClass returns the workloads CFD applies to (the Fig 18/19 set).
func CFDClass() []*Spec {
	var out []*Spec
	for _, s := range All() {
		if s.Class.Separable() {
			out = append(out, s)
		}
	}
	return out
}

// badVariant builds the standard error for an unimplemented variant.
func badVariant(name string, v Variant) error {
	return fmt.Errorf("workload %s: variant %q not implemented", name, v)
}

// rngFor returns the deterministic data generator for a workload.
func rngFor(name string) *rand.Rand {
	var seed int64
	for _, b := range name {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed))
}

// Instruction-literal helpers for the kernel block descriptions. The kernel
// forms take raw straight-line []isa.Inst blocks (no labels or branches), so
// the builder is not involved; these keep the blocks as readable as
// assembler listings.

// li loads an immediate: rd = v.
func li(rd isa.Reg, v int64) isa.Inst { return isa.Inst{Op: isa.ADDI, Rd: rd, Imm: v} }

// ri is a register-immediate ALU op: rd = rs1 op imm.
func ri(op isa.Op, rd, rs1 isa.Reg, imm int64) isa.Inst {
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}
}

// rr is a register-register ALU op: rd = rs1 op rs2.
func rr(op isa.Op, rd, rs1, rs2 isa.Reg) isa.Inst {
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// ld is a load: rd = mem[base+off].
func ld(op isa.Op, rd, base isa.Reg, off int64) isa.Inst {
	return isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}
}

// st is a store: mem[base+off] = src.
func st(op isa.Op, src, base isa.Reg, off int64) isa.Inst {
	return isa.Inst{Op: op, Rs1: base, Rs2: src, Imm: off}
}

// SeparablePCs extracts the PCs of branches annotated separable — the set
// "perfected" in the Base+PerfectCFD configuration of Fig 19.
func SeparablePCs(p *prog.Program) []uint64 {
	var pcs []uint64
	for pc, note := range p.Notes {
		if note.Class.Separable() {
			pcs = append(pcs, pc)
		}
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}
