package workload

import (
	"testing"

	"cfd/internal/emu"
	"cfd/internal/prog"
)

// runEmu executes a workload variant on the functional emulator.
func runEmu(t *testing.T, s *Spec, v Variant, n int64) *emu.Machine {
	t.Helper()
	p, m, err := s.Build(v, n)
	if err != nil {
		t.Fatalf("%s/%s: %v", s.Name, v, err)
	}
	mc := emu.New(p, m)
	if err := mc.Run(100_000_000); err != nil {
		t.Fatalf("%s/%s: %v", s.Name, v, err)
	}
	return mc
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"astar1like", "astar2like", "bzip2like", "eclatlike",
		"gromacslike", "h264like", "hammocklike", "inseparablelike", "jpeglike",
		"mcflike", "mummerlike", "namdlike", "soplexlike", "streamlike", "tifflike", "tiffmedianlike",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d workloads, want %d", len(all), len(want))
	}
	for i, s := range all {
		if s.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, s.Name, want[i])
		}
		if _, ok := ByName(s.Name); !ok {
			t.Errorf("ByName(%s) missing", s.Name)
		}
	}
}

func TestAllVariantsMatchBaseline(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := runEmu(t, s, Base, s.TestN)
			for _, v := range s.Variants {
				if v == Base {
					continue
				}
				got := runEmu(t, s, v, s.TestN)
				if !base.Mem.Equal(got.Mem) {
					t.Errorf("%s/%s final memory diverges from base", s.Name, v)
				}
				if got.BQ.Len() != 0 {
					t.Errorf("%s/%s leaves %d BQ entries", s.Name, v, got.BQ.Len())
				}
				if got.VQ.Len() != 0 {
					t.Errorf("%s/%s leaves %d VQ entries", s.Name, v, got.VQ.Len())
				}
				if got.TQ.Len() != 0 {
					t.Errorf("%s/%s leaves %d TQ entries", s.Name, v, got.TQ.Len())
				}
			}
		})
	}
}

func TestVariantsDeclaredAreBuildable(t *testing.T) {
	for _, s := range All() {
		for _, v := range s.Variants {
			if _, _, err := s.Build(v, 64); err != nil {
				t.Errorf("%s/%s: %v", s.Name, v, err)
			}
		}
		if _, _, err := s.Build(Variant("bogus"), 64); err == nil {
			t.Errorf("%s accepted a bogus variant", s.Name)
		}
		if !s.HasVariant(Base) {
			t.Errorf("%s lacks a Base variant", s.Name)
		}
	}
}

func TestSeparableAnnotations(t *testing.T) {
	for _, s := range All() {
		p, _, err := s.Build(Base, s.TestN)
		if err != nil {
			t.Fatal(err)
		}
		pcs := SeparablePCs(p)
		if s.Class.Separable() && len(pcs) == 0 {
			t.Errorf("%s: CFD-class workload has no separable-annotated branches", s.Name)
		}
		if s.Class == prog.EasyToPredict && len(pcs) != 0 {
			t.Errorf("%s: easy workload has separable annotations", s.Name)
		}
	}
}

func TestCFDVariantsUseQueues(t *testing.T) {
	type count struct{ push, pop, vq, tq int }
	for _, s := range All() {
		for _, v := range s.Variants {
			if v == Base || v == DFD {
				continue
			}
			p, _, _ := s.Build(v, s.TestN)
			var c count
			for _, in := range p.Insts {
				switch in.Op.String() {
				case "push_bq":
					c.push++
				case "branch_bq":
					c.pop++
				case "push_vq", "pop_vq":
					c.vq++
				case "push_tq", "pop_tq":
					c.tq++
				}
			}
			switch v {
			case CFD, CFDDFD, CFDBQ:
				if c.push == 0 || c.pop == 0 {
					t.Errorf("%s/%s: no BQ instructions", s.Name, v)
				}
			case CFDPlus:
				if c.vq == 0 {
					t.Errorf("%s/%s: no VQ instructions", s.Name, v)
				}
			case CFDTQ:
				if c.tq == 0 {
					t.Errorf("%s/%s: no TQ instructions", s.Name, v)
				}
			case CFDBQTQ:
				if c.tq == 0 || c.push == 0 {
					t.Errorf("%s/%s: missing TQ or BQ instructions", s.Name, v)
				}
			}
		}
	}
}

func TestInstructionOverheads(t *testing.T) {
	// CFD variants retire more instructions than base for the same work
	// (Table III); the overhead factor must stay within plausible bounds.
	for _, s := range CFDClass() {
		base := runEmu(t, s, Base, s.TestN)
		for _, v := range s.Variants {
			if v == Base {
				continue
			}
			got := runEmu(t, s, v, s.TestN)
			ratio := float64(got.Retired) / float64(base.Retired)
			// astar region #1's three-loop decoupling plus the DFD
			// prefetch loop is the heaviest combination (the paper's
			// region #1 alone is 1.86x, DFD 1.31x).
			if ratio < 0.85 || ratio > 3.3 {
				t.Errorf("%s/%s overhead = %.2f, outside [0.85, 3.3]", s.Name, v, ratio)
			}
		}
	}
}

func TestAstar1EarlyExitTriggers(t *testing.T) {
	s, _ := ByName("astar1like")
	base := runEmu(t, s, Base, s.TestN)
	// The early exit fires ~95% through: strictly fewer iterations than n
	// were fully processed. The cnt result must be positive and below n.
	cnt := base.Mem.Read(astar1Result+8, 8)
	if cnt == 0 || cnt >= uint64(s.TestN) {
		t.Errorf("astar1 processed cnt = %d, want within (0, %d)", cnt, s.TestN)
	}
}

func TestAstar2TripCountsRespected(t *testing.T) {
	s, _ := ByName("astar2like")
	base := runEmu(t, s, Base, s.TestN)
	tq := runEmu(t, s, CFDTQ, s.TestN)
	if base.Mem.Read(astar2Result, 8) != tq.Mem.Read(astar2Result, 8) {
		t.Error("TQ variant accumulator differs")
	}
	if base.Mem.Read(astar2Result+8, 8) != tq.Mem.Read(astar2Result+8, 8) {
		t.Error("TQ variant count differs")
	}
}

func TestDefaultSizesUsable(t *testing.T) {
	for _, s := range All() {
		if s.DefaultN <= 0 || s.TestN <= 0 || s.TestN > s.DefaultN {
			t.Errorf("%s sizes: default=%d test=%d", s.Name, s.DefaultN, s.TestN)
		}
	}
}
