package xform

import (
	"cfd/internal/prog"
)

// Transform names one code transformation of the pass pipeline. The
// string values match the workload variant names so a variant maps to its
// transform by name unless a workload overrides the mapping.
type Transform string

// The transform menu.
const (
	TBase      Transform = "base"      // untransformed loop
	TCFD       Transform = "cfd"       // control-flow decoupling, recomputed slices (§III)
	TCFDPlus   Transform = "cfd+"      // CFD with the value queue (§IV-B)
	TDFD       Transform = "dfd"       // data-flow decoupling: prefetch loop (§V)
	TCFDDFD    Transform = "cfd+dfd"   // CFD and DFD combined (Fig 26)
	THoist     Transform = "hoist"     // software-pipelined predicate hoisting (distance-D push-ahead)
	TIfConvert Transform = "ifconvert" // if-conversion (hammock elimination, §II-B)
	TCFDTQ     Transform = "cfdtq"     // trip-count queue on the loop-branch (§IV-C)
	TCFDBQ     Transform = "cfdbq"     // BQ on the inner branch only (Fig 28)
	TCFDBQTQ   Transform = "cfdbqtq"   // BQ and TQ together (Fig 28)
)

// AllTransforms lists every transform, in presentation order.
var AllTransforms = []Transform{
	TBase, TCFD, TCFDPlus, TDFD, TCFDDFD, THoist, TIfConvert,
	TCFDTQ, TCFDBQ, TCFDBQTQ,
}

// Form is an annotated kernel the pass pipeline can transform: the
// single-level Kernel, the two-level NestedKernel, and the
// inner-loop-bearing LoopKernel all implement it. A Form is the single
// source of truth for a workload's code: every program variant is
// generated from it.
type Form interface {
	// KernelName identifies the kernel in diagnostics.
	KernelName() string
	// Classify performs the §II-B separability analysis, returning the
	// hard branch's class and, when the kernel is inseparable, the
	// reason.
	Classify() (prog.BranchClass, error)
	// Transforms lists the transforms this form can accept (a given
	// kernel may still reject some of them — Apply reports why).
	Transforms() []Transform
	// Apply runs one transform and returns the generated program, or a
	// descriptive error explaining the rejection.
	Apply(t Transform, p Params) (*prog.Program, error)
}

// TransformStatus reports whether one transform accepts a kernel.
type TransformStatus struct {
	Transform Transform
	Err       error // nil = accepted
}

// Acceptance applies every known transform to a form and records, per
// transform, whether it was accepted or the rejection reason — the
// inspectable §II-B taxonomy behind cfdsim -classify.
func Acceptance(f Form, p Params) []TransformStatus {
	out := make([]TransformStatus, 0, len(AllTransforms))
	for _, t := range AllTransforms {
		_, err := f.Apply(t, p)
		out = append(out, TransformStatus{Transform: t, Err: err})
	}
	return out
}
