package xform

import (
	"math/rand"
	"testing"

	"cfd/internal/emu"
	"cfd/internal/isa"
	"cfd/internal/mem"
)

// FuzzXformEquivalence is the pipeline's differential gate in fuzz form:
// random straight-line Slice/CD/Step blocks are assembled into a Kernel,
// and every transform that accepts the kernel must generate a program that
// retires exactly the baseline's final memory on the functional emulator.
//
// The blocks are decoded from fuzz bytes through fixed instruction menus
// that keep the kernel contract honest by construction: slice loads walk
// one region (r1, from fuzzLoadBase), CD stores another (r2, from
// fuzzStoreBase), so the NoAlias assertion the kernel makes is true and a
// memory mismatch always means a transform bug, never a contract
// violation. One CD menu entry deliberately writes a slice live-in so the
// fuzzer also exercises the rejection path.
const (
	fuzzLoadBase  = 0x100000
	fuzzStoreBase = 0x800000
)

// decodeSliceInst maps one fuzz byte to a predicate-slice instruction.
// r7 holds the loaded element, r3/r14/r15 are Init constants.
func decodeSliceInst(b byte) isa.Inst {
	switch b % 5 {
	case 0:
		return isa.Inst{Op: isa.ADDI, Rd: 7, Rs1: 7, Imm: 1}
	case 1:
		return isa.Inst{Op: isa.XOR, Rd: 7, Rs1: 7, Rs2: 14}
	case 2:
		// A slice temp the CD also reads: a communicated value the
		// consuming loop must recompute (or receive through the VQ).
		return isa.Inst{Op: isa.SHRI, Rd: 9, Rs1: 7, Imm: 2}
	case 3:
		return isa.Inst{Op: isa.ADD, Rd: 7, Rs1: 7, Rs2: 15}
	default:
		// A second load: the DFD prefetch slice must carry it.
		return isa.Inst{Op: isa.LD, Rd: 9, Rs1: 1, Imm: 8}
	}
}

// decodeCDInst maps one fuzz byte to a control-dependent instruction.
func decodeCDInst(b byte) isa.Inst {
	switch b % 8 {
	case 0:
		return isa.Inst{Op: isa.MUL, Rd: 10, Rs1: 7, Rs2: 14}
	case 1:
		return isa.Inst{Op: isa.ADDI, Rd: 10, Rs1: 10, Imm: 17}
	case 2:
		return isa.Inst{Op: isa.SD, Rs1: 2, Rs2: 10, Imm: 0}
	case 3:
		return isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 10}
	case 4:
		return isa.Inst{Op: isa.XOR, Rd: 11, Rs1: 12, Rs2: 7}
	case 5:
		return isa.Inst{Op: isa.SHRI, Rd: 11, Rs1: 11, Imm: 2}
	case 6:
		return isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11}
	default:
		// Loop-carried dependence: writes the threshold the slice
		// reads. Classify must reject; decoupling transforms must
		// return an error rather than a wrong program.
		return isa.Inst{Op: isa.ADDI, Rd: 3, Rs1: 3, Imm: 1}
	}
}

// fuzzKernel assembles a Kernel from the decoded blocks. The slice always
// loads through r1 and ends by writing the predicate; the CD always ends
// with a store so the transforms have an observable effect to preserve.
func fuzzKernel(sliceB, cdB []byte, n int64) *Kernel {
	slice := []isa.Inst{{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0}}
	for _, b := range sliceB {
		slice = append(slice, decodeSliceInst(b))
	}
	slice = append(slice, isa.Inst{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7})

	var cd []isa.Inst
	for _, b := range cdB {
		cd = append(cd, decodeCDInst(b))
	}
	cd = append(cd, isa.Inst{Op: isa.SD, Rs1: 2, Rs2: 12, Imm: 8})

	return &Kernel{
		Name: "fuzz",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: fuzzLoadBase},
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: fuzzStoreBase},
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
			{Op: isa.ADDI, Rd: 14, Rs1: 0, Imm: 3},
			{Op: isa.ADDI, Rd: 15, Rs1: 0, Imm: 5},
		},
		Slice: slice,
		CD:    cd,
		Step: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 16},
		},
		Pred:      8,
		Counter:   4,
		Lookahead: 4,
		Scratch:   []isa.Reg{20, 21, 22, 23},
		NoAlias:   true,
		Note:      "fuzzed predicate",
	}
}

func fuzzMem(n, seed int64) *mem.Memory {
	rng := rand.New(rand.NewSource(seed))
	m := mem.New()
	vals := make([]uint64, n+1) // +1: the second-load menu entry reads a[i+1]
	for i := range vals {
		vals[i] = uint64(rng.Int63n(1000))
	}
	m.WriteUint64s(fuzzLoadBase, vals)
	return m
}

func FuzzXformEquivalence(f *testing.F) {
	// Corpus seeded from the migrated workload kernels' block shapes:
	// streamlike (MUL/ADDI/store/acc chain), soplexlike (mix + store),
	// mcflike (slice feeds the CD a recomputed pointer analog), a
	// second-load slice, and a loop-carried-dependence rejection case.
	f.Add([]byte{}, []byte{0, 1, 2, 3, 4, 5, 6}, int64(300), int64(1))
	f.Add([]byte{0}, []byte{0, 1, 4, 2, 3, 6}, int64(700), int64(2))
	f.Add([]byte{2}, []byte{0, 3, 2}, int64(150), int64(3))
	f.Add([]byte{4, 1}, []byte{0, 2, 3}, int64(260), int64(4))
	f.Add([]byte{}, []byte{7, 0, 2}, int64(100), int64(5))

	f.Fuzz(func(t *testing.T, sliceB, cdB []byte, n, seed int64) {
		if n < 1 {
			n = 1
		}
		n %= 2048
		if n == 0 {
			n = 2048
		}
		if len(sliceB) > 6 {
			sliceB = sliceB[:6]
		}
		if len(cdB) > 12 {
			cdB = cdB[:12]
		}
		k := fuzzKernel(sliceB, cdB, n)
		if err := k.Validate(); err != nil {
			t.Skip() // structurally invalid by construction is out of scope
		}
		base, err := k.Apply(TBase, DefaultParams())
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		baseMem := fuzzMem(n, seed)
		if mc := emu.New(base, baseMem); mc.Run(20_000_000) != nil {
			t.Fatal("base program did not halt")
		}
		want := baseMem.Checksum()

		for _, tr := range k.Transforms() {
			if tr == TBase {
				continue
			}
			p, err := k.Apply(tr, DefaultParams())
			if err != nil {
				continue // this transform rejects the kernel: fine
			}
			m := fuzzMem(n, seed)
			if mc := emu.New(p, m); mc.Run(20_000_000) != nil {
				t.Fatalf("%s: generated program did not halt", tr)
			}
			if got := m.Checksum(); got != want {
				t.Errorf("%s: final memory %#x, base %#x (slice=%v cd=%v n=%d)",
					tr, got, want, sliceB, cdB, n)
			}
		}
	})
}
