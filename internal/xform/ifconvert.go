package xform

import (
	"fmt"

	"cfd/internal/isa"
	"cfd/internal/prog"
)

// IfConvert emits the if-conversion transformation — the paper's answer to
// the *hammock* class (§II-B): the control-dependent region executes
// unconditionally and its effects are committed with conditional moves, so
// the hard branch disappears entirely.
//
//   - Registers the CD region writes are snapshotted first and restored
//     with CMOVZ when the predicate is false.
//   - Guarded stores become read-modify-write selects: load the old value,
//     CMOVNZ the new one over it under the predicate, store
//     unconditionally. (gcc refused to if-convert the paper's hammocks
//     *because* they guard stores — §II-B; a manual or smarter pass can,
//     given the caller's assertion that the address is always safe.)
//
// The transformation needs one scratch register per CD-written register
// plus one for the store data select, beyond the two the strip-miner uses.
func (k *Kernel) IfConvert() (*prog.Program, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if k.hasExit() {
		return nil, fmt.Errorf("xform %s: if-conversion cannot eliminate an early-exit branch: the exit is a control transfer, not a value select", k.Name)
	}
	// Registers to snapshot: everything CD writes (they must keep their
	// old values when the predicate is false).
	var saved []isa.Reg
	w := blockWrites(k.CD)
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if w.has(r) {
			saved = append(saved, r)
		}
	}
	needScratch := len(saved) + 1
	if len(k.Scratch) < needScratch {
		return nil, fmt.Errorf("xform %s: if-conversion needs %d scratch registers, have %d",
			k.Name, needScratch, len(k.Scratch))
	}
	shadows := k.Scratch[:len(saved)]
	sel := k.Scratch[len(saved)]

	b := prog.NewBuilder()
	emitBlock(b, k.Init)
	k.passOpen(b)
	b.Label("loop")
	emitBlock(b, k.Slice)
	// Snapshot CD-written registers.
	for i, r := range saved {
		b.Mov(shadows[i], r)
	}
	// CD executes unconditionally; stores become selects.
	for _, in := range k.CD {
		if in.Op.IsStore() {
			loadOp := loadFor(in.Op)
			b.Load(loadOp, sel, in.Rs1, in.Imm)
			b.R(isa.CMOVNZ, sel, in.Rs2, k.Pred)
			b.Store(in.Op, sel, in.Rs1, in.Imm)
			continue
		}
		b.Raw(in)
	}
	// Commit: restore old values where the predicate was false.
	for i, r := range saved {
		b.R(isa.CMOVZ, r, shadows[i], k.Pred)
	}
	emitBlock(b, k.Step)
	b.I(isa.ADDI, k.Counter, k.Counter, -1)
	b.Branch(isa.BNE, k.Counter, isa.Zero, "loop")
	k.passClose(b)
	k.finish(b)
	return b.Build()
}

// loadFor returns the load matching a store's width (zero-extending; the
// reloaded value is stored back verbatim).
func loadFor(op isa.Op) isa.Op {
	switch op {
	case isa.SD:
		return isa.LD
	case isa.SW:
		return isa.LWU
	case isa.SH:
		return isa.LHU
	case isa.SB:
		return isa.LBU
	}
	return isa.LD
}
