package xform

import (
	"testing"

	"cfd/internal/config"
	"cfd/internal/isa"
	"cfd/internal/pipeline"
	"cfd/internal/prog"
)

// sizedKernel builds a kernel with a parameterized CD size: an accumulator
// update plus filler ALU ops, optionally with a guarded store (the case
// gcc refuses to if-convert, §II-B — the select-store's read-modify-write
// is a real cost our model exposes).
func sizedKernel(n int64, cdFiller int, withStore bool) *Kernel {
	cd := []isa.Inst{
		{Op: isa.SHLI, Rd: 9, Rs1: 7, Imm: 1},
		{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
	}
	if withStore {
		cd = append(cd, isa.Inst{Op: isa.SD, Rs1: 2, Rs2: 9, Imm: 0})
	}
	for i := 0; i < cdFiller; i++ {
		switch i % 3 {
		case 0:
			cd = append(cd, isa.Inst{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 7})
		case 1:
			cd = append(cd, isa.Inst{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2})
		case 2:
			cd = append(cd, isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11})
		}
	}
	return &Kernel{
		Name: "sized",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x100000},
			{Op: isa.ADDI, Rd: 2, Rs1: 0, Imm: 0x800000},
			{Op: isa.ADDI, Rd: 3, Rs1: 0, Imm: 500},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
		},
		Slice: []isa.Inst{
			{Op: isa.LD, Rd: 7, Rs1: 1, Imm: 0},
			{Op: isa.SLT, Rd: 8, Rs1: 3, Rs2: 7},
		},
		CD: cd,
		Step: []isa.Inst{
			{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 8},
			{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 8},
		},
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23, 24, 25, 26},
		NoAlias: true,
		Note:    "sized hammock",
	}
}

func TestIfConvertMatchesBase(t *testing.T) {
	for _, filler := range []int{0, 3, 9} {
		k := sizedKernel(800, filler, true)
		base, err := k.Base()
		if err != nil {
			t.Fatal(err)
		}
		want := runProg(t, base, kernelMem(800, 5))
		ic, err := k.IfConvert()
		if err != nil {
			t.Fatal(err)
		}
		got := runProg(t, ic, kernelMem(800, 5))
		if !want.Equal(got) {
			t.Errorf("filler=%d: if-converted output diverges from base", filler)
		}
		// No conditional branch on the predicate survives (only the
		// loop back-edge remains).
		branches := 0
		for _, in := range ic.Insts {
			if in.Op.IsCondBranch() {
				branches++
			}
		}
		if branches != 1 {
			t.Errorf("filler=%d: %d conditional branches survive, want 1 (back-edge)", filler, branches)
		}
	}
}

// lcgKernel is a compute-only hammock: the predicate comes from a
// linear-congruential register (unpredictable, no memory), so the
// comparison isolates branch effects from memory-level parallelism.
func lcgKernel(n int64, cdFiller int) *Kernel {
	cd := []isa.Inst{
		{Op: isa.SHRI, Rd: 9, Rs1: 7, Imm: 3},
		{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 9},
	}
	for i := 0; i < cdFiller; i++ {
		switch i % 3 {
		case 0:
			cd = append(cd, isa.Inst{Op: isa.XOR, Rd: 10, Rs1: 12, Rs2: 9})
		case 1:
			cd = append(cd, isa.Inst{Op: isa.SHRI, Rd: 11, Rs1: 10, Imm: 2})
		case 2:
			cd = append(cd, isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 11})
		}
	}
	return &Kernel{
		Name: "lcg",
		Init: []isa.Inst{
			{Op: isa.ADDI, Rd: 7, Rs1: 0, Imm: 88172645463325252},
			{Op: isa.ADDI, Rd: 15, Rs1: 0, Imm: 6364136223846793},
			{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: n},
			{Op: isa.ADDI, Rd: 12, Rs1: 0, Imm: 0},
		},
		Slice: []isa.Inst{
			{Op: isa.MUL, Rd: 7, Rs1: 7, Rs2: 15},
			{Op: isa.ADDI, Rd: 7, Rs1: 7, Imm: 1442695040888963},
			{Op: isa.SHRI, Rd: 8, Rs1: 7, Imm: 63}, // top bit: ~50/50
		},
		CD:      cd,
		Step:    nil,
		Pred:    8,
		Counter: 4,
		Scratch: []isa.Reg{20, 21, 22, 23, 24, 25, 26},
		NoAlias: true,
		Note:    "lcg hammock",
	}
}

func TestIfConvertEliminatesMispredictions(t *testing.T) {
	// A true hammock: tiny, store-free, compute-only CD region — the
	// class where if-conversion is "generally profitable" (§II-B).
	k := lcgKernel(6000, 0)
	base, _ := k.Base()
	ic, err := k.IfConvert()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *prog.Program) *pipeline.Core {
		core, err := pipeline.New(config.SandyBridge(), p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			t.Fatal(err)
		}
		return core
	}
	b, c := run(base), run(ic)
	if c.Stats.MPKI() > 1 {
		t.Errorf("if-converted MPKI = %.2f, want ~0", c.Stats.MPKI())
	}
	if c.Stats.Cycles >= b.Stats.Cycles {
		t.Errorf("if-conversion of a hammock must win: %d vs %d cycles", c.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestRecomputeRejectedForSliceInternalState(t *testing.T) {
	// The LCG register feeds itself: plain-CFD recomputation would
	// advance it twice. The pass must reject recompute mode when the CD
	// consumes such a value, and accept the VQ mode.
	k := lcgKernel(100, 0)
	k.CD = append(k.CD, isa.Inst{Op: isa.ADD, Rd: 12, Rs1: 12, Rs2: 7})
	if _, err := k.CFD(DefaultParams(), false); err == nil {
		t.Fatal("recompute mode accepted a self-feeding communicated value")
	}
	p, err := k.CFD(DefaultParams(), true)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := k.Base()
	want := runProg(t, base, nil)
	got := runProg(t, p, nil)
	if !want.Equal(got) {
		t.Error("VQ-mode CFD diverges on the self-feeding kernel")
	}
}

func TestIfConvertStoreRMWCostDocumented(t *testing.T) {
	// The guarded-store case: if-conversion must stay correct (covered by
	// TestIfConvertMatchesBase); here we only require it not be
	// catastrophically slower — the read-modify-write select costs real
	// memory traffic, which is why gcc declined these (§II-B).
	k := sizedKernel(3000, 0, true)
	base, _ := k.Base()
	ic, err := k.IfConvert()
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *prog.Program) uint64 {
		core, err := pipeline.New(config.SandyBridge(), p, kernelMem(3000, 6))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Run(0); err != nil {
			t.Fatal(err)
		}
		return core.Stats.Cycles
	}
	if b, c := run(base), run(ic); c > b*2 {
		t.Errorf("if-converted store kernel %d cycles vs base %d: worse than 2x", c, b)
	}
}

func TestIfConvertNeedsScratch(t *testing.T) {
	k := sizedKernel(100, 9, true)
	k.Scratch = k.Scratch[:3]
	if _, err := k.IfConvert(); err == nil {
		t.Error("insufficient scratch accepted")
	}
}
